package alarmverify

import (
	"testing"
	"time"

	"alarmverify/internal/dataset"
	"alarmverify/internal/ml"
	"alarmverify/internal/risk"
)

func facadeWorld() *World {
	gaz := risk.NewGazetteer(risk.GazetteerConfig{
		NumPlaces:      150,
		NumBigCities:   5,
		MaxZIPsPerCity: 4,
		Seed:           3,
	})
	return dataset.NewWorldWith(gaz, 3)
}

func facadeAlarms(w *World, n int) []Alarm {
	cfg := dataset.DefaultSitasysConfig()
	cfg.NumAlarms = n
	cfg.NumDevices = 250
	cfg.PayloadBytes = 0
	return dataset.GenerateSitasys(w, cfg)
}

func TestFacadeTrainVerifyRoute(t *testing.T) {
	w := facadeWorld()
	alarms := facadeAlarms(w, 6000)

	cfg := DefaultVerifierConfig()
	rfCfg := ml.DefaultRandomForestConfig()
	rfCfg.NumTrees = 12
	rfCfg.MaxDepth = 12
	cfg.Classifier = ml.NewRandomForest(rfCfg)
	verifier, err := Train(alarms[:4000], cfg)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := EvaluateAccuracy(verifier, alarms[4000:])
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.75 {
		t.Errorf("facade accuracy %.3f", acc)
	}

	v, err := verifier.Verify(&alarms[5000])
	if err != nil {
		t.Fatal(err)
	}
	policy := DefaultCustomerPolicy()
	_ = policy.Decide(&alarms[5000], v)

	q := NewOperatorQueue()
	q.Push(alarms[5000], v)
	if q.Len() != 1 {
		t.Error("queue push failed")
	}
}

func TestFacadeHybridFlow(t *testing.T) {
	w := facadeWorld()
	incidents := GenerateIncidents(w, 600)
	if len(incidents) == 0 {
		t.Fatal("no incidents")
	}
	model := BuildRiskModel(w, incidents)
	if model.CoveredLocations() == 0 {
		t.Fatal("risk model covers nothing")
	}
	alarms := facadeAlarms(w, 3000)
	cfg := DefaultVerifierConfig()
	rfCfg := ml.DefaultRandomForestConfig()
	rfCfg.NumTrees = 8
	rfCfg.MaxDepth = 10
	cfg.Classifier = ml.NewRandomForest(rfCfg)
	cfg.Risk = model
	cfg.RiskKind = NormalizedRisk
	verifier, err := Train(alarms, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := verifier.Verify(&alarms[0]); err != nil {
		t.Fatal(err)
	}
}

func TestDurationLabel(t *testing.T) {
	if DurationLabel(30*time.Second, time.Minute) != False {
		t.Error("short alarm should be false")
	}
	if DurationLabel(5*time.Minute, time.Minute) != True {
		t.Error("long alarm should be true")
	}
}
