# Targets mirror the CI jobs (.github/workflows/ci.yml) so local and
# CI invocations stay identical.

GO ?= go

.PHONY: build test bench bench-docstore bench-aggregate bench-classify bench-swap bench-overload bench-e2e bench-durable bench-netbroker test-crash test-distributed bench-baseline profile cover docs-gate fuzz-smoke lint fmt

## build: compile every package and command
build:
	$(GO) build ./...

## test: run the full suite with the race detector (CI `test` job)
test:
	$(GO) test -race ./...

## bench: one pass over every benchmark — the reproduction smoke run
## (CI `bench-smoke` job). Set ALARMVERIFY_SCALE=medium|paper to rerun
## at larger scales.
bench:
	$(GO) test -bench=. -benchtime=1x -run '^$$' .

## bench-docstore: the docstore partition sweep on its own — the CI
## bench-smoke job runs this explicitly (and fails if the benchmark
## disappears) so the partition scaling story can't rot
bench-docstore:
	@out=$$($(GO) test -run=- -bench=BenchmarkDocstoreParallel -benchtime=1x .) || \
		{ echo "$$out"; echo "BenchmarkDocstoreParallel failed"; exit 1; }; \
	echo "$$out"; \
	echo "$$out" | grep -q 'BenchmarkDocstoreParallel/partitions=4' || \
		{ echo "BenchmarkDocstoreParallel did not run"; exit 1; }

## bench-aggregate: the analytics pushdown sweep on its own —
## streaming vs pushdown execution of the same aggregation mix across
## partition counts. The CI bench-smoke job runs this explicitly (and
## fails if the benchmark disappears) so the pushdown speedup story
## can't rot; the CI perf-regression job gates the aggs_per_s cells
## against bench-baseline.txt via cmd/benchdiff.
bench-aggregate:
	@out=$$($(GO) test -run=- -bench=BenchmarkAggregatePushdown -benchmem -benchtime=1x .) || \
		{ echo "$$out"; echo "BenchmarkAggregatePushdown failed"; exit 1; }; \
	echo "$$out"; \
	echo "$$out" | grep -q 'BenchmarkAggregatePushdown/mode=pushdown/partitions=8' || \
		{ echo "BenchmarkAggregatePushdown did not run"; exit 1; }

## bench-classify: the classify batch-size × worker sweep on its own —
## the CI bench-smoke job runs this explicitly (and fails if the
## benchmark disappears) so the vectorized-inference scaling story
## can't rot
bench-classify:
	@out=$$($(GO) test -run=- -bench=BenchmarkClassifyBatch -benchtime=1x .) || \
		{ echo "$$out"; echo "BenchmarkClassifyBatch failed"; exit 1; }; \
	echo "$$out"; \
	echo "$$out" | grep -q 'BenchmarkClassifyBatch/batch=512' || \
		{ echo "BenchmarkClassifyBatch did not run"; exit 1; }

## bench-swap: serving throughput across the model lifecycle's three
## regimes (steady, hot-swap hammer, concurrent retrain) — the CI
## bench-smoke job runs this explicitly (and fails if the benchmark
## disappears) so the lock-free-swap story can't rot
bench-swap:
	@out=$$($(GO) test -run=- -bench=BenchmarkSwap -benchtime=1x .) || \
		{ echo "$$out"; echo "BenchmarkSwap failed"; exit 1; }; \
	echo "$$out"; \
	echo "$$out" | grep -q 'BenchmarkSwap/swap-hammer' || \
		{ echo "BenchmarkSwap did not run"; exit 1; }

## bench-overload: the overload sweep on its own — scenario arrival
## processes × load shedding, with the bounded-p99 property asserted
## inside the benchmark. The CI bench-smoke job runs this explicitly
## (and fails if the benchmark disappears) so the overload story can't
## silently rot.
bench-overload:
	@out=$$($(GO) test -run=- -bench=BenchmarkOverload -benchtime=1x -timeout 20m .) || \
		{ echo "$$out"; echo "BenchmarkOverload failed"; exit 1; }; \
	echo "$$out"; \
	echo "$$out" | grep -q 'p99_flash_shed_ms' || \
		{ echo "BenchmarkOverload did not run"; exit 1; }

## bench-e2e: the sharded end-to-end throughput sweep with -benchmem,
## so alarms/s AND allocs/op land in the output — the pair the
## zero-copy hot path is measured by (PERFORMANCE.md records both).
## The CI perf-regression job gates both directions via cmd/benchdiff.
bench-e2e:
	@out=$$($(GO) test -run=- -bench=BenchmarkShardedThroughput -benchmem -benchtime=1x -timeout 20m .) || \
		{ echo "$$out"; echo "BenchmarkShardedThroughput failed"; exit 1; }; \
	echo "$$out"; \
	echo "$$out" | grep -q 'BenchmarkShardedThroughput/shards=8' || \
		{ echo "BenchmarkShardedThroughput did not run"; exit 1; }

## bench-durable: the durability tax — the same sharded e2e replay
## into a memory-only vs a WAL-backed history at the default
## group-fsync interval. The CI perf-regression job gates the wal cell
## against bench-baseline.txt via cmd/benchdiff; the acceptance bar
## keeps store=wal within 30% of store=memory (PERFORMANCE.md records
## the measured pair).
bench-durable:
	@out=$$($(GO) test -run=- -bench=BenchmarkDurableThroughput -benchmem -benchtime=1x -timeout 20m .) || \
		{ echo "$$out"; echo "BenchmarkDurableThroughput failed"; exit 1; }; \
	echo "$$out"; \
	echo "$$out" | grep -q 'BenchmarkDurableThroughput/store=wal' || \
		{ echo "BenchmarkDurableThroughput did not run"; exit 1; }

## bench-netbroker: one produce round-trip over the framed TCP wire
## path (encode, hop, idempotent append, ack) — the per-record floor a
## remote alarmd pays versus the in-process broker. The CI bench-smoke
## job runs this explicitly (and fails if the benchmark disappears);
## the CI perf-regression job gates ns/op and B/op against
## bench-baseline.txt via cmd/benchdiff.
bench-netbroker:
	@out=$$($(GO) test -run=- -bench=BenchmarkNetBrokerRoundtrip -benchmem -benchtime=20x .) || \
		{ echo "$$out"; echo "BenchmarkNetBrokerRoundtrip failed"; exit 1; }; \
	echo "$$out"; \
	echo "$$out" | grep -q 'BenchmarkNetBrokerRoundtrip' || \
		{ echo "BenchmarkNetBrokerRoundtrip did not run"; exit 1; }

## test-crash: the crash-recovery hammer on its own, race-instrumented —
## SIGKILL a child mid-sustained-ingest, reopen the data dir, assert
## zero acked-alarm loss and bounded replay (CI `test` job runs the
## full suite; this target is the focused repro loop).
test-crash:
	$(GO) test -race -run 'TestCrashRecoveryHammer' -v ./internal/docstore

## test-distributed: the multi-process chaos run (CI `distributed-e2e`
## job) — build brokerd + alarmd, boot a 3-node replica set and two
## remote shard processes, drive a flash-crowd burst over the wire,
## SIGKILL the leader mid-burst, and assert zero lost acked alarms,
## bounded ack p99 through the failover, and a full pipeline drain on
## the successor. Process logs land in $(DIST_ARTIFACTS).
DIST_ARTIFACTS ?= coverage/distributed
test-distributed:
	$(GO) build -o bin/brokerd ./cmd/brokerd
	$(GO) build -o bin/alarmd ./cmd/alarmd
	@mkdir -p $(DIST_ARTIFACTS)
	ALARMVERIFY_DIST_BIN=$(CURDIR)/bin ALARMVERIFY_DIST_ARTIFACTS=$(CURDIR)/$(DIST_ARTIFACTS) \
		$(GO) test -v -run 'TestDistributedChaos' -timeout 10m ./internal/chaos

## profile: capture CPU and allocation profiles of the sharded e2e
## sweep (shards=8, the hot-path configuration) into profiles/.
## Inspect with `go tool pprof profiles/bench.test profiles/cpu.out`
## (or mem.out); a live daemon profiles via `alarmd -pprof-listen`.
profile:
	@mkdir -p profiles
	$(GO) test -run=- -bench='BenchmarkShardedThroughput/shards=8' -benchtime=3x -timeout 20m \
		-cpuprofile profiles/cpu.out -memprofile profiles/mem.out -o profiles/bench.test .
	@echo "profiles written: profiles/cpu.out profiles/mem.out"
	@echo "inspect with: go tool pprof profiles/bench.test profiles/cpu.out"

## bench-baseline: refresh the committed benchmark baseline
## (bench-baseline.txt) from the named throughput sweeps — run on main,
## commit the result, and the CI perf-regression job compares PRs
## against it with cmd/benchdiff.
bench-baseline:
	@out=$$($(GO) test -run=- -bench='BenchmarkShardedThroughput|BenchmarkDocstoreParallel|BenchmarkAggregatePushdown|BenchmarkClassifyBatch|BenchmarkSwap|BenchmarkOverload|BenchmarkDurableThroughput|BenchmarkNetBrokerRoundtrip' \
		-benchmem -benchtime=1x -timeout 30m .) || \
		{ echo "$$out"; echo "named sweeps failed; baseline not refreshed"; exit 1; }; \
	printf '%s\n' "$$out" | tee bench-baseline.txt

## cover: per-package statement coverage with enforced floors on the
## serving layers (CI `coverage` job). Floors sit ~10 points under
## measured coverage (core 86%, serve 80%, loadgen 90%, metrics 90%,
## docstore 88%, netbroker 78%) so they catch real erosion without
## flaking on noise. Profiles land in coverage/ for the CI artifact
## upload.
COVER_FLOORS = internal/core:75 internal/serve:70 internal/loadgen:80 internal/metrics:80 internal/docstore:78 internal/netbroker:70
cover:
	@mkdir -p coverage; fail=0; \
	for spec in $(COVER_FLOORS); do \
		pkg=$${spec%%:*}; floor=$${spec##*:}; \
		prof=coverage/$$(echo $$pkg | tr / -).out; \
		out=$$($(GO) test -cover -coverprofile=$$prof ./$$pkg 2>&1) || \
			{ echo "$$out"; fail=1; continue; }; \
		pct=$$(echo "$$out" | grep -o 'coverage: [0-9.]*%' | head -1 | grep -o '[0-9.]*'); \
		echo "$$pkg coverage: $$pct% (floor $$floor%)"; \
		ok=$$(awk -v p="$$pct" -v f="$$floor" 'BEGIN{print (p>=f)?1:0}'); \
		if [ "$$ok" != 1 ]; then echo "FAIL: $$pkg coverage $$pct% is below the $$floor% floor"; fail=1; fi; \
	done; exit $$fail

## docs-gate: fail on undocumented exported identifiers in the audited
## packages and on broken relative links in *.md (CI `build` job)
docs-gate:
	$(GO) run ./cmd/docsgate

## fuzz-smoke: short fuzz passes (CI `test` job) — the codec decoder
## (malformed payloads must error, never panic), the aggregation
## differential (any decodable pipeline must behave identically
## through the pushdown planner and the streaming oracle), and the
## wire-frame decoder (torn frames, hostile lengths and corrupt
## payloads must error, never panic or over-allocate)
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzDecode$$' -fuzztime 10s ./internal/codec
	$(GO) test -run '^$$' -fuzz '^FuzzAggregate$$' -fuzztime 10s ./internal/docstore
	$(GO) test -run '^$$' -fuzz '^FuzzFrameDecode$$' -fuzztime 10s ./internal/netbroker

## lint: vet, the alarmvet invariant suite (cmd/alarmvet run through
## `go vet -vettool`, so findings cache per package like vet's own),
## and a gofmt cleanliness check (CI `build` job). The analyzers and
## their golden self-tests live in internal/analysis.
lint:
	$(GO) vet ./...
	$(GO) build -o bin/alarmvet ./cmd/alarmvet
	$(GO) vet -vettool=bin/alarmvet ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

## fmt: rewrite all files with gofmt
fmt:
	gofmt -w .
