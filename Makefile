# Targets mirror the CI jobs (.github/workflows/ci.yml) so local and
# CI invocations stay identical.

GO ?= go

.PHONY: build test bench bench-docstore bench-classify bench-swap docs-gate fuzz-smoke lint fmt

## build: compile every package and command
build:
	$(GO) build ./...

## test: run the full suite with the race detector (CI `test` job)
test:
	$(GO) test -race ./...

## bench: one pass over every benchmark — the reproduction smoke run
## (CI `bench-smoke` job). Set ALARMVERIFY_SCALE=medium|paper to rerun
## at larger scales.
bench:
	$(GO) test -bench=. -benchtime=1x -run '^$$' .

## bench-docstore: the docstore partition sweep on its own — the CI
## bench-smoke job runs this explicitly (and fails if the benchmark
## disappears) so the partition scaling story can't rot
bench-docstore:
	@out=$$($(GO) test -run=- -bench=BenchmarkDocstoreParallel -benchtime=1x .) || \
		{ echo "$$out"; echo "BenchmarkDocstoreParallel failed"; exit 1; }; \
	echo "$$out"; \
	echo "$$out" | grep -q 'BenchmarkDocstoreParallel/partitions=4' || \
		{ echo "BenchmarkDocstoreParallel did not run"; exit 1; }

## bench-classify: the classify batch-size × worker sweep on its own —
## the CI bench-smoke job runs this explicitly (and fails if the
## benchmark disappears) so the vectorized-inference scaling story
## can't rot
bench-classify:
	@out=$$($(GO) test -run=- -bench=BenchmarkClassifyBatch -benchtime=1x .) || \
		{ echo "$$out"; echo "BenchmarkClassifyBatch failed"; exit 1; }; \
	echo "$$out"; \
	echo "$$out" | grep -q 'BenchmarkClassifyBatch/batch=512' || \
		{ echo "BenchmarkClassifyBatch did not run"; exit 1; }

## bench-swap: serving throughput across the model lifecycle's three
## regimes (steady, hot-swap hammer, concurrent retrain) — the CI
## bench-smoke job runs this explicitly (and fails if the benchmark
## disappears) so the lock-free-swap story can't rot
bench-swap:
	@out=$$($(GO) test -run=- -bench=BenchmarkSwap -benchtime=1x .) || \
		{ echo "$$out"; echo "BenchmarkSwap failed"; exit 1; }; \
	echo "$$out"; \
	echo "$$out" | grep -q 'BenchmarkSwap/swap-hammer' || \
		{ echo "BenchmarkSwap did not run"; exit 1; }

## docs-gate: fail on undocumented exported identifiers in the audited
## packages and on broken relative links in *.md (CI `build` job)
docs-gate:
	$(GO) run ./cmd/docsgate

## fuzz-smoke: a short fuzz pass over the codec decoder (CI `test`
## job) — malformed payloads must error, never panic
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzDecode$$' -fuzztime 10s ./internal/codec

## lint: vet plus a gofmt cleanliness check (CI `lint` job)
lint:
	$(GO) vet ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

## fmt: rewrite all files with gofmt
fmt:
	gofmt -w .
