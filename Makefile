# Targets mirror the CI jobs (.github/workflows/ci.yml) so local and
# CI invocations stay identical.

GO ?= go

.PHONY: build test bench lint fmt

## build: compile every package and command
build:
	$(GO) build ./...

## test: run the full suite with the race detector (CI `test` job)
test:
	$(GO) test -race ./...

## bench: one pass over every benchmark — the reproduction smoke run
## (CI `bench-smoke` job). Set ALARMVERIFY_SCALE=medium|paper to rerun
## at larger scales.
bench:
	$(GO) test -bench=. -benchtime=1x -run '^$$' .

## lint: vet plus a gofmt cleanliness check (CI `lint` job)
lint:
	$(GO) vet ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

## fmt: rewrite all files with gofmt
fmt:
	gofmt -w .
