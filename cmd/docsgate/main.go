// Command docsgate is the repository's documentation gate, run by CI
// (`make docs-gate`). It fails the build when either:
//
//   - an exported identifier in one of the audited packages (the ML,
//     core and serve layers documented by ARCHITECTURE.md) has no doc
//     comment,
//   - an audited package has no package-level doc comment, or
//   - a relative link in any *.md file points at a path that does not
//     exist.
//
// Usage:
//
//	docsgate [-root dir] [packages...]
//
// With no package arguments the default audited set is checked.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// defaultPackages is the audited set: the layers whose exported
// surface ARCHITECTURE.md walks through.
var defaultPackages = []string{
	"internal/ml",
	"internal/core",
	"internal/serve",
	"internal/stream",
	"internal/risk",
	"internal/textproc",
	"internal/modelreg",
	"internal/loadgen",
	"internal/metrics",
	"internal/codec",
	"internal/broker",
	"internal/netbroker",
	"internal/docstore",
	"internal/alarm",
	"internal/anomaly",
	"internal/dataset",
	"internal/analysis",
}

func main() {
	root := flag.String("root", ".", "repository root to audit")
	flag.Parse()
	pkgs := flag.Args()
	if len(pkgs) == 0 {
		pkgs = defaultPackages
	}
	var problems []string
	for _, pkg := range pkgs {
		ps, err := auditPackage(*root, pkg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "docsgate: %s: %v\n", pkg, err)
			os.Exit(2)
		}
		problems = append(problems, ps...)
	}
	mps, err := auditMarkdown(*root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "docsgate: markdown: %v\n", err)
		os.Exit(2)
	}
	problems = append(problems, mps...)
	if len(problems) > 0 {
		sort.Strings(problems)
		for _, p := range problems {
			fmt.Println(p)
		}
		fmt.Printf("docsgate: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("docsgate: ok")
}

// auditPackage reports exported identifiers without doc comments in
// the package's non-test files.
func auditPackage(root, pkg string) ([]string, error) {
	dir := filepath.Join(root, pkg)
	fset := token.NewFileSet()
	pkgMap, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var problems []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		problems = append(problems, fmt.Sprintf("%s:%d: exported %s %s has no doc comment",
			p.Filename, p.Line, kind, name))
	}
	for name, p := range pkgMap {
		hasPkgDoc := false
		for _, file := range p.Files {
			if file.Doc != nil {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			problems = append(problems,
				fmt.Sprintf("%s: package %s has no package doc comment", dir, name))
		}
		for _, file := range p.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || d.Doc != nil {
						continue
					}
					if recv, ok := receiverType(d); ok && !ast.IsExported(recv) {
						// Methods of unexported types are not part of
						// the package's documented surface.
						continue
					}
					kind := "function"
					if d.Recv != nil {
						kind = "method"
					}
					report(d.Pos(), kind, d.Name.Name)
				case *ast.GenDecl:
					auditGenDecl(d, report)
				}
			}
		}
	}
	return problems, nil
}

// receiverType returns the receiver's type name for a method.
func receiverType(d *ast.FuncDecl) (string, bool) {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return "", false
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver T[P]
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name, true
	}
	return "", false
}

// auditGenDecl checks type/var/const declarations: an exported spec
// is documented when either the spec or its enclosing declaration
// carries a comment (the grouped-const idiom).
func auditGenDecl(d *ast.GenDecl, report func(token.Pos, string, string)) {
	kind := d.Tok.String()
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && s.Doc == nil && s.Comment == nil && d.Doc == nil {
				report(s.Pos(), kind, s.Name.Name)
			}
		case *ast.ValueSpec:
			if s.Doc != nil || s.Comment != nil || d.Doc != nil {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					report(s.Pos(), kind, name.Name)
				}
			}
		}
	}
}

// mdLink matches inline markdown link targets. Images and reference
// definitions are out of scope; relative inline links are what rots.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// auditMarkdown checks that every relative link in the repository's
// markdown files resolves to an existing file or directory.
func auditMarkdown(root string) ([]string, error) {
	var problems []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "node_modules" || (strings.HasPrefix(name, ".") && path != root) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".md") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if strings.Contains(target, "://") ||
					strings.HasPrefix(target, "mailto:") ||
					strings.HasPrefix(target, "#") {
					continue
				}
				if idx := strings.IndexByte(target, '#'); idx >= 0 {
					target = target[:idx]
				}
				if target == "" {
					continue
				}
				resolved := filepath.Join(filepath.Dir(path), target)
				if _, err := os.Stat(resolved); err != nil {
					problems = append(problems,
						fmt.Sprintf("%s:%d: broken relative link %q", path, i+1, m[1]))
				}
			}
		}
		return nil
	})
	return problems, err
}
