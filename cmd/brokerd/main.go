// Command brokerd runs one node of the replicated broker: the
// in-process broker (topics, partition logs, idempotent producers,
// consumer-group coordination) wrapped behind netbroker's framed TCP
// protocol. Remote alarmd processes produce into it and join their
// verification shards over the wire; the shards themselves run
// unmodified (see ARCHITECTURE.md, "Distributed deployment").
//
// Standalone (replication factor 1):
//
//	brokerd -addr 127.0.0.1:9301
//
// A replica set lists every node's address in a fixed order shared by
// all nodes — the list index is the node id. Node 0 leads epoch 1;
// followers pull the partition logs, appends acknowledge only at
// follower quorum, and when the leader dies the survivors elect a
// reconciled successor (no quorum-acked record is ever lost; see the
// delivery invariants in ARCHITECTURE.md):
//
//	brokerd -node 0 -addr 127.0.0.1:9301 -peers 127.0.0.1:9301,127.0.0.1:9302,127.0.0.1:9303
//	brokerd -node 1 -addr 127.0.0.1:9302 -peers 127.0.0.1:9301,127.0.0.1:9302,127.0.0.1:9303
//	brokerd -node 2 -addr 127.0.0.1:9303 -peers 127.0.0.1:9301,127.0.0.1:9302,127.0.0.1:9303
//
// -metrics serves the node's replication health — current epoch,
// leadership, failover count, per-follower replica lag in records — in
// Prometheus text format on /metrics, plus /healthz.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"alarmverify/internal/broker"
	"alarmverify/internal/metrics"
	"alarmverify/internal/netbroker"
)

type options struct {
	addr            string
	node            int
	peers           []string
	metricsAddr     string
	replInterval    time.Duration
	electionTimeout time.Duration
	ackTimeout      time.Duration
	sessionTimeout  time.Duration
}

var errFlagParse = errors.New("brokerd: invalid flags")

func parseOptions(args []string, output io.Writer) (options, error) {
	var o options
	var peers string
	fs := flag.NewFlagSet("brokerd", flag.ContinueOnError)
	fs.SetOutput(output)
	fs.StringVar(&o.addr, "addr", "127.0.0.1:9301", "TCP listen address for the broker protocol")
	fs.IntVar(&o.node, "node", 0, "this node's index into -peers (0 when standalone)")
	fs.StringVar(&peers, "peers", "",
		"comma-separated replica addresses, own address included, in the fixed order shared by all nodes (empty = standalone)")
	fs.StringVar(&o.metricsAddr, "metrics", "",
		"HTTP listen address for /metrics (Prometheus text) and /healthz (empty = no HTTP)")
	fs.DurationVar(&o.replInterval, "repl-interval", 0, "follower pull cadence (0 = default 5ms)")
	fs.DurationVar(&o.electionTimeout, "election-timeout", 0,
		"leader-silence tolerance before standing for election, staggered by node id (0 = default 750ms)")
	fs.DurationVar(&o.ackTimeout, "ack-timeout", 0, "append quorum-ack deadline (0 = default 5s)")
	fs.DurationVar(&o.sessionTimeout, "session-timeout", 0,
		"consumer-group member expiry without heartbeats (0 = default 3s)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return options{}, err
		}
		return options{}, fmt.Errorf("%w: %v", errFlagParse, err)
	}
	if peers != "" {
		for _, p := range strings.Split(peers, ",") {
			p = strings.TrimSpace(p)
			if p == "" {
				return options{}, fmt.Errorf("brokerd: -peers has an empty address")
			}
			o.peers = append(o.peers, p)
		}
	}
	switch {
	case len(o.peers) > 0 && (o.node < 0 || o.node >= len(o.peers)):
		return options{}, fmt.Errorf("brokerd: -node %d outside -peers (%d nodes)", o.node, len(o.peers))
	case len(o.peers) == 0 && o.node != 0:
		return options{}, fmt.Errorf("brokerd: -node %d without -peers", o.node)
	case o.replInterval < 0 || o.electionTimeout < 0 || o.ackTimeout < 0 || o.sessionTimeout < 0:
		return options{}, fmt.Errorf("brokerd: timeouts must be >= 0")
	}
	return o, nil
}

func main() {
	opts, err := parseOptions(os.Args[1:], os.Stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		if !errors.Is(err, errFlagParse) {
			fmt.Fprintln(os.Stderr, err)
		}
		os.Exit(2)
	}
	if err := run(opts); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(o options) error {
	b := broker.New()
	defer b.Close()
	repl := metrics.NewReplication()
	srv, err := netbroker.NewServer(b, o.addr, netbroker.Options{
		NodeID:          o.node,
		Peers:           o.peers,
		ReplInterval:    o.replInterval,
		ElectionTimeout: o.electionTimeout,
		AckTimeout:      o.ackTimeout,
		SessionTimeout:  o.sessionTimeout,
		Repl:            repl,
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	if len(o.peers) > 0 {
		fmt.Printf("brokerd node %d of %d on %s (epoch %d, leader: %v)\n",
			o.node, len(o.peers), srv.Addr(), srv.Epoch(), srv.IsLeader())
	} else {
		fmt.Printf("brokerd standalone on %s\n", srv.Addr())
	}

	if o.metricsAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			repl.WriteProm(w)
		})
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintln(w, "ok")
		})
		msrv := &http.Server{Addr: o.metricsAddr, Handler: mux}
		go func() {
			if err := msrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "brokerd: metrics: %v\n", err)
			}
		}()
		defer msrv.Close()
		fmt.Printf("metrics on %s (/metrics /healthz)\n", o.metricsAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	s := <-sig
	fmt.Printf("%s: shutting down\n", s)
	return nil
}
