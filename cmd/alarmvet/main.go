// Command alarmvet runs the repository's invariant checkers (see
// internal/analysis) over Go packages. It speaks the `go vet
// -vettool` unitchecker protocol, so the full build graph, export
// data, and action caching come from the go command:
//
//	go build -o bin/alarmvet ./cmd/alarmvet
//	go vet -vettool=bin/alarmvet ./...
//
// Invoked with package patterns (or no arguments) it re-executes
// itself through `go vet`, so `alarmvet ./...` works directly. The
// exit status is 0 when every package is clean, 1 when any checker
// reported a finding.
//
// Checkers: lockscope, batchlife, seqver, snapshotonly, hotalloc,
// errsink. `alarmvet help` prints each checker's contract.
package main

import (
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"

	"alarmverify/internal/analysis"
	"alarmverify/internal/analysis/batchlife"
	"alarmverify/internal/analysis/errsink"
	"alarmverify/internal/analysis/hotalloc"
	"alarmverify/internal/analysis/lockscope"
	"alarmverify/internal/analysis/seqver"
	"alarmverify/internal/analysis/snapshotonly"
)

// analyzers is the full suite, in reporting order.
var analyzers = []*analysis.Analyzer{
	lockscope.Analyzer,
	batchlife.Analyzer,
	seqver.Analyzer,
	snapshotonly.Analyzer,
	hotalloc.Analyzer,
	errsink.Analyzer,
}

func main() {
	args := os.Args[1:]
	switch {
	case len(args) == 1 && args[0] == "-V=full":
		printVersion()
	case len(args) == 1 && args[0] == "-flags":
		// No tool-specific flags; the empty JSON list tells cmd/go so.
		fmt.Println("[]")
	case len(args) == 1 && strings.HasSuffix(args[0], ".cfg"):
		os.Exit(unit(args[0]))
	case len(args) == 1 && args[0] == "help":
		help()
	default:
		os.Exit(vet(args))
	}
}

// printVersion implements -V=full: cmd/go stamps the tool's identity
// into the build cache key, so the version must change whenever the
// binary does — the content hash guarantees that.
func printVersion() {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			//alarmvet:ignore read-only executable self-hash; close error carries no data
			f.Close()
		}
	}
	fmt.Printf("alarmvet version v1-%x\n", h.Sum(nil)[:12])
}

// unit analyzes one compilation unit described by a vet config.
func unit(cfgPath string) int {
	cfg, err := analysis.ReadVetConfig(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "alarmvet: %v\n", err)
		return 2
	}
	// The facts file is what cmd/go caches; write it in every outcome
	// that should be cacheable.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, []byte("alarmvet facts v1\n"), 0o666); err != nil {
				fmt.Fprintf(os.Stderr, "alarmvet: %v\n", err)
			}
		}
	}
	if cfg.VetxOnly {
		// Dependency-only visit: nothing to diagnose, just the facts.
		writeVetx()
		return 0
	}
	u, err := cfg.Load()
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			// The compiler will report this better than we can.
			writeVetx()
			return 0
		}
		fmt.Fprintf(os.Stderr, "alarmvet: %s: %v\n", cfg.ImportPath, err)
		return 2
	}
	diags, err := analysis.RunAnalyzers(u, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "alarmvet: %s: %v\n", cfg.ImportPath, err)
		return 2
	}
	writeVetx()
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, analysis.Format(u.Fset, d))
	}
	return 1
}

// vet re-executes through `go vet -vettool=self` so package loading,
// export data, and caching are the go command's problem.
func vet(patterns []string) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "alarmvet: %v\n", err)
		return 2
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"vet", "-vettool=" + exe}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "alarmvet: %v\n", err)
		return 2
	}
	return 0
}

// help prints each checker's contract.
func help() {
	fmt.Println("alarmvet proves the repository's hot-path ownership and locking")
	fmt.Println("invariants at compile time. Checkers:")
	for _, a := range analyzers {
		fmt.Printf("\n%s:\n  %s\n", a.Name, a.Doc)
	}
	fmt.Println("\nDirectives:")
	fmt.Println("  //alarmvet:ignore <reason>  suppress findings on this/next line (reason mandatory)")
	fmt.Println("  //alarmvet:hotpath          function must not allocate (hotalloc)")
}
