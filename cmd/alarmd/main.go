// Command alarmd runs the live verification service: a producer
// replays synthetic production alarms into the broker at a configured
// rate while the consumer verifies them in micro-batches, printing
// streaming statistics — the shape of the deployment sketched in §4.
//
// Usage:
//
//	alarmd -rate 5000 -duration 10s -partitions 8
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"alarmverify/internal/alarm"
	"alarmverify/internal/broker"
	"alarmverify/internal/codec"
	"alarmverify/internal/core"
	"alarmverify/internal/dataset"
	"alarmverify/internal/docstore"
	"alarmverify/internal/ml"
	"alarmverify/internal/stream"
)

func main() {
	rate := flag.Int("rate", 5_000, "alarms per second to produce (0 = as fast as possible)")
	duration := flag.Duration("duration", 10*time.Second, "how long to run")
	partitions := flag.Int("partitions", 8, "broker partitions (the §5.5.2 parallelism knob)")
	interval := flag.Duration("interval", 500*time.Millisecond, "micro-batch interval")
	trainN := flag.Int("train", 30_000, "alarms for offline training")
	flag.Parse()

	if err := run(*rate, *duration, *partitions, *interval, *trainN); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(rate int, duration time.Duration, partitions int, interval time.Duration, trainN int) error {
	fmt.Printf("generating world and %d training alarms...\n", trainN)
	world := dataset.NewWorld(42)
	cfg := dataset.DefaultSitasysConfig()
	cfg.NumAlarms = trainN * 3
	alarms := dataset.GenerateSitasys(world, cfg)

	fmt.Println("training verifier (random forest, Table 3 parameters)...")
	vcfg := core.DefaultVerifierConfig()
	vcfg.Classifier = ml.NewRandomForest(ml.DefaultRandomForestConfig())
	verifier, err := core.Train(alarms[:trainN], vcfg)
	if err != nil {
		return err
	}
	st := verifier.Stats()
	fmt.Printf("trained on %d alarms, %d features, in %s\n",
		st.TrainRecords, st.Features, st.TrainTime.Round(time.Millisecond))

	b := broker.New()
	defer b.Close()
	topic, err := b.CreateTopic("alarms", partitions)
	if err != nil {
		return err
	}
	history, err := core.NewHistory(docstore.NewDB())
	if err != nil {
		return err
	}
	consumer, err := core.NewConsumerApp(b, "alarms", "alarmd", "c1",
		verifier, history, core.DefaultConsumerConfig())
	if err != nil {
		return err
	}
	defer consumer.Close()

	ctx := stream.NewContext(interval, stream.NewPool(0))
	if err := consumer.Run(ctx); err != nil {
		return err
	}
	if err := ctx.Start(); err != nil {
		return err
	}

	producer := core.NewProducerApp(topic, codec.FastCodec{})
	producer.Threads = 4
	replay := alarms[trainN:]
	fmt.Printf("replaying up to %d alarms at %d/s for %s...\n", len(replay), rate, duration)
	done := make(chan core.ReplayStats, 1)
	go func() {
		stats, _ := producer.Replay(replay, rate)
		done <- stats
	}()

	deadline := time.After(duration)
	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()
loop:
	for {
		select {
		case <-deadline:
			break loop
		case stats := <-done:
			fmt.Printf("producer finished early: %d alarms in %s\n",
				stats.Sent, stats.Elapsed.Round(time.Millisecond))
			break loop
		case <-ticker.C:
			records, meanBatch := ctx.Metrics().Totals()
			fmt.Printf("  verified=%d  mean-batch=%s  throughput=%.0f alarms/s\n",
				records, meanBatch.Round(time.Millisecond), consumer.Throughput())
		}
	}
	ctx.Stop()

	times := consumer.Times()
	fmt.Printf("\nfinal: %d alarms verified, throughput %.0f alarms/s\n",
		consumer.Records(), consumer.Throughput())
	fmt.Printf("component breakdown: deserialize=%s streaming=%s history=%s ml=%s (ingest=%s)\n",
		times.Deserialize.Round(time.Millisecond), times.Streaming.Round(time.Millisecond),
		times.History.Round(time.Millisecond), times.ML.Round(time.Millisecond),
		times.Ingest.Round(time.Millisecond))
	// Operator view: top 3 most urgent verified alarms.
	q := core.NewOperatorQueue()
	verified := consumer.Verified()
	for i := range verified {
		if verified[i].Predicted == 1 {
			q.Push(alarmByID(replay, verified[i].AlarmID), verified[i])
		}
	}
	fmt.Printf("\noperator queue: %d likely-true alarms; most urgent:\n", q.Len())
	for i := 0; i < 3; i++ {
		item, ok := q.Pop()
		if !ok {
			break
		}
		fmt.Printf("  alarm %d: %s at %s (P=%.2f)\n", item.Alarm.ID,
			item.Alarm.Type, item.Alarm.ZIP, item.Verification.Probability)
	}
	return nil
}

// alarmByID finds an alarm in the replay slice (IDs are sequential).
func alarmByID(alarms []alarm.Alarm, id int64) alarm.Alarm {
	base := alarms[0].ID
	idx := int(id - base)
	if idx >= 0 && idx < len(alarms) && alarms[idx].ID == id {
		return alarms[idx]
	}
	for i := range alarms {
		if alarms[i].ID == id {
			return alarms[i]
		}
	}
	return alarm.Alarm{ID: id}
}
