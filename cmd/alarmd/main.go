// Command alarmd runs the live verification service: a producer
// replays synthetic production alarms into the broker at a configured
// rate while a sharded, pipelined consumer service verifies them —
// the shape of the deployment sketched in §4, scaled out along the
// paper's §5.5.2 lesson (partitions × shards are the parallelism
// knobs).
//
// SIGINT/SIGTERM trigger a graceful drain: intake halts, in-flight
// micro-batches finish classify and persist, their offsets are
// committed, and the final statistics print before exit.
//
// Usage:
//
//	alarmd -rate 5000 -duration 10s -partitions 8 -shards 4 -pipeline-depth 2
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"alarmverify/internal/alarm"
	"alarmverify/internal/broker"
	"alarmverify/internal/codec"
	"alarmverify/internal/core"
	"alarmverify/internal/dataset"
	"alarmverify/internal/docstore"
	"alarmverify/internal/ml"
	"alarmverify/internal/serve"
)

func main() {
	rate := flag.Int("rate", 5_000, "alarms per second to produce (0 = as fast as possible)")
	duration := flag.Duration("duration", 10*time.Second, "how long to run")
	partitions := flag.Int("partitions", 8, "broker partitions (the §5.5.2 parallelism knob)")
	shards := flag.Int("shards", 2, "consumer shards joining the verification group")
	depth := flag.Int("pipeline-depth", 2, "bounded stage-queue depth per shard")
	interval := flag.Duration("interval", 50*time.Millisecond, "idle poll wait per micro-batch drain")
	trainN := flag.Int("train", 30_000, "alarms for offline training")
	flag.Parse()

	if err := run(*rate, *duration, *partitions, *shards, *depth, *interval, *trainN); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(rate int, duration time.Duration, partitions, shards, depth int,
	interval time.Duration, trainN int) error {
	// Mirror the service's own normalization so the banner reports the
	// configuration actually running.
	if shards <= 0 {
		shards = 1
	}
	if depth <= 0 {
		depth = 2
	}
	fmt.Printf("generating world and %d training alarms...\n", trainN)
	world := dataset.NewWorld(42)
	cfg := dataset.DefaultSitasysConfig()
	cfg.NumAlarms = trainN * 3
	alarms := dataset.GenerateSitasys(world, cfg)

	fmt.Println("training verifier (random forest, Table 3 parameters)...")
	vcfg := core.DefaultVerifierConfig()
	vcfg.Classifier = ml.NewRandomForest(ml.DefaultRandomForestConfig())
	verifier, err := core.Train(alarms[:trainN], vcfg)
	if err != nil {
		return err
	}
	st := verifier.Stats()
	fmt.Printf("trained on %d alarms, %d features, in %s\n",
		st.TrainRecords, st.Features, st.TrainTime.Round(time.Millisecond))

	b := broker.New()
	defer b.Close()
	topic, err := b.CreateTopic("alarms", partitions)
	if err != nil {
		return err
	}
	history, err := core.NewHistory(docstore.NewDB())
	if err != nil {
		return err
	}
	svcCfg := serve.Config{
		Shards:        shards,
		PipelineDepth: depth,
		Consumer:      core.DefaultConsumerConfig(),
	}
	svcCfg.Consumer.PollTimeout = interval
	svc, err := serve.New(b, "alarms", "alarmd", verifier, history, svcCfg)
	if err != nil {
		return err
	}
	defer svc.Close()
	svc.Start()
	fmt.Printf("serving with %d shard(s), pipeline depth %d, %d partitions\n",
		shards, depth, partitions)

	producer := core.NewProducerApp(topic, codec.FastCodec{})
	producer.Threads = 4
	replay := alarms[trainN:]
	fmt.Printf("replaying up to %d alarms at %d/s for %s...\n", len(replay), rate, duration)
	done := make(chan core.ReplayStats, 1)
	go func() {
		stats, _ := producer.Replay(replay, rate)
		done <- stats
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	deadline := time.After(duration)
	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()
loop:
	for {
		select {
		case <-deadline:
			break loop
		case s := <-sig:
			fmt.Printf("\n%s: draining in-flight batches...\n", s)
			break loop
		case stats := <-done:
			fmt.Printf("producer finished early: %d alarms in %s; draining backlog...\n",
				stats.Sent, stats.Elapsed.Round(time.Millisecond))
			for {
				lag, err := svc.Lag()
				if err != nil || lag == 0 {
					break loop
				}
				select {
				case <-deadline:
					break loop
				case s := <-sig:
					fmt.Printf("\n%s: draining in-flight batches...\n", s)
					break loop
				case <-time.After(50 * time.Millisecond):
				}
			}
		case <-ticker.C:
			stats := svc.Stats()
			lag, _ := svc.Lag()
			fmt.Printf("  verified=%d  batches=%d  lag=%d  throughput=%.0f alarms/s\n",
				stats.Records, stats.Batches, lag, stats.PerSec)
		}
	}
	// Graceful drain: every drained batch is classified, persisted and
	// committed before Stop returns.
	svc.Stop()

	stats := svc.Stats()
	fmt.Printf("\nfinal: %d alarms verified in %s, throughput %.0f alarms/s\n",
		stats.Records, stats.Elapsed.Round(time.Millisecond), stats.PerSec)
	times := stats.Times
	fmt.Printf("component breakdown: deserialize=%s streaming=%s history=%s ml=%s (ingest=%s)\n",
		times.Deserialize.Round(time.Millisecond), times.Streaming.Round(time.Millisecond),
		times.History.Round(time.Millisecond), times.ML.Round(time.Millisecond),
		times.Ingest.Round(time.Millisecond))
	for _, sh := range stats.Shards {
		fmt.Printf("  %s: partitions=%v batches=%d records=%d inflight-peak=%d rebalances=%d\n",
			sh.ID, sh.Partitions, sh.Batches, sh.Records, sh.InFlightPeak, sh.Rebalances)
		if sh.Err != nil {
			fmt.Printf("  %s: HALTED: %v\n", sh.ID, sh.Err)
		}
	}
	if committed, err := svc.Committed(); err == nil {
		var sum int64
		for _, off := range committed {
			sum += off
		}
		fmt.Printf("committed offsets: %d records durable across %d partitions\n",
			sum, len(committed))
	}

	// Operator view: top 3 most urgent verified alarms.
	q := core.NewOperatorQueue()
	verified := svc.Verified()
	for i := range verified {
		if verified[i].Predicted == 1 {
			q.Push(alarmByID(replay, verified[i].AlarmID), verified[i])
		}
	}
	fmt.Printf("\noperator queue: %d likely-true alarms; most urgent:\n", q.Len())
	for i := 0; i < 3; i++ {
		item, ok := q.Pop()
		if !ok {
			break
		}
		fmt.Printf("  alarm %d: %s at %s (P=%.2f)\n", item.Alarm.ID,
			item.Alarm.Type, item.Alarm.ZIP, item.Verification.Probability)
	}
	// A halted shard left records unverified: fail loudly.
	return svc.Err()
}

// alarmByID finds an alarm in the replay slice (IDs are sequential).
func alarmByID(alarms []alarm.Alarm, id int64) alarm.Alarm {
	base := alarms[0].ID
	idx := int(id - base)
	if idx >= 0 && idx < len(alarms) && alarms[idx].ID == id {
		return alarms[idx]
	}
	for i := range alarms {
		if alarms[i].ID == id {
			return alarms[i]
		}
	}
	return alarm.Alarm{ID: id}
}
