// Command alarmd runs the live verification service: a producer
// replays synthetic production alarms into the broker at a configured
// rate while a sharded, pipelined consumer service verifies them —
// the shape of the deployment sketched in §4, scaled out along the
// paper's §5.5.2 lesson (partitions × shards are the parallelism
// knobs). The alarm history persists into a hash-partitioned document
// store (-store-partitions) through a write-behind buffer, so persist
// round-trips coalesce across shards. With -data-dir the store is
// durable: every mutation lands in a per-partition write-ahead log
// (group-fsynced every -wal-sync), periodic snapshots truncate the
// logs, and a restart replays the tail — recovering the alarm history
// and operator feedback instead of re-seeding from scratch. -retention
// prunes history older than the given age at each snapshot.
//
// With -model-dir the daemon boots from the latest version in the
// on-disk model registry (training and registering a v1 when the
// registry is empty), and with -retrain-interval / -retrain-min-feedback
// a background retrainer periodically refits on the recorded history
// plus operator feedback, shadow-evaluates the candidate, registers it
// and hot-swaps it into the running shards — lock-free, with no
// dropped records. -listen exposes the HTTP API (including POST
// /feedback, the operator-verdict intake).
//
// SIGINT/SIGTERM trigger a graceful drain: intake halts, in-flight
// micro-batches finish classify and persist, their offsets are
// committed, and the final statistics print before exit.
//
// The replayed stream is shaped by the scenario load generator
// (internal/loadgen): -scenario picks the arrival process (constant,
// poisson, burst, diurnal, flash) and -skew concentrates traffic on
// Zipf-distributed hot devices, offered open-loop at -rate. Overload
// control is opt-in: -adaptive-batch resizes micro-batches with queue
// pressure and -shed-queue bounds the per-shard backlog, shedding the
// oldest batches (counted, committed) past it. Latency histograms for
// every stage and end-to-end run lock-free (internal/metrics) and are
// served on /metrics and /stats.
//
// Two hot-path knobs ride on top: -commit-coalesce batches many
// micro-batch offset commits into one commit per interval (trading a
// wider redelivery window after a crash for fewer coordinator
// round-trips), and -pprof-listen exposes the net/http/pprof profiler
// on its own address so CPU and allocation profiles can be captured
// from a live run (see PERFORMANCE.md and `make profile`).
//
// Usage:
//
//	alarmd -rate 5000 -scenario flash -duration 10s -partitions 8 -shards 4 -pipeline-depth 2 \
//	       -adaptive-batch -shed-queue 8192 -store-partitions 8 \
//	       -classify-workers 4 -classify-batch 256 \
//	       -model-dir ./models -retrain-interval 5s -retrain-min-feedback 200 -listen :8080
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof" // /debug/pprof/ handlers for -pprof-listen
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"alarmverify/internal/alarm"
	"alarmverify/internal/broker"
	"alarmverify/internal/codec"
	"alarmverify/internal/core"
	"alarmverify/internal/dataset"
	"alarmverify/internal/docstore"
	"alarmverify/internal/loadgen"
	"alarmverify/internal/metrics"
	"alarmverify/internal/ml"
	"alarmverify/internal/modelreg"
	"alarmverify/internal/netbroker"
	"alarmverify/internal/serve"
)

// options is the validated alarmd configuration.
type options struct {
	rate            int
	scenario        string
	skew            float64
	duration        time.Duration
	partitions      int
	shards          int
	depth           int
	adaptiveBatch   bool
	shedQueue       int
	storePartitions int
	writeBehind     int
	dataDir         string
	walSync         time.Duration
	retention       time.Duration
	classifyWorkers int
	classifyBatch   int
	interval        time.Duration
	trainN          int
	modelDir        string
	retrainInterval time.Duration
	retrainMinFB    int
	listen          string
	pprofListen     string
	commitCoalesce  time.Duration
	topDevices      int
	brokerAddr      string
	produce         bool
}

// errFlagParse wraps errors the flag package already reported to the
// FlagSet's output (with usage), so main does not print them twice.
var errFlagParse = errors.New("alarmd: invalid flags")

// parseOptions parses and validates the command line. Errors (rather
// than silent normalization) keep misconfigured deployments loud.
func parseOptions(args []string, output io.Writer) (options, error) {
	var o options
	fs := flag.NewFlagSet("alarmd", flag.ContinueOnError)
	fs.SetOutput(output)
	fs.IntVar(&o.rate, "rate", 5_000, "alarms per second to produce (0 = as fast as possible)")
	fs.StringVar(&o.scenario, "scenario", "constant",
		fmt.Sprintf("arrival process for the replayed stream: %s (ignored when -rate is 0)",
			strings.Join(loadgen.Scenarios(), "|")))
	fs.Float64Var(&o.skew, "skew", 0,
		"per-device Zipf exponent for the replayed stream (> 1 concentrates on hot devices; 0 = source keys)")
	fs.DurationVar(&o.duration, "duration", 10*time.Second, "how long to run")
	fs.IntVar(&o.partitions, "partitions", 8, "broker partitions (the §5.5.2 parallelism knob)")
	fs.IntVar(&o.shards, "shards", 2, "consumer shards joining the verification group")
	fs.IntVar(&o.depth, "pipeline-depth", 2, "bounded stage-queue depth per shard")
	fs.BoolVar(&o.adaptiveBatch, "adaptive-batch", false,
		"grow the micro-batch bound under queue pressure and shrink it when idle")
	fs.IntVar(&o.shedQueue, "shed-queue", 0,
		"per-shard backlog bound in records beyond which drained batches are load-shed (0 = never shed)")
	fs.IntVar(&o.storePartitions, "store-partitions", 0,
		"document-store partitions per collection (0 = one per CPU, minimum 2)")
	fs.IntVar(&o.writeBehind, "write-behind", 8192,
		"history write-behind queue bound in documents (0 = synchronous ingest)")
	fs.StringVar(&o.dataDir, "data-dir", "",
		"durable store directory: per-partition WALs + snapshots, crash recovery on boot (empty = memory only)")
	fs.DurationVar(&o.walSync, "wal-sync", docstore.DefaultWALSyncInterval,
		"WAL group-fsync interval; 0 fsyncs every append (strict, slow); requires -data-dir")
	fs.DurationVar(&o.retention, "retention", 0,
		"prune alarm history older than this at each snapshot (0 = keep everything); requires -data-dir")
	fs.IntVar(&o.classifyWorkers, "classify-workers", 0,
		"bounded classify worker pool per shard (0 = one per CPU)")
	fs.IntVar(&o.classifyBatch, "classify-batch", 256,
		"alarms per vectorized classifier call (1 = per-alarm baseline)")
	fs.DurationVar(&o.interval, "interval", 50*time.Millisecond, "idle poll wait per micro-batch drain")
	fs.IntVar(&o.trainN, "train", 30_000, "alarms for offline training")
	fs.StringVar(&o.modelDir, "model-dir", "",
		"versioned model registry directory: boot from the latest saved model and register retrained ones (empty = in-memory models only)")
	fs.DurationVar(&o.retrainInterval, "retrain-interval", 0,
		"background retrain cadence (0 = no timer-triggered retraining)")
	fs.IntVar(&o.retrainMinFB, "retrain-min-feedback", 0,
		"operator verdicts that trigger a retrain (0 = no feedback-triggered retraining)")
	fs.StringVar(&o.listen, "listen", "",
		"HTTP listen address for /verify, /feedback, /stats, /history (empty = no HTTP API)")
	fs.StringVar(&o.pprofListen, "pprof-listen", "",
		"HTTP listen address for net/http/pprof profiling endpoints under /debug/pprof/ (empty = no profiler)")
	fs.DurationVar(&o.commitCoalesce, "commit-coalesce", 0,
		"offset-commit coalescing interval per shard: persisted batches accumulate and commit once per interval (0 = commit per micro-batch)")
	fs.IntVar(&o.topDevices, "top-devices", 5,
		"noisiest devices ranked in /stats and the final report via pushdown store aggregation (0 = disabled)")
	fs.StringVar(&o.brokerAddr, "broker-addr", "",
		"comma-separated brokerd replica addresses: produce into and join shards over the wire instead of an in-process broker (empty = in-process)")
	fs.BoolVar(&o.produce, "produce", true,
		"replay generated load into the broker; disable for shard-only processes consuming a stream another process produces (requires -broker-addr)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return options{}, err
		}
		return options{}, fmt.Errorf("%w: %v", errFlagParse, err)
	}
	if _, err := loadgen.Preset(o.scenario, 1, time.Second); err != nil {
		return options{}, fmt.Errorf("alarmd: -scenario: %v", err)
	}
	// -wal-sync and -retention modify the durable store; explicitly
	// setting either without a -data-dir is a misconfiguration, not a
	// silent no-op.
	if o.dataDir == "" {
		var durFlag string
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "wal-sync" || f.Name == "retention" {
				durFlag = f.Name
			}
		})
		if durFlag != "" {
			return options{}, fmt.Errorf("alarmd: -%s requires -data-dir", durFlag)
		}
	}
	switch {
	case o.rate < 0:
		return options{}, fmt.Errorf("alarmd: -rate must be >= 0, got %d", o.rate)
	case o.skew != 0 && o.skew <= 1:
		return options{}, fmt.Errorf("alarmd: -skew must be > 1 (or 0 for uniform), got %g", o.skew)
	case o.shedQueue < 0:
		return options{}, fmt.Errorf("alarmd: -shed-queue must be >= 0, got %d", o.shedQueue)
	case o.duration <= 0:
		return options{}, fmt.Errorf("alarmd: -duration must be positive, got %s", o.duration)
	case o.partitions < 1:
		return options{}, fmt.Errorf("alarmd: -partitions must be >= 1, got %d", o.partitions)
	case o.shards < 1:
		return options{}, fmt.Errorf("alarmd: -shards must be >= 1, got %d", o.shards)
	case o.depth < 1:
		return options{}, fmt.Errorf("alarmd: -pipeline-depth must be >= 1, got %d", o.depth)
	case o.storePartitions < 0:
		return options{}, fmt.Errorf("alarmd: -store-partitions must be >= 0, got %d", o.storePartitions)
	case o.writeBehind < 0:
		return options{}, fmt.Errorf("alarmd: -write-behind must be >= 0, got %d", o.writeBehind)
	case o.walSync < 0:
		return options{}, fmt.Errorf("alarmd: -wal-sync must be >= 0, got %s", o.walSync)
	case o.retention < 0:
		return options{}, fmt.Errorf("alarmd: -retention must be >= 0, got %s", o.retention)
	case o.classifyWorkers < 0:
		return options{}, fmt.Errorf("alarmd: -classify-workers must be >= 0, got %d", o.classifyWorkers)
	case o.classifyBatch < 1:
		return options{}, fmt.Errorf("alarmd: -classify-batch must be >= 1, got %d", o.classifyBatch)
	case o.interval <= 0:
		return options{}, fmt.Errorf("alarmd: -interval must be positive, got %s", o.interval)
	case o.trainN < 1:
		return options{}, fmt.Errorf("alarmd: -train must be >= 1, got %d", o.trainN)
	case o.retrainInterval < 0:
		return options{}, fmt.Errorf("alarmd: -retrain-interval must be >= 0, got %s", o.retrainInterval)
	case o.retrainMinFB < 0:
		return options{}, fmt.Errorf("alarmd: -retrain-min-feedback must be >= 0, got %d", o.retrainMinFB)
	case o.commitCoalesce < 0:
		return options{}, fmt.Errorf("alarmd: -commit-coalesce must be >= 0, got %s", o.commitCoalesce)
	case o.topDevices < 0:
		return options{}, fmt.Errorf("alarmd: -top-devices must be >= 0, got %d", o.topDevices)
	case !o.produce && o.brokerAddr == "":
		return options{}, fmt.Errorf("alarmd: -produce=false requires -broker-addr (a local-only process with no producer would never receive records)")
	}
	return o, nil
}

func main() {
	opts, err := parseOptions(os.Args[1:], os.Stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		// Flag-package errors were already printed with usage; only
		// the post-parse validation errors still need reporting.
		if !errors.Is(err, errFlagParse) {
			fmt.Fprintln(os.Stderr, err)
		}
		os.Exit(2)
	}
	if err := run(opts); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(o options) error {
	fmt.Printf("generating world and %d training alarms...\n", o.trainN)
	world := dataset.NewWorld(42)
	cfg := dataset.DefaultSitasysConfig()
	cfg.NumAlarms = o.trainN * 3
	alarms := dataset.GenerateSitasys(world, cfg)

	var reg *modelreg.Registry
	if o.modelDir != "" {
		var err error
		reg, err = modelreg.Open(o.modelDir)
		if err != nil {
			return err
		}
	}

	var verifier *core.Verifier
	if reg != nil {
		if latest, ok, err := reg.Latest(); err != nil {
			return err
		} else if ok {
			v, err := core.LoadFromRegistry(reg, 0, nil)
			if err != nil {
				return err
			}
			verifier = v
			fmt.Printf("loaded model v%04d (%s) from %s: %d train records, %d features\n",
				latest.Version, latest.Algorithm, o.modelDir, latest.TrainRecords, latest.Features)
		}
	}
	if verifier == nil {
		fmt.Println("training verifier (random forest, Table 3 parameters)...")
		vcfg := core.DefaultVerifierConfig()
		vcfg.Classifier = ml.NewRandomForest(ml.DefaultRandomForestConfig())
		v, err := core.Train(alarms[:o.trainN], vcfg)
		if err != nil {
			return err
		}
		verifier = v
		st := verifier.Stats()
		fmt.Printf("trained on %d alarms, %d features, in %s\n",
			st.TrainRecords, st.Features, st.TrainTime.Round(time.Millisecond))
		if reg != nil {
			// Register the boot model as v1 so retrained versions have a
			// lineage, scoring it on a slice of the replay stream.
			holdout := alarms[o.trainN:min(len(alarms), o.trainN+5_000)]
			cm, err := verifier.EvaluateHoldout(holdout)
			if err != nil {
				return err
			}
			m, err := core.SaveToRegistry(reg, verifier, modelreg.HoldoutMetrics{
				Records:   cm.Total(),
				Accuracy:  cm.Accuracy(),
				Precision: cm.Precision(),
				Recall:    cm.Recall(),
				F1:        cm.F1(),
			}, 0)
			if err != nil {
				return err
			}
			fmt.Printf("registered boot model as v%04d (holdout accuracy %.4f)\n",
				m.Version, cm.Accuracy())
		}
	}

	// Broker surface: in-process by default; with -broker-addr the
	// same pipeline produces into and joins a brokerd replica set over
	// the wire (sender and cluster are the two seams; everything
	// downstream is deployment-agnostic).
	var (
		sender       broker.RecordSender
		cluster      serve.Cluster
		memberPrefix string
	)
	if o.brokerAddr != "" {
		addrs := strings.Split(o.brokerAddr, ",")
		client, err := netbroker.Dial(addrs, "alarms", netbroker.ClientOptions{})
		if err != nil {
			return err
		}
		defer client.Close()
		parts, err := client.EnsureTopic(o.partitions)
		if err != nil {
			return err
		}
		prod, err := client.NewProducer()
		if err != nil {
			return err
		}
		defer prod.Close()
		sender = prod
		cluster = client
		// Shard member ids must be unique per group across every
		// joining process.
		host, _ := os.Hostname()
		memberPrefix = fmt.Sprintf("%s-%d", host, os.Getpid())
		fmt.Printf("remote broker %s: topic \"alarms\" with %d partitions, member prefix %s\n",
			o.brokerAddr, parts, memberPrefix)
	} else {
		b := broker.New()
		defer b.Close()
		topic, err := b.CreateTopic("alarms", o.partitions)
		if err != nil {
			return err
		}
		sender = broker.NewProducer(topic)
		cluster = serve.LocalCluster{Broker: b, Topic: "alarms"}
	}
	var db *docstore.DB
	if o.dataDir != "" {
		// User-set -wal-sync 0 means strict per-append fsync, which the
		// store spells SyncInterval < 0 (its own 0 = "use the default").
		syncInterval := o.walSync
		if syncInterval == 0 {
			syncInterval = -1
		}
		var err error
		db, err = docstore.OpenDB(o.dataDir, docstore.DurableOptions{
			Partitions:   o.storePartitions,
			SyncInterval: syncInterval,
		})
		if err != nil {
			return err
		}
		fmt.Printf("durable store at %s (wal-sync %s)\n", o.dataDir, o.walSync)
	} else {
		db = docstore.NewDBWithPartitions(o.storePartitions)
	}
	// Registered before the history is built: the LIFO defer order runs
	// history.Close (draining the write-behind queue) first, then the
	// store's final sync + close.
	defer func() {
		if err := db.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "alarmd: store close: %v\n", err)
		}
	}()
	history, err := core.NewHistory(db)
	if err != nil {
		return err
	}
	recovered := history.Len()
	if o.retention > 0 {
		history.SetRetention(o.retention)
		fmt.Printf("history retention: pruning alarms older than %s at each snapshot\n", o.retention)
	}
	if o.writeBehind > 0 {
		history.EnableWriteBehind(o.writeBehind)
	}
	defer history.Close()
	if recovered > 0 {
		// A durable restart already holds a corpus; re-seeding the boot
		// train set would duplicate it in every retrain thereafter.
		fmt.Printf("recovered %d alarms from %s\n", recovered, o.dataDir)
	} else {
		// Seed the history with the boot train set: an early retrain
		// (feedback arriving in the first seconds) then competes on at
		// least the corpus the boot model was fitted on, instead of
		// replacing a 30k-alarm model with a candidate fitted — and
		// shadow-evaluated — on a thin replay prefix.
		history.RecordBatch(alarms[:o.trainN])
	}
	pipeMetrics := metrics.NewPipeline()
	svcCfg := serve.Config{
		Shards:         o.shards,
		PipelineDepth:  o.depth,
		ShedQueue:      o.shedQueue,
		CommitInterval: o.commitCoalesce,
		Consumer:       core.DefaultConsumerConfig(),
	}
	svcCfg.Consumer.PollTimeout = o.interval
	svcCfg.Consumer.ClassifyWorkers = o.classifyWorkers
	svcCfg.Consumer.ClassifyBatch = o.classifyBatch
	svcCfg.Consumer.AdaptiveBatch = o.adaptiveBatch
	svcCfg.Consumer.Metrics = pipeMetrics
	svcCfg.MemberPrefix = memberPrefix
	svc, err := serve.NewWith(cluster, "alarmd", verifier, history, svcCfg)
	if err != nil {
		return err
	}
	defer svc.Close()
	svc.Start()
	fmt.Printf("serving with %d shard(s), pipeline depth %d, %d broker partitions, %d store partitions (write-behind %d), classify batch %d\n",
		o.shards, o.depth, o.partitions, db.Partitions(), o.writeBehind, o.classifyBatch)
	if o.adaptiveBatch || o.shedQueue > 0 {
		fmt.Printf("overload control: adaptive-batch=%v shed-queue=%d\n", o.adaptiveBatch, o.shedQueue)
	}

	var retrainer *core.Retrainer
	if o.retrainInterval > 0 || o.retrainMinFB > 0 {
		retrainer = core.NewRetrainer(verifier, history, reg, core.RetrainerConfig{
			Interval:    o.retrainInterval,
			MinFeedback: o.retrainMinFB,
			Verifier:    core.DefaultVerifierConfig(),
		})
		retrainer.Start()
		defer retrainer.Stop()
		fmt.Printf("retrainer on: interval=%s min-feedback=%d registry=%q\n",
			o.retrainInterval, o.retrainMinFB, o.modelDir)
	}

	if o.listen != "" {
		api := core.NewHTTPService(verifier, history, core.DefaultCustomerPolicy())
		api.AttachPipeline(pipeMetrics)
		api.SetTopDevices(o.topDevices)
		httpSrv := &http.Server{Addr: o.listen, Handler: api.Handler()}
		go func() {
			if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "alarmd: http: %v\n", err)
			}
		}()
		// Graceful, like the rest of the drain: let in-flight requests
		// (an operator's /feedback verdict, say) complete instead of
		// severing their connections.
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			defer cancel()
			if err := httpSrv.Shutdown(ctx); err != nil {
				httpSrv.Close()
			}
		}()
		fmt.Printf("http api on %s (/verify /feedback /stats /metrics /history/{mac} /healthz)\n", o.listen)
	}

	if o.pprofListen != "" {
		// The blank net/http/pprof import registers its handlers on the
		// DefaultServeMux; serving nil exposes them. A dedicated
		// listener keeps profiling off the public API address.
		pprofSrv := &http.Server{Addr: o.pprofListen, Handler: nil}
		go func() {
			if err := pprofSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "alarmd: pprof: %v\n", err)
			}
		}()
		defer pprofSrv.Close()
		fmt.Printf("pprof on %s (/debug/pprof/profile /debug/pprof/heap /debug/pprof/mutex ...)\n", o.pprofListen)
	}

	replay := alarms[o.trainN:]
	done := make(chan loadgen.Stats, 1)
	if !o.produce {
		fmt.Println("producer off (-produce=false): consuming the remote stream only")
	} else if o.rate == 0 {
		// As-fast-as-possible replay: no arrival process to shape.
		// Enqueue-time stamping keeps the e2e (enqueue→commit)
		// histogram measuring real queueing delay — the alarms'
		// synthetic event times would read as decade-scale latencies.
		producer := core.NewProducerAppFor(sender, codec.FastCodec{})
		producer.Threads = 4
		producer.EnqueueTimestamps = true
		fmt.Printf("replaying up to %d alarms as fast as possible for %s...\n", len(replay), o.duration)
		go func() {
			stats, err := producer.Replay(replay, 0)
			st := loadgen.Stats{Scheduled: len(replay), Sent: stats.Sent,
				Elapsed: stats.Elapsed, PerSec: stats.PerSecond}
			if err != nil {
				st.Errors = len(replay) - stats.Sent
				fmt.Fprintf(os.Stderr, "alarmd: replay: %v\n", err)
			}
			done <- st
		}()
	} else {
		lcfg, err := loadgen.Preset(o.scenario, float64(o.rate), o.duration)
		if err != nil {
			return err
		}
		lcfg.Seed = 42
		lcfg.ZipfS = o.skew
		// A lazy Stream, not a materialized schedule: memory stays
		// constant at any -rate × -duration.
		lstream, err := loadgen.NewStream(lcfg, replay)
		if err != nil {
			return err
		}
		fmt.Printf("generating %q load at base %d/s for %s (skew %g)...\n",
			o.scenario, o.rate, o.duration, o.skew)
		driver := &loadgen.Driver{Sink: loadgen.NewSenderSink(sender, codec.FastCodec{}), Workers: 4}
		go func() { done <- driver.RunStream(lstream) }()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	deadline := time.After(o.duration)
	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()
loop:
	for {
		select {
		case <-deadline:
			break loop
		case s := <-sig:
			fmt.Printf("\n%s: draining in-flight batches...\n", s)
			break loop
		case stats := <-done:
			fmt.Printf("producer finished early: %d alarms in %s; draining backlog...\n",
				stats.Sent, stats.Elapsed.Round(time.Millisecond))
			for {
				lag, err := svc.Lag()
				if err != nil || lag == 0 {
					break loop
				}
				select {
				case <-deadline:
					break loop
				case s := <-sig:
					fmt.Printf("\n%s: draining in-flight batches...\n", s)
					break loop
				case <-time.After(50 * time.Millisecond):
				}
			}
		case <-ticker.C:
			stats := svc.Stats()
			lag, _ := svc.Lag()
			fmt.Printf("  verified=%d  batches=%d  lag=%d  throughput=%.0f alarms/s\n",
				stats.Records, stats.Batches, lag, stats.PerSec)
		}
	}
	// Graceful drain: every drained batch is classified, persisted and
	// committed before Stop returns.
	svc.Stop()

	stats := svc.Stats()
	fmt.Printf("\nfinal: %d alarms verified in %s, throughput %.0f alarms/s\n",
		stats.Records, stats.Elapsed.Round(time.Millisecond), stats.PerSec)
	times := stats.Times
	fmt.Printf("component breakdown: deserialize=%s streaming=%s history=%s ml=%s (ingest=%s)\n",
		times.Deserialize.Round(time.Millisecond), times.Streaming.Round(time.Millisecond),
		times.History.Round(time.Millisecond), times.ML.Round(time.Millisecond),
		times.Ingest.Round(time.Millisecond))
	snap := pipeMetrics.Snapshot()
	if e2e := snap.Stages[metrics.StageE2E]; e2e.N > 0 {
		s := e2e.Summary()
		fmt.Printf("e2e latency (enqueue→commit, %d records): p50=%.1fms p95=%.1fms p99=%.1fms max≈%.0fms\n",
			s.Count, s.P50MS, s.P95MS, s.P99MS, s.MaxMS)
	}
	if stats.ShedRecords > 0 {
		fmt.Printf("load shedding: %d records dropped (backlog bound %d)\n",
			stats.ShedRecords, o.shedQueue)
	}
	for _, sh := range stats.Shards {
		fmt.Printf("  %s: partitions=%v batches=%d records=%d shed=%d inflight-peak=%d rebalances=%d\n",
			sh.ID, sh.Partitions, sh.Batches, sh.Records, sh.ShedRecords, sh.InFlightPeak, sh.Rebalances)
		if sh.Err != nil {
			fmt.Printf("  %s: HALTED: %v\n", sh.ID, sh.Err)
		}
	}
	if o.writeBehind > 0 {
		fmt.Printf("history write-behind: %d flushes for %d batches\n",
			history.WriteBehindFlushes(), stats.Batches)
	}
	if retrainer != nil {
		rs := retrainer.Stats()
		fmt.Printf("retrainer: %d attempts, %d swaps, %d rejected; serving model v%04d (%d feedback verdicts)\n",
			rs.Attempts, rs.Swaps, rs.Rejected, verifier.ModelVersion(), history.FeedbackCount())
		if rs.LastErr != "" {
			fmt.Printf("retrainer: last error: %s\n", rs.LastErr)
		}
	}
	if committed, err := svc.Committed(); err == nil {
		var sum int64
		for _, off := range committed {
			sum += off
		}
		fmt.Printf("committed offsets: %d records durable across %d partitions\n",
			sum, len(committed))
	}
	if o.topDevices > 0 {
		if top, err := svc.TopDevices(o.topDevices); err == nil && len(top) > 0 {
			fmt.Printf("noisiest devices (pushdown group-count over %d stored alarms):\n", history.Len())
			for i, dc := range top {
				fmt.Printf("  %d. %s: %d alarms\n", i+1, dc.Mac, dc.Count)
			}
		}
	}

	// Operator view: top 3 most urgent verified alarms.
	q := core.NewOperatorQueue()
	verified := svc.Verified()
	for i := range verified {
		if verified[i].Predicted == 1 {
			q.Push(alarmByID(replay, verified[i].AlarmID), verified[i])
		}
	}
	fmt.Printf("\noperator queue: %d likely-true alarms; most urgent:\n", q.Len())
	for i := 0; i < 3; i++ {
		item, ok := q.Pop()
		if !ok {
			break
		}
		fmt.Printf("  alarm %d: %s at %s (P=%.2f)\n", item.Alarm.ID,
			item.Alarm.Type, item.Alarm.ZIP, item.Verification.Probability)
	}
	// A halted shard left records unverified: fail loudly.
	return svc.Err()
}

// alarmByID finds an alarm in the replay slice (IDs are sequential).
func alarmByID(alarms []alarm.Alarm, id int64) alarm.Alarm {
	base := alarms[0].ID
	idx := int(id - base)
	if idx >= 0 && idx < len(alarms) && alarms[idx].ID == id {
		return alarms[idx]
	}
	for i := range alarms {
		if alarms[i].ID == id {
			return alarms[i]
		}
	}
	return alarm.Alarm{ID: id}
}
