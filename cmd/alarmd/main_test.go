package main

import (
	"io"
	"strings"
	"testing"
	"time"

	"alarmverify/internal/docstore"
)

func TestParseOptionsDefaults(t *testing.T) {
	o, err := parseOptions(nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if o.rate != 5_000 || o.duration != 10*time.Second || o.partitions != 8 {
		t.Errorf("producer defaults wrong: %+v", o)
	}
	if o.shards != 2 || o.depth != 2 {
		t.Errorf("service defaults wrong: shards=%d depth=%d", o.shards, o.depth)
	}
	if o.scenario != "constant" || o.skew != 0 {
		t.Errorf("workload defaults wrong: scenario=%q skew=%g", o.scenario, o.skew)
	}
	if o.adaptiveBatch || o.shedQueue != 0 {
		t.Errorf("overload defaults wrong: adaptive-batch=%v shed-queue=%d",
			o.adaptiveBatch, o.shedQueue)
	}
	if o.storePartitions != 0 || o.writeBehind != 8192 {
		t.Errorf("store defaults wrong: store-partitions=%d write-behind=%d",
			o.storePartitions, o.writeBehind)
	}
	if o.dataDir != "" || o.walSync != docstore.DefaultWALSyncInterval || o.retention != 0 {
		t.Errorf("durability defaults wrong: data-dir=%q wal-sync=%s retention=%s",
			o.dataDir, o.walSync, o.retention)
	}
	if o.classifyWorkers != 0 || o.classifyBatch != 256 {
		t.Errorf("classify defaults wrong: classify-workers=%d classify-batch=%d",
			o.classifyWorkers, o.classifyBatch)
	}
	if o.interval != 50*time.Millisecond || o.trainN != 30_000 {
		t.Errorf("remaining defaults wrong: %+v", o)
	}
	if o.modelDir != "" || o.retrainInterval != 0 || o.retrainMinFB != 0 || o.listen != "" {
		t.Errorf("lifecycle defaults wrong: %+v", o)
	}
	if o.pprofListen != "" || o.commitCoalesce != 0 {
		t.Errorf("hot-path defaults wrong: pprof-listen=%q commit-coalesce=%s",
			o.pprofListen, o.commitCoalesce)
	}
}

func TestParseOptionsOverrides(t *testing.T) {
	o, err := parseOptions([]string{
		"-rate", "0",
		"-scenario", "flash",
		"-skew", "1.2",
		"-duration", "3s",
		"-partitions", "16",
		"-shards", "4",
		"-pipeline-depth", "3",
		"-adaptive-batch",
		"-shed-queue", "4096",
		"-store-partitions", "8",
		"-write-behind", "0",
		"-data-dir", "/tmp/alarmd-data",
		"-wal-sync", "20ms",
		"-retention", "24h",
		"-classify-workers", "3",
		"-classify-batch", "64",
		"-interval", "5ms",
		"-train", "1000",
		"-model-dir", "/tmp/models",
		"-retrain-interval", "30s",
		"-retrain-min-feedback", "250",
		"-listen", ":8080",
		"-pprof-listen", ":6060",
		"-commit-coalesce", "25ms",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if o.rate != 0 || o.duration != 3*time.Second || o.partitions != 16 {
		t.Errorf("producer overrides lost: %+v", o)
	}
	if o.shards != 4 || o.depth != 3 {
		t.Errorf("service overrides lost: shards=%d depth=%d", o.shards, o.depth)
	}
	if o.scenario != "flash" || o.skew != 1.2 {
		t.Errorf("workload overrides lost: scenario=%q skew=%g", o.scenario, o.skew)
	}
	if !o.adaptiveBatch || o.shedQueue != 4096 {
		t.Errorf("overload overrides lost: adaptive-batch=%v shed-queue=%d",
			o.adaptiveBatch, o.shedQueue)
	}
	if o.storePartitions != 8 || o.writeBehind != 0 {
		t.Errorf("store overrides lost: store-partitions=%d write-behind=%d",
			o.storePartitions, o.writeBehind)
	}
	if o.dataDir != "/tmp/alarmd-data" || o.walSync != 20*time.Millisecond || o.retention != 24*time.Hour {
		t.Errorf("durability overrides lost: data-dir=%q wal-sync=%s retention=%s",
			o.dataDir, o.walSync, o.retention)
	}
	if o.classifyWorkers != 3 || o.classifyBatch != 64 {
		t.Errorf("classify overrides lost: classify-workers=%d classify-batch=%d",
			o.classifyWorkers, o.classifyBatch)
	}
	if o.interval != 5*time.Millisecond || o.trainN != 1000 {
		t.Errorf("remaining overrides lost: %+v", o)
	}
	if o.modelDir != "/tmp/models" || o.retrainInterval != 30*time.Second ||
		o.retrainMinFB != 250 || o.listen != ":8080" {
		t.Errorf("lifecycle overrides lost: %+v", o)
	}
	if o.pprofListen != ":6060" || o.commitCoalesce != 25*time.Millisecond {
		t.Errorf("hot-path overrides lost: pprof-listen=%q commit-coalesce=%s",
			o.pprofListen, o.commitCoalesce)
	}
}

func TestParseOptionsValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of the expected error
	}{
		{"negative rate", []string{"-rate", "-1"}, "-rate"},
		{"unknown scenario", []string{"-scenario", "bogus"}, "-scenario"},
		{"sub-one skew", []string{"-skew", "0.5"}, "-skew"},
		{"negative skew", []string{"-skew", "-1.5"}, "-skew"},
		{"negative shed queue", []string{"-shed-queue", "-1"}, "-shed-queue"},
		{"zero duration", []string{"-duration", "0s"}, "-duration"},
		{"zero partitions", []string{"-partitions", "0"}, "-partitions"},
		{"zero shards", []string{"-shards", "0"}, "-shards"},
		{"negative shards", []string{"-shards", "-3"}, "-shards"},
		{"zero depth", []string{"-pipeline-depth", "0"}, "-pipeline-depth"},
		{"negative depth", []string{"-pipeline-depth", "-2"}, "-pipeline-depth"},
		{"negative classify batch", []string{"-classify-batch", "-64"}, "-classify-batch"},
		{"negative store partitions", []string{"-store-partitions", "-1"}, "-store-partitions"},
		{"negative write-behind", []string{"-write-behind", "-1"}, "-write-behind"},
		{"negative wal-sync", []string{"-data-dir", "/tmp/d", "-wal-sync", "-5ms"}, "-wal-sync"},
		{"negative retention", []string{"-data-dir", "/tmp/d", "-retention", "-1h"}, "-retention"},
		{"wal-sync without data-dir", []string{"-wal-sync", "5ms"}, "-data-dir"},
		{"retention without data-dir", []string{"-retention", "1h"}, "-data-dir"},
		{"negative classify workers", []string{"-classify-workers", "-1"}, "-classify-workers"},
		{"zero classify batch", []string{"-classify-batch", "0"}, "-classify-batch"},
		{"zero interval", []string{"-interval", "0s"}, "-interval"},
		{"zero train", []string{"-train", "0"}, "-train"},
		{"negative retrain interval", []string{"-retrain-interval", "-5s"}, "-retrain-interval"},
		{"negative retrain feedback", []string{"-retrain-min-feedback", "-1"}, "-retrain-min-feedback"},
		{"negative commit coalesce", []string{"-commit-coalesce", "-5ms"}, "-commit-coalesce"},
		{"unknown flag", []string{"-bogus"}, "bogus"},
		{"malformed int", []string{"-shards", "two"}, "shards"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseOptions(tc.args, io.Discard)
			if err == nil {
				t.Fatalf("args %v accepted, want error", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
