// Command securitymap renders the Figure 8 security map: per-location
// risk levels derived from the incident-report corpus, drawn as a
// character grid over the synthetic country.
//
// Usage:
//
//	securitymap -width 100 -height 30 -reports 5056
package main

import (
	"flag"
	"fmt"

	"alarmverify/internal/dataset"
	"alarmverify/internal/risk"
	"alarmverify/internal/textproc"
)

func main() {
	width := flag.Int("width", 96, "map width in cells")
	height := flag.Int("height", 28, "map height in cells")
	reports := flag.Int("reports", 5_056, "incident reports to synthesize (paper: 5,056)")
	seed := flag.Int64("seed", 42, "world seed")
	flag.Parse()

	world := dataset.NewWorld(*seed)
	cfg := dataset.DefaultIncidentConfig()
	cfg.NumReports = *reports
	raw := dataset.GenerateIncidentReports(world, cfg)
	pipeline := textproc.NewPipeline(world.Gaz.Names())
	incidents, stats := pipeline.Process(raw)
	model := risk.BuildModel(world.Gaz, incidents)

	fmt.Printf("collected %d reports, %d relevant after topic filter, %d annotated incidents\n",
		stats.Collected, stats.Relevant, len(incidents))
	fmt.Print(risk.SecurityMap{Width: *width, Height: *height}.Render(model))

	// Highest-risk locations, like the red zones of Figure 8.
	fmt.Println("\nhighest-risk locations (normalized risk factor):")
	type hot struct {
		name string
		nrf  float64
		n    int
	}
	var hots []hot
	for _, p := range world.Gaz.Places() {
		if n := model.IncidentCount(p.Name); n > 0 {
			hots = append(hots, hot{p.Name, model.FactorByZIP(p.ZIPs[0], risk.Normalized), n})
		}
	}
	for i := 0; i < len(hots); i++ {
		for j := i + 1; j < len(hots); j++ {
			if hots[j].nrf > hots[i].nrf {
				hots[i], hots[j] = hots[j], hots[i]
			}
		}
	}
	for i := 0; i < 8 && i < len(hots); i++ {
		fmt.Printf("  %-24s NRF=%.3f (%d incidents)\n", hots[i].name, hots[i].nrf, hots[i].n)
	}
}
