// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -exp all            # everything, small scale
//	experiments -exp fig9 -scale medium
//	experiments -exp table9 -runs 10 -scale paper
//
// Experiment ids follow the paper: table1, table2, table8, table9,
// params (tables 3-7), fig6, fig7, fig8, fig9, fig10, fig11, fig12,
// corpus (§5.2 statistics), grid (§5.3.2 methodology), e2e (§5.5),
// scaling (RF accuracy vs training volume), drift (model-lifecycle
// drift recovery: feedback → retrain → shadow eval → hot swap),
// overload (scenario sweep × load shedding: e2e latency quantiles
// under steady, burst and flash-crowd arrivals), durability (WAL-on
// vs memory-only service throughput plus crash-style recovery replay).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"alarmverify/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (or comma list): all, table1, table2, table8, table9, params, fig6, fig7, fig8, fig9, fig10, fig11, fig12, corpus, grid, e2e, drift, overload, durability")
	scaleName := flag.String("scale", "small", "dataset scale: small, medium, paper")
	runs := flag.Int("runs", 3, "averaging runs for table9 (paper uses 10)")
	flag.Parse()

	scale, err := experiments.ScaleByName(*scaleName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	env := experiments.NewEnv(scale)

	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = []string{"table1", "params", "corpus", "fig6", "fig7", "fig8",
			"table2", "fig9", "fig10", "table8", "table9", "fig11", "fig12", "e2e", "scaling", "drift", "overload", "durability"}
	}
	for _, id := range ids {
		if err := run(env, strings.TrimSpace(id), *runs); err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s: %v\n", id, err)
			os.Exit(1)
		}
	}
}

func run(env *experiments.Env, id string, runs int) error {
	start := time.Now()
	defer func() {
		fmt.Printf("[%s: %s, scale=%s]\n\n", id, time.Since(start).Round(time.Millisecond), env.Scale.Name)
	}()
	switch id {
	case "table1":
		fmt.Println(experiments.Table1())
	case "params":
		fmt.Println(experiments.Params())
	case "corpus":
		fmt.Println(experiments.RenderCorpusStats(experiments.CorpusStats(env)))
	case "fig6":
		perYear, ratio := experiments.Fig6(env)
		fmt.Println(experiments.RenderFig6(perYear, ratio))
	case "fig7":
		fmt.Println(experiments.RenderFig7(experiments.Fig7(env, 12, time.Minute)))
	case "fig8":
		fmt.Println(experiments.Fig8(env, 72, 20))
	case "table2":
		res, err := experiments.Table2(env, time.Minute)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderTable2(res))
	case "fig9":
		results, err := experiments.Fig9(env, nil)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderFig9(results))
	case "fig10", "table8":
		results, err := experiments.Fig10AndTable8(env)
		if err != nil {
			return err
		}
		if id == "fig10" {
			fmt.Println(experiments.RenderFig10(results))
		} else {
			fmt.Println(experiments.RenderTable8(results))
		}
	case "table9":
		rows, err := experiments.Table9(env, runs)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderTable9(rows))
	case "fig11":
		results, err := experiments.Fig11(env)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderFig11(results))
	case "fig12":
		res, err := experiments.Fig12(env)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderFig12(res))
	case "e2e":
		results, err := experiments.EndToEnd(env)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderEndToEnd(results))
	case "scaling":
		points, err := experiments.ScalingCurve(env, []int{5_000, 10_000, 20_000, env.Scale.SitasysAlarms})
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderScalingCurve(points))
	case "drift":
		res, err := experiments.DriftRecovery(env)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderDriftRecovery(res))
	case "overload":
		res, err := experiments.Overload(env)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderOverload(res))
	case "durability":
		res, err := experiments.Durability(env)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderDurability(res))
	case "grid":
		results, err := experiments.GridSearchDemo(env)
		if err != nil {
			return err
		}
		fmt.Println("Grid search (§5.3.2 methodology), best first:")
		for _, r := range results {
			fmt.Printf("  trees=%2.0f depth=%2.0f  cv-accuracy=%.4f\n",
				r.Point["trees"], r.Point["depth"], r.Score)
		}
		fmt.Println()
	default:
		return fmt.Errorf("unknown experiment id %q", id)
	}
	return nil
}
