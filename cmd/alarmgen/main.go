// Command alarmgen exports the synthetic datasets as files, so the
// generated corpora can be inspected or consumed by external tools:
// alarms as JSON lines (the wire codec format), London/San Francisco
// records and incident reports as CSV.
//
// Usage:
//
//	alarmgen -dataset sitasys -n 10000 -out alarms.jsonl
//	alarmgen -dataset lfb     -n 50000 -out lfb.csv
//	alarmgen -dataset sf      -n 100000 -out sf.csv
//	alarmgen -dataset incidents -n 5056 -out reports.csv
package main

import (
	"bufio"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"alarmverify/internal/codec"
	"alarmverify/internal/dataset"
)

func main() {
	ds := flag.String("dataset", "sitasys", "sitasys, lfb, sf or incidents")
	n := flag.Int("n", 10_000, "records to generate")
	out := flag.String("out", "", "output file (default stdout)")
	seed := flag.Int64("seed", 42, "world seed")
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := export(w, *ds, *n, *seed); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func export(f io.Writer, ds string, n int, seed int64) error {
	bw := bufio.NewWriterSize(f, 1<<20)
	defer bw.Flush()
	switch ds {
	case "sitasys":
		world := dataset.NewWorld(seed)
		cfg := dataset.DefaultSitasysConfig()
		cfg.NumAlarms = n
		var c codec.FastCodec
		var buf []byte
		for _, a := range dataset.GenerateSitasys(world, cfg) {
			var err error
			buf, err = c.Marshal(buf[:0], &a)
			if err != nil {
				return err
			}
			bw.Write(buf)
			bw.WriteByte('\n')
		}
		return nil
	case "lfb":
		cfg := dataset.DefaultLFBConfig()
		cfg.NumIncidents = n
		cw := csv.NewWriter(bw)
		cw.Write([]string{"zip", "call_time", "property_category", "property_type", "incident_group"})
		for _, r := range dataset.GenerateLFB(cfg) {
			cw.Write([]string{r.ZIP, r.CallTime.Format(time.RFC3339),
				r.PropertyCategory, r.PropertyType, r.IncidentGroup})
		}
		cw.Flush()
		return cw.Error()
	case "sf":
		cfg := dataset.DefaultSFConfig()
		cfg.TotalRecords = n
		cw := csv.NewWriter(bw)
		cw.Write([]string{"zip", "received", "call_type", "call_final_disposition"})
		for _, r := range dataset.GenerateSF(cfg) {
			cw.Write([]string{r.ZIP, r.ReceivedDtTm.Format(time.RFC3339),
				r.CallType, r.CallFinalDisposition})
		}
		cw.Flush()
		return cw.Error()
	case "incidents":
		world := dataset.NewWorld(seed)
		cfg := dataset.DefaultIncidentConfig()
		cfg.NumReports = n
		cw := csv.NewWriter(bw)
		cw.Write([]string{"source", "meta_time", "meta_location", "text"})
		for _, r := range dataset.GenerateIncidentReports(world, cfg) {
			metaTime := ""
			if !r.MetaTime.IsZero() {
				metaTime = r.MetaTime.Format(time.RFC3339)
			}
			cw.Write([]string{r.Source, metaTime, r.MetaLocation, r.Text})
		}
		cw.Flush()
		return cw.Error()
	default:
		return fmt.Errorf("unknown dataset %q (sitasys|lfb|sf|incidents)", ds)
	}
}
