// Command alarmgen is the scenario load generator: it synthesizes an
// alarm stream under a named arrival process (constant, poisson,
// burst, diurnal, flash) with optional per-device Zipf skew, and
// either drives it open-loop against a live HTTP edge (-target) or
// writes the timed schedule out as JSON lines for offline tooling.
//
// The legacy dataset-export mode is retained behind -dataset: alarms
// as JSON lines (the wire codec format), London/San Francisco records
// and incident reports as CSV.
//
// Usage:
//
//	alarmgen -scenario flash -rate 2000 -duration 10s -target http://localhost:8080/verify
//	alarmgen -scenario burst -rate 500 -duration 30s -skew 1.3 -out stream.jsonl
//	alarmgen -scenario poisson -rate 1000 -duration 5s            # schedule to stdout
//	alarmgen -dataset lfb -n 50000 -out lfb.csv                   # legacy export
package main

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"alarmverify/internal/codec"
	"alarmverify/internal/dataset"
	"alarmverify/internal/loadgen"
)

// options is the validated alarmgen configuration.
type options struct {
	// Load-generation mode.
	scenario string
	rate     float64
	duration time.Duration
	skew     float64
	deadline time.Duration
	workers  int
	target   string

	// Shared.
	n    int
	out  string
	seed int64

	// Legacy export mode (set when -dataset is given).
	dataset string
}

// errFlagParse wraps errors the flag package already reported to the
// FlagSet's output (with usage), so main does not print them twice.
var errFlagParse = errors.New("alarmgen: invalid flags")

// parseOptions parses and validates the command line.
func parseOptions(args []string, output io.Writer) (options, error) {
	var o options
	fs := flag.NewFlagSet("alarmgen", flag.ContinueOnError)
	fs.SetOutput(output)
	fs.StringVar(&o.scenario, "scenario", "constant",
		fmt.Sprintf("arrival process: %s", strings.Join(loadgen.Scenarios(), "|")))
	fs.Float64Var(&o.rate, "rate", 1_000, "base arrival rate in alarms/s")
	fs.DurationVar(&o.duration, "duration", 10*time.Second, "stream length")
	fs.Float64Var(&o.skew, "skew", 0,
		"per-device Zipf exponent (> 1 concentrates traffic on hot devices; 0 = uniform)")
	fs.DurationVar(&o.deadline, "deadline", 0,
		"per-record delivery budget; late records are dropped and counted (0 = none)")
	fs.IntVar(&o.workers, "workers", 4, "open-loop pacing goroutines for -target")
	fs.StringVar(&o.target, "target", "",
		"POST /verify endpoint URL to drive open-loop (empty = write the schedule to -out)")
	fs.IntVar(&o.n, "n", 10_000, "source alarms to synthesize (schedule cycles through them); record count in -dataset mode")
	fs.StringVar(&o.out, "out", "", "output file (default stdout)")
	fs.Int64Var(&o.seed, "seed", 42, "world and schedule seed")
	fs.StringVar(&o.dataset, "dataset", "",
		"legacy export mode: sitasys, lfb, sf or incidents (disables load generation)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return options{}, err
		}
		return options{}, fmt.Errorf("%w: %v", errFlagParse, err)
	}
	if o.dataset != "" {
		if o.n < 1 {
			return options{}, fmt.Errorf("alarmgen: -n must be >= 1, got %d", o.n)
		}
		return o, nil
	}
	if _, err := loadgen.Preset(o.scenario, 1, time.Second); err != nil {
		return options{}, fmt.Errorf("alarmgen: -scenario: %v", err)
	}
	switch {
	case o.rate <= 0:
		return options{}, fmt.Errorf("alarmgen: -rate must be positive, got %g", o.rate)
	case o.duration <= 0:
		return options{}, fmt.Errorf("alarmgen: -duration must be positive, got %s", o.duration)
	case o.skew != 0 && o.skew <= 1:
		return options{}, fmt.Errorf("alarmgen: -skew must be > 1 (or 0 for uniform), got %g", o.skew)
	case o.deadline < 0:
		return options{}, fmt.Errorf("alarmgen: -deadline must be >= 0, got %s", o.deadline)
	case o.workers < 1:
		return options{}, fmt.Errorf("alarmgen: -workers must be >= 1, got %d", o.workers)
	case o.n < 1:
		return options{}, fmt.Errorf("alarmgen: -n must be >= 1, got %d", o.n)
	case o.target != "" && o.out != "":
		return options{}, fmt.Errorf("alarmgen: -target drives the stream live; -out only applies to schedule export (drop one)")
	}
	return o, nil
}

func main() {
	o, err := parseOptions(os.Args[1:], os.Stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		if !errors.Is(err, errFlagParse) {
			fmt.Fprintln(os.Stderr, err)
		}
		os.Exit(2)
	}
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(o options) error {
	if o.dataset != "" {
		return writeOutput(o.out, func(w io.Writer) error {
			return export(w, o.dataset, o.n, o.seed)
		})
	}

	cfg, err := loadgen.Preset(o.scenario, o.rate, o.duration)
	if err != nil {
		return err
	}
	cfg.Seed = o.seed
	cfg.ZipfS = o.skew
	cfg.Deadline = o.deadline
	world := dataset.NewWorld(o.seed)
	dcfg := dataset.DefaultSitasysConfig()
	dcfg.NumAlarms = o.n
	sched, err := loadgen.Schedule(cfg, dataset.GenerateSitasys(world, dcfg))
	if err != nil {
		return err
	}

	if o.target != "" {
		fmt.Fprintf(os.Stderr, "driving %d arrivals (%s at %g/s base) against %s...\n",
			len(sched), o.scenario, o.rate, o.target)
		st := (&loadgen.Driver{
			Sink:    &loadgen.HTTPSink{URL: o.target},
			Workers: o.workers,
		}).Run(sched)
		fmt.Printf("sent=%d missed=%d errors=%d in %s (%.0f alarms/s, max lateness %s)\n",
			st.Sent, st.Missed, st.Errors, st.Elapsed.Round(time.Millisecond),
			st.PerSec, st.MaxLateness.Round(time.Millisecond))
		if st.Errors > 0 {
			return fmt.Errorf("alarmgen: %d sends failed", st.Errors)
		}
		return nil
	}

	return writeOutput(o.out, func(w io.Writer) error {
		return writeSchedule(w, sched)
	})
}

// writeOutput streams fn's output to path (stdout when empty) and
// surfaces every flush and close error: a generated schedule that
// silently lost its tail to a full disk poisons every run that reads
// it.
func writeOutput(path string, fn func(io.Writer) error) error {
	if path == "" {
		return fn(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		_ = f.Close() // the write failure supersedes; partial output is abandoned
		return err
	}
	return f.Close()
}

// scheduleLine is the JSONL wire shape of one scheduled arrival.
type scheduleLine struct {
	AtMS       float64         `json:"atMs"`
	DeadlineMS float64         `json:"deadlineMs,omitempty"`
	Alarm      json.RawMessage `json:"alarm"`
}

// writeSchedule streams the schedule as one JSON object per line.
func writeSchedule(f io.Writer, sched []loadgen.Arrival) error {
	bw := bufio.NewWriterSize(f, 1<<20)
	enc := json.NewEncoder(bw)
	var c codec.FastCodec
	var buf []byte
	for i := range sched {
		var err error
		buf, err = c.Marshal(buf[:0], &sched[i].Alarm)
		if err != nil {
			return err
		}
		line := scheduleLine{
			AtMS:       float64(sched[i].At) / float64(time.Millisecond),
			DeadlineMS: float64(sched[i].Deadline) / float64(time.Millisecond),
			Alarm:      json.RawMessage(buf),
		}
		if err := enc.Encode(&line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// export is the legacy dataset-export mode.
func export(f io.Writer, ds string, n int, seed int64) error {
	bw := bufio.NewWriterSize(f, 1<<20)
	switch ds {
	case "sitasys":
		world := dataset.NewWorld(seed)
		cfg := dataset.DefaultSitasysConfig()
		cfg.NumAlarms = n
		var c codec.FastCodec
		var buf []byte
		for _, a := range dataset.GenerateSitasys(world, cfg) {
			var err error
			buf, err = c.Marshal(buf[:0], &a)
			if err != nil {
				return err
			}
			bw.Write(buf)
			bw.WriteByte('\n')
		}
		return bw.Flush()
	case "lfb":
		cfg := dataset.DefaultLFBConfig()
		cfg.NumIncidents = n
		cw := csv.NewWriter(bw)
		cw.Write([]string{"zip", "call_time", "property_category", "property_type", "incident_group"})
		for _, r := range dataset.GenerateLFB(cfg) {
			cw.Write([]string{r.ZIP, r.CallTime.Format(time.RFC3339),
				r.PropertyCategory, r.PropertyType, r.IncidentGroup})
		}
		cw.Flush()
		if err := cw.Error(); err != nil {
			return err
		}
		return bw.Flush()
	case "sf":
		cfg := dataset.DefaultSFConfig()
		cfg.TotalRecords = n
		cw := csv.NewWriter(bw)
		cw.Write([]string{"zip", "received", "call_type", "call_final_disposition"})
		for _, r := range dataset.GenerateSF(cfg) {
			cw.Write([]string{r.ZIP, r.ReceivedDtTm.Format(time.RFC3339),
				r.CallType, r.CallFinalDisposition})
		}
		cw.Flush()
		if err := cw.Error(); err != nil {
			return err
		}
		return bw.Flush()
	case "incidents":
		world := dataset.NewWorld(seed)
		cfg := dataset.DefaultIncidentConfig()
		cfg.NumReports = n
		cw := csv.NewWriter(bw)
		cw.Write([]string{"source", "meta_time", "meta_location", "text"})
		for _, r := range dataset.GenerateIncidentReports(world, cfg) {
			metaTime := ""
			if !r.MetaTime.IsZero() {
				metaTime = r.MetaTime.Format(time.RFC3339)
			}
			cw.Write([]string{r.Source, metaTime, r.MetaLocation, r.Text})
		}
		cw.Flush()
		if err := cw.Error(); err != nil {
			return err
		}
		return bw.Flush()
	default:
		return fmt.Errorf("unknown dataset %q (sitasys|lfb|sf|incidents)", ds)
	}
}
