package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"
	"time"

	"alarmverify/internal/dataset"
	"alarmverify/internal/loadgen"
)

func TestParseOptionsDefaults(t *testing.T) {
	o, err := parseOptions(nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if o.scenario != "constant" || o.rate != 1000 || o.duration != 10*time.Second {
		t.Errorf("load-gen defaults wrong: %+v", o)
	}
	if o.skew != 0 || o.deadline != 0 || o.workers != 4 || o.target != "" {
		t.Errorf("skew/deadline/workers/target defaults wrong: %+v", o)
	}
	if o.n != 10_000 || o.seed != 42 || o.dataset != "" {
		t.Errorf("shared defaults wrong: %+v", o)
	}
}

func TestParseOptionsValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"unknown scenario", []string{"-scenario", "bogus"}, "scenario"},
		{"zero rate", []string{"-rate", "0"}, "-rate"},
		{"negative rate", []string{"-rate", "-5"}, "-rate"},
		{"zero duration", []string{"-duration", "0s"}, "-duration"},
		{"sub-one skew", []string{"-skew", "0.8"}, "-skew"},
		{"negative deadline", []string{"-deadline", "-1s"}, "-deadline"},
		{"zero workers", []string{"-workers", "0"}, "-workers"},
		{"zero n", []string{"-n", "0"}, "-n"},
		{"export zero n", []string{"-dataset", "lfb", "-n", "0"}, "-n"},
		{"target with out", []string{"-target", "http://x/verify", "-out", "s.jsonl"}, "-target"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseOptions(tc.args, io.Discard)
			if err == nil {
				t.Fatalf("args %v accepted, want error", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	// Export mode must not validate load-gen flags: -dataset with a
	// rate of 0 (never parsed) is fine.
	if _, err := parseOptions([]string{"-dataset", "sitasys"}, io.Discard); err != nil {
		t.Errorf("export mode rejected: %v", err)
	}
}

func TestWriteScheduleJSONL(t *testing.T) {
	world := dataset.NewWorld(1)
	dcfg := dataset.DefaultSitasysConfig()
	dcfg.NumAlarms = 200
	dcfg.PayloadBytes = 0
	cfg, err := loadgen.Preset("burst", 500, 400*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Deadline = 50 * time.Millisecond
	sched, err := loadgen.Schedule(cfg, dataset.GenerateSitasys(world, dcfg))
	if err != nil {
		t.Fatal(err)
	}
	if len(sched) == 0 {
		t.Fatal("empty schedule")
	}
	var buf bytes.Buffer
	if err := writeSchedule(&buf, sched); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	prevAt := -1.0
	for sc.Scan() {
		var line scheduleLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
		if line.AtMS < prevAt {
			t.Fatalf("line %d out of order: %f after %f", lines, line.AtMS, prevAt)
		}
		prevAt = line.AtMS
		if line.DeadlineMS != 50 {
			t.Fatalf("line %d deadline %f, want 50", lines, line.DeadlineMS)
		}
		var a struct {
			ID int64 `json:"id"`
		}
		if err := json.Unmarshal(line.Alarm, &a); err != nil || a.ID == 0 {
			t.Fatalf("line %d alarm payload invalid: %v", lines, err)
		}
		lines++
	}
	if lines != len(sched) {
		t.Fatalf("wrote %d lines, want %d", lines, len(sched))
	}
}
