package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const baseOut = `goos: linux
BenchmarkShardedThroughput/shards=4-8   1   1000000 ns/op   20000 alarms/s
BenchmarkClassifyBatch/batch=512/workers=2-8   1   500 ns/op   75000 alarms/s
BenchmarkFig11Serializer-8   1   100 ns/op   50000 fast_prod_per_s   1.5 p99_flash_ms
`

func TestParseBenchKeepsThroughputStripsCores(t *testing.T) {
	got, err := parseBench(writeTemp(t, "b.txt", baseOut))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d metrics, want 3 (latency must be ignored): %v", len(got), got)
	}
	if v := got[metricKey{"BenchmarkShardedThroughput/shards=4", "alarms/s"}]; v != 20000 {
		t.Fatalf("sharded metric = %v (GOMAXPROCS suffix must be stripped)", v)
	}
	if v := got[metricKey{"BenchmarkFig11Serializer", "fast_prod_per_s"}]; v != 50000 {
		t.Fatalf("per_s metric = %v", v)
	}
}

func TestCompareVerdicts(t *testing.T) {
	base, err := parseBench(writeTemp(t, "base.txt", baseOut))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		cand string
		want int
	}{
		{"unchanged", baseOut, 0},
		{"small dip ok", `BenchmarkShardedThroughput/shards=4-2   1   1 ns/op   16000 alarms/s
BenchmarkClassifyBatch/batch=512/workers=2-2   1   1 ns/op   75000 alarms/s
BenchmarkFig11Serializer-2   1   1 ns/op   50000 fast_prod_per_s
`, 0},
		{"regression fails", `BenchmarkShardedThroughput/shards=4-2   1   1 ns/op   9000 alarms/s
BenchmarkClassifyBatch/batch=512/workers=2-2   1   1 ns/op   75000 alarms/s
BenchmarkFig11Serializer-2   1   1 ns/op   50000 fast_prod_per_s
`, 1},
		{"vanished sweep fails", `BenchmarkShardedThroughput/shards=4-2   1   1 ns/op   20000 alarms/s
`, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cand, err := parseBench(writeTemp(t, "cand.txt", tc.cand))
			if err != nil {
				t.Fatal(err)
			}
			null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
			if err != nil {
				t.Fatal(err)
			}
			defer null.Close()
			if got := compare(null, base, cand, 25, nil); got != tc.want {
				t.Fatalf("compare = %d, want %d", got, tc.want)
			}
		})
	}
}

const allocBase = `goos: linux
BenchmarkDecodePath/scratch-8   100   5000 ns/op   0 B/op   0 allocs/op   9000 alarms/s
BenchmarkDecodePath/copying-8   100   9000 ns/op   2048 B/op   17 allocs/op   5000 alarms/s
`

// TestAllocMetricsAreGatedLowerIsBetter covers the -benchmem
// direction: allocation growth past the threshold fails, shrinkage
// passes, and any growth from a zero baseline fails outright.
func TestAllocMetricsAreGatedLowerIsBetter(t *testing.T) {
	base, err := parseBench(writeTemp(t, "base.txt", allocBase))
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != 6 {
		t.Fatalf("parsed %d metrics, want 6 (2 alloc + 1 throughput per sub-bench): %v", len(base), base)
	}
	cases := []struct {
		name string
		cand string
		want int
	}{
		{"unchanged", allocBase, 0},
		{"allocs shrink ok", `BenchmarkDecodePath/scratch-8   100   1 ns/op   0 B/op   0 allocs/op   9000 alarms/s
BenchmarkDecodePath/copying-8   100   1 ns/op   1024 B/op   9 allocs/op   5000 alarms/s
`, 0},
		{"allocs grow past threshold", `BenchmarkDecodePath/scratch-8   100   1 ns/op   0 B/op   0 allocs/op   9000 alarms/s
BenchmarkDecodePath/copying-8   100   1 ns/op   2048 B/op   30 allocs/op   5000 alarms/s
`, 1},
		{"zero baseline regained allocs", `BenchmarkDecodePath/scratch-8   100   1 ns/op   64 B/op   2 allocs/op   9000 alarms/s
BenchmarkDecodePath/copying-8   100   1 ns/op   2048 B/op   17 allocs/op   5000 alarms/s
`, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cand, err := parseBench(writeTemp(t, "cand.txt", tc.cand))
			if err != nil {
				t.Fatal(err)
			}
			null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
			if err != nil {
				t.Fatal(err)
			}
			defer null.Close()
			if got := compare(null, base, cand, 25, nil); got != tc.want {
				t.Fatalf("compare = %d, want %d", got, tc.want)
			}
		})
	}
}

// TestNewBenchmarkInCandidateIsNotGated pins the first-PR property:
// a sweep that exists only in the candidate (it was just added) must
// not fail the gate.
func TestNewBenchmarkInCandidateIsNotGated(t *testing.T) {
	base, err := parseBench(writeTemp(t, "base.txt", baseOut))
	if err != nil {
		t.Fatal(err)
	}
	cand, err := parseBench(writeTemp(t, "cand.txt", baseOut+
		"BenchmarkOverload-8   1   1 ns/op   4000 capacity_per_s\n"))
	if err != nil {
		t.Fatal(err)
	}
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	if got := compare(null, base, cand, 25, nil); got != 0 {
		t.Fatalf("new candidate-only benchmark failed the gate")
	}
}
