// Command benchdiff gates throughput regressions in CI: it parses two
// `go test -bench` outputs (a baseline and a candidate), pairs the
// named benchmarks' custom throughput metrics, and fails when a
// candidate value regresses past the threshold.
//
// Two metric directions are gated. Gain-direction throughput metrics
// (alarms/s and *_per_s — higher is better) fail when the candidate
// drops more than the threshold. Allocation metrics from -benchmem
// (allocs/op and B/op — lower is better) fail when the candidate
// grows more than the threshold, which is how the zero-copy decode
// path stays zero-copy: a change that re-introduces per-record heap
// allocation moves allocs/op from 0 and fails the gate outright.
// Latency- and count-style metrics vary with the scenario under test
// and are reported by the benchmarks themselves. Benchmarks present
// only in the candidate are skipped (new sweeps must not need a time
// machine); benchmarks present only in the baseline fail the gate,
// because a silently vanished sweep is exactly the rot the gate
// exists to catch.
//
// Usage:
//
//	benchdiff -threshold 25 bench-baseline.txt bench-head.txt
//	benchdiff -threshold 25 -match 'BenchmarkSharded|BenchmarkOverload' old.txt new.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// metricKey identifies one benchmark metric across the two runs.
type metricKey struct {
	Bench  string
	Metric string
}

// throughputMetric reports whether a metric unit is gain-direction
// throughput (higher is better) rather than latency or a count.
func throughputMetric(unit string) bool {
	return unit == "alarms/s" || strings.HasSuffix(unit, "_per_s")
}

// allocMetric reports whether a metric unit is a -benchmem allocation
// metric (lower is better).
func allocMetric(unit string) bool {
	return unit == "allocs/op" || unit == "B/op"
}

// benchLine matches one benchmark result line:
//
//	BenchmarkName/sub=1-8   1   123456 ns/op   7890 alarms/s   1.2 p99_ms
var benchLine = regexp.MustCompile(`^(Benchmark\S*)\s+\d+\s+(.*)$`)

// parseBench extracts {benchmark, metric} → value pairs from go test
// -bench output, keeping only throughput metrics.
func parseBench(path string) (map[metricKey]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[metricKey]float64)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		// Strip the -<GOMAXPROCS> suffix so runs from machines with
		// different core counts still pair up.
		name := m[1]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		fields := strings.Fields(m[2])
		for i := 0; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			if throughputMetric(fields[i+1]) || allocMetric(fields[i+1]) {
				out[metricKey{name, fields[i+1]}] = val
			}
		}
	}
	return out, sc.Err()
}

func main() {
	threshold := flag.Float64("threshold", 25,
		"maximum tolerated throughput drop in percent")
	match := flag.String("match", "",
		"optional regexp restricting which benchmarks are gated (default: all parsed)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold pct] [-match re] baseline.txt candidate.txt")
		os.Exit(2)
	}
	var matchRE *regexp.Regexp
	if *match != "" {
		re, err := regexp.Compile(*match)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: bad -match: %v\n", err)
			os.Exit(2)
		}
		matchRE = re
	}
	base, err := parseBench(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: baseline: %v\n", err)
		os.Exit(2)
	}
	cand, err := parseBench(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: candidate: %v\n", err)
		os.Exit(2)
	}
	if code := compare(os.Stdout, base, cand, *threshold, matchRE); code != 0 {
		os.Exit(code)
	}
}

// compare pairs the two runs and prints one verdict line per metric;
// it returns 1 if any gated metric regressed past the threshold or a
// baseline benchmark vanished from the candidate.
func compare(w *os.File, base, cand map[metricKey]float64, threshold float64, match *regexp.Regexp) int {
	keys := make([]metricKey, 0, len(base))
	for k := range base {
		if match == nil || match.MatchString(k.Bench) {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Bench != keys[j].Bench {
			return keys[i].Bench < keys[j].Bench
		}
		return keys[i].Metric < keys[j].Metric
	})
	if len(keys) == 0 {
		fmt.Fprintln(w, "benchdiff: no gated throughput metrics in baseline — nothing to compare")
		return 0
	}
	fail := 0
	for _, k := range keys {
		baseVal := base[k]
		candVal, ok := cand[k]
		if !ok {
			fmt.Fprintf(w, "MISSING  %s %s: in baseline (%.0f) but not in candidate\n",
				k.Bench, k.Metric, baseVal)
			fail = 1
			continue
		}
		deltaPct := 0.0
		if baseVal != 0 {
			deltaPct = 100 * (candVal - baseVal) / baseVal
		}
		verdict := "ok      "
		if allocMetric(k.Metric) {
			// Lower is better; a zero baseline is an earned invariant
			// (the zero-allocation decode path), so any growth from
			// zero regresses regardless of the percentage threshold.
			if deltaPct > threshold || (baseVal == 0 && candVal > 0) {
				verdict = "REGRESSED"
				fail = 1
			}
		} else if deltaPct < -threshold {
			verdict = "REGRESSED"
			fail = 1
		}
		fmt.Fprintf(w, "%s %s %s: %.0f -> %.0f (%+.1f%%)\n",
			verdict, k.Bench, k.Metric, baseVal, candVal, deltaPct)
	}
	if fail != 0 {
		fmt.Fprintf(w, "benchdiff: throughput or allocation regression beyond %.0f%% (or vanished sweep)\n", threshold)
	}
	return fail
}
