package textproc

import (
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"alarmverify/internal/docstore"
)

func TestTokenize(t *testing.T) {
	got := Tokenize("Break-in at Zürich!  Police responded, 23:45.")
	want := []string{"break-in", "at", "zürich", "police", "responded", "23", "45"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("tokens = %v, want %v", got, want)
	}
	if toks := Tokenize(""); len(toks) != 0 {
		t.Errorf("empty text tokens = %v", toks)
	}
	if toks := Tokenize("---"); len(toks) != 0 {
		t.Errorf("punctuation-only tokens = %v", toks)
	}
}

func TestTokenizePropertyLowercaseNonEmpty(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if tok == "" {
				return false
			}
			for _, r := range tok {
				if r >= 'A' && r <= 'Z' {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDetectLanguage(t *testing.T) {
	cases := []struct {
		text string
		want Language
	}{
		{"Die Feuerwehr wurde am Montag zu einem Brand in der Altstadt gerufen", German},
		{"Les pompiers sont intervenus pour un incendie dans le quartier de la gare", French},
		{"Firefighters responded to a blaze at the warehouse on Monday morning", English},
		{"0447 1123 9981", Unknown},
	}
	for _, tc := range cases {
		if got := DetectLanguage(tc.text); got != tc.want {
			t.Errorf("DetectLanguage(%q) = %s, want %s", tc.text, got, tc.want)
		}
	}
}

func TestClassifyTopic(t *testing.T) {
	cases := []struct {
		text string
		want Topic
	}{
		{"Brand in einem Mehrfamilienhaus, die Feuerwehr löschte den Vollbrand", TopicFire},
		{"Einbruch in ein Einfamilienhaus, die Einbrecher haben Schmuck gestohlen", TopicIntrusion},
		{"Un incendie a détruit une grange près de Lausanne", TopicFire},
		{"Cambriolage dans une villa, les voleurs ont dérobé des bijoux", TopicIntrusion},
		{"Burglary reported: intruder broke in and stole electronics", TopicIntrusion},
		{"Local football club wins the championship game", TopicNone},
		{"", TopicNone},
	}
	for _, tc := range cases {
		if got := ClassifyTopic(tc.text); got != tc.want {
			t.Errorf("ClassifyTopic(%q) = %q, want %q", tc.text, got, tc.want)
		}
	}
}

func TestExtractDateFormats(t *testing.T) {
	want := time.Date(2016, 2, 11, 0, 0, 0, 0, time.UTC)
	cases := []string{
		"Incident am 11.2.2016 gemeldet",
		"Reported on 2016-02-11 in the morning",
		"Signalé le 11/02/2016 au matin",
		"Brand am 11. Februar 2016 in Winterthur",
		"Incendie le 11 février 2016 à Genève",
		"Fire on 11 February 2016 near the station",
		"Blaze on February 11, 2016 destroyed a barn",
	}
	for _, text := range cases {
		got, ok := ExtractDate(text)
		if !ok {
			t.Errorf("ExtractDate(%q): not found", text)
			continue
		}
		if !got.Equal(want) {
			t.Errorf("ExtractDate(%q) = %s, want %s", text, got, want)
		}
	}
}

func TestExtractDateRejectsInvalid(t *testing.T) {
	for _, text := range []string{
		"no date here",
		"call 079/555/1234 now", // phone-like but invalid date
		"on 30.02.2016 nothing happened",
		"in year 0100-01-01",
	} {
		if d, ok := ExtractDate(text); ok {
			t.Errorf("ExtractDate(%q) = %v, want none", text, d)
		}
	}
}

func TestLocationIndex(t *testing.T) {
	idx := NewLocationIndex([]string{"Zürich", "Winterthur", "La Chaux-de-Fonds", "Basel"})
	cases := []struct {
		text string
		want string
		ok   bool
	}{
		{"Brand in Winterthur gemeldet", "Winterthur", true},
		{"Incendie à La Chaux-de-Fonds hier soir", "La Chaux-de-Fonds", true},
		{"Einbruch in Zürich Altstadt", "Zürich", true},
		{"Nothing about any known place", "", false},
	}
	for _, tc := range cases {
		got, ok := idx.ExtractLocation(tc.text)
		if ok != tc.ok || got != tc.want {
			t.Errorf("ExtractLocation(%q) = %q,%v want %q,%v", tc.text, got, ok, tc.want, tc.ok)
		}
	}
}

func TestLocationIndexPrefersLongestMatch(t *testing.T) {
	idx := NewLocationIndex([]string{"Neuenburg", "Neuenburg am See"})
	got, ok := idx.ExtractLocation("Brand in Neuenburg am See gestern")
	if !ok || got != "Neuenburg am See" {
		t.Errorf("longest match = %q, %v", got, ok)
	}
}

func TestPipelineProcess(t *testing.T) {
	p := NewPipeline([]string{"Zürich", "Basel", "Winterthur"})
	reports := []Report{
		{Source: "twitter:@kapo", Text: "Brand in Winterthur am 11.2.2016, Feuerwehr im Einsatz"},
		{Source: "rss:blotter", Text: "Burglary in Basel: intruder stole jewellery",
			MetaTime: time.Date(2016, 3, 1, 0, 0, 0, 0, time.UTC)},
		{Source: "web:news", Text: "Football results from the weekend"},
		{Source: "twitter:@kapo", Text: "Einbruch gemeldet, Täter flüchtig",
			MetaLocation: "Zürich"},
		{Source: "web:misc", Text: "Cambriolage dans une villa inconnue"}, // no location at all
	}
	incidents, st := p.Process(reports)
	if st.Collected != 5 || st.Relevant != 4 {
		t.Fatalf("stats = %+v", st)
	}
	if len(incidents) != 3 {
		t.Fatalf("incidents = %d, want 3 (topic + location required)", len(incidents))
	}
	if incidents[0].Topic != TopicFire || incidents[0].Location != "Winterthur" ||
		incidents[0].Language != German {
		t.Errorf("incident 0 = %+v", incidents[0])
	}
	if !incidents[0].Date.Equal(time.Date(2016, 2, 11, 0, 0, 0, 0, time.UTC)) {
		t.Errorf("date from text = %v", incidents[0].Date)
	}
	if !incidents[1].Date.Equal(time.Date(2016, 3, 1, 0, 0, 0, 0, time.UTC)) {
		t.Errorf("date from meta = %v", incidents[1].Date)
	}
	if incidents[2].Location != "Zürich" {
		t.Errorf("location from meta = %q", incidents[2].Location)
	}
	if st.DateFromText != 1 || st.DateFromMeta != 1 || st.LocFromMeta != 1 {
		t.Errorf("stage stats = %+v", st)
	}
}

func TestStore(t *testing.T) {
	col := docstore.NewDB().Collection("incidents")
	Store(col, []Incident{
		{Source: "s", Text: "t", Topic: TopicFire, Language: German,
			Date: time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC), Location: "Basel"},
		{Source: "s", Text: "t2", Topic: TopicIntrusion, Language: French, Location: "Basel"},
	})
	if col.Len() != 2 {
		t.Fatalf("stored %d docs", col.Len())
	}
	n, err := col.Count(docstore.Doc{"location": "Basel", "topic": "fire"})
	if err != nil || n != 1 {
		t.Errorf("count = %d, %v", n, err)
	}
}
