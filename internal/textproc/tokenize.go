package textproc

import (
	"strings"
	"unicode"
)

// Tokenize lowercases text and splits it into words. Letters and
// digits stay together; everything else separates tokens. Hyphenated
// compounds ("break-in") are kept whole, matching how the keyword
// lists are written.
func Tokenize(text string) []string {
	var out []string
	var sb strings.Builder
	flush := func() {
		if sb.Len() > 0 {
			out = append(out, sb.String())
			sb.Reset()
		}
	}
	runes := []rune(text)
	for i, r := range runes {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			sb.WriteRune(unicode.ToLower(r))
		case r == '-' && sb.Len() > 0 && i+1 < len(runes) && unicode.IsLetter(runes[i+1]):
			sb.WriteRune('-')
		default:
			flush()
		}
	}
	flush()
	return out
}

// TokenSet returns the distinct tokens of text.
func TokenSet(text string) map[string]bool {
	set := make(map[string]bool)
	for _, t := range Tokenize(text) {
		set[t] = true
	}
	return set
}
