package textproc

// Language identifies the language of an incident report. The
// pipeline must route German, French and English reports (§5.2).
type Language string

// Languages of the incident corpus.
const (
	German  Language = "de"
	French  Language = "fr"
	English Language = "en"
	Unknown Language = "unknown"
)

// stopwords are high-frequency function words per language; the
// identifier scores a text by how many of its tokens appear in each
// list. Function words are the standard low-cost language signal and
// are robust to the short, noisy style of tweets and RSS titles.
var stopwords = map[Language][]string{
	German: {
		"der", "die", "das", "und", "ist", "von", "mit", "ein", "eine",
		"einen", "im", "in", "den", "dem", "des", "zu", "auf", "für",
		"nicht", "bei", "nach", "wurde", "wurden", "sind", "am", "als",
		"auch", "es", "an", "werden", "aus", "er", "sie", "sich", "um",
		"gegen", "uhr", "durch", "haben", "hat", "kam", "beim", "noch",
	},
	French: {
		"le", "la", "les", "un", "une", "des", "et", "est", "dans",
		"pour", "sur", "avec", "au", "aux", "du", "de", "ne", "pas",
		"par", "il", "elle", "sont", "été", "plus", "ce", "cette",
		"qui", "que", "se", "son", "sa", "ses", "a", "vers", "chez",
		"heures", "lors", "deux", "être", "ont", "fait",
	},
	English: {
		"the", "a", "an", "and", "is", "in", "of", "to", "for", "on",
		"with", "was", "were", "at", "by", "from", "it", "this", "that",
		"as", "are", "be", "has", "been", "after", "near", "have",
		"had", "their", "when", "which", "about", "into", "two",
	},
}

var stopwordSets = func() map[Language]map[string]bool {
	out := make(map[Language]map[string]bool, len(stopwords))
	for lang, words := range stopwords {
		set := make(map[string]bool, len(words))
		for _, w := range words {
			set[w] = true
		}
		out[lang] = set
	}
	return out
}()

// DetectLanguage classifies text as German, French or English by
// stopword hit counts; Unknown when no stopword of any language
// appears.
func DetectLanguage(text string) Language {
	tokens := Tokenize(text)
	best, bestScore := Unknown, 0
	// Fixed order keeps ties deterministic.
	for _, lang := range []Language{German, French, English} {
		set := stopwordSets[lang]
		score := 0
		for _, t := range tokens {
			if set[t] {
				score++
			}
		}
		if score > bestScore {
			best, bestScore = lang, score
		}
	}
	return best
}
