package textproc

import (
	"time"

	"alarmverify/internal/docstore"
)

// Report is one raw item collected from an external source (Twitter
// account, RSS feed, web page) before filtering.
type Report struct {
	Source string // e.g. "twitter:@KapoZuerich", "rss:police-blotter"
	Text   string
	// Metadata, when the source provides it. The pipeline prefers
	// annotations extracted from the text and falls back to these
	// (§4.2: "extracted directly from the textual data or from the
	// metadata (if available)").
	MetaTime     time.Time
	MetaLocation string
}

// Incident is an annotated, relevant report — the pipeline output
// stored in the incident history (Figure 5).
type Incident struct {
	Source   string
	Text     string
	Topic    Topic
	Language Language
	Date     time.Time
	Location string // city or village — coarser than alarm ZIP codes (§5.2)
}

// PipelineStats counts what each stage did, for the monitoring the
// paper's lessons call for.
type PipelineStats struct {
	Collected    int // raw reports in
	Relevant     int // survived the topic filter
	DateFromText int
	DateFromMeta int
	DateMissing  int
	LocFromText  int
	LocFromMeta  int
	LocMissing   int
}

// Pipeline is the collect → filter → annotate → store flow of
// Figure 5.
type Pipeline struct {
	locations *LocationIndex
}

// NewPipeline builds a pipeline that resolves locations against the
// given gazetteer names.
func NewPipeline(placeNames []string) *Pipeline {
	return &Pipeline{locations: NewLocationIndex(placeNames)}
}

// Process filters and annotates raw reports. Reports without a
// recognizable topic are dropped; reports without any resolvable
// location are dropped too (they cannot contribute to a per-location
// risk factor).
func (p *Pipeline) Process(reports []Report) ([]Incident, PipelineStats) {
	var out []Incident
	var st PipelineStats
	st.Collected = len(reports)
	for _, r := range reports {
		topic := ClassifyTopic(r.Text)
		if topic == TopicNone {
			continue
		}
		st.Relevant++
		inc := Incident{
			Source:   r.Source,
			Text:     r.Text,
			Topic:    topic,
			Language: DetectLanguage(r.Text),
		}
		if d, ok := ExtractDate(r.Text); ok {
			inc.Date = d
			st.DateFromText++
		} else if !r.MetaTime.IsZero() {
			inc.Date = r.MetaTime
			st.DateFromMeta++
		} else {
			st.DateMissing++
		}
		if loc, ok := p.locations.ExtractLocation(r.Text); ok {
			inc.Location = loc
			st.LocFromText++
		} else if r.MetaLocation != "" {
			inc.Location = r.MetaLocation
			st.LocFromMeta++
		} else {
			st.LocMissing++
			continue
		}
		out = append(out, inc)
	}
	return out, st
}

// Store writes incidents into a document-store collection, mirroring
// the paper's choice to keep the incident history in MongoDB (§4.2).
func Store(col *docstore.Collection, incidents []Incident) {
	docs := make([]docstore.Doc, len(incidents))
	for i, inc := range incidents {
		docs[i] = docstore.Doc{
			"source":   inc.Source,
			"text":     inc.Text,
			"topic":    string(inc.Topic),
			"language": string(inc.Language),
			"date":     inc.Date,
			"location": inc.Location,
		}
	}
	col.InsertMany(docs)
}
