package textproc

// Topic is the incident category a report describes. The prototype
// focuses on fire and intrusion (§4.2: "we focus on reports about
// fire and intrusion incidents").
type Topic string

// Recognized topics; TopicNone marks an irrelevant report that the
// filter stage drops.
const (
	TopicFire      Topic = "fire"
	TopicIntrusion Topic = "intrusion"
	TopicNone      Topic = ""
)

// topicKeywords is the keyword set of the filtering stage ("based on
// a set of keywords defined in the pipeline", §4.2), per language and
// topic.
var topicKeywords = map[Topic][]string{
	TopicFire: {
		// German
		"brand", "feuer", "flammen", "rauch", "feuerwehr", "brandstiftung",
		"brandfall", "grossbrand", "vollbrand", "löschte", "gebrannt",
		// French
		"incendie", "feu", "flammes", "fumée", "pompiers", "brûlé",
		"embrasé", "sinistre",
		// English
		"fire", "blaze", "flames", "smoke", "firefighters", "arson",
		"burned", "burnt",
	},
	TopicIntrusion: {
		// German
		"einbruch", "eingebrochen", "einbrecher", "diebstahl", "gestohlen",
		"raub", "einbruchdiebstahl", "entwendet", "aufgebrochen",
		// French
		"cambriolage", "effraction", "voleur", "voleurs", "vol",
		"cambrioleur", "cambrioleurs", "dérobé",
		// English
		"burglary", "break-in", "intruder", "theft", "stolen", "robbery",
		"burglar", "burglars",
	},
}

var topicSets = func() map[Topic]map[string]bool {
	out := make(map[Topic]map[string]bool, len(topicKeywords))
	for topic, words := range topicKeywords {
		set := make(map[string]bool, len(words))
		for _, w := range words {
			set[w] = true
		}
		out[topic] = set
	}
	return out
}()

// ClassifyTopic assigns a report to fire or intrusion by keyword hit
// count, or TopicNone when no keyword matches (the report is then
// filtered out, as in Figure 5).
func ClassifyTopic(text string) Topic {
	tokens := Tokenize(text)
	scores := map[Topic]int{}
	for _, t := range tokens {
		for topic, set := range topicSets {
			if set[t] {
				scores[topic]++
			}
		}
	}
	switch {
	case scores[TopicFire] == 0 && scores[TopicIntrusion] == 0:
		return TopicNone
	case scores[TopicFire] >= scores[TopicIntrusion]:
		return TopicFire
	default:
		return TopicIntrusion
	}
}
