// Package textproc implements the text-analytics substrate of the
// paper's hybrid approach (§4.2 component 4, Figure 5): incident
// reports collected from Twitter, RSS feeds and web pages are
// filtered by topic (fire / intrusion), annotated with language, date
// and location, and handed to the risk model (internal/risk).
//
// The stages map onto the files:
//
//   - tokenize.go — lowercasing word splitter shared by every stage.
//   - lang.go — stopword-profile language detection.
//   - topic.go — keyword topic filter (fire / intrusion / irrelevant).
//   - extract.go — date and location annotation from text or source
//     metadata.
//   - pipeline.go — Report → Incident assembly line feeding the
//     incident history in the document store.
//
// The paper's corpus is multilingual — 2,743 German, 1,516 French and
// 797 English reports (§5.2) — so every stage here handles all three
// languages.
//
// See ARCHITECTURE.md at the repository root for how this package
// slots into the end-to-end verification service.
package textproc
