package textproc

import (
	"regexp"
	"strconv"
	"strings"
	"time"
)

// Month-name tables for the three corpus languages.
var monthNames = map[string]time.Month{
	// German
	"januar": time.January, "februar": time.February, "märz": time.March,
	"april": time.April, "mai": time.May, "juni": time.June,
	"juli": time.July, "august": time.August, "september": time.September,
	"oktober": time.October, "november": time.November, "dezember": time.December,
	// French
	"janvier": time.January, "février": time.February, "mars": time.March,
	"avril": time.April, "juin": time.June,
	"juillet": time.July, "août": time.August, "septembre": time.September,
	"octobre": time.October, "novembre": time.November, "décembre": time.December,
	// English
	"january": time.January, "february": time.February, "march": time.March,
	"may": time.May, "june": time.June, "july": time.July,
	"october": time.October, "december": time.December,
}

// French "mai" and English "april/august/september/november" overlap
// with German; the shared spellings above already cover them.

var (
	reISO    = regexp.MustCompile(`\b(\d{4})-(\d{2})-(\d{2})\b`)
	reDotted = regexp.MustCompile(`\b(\d{1,2})\.(\d{1,2})\.(\d{4})\b`)
	reSlash  = regexp.MustCompile(`\b(\d{1,2})/(\d{1,2})/(\d{4})\b`)
	// "12. Januar 2016" / "12 janvier 2016" / "12 January 2016"
	reDayMonth = regexp.MustCompile(`\b(\d{1,2})\.?(?:er)?\s+(\p{L}+)\s+(\d{4})\b`)
	// "January 12, 2016"
	reMonthDay = regexp.MustCompile(`\b(\p{L}+)\s+(\d{1,2}),\s*(\d{4})\b`)
)

// ExtractDate finds the first recognizable date in text, covering the
// numeric and spelled-out formats of the three corpus languages. It
// reports ok=false when no date is found, in which case the pipeline
// falls back to the report's metadata timestamp.
func ExtractDate(text string) (time.Time, bool) {
	if m := reISO.FindStringSubmatch(text); m != nil {
		return mkDate(m[1], m[2], m[3])
	}
	if m := reDotted.FindStringSubmatch(text); m != nil {
		return mkDate(m[3], m[2], m[1])
	}
	if m := reSlash.FindStringSubmatch(text); m != nil {
		return mkDate(m[3], m[2], m[1])
	}
	if m := reDayMonth.FindStringSubmatch(text); m != nil {
		if month, ok := monthNames[strings.ToLower(m[2])]; ok {
			day, _ := strconv.Atoi(m[1])
			year, _ := strconv.Atoi(m[3])
			return validDate(year, month, day)
		}
	}
	if m := reMonthDay.FindStringSubmatch(text); m != nil {
		if month, ok := monthNames[strings.ToLower(m[1])]; ok {
			day, _ := strconv.Atoi(m[2])
			year, _ := strconv.Atoi(m[3])
			return validDate(year, month, day)
		}
	}
	return time.Time{}, false
}

func mkDate(y, m, d string) (time.Time, bool) {
	year, _ := strconv.Atoi(y)
	month, _ := strconv.Atoi(m)
	day, _ := strconv.Atoi(d)
	if month < 1 || month > 12 {
		return time.Time{}, false
	}
	return validDate(year, time.Month(month), day)
}

func validDate(year int, month time.Month, day int) (time.Time, bool) {
	if year < 1900 || year > 2100 || day < 1 || day > 31 {
		return time.Time{}, false
	}
	t := time.Date(year, month, day, 0, 0, 0, 0, time.UTC)
	if t.Day() != day || t.Month() != month { // e.g. Feb 30 rolled over
		return time.Time{}, false
	}
	return t, true
}

// LocationIndex resolves place names mentioned in text against a
// gazetteer. Multi-word names ("La Chaux-de-Fonds") are matched as
// token sequences.
type LocationIndex struct {
	// byFirstToken maps the first token of each place name to the
	// candidate full token sequences and their canonical names.
	byFirstToken map[string][]indexedName
	maxTokens    int
}

type indexedName struct {
	tokens    []string
	canonical string
}

// NewLocationIndex builds an index over canonical place names.
func NewLocationIndex(names []string) *LocationIndex {
	idx := &LocationIndex{byFirstToken: make(map[string][]indexedName)}
	for _, name := range names {
		toks := Tokenize(name)
		if len(toks) == 0 {
			continue
		}
		if len(toks) > idx.maxTokens {
			idx.maxTokens = len(toks)
		}
		idx.byFirstToken[toks[0]] = append(idx.byFirstToken[toks[0]], indexedName{
			tokens:    toks,
			canonical: name,
		})
	}
	// Longest names first so "La Chaux-de-Fonds" beats "La Chaux".
	for k := range idx.byFirstToken {
		cands := idx.byFirstToken[k]
		for i := 1; i < len(cands); i++ {
			for j := i; j > 0 && len(cands[j].tokens) > len(cands[j-1].tokens); j-- {
				cands[j], cands[j-1] = cands[j-1], cands[j]
			}
		}
	}
	return idx
}

// ExtractLocation returns the first (longest-match) place name found
// in text, or ok=false.
func (idx *LocationIndex) ExtractLocation(text string) (string, bool) {
	tokens := Tokenize(text)
	for i, tok := range tokens {
		cands, ok := idx.byFirstToken[tok]
		if !ok {
			continue
		}
		for _, cand := range cands {
			if i+len(cand.tokens) > len(tokens) {
				continue
			}
			match := true
			for j, ct := range cand.tokens {
				if tokens[i+j] != ct {
					match = false
					break
				}
			}
			if match {
				return cand.canonical, true
			}
		}
	}
	return "", false
}
