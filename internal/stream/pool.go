package stream

import (
	"runtime"
	"sync"
)

// Pool is a fixed-size worker pool that executes the partition tasks
// of RDD actions. Its size is the engine's executor-core count: a
// pool of 1 reproduces the serial consumer the paper saw before
// configuring parallelism (§5.5.2).
type Pool struct {
	workers int
	tasks   chan func()
	wg      sync.WaitGroup
	once    sync.Once
}

// NewPool creates a pool with the given number of workers; n <= 0
// means GOMAXPROCS.
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: n, tasks: make(chan func())}
	for i := 0; i < n; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	for t := range p.tasks {
		t()
	}
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

// Run executes f(0..n-1) on the pool and waits for all to finish.
// Tasks may not themselves call Run on the same pool (no nested
// scheduling), mirroring a Spark stage boundary.
func (p *Pool) Run(n int, f func(i int)) {
	if n <= 0 {
		return
	}
	if n == 1 || p.workers == 1 {
		// Avoid scheduling overhead for the serial case.
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		i := i
		p.tasks <- func() {
			defer wg.Done()
			f(i)
		}
	}
	wg.Wait()
}

// Close shuts the pool down. Pending Run calls must have completed.
func (p *Pool) Close() {
	p.once.Do(func() { close(p.tasks) })
}
