package stream

import (
	"time"

	"alarmverify/internal/broker"
)

// BrokerSource adapts a broker consumer into a DStream source using
// the Direct-DStream mapping: each broker partition becomes one RDD
// partition, so the broker's partition count directly bounds the
// engine's parallelism — the coupling behind the paper's §5.5.2
// observation that an unpartitioned stream is processed serially.
type BrokerSource struct {
	consumer   broker.GroupConsumer
	partitions int
	// MaxPerBatch bounds how many records one micro-batch drains
	// (backpressure); 0 means unlimited.
	MaxPerBatch int
	// PollTimeout bounds how long a batch waits for the first record.
	PollTimeout time.Duration
}

// NewBrokerSource wraps an in-process consumer for use as a DStream
// source.
func NewBrokerSource(c *broker.Consumer, t *broker.Topic) *BrokerSource {
	return NewGroupSource(c, t.Partitions())
}

// NewGroupSource wraps any GroupConsumer — in-process or the network
// client — for use as a DStream source. partitions is the topic's
// partition count (it shapes the RDD layout; see BrokerSource).
func NewGroupSource(c broker.GroupConsumer, partitions int) *BrokerSource {
	return &BrokerSource{
		consumer:    c,
		partitions:  partitions,
		PollTimeout: 10 * time.Millisecond,
	}
}

// Stream builds the DStream of raw records on ctx.
func (s *BrokerSource) Stream(ctx *Context) *DStream[broker.Record] {
	return NewDStream(ctx, func(time.Time) *RDD[broker.Record] {
		return s.Batch()
	})
}

// Batch drains available records and groups them by broker partition
// into RDD partitions.
func (s *BrokerSource) Batch() *RDD[broker.Record] {
	max := s.MaxPerBatch
	if max <= 0 {
		max = 1 << 20
	}
	parts := make([][]broker.Record, s.partitions)
	total := 0
	timeout := s.PollTimeout
	for total < max {
		recs, err := s.consumer.Poll(max-total, timeout)
		if err != nil || len(recs) == 0 {
			break
		}
		for _, r := range recs {
			parts[r.Partition] = append(parts[r.Partition], r)
		}
		total += len(recs)
		// Only the first poll of a batch blocks; the rest drain
		// whatever is immediately available.
		timeout = 0
	}
	return FromPartitions(parts)
}

// DrainLeased is Batch's zero-copy twin: it drains one micro-batch by
// appending records into the caller's scratch slice (reusing its
// capacity) and borrowing their payload bytes from the broker under
// leases instead of copying them out. The accumulated leases append to
// the caller's lease scratch; every one must be released once the
// batch's records are fully processed — after that, the record values
// must not be touched. Record count and poll pacing match Batch
// exactly: only the first poll blocks (up to PollTimeout), the rest
// drain what is immediately available, bounded by MaxPerBatch.
func (s *BrokerSource) DrainLeased(dst []broker.Record, leases []*broker.Lease) ([]broker.Record, []*broker.Lease) {
	max := s.MaxPerBatch
	if max <= 0 {
		max = 1 << 20
	}
	timeout := s.PollTimeout
	for len(dst) < max {
		out, lease, err := s.consumer.PollLeased(max-len(dst), timeout, dst)
		got := len(out) - len(dst)
		dst = out
		if got > 0 {
			leases = append(leases, lease)
		} else {
			// An empty poll's lease guards nothing; release it now so
			// idle polls don't inflate the leak detector.
			lease.Release()
		}
		if err != nil || got == 0 {
			break
		}
		timeout = 0
	}
	return dst, leases
}

// Commit commits the consumer's progress; call it after a batch's
// actions have completed to preserve exactly-once processing.
func (s *BrokerSource) Commit() error { return s.consumer.Commit() }
