package stream

import (
	"context"
	"errors"
	"sync"
	"time"
)

// ErrStarted is returned when the topology is modified after Start.
var ErrStarted = errors.New("stream: context already started")

// BatchInfo describes one executed micro-batch, for the monitoring
// lesson of §6.2 ("Make use of the monitoring UI"): scheduling delay
// and processing time are the two statistics the paper highlights.
type BatchInfo struct {
	Time            time.Time     // scheduled batch time
	Records         int           // input records in the batch
	SchedulingDelay time.Duration // time between schedule and start
	ProcessingTime  time.Duration // time spent running all actions
}

// Metrics aggregates batch statistics for a running context.
type Metrics struct {
	mu      sync.Mutex
	batches []BatchInfo
}

func (m *Metrics) record(b BatchInfo) {
	m.mu.Lock()
	m.batches = append(m.batches, b)
	m.mu.Unlock()
}

// Batches returns a copy of all recorded batch infos.
func (m *Metrics) Batches() []BatchInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]BatchInfo, len(m.batches))
	copy(out, m.batches)
	return out
}

// Totals returns total records processed and the mean processing time
// per batch.
func (m *Metrics) Totals() (records int, meanProcessing time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.batches) == 0 {
		return 0, 0
	}
	var sum time.Duration
	for _, b := range m.batches {
		records += b.Records
		sum += b.ProcessingTime
	}
	return records, sum / time.Duration(len(m.batches))
}

// Throughput returns records per second over all processing time.
func (m *Metrics) Throughput() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var recs int
	var busy time.Duration
	for _, b := range m.batches {
		recs += b.Records
		busy += b.ProcessingTime
	}
	if busy <= 0 {
		return 0
	}
	return float64(recs) / busy.Seconds()
}

// Context is the micro-batch scheduler: every interval it asks each
// source for a batch RDD and runs the registered actions over it.
type Context struct {
	interval time.Duration
	pool     *Pool
	metrics  *Metrics

	mu      sync.Mutex
	jobs    []func(batchTime time.Time) int // returns record count
	started bool
	cancel  context.CancelFunc
	done    chan struct{}
}

// NewContext creates a streaming context with the given micro-batch
// interval and executor pool.
func NewContext(interval time.Duration, pool *Pool) *Context {
	return &Context{
		interval: interval,
		pool:     pool,
		metrics:  &Metrics{},
	}
}

// Pool returns the executor pool.
func (c *Context) Pool() *Pool { return c.pool }

// Metrics returns the context's batch statistics.
func (c *Context) Metrics() *Metrics { return c.metrics }

// DStream is a discretized stream: a source of per-interval RDDs plus
// the transformations applied to them. Actions registered with ForEach
// run once per micro-batch.
type DStream[T any] struct {
	ctx    *Context
	source func(batchTime time.Time) *RDD[T]
}

// NewDStream registers a source that produces one RDD per batch
// interval.
func NewDStream[T any](c *Context, source func(batchTime time.Time) *RDD[T]) *DStream[T] {
	return &DStream[T]{ctx: c, source: source}
}

// Transform derives a new DStream by applying an RDD-to-RDD function
// to each batch. All typed transformations are expressed through it.
func Transform[T, U any](d *DStream[T], f func(*RDD[T]) *RDD[U]) *DStream[U] {
	return &DStream[U]{
		ctx:    d.ctx,
		source: func(bt time.Time) *RDD[U] { return f(d.source(bt)) },
	}
}

// MapStream applies f to every element of every batch.
func MapStream[T, U any](d *DStream[T], f func(T) U) *DStream[U] {
	return Transform(d, func(r *RDD[T]) *RDD[U] { return Map(r, f) })
}

// FilterStream keeps matching elements of every batch.
func FilterStream[T any](d *DStream[T], pred func(T) bool) *DStream[T] {
	return Transform(d, func(r *RDD[T]) *RDD[T] { return Filter(r, pred) })
}

// Window returns a stream whose batch at time t is the union of the
// last n source batches (a sliding window of n*interval, slide =
// interval).
func Window[T any](d *DStream[T], n int) *DStream[T] {
	if n < 1 {
		n = 1
	}
	var mu sync.Mutex
	var history []*RDD[T]
	return &DStream[T]{
		ctx: d.ctx,
		source: func(bt time.Time) *RDD[T] {
			// Cache the incoming batch: it is computed once here and
			// reused by the next n-1 windows.
			r := d.source(bt).Cache()
			mu.Lock()
			history = append(history, r)
			if len(history) > n {
				history = history[len(history)-n:]
			}
			window := make([]*RDD[T], len(history))
			copy(window, history)
			mu.Unlock()
			return Union(window...)
		},
	}
}

// ForEach registers an action to run over every batch RDD. It must be
// called before Start.
func ForEach[T any](d *DStream[T], action func(batchTime time.Time, batch *RDD[T])) error {
	c := d.ctx
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.started {
		return ErrStarted
	}
	c.jobs = append(c.jobs, func(bt time.Time) int {
		batch := d.source(bt)
		action(bt, batch)
		return batch.Count(c.pool)
	})
	return nil
}

// ForEachCounted is ForEach for actions that already know the batch
// size; it avoids a second pass over the data to count records.
func ForEachCounted[T any](d *DStream[T], action func(batchTime time.Time, batch *RDD[T]) int) error {
	c := d.ctx
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.started {
		return ErrStarted
	}
	c.jobs = append(c.jobs, func(bt time.Time) int {
		return action(bt, d.source(bt))
	})
	return nil
}

// Start begins micro-batch scheduling. It returns immediately; Stop
// halts processing after the in-flight batch.
func (c *Context) Start() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.started {
		return ErrStarted
	}
	c.started = true
	ctx, cancel := context.WithCancel(context.Background())
	c.cancel = cancel
	c.done = make(chan struct{})
	jobs := c.jobs
	go c.run(ctx, jobs)
	return nil
}

func (c *Context) run(ctx context.Context, jobs []func(time.Time) int) {
	defer close(c.done)
	ticker := time.NewTicker(c.interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case scheduled := <-ticker.C:
			start := time.Now()
			records := 0
			for _, job := range jobs {
				records += job(scheduled)
			}
			c.metrics.record(BatchInfo{
				Time:            scheduled,
				Records:         records,
				SchedulingDelay: start.Sub(scheduled),
				ProcessingTime:  time.Since(start),
			})
		}
	}
}

// Stop halts the scheduler and waits for the in-flight batch to
// finish.
func (c *Context) Stop() {
	c.mu.Lock()
	cancel, done := c.cancel, c.done
	c.mu.Unlock()
	if cancel != nil {
		cancel()
		<-done
	}
}

// RunBatches drives the context synchronously for exactly n batches —
// deterministic execution for tests and benchmarks (no wall-clock
// ticker). It must not be mixed with Start.
func (c *Context) RunBatches(n int) error {
	c.mu.Lock()
	if c.started {
		c.mu.Unlock()
		return ErrStarted
	}
	jobs := c.jobs
	c.mu.Unlock()
	for i := 0; i < n; i++ {
		scheduled := time.Now()
		records := 0
		for _, job := range jobs {
			records += job(scheduled)
		}
		c.metrics.record(BatchInfo{
			Time:           scheduled,
			Records:        records,
			ProcessingTime: time.Since(scheduled),
		})
	}
	return nil
}
