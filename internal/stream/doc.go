// Package stream implements the micro-batch stream-processing
// substrate of the alarm pipeline — the role Spark Streaming plays in
// the paper (§4.2, "Streaming Component").
//
// The engine mirrors the Spark model the paper's lessons depend on:
//
//   - RDD (rdd.go) — a lazy, partitioned dataset. Transformations
//     (Map, Filter, FlatMap, Distinct, ReduceByKey) only record
//     lineage; actions (Collect, Count, ForEachPartition) compute
//     partitions on a worker pool. Without Cache, every action
//     recomputes the lineage — exactly the §6.2 pitfall ("Cache data
//     that will be reused": the consumer deserialized its input twice
//     because the stream was reused for both ML and history without
//     caching).
//   - Context/DStream (context.go) — a micro-batch scheduler: every
//     interval, a source produces an RDD (one RDD partition per
//     broker partition, the Direct DStream mapping), and registered
//     actions run over it. A topic with one partition therefore
//     processes serially; the fix is Repartition — the §5.5.2 "Kafka
//     Optimization" lesson.
//   - Pool (pool.go) — the fixed-size executor pool RDD actions run
//     on; its size is the engine's executor-core count. The consumer
//     pipeline additionally gives its ML stage a dedicated Pool so
//     classification overlaps the other stages (see internal/core).
//   - BrokerSource (source.go) — adapts a broker consumer into the
//     per-interval RDD producer, bounding records per micro-batch.
//
// See ARCHITECTURE.md at the repository root for how this package
// slots into the end-to-end verification service.
package stream
