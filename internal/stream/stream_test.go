package stream

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"alarmverify/internal/broker"
)

func testPool(t *testing.T, n int) *Pool {
	t.Helper()
	p := NewPool(n)
	t.Cleanup(p.Close)
	return p
}

func ints(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestFromSlicePartitioning(t *testing.T) {
	r := FromSlice(ints(10), 3)
	if r.NumPartitions() != 3 {
		t.Fatalf("parts = %d", r.NumPartitions())
	}
	pool := testPool(t, 4)
	got := r.Collect(pool)
	if len(got) != 10 {
		t.Fatalf("collect = %d elements", len(got))
	}
	sort.Ints(got)
	for i, v := range got {
		if v != i {
			t.Fatalf("element %d = %d", i, v)
		}
	}
}

func TestFromSliceEdgeCases(t *testing.T) {
	pool := testPool(t, 2)
	if got := FromSlice([]int{}, 4).Count(pool); got != 0 {
		t.Errorf("empty count = %d", got)
	}
	if got := FromSlice(ints(2), 8).Count(pool); got != 2 {
		t.Errorf("more partitions than data: count = %d", got)
	}
	if got := FromSlice(ints(5), 0).NumPartitions(); got != 1 {
		t.Errorf("zero partitions should clamp to 1, got %d", got)
	}
}

func TestMapFilterFlatMap(t *testing.T) {
	pool := testPool(t, 4)
	r := FromSlice(ints(100), 4)
	doubled := Map(r, func(v int) int { return v * 2 })
	even := Filter(doubled, func(v int) bool { return v%4 == 0 })
	if got := even.Count(pool); got != 50 {
		t.Errorf("count = %d, want 50", got)
	}
	fm := FlatMap(r, func(v int) []int { return []int{v, v} })
	if got := fm.Count(pool); got != 200 {
		t.Errorf("flatmap count = %d, want 200", got)
	}
}

func TestLazinessAndCache(t *testing.T) {
	pool := testPool(t, 2)
	var computations atomic.Int64
	r := FromSlice(ints(8), 2)
	mapped := Map(r, func(v int) int {
		computations.Add(1)
		return v
	})
	if computations.Load() != 0 {
		t.Fatal("transformation was eager; RDDs must be lazy")
	}
	// Two actions without cache: lineage recomputed (the §6.2 bug).
	mapped.Count(pool)
	mapped.Count(pool)
	if got := computations.Load(); got != 16 {
		t.Fatalf("uncached recompute: %d computations, want 16", got)
	}
	computations.Store(0)
	cached := mapped.Cache()
	cached.Count(pool)
	cached.Count(pool)
	cached.Collect(pool)
	if got := computations.Load(); got != 8 {
		t.Fatalf("cached: %d computations, want 8", got)
	}
}

func TestDistinct(t *testing.T) {
	pool := testPool(t, 4)
	data := make([]string, 0, 300)
	for i := 0; i < 300; i++ {
		data = append(data, fmt.Sprintf("mac-%d", i%17))
	}
	r := FromSlice(data, 4)
	d := Distinct(r, func(s string) string { return s }, pool)
	if got := d.Count(pool); got != 17 {
		t.Errorf("distinct = %d, want 17", got)
	}
}

func TestReduceByKey(t *testing.T) {
	pool := testPool(t, 4)
	var kvs []KV[string, int]
	for i := 0; i < 120; i++ {
		kvs = append(kvs, KV[string, int]{fmt.Sprintf("k%d", i%6), 1})
	}
	r := FromSlice(kvs, 5)
	red := ReduceByKey(r, func(a, b int) int { return a + b }, pool)
	got := red.Collect(pool)
	if len(got) != 6 {
		t.Fatalf("keys = %d, want 6", len(got))
	}
	for _, kv := range got {
		if kv.Val != 20 {
			t.Errorf("key %s = %d, want 20", kv.Key, kv.Val)
		}
	}
}

func TestUnionAndRepartition(t *testing.T) {
	pool := testPool(t, 4)
	a := FromSlice(ints(10), 2)
	b := FromSlice(ints(5), 3)
	u := Union(a, b)
	if u.NumPartitions() != 5 {
		t.Fatalf("union parts = %d", u.NumPartitions())
	}
	if got := u.Count(pool); got != 15 {
		t.Fatalf("union count = %d", got)
	}
	rp := Repartition(u, 8, pool)
	if rp.NumPartitions() != 8 {
		t.Fatalf("repartition parts = %d", rp.NumPartitions())
	}
	if got := rp.Count(pool); got != 15 {
		t.Fatalf("repartition count = %d", got)
	}
}

func TestForEachPartitionParallelism(t *testing.T) {
	pool := testPool(t, 4)
	r := FromSlice(ints(1000), 4)
	var mu sync.Mutex
	var inFlight, maxInFlight int
	r.ForEachPartition(pool, func(part int, in []int) {
		mu.Lock()
		inFlight++
		if inFlight > maxInFlight {
			maxInFlight = inFlight
		}
		mu.Unlock()
		time.Sleep(10 * time.Millisecond)
		mu.Lock()
		inFlight--
		mu.Unlock()
	})
	if maxInFlight < 2 {
		t.Errorf("partitions did not overlap (max in flight %d)", maxInFlight)
	}
}

func TestSerialPoolProcessesSequentially(t *testing.T) {
	pool := testPool(t, 1)
	r := FromSlice(ints(100), 4)
	var mu sync.Mutex
	inFlight, maxInFlight := 0, 0
	r.ForEachPartition(pool, func(part int, in []int) {
		mu.Lock()
		inFlight++
		if inFlight > maxInFlight {
			maxInFlight = inFlight
		}
		mu.Unlock()
		time.Sleep(time.Millisecond)
		mu.Lock()
		inFlight--
		mu.Unlock()
	})
	if maxInFlight != 1 {
		t.Errorf("serial pool overlapped work: max in flight %d", maxInFlight)
	}
}

func TestContextRunBatches(t *testing.T) {
	pool := testPool(t, 2)
	ctx := NewContext(time.Millisecond, pool)
	batch := 0
	ds := NewDStream(ctx, func(time.Time) *RDD[int] {
		batch++
		return FromSlice(ints(batch*10), 2)
	})
	var totals []int
	if err := ForEach(ds, func(_ time.Time, r *RDD[int]) {
		totals = append(totals, r.Count(pool))
	}); err != nil {
		t.Fatal(err)
	}
	if err := ctx.RunBatches(3); err != nil {
		t.Fatal(err)
	}
	want := []int{10, 20, 30}
	for i, w := range want {
		if totals[i] != w {
			t.Errorf("batch %d total = %d, want %d", i, totals[i], w)
		}
	}
	recs, _ := ctx.Metrics().Totals()
	if recs != 120 { // action count + metrics count both evaluate
		t.Logf("metrics records = %d", recs)
	}
}

func TestContextStartStop(t *testing.T) {
	pool := testPool(t, 2)
	ctx := NewContext(5*time.Millisecond, pool)
	var batches atomic.Int64
	ds := NewDStream(ctx, func(time.Time) *RDD[int] {
		return FromSlice(ints(3), 1)
	})
	if err := ForEach(ds, func(time.Time, *RDD[int]) { batches.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Start(); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Start(); err == nil {
		t.Error("double start accepted")
	}
	deadline := time.After(2 * time.Second)
	for batches.Load() < 3 {
		select {
		case <-deadline:
			t.Fatal("scheduler did not run batches")
		case <-time.After(time.Millisecond):
		}
	}
	ctx.Stop()
	n := batches.Load()
	time.Sleep(30 * time.Millisecond)
	if batches.Load() != n {
		t.Error("batches ran after Stop")
	}
	if err := ForEach(ds, func(time.Time, *RDD[int]) {}); err == nil {
		t.Error("topology change after start accepted")
	}
}

func TestWindowUnionsLastN(t *testing.T) {
	pool := testPool(t, 2)
	ctx := NewContext(time.Millisecond, pool)
	batch := 0
	base := NewDStream(ctx, func(time.Time) *RDD[int] {
		batch++
		return FromSlice([]int{batch}, 1)
	})
	win := Window(base, 3)
	var sizes []int
	if err := ForEach(win, func(_ time.Time, r *RDD[int]) {
		sizes = append(sizes, r.Count(pool))
	}); err != nil {
		t.Fatal(err)
	}
	if err := ctx.RunBatches(5); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3, 3, 3}
	for i, w := range want {
		if sizes[i] != w {
			t.Errorf("window %d size = %d, want %d", i, sizes[i], w)
		}
	}
}

func TestBrokerSourceDirectMapping(t *testing.T) {
	b := broker.New()
	topic, err := b.CreateTopic("alarms", 4)
	if err != nil {
		t.Fatal(err)
	}
	prod := broker.NewProducer(topic)
	for i := 0; i < 200; i++ {
		prod.Send([]byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	cons, err := broker.NewConsumer(b, "g", topic, "c1")
	if err != nil {
		t.Fatal(err)
	}
	src := NewBrokerSource(cons, topic)
	rdd := src.Batch()
	if rdd.NumPartitions() != 4 {
		t.Fatalf("RDD partitions = %d, want 4 (direct mapping)", rdd.NumPartitions())
	}
	pool := testPool(t, 4)
	if got := rdd.Count(pool); got != 200 {
		t.Fatalf("batch count = %d, want 200", got)
	}
	// Records inside one RDD partition must come from one broker
	// partition, in offset order.
	rdd.ForEachPartition(pool, func(part int, recs []broker.Record) {
		for i, r := range recs {
			if r.Partition != part {
				t.Errorf("partition %d holds record from broker partition %d", part, r.Partition)
			}
			if i > 0 && r.Offset != recs[i-1].Offset+1 {
				t.Errorf("offsets out of order in partition %d", part)
			}
		}
	})
}

func TestBrokerSourceBackpressure(t *testing.T) {
	b := broker.New()
	topic, _ := b.CreateTopic("alarms", 1)
	prod := broker.NewProducer(topic)
	for i := 0; i < 100; i++ {
		prod.Send(nil, []byte("x"))
	}
	cons, _ := broker.NewConsumer(b, "g", topic, "c1")
	src := NewBrokerSource(cons, topic)
	src.MaxPerBatch = 30
	pool := testPool(t, 1)
	sizes := []int{}
	for i := 0; i < 4; i++ {
		sizes = append(sizes, src.Batch().Count(pool))
	}
	want := []int{30, 30, 30, 10}
	for i, w := range want {
		if sizes[i] != w {
			t.Errorf("batch %d size = %d, want %d", i, sizes[i], w)
		}
	}
}

func TestPropertyTransformationsPreserveMultiset(t *testing.T) {
	pool := testPool(t, 4)
	f := func(seed int64, nParts uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nParts%7) + 1
		data := make([]int, 50+r.Intn(100))
		for i := range data {
			data[i] = r.Intn(20)
		}
		rdd := FromSlice(data, n)
		// identity map keeps multiset
		got := Map(rdd, func(v int) int { return v }).Collect(pool)
		if len(got) != len(data) {
			return false
		}
		counts := map[int]int{}
		for _, v := range data {
			counts[v]++
		}
		for _, v := range got {
			counts[v]--
		}
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyDistinctMatchesMap(t *testing.T) {
	pool := testPool(t, 4)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		data := make([]int, 100)
		for i := range data {
			data[i] = r.Intn(15)
		}
		want := map[int]bool{}
		for _, v := range data {
			want[v] = true
		}
		got := Distinct(FromSlice(data, 3), func(v int) int { return v }, pool).Collect(pool)
		if len(got) != len(want) {
			return false
		}
		for _, v := range got {
			if !want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
