package stream

import (
	"sync"
)

// RDD is a lazy, partitioned dataset: lineage plus a per-partition
// compute function. It is immutable; transformations return new RDDs.
type RDD[T any] struct {
	numParts int
	compute  func(part int) []T
	cache    *cacheState[T]
}

type cacheState[T any] struct {
	mu    sync.Mutex
	parts [][]T
	done  []bool
}

// FromPartitions builds an RDD whose partitions are the given slices.
// The slices are referenced, not copied.
func FromPartitions[T any](parts [][]T) *RDD[T] {
	return &RDD[T]{
		numParts: len(parts),
		compute:  func(p int) []T { return parts[p] },
	}
}

// FromSlice builds an RDD by splitting data into n partitions.
func FromSlice[T any](data []T, n int) *RDD[T] {
	if n <= 0 {
		n = 1
	}
	parts := make([][]T, n)
	chunk := (len(data) + n - 1) / n
	for i := 0; i < n; i++ {
		lo := i * chunk
		hi := lo + chunk
		if lo > len(data) {
			lo = len(data)
		}
		if hi > len(data) {
			hi = len(data)
		}
		parts[i] = data[lo:hi]
	}
	return FromPartitions(parts)
}

// NumPartitions returns the partition count — the engine's unit of
// parallelism.
func (r *RDD[T]) NumPartitions() int { return r.numParts }

// Cache marks the RDD so that each partition is materialized at most
// once; later actions reuse the cached data instead of recomputing
// lineage.
func (r *RDD[T]) Cache() *RDD[T] {
	if r.cache != nil {
		return r
	}
	return &RDD[T]{
		numParts: r.numParts,
		compute:  r.compute,
		cache: &cacheState[T]{
			parts: make([][]T, r.numParts),
			done:  make([]bool, r.numParts),
		},
	}
}

// partition computes (or fetches from cache) one partition.
func (r *RDD[T]) partition(p int) []T {
	c := r.cache
	if c == nil {
		return r.compute(p)
	}
	c.mu.Lock()
	if c.done[p] {
		out := c.parts[p]
		c.mu.Unlock()
		return out
	}
	c.mu.Unlock()
	out := r.compute(p)
	c.mu.Lock()
	if !c.done[p] {
		c.parts[p] = out
		c.done[p] = true
	} else {
		out = c.parts[p]
	}
	c.mu.Unlock()
	return out
}

// Map applies f to every element.
func Map[T, U any](r *RDD[T], f func(T) U) *RDD[U] {
	return &RDD[U]{
		numParts: r.numParts,
		compute: func(p int) []U {
			in := r.partition(p)
			out := make([]U, len(in))
			for i, v := range in {
				out[i] = f(v)
			}
			return out
		},
	}
}

// Filter keeps the elements for which pred is true.
func Filter[T any](r *RDD[T], pred func(T) bool) *RDD[T] {
	return &RDD[T]{
		numParts: r.numParts,
		compute: func(p int) []T {
			in := r.partition(p)
			var out []T
			for _, v := range in {
				if pred(v) {
					out = append(out, v)
				}
			}
			return out
		},
	}
}

// FlatMap applies f to every element and concatenates the results.
func FlatMap[T, U any](r *RDD[T], f func(T) []U) *RDD[U] {
	return &RDD[U]{
		numParts: r.numParts,
		compute: func(p int) []U {
			var out []U
			for _, v := range r.partition(p) {
				out = append(out, f(v)...)
			}
			return out
		},
	}
}

// MapPartitions applies f to each whole partition.
func MapPartitions[T, U any](r *RDD[T], f func(part int, in []T) []U) *RDD[U] {
	return &RDD[U]{
		numParts: r.numParts,
		compute:  func(p int) []U { return f(p, r.partition(p)) },
	}
}

// Union concatenates the partitions of several RDDs (the windowing
// primitive).
func Union[T any](rs ...*RDD[T]) *RDD[T] {
	total := 0
	for _, r := range rs {
		total += r.numParts
	}
	// Precompute the (rdd, partition) pair for each output partition.
	type src[T2 any] struct {
		r *RDD[T2]
		p int
	}
	srcs := make([]src[T], 0, total)
	for _, r := range rs {
		for p := 0; p < r.numParts; p++ {
			srcs = append(srcs, src[T]{r, p})
		}
	}
	return &RDD[T]{
		numParts: total,
		compute:  func(p int) []T { return srcs[p].r.partition(srcs[p].p) },
	}
}

// Repartition redistributes all elements round-robin across n
// partitions — the paper's fix for serial Kafka streams (§5.5.2). It
// materializes the parent once (a shuffle barrier).
func Repartition[T any](r *RDD[T], n int, pool *Pool) *RDD[T] {
	if n <= 0 {
		n = 1
	}
	all := r.Collect(pool)
	parts := make([][]T, n)
	for i, v := range all {
		parts[i%n] = append(parts[i%n], v)
	}
	return FromPartitions(parts)
}

// KV is a key-value pair for shuffle operations.
type KV[K comparable, V any] struct {
	Key K
	Val V
}

// ReduceByKey merges all values per key with reduce. The result has
// the same partition count, keys hashed across partitions.
func ReduceByKey[K comparable, V any](r *RDD[KV[K, V]], reduce func(a, b V) V, pool *Pool) *RDD[KV[K, V]] {
	// Local combine per partition, then a single merge (single-node
	// shuffle), then split back into partitions by key order.
	partMaps := make([]map[K]V, r.numParts)
	pool.Run(r.numParts, func(p int) {
		m := make(map[K]V)
		for _, kv := range r.partition(p) {
			if cur, ok := m[kv.Key]; ok {
				m[kv.Key] = reduce(cur, kv.Val)
			} else {
				m[kv.Key] = kv.Val
			}
		}
		partMaps[p] = m
	})
	merged := make(map[K]V)
	for _, m := range partMaps {
		for k, v := range m {
			if cur, ok := merged[k]; ok {
				merged[k] = reduce(cur, v)
			} else {
				merged[k] = v
			}
		}
	}
	out := make([][]KV[K, V], r.numParts)
	i := 0
	for k, v := range merged {
		out[i%r.numParts] = append(out[i%r.numParts], KV[K, V]{k, v})
		i++
	}
	return FromPartitions(out)
}

// Distinct returns the distinct elements of r under the key function —
// used by the workflow of §4.1 to extract "all devices that trigger an
// alarm within the observation period".
func Distinct[T any, K comparable](r *RDD[T], key func(T) K, pool *Pool) *RDD[T] {
	kvs := Map(r, func(v T) KV[K, T] { return KV[K, T]{key(v), v} })
	reduced := ReduceByKey(kvs, func(a, b T) T { return a }, pool)
	return Map(reduced, func(kv KV[K, T]) T { return kv.Val })
}

// Collect computes all partitions (in parallel on pool) and returns
// the concatenated elements.
func (r *RDD[T]) Collect(pool *Pool) []T {
	parts := make([][]T, r.numParts)
	pool.Run(r.numParts, func(p int) { parts[p] = r.partition(p) })
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]T, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// Count computes the number of elements.
func (r *RDD[T]) Count(pool *Pool) int {
	counts := make([]int, r.numParts)
	pool.Run(r.numParts, func(p int) { counts[p] = len(r.partition(p)) })
	total := 0
	for _, c := range counts {
		total += c
	}
	return total
}

// ForEachPartition runs f over every partition in parallel.
func (r *RDD[T]) ForEachPartition(pool *Pool, f func(part int, in []T)) {
	pool.Run(r.numParts, func(p int) { f(p, r.partition(p)) })
}
