package codec

import (
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"alarmverify/internal/alarm"
)

func sampleAlarm() alarm.Alarm {
	return alarm.Alarm{
		ID:              42,
		DeviceMAC:       "00:1b:44:11:3a:b7",
		DeviceIP:        "192.168.10.7",
		ZIP:             "zh-8400",
		Timestamp:       time.Date(2016, 2, 11, 23, 45, 12, 0, time.UTC),
		Duration:        37.5,
		Type:            alarm.TypeIntrusion,
		ObjectType:      alarm.ObjectIndustrial,
		SensorType:      "motion-v2",
		SoftwareVersion: "3.1.4",
		Payload:         "zone=basement;battery=87",
	}
}

func codecs() []Codec { return []Codec{ReflectCodec{}, FastCodec{}} }

func TestRoundTripEachCodec(t *testing.T) {
	want := sampleAlarm()
	for _, c := range codecs() {
		b, err := c.Marshal(nil, &want)
		if err != nil {
			t.Fatalf("%s: marshal: %v", c.Name(), err)
		}
		var got alarm.Alarm
		if err := c.Unmarshal(b, &got); err != nil {
			t.Fatalf("%s: unmarshal: %v", c.Name(), err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: round trip mismatch\n got %+v\nwant %+v", c.Name(), got, want)
		}
	}
}

func TestCrossCodecCompatibility(t *testing.T) {
	want := sampleAlarm()
	for _, enc := range codecs() {
		for _, dec := range codecs() {
			b, err := enc.Marshal(nil, &want)
			if err != nil {
				t.Fatalf("%s marshal: %v", enc.Name(), err)
			}
			var got alarm.Alarm
			if err := dec.Unmarshal(b, &got); err != nil {
				t.Fatalf("%s->%s unmarshal: %v", enc.Name(), dec.Name(), err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s->%s mismatch: got %+v", enc.Name(), dec.Name(), got)
			}
		}
	}
}

func TestFastCodecOutputIsValidJSON(t *testing.T) {
	a := sampleAlarm()
	a.Payload = "weird \"quotes\" and \\slashes\\ and\nnewlines\tand\x01control"
	b, err := FastCodec{}.Marshal(nil, &a)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatalf("fast codec output is not valid JSON: %v\n%s", err, b)
	}
	if m["payload"] != a.Payload {
		t.Errorf("payload mismatch: got %q want %q", m["payload"], a.Payload)
	}
}

func TestFastCodecSkipsUnknownFields(t *testing.T) {
	raw := `{"id":7,"futureField":{"nested":[1,2,{"x":"y"}]},"zip":"zh-8000",` +
		`"deviceMac":"m","deviceIp":"i","ts":1000,"duration":3,` +
		`"alarmType":"fire","objectType":"public","sensorType":"s",` +
		`"softwareVersion":"v","extra":"ignored"}`
	var got alarm.Alarm
	if err := (FastCodec{}).Unmarshal([]byte(raw), &got); err != nil {
		t.Fatalf("unmarshal with unknown fields: %v", err)
	}
	if got.ID != 7 || got.ZIP != "zh-8000" || got.Type != alarm.TypeFire {
		t.Errorf("fields after skip wrong: %+v", got)
	}
}

func TestFastCodecOmitsEmptyPayload(t *testing.T) {
	a := sampleAlarm()
	a.Payload = ""
	b, err := FastCodec{}.Marshal(nil, &a)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if _, ok := m["payload"]; ok {
		t.Error("empty payload should be omitted")
	}
}

func TestUnmarshalRejectsUnknownEnums(t *testing.T) {
	raw := `{"id":1,"deviceMac":"m","deviceIp":"i","zip":"z","ts":0,` +
		`"duration":0,"alarmType":"earthquake","objectType":"public",` +
		`"sensorType":"s","softwareVersion":"v"}`
	for _, c := range codecs() {
		var a alarm.Alarm
		if err := c.Unmarshal([]byte(raw), &a); err == nil {
			t.Errorf("%s: expected error for unknown alarm type", c.Name())
		}
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	bad := []string{"", "{", `{"id":}`, "null garbage", `{"id":1`}
	for _, s := range bad {
		var a alarm.Alarm
		if err := (FastCodec{}).Unmarshal([]byte(s), &a); err == nil {
			t.Errorf("fast codec accepted garbage %q", s)
		}
	}
}

// quickAlarm builds a deterministic pseudo-random alarm from quick's
// rand source, restricted to the invariants real alarms satisfy
// (millisecond timestamps, finite durations).
func quickAlarm(r *rand.Rand) alarm.Alarm {
	strs := func() string {
		n := r.Intn(20)
		b := make([]rune, n)
		for i := range b {
			b[i] = rune(r.Intn(0x250) + 1) // include some multi-byte runes
		}
		return string(b)
	}
	d := math.Abs(r.NormFloat64() * 300)
	return alarm.Alarm{
		ID:              r.Int63(),
		DeviceMAC:       strs(),
		DeviceIP:        strs(),
		ZIP:             strs(),
		Timestamp:       time.UnixMilli(r.Int63n(4102444800000)).UTC(),
		Duration:        d,
		Type:            alarm.Type(r.Intn(alarm.NumTypes())),
		ObjectType:      alarm.ObjectType(r.Intn(alarm.NumObjectTypes())),
		SensorType:      strs(),
		SoftwareVersion: strs(),
		Payload:         strs(),
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	for _, c := range codecs() {
		c := c
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			want := quickAlarm(r)
			b, err := c.Marshal(nil, &want)
			if err != nil {
				t.Logf("%s marshal: %v", c.Name(), err)
				return false
			}
			var got alarm.Alarm
			if err := c.Unmarshal(b, &got); err != nil {
				t.Logf("%s unmarshal: %v (wire %q)", c.Name(), err, b)
				return false
			}
			return reflect.DeepEqual(got, want)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
}

func TestPropertyCrossDecode(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		want := quickAlarm(r)
		b, err := FastCodec{}.Marshal(nil, &want)
		if err != nil {
			return false
		}
		var got alarm.Alarm
		if err := (ReflectCodec{}).Unmarshal(b, &got); err != nil {
			t.Logf("reflect decode of fast output: %v (wire %q)", err, b)
			return false
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMarshal(b *testing.B) {
	a := sampleAlarm()
	for _, c := range codecs() {
		b.Run(c.Name(), func(b *testing.B) {
			var buf []byte
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var err error
				buf, err = c.Marshal(buf[:0], &a)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkUnmarshal(b *testing.B) {
	a := sampleAlarm()
	for _, c := range codecs() {
		buf, err := c.Marshal(nil, &a)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(c.Name(), func(b *testing.B) {
			var out alarm.Alarm
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := c.Unmarshal(buf, &out); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
