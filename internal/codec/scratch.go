package codec

import (
	"fmt"
	"strconv"
	"time"
	"unsafe"

	"alarmverify/internal/alarm"
)

// ScratchUnmarshaler is implemented by codecs that can decode into
// caller-owned scratch without per-field allocations. The pipeline's
// decode stage type-asserts its codec against this interface and takes
// the allocation-free path when it is available.
type ScratchUnmarshaler interface {
	Codec
	// UnmarshalScratch parses data into a exactly like Unmarshal —
	// the decoded alarm is bit-identical — but routes string fields
	// through the scratch's interner instead of allocating a fresh
	// string per field. A nil scratch degrades to per-field copies.
	UnmarshalScratch(data []byte, a *alarm.Alarm, s *Scratch) error
}

// Scratch is the caller-owned decode state for the allocation-free
// unmarshal path. It is not safe for concurrent use: give each decode
// goroutine its own Scratch (the pipeline keeps one per shard, used
// only by that shard's single intake goroutine).
type Scratch struct {
	strings *Interner
}

// NewScratch returns a Scratch with a default-bounded string interner.
func NewScratch() *Scratch {
	return &Scratch{strings: NewInterner(0)}
}

// Strings returns the scratch's interner (for occupancy inspection).
func (s *Scratch) Strings() *Interner { return s.strings }

// Interner deduplicates the low-cardinality string fields of the alarm
// stream (device addresses, ZIP hashes, sensor types, software
// versions): the first sighting of a value pays one allocation, every
// later sighting returns the retained copy without allocating. The
// table is bounded; once full, unseen values fall back to plain copies
// so a high-cardinality field cannot grow the table without bound.
type Interner struct {
	m   map[string]string
	max int
}

// NewInterner creates an interner bounded to max retained strings;
// max <= 0 selects the 4096 default.
func NewInterner(max int) *Interner {
	if max <= 0 {
		max = 4096
	}
	return &Interner{m: make(map[string]string), max: max}
}

// Intern returns a string equal to b, reusing a previously retained
// copy when one exists. The lookup compiles to a no-allocation map
// probe; only first sightings (while the table has room) allocate.
func (in *Interner) Intern(b []byte) string {
	if in == nil {
		return string(b)
	}
	if s, ok := in.m[string(b)]; ok {
		return s
	}
	s := string(b)
	if len(in.m) < in.max {
		in.m[s] = s
	}
	return s
}

// Len returns how many strings the interner currently retains.
func (in *Interner) Len() int {
	if in == nil {
		return 0
	}
	return len(in.m)
}

// Reset drops every retained string.
func (in *Interner) Reset() {
	if in != nil {
		clear(in.m)
	}
}

// UnmarshalScratch implements ScratchUnmarshaler: a single-pass scan
// over the Fig. 11 key set that writes fields straight into a. Numbers
// parse through a non-retaining view of the input (strconv does not
// keep its argument), enum names match in place, and string fields
// intern through the scratch — so a record whose field values have
// been seen before decodes with zero heap allocations, while the
// decoded alarm stays bit-identical to the copying Unmarshal path.
func (FastCodec) UnmarshalScratch(data []byte, a *alarm.Alarm, sc *Scratch) error {
	var in *Interner
	if sc != nil {
		in = sc.strings
	}
	p := parser{buf: data}
	if err := p.objectScratch(a, in); err != nil {
		return fmt.Errorf("codec: fast unmarshal: %w", err)
	}
	return nil
}

// objectScratch is the scratch-path twin of parser.object + fromWire.
// Enum validation is deferred to the end so that syntax errors win
// over unknown-name errors, matching the copying path's error order.
func (p *parser) objectScratch(a *alarm.Alarm, in *Interner) error {
	// The copying path always materializes the timestamp through
	// time.UnixMilli, so an absent "ts" decodes as the epoch, not the
	// zero time; start from the same state.
	*a = alarm.Alarm{Timestamp: time.UnixMilli(0).UTC()}
	// Absent enum fields must decode as the zero enum values, exactly
	// like a zero wireAlarm string matching nothing — but fromWire
	// rejects the empty name, so mirror that with "invalid unless the
	// empty name is what was written" semantics: track whether each
	// enum field parsed to a known name, defaulting to the same error
	// fromWire raises for a zero-valued wire struct.
	var badType, badObject []byte
	typeOK, objectOK := false, false
	p.ws()
	if err := p.expect('{'); err != nil {
		return err
	}
	p.ws()
	if p.peek() == '}' {
		p.pos++
		return p.enumErrors(badType, badObject, typeOK, objectOK)
	}
	for {
		p.ws()
		// rawString hands back decoded key bytes whether or not the key
		// was escaped, so `"id"` dispatches exactly like `"id"` —
		// matching the copying path.
		key, _, err := p.rawString()
		if err != nil {
			return err
		}
		p.ws()
		if err := p.expect(':'); err != nil {
			return err
		}
		p.ws()
		if err := p.valueScratch(key, a, in, &badType, &badObject, &typeOK, &objectOK); err != nil {
			return err
		}
		p.ws()
		switch p.peek() {
		case ',':
			p.pos++
		case '}':
			p.pos++
			return p.enumErrors(badType, badObject, typeOK, objectOK)
		default:
			return fmt.Errorf("unexpected byte %q at %d", p.peek(), p.pos)
		}
	}
}

// enumErrors reports the deferred unknown-enum errors in the same
// order fromWire checks them: alarm type first, then object type.
func (p *parser) enumErrors(badType, badObject []byte, typeOK, objectOK bool) error {
	if !typeOK {
		return fmt.Errorf("codec: unknown alarm type %q", string(badType))
	}
	if !objectOK {
		return fmt.Errorf("codec: unknown object type %q", string(badObject))
	}
	return nil
}

func (p *parser) valueScratch(key []byte, a *alarm.Alarm, in *Interner,
	badType, badObject *[]byte, typeOK, objectOK *bool) error {
	switch string(key) { // compiles to allocation-free comparisons
	case "id":
		n, err := p.intScratch()
		a.ID = n
		return err
	case "ts":
		n, err := p.intScratch()
		a.Timestamp = time.UnixMilli(n).UTC()
		return err
	case "duration":
		f, err := p.floatScratch()
		a.Duration = f
		return err
	case "deviceMac":
		s, err := p.internString(in)
		a.DeviceMAC = s
		return err
	case "deviceIp":
		s, err := p.internString(in)
		a.DeviceIP = s
		return err
	case "zip":
		s, err := p.internString(in)
		a.ZIP = s
		return err
	case "alarmType":
		b, _, err := p.rawString()
		if err != nil {
			return err
		}
		if t, ok := alarm.ParseType(viewString(b)); ok {
			a.Type = t
			*typeOK = true
		} else {
			*badType = b
			*typeOK = false
		}
		return nil
	case "objectType":
		b, _, err := p.rawString()
		if err != nil {
			return err
		}
		if o, ok := alarm.ParseObjectType(viewString(b)); ok {
			a.ObjectType = o
			*objectOK = true
		} else {
			*badObject = b
			*objectOK = false
		}
		return nil
	case "sensorType":
		s, err := p.internString(in)
		a.SensorType = s
		return err
	case "softwareVersion":
		s, err := p.internString(in)
		a.SoftwareVersion = s
		return err
	case "payload":
		// Payload is freeform data, not a low-cardinality enum-like
		// field; interning it would only churn the table.
		b, _, err := p.rawString()
		if err != nil {
			return err
		}
		a.Payload = string(b)
		return err
	default:
		return p.skip()
	}
}

// rawString scans a JSON string and returns its contents as bytes: a
// view into the input when the string has no escapes (the hot path),
// or freshly decoded bytes otherwise. escaped reports which case
// occurred — views must not outlive the input buffer.
func (p *parser) rawString() ([]byte, bool, error) {
	if err := p.expect('"'); err != nil {
		return nil, false, err
	}
	start := p.pos
	for p.pos < len(p.buf) {
		c := p.buf[p.pos]
		if c == '"' {
			b := p.buf[start:p.pos]
			p.pos++
			return b, false, nil
		}
		if c == '\\' {
			b, err := p.escapedBytes(start)
			return b, true, err
		}
		p.pos++
	}
	return nil, false, fmt.Errorf("unterminated string at %d", start)
}

// internString scans a JSON string and interns its contents.
func (p *parser) internString(in *Interner) (string, error) {
	b, _, err := p.rawString()
	if err != nil {
		return "", err
	}
	return in.Intern(b), nil
}

// intScratch parses an integer without allocating: the digits are
// handed to strconv through a non-retaining view. Only the error path
// re-parses from a stable copy (so the returned error cannot alias a
// buffer the caller later reuses).
func (p *parser) intScratch() (int64, error) {
	start := p.pos
	if p.peek() == '-' {
		p.pos++
	}
	for p.pos < len(p.buf) && p.buf[p.pos] >= '0' && p.buf[p.pos] <= '9' {
		p.pos++
	}
	if p.pos == start {
		return 0, fmt.Errorf("expected integer at %d", start)
	}
	seg := p.buf[start:p.pos]
	n, err := strconv.ParseInt(viewString(seg), 10, 64)
	if err != nil {
		return strconv.ParseInt(string(seg), 10, 64)
	}
	return n, nil
}

// floatScratch parses a float without allocating, mirroring
// parser.float byte for byte (strconv.ParseFloat guarantees the
// decoded value is bit-identical to the copying path's).
func (p *parser) floatScratch() (float64, error) {
	start := p.pos
	for p.pos < len(p.buf) {
		c := p.buf[p.pos]
		if (c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
			c == 'e' || c == 'E' {
			p.pos++
			continue
		}
		break
	}
	if p.pos == start {
		return 0, fmt.Errorf("expected number at %d", start)
	}
	seg := p.buf[start:p.pos]
	f, err := strconv.ParseFloat(viewString(seg), 64)
	if err != nil {
		return strconv.ParseFloat(string(seg), 64)
	}
	return f, nil
}

// viewString returns a string header over b without copying. The
// result must not be retained past b's lifetime; it is only ever
// passed to non-retaining consumers (strconv parsing, enum-name
// comparison, map probes).
func viewString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(unsafe.SliceData(b), len(b))
}
