// Package codec provides the two alarm wire-format serializers the
// paper compares in §5.5.2 / Figure 11.
//
// The paper's producer/consumer pair was initially bottlenecked by the
// Jackson JSON serializer; switching to Gson roughly doubled producer
// throughput for the <1 KB alarm objects. We reproduce the contrast
// with two codecs over the same JSON wire format:
//
//   - ReflectCodec — drives encoding/json, i.e. the generic,
//     reflection-based path (the "Jackson" analog).
//   - FastCodec — a hand-rolled, schema-specialized marshaller and
//     parser with minimal allocation (the "Gson" analog).
//
// Both produce interchangeable JSON: bytes written by one codec can be
// read back by the other.
package codec

import (
	"encoding/json"
	"fmt"
	"strconv"
	"time"
	"unicode/utf16"
	"unicode/utf8"

	"alarmverify/internal/alarm"
)

// Codec serializes alarms to and from their wire format.
type Codec interface {
	// Name identifies the codec in benchmark output.
	Name() string
	// Marshal appends the wire form of a to dst and returns the
	// extended slice.
	Marshal(dst []byte, a *alarm.Alarm) ([]byte, error)
	// Unmarshal parses data into a, overwriting all fields.
	Unmarshal(data []byte, a *alarm.Alarm) error
}

// wireAlarm is the JSON shape shared by both codecs. Enumerated fields
// travel as their canonical names so that the payload is
// self-describing across software versions (§4.3: alarm structure
// differs across sensor types and updates).
type wireAlarm struct {
	ID              int64   `json:"id"`
	DeviceMAC       string  `json:"deviceMac"`
	DeviceIP        string  `json:"deviceIp"`
	ZIP             string  `json:"zip"`
	TimestampUnixMS int64   `json:"ts"`
	Duration        float64 `json:"duration"`
	Type            string  `json:"alarmType"`
	ObjectType      string  `json:"objectType"`
	SensorType      string  `json:"sensorType"`
	SoftwareVersion string  `json:"softwareVersion"`
	Payload         string  `json:"payload,omitempty"`
}

// ReflectCodec serializes via encoding/json. It is correct for any
// field set but pays reflection and interface costs per message — the
// behaviour the paper observed with Jackson on small objects.
type ReflectCodec struct{}

// Name implements Codec.
func (ReflectCodec) Name() string { return "reflect" }

// Marshal implements Codec.
func (ReflectCodec) Marshal(dst []byte, a *alarm.Alarm) ([]byte, error) {
	w := wireAlarm{
		ID:              a.ID,
		DeviceMAC:       a.DeviceMAC,
		DeviceIP:        a.DeviceIP,
		ZIP:             a.ZIP,
		TimestampUnixMS: a.Timestamp.UnixMilli(),
		Duration:        a.Duration,
		Type:            a.Type.String(),
		ObjectType:      a.ObjectType.String(),
		SensorType:      a.SensorType,
		SoftwareVersion: a.SoftwareVersion,
		Payload:         a.Payload,
	}
	b, err := json.Marshal(w)
	if err != nil {
		return dst, err
	}
	return append(dst, b...), nil
}

// Unmarshal implements Codec.
func (ReflectCodec) Unmarshal(data []byte, a *alarm.Alarm) error {
	var w wireAlarm
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	return fromWire(&w, a)
}

func fromWire(w *wireAlarm, a *alarm.Alarm) error {
	t, ok := alarm.ParseType(w.Type)
	if !ok {
		return fmt.Errorf("codec: unknown alarm type %q", w.Type)
	}
	o, ok := alarm.ParseObjectType(w.ObjectType)
	if !ok {
		return fmt.Errorf("codec: unknown object type %q", w.ObjectType)
	}
	a.ID = w.ID
	a.DeviceMAC = w.DeviceMAC
	a.DeviceIP = w.DeviceIP
	a.ZIP = w.ZIP
	a.Timestamp = time.UnixMilli(w.TimestampUnixMS).UTC()
	a.Duration = w.Duration
	a.Type = t
	a.ObjectType = o
	a.SensorType = w.SensorType
	a.SoftwareVersion = w.SoftwareVersion
	a.Payload = w.Payload
	return nil
}

// FastCodec is the schema-specialized serializer. Marshal writes JSON
// directly into the destination buffer; Unmarshal is a single-pass
// scanner over the known key set. Neither path allocates beyond the
// output strings themselves.
type FastCodec struct{}

// Name implements Codec.
func (FastCodec) Name() string { return "fast" }

// Marshal implements Codec.
func (FastCodec) Marshal(dst []byte, a *alarm.Alarm) ([]byte, error) {
	dst = append(dst, `{"id":`...)
	dst = strconv.AppendInt(dst, a.ID, 10)
	dst = append(dst, `,"deviceMac":`...)
	dst = appendJSONString(dst, a.DeviceMAC)
	dst = append(dst, `,"deviceIp":`...)
	dst = appendJSONString(dst, a.DeviceIP)
	dst = append(dst, `,"zip":`...)
	dst = appendJSONString(dst, a.ZIP)
	dst = append(dst, `,"ts":`...)
	dst = strconv.AppendInt(dst, a.Timestamp.UnixMilli(), 10)
	dst = append(dst, `,"duration":`...)
	dst = strconv.AppendFloat(dst, a.Duration, 'g', -1, 64)
	dst = append(dst, `,"alarmType":`...)
	dst = appendJSONString(dst, a.Type.String())
	dst = append(dst, `,"objectType":`...)
	dst = appendJSONString(dst, a.ObjectType.String())
	dst = append(dst, `,"sensorType":`...)
	dst = appendJSONString(dst, a.SensorType)
	dst = append(dst, `,"softwareVersion":`...)
	dst = appendJSONString(dst, a.SoftwareVersion)
	if a.Payload != "" {
		dst = append(dst, `,"payload":`...)
		dst = appendJSONString(dst, a.Payload)
	}
	dst = append(dst, '}')
	return dst, nil
}

// Unmarshal implements Codec.
func (FastCodec) Unmarshal(data []byte, a *alarm.Alarm) error {
	var w wireAlarm
	p := parser{buf: data}
	if err := p.object(&w); err != nil {
		return fmt.Errorf("codec: fast unmarshal: %w", err)
	}
	return fromWire(&w, a)
}

// appendJSONString appends s as a quoted JSON string, escaping the
// characters JSON requires.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 0x20 && c != '"' && c != '\\' {
			continue
		}
		dst = append(dst, s[start:i]...)
		switch c {
		case '"':
			dst = append(dst, '\\', '"')
		case '\\':
			dst = append(dst, '\\', '\\')
		case '\n':
			dst = append(dst, '\\', 'n')
		case '\r':
			dst = append(dst, '\\', 'r')
		case '\t':
			dst = append(dst, '\\', 't')
		default:
			dst = append(dst, '\\', 'u', '0', '0',
				hexDigit(c>>4), hexDigit(c&0xf))
		}
		start = i + 1
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

func hexDigit(b byte) byte {
	if b < 10 {
		return '0' + b
	}
	return 'a' + b - 10
}

// parser is a minimal single-pass JSON scanner specialized for the
// flat wireAlarm object.
type parser struct {
	buf []byte
	pos int
}

func (p *parser) object(w *wireAlarm) error {
	p.ws()
	if err := p.expect('{'); err != nil {
		return err
	}
	p.ws()
	if p.peek() == '}' {
		p.pos++
		return nil
	}
	for {
		p.ws()
		key, err := p.string()
		if err != nil {
			return err
		}
		p.ws()
		if err := p.expect(':'); err != nil {
			return err
		}
		p.ws()
		if err := p.value(key, w); err != nil {
			return err
		}
		p.ws()
		switch p.peek() {
		case ',':
			p.pos++
		case '}':
			p.pos++
			return nil
		default:
			return fmt.Errorf("unexpected byte %q at %d", p.peek(), p.pos)
		}
	}
}

func (p *parser) value(key string, w *wireAlarm) error {
	switch key {
	case "id":
		n, err := p.int()
		w.ID = n
		return err
	case "ts":
		n, err := p.int()
		w.TimestampUnixMS = n
		return err
	case "duration":
		f, err := p.float()
		w.Duration = f
		return err
	case "deviceMac":
		s, err := p.string()
		w.DeviceMAC = s
		return err
	case "deviceIp":
		s, err := p.string()
		w.DeviceIP = s
		return err
	case "zip":
		s, err := p.string()
		w.ZIP = s
		return err
	case "alarmType":
		s, err := p.string()
		w.Type = s
		return err
	case "objectType":
		s, err := p.string()
		w.ObjectType = s
		return err
	case "sensorType":
		s, err := p.string()
		w.SensorType = s
		return err
	case "softwareVersion":
		s, err := p.string()
		w.SoftwareVersion = s
		return err
	case "payload":
		s, err := p.string()
		w.Payload = s
		return err
	default:
		// Unknown field: skip its value so newer producers stay
		// compatible with older consumers.
		return p.skip()
	}
}

func (p *parser) ws() {
	for p.pos < len(p.buf) {
		switch p.buf[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *parser) peek() byte {
	if p.pos < len(p.buf) {
		return p.buf[p.pos]
	}
	return 0
}

func (p *parser) expect(c byte) error {
	if p.pos >= len(p.buf) || p.buf[p.pos] != c {
		return fmt.Errorf("expected %q at %d", c, p.pos)
	}
	p.pos++
	return nil
}

func (p *parser) int() (int64, error) {
	start := p.pos
	if p.peek() == '-' {
		p.pos++
	}
	for p.pos < len(p.buf) && p.buf[p.pos] >= '0' && p.buf[p.pos] <= '9' {
		p.pos++
	}
	if p.pos == start {
		return 0, fmt.Errorf("expected integer at %d", start)
	}
	return strconv.ParseInt(string(p.buf[start:p.pos]), 10, 64)
}

func (p *parser) float() (float64, error) {
	start := p.pos
	for p.pos < len(p.buf) {
		c := p.buf[p.pos]
		if (c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
			c == 'e' || c == 'E' {
			p.pos++
			continue
		}
		break
	}
	if p.pos == start {
		return 0, fmt.Errorf("expected number at %d", start)
	}
	return strconv.ParseFloat(string(p.buf[start:p.pos]), 64)
}

func (p *parser) string() (string, error) {
	if err := p.expect('"'); err != nil {
		return "", err
	}
	start := p.pos
	for p.pos < len(p.buf) {
		c := p.buf[p.pos]
		if c == '"' {
			s := string(p.buf[start:p.pos])
			p.pos++
			return s, nil
		}
		if c == '\\' {
			return p.escapedString(start)
		}
		p.pos++
	}
	return "", fmt.Errorf("unterminated string at %d", start)
}

// escapedString handles the slow path once the first backslash is
// seen; start points at the first content byte of the string.
func (p *parser) escapedString(start int) (string, error) {
	b, err := p.escapedBytes(start)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// escapedBytes decodes a string containing escapes into fresh bytes;
// start points at the first content byte of the string.
func (p *parser) escapedBytes(start int) ([]byte, error) {
	out := append([]byte(nil), p.buf[start:p.pos]...)
	for p.pos < len(p.buf) {
		c := p.buf[p.pos]
		switch {
		case c == '"':
			p.pos++
			return out, nil
		case c == '\\':
			p.pos++
			if p.pos >= len(p.buf) {
				return nil, fmt.Errorf("truncated escape at %d", p.pos)
			}
			e := p.buf[p.pos]
			p.pos++
			switch e {
			case '"', '\\', '/':
				out = append(out, e)
			case 'n':
				out = append(out, '\n')
			case 'r':
				out = append(out, '\r')
			case 't':
				out = append(out, '\t')
			case 'b':
				out = append(out, '\b')
			case 'f':
				out = append(out, '\f')
			case 'u':
				r, err := p.unicodeEscape()
				if err != nil {
					return nil, err
				}
				var tmp [utf8.UTFMax]byte
				out = append(out, tmp[:utf8.EncodeRune(tmp[:], r)]...)
			default:
				return nil, fmt.Errorf("bad escape %q at %d", e, p.pos-1)
			}
		default:
			out = append(out, c)
			p.pos++
		}
	}
	return nil, fmt.Errorf("unterminated string")
}

func (p *parser) unicodeEscape() (rune, error) {
	r1, err := p.hex4()
	if err != nil {
		return 0, err
	}
	if utf16.IsSurrogate(rune(r1)) && p.pos+1 < len(p.buf) &&
		p.buf[p.pos] == '\\' && p.buf[p.pos+1] == 'u' {
		p.pos += 2
		r2, err := p.hex4()
		if err != nil {
			return 0, err
		}
		return utf16.DecodeRune(rune(r1), rune(r2)), nil
	}
	return rune(r1), nil
}

func (p *parser) hex4() (uint32, error) {
	if p.pos+4 > len(p.buf) {
		return 0, fmt.Errorf("truncated \\u escape at %d", p.pos)
	}
	var v uint32
	for i := 0; i < 4; i++ {
		c := p.buf[p.pos+i]
		switch {
		case c >= '0' && c <= '9':
			v = v<<4 | uint32(c-'0')
		case c >= 'a' && c <= 'f':
			v = v<<4 | uint32(c-'a'+10)
		case c >= 'A' && c <= 'F':
			v = v<<4 | uint32(c-'A'+10)
		default:
			return 0, fmt.Errorf("bad hex digit %q at %d", c, p.pos+i)
		}
	}
	p.pos += 4
	return v, nil
}

// skip consumes one arbitrary JSON value (used for unknown fields).
func (p *parser) skip() error {
	p.ws()
	switch c := p.peek(); {
	case c == '"':
		_, _, err := p.rawString()
		return err
	case c == '{' || c == '[':
		open, close := c, byte('}')
		if c == '[' {
			close = ']'
		}
		depth := 0
		for p.pos < len(p.buf) {
			switch p.buf[p.pos] {
			case '"':
				if _, _, err := p.rawString(); err != nil {
					return err
				}
				continue
			case open:
				depth++
			case close:
				depth--
				if depth == 0 {
					p.pos++
					return nil
				}
			}
			p.pos++
		}
		return fmt.Errorf("unterminated %q", open)
	default:
		for p.pos < len(p.buf) {
			c := p.buf[p.pos]
			if c == ',' || c == '}' || c == ']' || c == ' ' {
				return nil
			}
			p.pos++
		}
		return nil
	}
}
