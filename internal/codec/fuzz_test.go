package codec

import (
	"testing"
	"time"
	"unicode/utf8"

	"alarmverify/internal/alarm"
)

// FuzzDecode hammers the hand-rolled FastCodec parser with arbitrary
// JSON-shaped payloads. The contract under fuzzing: malformed input
// must return an error — never panic, never hang — and any input the
// parser accepts must survive a re-marshal/re-decode round-trip
// through the reflection codec (the two codecs promise interchangeable
// wire bytes).
func FuzzDecode(f *testing.F) {
	valid, err := (FastCodec{}).Marshal(nil, &alarm.Alarm{
		ID:              42,
		DeviceMAC:       "00:11:22:33:44:55",
		DeviceIP:        "10.0.0.7",
		ZIP:             "8400",
		Timestamp:       time.Date(2016, 2, 11, 10, 30, 0, 0, time.UTC),
		Duration:        90.5,
		Type:            alarm.TypeFire,
		ObjectType:      alarm.ObjectResidential,
		SensorType:      "smoke",
		SoftwareVersion: "v2.1",
		Payload:         `quoted "payload" with\escapes`,
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte(`{}`))
	f.Add([]byte(``))
	f.Add([]byte(`{`))
	f.Add([]byte(`{"id":}`))
	f.Add([]byte(`{"id":-}`))
	f.Add([]byte(`{"id":1,"ts":2,}`))
	f.Add([]byte(`{"duration":1e309}`))
	f.Add([]byte(`{"alarmType":"no-such-type"}`))
	f.Add([]byte(`{"deviceMac":"\u00"}`))
	f.Add([]byte(`{"deviceMac":"😀 \udead"}`))
	f.Add([]byte(`{"payload":"\q"}`))
	f.Add([]byte(`{"unknown":{"nested":[1,"two",{"x":"\""}]}}`))
	f.Add([]byte(`{"unknown":[[[[`))
	f.Add([]byte(`{"id":9223372036854775808}`))
	f.Add([]byte("{\"zip\":\"\x00\xff\"}"))

	f.Fuzz(func(t *testing.T, data []byte) {
		var a alarm.Alarm
		if err := (FastCodec{}).Unmarshal(data, &a); err != nil {
			return // rejected: exactly what malformed input should get
		}
		out, err := (FastCodec{}).Marshal(nil, &a)
		if err != nil {
			t.Fatalf("re-marshal of accepted input %q failed: %v", data, err)
		}
		var back alarm.Alarm
		if err := (ReflectCodec{}).Unmarshal(out, &back); err != nil {
			t.Fatalf("reflect codec rejected fast codec output %q (from %q): %v", out, data, err)
		}
		if back.ID != a.ID || back.Duration != a.Duration ||
			back.Type != a.Type || !back.Timestamp.Equal(a.Timestamp) {
			t.Fatalf("round-trip drift: %+v vs %+v (input %q)", a, back, data)
		}
		// String fields only compare for valid UTF-8: encoding/json
		// coerces invalid bytes to U+FFFD by design, which is not a
		// parser bug.
		if utf8.ValidString(a.ZIP) && back.ZIP != a.ZIP {
			t.Fatalf("zip drift: %q vs %q (input %q)", a.ZIP, back.ZIP, data)
		}
	})
}
