package codec

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"alarmverify/internal/alarm"
)

// TestScratchEquivalenceProperty is the zero-copy decode equivalence
// guarantee: for any alarm the fast codec can produce, UnmarshalScratch
// yields a bit-identical alarm.Alarm to the copying Unmarshal path.
func TestScratchEquivalenceProperty(t *testing.T) {
	sc := NewScratch()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := quickAlarm(r)
		wire, err := (FastCodec{}).Marshal(nil, &a)
		if err != nil {
			t.Logf("marshal: %v", err)
			return false
		}
		var copying, scratch alarm.Alarm
		errCopy := (FastCodec{}).Unmarshal(wire, &copying)
		errScratch := (FastCodec{}).UnmarshalScratch(wire, &scratch, sc)
		if (errCopy == nil) != (errScratch == nil) {
			t.Logf("error divergence: copy=%v scratch=%v (wire %q)", errCopy, errScratch, wire)
			return false
		}
		if errCopy != nil {
			return true
		}
		if !reflect.DeepEqual(copying, scratch) {
			t.Logf("value divergence:\n copy    %+v\n scratch %+v\n(wire %q)", copying, scratch, wire)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestScratchEquivalenceEdgeCases pins the equivalence on handwritten
// wire forms the marshaller never emits: escaped keys and values,
// whitespace, unknown fields, absent fields, duplicate fields, and the
// malformed inputs the fuzz corpus starts from.
func TestScratchEquivalenceEdgeCases(t *testing.T) {
	cases := []string{
		`{}`,
		`{"alarmType":"fire","objectType":"public"}`,
		`{ "id" : 7 , "alarmType" : "fire" , "objectType" : "public" }`,
		`{"id":5,"alarmType":"fire","objectType":"public"}`,
		`{"id":1,"deviceMac":"a\nbé","deviceIp":"😀","zip":"z",` +
			`"ts":1455,"duration":1.25e2,"alarmType":"water","objectType":"commercial",` +
			`"sensorType":"s","softwareVersion":"v","payload":"p\"q"}`,
		`{"id":9223372036854775808,"alarmType":"fire","objectType":"public"}`,
		`{"duration":1e309,"alarmType":"fire","objectType":"public"}`,
		`{"id":2,"unknown":{"nested":[1,"two",{"x":"\""}]},"alarmType":"panic",` +
			`"objectType":"agricultural"}`,
		`{"alarmType":"earthquake","objectType":"public"}`,
		`{"alarmType":"fire","objectType":"castle"}`,
		`{"alarmType":"fire","alarmType":"nope","objectType":"public"}`,
		`{"alarmType":"nope","alarmType":"fire","objectType":"public"}`,
		`{"id":-42,"ts":-1,"duration":-0.5,"alarmType":"fire","objectType":"public"}`,
		`{"id":`,
		`{"id":}`,
		``,
		`{"payload":"\q"}`,
	}
	sc := NewScratch()
	for _, wire := range cases {
		var copying, scratch alarm.Alarm
		errCopy := (FastCodec{}).Unmarshal([]byte(wire), &copying)
		errScratch := (FastCodec{}).UnmarshalScratch([]byte(wire), &scratch, sc)
		if (errCopy == nil) != (errScratch == nil) {
			t.Errorf("%q: error divergence: copy=%v scratch=%v", wire, errCopy, errScratch)
			continue
		}
		if errCopy == nil && !reflect.DeepEqual(copying, scratch) {
			t.Errorf("%q: value divergence:\n copy    %+v\n scratch %+v", wire, copying, scratch)
		}
	}
}

// TestScratchDoesNotAliasInput guards the view discipline: every
// string field of the decoded alarm must be safe to keep after the
// input buffer is reused, so the parser may only hand out copies (or
// interned copies), never views.
func TestScratchDoesNotAliasInput(t *testing.T) {
	a := sampleAlarm()
	wire, err := (FastCodec{}).Marshal(nil, &a)
	if err != nil {
		t.Fatal(err)
	}
	sc := NewScratch()
	var got alarm.Alarm
	if err := (FastCodec{}).UnmarshalScratch(wire, &got, sc); err != nil {
		t.Fatal(err)
	}
	for i := range wire {
		wire[i] = 0xDB // poison the input buffer
	}
	if got.DeviceMAC != a.DeviceMAC || got.ZIP != a.ZIP ||
		got.SensorType != a.SensorType || got.Payload != a.Payload {
		t.Fatalf("decoded alarm aliases the input buffer: %+v", got)
	}
}

// TestInternerBoundsAndHits checks both interner contracts: repeat
// sightings return the identical retained string, and the table stops
// growing at its bound instead of retaining high-cardinality values.
func TestInternerBoundsAndHits(t *testing.T) {
	in := NewInterner(4)
	first := in.Intern([]byte("alpha"))
	second := in.Intern([]byte("alpha"))
	if first != second {
		t.Fatalf("interned values differ: %q vs %q", first, second)
	}
	for _, s := range []string{"b", "c", "d", "e", "f", "g"} {
		in.Intern([]byte(s))
	}
	if in.Len() > 4 {
		t.Fatalf("interner exceeded its bound: %d entries", in.Len())
	}
	if got := in.Intern([]byte("overflow")); got != "overflow" {
		t.Fatalf("overflow intern returned %q", got)
	}
	in.Reset()
	if in.Len() != 0 {
		t.Fatalf("reset left %d entries", in.Len())
	}
}

// TestScratchDecodeAllocs pins the headline claim: decoding a record
// whose field values have been seen before performs zero heap
// allocations, against ~a dozen on the copying path.
func TestScratchDecodeAllocs(t *testing.T) {
	a := sampleAlarm()
	wire, err := (FastCodec{}).Marshal(nil, &a)
	if err != nil {
		t.Fatal(err)
	}
	sc := NewScratch()
	var out alarm.Alarm
	// Warm the interner so the steady state is measured.
	if err := (FastCodec{}).UnmarshalScratch(wire, &out, sc); err != nil {
		t.Fatal(err)
	}
	// Payload is copied per record by design; drop it so the steady
	// state decode is fully interned.
	noPayload := a
	noPayload.Payload = ""
	wire2, _ := (FastCodec{}).Marshal(nil, &noPayload)
	if err := (FastCodec{}).UnmarshalScratch(wire2, &out, sc); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := (FastCodec{}).UnmarshalScratch(wire2, &out, sc); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state scratch decode allocates %.1f/op, want 0", allocs)
	}
	copying := testing.AllocsPerRun(100, func() {
		var c alarm.Alarm
		if err := (FastCodec{}).Unmarshal(wire2, &c); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("copying %.1f allocs/op, scratch %.1f allocs/op", copying, allocs)
	if copying < 5 {
		t.Errorf("copying path allocates %.1f/op; expected ≥5x the scratch path", copying)
	}
}

// BenchmarkUnmarshalScratch measures the zero-copy decode path for
// benchdiff's allocs/op gate, next to BenchmarkUnmarshal's copying
// baselines.
func BenchmarkUnmarshalScratch(b *testing.B) {
	a := sampleAlarm()
	wire, err := (FastCodec{}).Marshal(nil, &a)
	if err != nil {
		b.Fatal(err)
	}
	sc := NewScratch()
	var out alarm.Alarm
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := (FastCodec{}).UnmarshalScratch(wire, &out, sc); err != nil {
			b.Fatal(err)
		}
	}
	if out.ID != a.ID {
		b.Fatal("decode drift")
	}
}
