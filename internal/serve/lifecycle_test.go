package serve

import (
	"testing"
	"time"

	"alarmverify/internal/alarm"
	"alarmverify/internal/core"
	"alarmverify/internal/docstore"
	"alarmverify/internal/ml"
)

// TestFeedbackRetrainHotSwapLive is the end-to-end lifecycle proof:
// while the sharded service is verifying a live stream, operator
// feedback accumulates, the background retrainer fits a corrected
// candidate, wins the shadow evaluation and hot-swaps it into the
// shared verifier — and the service loses nothing: zero errored
// shards, every replayed alarm verified exactly once, and the swapped
// model demonstrably changes predictions.
func TestFeedbackRetrainHotSwapLive(t *testing.T) {
	_, stream := testSetup(t)
	smallRF := func() (ml.Classifier, error) {
		cfg := ml.DefaultRandomForestConfig()
		cfg.NumTrees = 12
		cfg.MaxDepth = 12
		return ml.NewRandomForest(cfg), nil
	}

	// A deliberately stale model: trained on a thin slice, before the
	// "drift" the operators will correct.
	vcfg := core.DefaultVerifierConfig()
	vcfg.Classifier, _ = smallRF()
	live, err := core.Train(stream[:600], vcfg)
	if err != nil {
		t.Fatal(err)
	}
	replay := stream[600:]

	// The operators' systematic correction: every intrusion alarm is
	// genuinely true, whatever the Δt heuristic says.
	probe := make([]alarm.Alarm, 0, 256)
	for i := len(replay) - 1; i >= 0 && len(probe) < 256; i-- {
		if replay[i].Type == alarm.TypeIntrusion {
			probe = append(probe, replay[i])
		}
	}
	if len(probe) < 32 {
		t.Fatalf("only %d intrusion probes in replay", len(probe))
	}
	preVers, err := live.VerifyBatch(probe)
	if err != nil {
		t.Fatal(err)
	}
	preTrue := 0
	for _, v := range preVers {
		if v.Predicted == alarm.True {
			preTrue++
		}
	}

	b := loadedBroker(t, replay, 4)
	defer b.Close()
	history, err := core.NewHistory(docstore.NewDB())
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New(b, "alarms", "lifecycle", live, history, testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	rt := core.NewRetrainer(live, history, nil, core.RetrainerConfig{
		MinFeedback:   200,
		CheckEvery:    5 * time.Millisecond,
		Verifier:      core.DefaultVerifierConfig(),
		NewClassifier: smallRF,
	})
	rt.Start()
	defer rt.Stop()

	svc.Start()
	// Operators file verdicts while the stream is being served. The
	// correction is systematic, so it covers recent alarms too — the
	// retrainer's shadow holdout (the most recent slice) must see the
	// same ground truth the train set learned, or the stale model
	// rightly wins the evaluation.
	fed := 0
	for i := range replay {
		if replay[i].Type == alarm.TypeIntrusion {
			history.RecordFeedback(core.Feedback{
				AlarmID:   replay[i].ID,
				DeviceMAC: replay[i].DeviceMAC,
				Verdict:   alarm.True,
				At:        replay[i].Timestamp,
			})
			fed++
		}
	}
	if fed < 200 {
		t.Fatalf("only %d feedback verdicts available, trigger needs 200", fed)
	}

	waitFor(t, 30*time.Second, "feedback-triggered hot swap", func() bool {
		return rt.Stats().Swaps >= 1
	})
	waitFor(t, 30*time.Second, "stream fully drained", func() bool {
		lag, err := svc.Lag()
		return err == nil && lag == 0
	})
	svc.Stop()

	// Zero errored: no shard halted, no retrain error latched.
	if err := svc.Err(); err != nil {
		t.Fatalf("shard errored across the swap: %v", err)
	}
	if st := rt.Stats(); st.LastErr != "" {
		t.Fatalf("retrainer error: %s", st.LastErr)
	}
	// Zero dropped: every replayed alarm verified exactly once.
	verified := svc.Verified()
	if len(verified) != len(replay) || uniqueIDs(verified) != len(replay) {
		t.Fatalf("verified %d (%d unique) of %d replayed",
			len(verified), uniqueIDs(verified), len(replay))
	}
	for i := range verified {
		if verified[i].ModelName == "" || verified[i].Probability < 0.5 || verified[i].Probability > 1 {
			t.Fatalf("verification %d malformed: %+v", i, verified[i])
		}
	}
	// The swap is visible: the live verifier serves the new version…
	if live.ModelVersion() < 1 {
		t.Fatalf("live model version = %d after swap", live.ModelVersion())
	}
	// …and the corrected model predicts measurably differently: the
	// operators marked every intrusion true, so the retrained model
	// must flag strictly more of the intrusion probes than the stale
	// one did.
	postVers, err := live.VerifyBatch(probe)
	if err != nil {
		t.Fatal(err)
	}
	postTrue := 0
	for _, v := range postVers {
		if v.Predicted == alarm.True {
			postTrue++
		}
	}
	if postTrue <= preTrue {
		t.Fatalf("swap did not change predictions: %d/%d true before, %d/%d after",
			preTrue, len(probe), postTrue, len(probe))
	}
}
