package serve

import (
	"testing"
	"time"

	"alarmverify/internal/alarm"
	"alarmverify/internal/broker"
	"alarmverify/internal/codec"
	"alarmverify/internal/core"
	"alarmverify/internal/docstore"
	"alarmverify/internal/metrics"
)

// liveBroker preloads a topic stamping records with enqueue-time
// timestamps, the shape the loadgen sinks produce.
func liveBroker(t testing.TB, alarms []alarm.Alarm, partitions int) *broker.Broker {
	t.Helper()
	b := broker.New()
	topic, err := b.CreateTopic("alarms", partitions)
	if err != nil {
		t.Fatal(err)
	}
	prod := broker.NewProducer(topic)
	var c codec.FastCodec
	var buf []byte
	for i := range alarms {
		buf, err = c.Marshal(buf[:0], &alarms[i])
		if err != nil {
			t.Fatal(err)
		}
		val := make([]byte, len(buf))
		copy(val, buf)
		if _, _, err := prod.SendAt([]byte(alarms[i].DeviceMAC), val, time.Now()); err != nil {
			t.Fatal(err)
		}
	}
	return b
}

// TestLoadSheddingBoundsBacklog floods one slow shard far past its
// shed bound: some records must be dropped (counted, not silently),
// the rest processed, and — critically — every record's offset
// committed, shed or not: shedding drains the backlog rather than
// hiding it for redelivery.
func TestLoadSheddingBoundsBacklog(t *testing.T) {
	v, stream := testSetup(t)
	total := 4000
	if len(stream) < total {
		total = len(stream)
	}
	b := liveBroker(t, stream[:total], 4)
	defer b.Close()
	h, err := core.NewHistory(docstore.NewDB())
	if err != nil {
		t.Fatal(err)
	}
	// A simulated remote-docstore round-trip makes persist the
	// bottleneck, so the backlog holds while the shard drains.
	h.SetSimulatedRTT(2 * time.Millisecond)

	m := metrics.NewPipeline()
	cfg := DefaultConfig()
	cfg.Shards = 1
	cfg.ShedQueue = 512
	cfg.Consumer.Workers = 2
	cfg.Consumer.MaxPerBatch = 128
	cfg.Consumer.PollTimeout = 2 * time.Millisecond
	cfg.Consumer.Metrics = m
	svc, err := New(b, "alarms", "shed", v, h, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	svc.Start()

	waitFor(t, 60*time.Second, "backlog drained", func() bool {
		lag, err := svc.Lag()
		return err == nil && lag == 0
	})
	svc.Stop()
	if err := svc.Err(); err != nil {
		t.Fatal(err)
	}

	st := svc.Stats()
	if st.ShedRecords == 0 {
		t.Fatal("nothing shed despite a backlog 8× the bound")
	}
	if st.Records == 0 {
		t.Fatal("everything shed: the pipeline did no work at all")
	}
	if got := st.Records + int(st.ShedRecords); got != total {
		t.Fatalf("processed %d + shed %d = %d, want %d (no record unaccounted)",
			st.Records, st.ShedRecords, got, total)
	}
	if got := m.ShedRecords(); got != st.ShedRecords {
		t.Fatalf("metrics shed %d != stats shed %d", got, st.ShedRecords)
	}
	committed, err := svc.Committed()
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, off := range committed {
		sum += off
	}
	if sum != int64(total) {
		t.Fatalf("committed %d offsets, want %d: shed batches must still commit", sum, total)
	}
	// Shed records are dropped, not verified.
	if got := len(svc.Verified()); got != st.Records {
		t.Fatalf("verifications %d != processed %d", got, st.Records)
	}
}

// TestShedDisabledProcessesEverything is the control: without a
// bound, the same flood is fully processed and nothing is counted
// shed.
func TestShedDisabledProcessesEverything(t *testing.T) {
	v, stream := testSetup(t)
	total := 1500
	if len(stream) < total {
		total = len(stream)
	}
	b := liveBroker(t, stream[:total], 4)
	defer b.Close()
	h, err := core.NewHistory(docstore.NewDB())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(2)
	cfg.ShedQueue = 0
	svc, err := New(b, "alarms", "noshed", v, h, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	svc.Start()
	waitFor(t, 60*time.Second, "all records verified", func() bool {
		return svc.Records() == total
	})
	svc.Stop()
	if st := svc.Stats(); st.ShedRecords != 0 {
		t.Fatalf("shed %d records with shedding disabled", st.ShedRecords)
	}
}

// TestAdaptiveBatchService runs the sharded service with adaptive
// micro-batching end to end: exactly-once must hold and the observed
// drain bound must have moved off the floor under backlog.
func TestAdaptiveBatchService(t *testing.T) {
	v, stream := testSetup(t)
	total := 3000
	if len(stream) < total {
		total = len(stream)
	}
	b := liveBroker(t, stream[:total], 4)
	defer b.Close()
	h, err := core.NewHistory(docstore.NewDB())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Shards = 2
	cfg.Consumer.Workers = 2
	cfg.Consumer.AdaptiveBatch = true
	cfg.Consumer.AdaptiveMinBatch = 32
	cfg.Consumer.MaxPerBatch = 1024
	cfg.Consumer.PollTimeout = 2 * time.Millisecond
	svc, err := New(b, "alarms", "adapt", v, h, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	svc.Start()
	waitFor(t, 60*time.Second, "all records verified", func() bool {
		return svc.Records() == total
	})
	svc.Stop()
	if err := svc.Err(); err != nil {
		t.Fatal(err)
	}
	if got := uniqueIDs(svc.Verified()); got != total {
		t.Fatalf("verified %d unique alarms, want %d (exactly-once under adaptive batching)", got, total)
	}
}
