package serve

import (
	"sync"
	"testing"
	"time"

	"alarmverify/internal/alarm"
	"alarmverify/internal/broker"
	"alarmverify/internal/codec"
	"alarmverify/internal/core"
	"alarmverify/internal/dataset"
	"alarmverify/internal/docstore"
	"alarmverify/internal/ml"
	"alarmverify/internal/risk"
)

var (
	setupOnce    sync.Once
	testVerifier *core.Verifier
	testStream   []alarm.Alarm
)

// testSetup trains one small verifier and generates one replay stream
// shared by every test in the package.
func testSetup(t testing.TB) (*core.Verifier, []alarm.Alarm) {
	t.Helper()
	setupOnce.Do(func() {
		gaz := risk.NewGazetteer(risk.GazetteerConfig{
			NumPlaces:      200,
			NumBigCities:   6,
			MaxZIPsPerCity: 4,
			Seed:           11,
		})
		w := dataset.NewWorldWith(gaz, 11)
		cfg := dataset.DefaultSitasysConfig()
		cfg.NumAlarms = 6000
		cfg.NumDevices = 300
		cfg.PayloadBytes = 0
		alarms := dataset.GenerateSitasys(w, cfg)
		rfCfg := ml.DefaultRandomForestConfig()
		rfCfg.NumTrees = 12
		rfCfg.MaxDepth = 12
		vcfg := core.DefaultVerifierConfig()
		vcfg.Classifier = ml.NewRandomForest(rfCfg)
		v, err := core.Train(alarms[:2000], vcfg)
		if err != nil {
			panic(err)
		}
		testVerifier = v
		testStream = alarms[2000:]
	})
	return testVerifier, testStream
}

// loadedBroker creates a broker with a preloaded "alarms" topic.
func loadedBroker(t testing.TB, alarms []alarm.Alarm, partitions int) *broker.Broker {
	t.Helper()
	b := broker.New()
	topic, err := b.CreateTopic("alarms", partitions)
	if err != nil {
		t.Fatal(err)
	}
	prod := core.NewProducerApp(topic, codec.FastCodec{})
	prod.Threads = 2
	stats, err := prod.Replay(alarms, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sent != len(alarms) {
		t.Fatalf("preloaded %d of %d alarms", stats.Sent, len(alarms))
	}
	return b
}

func waitFor(t testing.TB, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func testConfig(shards int) Config {
	cfg := DefaultConfig()
	cfg.Shards = shards
	cfg.Consumer.Workers = 2
	cfg.Consumer.MaxPerBatch = 256
	cfg.Consumer.PollTimeout = 2 * time.Millisecond
	return cfg
}

// uniqueIDs counts distinct alarm IDs across verifications.
func uniqueIDs(vs []alarm.Verification) int {
	seen := make(map[int64]struct{}, len(vs))
	for _, v := range vs {
		seen[v.AlarmID] = struct{}{}
	}
	return len(seen)
}

func TestShardedServiceVerifiesAllExactlyOnce(t *testing.T) {
	v, stream := testSetup(t)
	b := loadedBroker(t, stream, 8)
	defer b.Close()
	h, err := core.NewHistory(docstore.NewDB())
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New(b, "alarms", "g", v, h, testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	// The four shards must split the eight partitions evenly.
	seen := make(map[int]int)
	for _, sh := range svc.Stats().Shards {
		if len(sh.Partitions) != 2 {
			t.Errorf("shard %s owns %v, want 2 partitions", sh.ID, sh.Partitions)
		}
		for _, p := range sh.Partitions {
			seen[p]++
		}
	}
	if len(seen) != 8 {
		t.Errorf("assignment covers %d partitions, want 8", len(seen))
	}

	svc.Start()
	waitFor(t, 30*time.Second, "all alarms verified", func() bool {
		return svc.Records() >= len(stream)
	})
	svc.Stop()

	if got := svc.Records(); got != len(stream) {
		t.Fatalf("records = %d, want exactly %d", got, len(stream))
	}
	vs := svc.Verified()
	if len(vs) != len(stream) || uniqueIDs(vs) != len(stream) {
		t.Fatalf("verified %d (%d unique), want %d unique — exactly-once violated",
			len(vs), uniqueIDs(vs), len(stream))
	}
	if h.Len() != len(stream) {
		t.Fatalf("history holds %d alarms, want %d", h.Len(), len(stream))
	}
	// Graceful stop committed everything that was processed.
	committed, err := svc.Committed()
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, off := range committed {
		sum += off
	}
	if sum != int64(len(stream)) {
		t.Fatalf("committed %d records, want %d", sum, len(stream))
	}
	st := svc.Stats()
	if st.PerSec <= 0 || st.Times.ML <= 0 || st.Batches == 0 {
		t.Errorf("stats not populated: %+v", st)
	}
	for _, sh := range st.Shards {
		if sh.Err != nil {
			t.Errorf("shard %s error: %v", sh.ID, sh.Err)
		}
	}
}

func TestGracefulStopResumesExactlyOnce(t *testing.T) {
	v, stream := testSetup(t)
	b := loadedBroker(t, stream, 4)
	defer b.Close()

	cfg := testConfig(2)
	cfg.Consumer.MaxPerBatch = 128
	svc1, err := New(b, "alarms", "g", v, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc1.Start()
	waitFor(t, 30*time.Second, "partial progress", func() bool {
		return svc1.Records() >= 500
	})
	svc1.Close() // graceful drain: in-flight batches persist and commit
	n1 := svc1.Records()
	if n1 >= len(stream) {
		t.Skip("first service drained everything before stop; nothing to resume")
	}

	svc2, err := New(b, "alarms", "g", v, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	svc2.Start()
	waitFor(t, 30*time.Second, "remaining alarms", func() bool {
		return n1+svc2.Records() >= len(stream)
	})
	svc2.Stop()

	if total := n1 + svc2.Records(); total != len(stream) {
		t.Fatalf("restart processed %d in total, want exactly %d", total, len(stream))
	}
	all := append(svc1.Verified(), svc2.Verified()...)
	if uniqueIDs(all) != len(stream) {
		t.Fatalf("coverage %d unique of %d — records lost or duplicated across restart",
			uniqueIDs(all), len(stream))
	}
}

func TestRebalanceUnderConcurrentJoinLeave(t *testing.T) {
	v, stream := testSetup(t)
	b := loadedBroker(t, stream, 8)
	defer b.Close()
	topic, err := b.Topic("alarms")
	if err != nil {
		t.Fatal(err)
	}

	cfg := testConfig(2)
	cfg.Consumer.MaxPerBatch = 64 // many small batches so the churn lands mid-stream
	svc, err := New(b, "alarms", "g", v, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	svc.Start()

	waitFor(t, 30*time.Second, "initial progress", func() bool {
		return svc.Records() >= 300
	})
	// An external member joins the group (stealing partitions without
	// ever polling them) and leaves again — two rebalances the shards
	// must survive without losing records.
	ext, err := broker.NewConsumer(b, "g", topic, "external")
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	ext.Close()

	// At-least-once across rebalances: every alarm is eventually
	// verified; duplicates are permitted only around the rebalance.
	waitFor(t, 30*time.Second, "full coverage after rebalance", func() bool {
		return uniqueIDs(svc.Verified()) >= len(stream)
	})
	// All partitions end fully committed once processing settles.
	waitFor(t, 30*time.Second, "commits to converge", func() bool {
		committed, err := svc.Committed()
		if err != nil {
			return false
		}
		var sum int64
		for _, off := range committed {
			sum += off
		}
		return sum == int64(len(stream))
	})
	svc.Stop()

	st := svc.Stats()
	var rebalances int64
	for _, sh := range st.Shards {
		rebalances += sh.Rebalances
		if sh.Err != nil {
			t.Errorf("shard %s error: %v", sh.ID, sh.Err)
		}
	}
	if rebalances == 0 {
		t.Error("no shard refreshed its assignment despite membership churn")
	}
	if got := uniqueIDs(svc.Verified()); got != len(stream) {
		t.Fatalf("coverage %d unique of %d", got, len(stream))
	}
	if svc.Records() < len(stream) {
		t.Fatalf("records %d < %d", svc.Records(), len(stream))
	}
}

func TestBackpressureBoundsInFlightBatches(t *testing.T) {
	v, stream := testSetup(t)
	stream = stream[:2000]
	b := loadedBroker(t, stream, 4)
	defer b.Close()
	h, err := core.NewHistory(docstore.NewDB())
	if err != nil {
		t.Fatal(err)
	}
	// A slow persist stage: without bounded queues intake would race
	// ahead and buffer the whole topic in memory.
	h.SetSimulatedRTT(500 * time.Microsecond)

	cfg := testConfig(1)
	cfg.PipelineDepth = 1
	cfg.Consumer.MaxPerBatch = 64
	svc, err := New(b, "alarms", "g", v, h, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	svc.Start()
	waitFor(t, 60*time.Second, "all alarms verified", func() bool {
		return svc.Records() >= len(stream)
	})
	svc.Stop()

	// In flight = decoded but not yet persisted: at most one batch in
	// each stage goroutine plus the two depth-1 queues.
	const maxInFlight = 2*1 + 3
	for _, sh := range svc.Stats().Shards {
		if sh.InFlightPeak > maxInFlight {
			t.Errorf("shard %s in-flight peak %d exceeds bound %d — backpressure broken",
				sh.ID, sh.InFlightPeak, maxInFlight)
		}
		if sh.InFlightPeak == 0 {
			t.Errorf("shard %s never had a batch in flight", sh.ID)
		}
	}
	if svc.Records() != len(stream) {
		t.Fatalf("records = %d, want %d", svc.Records(), len(stream))
	}
}

// The sharded service over a write-behind, partitioned history: the
// persist stages' RecordBatch calls only enqueue, the flusher
// coalesces batches from all shards into few store round-trips, and
// nothing is lost — every alarm is durable in the store by the time
// the service has drained.
func TestShardedServiceWriteBehindHistory(t *testing.T) {
	v, stream := testSetup(t)
	b := loadedBroker(t, stream, 8)
	defer b.Close()
	h, err := core.NewHistory(docstore.NewDBWithPartitions(4))
	if err != nil {
		t.Fatal(err)
	}
	h.SetSimulatedRTT(200 * time.Microsecond)
	h.EnableWriteBehind(4096)
	defer h.Close()

	svc, err := New(b, "alarms", "g-wb", v, h, testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	svc.Start()
	waitFor(t, 30*time.Second, "all alarms verified", func() bool {
		return svc.Records() >= len(stream)
	})
	svc.Stop()
	if err := svc.Err(); err != nil {
		t.Fatal(err)
	}
	if got := svc.Records(); got != len(stream) {
		t.Fatalf("records = %d, want %d", got, len(stream))
	}
	// Len flushes the write-behind queue before counting.
	if h.Len() != len(stream) {
		t.Fatalf("history holds %d alarms, want %d", h.Len(), len(stream))
	}
	batches := svc.Stats().Batches
	if flushes := h.WriteBehindFlushes(); flushes == 0 || int(flushes) > batches {
		t.Errorf("%d flushes for %d batches — write-behind not coalescing", flushes, batches)
	}
}
