package serve

import (
	"testing"
	"time"

	"alarmverify/internal/broker"
	"alarmverify/internal/core"
	"alarmverify/internal/docstore"
)

// committedSum totals the committed offsets across partitions.
func committedSum(t testing.TB, svc *Service) int64 {
	t.Helper()
	committed, err := svc.Committed()
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, off := range committed {
		sum += off
	}
	return sum
}

// TestCoalescedCommitsExactlyOnce is the sharded-service acceptance
// test with commit coalescing on: batching many micro-batch commits
// into one interval commit must not change what the per-batch path
// guarantees — every alarm verified exactly once, every offset durable
// after a graceful stop (the shutdown flush).
func TestCoalescedCommitsExactlyOnce(t *testing.T) {
	v, stream := testSetup(t)
	b := loadedBroker(t, stream, 8)
	defer b.Close()
	h, err := core.NewHistory(docstore.NewDB())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(4)
	cfg.Consumer.MaxPerBatch = 64 // many batches per commit interval
	cfg.CommitInterval = 20 * time.Millisecond
	svc, err := New(b, "alarms", "coal", v, h, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	svc.Start()
	waitFor(t, 30*time.Second, "all alarms verified", func() bool {
		return svc.Records() >= len(stream)
	})
	svc.Stop()
	if err := svc.Err(); err != nil {
		t.Fatal(err)
	}

	vs := svc.Verified()
	if len(vs) != len(stream) || uniqueIDs(vs) != len(stream) {
		t.Fatalf("verified %d (%d unique), want %d unique — exactly-once violated under coalescing",
			len(vs), uniqueIDs(vs), len(stream))
	}
	if sum := committedSum(t, svc); sum != int64(len(stream)) {
		t.Fatalf("committed %d records, want %d: shutdown must flush the pending commit", sum, len(stream))
	}
}

// TestCoalescedCommitShedDrainsBacklog re-runs the load-shedding
// scenario with coalescing on: shed batches' offsets must reach the
// pending set and the final flush, so the backlog still fully drains.
func TestCoalescedCommitShedDrainsBacklog(t *testing.T) {
	v, stream := testSetup(t)
	total := 4000
	if len(stream) < total {
		total = len(stream)
	}
	b := liveBroker(t, stream[:total], 4)
	defer b.Close()
	h, err := core.NewHistory(docstore.NewDB())
	if err != nil {
		t.Fatal(err)
	}
	h.SetSimulatedRTT(2 * time.Millisecond)

	cfg := DefaultConfig()
	cfg.Shards = 1
	cfg.ShedQueue = 512
	cfg.CommitInterval = 10 * time.Millisecond
	cfg.Consumer.Workers = 2
	cfg.Consumer.MaxPerBatch = 128
	cfg.Consumer.PollTimeout = 2 * time.Millisecond
	svc, err := New(b, "alarms", "coalshed", v, h, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	svc.Start()
	waitFor(t, 60*time.Second, "backlog drained", func() bool {
		lag, err := svc.Lag()
		return err == nil && lag == 0
	})
	svc.Stop()
	if err := svc.Err(); err != nil {
		t.Fatal(err)
	}

	st := svc.Stats()
	if st.ShedRecords == 0 {
		t.Fatal("nothing shed despite a backlog 8× the bound")
	}
	if got := st.Records + int(st.ShedRecords); got != total {
		t.Fatalf("processed %d + shed %d = %d, want %d", st.Records, st.ShedRecords, got, total)
	}
	if sum := committedSum(t, svc); sum != int64(total) {
		t.Fatalf("committed %d offsets, want %d: shed batches must still commit under coalescing", sum, total)
	}
}

// TestCoalescedCommitSurvivesRebalance: the rebalance barrier forces a
// flush of the pending commit before the assignment refresh, so
// membership churn costs at most redelivery (at-least-once), never
// loss — same contract as per-batch commits, wider window.
func TestCoalescedCommitSurvivesRebalance(t *testing.T) {
	v, stream := testSetup(t)
	b := loadedBroker(t, stream, 8)
	defer b.Close()
	topic, err := b.Topic("alarms")
	if err != nil {
		t.Fatal(err)
	}

	cfg := testConfig(2)
	cfg.Consumer.MaxPerBatch = 64
	cfg.CommitInterval = 15 * time.Millisecond
	svc, err := New(b, "alarms", "coalreb", v, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	svc.Start()

	waitFor(t, 30*time.Second, "initial progress", func() bool {
		return svc.Records() >= 300
	})
	ext, err := broker.NewConsumer(b, "coalreb", topic, "external")
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	ext.Close()

	waitFor(t, 30*time.Second, "full coverage after rebalance", func() bool {
		return uniqueIDs(svc.Verified()) >= len(stream)
	})
	waitFor(t, 30*time.Second, "commits to converge", func() bool {
		committed, err := svc.Committed()
		if err != nil {
			return false
		}
		var sum int64
		for _, off := range committed {
			sum += off
		}
		return sum == int64(len(stream))
	})
	svc.Stop()
	if got := uniqueIDs(svc.Verified()); got != len(stream) {
		t.Fatalf("coverage %d unique of %d", got, len(stream))
	}
}
