package serve

import (
	"testing"
	"time"

	"alarmverify/internal/core"
	"alarmverify/internal/docstore"
)

// TestShardedServiceDurableRestart runs the full verification pipeline
// into a WAL-backed history, shuts everything down, and reopens the
// data directory like a restarted daemon: every alarm the service
// verified must come back from the recovered store — the serve-layer
// statement of ISSUE 7's durability contract, through the same
// write-behind batching alarmd uses in production.
func TestShardedServiceDurableRestart(t *testing.T) {
	v, stream := testSetup(t)
	stream = stream[:2000]
	b := loadedBroker(t, stream, 8)
	defer b.Close()

	dir := t.TempDir()
	db, err := docstore.OpenDB(dir, docstore.DurableOptions{
		Partitions:         4,
		SyncInterval:       time.Millisecond,
		CheckpointInterval: 50 * time.Millisecond, // checkpoints rotate WALs mid-run
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := core.NewHistory(db)
	if err != nil {
		t.Fatal(err)
	}
	h.EnableWriteBehind(4096)

	svc, err := New(b, "alarms", "g-dur", v, h, testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	waitFor(t, 30*time.Second, "all alarms verified", func() bool {
		return svc.Records() >= len(stream)
	})
	svc.Stop()
	if err := svc.Err(); err != nil {
		t.Fatal(err)
	}
	if got := svc.Records(); got != len(stream) {
		t.Fatalf("records = %d, want %d", got, len(stream))
	}
	verified := svc.Verified()
	svc.Close()
	// Daemon shutdown order: drain the history's write-behind queue,
	// then final-sync and close the store.
	h.Close()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": recover the store from disk and rebuild the history
	// over it, as alarmd does when -data-dir points at existing state.
	db2, err := docstore.OpenDB(dir, docstore.DurableOptions{Partitions: 4, SyncInterval: -1, CheckpointInterval: -1})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	h2, err := core.NewHistory(db2)
	if err != nil {
		t.Fatal(err)
	}
	if h2.Len() != len(stream) {
		t.Fatalf("recovered history holds %d alarms, want %d", h2.Len(), len(stream))
	}
	recovered, err := h2.RecentAlarms(0)
	if err != nil {
		t.Fatal(err)
	}
	byID := make(map[int64]bool, len(recovered))
	for _, a := range recovered {
		byID[a.ID] = true
	}
	for _, vr := range verified {
		if !byID[vr.AlarmID] {
			t.Fatalf("verified alarm %d missing after durable restart", vr.AlarmID)
		}
	}
}
