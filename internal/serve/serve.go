// Package serve runs the verification service at scale: N consumer
// shards join one broker consumer group — each owning a slice of the
// topic's partitions, the §5.5.2 "partitions are the parallelism
// knob" lesson — and every shard processes its micro-batches through
// a bounded decode → classify → persist pipeline, so consecutive
// batches overlap instead of running strictly serially as in the
// single-process consumer the paper started from.
//
// Backpressure is structural: the stage queues are bounded by
// Config.PipelineDepth, so when persist (the document-store
// round-trips) lags, intake stops draining the broker instead of
// buffering batches without bound. On top of it sit two overload
// controls: adaptive micro-batching
// (core.ConsumerConfig.AdaptiveBatch) grows the drain bound under
// queue pressure and shrinks it when idle, and bounded-queue load
// shedding (Config.ShedQueue) drops the oldest drained batches —
// counted, offsets still committed — once the backlog passes the
// bound, so end-to-end p99 stays bounded through a flash crowd
// (experiments.Overload quantifies both). Offsets are committed per batch,
// exactly as far as that batch read, only after the batch has fully
// persisted — exactly-once under stable membership, at-least-once
// across rebalances (a fenced commit fails with ErrRebalanceStale and
// the successor resumes from the last durable commit, exactly like
// Kafka's consumer groups).
//
// Rebalances are handled with a pipeline barrier: on a membership
// notification the shard stops draining, floats a flush marker
// through its stages, waits for every in-flight batch to persist and
// commit, then refreshes its assignment and resumes from the
// committed offsets.
//
// Within each shard, the classify stage is the paper's dominant cost
// (Figure 12: ~80 % ML). It runs vectorized: the batch is split into
// ConsumerConfig.ClassifyBatch-sized chunks, each verified through
// the models' batched inference path (ml.BatchClassifier) against
// pooled flat feature matrices, on a dedicated bounded pool of
// ConsumerConfig.ClassifyWorkers — separate from the decode executor
// pool, so classification of batch N overlaps decode of batch N+1
// and persist of batch N−1 even inside a single shard. See
// ARCHITECTURE.md for the stage-level dataflow.
//
// All shards share one *core.Verifier, whose model state lives in an
// immutable snapshot behind an atomic pointer: a background retrain
// (core.Retrainer) hot-swaps the model while the shards keep
// running. The classify stage pins the snapshot once per micro-batch
// (all of a batch's chunks share it), so in-flight batches finish on
// the model they started with, later batches pick up the new one,
// and no batch is ever split across two models — the service needs
// no barrier, drain or lock at swap time.
package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"alarmverify/internal/alarm"
	"alarmverify/internal/broker"
	"alarmverify/internal/core"
)

// Config tunes the sharded service.
type Config struct {
	// Shards is the number of consumer-group members; each owns a
	// partition subset, so throughput scales with min(Shards,
	// Partitions). Default 1.
	Shards int
	// PipelineDepth bounds the per-shard stage queues (batches that
	// may sit between decode and persist). Default 2.
	PipelineDepth int
	// ShedQueue bounds the per-shard backlog (in records) the
	// pipeline accepts before load shedding. The backlog is broker
	// lag plus the records already drained into the shard's bounded
	// stage queues: when a freshly drained batch would push it past
	// the bound, that batch — the oldest queued work — is dropped
	// (skipping classify and persist) and its offsets committed, so
	// the shard catches up to fresher records and end-to-end p99
	// stays bounded through a flash crowd instead of collapsing into
	// seconds of queueing delay. Shed records are counted per shard
	// and in the pipeline metrics. 0 disables shedding (every record
	// is eventually processed).
	ShedQueue int
	// CommitInterval coalesces offset commits: instead of one
	// coordinator round-trip per micro-batch, each shard's persist
	// stage accumulates the max-merged offsets of its persisted (and
	// shed) batches and commits them once per interval — plus at every
	// flush barrier (rebalance), on shutdown, and before halting on a
	// stage error, so the exactly-once contract is unchanged: nothing
	// commits before it persists, and generation fencing still rejects
	// stale commits after a rebalance. Coalescing only widens the
	// at-least-once redelivery window after a crash by at most one
	// interval of already-persisted batches. 0 commits per batch.
	CommitInterval time.Duration
	// MemberPrefix prefixes the shard member ids this service joins the
	// consumer group with ("shard-0" → "<prefix>-shard-0"). Member ids
	// must be unique within a group, so every alarmd process joining the
	// same group over the network must set a distinct prefix (alarmd
	// derives one from hostname+pid); empty keeps the bare ids — fine
	// for the single-process deployment.
	MemberPrefix string
	// Consumer configures each shard's consumer application. A shared
	// Anomaly monitor must be safe for concurrent use; give each shard
	// its own monitor otherwise.
	Consumer core.ConsumerConfig
}

// Cluster is the broker surface the service consumes: a way to join
// the consumer group and to audit the group's committed offsets.
// LocalCluster adapts the in-process broker; netbroker's client
// provides the same surface over TCP, so shards run unmodified in
// separate processes.
type Cluster interface {
	// NewGroupConsumer joins the group with the given member id and
	// returns the consumer plus the topic's partition count.
	NewGroupConsumer(group, id string) (broker.GroupConsumer, int, error)
	// GroupCommitted snapshots the group's committed offsets per
	// partition (the coordinator-side audit view).
	GroupCommitted(group string) (map[int]int64, error)
}

// LocalCluster adapts an in-process broker and topic to the Cluster
// surface.
type LocalCluster struct {
	Broker *broker.Broker
	Topic  string
}

// NewGroupConsumer joins the group on the local broker topic.
func (lc LocalCluster) NewGroupConsumer(group, id string) (broker.GroupConsumer, int, error) {
	t, err := lc.Broker.Topic(lc.Topic)
	if err != nil {
		return nil, 0, err
	}
	c, err := broker.NewConsumer(lc.Broker, group, t, id)
	if err != nil {
		return nil, 0, err
	}
	return c, t.Partitions(), nil
}

// GroupCommitted snapshots the group's committed offsets from the
// local coordinator.
func (lc LocalCluster) GroupCommitted(group string) (map[int]int64, error) {
	return lc.Broker.GroupCommitted(group)
}

// DefaultConfig returns a two-deep pipeline on a single shard with
// the paper's optimized consumer configuration.
func DefaultConfig() Config {
	return Config{
		Shards:        1,
		PipelineDepth: 2,
		Consumer:      core.DefaultConsumerConfig(),
	}
}

// Service is the sharded, pipelined verification service.
type Service struct {
	group   string
	cluster Cluster
	shards  []*shard
	history *core.History

	stop      chan struct{}
	wg        sync.WaitGroup
	startOnce sync.Once
	stopOnce  sync.Once

	mu      sync.Mutex
	started time.Time
	stopped time.Time
}

// New builds a service of cfg.Shards consumer shards joined to one
// consumer group on the in-process broker's topic. Call Start to begin
// processing and Close to release the group membership.
func New(b *broker.Broker, topicName, group string, verifier *core.Verifier,
	history *core.History, cfg Config) (*Service, error) {
	return NewWith(LocalCluster{Broker: b, Topic: topicName}, group, verifier, history, cfg)
}

// NewWith builds the service against any Cluster — the in-process
// broker via LocalCluster, or a remote replicated broker via the
// netbroker client — so the same shard pipeline serves both
// deployments.
func NewWith(cluster Cluster, group string, verifier *core.Verifier,
	history *core.History, cfg Config) (*Service, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.PipelineDepth <= 0 {
		cfg.PipelineDepth = 2
	}
	s := &Service{group: group, cluster: cluster, history: history, stop: make(chan struct{})}
	for i := 0; i < cfg.Shards; i++ {
		id := fmt.Sprintf("shard-%d", i)
		if cfg.MemberPrefix != "" {
			id = cfg.MemberPrefix + "-" + id
		}
		cons, partitions, err := cluster.NewGroupConsumer(group, id)
		if err != nil {
			for _, sh := range s.shards {
				sh.app.Close()
			}
			return nil, fmt.Errorf("serve: shard %d: %w", i, err)
		}
		app := core.NewConsumerAppFor(cons, partitions, verifier, history, cfg.Consumer)
		s.shards = append(s.shards, newShard(id, app, cfg.PipelineDepth, cfg.ShedQueue, cfg.CommitInterval))
	}
	// Joining is sequential, so every shard but the last computed its
	// assignment against a partial membership. Settle the group before
	// processing starts: refresh each shard against the final
	// membership and absorb the join-time rebalance signals.
	for _, sh := range s.shards {
		if err := sh.app.RefreshAssignment(); err != nil {
			for _, sh := range s.shards {
				sh.app.Close()
			}
			return nil, fmt.Errorf("serve: %s: %w", sh.id, err)
		}
		select {
		case <-sh.app.Rebalances():
		default:
		}
	}
	return s, nil
}

// Start launches every shard's pipeline. It returns immediately.
func (s *Service) Start() {
	s.startOnce.Do(func() {
		s.mu.Lock()
		s.started = time.Now()
		s.mu.Unlock()
		for _, sh := range s.shards {
			sh.run(&s.wg, s.stop)
		}
	})
}

// Stop gracefully drains the service: intake halts, in-flight batches
// flow through classify and persist, their offsets are committed, and
// all shard goroutines exit. Safe to call more than once.
func (s *Service) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.wg.Wait()
	s.mu.Lock()
	if s.stopped.IsZero() {
		s.stopped = time.Now()
	}
	s.mu.Unlock()
}

// Close stops the service and leaves the consumer group, releasing
// the shards' partitions to any surviving members.
func (s *Service) Close() {
	s.Stop()
	for _, sh := range s.shards {
		sh.app.Close()
	}
}

// Records returns the total alarms verified across all shards.
func (s *Service) Records() int {
	total := 0
	for _, sh := range s.shards {
		total += sh.app.Records()
	}
	return total
}

// Verified returns every verification produced so far, shard by
// shard (order within a shard follows its batch order).
func (s *Service) Verified() []alarm.Verification {
	var out []alarm.Verification
	for _, sh := range s.shards {
		out = append(out, sh.app.Verified()...)
	}
	return out
}

// TopDevices ranks the k noisiest devices in the shared alarm history
// by stored alarm count, descending — a pushdown group-count
// aggregation computed inside the store partitions (only per-device
// partial counts leave a partition). Returns nil when the service was
// built without a history.
func (s *Service) TopDevices(k int) ([]core.DeviceCount, error) {
	if s.history == nil {
		return nil, nil
	}
	return s.history.TopDevices(k)
}

// Lag sums the records between each shard's position and the high
// watermarks of its partitions.
func (s *Service) Lag() (int64, error) {
	var total int64
	for _, sh := range s.shards {
		lag, err := sh.app.Lag()
		if err != nil {
			return total, err
		}
		total += lag
	}
	return total, nil
}

// Committed returns the consumer group's committed offsets per
// partition, as recorded by the broker coordinator.
func (s *Service) Committed() (map[int]int64, error) {
	return s.cluster.GroupCommitted(s.group)
}

// Err returns the first stage error any shard recorded, or nil. A
// shard that errors halts: it stops draining and commits nothing
// past the failed batch, so the records are redelivered to a
// successor rather than silently skipped.
func (s *Service) Err() error {
	for _, sh := range s.shards {
		if err := sh.err(); err != nil {
			return fmt.Errorf("serve: %s: %w", sh.id, err)
		}
	}
	return nil
}

// ShardStats is one shard's view of the service.
type ShardStats struct {
	ID         string
	Partitions []int
	Batches    int
	Records    int
	Times      core.ComponentTimes
	// InFlightPeak is the most batches ever simultaneously between
	// decode and persist — bounded by the pipeline depth (the
	// backpressure guarantee).
	InFlightPeak int64
	// ShedRecords counts records dropped by bounded-queue load
	// shedding on this shard.
	ShedRecords int64
	// StaleCommits counts batch commits fenced by a rebalance.
	StaleCommits int64
	// Rebalances counts assignment refreshes this shard performed.
	Rebalances int64
	// Err is the first stage error observed (nil when healthy).
	Err error
}

// Stats is an aggregate snapshot of the running (or stopped) service.
type Stats struct {
	Records int
	Batches int
	Elapsed time.Duration
	// PerSec is wall-clock alarms/s between Start and Stop (or now).
	PerSec float64
	// ShedRecords is the total records dropped by load shedding
	// across all shards.
	ShedRecords int64
	Times       core.ComponentTimes
	Shards      []ShardStats
}

// Stats snapshots service-wide and per-shard statistics.
func (s *Service) Stats() Stats {
	var st Stats
	for _, sh := range s.shards {
		times := sh.app.Times()
		shs := ShardStats{
			ID:           sh.id,
			Partitions:   sh.app.Assignment(),
			Batches:      sh.app.Batches(),
			Records:      sh.app.Records(),
			Times:        times,
			InFlightPeak: sh.inflightPeak.Load(),
			ShedRecords:  sh.shedRecords.Load(),
			StaleCommits: sh.staleCommits.Load(),
			Rebalances:   sh.rebalances.Load(),
			Err:          sh.err(),
		}
		st.Records += shs.Records
		st.Batches += shs.Batches
		st.ShedRecords += shs.ShedRecords
		st.Times.Add(times)
		st.Shards = append(st.Shards, shs)
	}
	s.mu.Lock()
	switch {
	case s.started.IsZero():
	case s.stopped.IsZero():
		st.Elapsed = time.Since(s.started)
	default:
		st.Elapsed = s.stopped.Sub(s.started)
	}
	s.mu.Unlock()
	if st.Elapsed > 0 {
		st.PerSec = float64(st.Records) / st.Elapsed.Seconds()
	}
	return st
}

// item is one pipeline element: either a batch or a flush barrier.
type item struct {
	b *core.Batch
	// flush, when non-nil, marks a barrier: persist closes it once
	// every earlier batch has been persisted and committed.
	flush chan struct{}
}

// shard is one consumer-group member running the three-stage
// pipeline. Each stage is a single goroutine, so batches move through
// the shard in FIFO order and commits stay ordered.
type shard struct {
	id    string
	app   *core.ConsumerApp
	depth int
	// shed is the backlog bound (records) beyond which drained
	// batches are dropped; 0 disables shedding.
	shed int
	// commitEvery is the offset-commit coalescing interval; 0 commits
	// per batch (Config.CommitInterval).
	commitEvery time.Duration

	inflight     atomic.Int64
	inflightPeak atomic.Int64
	// inflightRecs counts records currently inside the stage queues
	// and still awaiting service — drained off the broker but not yet
	// persisted. The shed decision adds it to broker lag: positions
	// advance at drain time, so lag alone misses everything queued in
	// the pipeline. Shed batches are excluded: they flow through the
	// stages only to keep commits FIFO, and counting already-dropped
	// records as backlog would keep the bound exceeded for as long as
	// the queues hold them — a shard that drains faster than it
	// persists would then shed everything instead of the excess.
	inflightRecs atomic.Int64
	shedRecords  atomic.Int64
	staleCommits atomic.Int64
	rebalances   atomic.Int64

	// failed latches on the first stage error and halts the shard:
	// intake stops draining and no later batch is committed, so the
	// failed batch's records stay past the durable offsets and a
	// successor redelivers them (at-least-once even under errors).
	// Committing batches drained after a dropped one would silently
	// skip its records, since commits are absolute offsets.
	failed   atomic.Bool
	errMu    sync.Mutex
	firstErr error
}

func newShard(id string, app *core.ConsumerApp, depth, shed int, commitEvery time.Duration) *shard {
	return &shard{id: id, app: app, depth: depth, shed: shed, commitEvery: commitEvery}
}

func (s *shard) err() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.firstErr
}

func (s *shard) recordErr(err error) {
	s.errMu.Lock()
	if s.firstErr == nil {
		s.firstErr = err
	}
	s.errMu.Unlock()
	s.failed.Store(true)
}

func (s *shard) inflightAdd(d int64) {
	n := s.inflight.Add(d)
	for {
		peak := s.inflightPeak.Load()
		if n <= peak || s.inflightPeak.CompareAndSwap(peak, n) {
			return
		}
	}
}

// batchDone retires a batch from the in-flight accounting, whatever
// its fate (persisted, shed, or dropped on error), and recycles its
// scratch: the broker leases over its raw payloads are released and a
// pooled batch returns to the app's pool. The batch must not be
// touched after this call.
func (s *shard) batchDone(b *core.Batch) {
	if !b.Shed {
		s.inflightRecs.Add(-int64(b.Len()))
	}
	s.inflightAdd(-1)
	s.app.ReleaseBatch(b)
}

// run wires the stages together and launches them. The stop channel
// only halts intake; downstream stages exit once their inbound
// channels close, so everything already drained is fully processed
// and committed before run's goroutines finish — the graceful-drain
// guarantee behind Service.Stop.
func (s *shard) run(wg *sync.WaitGroup, stop <-chan struct{}) {
	toClassify := make(chan item, s.depth)
	toPersist := make(chan item, s.depth)
	wg.Add(3)
	go s.intake(wg, stop, toClassify)
	go s.classify(wg, toClassify, toPersist)
	go s.persist(wg, toPersist)
}

// intake drains and decodes micro-batches. The bounded send into the
// classify queue is the backpressure point: when persist lags, the
// send blocks and the broker simply retains the unread records.
func (s *shard) intake(wg *sync.WaitGroup, stop <-chan struct{}, out chan<- item) {
	defer wg.Done()
	defer close(out)
	for {
		select {
		case <-stop:
			return
		default:
		}
		if s.failed.Load() {
			// A stage error halted the shard: stop draining so nothing
			// past the failed batch is ever committed.
			return
		}
		select {
		case <-s.app.Rebalances():
			s.handleRebalance(stop, out)
			continue
		default:
		}
		b := s.app.Drain()
		s.app.Decode(b)
		if b.Len() == 0 {
			// Idle poll (paced by the consumer's PollTimeout): nothing
			// to push downstream. Recycle the pooled scratch (and its
			// leases — the drain may have pulled undecodable records).
			s.app.ReleaseBatch(b)
			continue
		}
		if s.shed > 0 {
			// Bounded-queue load shedding: if this batch would push
			// the backlog — records still in the broker plus records
			// already queued in the pipeline — past the bound, every
			// record in it is older than the queue the shard is
			// willing to serve. Drop it (oldest-first) so processing
			// capacity goes to records that can still meet a latency
			// target. The batch still flows through the pipeline to
			// keep commits FIFO; classify and persist skip it.
			backlog := s.inflightRecs.Load() + int64(b.Len())
			if lag, err := s.app.Lag(); err == nil {
				backlog += lag
			}
			if backlog > int64(s.shed) {
				s.app.MarkShed(b)
				s.shedRecords.Add(int64(b.Len()))
			}
		}
		s.inflightAdd(1)
		if !b.Shed {
			s.inflightRecs.Add(int64(b.Len()))
		}
		out <- item{b: b}
	}
}

// handleRebalance floats a flush barrier through the pipeline, waits
// until every in-flight batch has been committed, then refreshes the
// shard's partition assignment from the committed offsets.
func (s *shard) handleRebalance(stop <-chan struct{}, out chan<- item) {
	s.rebalances.Add(1)
	flush := make(chan struct{})
	out <- item{flush: flush}
	select {
	case <-flush:
	case <-stop:
		// Shutting down: the pipeline still drains fully via channel
		// close, so skipping the refresh is safe.
		return
	}
	if err := s.app.RefreshAssignment(); err != nil {
		s.recordErr(err)
	}
}

// classify runs the ML stage over each batch.
func (s *shard) classify(wg *sync.WaitGroup, in <-chan item, out chan<- item) {
	defer wg.Done()
	defer close(out)
	for it := range in {
		if it.flush == nil && !it.b.Shed {
			if s.failed.Load() {
				s.batchDone(it.b)
				continue // shard halted: drop without committing
			}
			if err := s.app.Classify(it.b); err != nil {
				s.recordErr(err)
				s.batchDone(it.b)
				continue
			}
		}
		out <- it
	}
}

// persist runs the batch component and commits each batch's drained
// offsets once it is durable — per batch by default, coalesced once
// per commitEvery when commit coalescing is on.
func (s *shard) persist(wg *sync.WaitGroup, in <-chan item) {
	defer wg.Done()
	if s.commitEvery > 0 {
		s.persistCoalesced(in)
		return
	}
	for it := range in {
		if it.flush != nil {
			close(it.flush)
			continue
		}
		if s.failed.Load() {
			// A batch ahead of this one was dropped; committing this
			// one would durably skip the dropped records.
			s.batchDone(it.b)
			continue
		}
		if !it.b.Shed {
			if err := s.app.Persist(it.b); err != nil {
				s.recordErr(err)
				s.batchDone(it.b)
				continue
			}
		}
		if err := s.app.CommitBatch(it.b); err != nil {
			if errors.Is(err, broker.ErrRebalanceStale) {
				// Fenced by a membership change: the records were
				// processed but the successor will re-read from the
				// last durable commit (at-least-once across
				// rebalances).
				s.staleCommits.Add(1)
			} else {
				s.recordErr(err)
			}
		}
		s.batchDone(it.b)
	}
}

// persistCoalesced is the commit-coalescing persist stage: every
// persisted (or shed) batch folds its drained offsets into a pending
// max-merge, and one CommitAccumulated round-trip per interval makes
// them durable. Flush barriers, shutdown (channel close), and stage
// errors all force an immediate flush, so the invariants the per-batch
// path provides — a barrier means everything before it is committed;
// graceful stop commits all persisted work; nothing after a failed
// batch ever commits — hold unchanged. Only batches that fully
// persisted before a failure are ever in the pending set, so flushing
// on the error path cannot skip dropped records.
func (s *shard) persistCoalesced(in <-chan item) {
	pending := make(map[int]int64)
	var pendingEnq []time.Time
	dirty := false
	flush := func() {
		if !dirty {
			return
		}
		if err := s.app.CommitAccumulated(pending, pendingEnq); err != nil {
			if errors.Is(err, broker.ErrRebalanceStale) {
				s.staleCommits.Add(1)
			} else {
				s.recordErr(err)
			}
		}
		clear(pending)
		pendingEnq = pendingEnq[:0]
		dirty = false
	}
	ticker := time.NewTicker(s.commitEvery)
	defer ticker.Stop()
	for {
		select {
		case it, ok := <-in:
			if !ok {
				flush()
				return
			}
			if it.flush != nil {
				// Barrier contract: everything ahead of the marker is
				// committed before the barrier lifts.
				flush()
				close(it.flush)
				continue
			}
			if s.failed.Load() {
				s.batchDone(it.b)
				continue
			}
			if !it.b.Shed {
				if err := s.app.Persist(it.b); err != nil {
					s.recordErr(err)
					flush() // earlier batches did persist: commit them
					s.batchDone(it.b)
					continue
				}
			}
			// Accumulate before release: the offsets map is pooled
			// scratch that the next drain will reuse.
			for p, off := range it.b.Offsets {
				if off > pending[p] {
					pending[p] = off
				}
			}
			if !it.b.Shed {
				pendingEnq = append(pendingEnq, it.b.Enqueued...)
			}
			dirty = true
			s.batchDone(it.b)
		case <-ticker.C:
			flush()
		}
	}
}
