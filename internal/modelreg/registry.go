// Package modelreg is the versioned on-disk model registry of the
// live model lifecycle: the paper trains its classifiers "periodically
// offline, for example once per day during idle periods" (§4.1), which
// implies serving instances must be able to pick up newer models than
// the one they booted with. Each saved version is a directory holding
// the serialized classifier (ml.SaveClassifier), the fitted schema
// encoder (SchemaEncoder.Save) and a manifest recording how the model
// was trained and how it scored on its holdout — the provenance an
// operator needs to audit (or roll back) a hot-swap.
//
// Layout under the registry directory:
//
//	<dir>/v0001/manifest.json    training + holdout metadata
//	<dir>/v0001/classifier.json  ml.SaveClassifier envelope
//	<dir>/v0001/encoder.json     fitted SchemaEncoder
//	<dir>/v0002/...
//
// Saves are atomic: a version is staged in a ".tmp-v*" directory and
// renamed into place, so a crash mid-save can never leave a partial
// version that LoadLatest would trust. Stale staging directories left
// by such a crash are removed the next time the registry is opened.
package modelreg

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"time"

	"alarmverify/internal/ml"
)

// ErrNoVersions is returned when the registry holds no saved model.
var ErrNoVersions = errors.New("modelreg: no saved model versions")

// ErrNoSuchVersion is returned when a requested version is absent.
var ErrNoSuchVersion = errors.New("modelreg: no such model version")

// HoldoutMetrics records how a model version scored on the held-out
// alarms it was shadow-evaluated against before being admitted.
type HoldoutMetrics struct {
	Records   int     `json:"records"`
	Accuracy  float64 `json:"accuracy"`
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	F1        float64 `json:"f1"`
}

// Manifest is one saved version's provenance: the algorithm, the
// shape of the train set (including how many operator verdicts were
// folded in), the feature schema the encoder expects, and the holdout
// metrics that justified admitting the version.
type Manifest struct {
	// Version is assigned by Save (monotonically increasing).
	Version int `json:"version"`
	// CreatedAt is stamped by Save (UTC).
	CreatedAt time.Time `json:"createdAt"`
	// Algorithm is the classifier kind ("rf", "svm", "lr", "dnn").
	Algorithm string `json:"algorithm"`
	// TrainRecords counts the rows the model was fitted on.
	TrainRecords int `json:"trainRecords"`
	// FeedbackRecords counts the operator verdicts that overrode the
	// Δt-heuristic labels in the train set.
	FeedbackRecords int `json:"feedbackRecords"`
	// Features is the one-hot design-matrix width.
	Features int `json:"features"`
	// DeltaTMS is the label-heuristic threshold in milliseconds.
	DeltaTMS int64 `json:"deltaTMs"`
	// NumExtras is the number of dataset-specific categorical extras
	// (for Sitasys: sensor type and software version).
	NumExtras int `json:"numExtras"`
	// HasRisk records whether the hybrid a-priori risk factor
	// participates as a feature (the model then needs a risk.Model
	// rebound at load time).
	HasRisk bool `json:"hasRisk"`
	// RiskKind is the risk.Kind the risk feature was computed with.
	RiskKind int `json:"riskKind"`
	// Holdout is how the version scored when it was admitted.
	Holdout HoldoutMetrics `json:"holdout"`
}

// Registry is a directory of saved model versions. All methods are
// safe for concurrent use within one process; concurrent processes
// are serialized only by the atomicity of the final rename.
type Registry struct {
	dir string
	mu  sync.Mutex
}

// versionDir matches a committed version directory name.
var versionDir = regexp.MustCompile(`^v(\d{4,})$`)

// stagingPrefix marks in-flight saves; Open removes leftovers.
const stagingPrefix = ".tmp-v"

// Open creates (or reopens) a registry rooted at dir and removes any
// stale staging directory a crashed save left behind.
func Open(dir string) (*Registry, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("modelreg: open: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("modelreg: open: %w", err)
	}
	for _, e := range entries {
		if len(e.Name()) > len(stagingPrefix) && e.Name()[:len(stagingPrefix)] == stagingPrefix {
			if err := os.RemoveAll(filepath.Join(dir, e.Name())); err != nil {
				return nil, fmt.Errorf("modelreg: open: remove stale staging %s: %w", e.Name(), err)
			}
		}
	}
	return &Registry{dir: dir}, nil
}

// Dir returns the registry's root directory.
func (r *Registry) Dir() string { return r.dir }

// versions lists committed version numbers in ascending order.
func (r *Registry) versions() ([]int, error) {
	entries, err := os.ReadDir(r.dir)
	if err != nil {
		return nil, fmt.Errorf("modelreg: %w", err)
	}
	var out []int
	for _, e := range entries {
		m := versionDir.FindStringSubmatch(e.Name())
		if m == nil || !e.IsDir() {
			continue
		}
		var v int
		fmt.Sscanf(m[1], "%d", &v)
		out = append(out, v)
	}
	sort.Ints(out)
	return out, nil
}

func (r *Registry) versionPath(version int) string {
	return filepath.Join(r.dir, fmt.Sprintf("v%04d", version))
}

// Save commits the fitted classifier and encoder as the next version.
// The manifest's Version and CreatedAt are assigned by Save; all other
// fields are the caller's. The returned manifest carries the assigned
// version.
func (r *Registry) Save(c ml.Classifier, enc *ml.SchemaEncoder, m Manifest) (Manifest, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	vs, err := r.versions()
	if err != nil {
		return Manifest{}, err
	}
	next := 1
	if len(vs) > 0 {
		next = vs[len(vs)-1] + 1
	}
	m.Version = next
	m.CreatedAt = time.Now().UTC()
	m.Algorithm = c.Name()

	staging := filepath.Join(r.dir, fmt.Sprintf("%s%04d", stagingPrefix, next))
	if err := os.RemoveAll(staging); err != nil {
		return Manifest{}, fmt.Errorf("modelreg: save: %w", err)
	}
	if err := os.MkdirAll(staging, 0o755); err != nil {
		return Manifest{}, fmt.Errorf("modelreg: save: %w", err)
	}
	ok := false
	defer func() {
		if !ok {
			os.RemoveAll(staging)
		}
	}()
	if err := writeFileWith(filepath.Join(staging, "classifier.json"), func(w io.Writer) error {
		return ml.SaveClassifier(w, c)
	}); err != nil {
		return Manifest{}, err
	}
	if err := writeFileWith(filepath.Join(staging, "encoder.json"), enc.Save); err != nil {
		return Manifest{}, err
	}
	if err := writeFileWith(filepath.Join(staging, "manifest.json"), func(w io.Writer) error {
		e := json.NewEncoder(w)
		e.SetIndent("", "  ")
		return e.Encode(m)
	}); err != nil {
		return Manifest{}, err
	}
	if err := os.Rename(staging, r.versionPath(next)); err != nil {
		return Manifest{}, fmt.Errorf("modelreg: save: commit v%04d: %w", next, err)
	}
	ok = true
	return m, nil
}

// writeFileWith creates path and streams content through write,
// syncing before close so a committed version is durable.
//
//alarmvet:ignore registration is a cold path; r.mu intentionally serializes version dirs across the fsync
func writeFileWith(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("modelreg: save: %w", err)
	}
	if err := write(f); err != nil {
		_ = f.Close() // the write failure supersedes; the file is abandoned
		return fmt.Errorf("modelreg: save %s: %w", filepath.Base(path), err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close() // the fsync failure supersedes; the file is abandoned
		return fmt.Errorf("modelreg: save %s: %w", filepath.Base(path), err)
	}
	return f.Close()
}

// Load reads one committed version's classifier, encoder and manifest.
func (r *Registry) Load(version int) (ml.Classifier, *ml.SchemaEncoder, Manifest, error) {
	dir := r.versionPath(version)
	m, err := readManifest(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil, Manifest{}, fmt.Errorf("%w: v%04d", ErrNoSuchVersion, version)
		}
		return nil, nil, Manifest{}, err
	}
	cf, err := os.Open(filepath.Join(dir, "classifier.json"))
	if err != nil {
		return nil, nil, Manifest{}, fmt.Errorf("modelreg: load v%04d: %w", version, err)
	}
	defer cf.Close()
	c, err := ml.LoadClassifier(cf)
	if err != nil {
		return nil, nil, Manifest{}, fmt.Errorf("modelreg: load v%04d: %w", version, err)
	}
	ef, err := os.Open(filepath.Join(dir, "encoder.json"))
	if err != nil {
		return nil, nil, Manifest{}, fmt.Errorf("modelreg: load v%04d: %w", version, err)
	}
	defer ef.Close()
	enc, err := ml.LoadEncoder(ef)
	if err != nil {
		return nil, nil, Manifest{}, fmt.Errorf("modelreg: load v%04d: %w", version, err)
	}
	return c, enc, m, nil
}

// LoadLatest loads the highest committed version. It returns
// ErrNoVersions when the registry is empty.
func (r *Registry) LoadLatest() (ml.Classifier, *ml.SchemaEncoder, Manifest, error) {
	vs, err := r.versions()
	if err != nil {
		return nil, nil, Manifest{}, err
	}
	if len(vs) == 0 {
		return nil, nil, Manifest{}, ErrNoVersions
	}
	return r.Load(vs[len(vs)-1])
}

// Latest returns the manifest of the highest committed version, with
// ok=false when the registry is empty.
func (r *Registry) Latest() (Manifest, bool, error) {
	vs, err := r.versions()
	if err != nil || len(vs) == 0 {
		return Manifest{}, false, err
	}
	m, err := readManifest(r.versionPath(vs[len(vs)-1]))
	if err != nil {
		return Manifest{}, false, err
	}
	return m, true, nil
}

// List returns every committed version's manifest, oldest first.
func (r *Registry) List() ([]Manifest, error) {
	vs, err := r.versions()
	if err != nil {
		return nil, err
	}
	out := make([]Manifest, 0, len(vs))
	for _, v := range vs {
		m, err := readManifest(r.versionPath(v))
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

func readManifest(dir string) (Manifest, error) {
	raw, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return Manifest{}, err
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return Manifest{}, fmt.Errorf("modelreg: %s: %w", dir, err)
	}
	return m, nil
}
