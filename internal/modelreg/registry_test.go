package modelreg

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"alarmverify/internal/ml"
)

// fitSmall fits a tiny RF + encoder on a synthetic two-feature
// problem and returns them with a few probe rows.
func fitSmall(t *testing.T, seed int) (ml.Classifier, *ml.SchemaEncoder, [][]float64) {
	t.Helper()
	cols := []ml.ColumnSpec{{Name: "cat"}, {Name: "x", Numeric: true}}
	enc := ml.NewSchemaEncoder(cols)
	var rows []ml.Row
	var labels []int
	cats := []string{"a", "b", "c"}
	for i := 0; i < 240; i++ {
		c := cats[(i+seed)%len(cats)]
		x := float64((i*7+seed*13)%100) / 100
		label := 0
		if c == "a" || x > 0.6 {
			label = 1
		}
		rows = append(rows, ml.Row{Cats: []string{c}, Nums: []float64{x}})
		labels = append(labels, label)
	}
	if err := enc.Fit(rows); err != nil {
		t.Fatal(err)
	}
	ds, err := enc.TransformAll(rows, labels)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ml.DefaultRandomForestConfig()
	cfg.NumTrees = 8
	cfg.MaxDepth = 6
	rf := ml.NewRandomForest(cfg)
	if err := rf.Fit(ds); err != nil {
		t.Fatal(err)
	}
	return rf, enc, ds.X[:16]
}

func TestRegistrySaveLoadRoundTrip(t *testing.T) {
	reg, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := reg.LoadLatest(); err != ErrNoVersions {
		t.Fatalf("empty registry LoadLatest err = %v, want ErrNoVersions", err)
	}
	if _, ok, err := reg.Latest(); ok || err != nil {
		t.Fatalf("empty registry Latest = ok=%v err=%v", ok, err)
	}

	model, enc, probes := fitSmall(t, 1)
	m, err := reg.Save(model, enc, Manifest{
		TrainRecords: 240, Features: 5, DeltaTMS: 60_000, NumExtras: 0,
		Holdout: HoldoutMetrics{Records: 50, Accuracy: 0.9},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Version != 1 || m.Algorithm != "rf" || m.CreatedAt.IsZero() {
		t.Fatalf("manifest = %+v", m)
	}

	loaded, loadedEnc, lm, err := reg.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	if lm.Version != 1 || lm.TrainRecords != 240 || lm.Holdout.Accuracy != 0.9 {
		t.Fatalf("loaded manifest = %+v", lm)
	}
	if loadedEnc.Width() != enc.Width() {
		t.Fatalf("encoder width %d, want %d", loadedEnc.Width(), enc.Width())
	}
	for _, x := range probes {
		a, b := model.Proba(x), loaded.Proba(x)
		if math.Float64bits(a[1]) != math.Float64bits(b[1]) {
			t.Fatalf("loaded model diverges: %v vs %v", a, b)
		}
	}
}

func TestRegistryVersionsAccumulate(t *testing.T) {
	reg, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		model, enc, _ := fitSmall(t, i)
		m, err := reg.Save(model, enc, Manifest{TrainRecords: 100 * i})
		if err != nil {
			t.Fatal(err)
		}
		if m.Version != i {
			t.Fatalf("save %d assigned version %d", i, m.Version)
		}
	}
	list, err := reg.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 3 {
		t.Fatalf("List returned %d manifests", len(list))
	}
	for i, m := range list {
		if m.Version != i+1 || m.TrainRecords != 100*(i+1) {
			t.Fatalf("List[%d] = %+v", i, m)
		}
	}
	if _, _, m, err := reg.Load(2); err != nil || m.TrainRecords != 200 {
		t.Fatalf("Load(2) = %+v, %v", m, err)
	}
	if _, _, _, err := reg.Load(9); err == nil {
		t.Fatal("Load of missing version succeeded")
	}
}

// TestRegistryCleansStaleStaging simulates a crash between staging
// and commit: a leftover .tmp-v directory must be removed on Open and
// never surface as a version.
func TestRegistryCleansStaleStaging(t *testing.T) {
	dir := t.TempDir()
	reg, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	model, enc, _ := fitSmall(t, 2)
	if _, err := reg.Save(model, enc, Manifest{}); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(dir, stagingPrefix+"0002")
	if err := os.MkdirAll(stale, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(stale, "classifier.json"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	reg2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale staging dir survived reopen: %v", err)
	}
	list, err := reg2.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].Version != 1 {
		t.Fatalf("registry after cleanup lists %+v", list)
	}
	// The next save must still get version 2.
	if m, err := reg2.Save(model, enc, Manifest{}); err != nil || m.Version != 2 {
		t.Fatalf("post-cleanup save = %+v, %v", m, err)
	}
}
