// Package lockscope proves the repository's lock-scope invariants: a
// partition/collection/consumer mutex must never be held across a
// blocking operation (simulated-RTT sleeps, fsync, network/stream
// I/O, channel sends, selects), and every Lock/RLock must be paired
// with its unlock on every return path. These are the rules the docstore and broker
// hot paths rely on for tail latency: one shard sleeping under a
// partition lock stalls every reader of that partition.
//
// The checker simulates each function body with a branch-aware
// abstract interpreter over the held-lock set. Package-local lock
// wrappers (docstore's writeLock/writeUnlock seqlock pair) are
// classified by their bodies and treated as acquire/release at call
// sites; package-local functions whose bodies (transitively) sleep,
// fsync or send are classified as blocking. A function annotated
// //alarmvet:ignore <reason> is exempted from the blocking set — the
// audited escape hatch for docstore's simulateRTT, whose sleep-under-
// lock IS the modeled remote round-trip.
package lockscope

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"alarmverify/internal/analysis"
)

// Analyzer is the lockscope checker.
var Analyzer = &analysis.Analyzer{
	Name: "lockscope",
	Doc: "report mutexes held across blocking operations and " +
		"lock/unlock pairs broken on a return path",
	Run: run,
}

// lock modes.
const (
	modeW = 'w'
	modeR = 'r'
)

// held records one acquired lock: its mode, whether a deferred unlock
// covers it, and where it was acquired.
type held struct {
	render   string
	mode     byte
	deferred bool
	pos      token.Pos
}

// state is the held-lock set, keyed by rendered lock expression plus
// mode ("p.mu:w").
type state map[string]*held

func (s state) clone() state {
	out := make(state, len(s))
	for k, v := range s {
		c := *v
		out[k] = &c
	}
	return out
}

func (s state) merge(o state) {
	for k, v := range o {
		if _, ok := s[k]; !ok {
			c := *v
			s[k] = &c
		}
	}
}

// wrapper describes a package-local lock or unlock wrapper method:
// the receiver-relative field suffix it locks ("mu") and the mode.
type wrapper struct {
	suffix string
	mode   byte
}

// pkgIndex is the package-level classification shared by all bodies.
type pkgIndex struct {
	pass *analysis.Pass
	// lockWrappers / unlockWrappers map the method object to what it
	// acquires or releases.
	lockWrappers   map[*types.Func][]wrapper
	unlockWrappers map[*types.Func][]wrapper
	// blocking holds package functions that (transitively) block,
	// mapped to a human-readable cause.
	blocking map[*types.Func]string
}

func run(pass *analysis.Pass) error {
	idx := buildIndex(pass)
	analysis.FuncBodies(pass.Files, func(decl *ast.FuncDecl, lit *ast.FuncLit) {
		obj, _ := pass.TypesInfo.Defs[decl.Name].(*types.Func)
		if obj != nil {
			if _, ok := idx.lockWrappers[obj]; ok {
				return // a wrapper's job is to return holding the lock
			}
			if _, ok := idx.unlockWrappers[obj]; ok {
				return
			}
		}
		if _, ok := analysis.FuncIgnoreReason(decl); ok {
			return
		}
		body := decl.Body
		if lit != nil {
			body = lit.Body
		}
		w := &walker{idx: idx, pass: pass}
		st := make(state)
		if !w.stmts(body.List, st) {
			w.checkReturn(st, body.Rbrace)
		}
	})
	return nil
}

// buildIndex classifies the package's wrappers and blocking functions.
func buildIndex(pass *analysis.Pass) *pkgIndex {
	idx := &pkgIndex{
		pass:           pass,
		lockWrappers:   make(map[*types.Func][]wrapper),
		unlockWrappers: make(map[*types.Func][]wrapper),
		blocking:       make(map[*types.Func]string),
	}
	type declInfo struct {
		decl *ast.FuncDecl
		obj  *types.Func
	}
	var decls []declInfo
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[decl.Name].(*types.Func)
			if obj == nil {
				continue
			}
			decls = append(decls, declInfo{decl, obj})
		}
	}

	// Wrapper classification: direct lock ops on a receiver field,
	// with no release (lock wrapper) or no acquire (unlock wrapper).
	for _, di := range decls {
		recvName := receiverName(di.decl)
		if recvName == "" {
			continue
		}
		var acquires, releases []wrapper
		inspectSkippingFuncLits(di.decl.Body, func(n ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			op := lockOp(pass.TypesInfo, call)
			if op == nil {
				return
			}
			r := analysis.Render(op.recv)
			if r != recvName && !strings.HasPrefix(r, recvName+".") {
				return
			}
			w := wrapper{suffix: strings.TrimPrefix(r, recvName), mode: op.mode}
			if op.acquire {
				acquires = append(acquires, w)
			} else {
				releases = append(releases, w)
			}
		})
		switch {
		case len(acquires) > 0 && len(releases) == 0:
			idx.lockWrappers[di.obj] = acquires
		case len(releases) > 0 && len(acquires) == 0:
			idx.unlockWrappers[di.obj] = releases
		}
	}

	// Blocking classification, to a package-local fixpoint. Functions
	// with an //alarmvet:ignore reason are exempt (audited: e.g. the
	// simulated-RTT sleep that models the remote store).
	direct := func(di declInfo) string {
		if _, ok := analysis.FuncIgnoreReason(di.decl); ok {
			return ""
		}
		return directBlockingCause(pass.TypesInfo, di.decl.Body)
	}
	for _, di := range decls {
		if cause := direct(di); cause != "" {
			idx.blocking[di.obj] = cause
		}
	}
	for changed := true; changed; {
		changed = false
		for _, di := range decls {
			if _, done := idx.blocking[di.obj]; done {
				continue
			}
			if _, ok := analysis.FuncIgnoreReason(di.decl); ok {
				continue
			}
			var cause string
			inspectSkippingFuncLits(di.decl.Body, func(n ast.Node) {
				if cause != "" {
					return
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return
				}
				if callee := calleeFunc(pass.TypesInfo, call); callee != nil {
					if c, ok := idx.blocking[callee]; ok {
						cause = "calls " + callee.Name() + ", which " + c
					}
				}
			})
			if cause != "" {
				idx.blocking[di.obj] = cause
				changed = true
			}
		}
	}
	return idx
}

// netBlockingCause classifies direct network/stream I/O — the wire
// analogue of fsync: a conn write or read under a mutex stalls every
// owner of that lock for a peer's round-trip (or forever, against a
// stalled peer). Interface-typed stream I/O (io.Reader/io.Writer)
// counts too: the broker's frame codec reads and writes TCP conns
// through exactly those types.
func netBlockingCause(info *types.Info, call *ast.CallExpr) string {
	switch {
	case analysis.IsPkgFunc(info, call, "net", "Dial"),
		analysis.IsPkgFunc(info, call, "net", "DialTimeout"):
		return "dials the network (net.Dial)"
	case analysis.IsPkgFunc(info, call, "io", "ReadFull"):
		return "reads from a stream (io.ReadFull)"
	case analysis.IsMethodOn(info, call, "net", "Conn", "Read"),
		analysis.IsMethodOn(info, call, "net", "Conn", "Write"):
		return "performs conn I/O (net.Conn)"
	case analysis.IsMethodOn(info, call, "io", "Reader", "Read"):
		return "reads from a stream (io.Reader.Read)"
	case analysis.IsMethodOn(info, call, "io", "Writer", "Write"):
		return "writes to a stream (io.Writer.Write)"
	}
	return ""
}

// directBlockingCause reports why a body blocks directly, or "".
func directBlockingCause(info *types.Info, body *ast.BlockStmt) string {
	var cause string
	var visit func(n ast.Node, nonBlockingSelect bool)
	visit = func(n ast.Node, nonBlockingSelect bool) {
		if cause != "" || n == nil {
			return
		}
		switch t := n.(type) {
		case *ast.FuncLit:
			return // opaque: a callback's sleep is charged to its caller
		case *ast.CallExpr:
			if analysis.IsPkgFunc(info, t, "time", "Sleep") {
				cause = "sleeps (time.Sleep)"
				return
			}
			if analysis.IsMethodOn(info, t, "os", "File", "Sync") {
				cause = "fsyncs (os.File.Sync)"
				return
			}
			if c := netBlockingCause(info, t); c != "" {
				cause = c
				return
			}
		case *ast.SendStmt:
			if !nonBlockingSelect {
				cause = "performs a channel send"
				return
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range t.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				cause = "blocks in a select"
				return
			}
			// Sends used as the select's comm ops are non-blocking
			// when a default exists; bodies are ordinary code.
			for _, c := range t.Body.List {
				cc := c.(*ast.CommClause)
				if cc.Comm != nil {
					visitChildren(cc.Comm, func(n ast.Node) { visit(n, true) })
				}
				for _, s := range cc.Body {
					visit(s, false)
				}
			}
			return
		}
		visitChildren(n, func(n ast.Node) { visit(n, nonBlockingSelect) })
	}
	visit(body, false)
	return cause
}

// visitChildren invokes fn on each direct child node.
func visitChildren(n ast.Node, fn func(ast.Node)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			fn(c)
		}
		return false
	})
}

// inspectSkippingFuncLits walks n without descending into function
// literals.
func inspectSkippingFuncLits(n ast.Node, fn func(ast.Node)) {
	ast.Inspect(n, func(c ast.Node) bool {
		if _, ok := c.(*ast.FuncLit); ok {
			return false
		}
		if c != nil {
			fn(c)
		}
		return true
	})
}

// lockOpInfo describes one direct mutex operation.
type lockOpInfo struct {
	recv    ast.Expr
	mode    byte
	acquire bool
}

// lockOp recognizes sync.Mutex/sync.RWMutex Lock/RLock/Unlock/RUnlock
// calls (including through embedding).
func lockOp(info *types.Info, call *ast.CallExpr) *lockOpInfo {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	recv := sig.Recv()
	switch analysis.TypeName(recv.Type()) {
	case "Mutex", "RWMutex":
	default:
		return nil
	}
	op := &lockOpInfo{recv: sel.X}
	switch fn.Name() {
	case "Lock":
		op.mode, op.acquire = modeW, true
	case "RLock":
		op.mode, op.acquire = modeR, true
	case "Unlock":
		op.mode, op.acquire = modeW, false
	case "RUnlock":
		op.mode, op.acquire = modeR, false
	default:
		return nil
	}
	return op
}

// calleeFunc resolves a call to its package-local function object.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fn].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fn.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// receiverName returns the receiver identifier of a method decl.
func receiverName(decl *ast.FuncDecl) string {
	if decl.Recv == nil || len(decl.Recv.List) == 0 || len(decl.Recv.List[0].Names) == 0 {
		return ""
	}
	return decl.Recv.List[0].Names[0].Name
}

// walker simulates one function body.
type walker struct {
	idx  *pkgIndex
	pass *analysis.Pass
}

// stmts walks a statement sequence, returning true when every path
// through it terminates (return/branch/panic-free fallthrough ends).
func (w *walker) stmts(list []ast.Stmt, st state) bool {
	for _, s := range list {
		if w.stmt(s, st) {
			return true
		}
	}
	return false
}

func (w *walker) stmt(s ast.Stmt, st state) bool {
	switch t := s.(type) {
	case *ast.ExprStmt:
		w.exprs(t.X, st)
	case *ast.AssignStmt:
		for _, e := range t.Rhs {
			w.exprs(e, st)
		}
		for _, e := range t.Lhs {
			w.exprs(e, st)
		}
	case *ast.DeclStmt:
		w.exprs(t, st)
	case *ast.IncDecStmt:
		w.exprs(t.X, st)
	case *ast.SendStmt:
		w.exprs(t.Chan, st)
		w.exprs(t.Value, st)
		if h := anyHeld(st); h != nil {
			w.pass.Reportf(t.Arrow, "%s held across channel send (lock acquired at %s)",
				h.render, w.pass.Fset.Position(h.pos))
		}
	case *ast.DeferStmt:
		w.deferCall(t.Call, st)
	case *ast.GoStmt:
		for _, a := range t.Call.Args {
			w.exprs(a, st)
		}
	case *ast.ReturnStmt:
		for _, e := range t.Results {
			w.exprs(e, st)
		}
		w.checkReturn(st, t.Return)
		return true
	case *ast.BranchStmt:
		return true // break/continue/goto leave this sequence
	case *ast.BlockStmt:
		return w.stmts(t.List, st)
	case *ast.LabeledStmt:
		return w.stmt(t.Stmt, st)
	case *ast.IfStmt:
		if t.Init != nil {
			w.stmt(t.Init, st)
		}
		w.exprs(t.Cond, st)
		thenSt := st.clone()
		thenTerm := w.stmts(t.Body.List, thenSt)
		elseSt := st.clone()
		elseTerm := false
		if t.Else != nil {
			elseTerm = w.stmt(t.Else, elseSt)
		}
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			replace(st, elseSt)
		case elseTerm:
			replace(st, thenSt)
		default:
			replace(st, thenSt)
			st.merge(elseSt)
		}
	case *ast.ForStmt:
		if t.Init != nil {
			w.stmt(t.Init, st)
		}
		if t.Cond != nil {
			w.exprs(t.Cond, st)
		}
		bodySt := st.clone()
		w.stmts(t.Body.List, bodySt)
		if t.Post != nil {
			w.stmt(t.Post, bodySt)
		}
		if t.Cond == nil && !hasBreak(t.Body) {
			return true // for{}: only leaves via return inside the body
		}
		st.merge(bodySt)
	case *ast.RangeStmt:
		w.exprs(t.X, st)
		bodySt := st.clone()
		w.stmts(t.Body.List, bodySt)
		st.merge(bodySt)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var init ast.Stmt
		var body *ast.BlockStmt
		if sw, ok := t.(*ast.SwitchStmt); ok {
			init, body = sw.Init, sw.Body
			if sw.Tag != nil {
				w.exprs(sw.Tag, st)
			}
		} else {
			ts := t.(*ast.TypeSwitchStmt)
			init, body = ts.Init, ts.Body
			w.stmt(ts.Assign, st)
		}
		if init != nil {
			w.stmt(init, st)
		}
		w.caseClauses(body, st)
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range t.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			if h := anyHeld(st); h != nil {
				w.pass.Reportf(t.Select, "%s held across blocking select (lock acquired at %s)",
					h.render, w.pass.Fset.Position(h.pos))
			}
		}
		allTerm := true
		merged := make(state)
		for _, c := range t.Body.List {
			cc := c.(*ast.CommClause)
			ccSt := st.clone()
			if cc.Comm != nil {
				// The comm op itself is the select's business; walk it
				// only for lock ops in nested expressions.
				if es, ok := cc.Comm.(*ast.ExprStmt); ok {
					w.exprs(es.X, ccSt)
				}
			}
			if !w.stmts(cc.Body, ccSt) {
				allTerm = false
				merged.merge(ccSt)
			}
		}
		if allTerm && len(t.Body.List) > 0 {
			return true
		}
		replace(st, merged)
	}
	return false
}

// caseClauses walks a switch body: each clause sees the entry state;
// the exit state is the union of non-terminating clauses. The switch
// terminates only when it has a default and every clause terminates.
func (w *walker) caseClauses(body *ast.BlockStmt, st state) {
	entry := st.clone()
	merged := make(state)
	merged.merge(entry) // no default → the fall-through path
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		ccSt := entry.clone()
		for _, e := range cc.List {
			w.exprs(e, ccSt)
		}
		if !w.stmts(cc.Body, ccSt) {
			merged.merge(ccSt)
		}
	}
	replace(st, merged)
}

// deferCall handles `defer x.Unlock()` and unlock-wrapper defers by
// marking the corresponding held entries as covered on every path.
func (w *walker) deferCall(call *ast.CallExpr, st state) {
	if op := lockOp(w.pass.TypesInfo, call); op != nil && !op.acquire {
		key := analysis.Render(op.recv) + ":" + string(op.mode)
		if h, ok := st[key]; ok {
			h.deferred = true
		}
		return
	}
	if callee := calleeFunc(w.pass.TypesInfo, call); callee != nil {
		if ws, ok := w.idx.unlockWrappers[callee]; ok {
			if recv, _ := analysis.CallName(call); recv != nil {
				for _, wr := range ws {
					key := analysis.Render(recv) + wr.suffix + ":" + string(wr.mode)
					if h, ok := st[key]; ok {
						h.deferred = true
					}
				}
			}
			return
		}
	}
	for _, a := range call.Args {
		w.exprs(a, st)
	}
}

// exprs scans an expression tree (skipping function literals) for
// lock operations, wrapper calls, and blocking calls, in that order
// of precedence per call.
func (w *walker) exprs(n ast.Node, st state) {
	ast.Inspect(n, func(c ast.Node) bool {
		if _, ok := c.(*ast.FuncLit); ok {
			return false
		}
		call, ok := c.(*ast.CallExpr)
		if !ok {
			return true
		}
		if op := lockOp(w.pass.TypesInfo, call); op != nil {
			key := analysis.Render(op.recv) + ":" + string(op.mode)
			if op.acquire {
				st[key] = &held{render: analysis.Render(op.recv), mode: op.mode, pos: call.Pos()}
			} else {
				delete(st, key)
			}
			return true
		}
		callee := calleeFunc(w.pass.TypesInfo, call)
		if callee != nil {
			if ws, ok := w.idx.lockWrappers[callee]; ok {
				if recv, _ := analysis.CallName(call); recv != nil {
					for _, wr := range ws {
						r := analysis.Render(recv) + wr.suffix
						st[r+":"+string(wr.mode)] = &held{render: r, mode: wr.mode, pos: call.Pos()}
					}
				}
				return true
			}
			if ws, ok := w.idx.unlockWrappers[callee]; ok {
				if recv, _ := analysis.CallName(call); recv != nil {
					for _, wr := range ws {
						delete(st, analysis.Render(recv)+wr.suffix+":"+string(wr.mode))
					}
				}
				return true
			}
			if cause, ok := w.idx.blocking[callee]; ok {
				if h := anyHeld(st); h != nil {
					w.pass.Reportf(call.Pos(), "%s held across call to %s, which %s (lock acquired at %s)",
						h.render, callee.Name(), cause, w.pass.Fset.Position(h.pos))
				}
				return true
			}
		}
		if analysis.IsPkgFunc(w.pass.TypesInfo, call, "time", "Sleep") {
			if h := anyHeld(st); h != nil {
				w.pass.Reportf(call.Pos(), "%s held across time.Sleep (lock acquired at %s)",
					h.render, w.pass.Fset.Position(h.pos))
			}
		} else if analysis.IsMethodOn(w.pass.TypesInfo, call, "os", "File", "Sync") {
			if h := anyHeld(st); h != nil {
				w.pass.Reportf(call.Pos(), "%s held across fsync (lock acquired at %s)",
					h.render, w.pass.Fset.Position(h.pos))
			}
		} else if cause := netBlockingCause(w.pass.TypesInfo, call); cause != "" {
			if h := anyHeld(st); h != nil {
				w.pass.Reportf(call.Pos(), "%s held across network/stream I/O: %s (lock acquired at %s)",
					h.render, cause, w.pass.Fset.Position(h.pos))
			}
		}
		return true
	})
}

// checkReturn reports locks still explicitly held (no unlock, no
// deferred unlock) when a path leaves the function.
func (w *walker) checkReturn(st state, at token.Pos) {
	for _, h := range st {
		if h.deferred {
			continue
		}
		unlock := "Unlock"
		if h.mode == modeR {
			unlock = "RUnlock"
		}
		w.pass.Reportf(at, "%s acquired at %s may still be held on this return path (missing %s)",
			h.render, w.pass.Fset.Position(h.pos), unlock)
	}
}

// hasBreak reports whether body contains any break statement (at any
// nesting — an over-approximation that errs toward walking the code
// after the loop).
func hasBreak(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if b, ok := n.(*ast.BranchStmt); ok && b.Tok == token.BREAK {
			found = true
		}
		return !found
	})
	return found
}

// anyHeld returns an arbitrary held lock, preferring write mode.
func anyHeld(st state) *held {
	var r *held
	for _, h := range st {
		if h.mode == modeW {
			return h
		}
		r = h
	}
	return r
}

// replace overwrites dst's contents with src's.
func replace(dst, src state) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}
