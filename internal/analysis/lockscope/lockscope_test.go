package lockscope_test

import (
	"testing"

	"alarmverify/internal/analysis/analysistest"
	"alarmverify/internal/analysis/lockscope"
)

func TestLockscope(t *testing.T) {
	analysistest.Run(t, "testdata", lockscope.Analyzer, "a", "ignored", "good")
}
