// Package ignored exercises both //alarmvet:ignore placements: the
// function-level doc-comment form (exempting the function from the
// blocking classification) and the end-of-line form (suppressing one
// finding). No findings are expected anywhere in this package.
package ignored

import (
	"sync"
	"time"
)

type store struct {
	mu  sync.Mutex
	rtt time.Duration
}

// simulateRTT models the remote document store's round-trip: the
// sleep under the partition lock IS the modeled latency.
//
//alarmvet:ignore the sleep under the lock is the modeled remote round-trip
func (s *store) simulateRTT() {
	time.Sleep(s.rtt)
}

func (s *store) get(k string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.simulateRTT()
	return k
}

func (s *store) warm() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) //alarmvet:ignore startup warm-up runs before any reader exists
	s.mu.Unlock()
}
