// Package a seeds lockscope violations: locks held across blocking
// operations and lock/unlock pairs broken on a return path.
package a

import (
	"os"
	"sync"
	"time"
)

type part struct {
	mu    sync.RWMutex
	f     *os.File
	ch    chan int
	items map[string]int
	seq   int
}

// writeLock and writeUnlock mirror the docstore seqlock wrapper pair;
// lockscope classifies them by body and tracks their call sites.
func (p *part) writeLock() {
	p.mu.Lock()
	p.seq++
}

func (p *part) writeUnlock() {
	p.seq++
	p.mu.Unlock()
}

// flush blocks transitively: fsync behind one call hop.
func (p *part) flush() error {
	return p.f.Sync()
}

func (p *part) sleepUnderLock(d time.Duration) {
	p.mu.Lock()
	time.Sleep(d) // want `p\.mu held across time\.Sleep`
	p.mu.Unlock()
}

func (p *part) sendUnderLock(v int) {
	p.mu.Lock()
	p.ch <- v // want `p\.mu held across channel send`
	p.mu.Unlock()
}

func (p *part) selectUnderLock() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	select { // want `p\.mu held across blocking select`
	case v := <-p.ch:
		return v
	}
}

func (p *part) syncUnderLock() {
	p.mu.Lock()
	defer p.mu.Unlock()
	_ = p.f.Sync() // want `p\.mu held across fsync`
}

func (p *part) transitiveFlushUnderLock() {
	p.mu.Lock()
	defer p.mu.Unlock()
	_ = p.flush() // want `p\.mu held across call to flush, which fsyncs`
}

func (p *part) leakOnEarlyReturn(k string) int {
	p.mu.RLock()
	if v, ok := p.items[k]; ok {
		return v // want `p\.mu acquired at .* may still be held on this return path \(missing RUnlock\)`
	}
	p.mu.RUnlock()
	return 0
}

func (p *part) wrapperWithoutUnlock(k string, v int) {
	p.writeLock()
	p.items[k] = v
} // want `p\.mu acquired at .* may still be held on this return path \(missing Unlock\)`
