// Package a seeds lockscope violations: locks held across blocking
// operations and lock/unlock pairs broken on a return path.
package a

import (
	"io"
	"net"
	"os"
	"sync"
	"time"
)

type part struct {
	mu    sync.RWMutex
	f     *os.File
	ch    chan int
	items map[string]int
	seq   int
}

// writeLock and writeUnlock mirror the docstore seqlock wrapper pair;
// lockscope classifies them by body and tracks their call sites.
func (p *part) writeLock() {
	p.mu.Lock()
	p.seq++
}

func (p *part) writeUnlock() {
	p.seq++
	p.mu.Unlock()
}

// flush blocks transitively: fsync behind one call hop.
func (p *part) flush() error {
	return p.f.Sync()
}

func (p *part) sleepUnderLock(d time.Duration) {
	p.mu.Lock()
	time.Sleep(d) // want `p\.mu held across time\.Sleep`
	p.mu.Unlock()
}

func (p *part) sendUnderLock(v int) {
	p.mu.Lock()
	p.ch <- v // want `p\.mu held across channel send`
	p.mu.Unlock()
}

func (p *part) selectUnderLock() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	select { // want `p\.mu held across blocking select`
	case v := <-p.ch:
		return v
	}
}

func (p *part) syncUnderLock() {
	p.mu.Lock()
	defer p.mu.Unlock()
	_ = p.f.Sync() // want `p\.mu held across fsync`
}

func (p *part) transitiveFlushUnderLock() {
	p.mu.Lock()
	defer p.mu.Unlock()
	_ = p.flush() // want `p\.mu held across call to flush, which fsyncs`
}

// wire mirrors the net broker's connection state: network I/O is the
// wire analogue of fsync and must never run under a mutex.
type wire struct {
	mu   sync.Mutex
	conn net.Conn
}

// sendFrame blocks transitively: a stream write behind one call hop
// (the frame codec writes conns through io.Writer).
func sendFrame(w io.Writer, b []byte) error {
	_, err := w.Write(b)
	return err
}

func (c *wire) writeUnderLock(b []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, _ = c.conn.Write(b) // want `c\.mu held across network/stream I/O: performs conn I/O \(net\.Conn\)`
}

func (c *wire) readUnderLock(b []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, _ = io.ReadFull(c.conn, b) // want `c\.mu held across network/stream I/O: reads from a stream \(io\.ReadFull\)`
}

func (c *wire) frameUnderLock(b []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	_ = sendFrame(c.conn, b) // want `c\.mu held across call to sendFrame, which writes to a stream \(io\.Writer\.Write\)`
}

func (c *wire) dialUnderLock(addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.conn, _ = net.DialTimeout("tcp", addr, time.Second) // want `c\.mu held across network/stream I/O: dials the network \(net\.Dial\)`
}

func (p *part) leakOnEarlyReturn(k string) int {
	p.mu.RLock()
	if v, ok := p.items[k]; ok {
		return v // want `p\.mu acquired at .* may still be held on this return path \(missing RUnlock\)`
	}
	p.mu.RUnlock()
	return 0
}

func (p *part) wrapperWithoutUnlock(k string, v int) {
	p.writeLock()
	p.items[k] = v
} // want `p\.mu acquired at .* may still be held on this return path \(missing Unlock\)`
