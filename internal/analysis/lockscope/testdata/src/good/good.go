// Package good mirrors the repository's correct locking idioms:
// deferred unlocks, wrapper pairs, branch-balanced unlocks, and
// non-blocking select-with-default under a lock. No findings are
// expected.
package good

import "sync"

type part struct {
	mu    sync.RWMutex
	ch    chan int
	items map[string]int
	seq   int
}

func (p *part) writeLock() {
	p.mu.Lock()
	p.seq++
}

func (p *part) writeUnlock() {
	p.seq++
	p.mu.Unlock()
}

func (p *part) set(k string, v int) {
	p.writeLock()
	defer p.writeUnlock()
	p.items[k] = v
}

func (p *part) get(k string) (int, bool) {
	p.mu.RLock()
	v, ok := p.items[k]
	p.mu.RUnlock()
	return v, ok
}

func (p *part) balanced(k string) int {
	p.mu.RLock()
	if v, ok := p.items[k]; ok {
		p.mu.RUnlock()
		return v
	}
	p.mu.RUnlock()
	return 0
}

func (p *part) tryNotify() {
	p.mu.Lock()
	select {
	case p.ch <- 1:
	default:
	}
	p.mu.Unlock()
}

func (p *part) sendOutsideLock(v int) {
	p.mu.Lock()
	p.items["last"] = v
	p.mu.Unlock()
	p.ch <- v
}
