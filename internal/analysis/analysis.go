// Package analysis is the repository's static-analysis framework: a
// dependency-free reimplementation of the golang.org/x/tools
// go/analysis surface that cmd/alarmvet drives, both standalone and
// under `go vet -vettool`. Each checker in the subdirectories
// (lockscope, batchlife, seqver, snapshotonly, hotalloc, errsink)
// proves one of the hot-path ownership or locking invariants that the
// runtime poison modes and -race hammers can only catch on exercised
// paths; this package supplies the shared Analyzer/Pass/Diagnostic
// types, the typechecking loaders, and the //alarmvet: directive
// handling (see ARCHITECTURE.md, "Invariants & enforcement").
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named invariant checker. It mirrors the
// golang.org/x/tools go/analysis Analyzer shape so checkers could be
// ported to the upstream framework unchanged if the dependency ever
// becomes available.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and test output.
	Name string
	// Doc is the one-paragraph description printed by `alarmvet help`.
	Doc string
	// Match restricts the analyzer to packages whose import path it
	// accepts; nil means every package. Pattern-gated analyzers (those
	// keyed on annotations or type shapes) leave it nil.
	Match func(pkgPath string) bool
	// Run performs the analysis on one typechecked package, reporting
	// findings through the pass.
	Run func(*Pass) error
}

// Diagnostic is one finding: a position and a message, tagged with
// the analyzer that produced it.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Pass carries one typechecked package through one analyzer run.
type Pass struct {
	// Analyzer is the checker this pass runs.
	Analyzer *Analyzer
	// Fset maps positions in Files to file/line/column.
	Fset *token.FileSet
	// Files are the package's parsed sources, comments included.
	Files []*ast.File
	// Pkg is the typechecked package.
	Pkg *types.Package
	// TypesInfo holds the type-checker's expression and identifier
	// resolutions for Files.
	TypesInfo *types.Info
	// Directives indexes the //alarmvet: comments of Files.
	Directives *Directives

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Unit is one typechecked compilation unit, however it was loaded
// (vet config, export-data listing, or testdata sources).
type Unit struct {
	// Fset maps positions in Files.
	Fset *token.FileSet
	// Files are the unit's parsed sources.
	Files []*ast.File
	// Pkg is the typechecked package.
	Pkg *types.Package
	// Info holds the type-checker's resolutions for Files.
	Info *types.Info
}

// NewInfo allocates a types.Info with every map analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}
