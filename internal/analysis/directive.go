package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive comments.
//
//	//alarmvet:ignore <reason>   suppress alarmvet findings on this
//	                             line and the next; the reason is
//	                             mandatory and a bare directive is
//	                             itself a finding. On a function
//	                             declaration it also exempts the
//	                             function from analyses that classify
//	                             it (e.g. lockscope's blocking set).
//	//alarmvet:hotpath           marks a function whose body hotalloc
//	                             requires to be allocation-free.

// ignorePrefix introduces the audited suppression directive.
const ignorePrefix = "//alarmvet:ignore"

// hotpathDirective marks allocation-free functions for hotalloc.
const hotpathDirective = "//alarmvet:hotpath"

// Directives indexes a package's //alarmvet: comments by file and
// line so the driver can suppress findings and report unjustified
// ignores.
type Directives struct {
	fset *token.FileSet
	// ignores maps filename -> line -> reason ("" when missing).
	ignores map[string]map[int]string
	bad     []Diagnostic
}

// ParseDirectives scans every comment of files for //alarmvet:
// directives.
func ParseDirectives(fset *token.FileSet, files []*ast.File) *Directives {
	d := &Directives{fset: fset, ignores: make(map[string]map[int]string)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := c.Text[len(ignorePrefix):]
				if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
					continue // some other alarmvet:ignoreXxx token
				}
				reason := strings.TrimSpace(rest)
				pos := fset.Position(c.Pos())
				if reason == "" {
					d.bad = append(d.bad, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "directive",
						Message:  "alarmvet:ignore requires a reason (//alarmvet:ignore <why this is safe>)",
					})
					continue
				}
				byLine := d.ignores[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]string)
					d.ignores[pos.Filename] = byLine
				}
				byLine[pos.Line] = reason
			}
		}
	}
	return d
}

// IgnoredAt reports whether a finding at pos is suppressed by a
// justified ignore directive on the same line or the line above
// (covering both end-of-line and standalone-comment placement).
func (d *Directives) IgnoredAt(pos token.Pos) (string, bool) {
	p := d.fset.Position(pos)
	byLine := d.ignores[p.Filename]
	if byLine == nil {
		return "", false
	}
	if r, ok := byLine[p.Line]; ok {
		return r, true
	}
	if r, ok := byLine[p.Line-1]; ok {
		return r, true
	}
	return "", false
}

// BadIgnores returns one finding per reason-less ignore directive.
func (d *Directives) BadIgnores() []Diagnostic { return d.bad }

// FuncIgnoreReason reports the ignore directive on a function's doc
// comment, exempting the whole function from classification-style
// analyses (lockscope's blocking set, errsink's defer sweep).
func FuncIgnoreReason(fn *ast.FuncDecl) (string, bool) {
	if fn == nil || fn.Doc == nil {
		return "", false
	}
	for _, c := range fn.Doc.List {
		if strings.HasPrefix(c.Text, ignorePrefix) {
			rest := strings.TrimSpace(c.Text[len(ignorePrefix):])
			if rest != "" {
				return rest, true
			}
		}
	}
	return "", false
}

// IsHotpath reports whether fn carries the //alarmvet:hotpath
// directive in its doc comment.
func IsHotpath(fn *ast.FuncDecl) bool {
	if fn == nil || fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if c.Text == hotpathDirective || strings.HasPrefix(c.Text, hotpathDirective+" ") {
			return true
		}
	}
	return false
}
