package snapshotonly_test

import (
	"testing"

	"alarmverify/internal/analysis/analysistest"
	"alarmverify/internal/analysis/snapshotonly"
)

func TestSnapshotonly(t *testing.T) {
	analysistest.Run(t, "testdata", snapshotonly.Analyzer, "a", "good")
}
