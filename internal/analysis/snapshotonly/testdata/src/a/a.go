// Package a seeds snapshotonly violations: a torn read across two
// snapshot loads and a write through a published snapshot pointer.
package a

import "sync/atomic"

type model struct {
	version int
	score   float64
}

type verifier struct {
	snap atomic.Pointer[model]
}

func (v *verifier) tornRead() (int, float64) {
	a := v.snap.Load().version
	b := v.snap.Load().score // want `second load of v\.snap in one function`
	return a, b
}

func (v *verifier) mutateShared(n int) {
	s := v.snap.Load()
	s.version = n // want `write to s\.version mutates a published model snapshot`
}

func (v *verifier) sampleSwapRate() (int, int) {
	a := v.snap.Load().version
	b := v.snap.Load().version //alarmvet:ignore metrics probe reads two versions on purpose to observe swaps
	return a, b
}
