// Package good mirrors the verifier's correct snapshot idioms: one
// load per operation and the copy-then-CompareAndSwap publish. No
// findings are expected.
package good

import "sync/atomic"

type model struct {
	version int
	score   float64
}

type verifier struct {
	snap atomic.Pointer[model]
}

func (v *verifier) read() (int, float64) {
	s := v.snap.Load()
	return s.version, s.score
}

func (v *verifier) withVersion(n int) {
	for {
		old := v.snap.Load()
		next := *old
		next.version = n
		if v.snap.CompareAndSwap(old, &next) {
			return
		}
	}
}

func (v *verifier) publish(m *model) {
	v.snap.Store(m)
}
