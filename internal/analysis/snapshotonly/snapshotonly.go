// Package snapshotonly proves the verifier's snapshot discipline.
// Model state lives behind one atomic pointer (Verifier.snap); a
// correct reader loads it exactly once per operation and works off
// that immutable snapshot. Two loads in one function can observe two
// different model versions mid-operation (a torn read across a Swap),
// and writing through a loaded pointer mutates a snapshot that
// concurrent verifications are reading — both defeat the entire
// point of the copy-then-publish design.
//
// The checker keys on fields named `snap` held in an atomic pointer:
//
//   - more than one x.snap.Load() of the same base in one function is
//     reported (pass the loaded snapshot instead);
//   - field writes through a variable assigned from snap.Load() are
//     reported (the withVersion idiom — copy the struct with s := *old,
//     mutate the copy, CompareAndSwap — stays silent because the copy
//     is a new value, not the published pointer).
package snapshotonly

import (
	"go/ast"

	"alarmverify/internal/analysis"
)

// Analyzer is the snapshotonly checker.
var Analyzer = &analysis.Analyzer{
	Name: "snapshotonly",
	Doc: "report double loads of the model snapshot pointer and " +
		"mutations through a loaded snapshot",
	Run: run,
}

func run(pass *analysis.Pass) error {
	analysis.FuncBodies(pass.Files, func(decl *ast.FuncDecl, lit *ast.FuncLit) {
		if lit != nil {
			return // literals are analyzed as part of their decl body
		}
		if _, ok := analysis.FuncIgnoreReason(decl); ok {
			return
		}
		checkBody(pass, decl.Body)
	})
	return nil
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	// loads counts x.snap.Load() per rendered base; loadedObjs holds
	// variables bound directly to a loaded snapshot pointer.
	loads := make(map[string]int)
	loadedObjs := make(map[any]bool)

	ast.Inspect(body, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.CallExpr:
			if base, ok := snapOp(t, "Load"); ok {
				loads[base]++
				if loads[base] == 2 {
					pass.Reportf(t.Pos(), "second load of %s.snap in one function can observe a different model version; load once and pass the snapshot", base)
				}
			}
		case *ast.AssignStmt:
			for i, r := range t.Rhs {
				if call, ok := ast.Unparen(r).(*ast.CallExpr); ok {
					if _, ok := snapOp(call, "Load"); ok && i < len(t.Lhs) {
						if id, ok := ast.Unparen(t.Lhs[i]).(*ast.Ident); ok {
							if obj := analysis.ObjectOf(pass.TypesInfo, id); obj != nil {
								loadedObjs[obj] = true
							}
						}
					}
				}
			}
			// Writes through a loaded pointer: s.field = v.
			for _, l := range t.Lhs {
				sel, ok := ast.Unparen(l).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				id, ok := ast.Unparen(sel.X).(*ast.Ident)
				if !ok {
					continue
				}
				if obj := analysis.ObjectOf(pass.TypesInfo, id); obj != nil && loadedObjs[obj] {
					pass.Reportf(l.Pos(), "write to %s.%s mutates a published model snapshot; copy it (s := *%s), mutate the copy, and publish with Store/CompareAndSwap",
						id.Name, sel.Sel.Name, id.Name)
				}
			}
		}
		return true
	})
}

// snapOp matches x.snap.<method>() and returns the rendered base x.
func snapOp(call *ast.CallExpr, method string) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return "", false
	}
	inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok || inner.Sel.Name != "snap" {
		return "", false
	}
	return analysis.Render(inner.X), true
}
