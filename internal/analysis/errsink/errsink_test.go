package errsink_test

import (
	"testing"

	"alarmverify/internal/analysis/analysistest"
	"alarmverify/internal/analysis/errsink"
)

func TestErrsink(t *testing.T) {
	analysistest.Run(t, "testdata", errsink.Analyzer, "a", "good")
}
