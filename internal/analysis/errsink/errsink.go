// Package errsink is the repository-scoped errcheck: it flags dropped
// error returns from durability-critical calls. A lost fsync, close,
// checkpoint, or rename error is a lost write — the WAL's sticky
// error sink exists precisely so these never vanish, and this checker
// proves no call site bypasses it silently.
//
// Durability-critical calls:
//
//   - os.Rename (atomic snapshot/manifest installs);
//   - methods named Sync, sync, Checkpoint, or Flush returning error;
//   - Close/close on *os.File or on any type declared in the package
//     under analysis (the repo's stores, collections, and WAL writers).
//
// A drop is a bare expression statement or a bare defer. Assigning
// the error — including an explicit `_ =` — is visible in review and
// therefore accepted. Handles opened with os.Open are read-only by
// definition, so their Close cannot lose a write and is exempt; any
// other genuinely-safe drop is excused with //alarmvet:ignore
// <reason>.
package errsink

import (
	"go/ast"
	"go/types"

	"alarmverify/internal/analysis"
)

// Analyzer is the errsink checker.
var Analyzer = &analysis.Analyzer{
	Name: "errsink",
	Doc:  "report dropped error returns from durability-critical calls",
	Run:  run,
}

// alwaysCritical method names (any receiver).
var alwaysCritical = map[string]bool{
	"Sync": true, "sync": true, "Checkpoint": true, "Flush": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			if _, ok := analysis.FuncIgnoreReason(decl); ok {
				continue
			}
			readOnly := readOnlyHandles(pass, decl.Body)
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				switch t := n.(type) {
				case *ast.ExprStmt:
					if call, ok := t.X.(*ast.CallExpr); ok {
						check(pass, call, "", readOnly)
					}
					return false
				case *ast.DeferStmt:
					check(pass, t.Call, "deferred ", readOnly)
					return false
				case *ast.GoStmt:
					check(pass, t.Call, "spawned ", readOnly)
					return false
				}
				return true
			})
		}
	}
	return nil
}

// readOnlyHandles collects variables assigned from os.Open in this
// body: O_RDONLY handles whose Close cannot surface a lost write.
func readOnlyHandles(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, r := range as.Rhs {
			call, ok := ast.Unparen(r).(*ast.CallExpr)
			if !ok || !analysis.IsPkgFunc(pass.TypesInfo, call, "os", "Open") {
				continue
			}
			if i < len(as.Lhs) {
				if id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident); ok {
					if obj := analysis.ObjectOf(pass.TypesInfo, id); obj != nil {
						out[obj] = true
					}
				}
			}
		}
		return true
	})
	return out
}

// check reports call when it is durability-critical and returns an
// error that this statement form drops.
func check(pass *analysis.Pass, call *ast.CallExpr, how string, readOnly map[types.Object]bool) {
	if !returnsError(pass, call) {
		return
	}
	name, why := critical(pass, call)
	if name == "" {
		return
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
			if obj := analysis.ObjectOf(pass.TypesInfo, id); obj != nil && readOnly[obj] {
				return
			}
		}
	}
	pass.Reportf(call.Pos(), "%scall to %s drops its error; %s — capture it (or acknowledge with _ =, or //alarmvet:ignore <reason>)",
		how, name, why)
}

// returnsError reports whether the call's results include an error.
func returnsError(pass *analysis.Pass, call *ast.CallExpr) bool {
	t := pass.TypesInfo.TypeOf(call)
	if t == nil {
		return false
	}
	check := func(t types.Type) bool {
		n, ok := t.(*types.Named)
		return ok && n.Obj().Name() == "error" && n.Obj().Pkg() == nil
	}
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if check(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return check(t)
}

// critical classifies the callee; the second result explains why the
// error matters.
func critical(pass *analysis.Pass, call *ast.CallExpr) (string, string) {
	if analysis.IsPkgFunc(pass.TypesInfo, call, "os", "Rename") {
		return "os.Rename", "a failed rename means the durable artifact was never installed"
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	name := sel.Sel.Name
	if alwaysCritical[name] {
		return name, "an unsurfaced " + name + " failure silently loses durability"
	}
	if name != "Close" && name != "close" {
		return "", ""
	}
	named := analysis.NamedOf(pass.TypesInfo.TypeOf(sel.X))
	if named == nil {
		return "", ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "", ""
	}
	if obj.Pkg().Path() == "os" && obj.Name() == "File" {
		return "(*os.File)." + name, "Close is the last chance to observe a buffered write failure"
	}
	if obj.Pkg() == pass.Pkg {
		return obj.Name() + "." + name, "Close flushes and seals durable state; its error is the final verdict"
	}
	return "", ""
}
