// Package a seeds errsink violations: dropped error returns from
// durability-critical calls (Sync, Checkpoint, Close, os.Rename).
package a

import "os"

type wal struct {
	f *os.File
}

// Close seals the log.
func (w *wal) Close() error {
	return w.f.Close()
}

// Checkpoint flushes buffered state to stable storage.
func (w *wal) Checkpoint() error {
	return w.f.Sync()
}

func bad(w *wal, path string) {
	w.Checkpoint()               // want `call to Checkpoint drops its error`
	w.Close()                    // want `call to wal\.Close drops its error`
	os.Rename(path, path+".new") // want `call to os\.Rename drops its error`
}

func badDefer(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want `deferred call to \(\*os\.File\)\.Close drops its error`
	if _, err := f.WriteString("x"); err != nil {
		return err
	}
	return f.Sync()
}

func badGo(w *wal) {
	go w.Checkpoint() // want `spawned call to Checkpoint drops its error`
}

func probe(path string) bool {
	f, err := os.Create(path)
	if err != nil {
		return false
	}
	f.Close() //alarmvet:ignore probe file: only creation success matters here
	return true
}

// bestEffortFlush is fire-and-forget by design: the periodic
// checkpointer retries and owns the durable verdict.
//
//alarmvet:ignore best-effort flush; the periodic checkpointer owns the durable error
func bestEffortFlush(w *wal) {
	w.Checkpoint()
}
