// Package good mirrors the repository's correct durability-error
// handling: captured or explicitly acknowledged errors, and exempt
// read-only handles. No findings are expected.
package good

import "os"

type wal struct {
	f *os.File
}

// Close seals the log.
func (w *wal) Close() error {
	return w.f.Close()
}

func persist(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close() // the write failure supersedes; file is abandoned
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close() // the fsync failure supersedes
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func readBack(path string) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close() // read-only handle: Close cannot lose a write
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}
