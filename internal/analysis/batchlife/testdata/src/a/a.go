// Package a seeds batchlife violations against a miniature of the
// repository's pooled-batch machinery: double release, use after
// release, scratch-slice escape, and a path that leaks the batch.
package a

// Batch is a pooled result carrier, as on the hot-path pipeline.
type Batch struct {
	Verified []int
	scratch  []byte
}

// Lease is a pooled fetch lease.
type Lease struct {
	released bool
}

// Release returns the lease to its pool.
func (l *Lease) Release() {
	l.released = true
}

type pool struct {
	free []*Batch
}

func (p *pool) getBatch() *Batch {
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free = p.free[:n-1]
		return b
	}
	return &Batch{}
}

// ReleaseBatch returns a batch to the pool.
func (p *pool) ReleaseBatch(b *Batch) {
	b.Verified = b.Verified[:0]
	b.scratch = b.scratch[:0]
	p.free = append(p.free, b)
}

func (p *pool) doubleRelease() {
	b := p.getBatch()
	p.ReleaseBatch(b)
	p.ReleaseBatch(b) // want `pooled b released twice on this path`
}

func (p *pool) useAfterRelease() int {
	b := p.getBatch()
	p.ReleaseBatch(b)
	return len(b.Verified) // want `use of pooled b after its release`
}

func (p *pool) escapedScratch() []int {
	b := p.getBatch()
	out := b.Verified
	p.ReleaseBatch(b)
	return out // want `use of out, a scratch slice of pooled b, after the batch was released`
}

func (p *pool) leakOnErrPath(fail bool) {
	b := p.getBatch()
	if fail {
		return // want `pooled b is released on another path but not on this one`
	}
	p.ReleaseBatch(b)
}

func doubleLeaseRelease(get func() *Lease) {
	l := get()
	l.Release()
	l.Release() // want `pooled l released twice on this path`
}

func (p *pool) auditRelease() int {
	b := p.getBatch()
	p.ReleaseBatch(b)
	return cap(b.scratch) //alarmvet:ignore pool telemetry samples the retained capacity right after release
}
