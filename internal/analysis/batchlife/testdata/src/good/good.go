// Package good mirrors the repository's correct pooled-batch idioms:
// deferred release, branch-balanced release, ownership transfer by
// channel send or return, and element copies instead of aliases. No
// findings are expected.
package good

// Batch is a pooled result carrier.
type Batch struct {
	Verified []int
}

type item struct {
	b *Batch
}

type pool struct {
	free []*Batch
	out  chan item
}

func (p *pool) getBatch() *Batch {
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free = p.free[:n-1]
		return b
	}
	return &Batch{}
}

// ReleaseBatch returns a batch to the pool.
func (p *pool) ReleaseBatch(b *Batch) {
	b.Verified = b.Verified[:0]
	p.free = append(p.free, b)
}

func (p *pool) deferred() int {
	b := p.getBatch()
	defer p.ReleaseBatch(b)
	return len(b.Verified)
}

func (p *pool) branchesBalanced(fail bool) {
	b := p.getBatch()
	if fail {
		p.ReleaseBatch(b)
		return
	}
	b.Verified = append(b.Verified, 1)
	p.ReleaseBatch(b)
}

func (p *pool) handoff() {
	b := p.getBatch()
	if len(b.Verified) == 0 {
		p.ReleaseBatch(b)
		return
	}
	p.out <- item{b: b} // ownership transfers to the consumer
}

func (p *pool) drain() *Batch {
	return p.getBatch() // ownership transfers to the caller
}

func (p *pool) copyOut(dst []int) []int {
	b := p.getBatch()
	dst = append(dst, b.Verified...) // element copy, not an alias
	p.ReleaseBatch(b)
	return dst
}
