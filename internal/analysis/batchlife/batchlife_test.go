package batchlife_test

import (
	"testing"

	"alarmverify/internal/analysis/analysistest"
	"alarmverify/internal/analysis/batchlife"
)

func TestBatchlife(t *testing.T) {
	analysistest.Run(t, "testdata", batchlife.Analyzer, "a", "good")
}
