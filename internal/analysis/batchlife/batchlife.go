// Package batchlife proves the pooled-buffer ownership discipline on
// the hot path: a pooled *core.Batch or broker *Lease is released
// exactly once per control-flow path, is never touched after its
// release, and no batch-owned scratch slice outlives ReleaseBatch.
// The runtime poison modes (SetBatchCheck / SetLeaseCheck) catch these
// bugs only on exercised schedules; this checker catches them on every
// path at compile time.
//
// A value becomes tracked when a call assigns it to a variable whose
// type is a pointer to a named type Batch or Lease (getBatch, Drain,
// FetchLease, PollLeased). Releases are calls to ReleaseBatch or
// poisonBatch with the variable as argument, or v.Release(). Aliases
// of batch-owned slices (x := b.Verified) are tainted by the batch's
// release. Bodies of the release machinery itself (ReleaseBatch,
// Release, poisonBatch, Released) are exempt: touching the value
// during release is their job.
package batchlife

import (
	"go/ast"
	"go/token"
	"go/types"

	"alarmverify/internal/analysis"
)

// Analyzer is the batchlife checker.
var Analyzer = &analysis.Analyzer{
	Name: "batchlife",
	Doc: "report pooled batches and broker leases released twice, " +
		"used after release, leaked on a path, or whose scratch " +
		"slices escape the release",
	Run: run,
}

// trackedTypeNames are the pooled ownership handles.
var trackedTypeNames = map[string]bool{"Batch": true, "Lease": true}

// releaseFuncs release their argument; releaseMethods release their
// receiver.
var (
	releaseFuncs   = map[string]bool{"ReleaseBatch": true, "poisonBatch": true}
	releaseMethods = map[string]bool{"Release": true}
	exemptBodies   = map[string]bool{
		"ReleaseBatch": true, "poisonBatch": true, "Release": true, "Released": true,
	}
)

// vstate tracks one pooled variable (or a slice alias of one) along
// the current path.
type vstate struct {
	released bool
	relPos   token.Pos
	// aliasOf is the pooled base variable for slice aliases, nil for
	// the pooled handle itself.
	aliasOf *types.Var
}

type state map[*types.Var]*vstate

func (s state) clone() state {
	out := make(state, len(s))
	for k, v := range s {
		c := *v
		out[k] = &c
	}
	return out
}

// mergeFrom unions another surviving path into s: released-anywhere
// wins (a use after a one-sided release is still a race with that
// path).
func (s state) mergeFrom(o state) {
	for k, v := range o {
		if cur, ok := s[k]; ok {
			if v.released && !cur.released {
				cur.released, cur.relPos = true, v.relPos
			}
		} else {
			c := *v
			s[k] = &c
		}
	}
}

func run(pass *analysis.Pass) error {
	analysis.FuncBodies(pass.Files, func(decl *ast.FuncDecl, lit *ast.FuncLit) {
		if lit == nil && exemptBodies[decl.Name.Name] {
			return
		}
		if lit != nil && exemptBodies[decl.Name.Name] {
			return // literals inside the release machinery
		}
		if _, ok := analysis.FuncIgnoreReason(decl); ok && lit == nil {
			return
		}
		body := decl.Body
		if lit != nil {
			body = lit.Body
		}
		w := &walker{
			pass:     pass,
			releases: collectReleases(pass, body),
			deferred: collectDeferredReleases(pass, body),
		}
		if !w.stmts(body.List, make(state)) {
			// Fall-off-the-end is a return path too.
			w.checkLeaks(w.last, body.Rbrace, nil)
		}
	})
	return nil
}

// collectReleases pre-scans a body for every variable that is released
// somewhere (path-insensitively); leak checks only fire for those, so
// ownership-transferring functions (Drain returns its batch) stay
// silent.
func collectReleases(pass *analysis.Pass, body *ast.BlockStmt) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if v := releaseTarget(pass, call); v != nil {
				out[v] = true
			}
		}
		return true
	})
	return out
}

// collectDeferredReleases pre-scans for `defer ...Release...` calls:
// a deferred release covers every path, so the variable can neither
// leak nor trip use-after-release within the body.
func collectDeferredReleases(pass *analysis.Pass, body *ast.BlockStmt) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if d, ok := n.(*ast.DeferStmt); ok {
			if v := releaseTarget(pass, d.Call); v != nil {
				out[v] = true
			}
		}
		return true
	})
	return out
}

// releaseTarget resolves a call to the pooled variable it releases,
// or nil.
func releaseTarget(pass *analysis.Pass, call *ast.CallExpr) *types.Var {
	recv, name := analysis.CallName(call)
	if releaseFuncs[name] && len(call.Args) > 0 {
		return identVar(pass, call.Args[0])
	}
	if releaseMethods[name] && recv != nil {
		if v := identVar(pass, recv); v != nil && trackedTypeNames[analysis.TypeName(v.Type())] {
			return v
		}
	}
	return nil
}

// identVar resolves an expression to the local variable it names.
func identVar(pass *analysis.Pass, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := analysis.ObjectOf(pass.TypesInfo, id).(*types.Var)
	return v
}

// walker simulates one body.
type walker struct {
	pass     *analysis.Pass
	releases map[*types.Var]bool
	deferred map[*types.Var]bool
	// last remembers the state reaching the end of the walked
	// sequence, for the implicit-return leak check.
	last state
}

func (w *walker) stmts(list []ast.Stmt, st state) bool {
	w.last = st
	for _, s := range list {
		if w.stmt(s, st) {
			return true
		}
	}
	w.last = st
	return false
}

func (w *walker) stmt(s ast.Stmt, st state) bool {
	switch t := s.(type) {
	case *ast.ExprStmt:
		w.exprs(t.X, st)
	case *ast.AssignStmt:
		for _, e := range t.Rhs {
			w.exprs(e, st)
		}
		w.assign(t, st)
	case *ast.DeclStmt:
		if gd, ok := t.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.exprs(v, st)
					}
					w.declSpec(vs, st)
				}
			}
		}
	case *ast.IncDecStmt:
		w.exprs(t.X, st)
	case *ast.SendStmt:
		w.exprs(t.Chan, st)
		w.exprs(t.Value, st)
		// Sending a pooled handle downstream transfers ownership: the
		// receiver releases it (serve's pipeline items).
		w.transfer(t.Value, st)
	case *ast.DeferStmt:
		if releaseTarget(w.pass, t.Call) != nil {
			return false // covered by collectDeferredReleases
		}
		for _, a := range t.Call.Args {
			w.exprs(a, st)
		}
	case *ast.GoStmt:
		for _, a := range t.Call.Args {
			w.exprs(a, st)
		}
	case *ast.ReturnStmt:
		for _, e := range t.Results {
			w.exprs(e, st)
		}
		w.checkLeaks(st, t.Return, t.Results)
		return true
	case *ast.BranchStmt:
		return true
	case *ast.BlockStmt:
		return w.stmts(t.List, st)
	case *ast.LabeledStmt:
		return w.stmt(t.Stmt, st)
	case *ast.IfStmt:
		if t.Init != nil {
			w.stmt(t.Init, st)
		}
		w.exprs(t.Cond, st)
		thenSt := st.clone()
		thenTerm := w.stmts(t.Body.List, thenSt)
		elseSt := st.clone()
		elseTerm := false
		if t.Else != nil {
			elseTerm = w.stmt(t.Else, elseSt)
		}
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			replace(st, elseSt)
		case elseTerm:
			replace(st, thenSt)
		default:
			replace(st, thenSt)
			st.mergeFrom(elseSt)
		}
	case *ast.ForStmt:
		if t.Init != nil {
			w.stmt(t.Init, st)
		}
		if t.Cond != nil {
			w.exprs(t.Cond, st)
		}
		bodySt := st.clone()
		w.stmts(t.Body.List, bodySt)
		if t.Post != nil {
			w.stmt(t.Post, bodySt)
		}
		if t.Cond == nil && !hasBreak(t.Body) {
			return true // for{}: only leaves via return inside the body
		}
		st.mergeFrom(bodySt)
	case *ast.RangeStmt:
		w.exprs(t.X, st)
		bodySt := st.clone()
		w.stmts(t.Body.List, bodySt)
		st.mergeFrom(bodySt)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		// Clause-level precision is not needed for ownership: walk each
		// clause from the entry state and union the survivors.
		var body *ast.BlockStmt
		switch sw := t.(type) {
		case *ast.SwitchStmt:
			if sw.Init != nil {
				w.stmt(sw.Init, st)
			}
			if sw.Tag != nil {
				w.exprs(sw.Tag, st)
			}
			body = sw.Body
		case *ast.TypeSwitchStmt:
			if sw.Init != nil {
				w.stmt(sw.Init, st)
			}
			w.stmt(sw.Assign, st)
			body = sw.Body
		case *ast.SelectStmt:
			body = sw.Body
		}
		entry := st.clone()
		for _, c := range body.List {
			var list []ast.Stmt
			switch cc := c.(type) {
			case *ast.CaseClause:
				list = cc.Body
			case *ast.CommClause:
				if cc.Comm != nil {
					w.stmt(cc.Comm, entry)
				}
				list = cc.Body
			}
			ccSt := entry.clone()
			if !w.stmts(list, ccSt) {
				st.mergeFrom(ccSt)
			}
		}
	}
	w.last = st
	return false
}

// assign applies tracking/alias/retire rules after RHS uses were
// checked.
func (w *walker) assign(t *ast.AssignStmt, st state) {
	if t.Tok != token.ASSIGN && t.Tok != token.DEFINE {
		return
	}
	// Tuple form: b, lease, err := call().
	if len(t.Lhs) > 1 && len(t.Rhs) == 1 {
		if _, isCall := ast.Unparen(t.Rhs[0]).(*ast.CallExpr); isCall {
			for _, l := range t.Lhs {
				if v := identVar(w.pass, l); v != nil {
					if trackedTypeNames[analysis.TypeName(v.Type())] {
						st[v] = &vstate{}
					} else {
						delete(st, v)
					}
				}
			}
			return
		}
	}
	for i, l := range t.Lhs {
		v := identVar(w.pass, l)
		if v == nil {
			continue
		}
		if i < len(t.Rhs) {
			rhs := ast.Unparen(t.Rhs[i])
			if _, isCall := rhs.(*ast.CallExpr); isCall && trackedTypeNames[analysis.TypeName(v.Type())] {
				st[v] = &vstate{}
				continue
			}
			// Slice alias of a pooled handle's field: x := b.Verified.
			if sel, ok := rhs.(*ast.SelectorExpr); ok {
				if base := identVar(w.pass, sel.X); base != nil && trackedTypeNames[analysis.TypeName(base.Type())] {
					if _, isSlice := w.pass.TypesInfo.TypeOf(rhs).(*types.Slice); isSlice {
						st[v] = &vstate{aliasOf: base}
						continue
					}
				}
			}
		}
		delete(st, v) // reassigned away: no longer ours
	}
}

// declSpec applies the same tracking to `var x = call()` forms.
func (w *walker) declSpec(vs *ast.ValueSpec, st state) {
	for i, name := range vs.Names {
		v, _ := analysis.ObjectOf(w.pass.TypesInfo, name).(*types.Var)
		if v == nil || !trackedTypeNames[analysis.TypeName(v.Type())] {
			continue
		}
		if i < len(vs.Values) {
			if _, isCall := ast.Unparen(vs.Values[i]).(*ast.CallExpr); isCall {
				st[v] = &vstate{}
			}
		} else if len(vs.Values) == 1 {
			if _, isCall := ast.Unparen(vs.Values[0]).(*ast.CallExpr); isCall {
				st[v] = &vstate{}
			}
		}
	}
}

// transfer untracks pooled handles referenced by an escaping
// expression (a channel send's value, a stored composite literal):
// ownership moved, the releasing party is elsewhere.
func (w *walker) transfer(n ast.Node, st state) {
	ast.Inspect(n, func(c ast.Node) bool {
		if id, ok := c.(*ast.Ident); ok {
			if v, ok := analysis.ObjectOf(w.pass.TypesInfo, id).(*types.Var); ok {
				if vs, tracked := st[v]; tracked && !vs.released {
					delete(st, v)
				}
			}
		}
		return true
	})
}

// hasBreak reports whether body contains any break statement (at any
// nesting — an over-approximation that errs toward walking the code
// after the loop).
func hasBreak(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if b, ok := n.(*ast.BranchStmt); ok && b.Tok == token.BREAK {
			found = true
		}
		return !found
	})
	return found
}

// exprs scans one expression tree: release calls first (double
// release), then plain uses of released values.
func (w *walker) exprs(n ast.Node, st state) {
	ast.Inspect(n, func(c ast.Node) bool {
		switch t := c.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CompositeLit:
			// A handle stored into a literal escapes this function's
			// ownership; uses of already-released handles still count.
			w.escape(t, st)
			return false
		case *ast.CallExpr:
			if v := releaseTarget(w.pass, t); v != nil {
				vs, tracked := st[v]
				if tracked && vs.released {
					w.pass.Reportf(t.Pos(), "pooled %s released twice on this path (first released at %s)",
						v.Name(), w.pass.Fset.Position(vs.relPos))
				} else if tracked {
					vs.released, vs.relPos = true, t.Pos()
					// The batch's slice aliases die with it.
					for _, other := range st {
						if other.aliasOf == v && !other.released {
							other.released, other.relPos = true, t.Pos()
						}
					}
				}
				// Other args (scratch slices, etc.) still get checked.
				for i, a := range t.Args {
					if i == 0 && len(t.Args) > 0 && identVar(w.pass, a) == v {
						continue
					}
					w.exprs(a, st)
				}
				return false
			}
		case *ast.Ident:
			v, _ := analysis.ObjectOf(w.pass.TypesInfo, t).(*types.Var)
			if v == nil {
				return true
			}
			vs, ok := st[v]
			if !ok || !vs.released || w.deferred[v] {
				return true
			}
			if vs.aliasOf != nil {
				w.pass.Reportf(t.Pos(), "use of %s, a scratch slice of pooled %s, after the batch was released at %s",
					v.Name(), vs.aliasOf.Name(), w.pass.Fset.Position(vs.relPos))
			} else {
				w.pass.Reportf(t.Pos(), "use of pooled %s after its release at %s",
					v.Name(), w.pass.Fset.Position(vs.relPos))
			}
			delete(st, v) // one report per variable per path
		}
		return true
	})
}

// escape reports released-handle uses inside an escaping expression,
// then untracks the live ones (ownership moved with the value).
func (w *walker) escape(n ast.Node, st state) {
	ast.Inspect(n, func(c ast.Node) bool {
		id, ok := c.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := analysis.ObjectOf(w.pass.TypesInfo, id).(*types.Var)
		if !ok {
			return true
		}
		vs, tracked := st[v]
		if !tracked {
			return true
		}
		if vs.released {
			if vs.aliasOf != nil {
				w.pass.Reportf(id.Pos(), "use of %s, a scratch slice of pooled %s, after the batch was released at %s",
					v.Name(), vs.aliasOf.Name(), w.pass.Fset.Position(vs.relPos))
			} else {
				w.pass.Reportf(id.Pos(), "use of pooled %s after its release at %s",
					v.Name(), w.pass.Fset.Position(vs.relPos))
			}
		}
		delete(st, v)
		return true
	})
}

// checkLeaks reports pooled handles that this function releases on
// some path but neither releases, defers, nor returns on this one.
func (w *walker) checkLeaks(st state, at token.Pos, results []ast.Expr) {
	if st == nil {
		return
	}
	returned := make(map[*types.Var]bool)
	for _, r := range results {
		ast.Inspect(r, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if v, ok := analysis.ObjectOf(w.pass.TypesInfo, id).(*types.Var); ok {
					returned[v] = true
				}
			}
			return true
		})
	}
	for v, vs := range st {
		if vs.aliasOf != nil || vs.released || w.deferred[v] || returned[v] {
			continue
		}
		if !w.releases[v] {
			continue // never released here: ownership moves elsewhere
		}
		w.pass.Reportf(at, "pooled %s is released on another path but not on this one (leaked back to the pool)", v.Name())
	}
}

// replace overwrites dst's contents with src's.
func replace(dst, src state) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}
