package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Loading.
//
// Two paths produce a typechecked Unit:
//
//   - VetConfig.Load: the `go vet -vettool` unitchecker protocol. The
//     go command hands the tool a JSON .cfg describing one compilation
//     unit — source files plus the export-data file of every
//     dependency — and the unit typechecks against that export data
//     through go/importer's gc reader.
//   - LoadDir: testdata packages for the analysistest harness. The
//     directory's sources are parsed and their (stdlib-only) imports
//     resolved to export data via one `go list -export` invocation.
//
// Both end in typecheck, so analyzers see identical Units either way.

// VetConfig is the compilation-unit description `go vet` writes for a
// -vettool (the unitchecker protocol's .cfg file). Field names and
// semantics match cmd/go's vet action; fields the tool does not
// consume are accepted and ignored by the JSON decoder.
type VetConfig struct {
	// ID names the unit, e.g. "alarmverify/internal/core".
	ID string
	// Compiler is the toolchain that produced the export data ("gc").
	Compiler string
	// Dir is the package directory.
	Dir string
	// ImportPath is the unit's import path.
	ImportPath string
	// GoVersion is the unit's minimum Go version ("go1.22").
	GoVersion string
	// GoFiles are the unit's Go sources (absolute paths).
	GoFiles []string
	// ImportMap resolves import paths to package paths (vendoring).
	ImportMap map[string]string
	// PackageFile maps package paths to export-data files.
	PackageFile map[string]string
	// VetxOnly marks a dependency-only run: no diagnostics wanted,
	// just the facts file.
	VetxOnly bool
	// VetxOutput is where the tool must write its facts file.
	VetxOutput string
	// SucceedOnTypecheckFailure asks the tool to exit 0 on type errors
	// (the compiler will report them better).
	SucceedOnTypecheckFailure bool
}

// ReadVetConfig decodes one unitchecker .cfg file.
func ReadVetConfig(path string) (*VetConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := new(VetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("decode vet config %s: %w", path, err)
	}
	if len(cfg.GoFiles) == 0 {
		return nil, fmt.Errorf("vet config %s: package has no files", path)
	}
	return cfg, nil
}

// Load parses and typechecks the unit the config describes.
func (cfg *VetConfig) Load() (*Unit, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	resolver := importerFunc(func(importPath string) (*types.Package, error) {
		path := importPath
		if len(cfg.ImportMap) > 0 {
			if mapped, ok := cfg.ImportMap[importPath]; ok {
				path = mapped
			}
		}
		return imp.Import(path)
	})
	return typecheck(fset, files, cfg.ImportPath, resolver, cfg.GoVersion)
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

// Import resolves one import path.
func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// LoadDir parses and typechecks every non-test .go file of one
// directory as the package importPath, resolving imports (stdlib
// only) through `go list -export`. It is the analysistest loader.
func LoadDir(dir, importPath string) (*Unit, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	var imports []string
	seen := make(map[string]bool)
	for _, f := range files {
		for _, spec := range f.Imports {
			p, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				return nil, err
			}
			if !seen[p] {
				seen[p] = true
				imports = append(imports, p)
			}
		}
	}
	lookup, err := exportLookup(imports)
	if err != nil {
		return nil, err
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := lookup[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return typecheck(fset, files, importPath, imp, "")
}

// exportLookup compiles the given import paths (and their deps) via
// `go list -export` and returns package path -> export-data file.
func exportLookup(imports []string) (map[string]string, error) {
	out := make(map[string]string)
	if len(imports) == 0 {
		return out, nil
	}
	sort.Strings(imports)
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Export"}, imports...)
	cmd := exec.Command("go", args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list -export: %v\n%s", err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	for {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list -export: %w", err)
		}
		if p.Export != "" {
			out[p.ImportPath] = p.Export
		}
	}
	return out, nil
}

// typecheck runs go/types over the parsed files.
func typecheck(fset *token.FileSet, files []*ast.File, path string, imp types.Importer, goVersion string) (*Unit, error) {
	info := NewInfo()
	tc := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: goVersion,
	}
	pkg, err := tc.Check(path, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Unit{Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}
