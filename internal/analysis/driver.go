package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// RunAnalyzers runs every matching analyzer over one typechecked unit
// and returns the surviving findings in position order. Findings in
// _test.go files are dropped (test hammers intentionally violate the
// production invariants), as are findings on lines carrying a
// justified //alarmvet:ignore; reason-less ignore directives are
// findings themselves.
func RunAnalyzers(u *Unit, analyzers []*Analyzer) ([]Diagnostic, error) {
	dirs := ParseDirectives(u.Fset, u.Files)
	raw := append([]Diagnostic(nil), dirs.BadIgnores()...)
	for _, a := range analyzers {
		if a.Match != nil && !a.Match(u.Pkg.Path()) {
			continue
		}
		pass := &Pass{
			Analyzer:   a,
			Fset:       u.Fset,
			Files:      u.Files,
			Pkg:        u.Pkg,
			TypesInfo:  u.Info,
			Directives: dirs,
			report:     func(d Diagnostic) { raw = append(raw, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	var out []Diagnostic
	for _, d := range raw {
		p := u.Fset.Position(d.Pos)
		if strings.HasSuffix(p.Filename, "_test.go") {
			continue
		}
		if _, ok := dirs.IgnoredAt(d.Pos); ok && d.Analyzer != "directive" {
			continue
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := u.Fset.Position(out[i].Pos), u.Fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// Format renders a finding the way `go vet` prints its own: position,
// message, and the analyzer tag.
func Format(fset *token.FileSet, d Diagnostic) string {
	return fmt.Sprintf("%s: %s [alarmvet/%s]", fset.Position(d.Pos), d.Message, d.Analyzer)
}
