package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"alarmverify/internal/analysis"
)

func parseOne(t *testing.T, src string) (*token.FileSet, *analysis.Directives) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fset, analysis.ParseDirectives(fset, []*ast.File{f})
}

func TestBareIgnoreIsAFinding(t *testing.T) {
	src := `package x

func f() {
	_ = 1 //alarmvet:ignore
}
`
	fset, dirs := parseOne(t, src)
	bad := dirs.BadIgnores()
	if len(bad) != 1 {
		t.Fatalf("BadIgnores = %d findings, want 1", len(bad))
	}
	d := bad[0]
	if d.Analyzer != "directive" {
		t.Errorf("Analyzer = %q, want \"directive\"", d.Analyzer)
	}
	if !strings.Contains(d.Message, "requires a reason") {
		t.Errorf("Message = %q, want it to demand a reason", d.Message)
	}
	if got := fset.Position(d.Pos).Line; got != 4 {
		t.Errorf("finding on line %d, want 4", got)
	}
	// A reason-less directive must not suppress anything either.
	if _, ok := dirs.IgnoredAt(d.Pos); ok {
		t.Error("bare directive suppressed a finding on its own line")
	}
}

func TestJustifiedIgnoreSuppressesItsLineAndTheNext(t *testing.T) {
	src := `package x

func f() {
	//alarmvet:ignore the next line is fine for reasons
	_ = 1
	_ = 2
}
`
	fset, dirs := parseOne(t, src)
	if len(dirs.BadIgnores()) != 0 {
		t.Fatalf("BadIgnores = %v, want none", dirs.BadIgnores())
	}
	lineStart := func(line int) token.Pos {
		return fset.File(token.Pos(fset.Base() - 1)).LineStart(line)
	}
	if _, ok := dirs.IgnoredAt(lineStart(5)); !ok {
		t.Error("line below a standalone ignore is not suppressed")
	}
	if _, ok := dirs.IgnoredAt(lineStart(6)); ok {
		t.Error("suppression leaked two lines below the directive")
	}
}
