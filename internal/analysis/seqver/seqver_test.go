package seqver_test

import (
	"testing"

	"alarmverify/internal/analysis/analysistest"
	"alarmverify/internal/analysis/seqver"
)

func TestSeqver(t *testing.T) {
	analysistest.Run(t, "testdata", seqver.Analyzer, "a", "good")
}
