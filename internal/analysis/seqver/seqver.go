// Package seqver proves the docstore's seqlock discipline: every
// mutation of a partition's core state (the docs map, insertion
// order, or secondary indexes) must be covered by a version bump —
// either the function itself takes the write lock (writeLock, which
// moves the seq counter to an odd value and invalidates the
// optimistic snapshot caches), bumps the counter directly, or it
// follows the repository's "Locked" naming contract, documenting that
// its caller already holds the write lock.
//
// Without the bump, optimistic readers (cachedFieldValues/cachedTail)
// can validate a snapshot that raced the mutation and serve stale
// matches; the race hammer only catches that on lucky schedules.
//
// A partition-like type is recognized structurally: any struct with
// both `docs` and `order` fields. Fresh values built inside the same
// function (constructors, recovery) are exempt — they are unpublished
// and have no readers yet.
package seqver

import (
	"go/ast"
	"go/token"
	"strings"

	"alarmverify/internal/analysis"
)

// Analyzer is the seqver checker.
var Analyzer = &analysis.Analyzer{
	Name: "seqver",
	Doc: "report partition-state mutations (docs/order/indexes) not " +
		"covered by a version bump or the Locked-suffix contract",
	Run: run,
}

// guardedFields are the partition fields whose mutation must be
// version-covered.
var guardedFields = map[string]bool{
	"docs": true, "order": true, "index": true, "indexes": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			if strings.HasSuffix(decl.Name.Name, "Locked") {
				continue // caller-holds-lock contract
			}
			if _, ok := analysis.FuncIgnoreReason(decl); ok {
				continue
			}
			checkBody(pass, decl.Body)
		}
	}
	return nil
}

// checkBody flags guarded-field mutations not preceded (in source
// order) by a version bump on the same base expression. Source order
// is a sound approximation here: the repo's writeLock/mutate/
// writeUnlock sections are straight-line.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	fresh := localFreshVars(pass, body)
	bumps := bumpPositions(pass, body)

	report := func(base ast.Expr, field string, pos token.Pos) {
		baseKey := analysis.Render(base)
		for _, b := range bumps {
			if b.base == baseKey && b.pos < pos {
				return
			}
		}
		if id, ok := ast.Unparen(base).(*ast.Ident); ok {
			if obj := analysis.ObjectOf(pass.TypesInfo, id); obj != nil && fresh[obj.Pos()] {
				return // unpublished value built in this function
			}
		}
		pass.Reportf(pos, "mutation of %s.%s without a prior version bump (call %s.writeLock, bump %s.seq, or use the Locked-suffix caller-holds contract)",
			baseKey, field, baseKey, baseKey)
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.AssignStmt:
			for _, l := range t.Lhs {
				if base, field, ok := guardedTarget(pass, l); ok {
					report(base, field, l.Pos())
				}
			}
		case *ast.IncDecStmt:
			if base, field, ok := guardedTarget(pass, t.X); ok {
				report(base, field, t.X.Pos())
			}
		case *ast.CallExpr:
			// delete(p.docs, k) mutates too.
			if id, ok := ast.Unparen(t.Fun).(*ast.Ident); ok && id.Name == "delete" && len(t.Args) > 0 {
				if base, field, ok := guardedTarget(pass, t.Args[0]); ok {
					report(base, field, t.Args[0].Pos())
				}
			}
		}
		return true
	})
}

// bump is one version-bump site: a writeLock call or a direct seq
// counter add on some base expression.
type bump struct {
	base string
	pos  token.Pos
}

// bumpPositions collects writeLock calls and seq.Add calls.
func bumpPositions(pass *analysis.Pass, body *ast.BlockStmt) []bump {
	var out []bump
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, name := analysis.CallName(call)
		if name == "writeLock" && recv != nil {
			out = append(out, bump{base: analysis.Render(recv), pos: call.Pos()})
			return true
		}
		// p.seq.Add(...) — the base is the expression owning the seq
		// field.
		if name == "Add" && recv != nil {
			if sel, ok := ast.Unparen(recv).(*ast.SelectorExpr); ok && sel.Sel.Name == "seq" {
				out = append(out, bump{base: analysis.Render(sel.X), pos: call.Pos()})
			}
		}
		return true
	})
	return out
}

// guardedTarget decomposes an lvalue into (base, guardedField) when it
// denotes guarded partition state: base.docs, base.docs[k],
// base.order[i], base.indexes[name], with base a partition-like
// struct.
func guardedTarget(pass *analysis.Pass, e ast.Expr) (ast.Expr, string, bool) {
	e = ast.Unparen(e)
	if ix, ok := e.(*ast.IndexExpr); ok {
		e = ast.Unparen(ix.X)
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || !guardedFields[sel.Sel.Name] {
		return nil, "", false
	}
	names := analysis.StructFieldNames(pass.TypesInfo.TypeOf(sel.X))
	if names == nil || !names["docs"] || !names["order"] {
		return nil, "", false
	}
	return sel.X, sel.Sel.Name, true
}

// localFreshVars returns the def positions of variables initialized
// in this body from composite literals, new(), or make() — values not
// yet published to readers.
func localFreshVars(pass *analysis.Pass, body *ast.BlockStmt) map[token.Pos]bool {
	out := make(map[token.Pos]bool)
	mark := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		obj := analysis.ObjectOf(pass.TypesInfo, id)
		if obj == nil {
			return
		}
		switch r := ast.Unparen(rhs).(type) {
		case *ast.CompositeLit:
			out[obj.Pos()] = true
		case *ast.UnaryExpr:
			if r.Op == token.AND {
				if _, ok := ast.Unparen(r.X).(*ast.CompositeLit); ok {
					out[obj.Pos()] = true
				}
			}
		case *ast.CallExpr:
			if fid, ok := ast.Unparen(r.Fun).(*ast.Ident); ok && (fid.Name == "new" || fid.Name == "make") {
				out[obj.Pos()] = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.AssignStmt:
			for i := range t.Lhs {
				if i < len(t.Rhs) {
					mark(t.Lhs[i], t.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			for i := range t.Names {
				if i < len(t.Values) {
					mark(t.Names[i], t.Values[i])
				}
			}
		}
		return true
	})
	return out
}
