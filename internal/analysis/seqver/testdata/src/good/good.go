// Package good mirrors the repository's correct seqlock idioms: the
// writeLock/writeUnlock wrapper pair, direct seq bumps, the
// Locked-suffix caller-holds contract, and unpublished fresh values.
// No findings are expected.
package good

import (
	"sync"
	"sync/atomic"
)

type partition struct {
	mu    sync.RWMutex
	seq   atomic.Uint64
	docs  map[string]string
	order []string
}

func (p *partition) writeLock() {
	p.mu.Lock()
	p.seq.Add(1)
}

func (p *partition) writeUnlock() {
	p.seq.Add(1)
	p.mu.Unlock()
}

func (p *partition) guardedInsert(k, v string) {
	p.writeLock()
	defer p.writeUnlock()
	p.docs[k] = v
	p.order = append(p.order, k)
}

func (p *partition) insertLocked(k, v string) {
	p.docs[k] = v
	p.order = append(p.order, k)
}

func (p *partition) directBump(k, v string) {
	p.mu.Lock()
	p.seq.Add(1)
	p.docs[k] = v
	p.order = append(p.order, k)
	p.seq.Add(1)
	p.mu.Unlock()
}

func newPartition() *partition {
	p := &partition{docs: make(map[string]string)}
	p.docs["boot"] = ""
	p.order = append(p.order, "boot")
	return p
}
