// Package a seeds seqver violations: partition-state mutations (the
// docs map, insertion order) without a covering version bump, so
// optimistic readers could validate a snapshot that raced the write.
package a

import (
	"sync"
	"sync/atomic"
)

type partition struct {
	mu    sync.RWMutex
	seq   atomic.Uint64
	docs  map[string]string
	order []string
}

func (p *partition) writeLock() {
	p.mu.Lock()
	p.seq.Add(1)
}

func (p *partition) writeUnlock() {
	p.seq.Add(1)
	p.mu.Unlock()
}

func (p *partition) unguardedInsert(k, v string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.docs[k] = v                // want `mutation of p\.docs without a prior version bump`
	p.order = append(p.order, k) // want `mutation of p\.order without a prior version bump`
}

func (p *partition) unguardedDelete(k string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.docs, k) // want `mutation of p\.docs without a prior version bump`
}

func (p *partition) bumpAfterMutation(k, v string) {
	p.mu.Lock()
	p.docs[k] = v // want `mutation of p\.docs without a prior version bump`
	p.seq.Add(1)
	p.mu.Unlock()
}

func (p *partition) recoveryRebuild(k, v string) {
	p.docs[k] = v //alarmvet:ignore recovery rebuild runs before the partition is published to readers
}
