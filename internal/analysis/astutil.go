package analysis

import (
	"go/ast"
	"go/types"
)

// Shared AST/type helpers for the checkers.

// CallName splits a call into its receiver expression (nil for plain
// function calls) and the callee's bare name ("" when the callee is
// not an identifier or selector, e.g. a call of a call result).
func CallName(call *ast.CallExpr) (recv ast.Expr, name string) {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return nil, fn.Name
	case *ast.SelectorExpr:
		return fn.X, fn.Sel.Name
	}
	return nil, ""
}

// IsPkgFunc reports whether call invokes the package-level function
// pkgPath.name (e.g. time.Sleep).
func IsPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := info.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	return fn.Name() == name && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath
}

// IsMethodOn reports whether call invokes a method named name whose
// receiver's (pointer-stripped) named type is pkgPath.typeName.
func IsMethodOn(info *types.Info, call *ast.CallExpr, pkgPath, typeName, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return false
	}
	named := NamedOf(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// NamedOf strips pointers and returns the expression type's named
// type, or nil.
func NamedOf(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt
		case *types.Alias:
			t = types.Unalias(tt)
		default:
			return nil
		}
	}
}

// TypeName returns the bare name of the expression type's named type
// after pointer stripping ("" for unnamed types).
func TypeName(t types.Type) string {
	if n := NamedOf(t); n != nil {
		return n.Obj().Name()
	}
	return ""
}

// StructFieldNames returns the field-name set of the type's struct
// underlying (after pointer/named stripping), or nil.
func StructFieldNames(t types.Type) map[string]bool {
	if t == nil {
		return nil
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if n := NamedOf(t); n != nil {
		t = n.Underlying()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	names := make(map[string]bool, st.NumFields())
	for i := 0; i < st.NumFields(); i++ {
		names[st.Field(i).Name()] = true
	}
	return names
}

// Render produces a canonical source string for an expression,
// suitable as a state key ("p.mu", "c.verifier.snap").
func Render(e ast.Expr) string { return types.ExprString(e) }

// ObjectOf resolves an identifier to its object (use or def).
func ObjectOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// FuncBodies yields every function body in the files: each FuncDecl
// with its declaration, and each FuncLit with the nearest enclosing
// FuncDecl (nil at file scope). Analyzers that simulate control flow
// analyze each body independently.
func FuncBodies(files []*ast.File, fn func(decl *ast.FuncDecl, lit *ast.FuncLit)) {
	for _, f := range files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			fn(decl, nil)
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					fn(decl, lit)
				}
				return true
			})
		}
	}
}
