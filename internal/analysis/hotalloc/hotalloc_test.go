package hotalloc_test

import (
	"testing"

	"alarmverify/internal/analysis/analysistest"
	"alarmverify/internal/analysis/hotalloc"
)

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, "testdata", hotalloc.Analyzer, "a", "good")
}
