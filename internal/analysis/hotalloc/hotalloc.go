// Package hotalloc proves the zero-allocation contract on annotated
// hot paths. A function marked //alarmvet:hotpath (the PR-6
// decode/classify/persist pipeline and the WAL frame encoder) must
// not allocate per call: the steady-state cost model in
// PERFORMANCE.md assumes the only allocations are pool misses.
//
// Flagged constructs inside a hotpath body:
//
//   - fmt.* calls (Sprintf and friends allocate and box);
//   - make, new, and composite literals (including &T{...});
//   - append into a different variable than its source
//     (x = append(y, ...) allocates a fresh backing array; the pooled
//     idiom x = append(x, ...) amortizes into scratch and is allowed);
//   - string concatenation with +.
//
// A genuinely cold line inside a hotpath function (a fallback, an
// error path) is excused with //alarmvet:ignore <reason> — audited,
// reason mandatory. Function literals declared inside a hotpath body
// inherit the contract (they run on the same path).
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"alarmverify/internal/analysis"
)

// Analyzer is the hotalloc checker.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "report allocations inside //alarmvet:hotpath functions",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil || !analysis.IsHotpath(decl) {
				continue
			}
			checkBody(pass, decl.Body)
		}
	}
	return nil
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, t)
		case *ast.UnaryExpr:
			if t.Op == token.AND {
				if _, ok := ast.Unparen(t.X).(*ast.CompositeLit); ok {
					pass.Reportf(t.Pos(), "&literal heap-allocates in a hotpath function; reuse pooled scratch")
					return false
				}
			}
		case *ast.CompositeLit:
			// Struct-valued literals are stack copies; only map and
			// slice literals force an allocation.
			lt := pass.TypesInfo.TypeOf(t)
			if lt == nil {
				return true
			}
			switch lt.Underlying().(type) {
			case *types.Map, *types.Slice:
				pass.Reportf(t.Pos(), "%s literal allocates in a hotpath function; reuse pooled scratch",
					kindOf(pass, t))
				return false // don't double-report nested literals
			}
		case *ast.AssignStmt:
			checkAppend(pass, t)
		case *ast.BinaryExpr:
			// Constant concatenation folds at compile time; only
			// runtime concatenation allocates.
			if t.Op == token.ADD && isString(pass, t.X) && !isConst(pass, t) {
				pass.Reportf(t.Pos(), "string concatenation allocates in a hotpath function; use an append-based encoder")
				return false // one report per concatenation chain
			}
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch fn.Name {
		case "make", "new":
			if isBuiltin(pass, fn) {
				pass.Reportf(call.Pos(), "%s allocates in a hotpath function; hoist it to setup or a pool", fn.Name)
			}
		}
	case *ast.SelectorExpr:
		if obj, ok := pass.TypesInfo.Uses[fn.Sel].(*types.Func); ok &&
			obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			pass.Reportf(call.Pos(), "fmt.%s allocates and boxes its arguments in a hotpath function", fn.Sel.Name)
		}
	}
}

// checkAppend flags x = append(y, ...) where x and y differ: growth
// lands in a fresh backing array every call instead of amortizing
// into pooled scratch.
func checkAppend(pass *analysis.Pass, t *ast.AssignStmt) {
	for i, r := range t.Rhs {
		call, ok := ast.Unparen(r).(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			continue
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "append" || !isBuiltin(pass, id) {
			continue
		}
		if i >= len(t.Lhs) {
			continue
		}
		if _, isReslice := ast.Unparen(call.Args[0]).(*ast.SliceExpr); isReslice {
			continue // append(buf[:0], ...) amortizes into existing capacity
		}
		dst := analysis.Render(t.Lhs[i])
		src := analysis.Render(call.Args[0])
		if dst != src {
			pass.Reportf(call.Pos(), "append into %s from %s allocates in a hotpath function; append a variable into itself (or slice pooled scratch)", dst, src)
		}
	}
}

func isBuiltin(pass *analysis.Pass, id *ast.Ident) bool {
	_, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

func kindOf(pass *analysis.Pass, e ast.Expr) string {
	if t := pass.TypesInfo.TypeOf(e); t != nil {
		if _, ok := t.Underlying().(*types.Map); ok {
			return "map"
		}
	}
	return "slice"
}

func isConst(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

func isString(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
