// Package good mirrors the allocation-free hot-path idioms the
// checker must accept: self-append into pooled scratch, reslice
// amortization, and compile-time-constant concatenation. Unannotated
// functions may allocate freely. No findings are expected.
package good

import "fmt"

type enc struct {
	scratch []byte
	n       int
}

//alarmvet:hotpath
func (e *enc) encode(vals []int) {
	e.scratch = e.scratch[:0]
	for _, v := range vals {
		e.scratch = append(e.scratch, byte(v))
	}
	e.n += len(vals)
}

//alarmvet:hotpath
func fill(dst []byte, b byte) []byte {
	dst = append(dst[:0], b) // reslice amortizes into existing capacity
	return dst
}

//alarmvet:hotpath
func header() string {
	const prefix = "alarm"
	return prefix + ":" + "v1" // constant-folds at compile time
}

func slow(vals []int) string {
	return fmt.Sprintf("%v", vals) // unannotated: allocation is fine here
}
