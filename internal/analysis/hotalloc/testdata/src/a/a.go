// Package a seeds hotalloc violations: per-call allocations inside a
// function annotated //alarmvet:hotpath.
package a

import "fmt"

type enc struct {
	scratch []byte
	out     []byte
}

//alarmvet:hotpath
func (e *enc) encode(vals []int, tag string) {
	e.scratch = e.scratch[:0]
	for _, v := range vals {
		e.scratch = append(e.scratch, byte(v))
	}
	seen := map[int]bool{} // want `map literal allocates in a hotpath function`
	_ = seen
	buf := make([]byte, 16) // want `make allocates in a hotpath function`
	_ = buf
	label := fmt.Sprintf("n=%d", len(vals)) // want `fmt\.Sprintf allocates and boxes`
	_ = label
	key := "alarm:" + tag // want `string concatenation allocates in a hotpath function`
	_ = key
	e.out = append(e.scratch, 0) // want `append into e\.out from e\.scratch allocates`
	h := &enc{}                  // want `&literal heap-allocates in a hotpath function`
	_ = h
}

//alarmvet:hotpath
func (e *enc) encodeChecked(vals []int) {
	if len(vals) > 1<<16 {
		e.out = fmt.Appendf(e.out, "overflow %d", len(vals)) //alarmvet:ignore overflow is a once-per-run error path; latency no longer matters
		return
	}
	for _, v := range vals {
		e.out = append(e.out, byte(v))
	}
}

func cold(vals []int) string {
	return fmt.Sprint(len(vals))
}
