// Package analysistest runs an analyzer over golden testdata packages
// and checks its findings against `// want "regexp"` comments, the
// golang.org/x/tools analysistest convention: every finding must be
// expected on its line, and every expectation must be matched. Each
// analyzer's testdata holds at least one seeded-violation package and
// one known-good package mirroring the audited repo idiom.
package analysistest

import (
	"fmt"
	"go/scanner"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"alarmverify/internal/analysis"
)

// expectation is one `// want` regexp at a file:line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// Run loads each testdata/src/<pkg> package, runs the analyzer
// through the shared driver (so //alarmvet:ignore handling is
// exercised exactly as in production), and diffs findings against the
// want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		pkg := pkg
		t.Run(pkg, func(t *testing.T) {
			t.Helper()
			dir := filepath.Join(testdata, "src", pkg)
			unit, err := analysis.LoadDir(dir, pkg)
			if err != nil {
				t.Fatalf("load %s: %v", dir, err)
			}
			diags, err := analysis.RunAnalyzers(unit, []*analysis.Analyzer{a})
			if err != nil {
				t.Fatalf("run %s: %v", a.Name, err)
			}
			wants, err := parseWants(unit)
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range diags {
				pos := unit.Fset.Position(d.Pos)
				if w := match(wants, pos.Filename, pos.Line, d.Message); w == nil {
					t.Errorf("%s:%d: unexpected finding: %s [%s]",
						pos.Filename, pos.Line, d.Message, d.Analyzer)
				}
			}
			for _, w := range wants {
				if !w.hit {
					t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.raw)
				}
			}
		})
	}
}

// match finds the first unhit expectation for file:line whose regexp
// matches msg, marks it hit, and returns it.
func match(wants []*expectation, file string, line int, msg string) *expectation {
	for _, w := range wants {
		if w.hit || w.file != file || w.line != line {
			continue
		}
		if w.re.MatchString(msg) {
			w.hit = true
			return w
		}
	}
	return nil
}

// parseWants extracts every `// want "re" ["re"...]` comment.
func parseWants(unit *analysis.Unit) ([]*expectation, error) {
	var wants []*expectation
	for _, f := range unit.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := unit.Fset.Position(c.Pos())
				patterns, err := scanStrings(strings.TrimPrefix(text, "want "))
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want comment: %v", pos.Filename, pos.Line, err)
				}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, p, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: p})
				}
			}
		}
	}
	return wants, nil
}

// scanStrings parses a sequence of Go string literals (quoted or
// backquoted) from s.
func scanStrings(s string) ([]string, error) {
	var sc scanner.Scanner
	fset := token.NewFileSet()
	file := fset.AddFile("want", fset.Base(), len(s))
	sc.Init(file, []byte(s), nil, 0)
	var out []string
	for {
		_, tok, lit := sc.Scan()
		switch tok {
		case token.EOF, token.SEMICOLON:
			if len(out) == 0 {
				return nil, fmt.Errorf("no string literals")
			}
			return out, nil
		case token.STRING:
			v, err := strconv.Unquote(lit)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		default:
			return nil, fmt.Errorf("unexpected token %v %q", tok, lit)
		}
	}
}
