// Package alarm defines the wire-level and feature-level alarm types
// shared by every component of the verification pipeline.
//
// The paper's "Design for reusability" lesson (§6.1) asks for a generic
// alarm abstraction — a set of categorical features (Location,
// PropertyType, HourOfDay, DayOfWeek) that describe alarms in general,
// extensible with use-case specific fields. Alarm is the wire format
// sent by a sensor (Figure 4); LabeledAlarm is the generic,
// dataset-independent training record.
package alarm

import (
	"fmt"
	"time"
)

// Type enumerates the kind of incident a sensor reports.
type Type int

// Alarm types observed in the Sitasys production data. Fire and
// Intrusion are the two types the hybrid approach (§5.4) focuses on.
const (
	TypeFire Type = iota
	TypeIntrusion
	TypeTechnical
	TypeMedical
	TypeWater
	TypePanic
	numTypes
)

// String returns the canonical lowercase name of the alarm type.
func (t Type) String() string {
	switch t {
	case TypeFire:
		return "fire"
	case TypeIntrusion:
		return "intrusion"
	case TypeTechnical:
		return "technical"
	case TypeMedical:
		return "medical"
	case TypeWater:
		return "water"
	case TypePanic:
		return "panic"
	default:
		return fmt.Sprintf("type(%d)", int(t))
	}
}

// ParseType converts a type name back to its Type. It reports
// ok=false for unknown names.
func ParseType(s string) (Type, bool) {
	for t := Type(0); t < numTypes; t++ {
		if t.String() == s {
			return t, true
		}
	}
	return 0, false
}

// NumTypes returns the number of distinct alarm types.
func NumTypes() int { return int(numTypes) }

// ObjectType classifies the supervised premise an alarm originates
// from (the Sitasys "ObjectType" feature of Table 1).
type ObjectType int

// Premise categories.
const (
	ObjectResidential ObjectType = iota
	ObjectIndustrial
	ObjectCommercial
	ObjectPublic
	ObjectAgricultural
	numObjectTypes
)

// String returns the canonical lowercase name of the object type.
func (o ObjectType) String() string {
	switch o {
	case ObjectResidential:
		return "residential"
	case ObjectIndustrial:
		return "industrial"
	case ObjectCommercial:
		return "commercial"
	case ObjectPublic:
		return "public"
	case ObjectAgricultural:
		return "agricultural"
	default:
		return fmt.Sprintf("object(%d)", int(o))
	}
}

// ParseObjectType converts an object-type name back to its ObjectType.
func ParseObjectType(s string) (ObjectType, bool) {
	for o := ObjectType(0); o < numObjectTypes; o++ {
		if o.String() == s {
			return o, true
		}
	}
	return 0, false
}

// NumObjectTypes returns the number of distinct premise categories.
func NumObjectTypes() int { return int(numObjectTypes) }

// Alarm is the simplified wire format of an alarm sent by a Sitasys
// sensor through the stream (Figure 4). Location information is a
// hashed ZIP code (the production data was anonymized); device
// identity is the MAC/IP pair; sensor-specific fields (SensorType,
// SoftwareVersion) are the extra features that let classifiers detect
// technical faults and push accuracy above 90% (§5.3.4).
type Alarm struct {
	ID         int64      `json:"id"`
	DeviceMAC  string     `json:"deviceMac"`
	DeviceIP   string     `json:"deviceIp"`
	ZIP        string     `json:"zip"` // hashed ZIP code of the premise
	Timestamp  time.Time  `json:"timestamp"`
	Duration   float64    `json:"duration"` // seconds until reset
	Type       Type       `json:"alarmType"`
	ObjectType ObjectType `json:"objectType"`

	// Sensor-specific information (§5.1.1): "type of sensor,
	// software version, etc."
	SensorType      string `json:"sensorType"`
	SoftwareVersion string `json:"softwareVersion"`

	// Payload pads the message to realistic wire size (alarms are
	// "less than 1KB in size", §5.5.2).
	Payload string `json:"payload,omitempty"`
}

// Key returns the stream partitioning key for the alarm: the device
// address, so that all alarms of one device land in one partition and
// per-device history stays ordered.
func (a *Alarm) Key() string { return a.DeviceMAC }

// HourOfDay returns the alarm's hour in [0,24).
func (a *Alarm) HourOfDay() int { return a.Timestamp.Hour() }

// DayOfWeek returns the alarm's weekday (0 = Sunday … 6 = Saturday).
func (a *Alarm) DayOfWeek() int { return int(a.Timestamp.Weekday()) }

// Label is the ground-truth (or heuristically inferred) class of an
// alarm.
type Label int

// The two classes of the verification problem.
const (
	False Label = iota // false alarm: no intervention needed
	True               // true alarm: intervention force required
)

// String returns "false" or "true".
func (l Label) String() string {
	if l == True {
		return "true"
	}
	return "false"
}

// LabeledAlarm is the generic training record of §6.1 ("Design for
// reusability"): categorical features that describe alarms regardless
// of the originating dataset, plus optional use-case specific
// categorical extras (for Sitasys: sensor type and software version).
// The London Fire Brigade and San Francisco datasets map onto the
// same record with Extras left empty.
type LabeledAlarm struct {
	Location     string  // ZIP code or location hash
	PropertyType string  // premise / property category
	HourOfDay    int     // 0..23
	DayOfWeek    int     // 0..6
	AlarmType    string  // incident type name
	Extras       []Extra // dataset-specific categorical features
	Risk         float64 // a-priori risk factor (hybrid approach); 0 if unused
	HasRisk      bool    // whether Risk participates as a feature
	Label        Label
}

// Extra is one named categorical feature value.
type Extra struct {
	Name  string
	Value string
}

// DurationLabel applies the paper's label heuristic (§5.1.1): an alarm
// reset within deltaT is considered false ("the owner immediately shut
// it off"); longer alarms are considered true.
func DurationLabel(duration time.Duration, deltaT time.Duration) Label {
	if duration < deltaT {
		return False
	}
	return True
}

// Verification is the output of the verification service for one
// alarm: the predicted class and the associated probability
// (confidence), which human ARC operators use to prioritize (§6.1
// "Provide probability of verification").
type Verification struct {
	AlarmID     int64   `json:"alarmId"`
	Predicted   Label   `json:"predicted"`
	Probability float64 `json:"probability"` // confidence of the predicted class
	ModelName   string  `json:"modelName"`
	LatencyMS   float64 `json:"latencyMs"`
}
