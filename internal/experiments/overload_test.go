package experiments

import (
	"strings"
	"testing"
	"time"
)

// TestOverloadSweep runs a compressed overload sweep and pins the
// tentpole claims: every offered record is either processed or
// counted shed, shedding only happens when enabled, the flash crowd
// triggers it, and with shedding on the flash-crowd e2e p99 is
// bounded — strictly better than the unprotected collapse.
func TestOverloadSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("overload sweep drives multi-second open-loop load")
	}
	env := NewEnv(tinyScale())
	res, err := OverloadWithConfig(env, OverloadConfig{
		Duration:           1500 * time.Millisecond,
		CalibrationRecords: 2048,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CapacityPerSec <= 0 || res.BaseRate <= 0 || res.ShedQueue <= 0 {
		t.Fatalf("degenerate calibration: %+v", res)
	}
	if len(res.Cells) != 6 {
		t.Fatalf("got %d cells, want 3 scenarios × shed on/off", len(res.Cells))
	}
	cells := make(map[string]OverloadCell, len(res.Cells))
	for _, c := range res.Cells {
		key := c.Scenario
		if c.Shed {
			key += "+shed"
		}
		cells[key] = c
		if c.Sent == 0 {
			t.Fatalf("cell %s sent nothing", key)
		}
		if c.Processed+int(c.ShedRecords) != c.Sent {
			t.Fatalf("cell %s: processed %d + shed %d != sent %d",
				key, c.Processed, c.ShedRecords, c.Sent)
		}
		if !c.Shed && c.ShedRecords != 0 {
			t.Fatalf("cell %s shed %d records with shedding off", key, c.ShedRecords)
		}
		if c.Processed > 0 && c.P99 <= 0 {
			t.Fatalf("cell %s has no p99", key)
		}
	}
	flashOff, flashOn := cells["flash"], cells["flash+shed"]
	// The flash spike offers 4× the measured capacity: the bounded
	// queue must actually shed.
	if flashOn.ShedRecords == 0 {
		t.Fatalf("flash crowd shed nothing: %+v", flashOn)
	}
	// Bounded p99, no collapse: the shed-on tail must beat the
	// unprotected one, which drains the whole spike backlog late.
	if flashOn.P99 >= flashOff.P99 {
		t.Fatalf("shedding did not bound p99: shed on %s vs off %s", flashOn.P99, flashOff.P99)
	}

	out := RenderOverload(res)
	for _, want := range []string{"Overload sweep", "flash", "burst", "p99"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
