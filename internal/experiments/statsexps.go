package experiments

import (
	"fmt"

	"alarmverify/internal/dataset"
	"alarmverify/internal/risk"
)

// Fig6 reproduces the London Fire Brigade statistics: incident-group
// counts per year and the overall false-alarm ratio.
func Fig6(env *Env) ([]dataset.LFBYearStats, float64) {
	cfg := dataset.DefaultLFBConfig()
	cfg.NumIncidents = env.Scale.LFBIncidents
	return dataset.LFBStats(dataset.GenerateLFB(cfg))
}

// RenderFig6 formats the statistics.
func RenderFig6(perYear []dataset.LFBYearStats, falseRatio float64) string {
	header := []string{"year", "fire", "special service", "false alarm"}
	var rows [][]string
	for _, y := range perYear {
		rows = append(rows, []string{
			fmt.Sprintf("%d", y.Year),
			fmt.Sprintf("%d", y.Fire),
			fmt.Sprintf("%d", y.SpecialService),
			fmt.Sprintf("%d", y.FalseAlarm),
		})
	}
	return fmt.Sprintf("Figure 6: LFB incident groups per year (false ratio %.1f%%, paper: 48%%)\n",
		100*falseRatio) + renderTable(header, rows)
}

// Fig8 renders the security map over the incident-derived risk model.
func Fig8(env *Env, width, height int) string {
	return risk.SecurityMap{Width: width, Height: height}.Render(env.RiskModel())
}

// Table1 documents the feature correspondence across the three
// datasets — the paper's Table 1, reproduced as structured data so
// the harness can print it.
func Table1() string {
	header := []string{"dataset", "location", "time", "type of location", "incident type", "label"}
	rows := [][]string{
		{"Sitasys", "ZIP code", "Timestamp", "ObjectType", "Alarm Type", "Alarm Duration"},
		{"London", "ZIP code", "Date/TimeOfCall", "PropertyType", "PropertyCategory", "Incident Group"},
		{"San Francisco", "Zip code Of Incident", "ReceivedDtTm", "-", "Call Type", "Call Final Disposition"},
	}
	return "Table 1: features of the three datasets\n" + renderTable(header, rows)
}

// Params renders the published hyper-parameters (Tables 3–7) from the
// live defaults, so drift between code and paper is visible.
func Params() string {
	out := "Tables 3-7: hyper-parameters (live defaults)\n\n"
	out += "Table 3 (Random Forest):   50 trees, max depth 30\n"
	out += "Table 4 (SVM):             2000 iterations, step 1.0, mini-batch fraction 0.2, L2 1e-2, linear kernel\n"
	out += "Table 5 (Logistic Reg.):   500 iterations, tolerance 1e-6\n"
	out += "Table 6 (DNN training):    max 10000 epochs, mini-batch 200, cross entropy, Nesterov momentum, lr 0.1, momentum 0.9\n"
	out += "Table 7 (DNN layers):      input -> 50 ReLU -> 2 ReLU -> 2 softmax\n"
	return out
}

// IncidentCorpusStats summarizes the generated incident corpus the
// way §5.2 reports it (language mix, distinct locations).
type IncidentCorpusStats struct {
	Total     int
	German    int
	French    int
	English   int
	Locations int
}

// CorpusStats tallies the environment's incident corpus.
func CorpusStats(env *Env) IncidentCorpusStats {
	var st IncidentCorpusStats
	locs := map[string]bool{}
	for _, inc := range env.Incidents() {
		st.Total++
		switch inc.Language {
		case "de":
			st.German++
		case "fr":
			st.French++
		case "en":
			st.English++
		}
		locs[inc.Location] = true
	}
	st.Locations = len(locs)
	return st
}

// RenderCorpusStats formats the corpus summary.
func RenderCorpusStats(st IncidentCorpusStats) string {
	return fmt.Sprintf(
		"Incident corpus (§5.2): %d reports (%d de / %d fr / %d en) over %d distinct locations\n"+
			"paper: 5,056 reports (2,743 de / 1,516 fr / 797 en) over 1,027 locations\n",
		st.Total, st.German, st.French, st.English, st.Locations)
}
