package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"alarmverify/internal/alarm"
	"alarmverify/internal/dataset"
	"alarmverify/internal/ml"
	"alarmverify/internal/risk"
	"alarmverify/internal/textproc"
)

// Scenario is one column of Table 9.
type Scenario string

// The four hybrid-evaluation scenarios of §5.4.
const (
	ScenarioA Scenario = "a" // all covered locations, all alarm types
	ScenarioB Scenario = "b" // all covered locations, fire & intrusion only
	ScenarioC Scenario = "c" // single-ZIP locations, all alarm types
	ScenarioD Scenario = "d" // single-ZIP locations, fire & intrusion only
)

// Scenarios lists them in the paper's order.
func Scenarios() []Scenario { return []Scenario{ScenarioA, ScenarioB, ScenarioC, ScenarioD} }

// Table9Row is the accuracy of one risk treatment in one scenario.
type Table9Row struct {
	Scenario  Scenario
	Treatment string // "baseline", "ARF", "NRF", "BRF"
	Accuracy  float64
	NumAlarms int
}

// scenarioAlarms filters the alarm stream per scenario: alarms must
// be in locations covered by the incident corpus (§5.4 restricts the
// evaluation to covered ZIP codes); scenarios c/d keep only
// single-ZIP places; scenarios b/d keep only fire and intrusion
// alarms.
func scenarioAlarms(env *Env, sc Scenario) []alarm.Alarm {
	model := env.RiskModel()
	gaz := env.World().Gaz
	fiOnly := sc == ScenarioB || sc == ScenarioD
	singleZIP := sc == ScenarioC || sc == ScenarioD
	var out []alarm.Alarm
	for _, a := range env.Alarms() {
		if !model.Covered(a.ZIP) {
			continue
		}
		if singleZIP {
			p, ok := gaz.ByZIP(a.ZIP)
			if !ok || p.MultiZIP() {
				continue
			}
		}
		if fiOnly && a.Type != alarm.TypeFire && a.Type != alarm.TypeIntrusion {
			continue
		}
		out = append(out, a)
	}
	return out
}

// Table9 reproduces the hybrid-approach evaluation: per scenario, the
// baseline accuracy and the accuracy with each risk-factor flavour,
// averaged over runs (the paper averages 10 runs).
func Table9(env *Env, runs int) ([]Table9Row, error) {
	if runs < 1 {
		runs = 3
	}
	treatments := []struct {
		name string
		kind risk.Kind
		use  bool
	}{
		{"baseline", 0, false},
		{"ARF", risk.Absolute, true},
		{"NRF", risk.Normalized, true},
		{"BRF", risk.Binary, true},
	}
	var out []Table9Row
	for _, sc := range Scenarios() {
		alarms := scenarioAlarms(env, sc)
		if len(alarms) < 200 {
			return nil, fmt.Errorf("experiments: scenario %s has only %d alarms", sc, len(alarms))
		}
		for _, tr := range treatments {
			sum := 0.0
			for run := 0; run < runs; run++ {
				labeled := dataset.ToLabeled(alarms, time.Minute, true)
				if tr.use {
					dataset.AttachRisk(labeled, env.RiskModel(), tr.kind)
				}
				ds, _, err := dataset.Encode(labeled)
				if err != nil {
					return nil, err
				}
				train, test := ds.Split(0.5, rand.New(rand.NewSource(int64(100+run))))
				c, err := ClassifierFor("rf", env.Scale)
				if err != nil {
					return nil, err
				}
				if rf, ok := c.(*ml.RandomForest); ok {
					rf.Config.Seed = int64(run + 1)
				}
				if err := c.Fit(train); err != nil {
					return nil, err
				}
				sum += ml.Accuracy(c, test)
			}
			out = append(out, Table9Row{
				Scenario:  sc,
				Treatment: tr.name,
				Accuracy:  sum / float64(runs),
				NumAlarms: len(alarms),
			})
		}
	}
	return out, nil
}

// RenderTable9 formats the hybrid results like the paper's Table 9.
func RenderTable9(rows []Table9Row) string {
	header := []string{"treatment"}
	for _, sc := range Scenarios() {
		header = append(header, "("+string(sc)+")")
	}
	byTreatment := map[string]map[Scenario]Table9Row{}
	var order []string
	for _, r := range rows {
		m, ok := byTreatment[r.Treatment]
		if !ok {
			m = map[Scenario]Table9Row{}
			byTreatment[r.Treatment] = m
			order = append(order, r.Treatment)
		}
		m[r.Scenario] = r
	}
	var tbl [][]string
	for _, tr := range order {
		row := []string{tr}
		for _, sc := range Scenarios() {
			row = append(row, pct(byTreatment[tr][sc].Accuracy))
		}
		tbl = append(tbl, row)
	}
	counts := []string{"#-alarms"}
	for _, sc := range Scenarios() {
		counts = append(counts, fmt.Sprintf("%d", byTreatment[order[0]][sc].NumAlarms))
	}
	tbl = append(tbl, counts)
	return "Table 9: hybrid accuracy [%] per scenario (a: all/all, b: all/F+I, " +
		"c: single-ZIP/all, d: single-ZIP/F+I)\n" + renderTable(header, tbl)
}

// Table2Row is one district line of Table 2: ZIP-level true-alarm
// counts against city-level incident counts.
type Table2Row struct {
	ZIP           string
	TrueIntrusion int
	TrueFire      int
	CityKnown     bool // per-district incident counts are unknown
}

// Table2Result is the Basel-style granularity-divergence table.
type Table2Result struct {
	City               string
	Rows               []Table2Row
	CityIntrusionTotal int // incidents, city granularity
	CityFireTotal      int
	AlarmIntrusion     int // true alarms summed over districts
	AlarmFire          int
}

// Table2 reproduces the divergence table for the largest multi-ZIP
// city: alarms are counted per ZIP district, incidents only per city.
func Table2(env *Env, deltaT time.Duration) (*Table2Result, error) {
	if deltaT <= 0 {
		deltaT = time.Minute
	}
	gaz := env.World().Gaz
	model := env.RiskModel()
	// Largest covered multi-ZIP city.
	var city *risk.Place
	for _, p := range gaz.SortedByPopulation() {
		if p.MultiZIP() && model.IncidentCount(p.Name) > 0 {
			city = p
			break
		}
	}
	if city == nil {
		return nil, fmt.Errorf("experiments: no covered multi-ZIP city")
	}
	res := &Table2Result{
		City:               city.Name,
		CityIntrusionTotal: model.TopicCount(city.Name, textproc.TopicIntrusion),
		CityFireTotal:      model.TopicCount(city.Name, textproc.TopicFire),
	}
	counts := map[string]*Table2Row{}
	for _, z := range city.ZIPs {
		counts[z] = &Table2Row{ZIP: z}
	}
	dt := deltaT.Seconds()
	for _, a := range env.Alarms() {
		row, ok := counts[a.ZIP]
		if !ok || a.Duration < dt {
			continue
		}
		switch a.Type {
		case alarm.TypeIntrusion:
			row.TrueIntrusion++
			res.AlarmIntrusion++
		case alarm.TypeFire:
			row.TrueFire++
			res.AlarmFire++
		}
	}
	for _, z := range city.ZIPs {
		res.Rows = append(res.Rows, *counts[z])
	}
	sort.Slice(res.Rows, func(i, j int) bool { return res.Rows[i].ZIP < res.Rows[j].ZIP })
	return res, nil
}

// RenderTable2 formats the divergence table.
func RenderTable2(r *Table2Result) string {
	header := []string{"ZIP (" + r.City + ")", "true intrusion", "true fire", "incidents"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{row.ZIP,
			fmt.Sprintf("%d", row.TrueIntrusion),
			fmt.Sprintf("%d", row.TrueFire),
			"[unknown]"})
	}
	rows = append(rows, []string{"city total",
		fmt.Sprintf("%d", r.AlarmIntrusion),
		fmt.Sprintf("%d", r.AlarmFire),
		fmt.Sprintf("intrusion %d / fire %d", r.CityIntrusionTotal, r.CityFireTotal)})
	return "Table 2: ZIP-level true alarms vs city-level incident reports\n" +
		renderTable(header, rows)
}

// Fig7Row pairs, per location, the number of true fire/intrusion
// alarms with the number of collected incident reports.
type Fig7Row struct {
	Place      string
	TrueAlarms int
	Incidents  int
}

// Fig7 reproduces the discrepancy chart: for the locations with the
// most true fire/intrusion alarms, how few incident reports exist.
func Fig7(env *Env, topN int, deltaT time.Duration) []Fig7Row {
	if topN <= 0 {
		topN = 10
	}
	if deltaT <= 0 {
		deltaT = time.Minute
	}
	gaz := env.World().Gaz
	model := env.RiskModel()
	trueByPlace := map[string]int{}
	dt := deltaT.Seconds()
	for _, a := range env.Alarms() {
		if a.Duration < dt || (a.Type != alarm.TypeFire && a.Type != alarm.TypeIntrusion) {
			continue
		}
		if p, ok := gaz.ByZIP(a.ZIP); ok {
			trueByPlace[p.Name]++
		}
	}
	rows := make([]Fig7Row, 0, len(trueByPlace))
	for place, n := range trueByPlace {
		rows = append(rows, Fig7Row{Place: place, TrueAlarms: n, Incidents: model.IncidentCount(place)})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].TrueAlarms != rows[j].TrueAlarms {
			return rows[i].TrueAlarms > rows[j].TrueAlarms
		}
		return rows[i].Place < rows[j].Place
	})
	if len(rows) > topN {
		rows = rows[:topN]
	}
	return rows
}

// RenderFig7 formats the discrepancy rows.
func RenderFig7(rows []Fig7Row) string {
	header := []string{"location", "true F/I alarms", "incident reports"}
	var tbl [][]string
	for _, r := range rows {
		tbl = append(tbl, []string{r.Place, fmt.Sprintf("%d", r.TrueAlarms), fmt.Sprintf("%d", r.Incidents)})
	}
	return "Figure 7: true fire/intrusion alarms vs collected incident reports\n" +
		renderTable(header, tbl)
}
