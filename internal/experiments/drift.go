package experiments

import (
	"fmt"
	"os"
	"time"

	"alarmverify/internal/alarm"
	"alarmverify/internal/core"
	"alarmverify/internal/docstore"
	"alarmverify/internal/ml"
	"alarmverify/internal/modelreg"
)

// DriftRecovery is the model-lifecycle scenario the paper's §4.1
// "trained periodically offline" workflow implies but never
// exercises: the serving model goes stale against drifted traffic and
// only operator feedback can recover it.
//
// The drift is deliberately invisible to the Δt label heuristic: one
// sensor-type/software-version cohort (think: a firmware rollout that
// auto-resets genuinely true alarms within seconds) becomes 100% true
// alarms, while its durations still look like false alarms. The stale
// model — and any retrain on heuristic labels alone — keeps waving the
// cohort through. Operator verdicts recorded through the feedback
// path carry the correction; the Retrainer folds them into the next
// train set, shadow-evaluates the candidate, registers it and
// hot-swaps it live.

// DriftRecoveryResult records the scenario's before/after.
type DriftRecoveryResult struct {
	// Cohort is the drifted "<sensorType>/<softwareVersion>" build.
	Cohort string
	// CohortHoldout counts drifted alarms in the evaluation holdout.
	CohortHoldout int
	// FeedbackRecords counts the operator verdicts injected.
	FeedbackRecords int
	// StaleAccuracy / RecoveredAccuracy are whole-holdout accuracies
	// (operator verdicts as ground truth for the cohort) before and
	// after the feedback-driven retrain + swap.
	StaleAccuracy     float64
	RecoveredAccuracy float64
	// CohortStaleAccuracy / CohortRecoveredAccuracy restrict the same
	// comparison to the drifted cohort — the headline recovery.
	CohortStaleAccuracy     float64
	CohortRecoveredAccuracy float64
	// Swapped and Version report the lifecycle outcome: whether the
	// candidate won the shadow evaluation and which registry version
	// it was committed as.
	Swapped bool
	Version int
}

// cohortKey identifies an alarm's sensor build.
func cohortKey(a *alarm.Alarm) string {
	return a.SensorType + "/" + a.SoftwareVersion
}

// DriftRecovery runs the scenario at the environment's scale and
// returns the before/after measurements.
func DriftRecovery(env *Env) (*DriftRecoveryResult, error) {
	alarms := env.Alarms()
	trainN := len(alarms) / 2
	clf, err := ClassifierFor(core.RandomForest, env.Scale)
	if err != nil {
		return nil, err
	}
	vcfg := core.DefaultVerifierConfig()
	vcfg.Classifier = clf
	live, err := core.Train(alarms[:trainN], vcfg)
	if err != nil {
		return nil, err
	}

	// The serve window: feed the first 70% into the history (these are
	// the alarms the retrainer can reach), hold out the rest for the
	// before/after evaluation.
	window := alarms[trainN:]
	feedN := len(window) * 7 / 10
	fed, holdout := window[:feedN], window[feedN:]

	// Pick the drifted cohort: among well-represented sensor builds,
	// the one the Δt heuristic considers most false. Overriding it to
	// all-true is maximal drift — the stale model (trained on the
	// heuristic) confidently waves exactly this cohort through.
	type buildStats struct{ n, heuristicTrue int }
	counts := map[string]*buildStats{}
	for i := range fed {
		k := cohortKey(&fed[i])
		st := counts[k]
		if st == nil {
			st = &buildStats{}
			counts[k] = st
		}
		st.n++
		if alarm.DurationLabel(time.Duration(fed[i].Duration*float64(time.Second)), time.Minute) == alarm.True {
			st.heuristicTrue++
		}
	}
	// Prefer false-leaning builds (heuristic-true rate < 0.5) with the
	// widest support, so the feedback both contradicts the stale model
	// and gives the retrainer enough corrected examples to learn from.
	cohort, bestFalse := "", 0
	for k, st := range counts {
		if st.n < 30 {
			continue
		}
		falses := st.n - st.heuristicTrue
		if float64(st.heuristicTrue)/float64(st.n) < 0.5 && falses > bestFalse {
			cohort, bestFalse = k, falses
		}
	}
	if cohort == "" {
		// No clearly false-leaning build: fall back to the least-true
		// eligible one.
		bestRate := 2.0
		for k, st := range counts {
			if st.n < 30 {
				continue
			}
			if rate := float64(st.heuristicTrue) / float64(st.n); rate < bestRate {
				cohort, bestRate = k, rate
			}
		}
	}
	if cohort == "" {
		return nil, fmt.Errorf("experiments: drift: no sensor build with enough support")
	}

	history, err := core.NewHistory(docstore.NewDB())
	if err != nil {
		return nil, err
	}
	// The history holds everything ever ingested — the boot train set
	// plus the served window — exactly what a long-running deployment's
	// document store accumulates. Without the boot data the candidate
	// would train on a strictly smaller set than the live model did and
	// lose the shadow evaluation on sample size alone.
	history.RecordBatch(alarms[:trainN])
	history.RecordBatch(fed)
	truth := make(map[int64]alarm.Label)
	fbN := 0
	for i := range fed {
		if cohortKey(&fed[i]) == cohort {
			history.RecordFeedback(core.Feedback{
				AlarmID:   fed[i].ID,
				DeviceMAC: fed[i].DeviceMAC,
				Verdict:   alarm.True,
				At:        fed[i].Timestamp,
			})
			fbN++
		}
	}
	res := &DriftRecoveryResult{Cohort: cohort, FeedbackRecords: fbN}

	// Ground truth on the holdout: the drifted cohort is genuinely
	// true (the operators' eventual verdict), everything else follows
	// the heuristic.
	var cohortHoldout []alarm.Alarm
	for i := range holdout {
		if cohortKey(&holdout[i]) == cohort {
			truth[holdout[i].ID] = alarm.True
			cohortHoldout = append(cohortHoldout, holdout[i])
		}
	}
	res.CohortHoldout = len(cohortHoldout)
	if res.CohortHoldout == 0 {
		return nil, fmt.Errorf("experiments: drift: cohort %q absent from holdout", cohort)
	}

	staleCM, err := live.EvaluateWithFeedback(holdout, truth)
	if err != nil {
		return nil, err
	}
	res.StaleAccuracy = staleCM.Accuracy()
	cohortStaleCM, err := live.EvaluateWithFeedback(cohortHoldout, truth)
	if err != nil {
		return nil, err
	}
	res.CohortStaleAccuracy = cohortStaleCM.Accuracy()

	// The lifecycle: registry → retrainer → shadow eval → hot swap.
	regDir, err := os.MkdirTemp("", "alarmverify-drift-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(regDir)
	reg, err := modelreg.Open(regDir)
	if err != nil {
		return nil, err
	}
	rt := core.NewRetrainer(live, history, reg, core.RetrainerConfig{
		Verifier: core.DefaultVerifierConfig(),
		NewClassifier: func() (ml.Classifier, error) {
			return ClassifierFor(core.RandomForest, env.Scale)
		},
	})
	rr, err := rt.RetrainNow()
	if err != nil {
		return nil, err
	}
	res.Swapped = rr.Swapped
	res.Version = rr.Version

	recoveredCM, err := live.EvaluateWithFeedback(holdout, truth)
	if err != nil {
		return nil, err
	}
	res.RecoveredAccuracy = recoveredCM.Accuracy()
	cohortRecoveredCM, err := live.EvaluateWithFeedback(cohortHoldout, truth)
	if err != nil {
		return nil, err
	}
	res.CohortRecoveredAccuracy = cohortRecoveredCM.Accuracy()
	return res, nil
}

// RenderDriftRecovery formats the scenario outcome.
func RenderDriftRecovery(r *DriftRecoveryResult) string {
	lifecycle := "candidate rejected (shadow evaluation lost)"
	if r.Swapped {
		lifecycle = fmt.Sprintf("hot-swapped to registry v%04d", r.Version)
	}
	return fmt.Sprintf(`Drift recovery (model lifecycle: feedback -> retrain -> shadow eval -> swap)
  drifted cohort:        %s (100%% true alarms, durations still heuristic-false)
  operator feedback:     %d verdicts
  %s
  holdout accuracy:      stale %.4f  ->  recovered %.4f
  cohort accuracy:       stale %.4f  ->  recovered %.4f   (%d cohort alarms)
`,
		r.Cohort, r.FeedbackRecords, lifecycle,
		r.StaleAccuracy, r.RecoveredAccuracy,
		r.CohortStaleAccuracy, r.CohortRecoveredAccuracy, r.CohortHoldout)
}
