package experiments

import (
	"runtime"
	"strings"
	"testing"
	"time"

	"alarmverify/internal/core"
)

// tinyScale keeps unit tests fast; the shape assertions here are the
// coarse ones (who wins, what dominates), with finer calibration
// covered in internal/dataset.
func tinyScale() Scale {
	s := SmallScale()
	s.Name = "tiny"
	s.SitasysAlarms = 8_000
	s.SitasysDevices = 300
	s.LFBIncidents = 6_000
	s.SFRecords = 400_000
	s.IncidentReports = 600
	s.NumPlaces = 200
	s.NumBigCities = 6
	s.IncidentPlaces = 80
	s.RFTrees = 16
	s.RFDepth = 16
	s.SVMIters = 200
	s.LRIters = 80
	s.DNNEpochs = 8
	s.StreamAlarms = 8_000
	s.Partitions = 4
	return s
}

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"small", "medium", "paper", ""} {
		if _, err := ScaleByName(name); err != nil {
			t.Errorf("ScaleByName(%q): %v", name, err)
		}
	}
	if _, err := ScaleByName("galactic"); err == nil {
		t.Error("unknown scale accepted")
	}
}

func TestEnvCachesDatasets(t *testing.T) {
	env := NewEnv(tinyScale())
	a1 := env.Alarms()
	a2 := env.Alarms()
	if &a1[0] != &a2[0] {
		t.Error("alarms regenerated between calls")
	}
	i1 := env.Incidents()
	i2 := env.Incidents()
	if len(i1) == 0 || len(i1) != len(i2) {
		t.Errorf("incident caching broken: %d vs %d", len(i1), len(i2))
	}
}

func TestFig9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("trains many models")
	}
	env := NewEnv(tinyScale())
	deltas := []time.Duration{time.Minute, 10 * time.Minute}
	results, err := Fig9(env, deltas)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(deltas)*4 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if r.Accuracy < 0.6 || r.Accuracy > 1 {
			t.Errorf("%s @ %v accuracy %.3f out of band", r.Algorithm, r.DeltaT, r.Accuracy)
		}
	}
	out := RenderFig9(results)
	if !strings.Contains(out, "delta_t") || !strings.Contains(out, "rf") {
		t.Errorf("render missing columns:\n%s", out)
	}
}

func TestFig10AndTable8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("trains 12 models")
	}
	env := NewEnv(tinyScale())
	results, err := Fig10AndTable8(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 12 {
		t.Fatalf("cells = %d, want 12", len(results))
	}
	get := func(d DatasetName, a core.Algorithm) Fig10Result {
		for _, r := range results {
			if r.Dataset == d && r.Algorithm == a {
				return r
			}
		}
		t.Fatalf("missing cell %s/%s", d, a)
		return Fig10Result{}
	}
	// Shape: Sitasys RF beats SF RF (more features, more data).
	if get(Sitasys, core.RandomForest).Accuracy <= get(SanFrancisco, core.RandomForest).Accuracy {
		t.Errorf("Sitasys should beat SF: %.3f vs %.3f",
			get(Sitasys, core.RandomForest).Accuracy,
			get(SanFrancisco, core.RandomForest).Accuracy)
	}
	// Table 8 shape: LR trains fastest on Sitasys; SF trains much
	// faster than LFB (tiny usable subset).
	lr := get(Sitasys, core.LogisticRegression).TrainTime
	for _, a := range []core.Algorithm{core.RandomForest, core.DeepNeuralNetwork} {
		if tt := get(Sitasys, a).TrainTime; tt < lr {
			t.Errorf("%s trained faster (%v) than LR (%v)", a, tt, lr)
		}
	}
	if get(SanFrancisco, core.RandomForest).TrainRows >= get(LondonFire, core.RandomForest).TrainRows {
		t.Error("SF usable subset should be far smaller than LFB")
	}
	if out := RenderTable8(results); !strings.Contains(out, "Table 8") {
		t.Error("render broken")
	}
}

func TestTable9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("trains 16+ models")
	}
	env := NewEnv(tinyScale())
	rows, err := Table9(env, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 16 {
		t.Fatalf("rows = %d, want 16 (4 scenarios × 4 treatments)", len(rows))
	}
	counts := map[Scenario]int{}
	for _, r := range rows {
		counts[r.Scenario] = r.NumAlarms
		if r.Accuracy < 0.5 {
			t.Errorf("scenario %s %s accuracy %.3f", r.Scenario, r.Treatment, r.Accuracy)
		}
	}
	// Scenario filters strictly shrink the alarm sets: a ⊇ b, a ⊇ c ⊇ d.
	if !(counts[ScenarioA] > counts[ScenarioB] && counts[ScenarioA] > counts[ScenarioC] &&
		counts[ScenarioC] > counts[ScenarioD]) {
		t.Errorf("scenario sizes wrong: %v", counts)
	}
	if out := RenderTable9(rows); !strings.Contains(out, "baseline") {
		t.Error("render broken")
	}
}

func TestTable2AndFig7(t *testing.T) {
	env := NewEnv(tinyScale())
	res, err := Table2(env, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 2 {
		t.Fatalf("multi-ZIP city has %d districts", len(res.Rows))
	}
	if res.CityFireTotal+res.CityIntrusionTotal == 0 {
		t.Error("covered city has no incidents")
	}
	if out := RenderTable2(res); !strings.Contains(out, "[unknown]") {
		t.Error("district-level incidents must render as unknown")
	}
	rows := Fig7(env, 8, time.Minute)
	if len(rows) != 8 {
		t.Fatalf("fig7 rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].TrueAlarms > rows[i-1].TrueAlarms {
			t.Error("fig7 not sorted by true alarms")
		}
	}
	// The discrepancy the paper shows: reports are much scarcer than
	// true alarms for the hottest locations.
	if rows[0].Incidents >= rows[0].TrueAlarms {
		t.Errorf("expected report scarcity: %d incidents vs %d alarms",
			rows[0].Incidents, rows[0].TrueAlarms)
	}
}

func TestFig11SerializerShape(t *testing.T) {
	env := NewEnv(tinyScale())
	results, err := Fig11(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	var reflectRes, fastRes Fig11Result
	for _, r := range results {
		switch r.Codec {
		case "reflect":
			reflectRes = r
		case "fast":
			fastRes = r
		}
	}
	// The Figure 11 headline: the specialized serializer clearly beats
	// the reflection-based one on both sides.
	if fastRes.ProducerPerSec <= reflectRes.ProducerPerSec {
		t.Errorf("fast producer (%.0f/s) should beat reflect (%.0f/s)",
			fastRes.ProducerPerSec, reflectRes.ProducerPerSec)
	}
	if fastRes.ConsumerPerSec <= reflectRes.ConsumerPerSec {
		t.Errorf("fast consumer (%.0f/s) should beat reflect (%.0f/s)",
			fastRes.ConsumerPerSec, reflectRes.ConsumerPerSec)
	}
	// Wire size stays under 1 KB as in §5.5.2.
	if fastRes.AvgMessageBytes >= 1024 {
		t.Errorf("alarm messages %f bytes, want < 1 KB", fastRes.AvgMessageBytes)
	}
}

func TestFig12MLDominates(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end run")
	}
	env := NewEnv(tinyScale())
	res, err := Fig12(env)
	if err != nil {
		t.Fatal(err)
	}
	if res.Records == 0 {
		t.Fatal("no records processed")
	}
	_, _, hist, mlShare := res.Shares()
	// Paper: ML ≈ 80 % of batch time, history insignificant.
	if mlShare < 0.4 {
		t.Errorf("ML share %.2f; expected the dominant component", mlShare)
	}
	if hist > mlShare {
		t.Errorf("history share %.2f exceeds ML %.2f", hist, mlShare)
	}
	if out := RenderFig12(res); !strings.Contains(out, "machine learning") {
		t.Error("render broken")
	}
}

func TestEndToEndLadder(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end run")
	}
	env := NewEnv(tinyScale())
	results, err := EndToEnd(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("configs = %d", len(results))
	}
	for _, r := range results {
		if r.Records == 0 {
			t.Errorf("config %q processed nothing", r.Label)
		}
	}
	// The optimized configuration beats the serial one (§5.5.2) —
	// but only when the host actually has parallel hardware; on a
	// single-core machine the partitioning cannot pay off in
	// wall-clock terms (the overlap mechanics are asserted in the
	// stream package instead).
	if runtime.GOMAXPROCS(0) > 1 && results[2].PerSec <= results[0].PerSec {
		t.Errorf("optimized (%.0f/s) should beat serial (%.0f/s)",
			results[2].PerSec, results[0].PerSec)
	}
}

func TestFig6Stats(t *testing.T) {
	env := NewEnv(tinyScale())
	perYear, falseRatio := Fig6(env)
	if len(perYear) != 8 {
		t.Errorf("years = %d", len(perYear))
	}
	if falseRatio < 0.40 || falseRatio > 0.56 {
		t.Errorf("false ratio %.3f", falseRatio)
	}
	if out := RenderFig6(perYear, falseRatio); !strings.Contains(out, "Figure 6") {
		t.Error("render broken")
	}
}

func TestFig8AndCorpus(t *testing.T) {
	env := NewEnv(tinyScale())
	m := Fig8(env, 40, 12)
	if !strings.Contains(m, "Security map") {
		t.Error("map render broken")
	}
	st := CorpusStats(env)
	if st.Total == 0 || st.German == 0 || st.French == 0 || st.English == 0 {
		t.Errorf("corpus stats = %+v", st)
	}
	if st.German <= st.French || st.French <= st.English {
		t.Errorf("language mix should be de > fr > en: %+v", st)
	}
	if !strings.Contains(RenderCorpusStats(st), "reports") {
		t.Error("corpus render broken")
	}
}

func TestTable1AndParams(t *testing.T) {
	if !strings.Contains(Table1(), "San Francisco") {
		t.Error("table 1 broken")
	}
	if !strings.Contains(Params(), "Nesterov") {
		t.Error("params broken")
	}
}

func TestGridSearchDemo(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a grid")
	}
	env := NewEnv(tinyScale())
	results, err := GridSearchDemo(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 9 {
		t.Fatalf("grid points = %d, want 9", len(results))
	}
	best := results[0].Point
	if best["trees"] == 5 && best["depth"] == 6 {
		t.Errorf("grid search picked the weakest corner: %+v", results[0])
	}
}

func TestDriftRecovery(t *testing.T) {
	env := NewEnv(tinyScale())
	res, err := DriftRecovery(env)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Swapped || res.Version < 1 {
		t.Fatalf("lifecycle did not swap: %+v", res)
	}
	if res.FeedbackRecords == 0 || res.CohortHoldout == 0 {
		t.Fatalf("degenerate scenario: %+v", res)
	}
	// The stale model is blind to the drift (the Δt heuristic labels
	// the cohort false); the feedback-driven retrain must recover the
	// cohort decisively and not regress overall.
	if res.CohortRecoveredAccuracy <= res.CohortStaleAccuracy {
		t.Fatalf("no cohort recovery: stale %.4f, recovered %.4f",
			res.CohortStaleAccuracy, res.CohortRecoveredAccuracy)
	}
	if res.RecoveredAccuracy < res.StaleAccuracy {
		t.Fatalf("overall accuracy regressed: stale %.4f, recovered %.4f",
			res.StaleAccuracy, res.RecoveredAccuracy)
	}
	out := RenderDriftRecovery(res)
	if !strings.Contains(out, "Drift recovery") || !strings.Contains(out, res.Cohort) {
		t.Fatalf("render missing fields:\n%s", out)
	}
}
