package experiments

import (
	"fmt"
	"os"
	"time"

	"alarmverify/internal/alarm"
	"alarmverify/internal/broker"
	"alarmverify/internal/codec"
	"alarmverify/internal/core"
	"alarmverify/internal/docstore"
	"alarmverify/internal/serve"
)

// DurabilityResult quantifies what WAL durability costs and buys: the
// same blast workload through a memory-only history and a WAL-backed
// one (group fsync at the default interval), then a crash-style reopen
// of the durable directory.
type DurabilityResult struct {
	// Records is the blast size per cell.
	Records int
	// MemPerSec and WALPerSec are the measured service throughputs.
	MemPerSec, WALPerSec float64
	// WALRatio is WALPerSec / MemPerSec — the durability tax. The PR 7
	// acceptance bar keeps this ≥ 0.7 at the default sync interval.
	WALRatio float64
	// Recovered is how many alarms the reopened store replayed, and
	// RecoveryTime how long Open took to do it.
	Recovered    int
	RecoveryTime time.Duration
}

// durabilityCell drains a preloaded backlog through the sharded
// service into the given history and returns the wall-clock rate.
func durabilityCell(v *core.Verifier, replay []alarm.Alarm, h *core.History) (float64, error) {
	b := broker.New()
	defer b.Close()
	topic, err := b.CreateTopic("alarms", 4)
	if err != nil {
		return 0, err
	}
	prod := core.NewProducerApp(topic, codec.FastCodec{})
	prod.Threads = 2
	if _, err := prod.Replay(replay, 0); err != nil {
		return 0, err
	}
	h.EnableWriteBehind(4096)
	cfg := serve.DefaultConfig()
	cfg.Shards = 2
	cfg.Consumer.Workers = 2
	cfg.Consumer.MaxPerBatch = 512
	cfg.Consumer.PollTimeout = 2 * time.Millisecond
	svc, err := serve.New(b, "alarms", "durability", v, h, cfg)
	if err != nil {
		return 0, err
	}
	defer svc.Close()
	start := time.Now()
	svc.Start()
	deadline := time.Now().Add(120 * time.Second)
	for svc.Records() < len(replay) {
		if err := svc.Err(); err != nil {
			return 0, err
		}
		if time.Now().After(deadline) {
			return 0, fmt.Errorf("processed %d of %d within 120s", svc.Records(), len(replay))
		}
		time.Sleep(2 * time.Millisecond)
	}
	svc.Stop()
	elapsed := time.Since(start)
	if elapsed <= 0 {
		return 0, fmt.Errorf("cell elapsed %s", elapsed)
	}
	return float64(len(replay)) / elapsed.Seconds(), nil
}

// Durability runs the WAL-cost experiment: identical blast workloads
// against a memory-only and a WAL-backed history (default group-fsync
// interval), then reopens the durable directory the way a restarted
// alarmd would and reports replay size and time. EXPERIMENTS.md and
// PERFORMANCE.md record the measured tax.
func Durability(env *Env) (*DurabilityResult, error) {
	n := 4096
	if env.Scale.Name == "paper" {
		n = 16384
	}
	verifier, replay, err := streamVerifier(env, 5_000)
	if err != nil {
		return nil, err
	}
	if n > len(replay) {
		n = len(replay)
	}
	replay = replay[:n]

	memHist, err := core.NewHistory(docstore.NewDBWithPartitions(4))
	if err != nil {
		return nil, err
	}
	memRate, err := durabilityCell(verifier, replay, memHist)
	if err != nil {
		return nil, fmt.Errorf("memory cell: %w", err)
	}
	memHist.Close()

	dir, err := os.MkdirTemp("", "durability-exp-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	db, err := docstore.OpenDB(dir, docstore.DurableOptions{Partitions: 4})
	if err != nil {
		return nil, err
	}
	walHist, err := core.NewHistory(db)
	if err != nil {
		return nil, err
	}
	walRate, err := durabilityCell(verifier, replay, walHist)
	if err != nil {
		return nil, fmt.Errorf("wal cell: %w", err)
	}
	walHist.Close()
	if err := db.Close(); err != nil {
		return nil, err
	}

	start := time.Now()
	db2, err := docstore.OpenDB(dir, docstore.DurableOptions{Partitions: 4, SyncInterval: -1, CheckpointInterval: -1})
	if err != nil {
		return nil, fmt.Errorf("reopen: %w", err)
	}
	recoveryTime := time.Since(start)
	h2, err := core.NewHistory(db2)
	if err != nil {
		return nil, err
	}
	recovered := h2.Len()
	if err := db2.Close(); err != nil {
		return nil, err
	}
	if recovered != len(replay) {
		return nil, fmt.Errorf("recovered %d alarms, want %d", recovered, len(replay))
	}

	res := &DurabilityResult{
		Records:      len(replay),
		MemPerSec:    memRate,
		WALPerSec:    walRate,
		Recovered:    recovered,
		RecoveryTime: recoveryTime,
	}
	if memRate > 0 {
		res.WALRatio = walRate / memRate
	}
	return res, nil
}

// RenderDurability formats the experiment.
func RenderDurability(r *DurabilityResult) string {
	return fmt.Sprintf(
		"Durability tax (%d alarms through the sharded service):\n"+
			"  memory-only : %8.0f alarms/s\n"+
			"  WAL-backed  : %8.0f alarms/s  (%.0f%% of memory; group fsync every %s)\n"+
			"  recovery    : %d alarms replayed in %s on reopen\n",
		r.Records, r.MemPerSec, r.WALPerSec, 100*r.WALRatio,
		docstore.DefaultWALSyncInterval, r.Recovered, r.RecoveryTime.Round(time.Millisecond))
}
