// Package experiments regenerates every table and figure of the
// paper's evaluation (§5). Each experiment is a pure function of a
// Scale, so the same code drives the quick benchmarks (SmallScale),
// the CI-sized runs (MediumScale) and a paper-sized run (PaperScale).
//
// The per-experiment index lives in DESIGN.md; measured-vs-paper
// numbers are recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"alarmverify/internal/alarm"
	"alarmverify/internal/core"
	"alarmverify/internal/dataset"
	"alarmverify/internal/ml"
	"alarmverify/internal/risk"
	"alarmverify/internal/textproc"
)

// Scale sizes every experiment. The paper's sizes are the PaperScale
// values; smaller scales preserve every ratio the experiments assert.
type Scale struct {
	Name string

	// Dataset sizes.
	SitasysAlarms   int
	SitasysDevices  int
	LFBIncidents    int
	SFRecords       int
	IncidentReports int
	NumPlaces       int
	NumBigCities    int
	IncidentPlaces  int

	// Model budgets (training cost scales with these).
	RFTrees   int
	RFDepth   int
	SVMIters  int
	LRIters   int
	DNNEpochs int

	// Streaming sizes.
	StreamAlarms int
	Partitions   int
}

// SmallScale finishes each experiment in seconds — the default for
// `go test -bench` and quick runs.
func SmallScale() Scale {
	return Scale{
		Name:            "small",
		SitasysAlarms:   20_000,
		SitasysDevices:  400,
		LFBIncidents:    20_000,
		SFRecords:       1_200_000,
		IncidentReports: 1_200,
		NumPlaces:       300,
		NumBigCities:    8,
		IncidentPlaces:  120,
		RFTrees:         50,
		RFDepth:         30,
		SVMIters:        400,
		LRIters:         150,
		DNNEpochs:       15,
		StreamAlarms:    20_000,
		Partitions:      4,
	}
}

// MediumScale is a few minutes per experiment.
func MediumScale() Scale {
	return Scale{
		Name:            "medium",
		SitasysAlarms:   80_000,
		SitasysDevices:  2_000,
		LFBIncidents:    120_000,
		SFRecords:       4_300_000,
		IncidentReports: 5_056,
		NumPlaces:       1_200,
		NumBigCities:    15,
		IncidentPlaces:  400,
		RFTrees:         50,
		RFDepth:         30,
		SVMIters:        1_000,
		LRIters:         300,
		DNNEpochs:       30,
		StreamAlarms:    80_000,
		Partitions:      8,
	}
}

// PaperScale matches the paper's dataset sizes and published
// hyper-parameters (Tables 3–7). Expect long runtimes.
func PaperScale() Scale {
	return Scale{
		Name:            "paper",
		SitasysAlarms:   350_000,
		SitasysDevices:  8_000,
		LFBIncidents:    885_000,
		SFRecords:       4_300_000,
		IncidentReports: 5_056,
		NumPlaces:       4_100,
		NumBigCities:    25,
		IncidentPlaces:  1_027,
		RFTrees:         50,
		RFDepth:         30,
		SVMIters:        2_000,
		LRIters:         500,
		DNNEpochs:       10_000,
		StreamAlarms:    350_000,
		Partitions:      8,
	}
}

// ScaleByName resolves a scale flag value.
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "small", "":
		return SmallScale(), nil
	case "medium":
		return MediumScale(), nil
	case "paper":
		return PaperScale(), nil
	default:
		return Scale{}, fmt.Errorf("experiments: unknown scale %q (small|medium|paper)", name)
	}
}

// Env lazily materializes the shared datasets for one scale so
// experiments that need the same data do not regenerate it.
type Env struct {
	Scale Scale

	once      sync.Once
	world     *dataset.World
	alarms    []alarm.Alarm
	incOnce   sync.Once
	incidents []textproc.Incident
	riskModel *risk.Model
}

// NewEnv creates an environment for the scale.
func NewEnv(s Scale) *Env { return &Env{Scale: s} }

// World returns the synthetic country.
func (e *Env) World() *dataset.World {
	e.once.Do(e.build)
	return e.world
}

// Alarms returns the Sitasys-like alarm stream.
func (e *Env) Alarms() []alarm.Alarm {
	e.once.Do(e.build)
	return e.alarms
}

func (e *Env) build() {
	gaz := risk.NewGazetteer(risk.GazetteerConfig{
		NumPlaces:      e.Scale.NumPlaces,
		NumBigCities:   e.Scale.NumBigCities,
		MaxZIPsPerCity: 8,
		Seed:           1871,
	})
	e.world = dataset.NewWorldWith(gaz, 42)
	cfg := dataset.DefaultSitasysConfig()
	cfg.NumAlarms = e.Scale.SitasysAlarms
	cfg.NumDevices = e.Scale.SitasysDevices
	e.alarms = dataset.GenerateSitasys(e.world, cfg)
}

// Incidents returns the annotated incident corpus (running the text
// pipeline once).
func (e *Env) Incidents() []textproc.Incident {
	e.incOnce.Do(func() {
		cfg := dataset.DefaultIncidentConfig()
		cfg.NumReports = e.Scale.IncidentReports
		cfg.NumLocations = e.Scale.IncidentPlaces
		reports := dataset.GenerateIncidentReports(e.World(), cfg)
		pipeline := textproc.NewPipeline(e.World().Gaz.Names())
		e.incidents, _ = pipeline.Process(reports)
		e.riskModel = risk.BuildModel(e.World().Gaz, e.incidents)
	})
	return e.incidents
}

// RiskModel returns the per-location risk model over the incident
// corpus.
func (e *Env) RiskModel() *risk.Model {
	e.Incidents()
	return e.riskModel
}

// ClassifierFor builds a classifier for the algorithm with budgets
// from the scale (PaperScale uses exactly the Tables 3–7 values).
func ClassifierFor(algo core.Algorithm, s Scale) (ml.Classifier, error) {
	switch algo {
	case core.RandomForest:
		cfg := ml.DefaultRandomForestConfig()
		cfg.NumTrees = s.RFTrees
		cfg.MaxDepth = s.RFDepth
		return ml.NewRandomForest(cfg), nil
	case core.SupportVectorMachine:
		cfg := ml.DefaultSVMConfig()
		cfg.MaxIterations = s.SVMIters
		return ml.NewSVM(cfg), nil
	case core.LogisticRegression:
		cfg := ml.DefaultLogisticRegressionConfig()
		cfg.MaxIterations = s.LRIters
		return ml.NewLogisticRegression(cfg), nil
	case core.DeepNeuralNetwork:
		cfg := ml.DefaultDNNConfig()
		cfg.MaxEpochs = s.DNNEpochs
		cfg.Patience = 8
		return ml.NewDNN(cfg), nil
	default:
		return nil, fmt.Errorf("%w: %q", core.ErrUnknownAlgorithm, algo)
	}
}

// renderTable formats rows as an aligned text table.
func renderTable(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			for p := len(c); p < widths[i]; p++ {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, r := range rows {
		writeRow(r)
	}
	return sb.String()
}

func fmtDur(d time.Duration) string {
	return d.Round(time.Millisecond).String()
}

func pct(f float64) string { return fmt.Sprintf("%.2f", 100*f) }
