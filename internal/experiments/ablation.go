package experiments

import (
	"time"

	"alarmverify/internal/alarm"
	"alarmverify/internal/broker"
	"alarmverify/internal/codec"
	"alarmverify/internal/core"
)

// AblationCache measures the §6.2 lesson ("Cache data that will be
// reused"): total consumer batch time with and without caching the
// deserialized stream. The uncached consumer recomputes the lineage
// for the distinct-devices pass and the ML pass.
func AblationCache(env *Env) (cached, uncached time.Duration, err error) {
	verifier, replay, err := streamVerifier(env, 5_000)
	if err != nil {
		return 0, 0, err
	}
	if len(replay) > env.Scale.StreamAlarms {
		replay = replay[:env.Scale.StreamAlarms]
	}
	run := func(cache bool) (time.Duration, error) {
		b := broker.New()
		defer b.Close()
		topic, err := b.CreateTopic("alarms", env.Scale.Partitions)
		if err != nil {
			return 0, err
		}
		prod := core.NewProducerApp(topic, codec.ReflectCodec{})
		prod.Threads = 2
		if _, err := prod.Replay(replay, 0); err != nil {
			return 0, err
		}
		cfg := core.DefaultConsumerConfig()
		cfg.Codec = codec.ReflectCodec{} // slow codec makes recompute visible
		cfg.CacheDecoded = cache
		cons, err := core.NewConsumerApp(b, "alarms", "ablate", "c1", verifier, nil, cfg)
		if err != nil {
			return 0, err
		}
		defer cons.Close()
		if _, err := cons.ProcessBatches(1); err != nil {
			return 0, err
		}
		return cons.Times().Total(), nil
	}
	if cached, err = run(true); err != nil {
		return 0, 0, err
	}
	if uncached, err = run(false); err != nil {
		return 0, 0, err
	}
	return cached, uncached, nil
}

// AblationDeltaTBalance measures how the duration-threshold label
// heuristic shifts class balance with Δt — the sensitivity behind the
// paper's Figure 9 stability claim.
func AblationDeltaTBalance(env *Env, deltas []time.Duration) map[time.Duration]float64 {
	out := make(map[time.Duration]float64, len(deltas))
	alarms := env.Alarms()
	for _, dt := range deltas {
		pos := 0
		for i := range alarms {
			if alarm.DurationLabel(time.Duration(alarms[i].Duration*float64(time.Second)), dt) == alarm.True {
				pos++
			}
		}
		out[dt] = float64(pos) / float64(len(alarms))
	}
	return out
}
