package experiments

import (
	"fmt"
	"time"

	"alarmverify/internal/alarm"
	"alarmverify/internal/broker"
	"alarmverify/internal/codec"
	"alarmverify/internal/core"
	"alarmverify/internal/docstore"
	"alarmverify/internal/loadgen"
	"alarmverify/internal/metrics"
	"alarmverify/internal/serve"
)

// OverloadCell is one (scenario × shedding) measurement: offered
// load, what the service processed vs dropped, and the end-to-end
// latency quantiles of the processed records.
type OverloadCell struct {
	Scenario  string
	Shed      bool
	Offered   int
	Sent      int
	Processed int
	// ShedRecords counts records dropped by bounded-queue shedding.
	ShedRecords int64
	// PerSec is the service's wall-clock processing rate over the cell.
	PerSec float64
	// P50/P95/P99 are enqueue-to-commit latencies of processed records.
	P50, P95, P99 time.Duration
}

// OverloadResult is the full sweep plus the calibration context that
// sized it.
type OverloadResult struct {
	// CapacityPerSec is the measured steady-state service capacity the
	// scenario rates were derived from, making the sweep reproduce the
	// same overload ratios on any hardware.
	CapacityPerSec float64
	// BaseRate is the per-scenario base arrival rate (≈ a third of
	// the blast-measured capacity; see OverloadWithConfig for why).
	BaseRate float64
	// ShedQueue is the backlog bound used in the shed-on cells.
	ShedQueue int
	// Duration is the offered-stream length per cell.
	Duration time.Duration
	Cells    []OverloadCell
}

// OverloadConfig sizes the sweep; zero values take defaults from the
// scale.
type OverloadConfig struct {
	// Duration is the offered-stream length per cell (default by
	// scale: 2.5s small, 4s medium, 8s paper).
	Duration time.Duration
	// CalibrationRecords sizes the capacity measurement (default 4096).
	CalibrationRecords int
	// DrainTimeout bounds the post-stream backlog drain per cell
	// (default 60s).
	DrainTimeout time.Duration
}

// overloadService builds the deliberately capacity-bounded service
// under test: one shard, one worker per pool, adaptive batching on,
// and a simulated remote-docstore round-trip so persist costs are
// stable across machines. The same configuration serves calibration
// and every sweep cell — only the shed bound varies.
func overloadService(b *broker.Broker, v *core.Verifier, shedQueue int,
	m *metrics.Pipeline) (*serve.Service, *core.History, error) {
	history, err := core.NewHistory(docstore.NewDB())
	if err != nil {
		return nil, nil, err
	}
	history.SetSimulatedRTT(300 * time.Microsecond)
	cfg := serve.DefaultConfig()
	cfg.Shards = 1
	cfg.ShedQueue = shedQueue
	cfg.Consumer.Workers = 1
	cfg.Consumer.ClassifyWorkers = 1
	cfg.Consumer.AdaptiveBatch = true
	cfg.Consumer.AdaptiveMinBatch = 64
	cfg.Consumer.MaxPerBatch = 1024
	cfg.Consumer.PollTimeout = 5 * time.Millisecond
	cfg.Consumer.Metrics = m
	svc, err := serve.New(b, "alarms", "overload", v, history, cfg)
	if err != nil {
		return nil, nil, err
	}
	return svc, history, nil
}

// waitAccounted polls until every sent record is accounted for —
// processed or shed. (Broker lag is not enough: positions advance at
// drain time, long before classify and persist finish.)
func waitAccounted(svc *serve.Service, sent int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if err := svc.Err(); err != nil {
			return err
		}
		st := svc.Stats()
		if st.Records+int(st.ShedRecords) >= sent {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("only %d of %d records accounted for within %s",
				st.Records+int(st.ShedRecords), sent, timeout)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// overloadCapacity measures steady-state service throughput over a
// preloaded backlog — the denominator every scenario rate is derived
// from.
func overloadCapacity(v *core.Verifier, replay []alarm.Alarm, n int) (float64, error) {
	if n > len(replay) {
		n = len(replay)
	}
	b := broker.New()
	defer b.Close()
	topic, err := b.CreateTopic("alarms", 4)
	if err != nil {
		return 0, err
	}
	prod := core.NewProducerApp(topic, codec.FastCodec{})
	prod.Threads = 2
	if _, err := prod.Replay(replay[:n], 0); err != nil {
		return 0, err
	}
	svc, history, err := overloadService(b, v, 0, nil)
	if err != nil {
		return 0, err
	}
	defer history.Close()
	defer svc.Close()
	start := time.Now()
	svc.Start()
	if err := waitAccounted(svc, n, 60*time.Second); err != nil {
		return 0, err
	}
	elapsed := time.Since(start)
	svc.Stop()
	if elapsed <= 0 {
		return 0, fmt.Errorf("calibration elapsed %s", elapsed)
	}
	return float64(n) / elapsed.Seconds(), nil
}

// overloadCell offers one scenario's open-loop stream to a fresh
// service and measures what came out the other side.
func overloadCell(v *core.Verifier, replay []alarm.Alarm, scenario string,
	base float64, shed bool, shedQueue int, cfg OverloadConfig) (*OverloadCell, error) {
	lcfg, err := loadgen.Preset(scenario, base, cfg.Duration)
	if err != nil {
		return nil, err
	}
	lcfg.Seed = 1871
	sched, err := loadgen.Schedule(lcfg, replay)
	if err != nil {
		return nil, err
	}

	b := broker.New()
	defer b.Close()
	topic, err := b.CreateTopic("alarms", 4)
	if err != nil {
		return nil, err
	}
	bound := 0
	if shed {
		bound = shedQueue
	}
	m := metrics.NewPipeline()
	svc, history, err := overloadService(b, v, bound, m)
	if err != nil {
		return nil, err
	}
	defer history.Close()
	defer svc.Close()
	svc.Start()
	start := time.Now()
	driver := &loadgen.Driver{Sink: loadgen.NewBrokerSink(topic, codec.FastCodec{}), Workers: 2}
	st := driver.Run(sched)
	if err := waitAccounted(svc, st.Sent, cfg.DrainTimeout); err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	svc.Stop()
	if err := svc.Err(); err != nil {
		return nil, err
	}

	stats := svc.Stats()
	e2e := m.Snapshot().Stages[metrics.StageE2E]
	cell := &OverloadCell{
		Scenario:    scenario,
		Shed:        shed,
		Offered:     st.Scheduled,
		Sent:        st.Sent,
		Processed:   stats.Records,
		ShedRecords: stats.ShedRecords,
		P50:         e2e.Quantile(0.50),
		P95:         e2e.Quantile(0.95),
		P99:         e2e.Quantile(0.99),
	}
	if elapsed > 0 {
		cell.PerSec = float64(stats.Records) / elapsed.Seconds()
	}
	if got := cell.Processed + int(cell.ShedRecords); got != cell.Sent {
		return nil, fmt.Errorf("%s shed=%v: processed %d + shed %d != sent %d",
			scenario, shed, cell.Processed, cell.ShedRecords, cell.Sent)
	}
	return cell, nil
}

// Overload runs the overload sweep at the scale's default sizing.
func Overload(env *Env) (*OverloadResult, error) {
	return OverloadWithConfig(env, OverloadConfig{})
}

// OverloadWithConfig quantifies the overload story: the same
// capacity-bounded service faces steady, bursty and flash-crowd
// arrival processes, with bounded-queue load shedding off and on.
// Without shedding, a flash crowd's backlog drains late and e2e p99
// collapses into seconds of queueing delay; with the backlog bound,
// the oldest queued records are dropped (and counted) and p99 stays
// bounded. EXPERIMENTS.md records the measured sweep.
func OverloadWithConfig(env *Env, cfg OverloadConfig) (*OverloadResult, error) {
	if cfg.Duration <= 0 {
		switch env.Scale.Name {
		case "paper":
			cfg.Duration = 8 * time.Second
		case "medium":
			cfg.Duration = 4 * time.Second
		default:
			cfg.Duration = 2500 * time.Millisecond
		}
	}
	if cfg.CalibrationRecords <= 0 {
		cfg.CalibrationRecords = 4096
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 60 * time.Second
	}
	verifier, replay, err := streamVerifier(env, 5_000)
	if err != nil {
		return nil, err
	}

	capacity, err := overloadCapacity(verifier, replay, cfg.CalibrationRecords)
	if err != nil {
		return nil, err
	}
	// The blast calibration processes one deep backlog in large
	// amortized batches; paced live traffic drains in small batches
	// whose per-batch costs (store round-trips per device histogram)
	// are proportionally higher. A third of blast capacity keeps the
	// steady cell healthy while the 6–8× scenario spikes still offer
	// a multiple of what the service can absorb.
	base := capacity / 3
	if base < 100 {
		base = 100
	}
	shedQueue := int(capacity / 4)
	if shedQueue < 256 {
		shedQueue = 256
	}

	res := &OverloadResult{
		CapacityPerSec: capacity,
		BaseRate:       base,
		ShedQueue:      shedQueue,
		Duration:       cfg.Duration,
	}
	for _, scenario := range []string{"constant", "burst", "flash"} {
		for _, shed := range []bool{false, true} {
			cell, err := overloadCell(verifier, replay, scenario, base, shed, shedQueue, cfg)
			if err != nil {
				return nil, fmt.Errorf("overload %s shed=%v: %w", scenario, shed, err)
			}
			res.Cells = append(res.Cells, *cell)
		}
	}
	return res, nil
}

// RenderOverload formats the sweep.
func RenderOverload(r *OverloadResult) string {
	header := []string{"scenario", "shed", "offered", "sent", "processed", "dropped", "p50", "p95", "p99"}
	var rows [][]string
	for _, c := range r.Cells {
		rows = append(rows, []string{
			c.Scenario, fmt.Sprintf("%v", c.Shed),
			fmt.Sprintf("%d", c.Offered), fmt.Sprintf("%d", c.Sent),
			fmt.Sprintf("%d", c.Processed),
			fmt.Sprintf("%d", c.ShedRecords),
			fmtDur(c.P50), fmtDur(c.P95), fmtDur(c.P99),
		})
	}
	return fmt.Sprintf("Overload sweep: capacity ≈ %.0f alarms/s, base rate %.0f/s, shed bound %d records, %s per cell\n",
		r.CapacityPerSec, r.BaseRate, r.ShedQueue, r.Duration) +
		renderTable(header, rows)
}
