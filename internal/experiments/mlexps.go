package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"alarmverify/internal/core"
	"alarmverify/internal/dataset"
	"alarmverify/internal/ml"
)

// Fig9Result is one accuracy measurement of Figure 9: verification
// accuracy as a function of the Δt label threshold, per algorithm.
type Fig9Result struct {
	DeltaT    time.Duration
	Algorithm core.Algorithm
	Accuracy  float64
}

// Fig9 reproduces Figure 9 (accuracy vs Δt on the Sitasys dataset).
// deltas defaults to {1, 2, 4, 6, 8, 10} minutes.
func Fig9(env *Env, deltas []time.Duration) ([]Fig9Result, error) {
	if len(deltas) == 0 {
		deltas = []time.Duration{
			1 * time.Minute, 2 * time.Minute, 4 * time.Minute,
			6 * time.Minute, 8 * time.Minute, 10 * time.Minute,
		}
	}
	alarms := env.Alarms()
	var out []Fig9Result
	for _, dt := range deltas {
		labeled := dataset.ToLabeled(alarms, dt, true)
		ds, _, err := dataset.Encode(labeled)
		if err != nil {
			return nil, err
		}
		train, test := ds.Split(0.5, rand.New(rand.NewSource(17)))
		for _, algo := range core.Algorithms() {
			c, err := ClassifierFor(algo, env.Scale)
			if err != nil {
				return nil, err
			}
			if err := c.Fit(train); err != nil {
				return nil, err
			}
			out = append(out, Fig9Result{
				DeltaT:    dt,
				Algorithm: algo,
				Accuracy:  ml.Accuracy(c, test),
			})
		}
	}
	return out, nil
}

// RenderFig9 formats Figure 9 as a Δt × algorithm accuracy table.
func RenderFig9(results []Fig9Result) string {
	header := []string{"delta_t"}
	for _, a := range core.Algorithms() {
		header = append(header, string(a))
	}
	byDelta := map[time.Duration]map[core.Algorithm]float64{}
	var order []time.Duration
	for _, r := range results {
		m, ok := byDelta[r.DeltaT]
		if !ok {
			m = map[core.Algorithm]float64{}
			byDelta[r.DeltaT] = m
			order = append(order, r.DeltaT)
		}
		m[r.Algorithm] = r.Accuracy
	}
	var rows [][]string
	for _, dt := range order {
		row := []string{dt.String()}
		for _, a := range core.Algorithms() {
			row = append(row, pct(byDelta[dt][a]))
		}
		rows = append(rows, row)
	}
	return "Figure 9: verification accuracy [%] vs delta_t (Sitasys)\n" +
		renderTable(header, rows)
}

// DatasetName identifies the three evaluation datasets.
type DatasetName string

// The three datasets of Figure 10 / Table 8.
const (
	Sitasys      DatasetName = "sitasys"
	LondonFire   DatasetName = "lfb"
	SanFrancisco DatasetName = "sf"
)

// DatasetNames lists them in the paper's order.
func DatasetNames() []DatasetName { return []DatasetName{Sitasys, LondonFire, SanFrancisco} }

// buildDataset materializes one of the three datasets as an encoded
// design matrix.
func buildDataset(env *Env, name DatasetName) (*ml.Dataset, error) {
	switch name {
	case Sitasys:
		labeled := dataset.ToLabeled(env.Alarms(), time.Minute, true)
		ds, _, err := dataset.Encode(labeled)
		return ds, err
	case LondonFire:
		cfg := dataset.DefaultLFBConfig()
		cfg.NumIncidents = env.Scale.LFBIncidents
		ds, _, err := dataset.Encode(dataset.LFBToLabeled(dataset.GenerateLFB(cfg)))
		return ds, err
	case SanFrancisco:
		cfg := dataset.DefaultSFConfig()
		cfg.TotalRecords = env.Scale.SFRecords
		usable := dataset.SFUsable(dataset.GenerateSF(cfg))
		if len(usable) == 0 {
			return nil, fmt.Errorf("experiments: SF usable subset empty")
		}
		ds, _, err := dataset.Encode(dataset.SFToLabeled(usable))
		return ds, err
	default:
		return nil, fmt.Errorf("experiments: unknown dataset %q", name)
	}
}

// Fig10Result is one cell of Figure 10 and (timing-wise) Table 8.
type Fig10Result struct {
	Dataset   DatasetName
	Algorithm core.Algorithm
	Accuracy  float64
	TrainTime time.Duration
	TrainRows int
}

// Fig10AndTable8 reproduces Figure 10 (accuracy per algorithm per
// dataset) and Table 8 (training times) in one pass, since both need
// the same twelve model fits.
func Fig10AndTable8(env *Env) ([]Fig10Result, error) {
	var out []Fig10Result
	for _, name := range DatasetNames() {
		ds, err := buildDataset(env, name)
		if err != nil {
			return nil, err
		}
		train, test := ds.Split(0.5, rand.New(rand.NewSource(23)))
		for _, algo := range core.Algorithms() {
			c, err := ClassifierFor(algo, env.Scale)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			if err := c.Fit(train); err != nil {
				return nil, err
			}
			out = append(out, Fig10Result{
				Dataset:   name,
				Algorithm: algo,
				Accuracy:  ml.Accuracy(c, test),
				TrainTime: time.Since(start),
				TrainRows: train.Len(),
			})
		}
	}
	return out, nil
}

// RenderFig10 formats the accuracy comparison.
func RenderFig10(results []Fig10Result) string {
	header := []string{"algorithm"}
	for _, d := range DatasetNames() {
		header = append(header, string(d))
	}
	var rows [][]string
	for _, a := range core.Algorithms() {
		row := []string{string(a)}
		for _, d := range DatasetNames() {
			for _, r := range results {
				if r.Dataset == d && r.Algorithm == a {
					row = append(row, pct(r.Accuracy))
				}
			}
		}
		rows = append(rows, row)
	}
	return "Figure 10: verification accuracy [%] per algorithm and dataset\n" +
		renderTable(header, rows)
}

// RenderTable8 formats the training-time comparison.
func RenderTable8(results []Fig10Result) string {
	header := []string{"algorithm"}
	for _, d := range DatasetNames() {
		header = append(header, string(d))
	}
	var rows [][]string
	for _, a := range core.Algorithms() {
		row := []string{string(a)}
		for _, d := range DatasetNames() {
			for _, r := range results {
				if r.Dataset == d && r.Algorithm == a {
					row = append(row, fmtDur(r.TrainTime))
				}
			}
		}
		rows = append(rows, row)
	}
	return "Table 8: training time per algorithm and dataset\n" +
		renderTable(header, rows)
}

// GridSearchDemo reproduces the §5.3.2 tuning methodology on the
// Sitasys data: a grid over forest size and depth, scored by 3-fold
// cross-validation. It returns results best-first.
func GridSearchDemo(env *Env) ([]ml.GridResult, error) {
	labeled := dataset.ToLabeled(env.Alarms(), time.Minute, true)
	ds, _, err := dataset.Encode(labeled)
	if err != nil {
		return nil, err
	}
	// Subsample so the grid stays affordable.
	if ds.Len() > 8000 {
		rows := rand.New(rand.NewSource(5)).Perm(ds.Len())[:8000]
		ds = ds.Subset(rows)
	}
	grid := map[string][]float64{
		"trees": {5, 15, 30},
		"depth": {6, 14, 22},
	}
	return ml.GridSearch(ds, grid, 3, func(p ml.GridPoint) ml.Classifier {
		cfg := ml.DefaultRandomForestConfig()
		cfg.NumTrees = int(p["trees"])
		cfg.MaxDepth = int(p["depth"])
		return ml.NewRandomForest(cfg)
	}, 7)
}

// ScalingPoint is one measurement of the accuracy-vs-data-volume
// curve.
type ScalingPoint struct {
	Alarms   int
	Accuracy float64
}

// ScalingCurve measures random-forest verification accuracy as the
// training volume grows, holding the world fixed. The paper's >90 %
// headline comes from 350K alarms; this curve shows the approach to
// it (per-location effects only become learnable with volume).
func ScalingCurve(env *Env, sizes []int) ([]ScalingPoint, error) {
	if len(sizes) == 0 {
		sizes = []int{5_000, 10_000, 20_000}
	}
	var out []ScalingPoint
	for _, n := range sizes {
		alarms := env.Alarms()
		if n > len(alarms) {
			n = len(alarms)
		}
		labeled := dataset.ToLabeled(alarms[:n], time.Minute, true)
		ds, _, err := dataset.Encode(labeled)
		if err != nil {
			return nil, err
		}
		train, test := ds.Split(0.5, rand.New(rand.NewSource(31)))
		c, err := ClassifierFor(core.RandomForest, env.Scale)
		if err != nil {
			return nil, err
		}
		if err := c.Fit(train); err != nil {
			return nil, err
		}
		out = append(out, ScalingPoint{Alarms: n, Accuracy: ml.Accuracy(c, test)})
	}
	return out, nil
}

// RenderScalingCurve formats the curve.
func RenderScalingCurve(points []ScalingPoint) string {
	header := []string{"alarms", "rf accuracy [%]"}
	var rows [][]string
	for _, p := range points {
		rows = append(rows, []string{fmt.Sprintf("%d", p.Alarms), pct(p.Accuracy)})
	}
	return "RF accuracy vs training volume (paper: >90% at 350K alarms)\n" +
		renderTable(header, rows)
}
