package experiments

import (
	"fmt"
	"time"

	"alarmverify/internal/alarm"
	"alarmverify/internal/broker"
	"alarmverify/internal/codec"
	"alarmverify/internal/core"
	"alarmverify/internal/docstore"
	"alarmverify/internal/ml"
)

// Fig11Result measures one serializer's producer and consumer
// throughput (alarms per second), the Figure 11 comparison.
type Fig11Result struct {
	Codec            string
	ProducerPerSec   float64
	ConsumerPerSec   float64
	AvgMessageBytes  float64
	ProducedMessages int
}

// Fig11 reproduces the Jackson-vs-Gson serializer experiment: the
// same alarm stream is produced into the broker and consumed
// (deserialize-only) through both codecs.
func Fig11(env *Env) ([]Fig11Result, error) {
	alarms := env.Alarms()
	if len(alarms) > env.Scale.StreamAlarms {
		alarms = alarms[:env.Scale.StreamAlarms]
	}
	var out []Fig11Result
	for _, c := range []codec.Codec{codec.ReflectCodec{}, codec.FastCodec{}} {
		b := broker.New()
		topic, err := b.CreateTopic("alarms", 1)
		if err != nil {
			return nil, err
		}
		prod := core.NewProducerApp(topic, c)
		stats, err := prod.Replay(alarms, 0)
		if err != nil {
			return nil, err
		}
		// Consumer side: drain and deserialize everything.
		cons, err := broker.NewConsumer(b, "fig11", topic, "c1")
		if err != nil {
			return nil, err
		}
		start := time.Now()
		decoded := 0
		var a alarm.Alarm
		for {
			recs, err := cons.Poll(4096, 10*time.Millisecond)
			if err != nil {
				return nil, err
			}
			if len(recs) == 0 {
				break
			}
			for _, r := range recs {
				if err := c.Unmarshal(r.Value, &a); err != nil {
					return nil, err
				}
				decoded++
			}
		}
		consElapsed := time.Since(start)
		res := Fig11Result{
			Codec:            c.Name(),
			ProducerPerSec:   stats.PerSecond,
			ProducedMessages: stats.Sent,
		}
		if stats.Sent > 0 {
			res.AvgMessageBytes = float64(stats.Bytes) / float64(stats.Sent)
		}
		if consElapsed > 0 {
			res.ConsumerPerSec = float64(decoded) / consElapsed.Seconds()
		}
		out = append(out, res)
	}
	return out, nil
}

// RenderFig11 formats the serializer comparison.
func RenderFig11(results []Fig11Result) string {
	header := []string{"codec", "producer [alarms/s]", "consumer [alarms/s]", "avg bytes"}
	var rows [][]string
	for _, r := range results {
		rows = append(rows, []string{
			r.Codec,
			fmt.Sprintf("%.0f", r.ProducerPerSec),
			fmt.Sprintf("%.0f", r.ConsumerPerSec),
			fmt.Sprintf("%.0f", r.AvgMessageBytes),
		})
	}
	return "Figure 11: serializer throughput (reflect = Jackson analog, fast = Gson analog)\n" +
		renderTable(header, rows)
}

// Fig12Result is the consumer time breakdown per component.
type Fig12Result struct {
	Times   core.ComponentTimes
	Records int
}

// Shares returns each component's share of total batch time.
func (f Fig12Result) Shares() (deser, streaming, history, mlShare float64) {
	total := f.Times.Total().Seconds()
	if total <= 0 {
		return 0, 0, 0, 0
	}
	return f.Times.Deserialize.Seconds() / total,
		f.Times.Streaming.Seconds() / total,
		f.Times.History.Seconds() / total,
		f.Times.ML.Seconds() / total
}

// streamVerifier trains the verifier used by the streaming
// experiments. Serving cost must match the production model, so the
// forest uses the paper's Table 3 shape (50 trees, depth 30); the
// training set is capped because only inference speed matters here.
func streamVerifier(env *Env, trainN int) (*core.Verifier, []alarm.Alarm, error) {
	alarms := env.Alarms()
	if trainN > len(alarms)/2 {
		trainN = len(alarms) / 2
	}
	cfg := core.DefaultVerifierConfig()
	cfg.Classifier = ml.NewRandomForest(ml.DefaultRandomForestConfig())
	v, err := core.Train(alarms[:trainN], cfg)
	if err != nil {
		return nil, nil, err
	}
	return v, alarms[trainN:], nil
}

// Fig12 reproduces the consumer component breakdown: a 10-second-
// window-sized batch is processed end to end and the per-component
// times recorded.
func Fig12(env *Env) (*Fig12Result, error) {
	verifier, replay, err := streamVerifier(env, 5_000)
	if err != nil {
		return nil, err
	}
	if len(replay) > env.Scale.StreamAlarms {
		replay = replay[:env.Scale.StreamAlarms]
	}
	b := broker.New()
	topic, err := b.CreateTopic("alarms", env.Scale.Partitions)
	if err != nil {
		return nil, err
	}
	prod := core.NewProducerApp(topic, codec.FastCodec{})
	prod.Threads = 2
	if _, err := prod.Replay(replay, 0); err != nil {
		return nil, err
	}
	history, err := core.NewHistory(docstore.NewDB())
	if err != nil {
		return nil, err
	}
	// Reproduce the paper's consumer: per-alarm classification
	// (ClassifyBatch=1), so the component shares match Figure 12's
	// ML-dominated breakdown rather than the vectorized batch path
	// this repo adds on top (measured by BenchmarkClassifyBatch).
	fig12Cfg := core.DefaultConsumerConfig()
	fig12Cfg.ClassifyBatch = 1
	cons, err := core.NewConsumerApp(b, "alarms", "fig12", "c1", verifier, history, fig12Cfg)
	if err != nil {
		return nil, err
	}
	defer cons.Close()
	n, err := cons.ProcessBatches(1)
	if err != nil {
		return nil, err
	}
	return &Fig12Result{Times: cons.Times(), Records: n}, nil
}

// RenderFig12 formats the breakdown.
func RenderFig12(r *Fig12Result) string {
	d, s, h, m := r.Shares()
	header := []string{"component", "time", "share [%]"}
	rows := [][]string{
		{"deserialization", fmtDur(r.Times.Deserialize), pct(d)},
		{"streaming (distinct devices)", fmtDur(r.Times.Streaming), pct(s)},
		{"history (MongoDB-role queries)", fmtDur(r.Times.History), pct(h)},
		{"machine learning", fmtDur(r.Times.ML), pct(m)},
	}
	return fmt.Sprintf("Figure 12: consumer time breakdown (%d alarms in batch)\n", r.Records) +
		renderTable(header, rows)
}

// E2EResult measures end-to-end consumer throughput for one
// configuration — the §5.5 experiment chain.
type E2EResult struct {
	Label      string
	Partitions int
	Workers    int
	Records    int
	PerSec     float64
}

// EndToEnd reproduces the §5.5.2 optimization story: serial consumer
// on an unpartitioned topic, then the partitioned + parallel
// configuration.
func EndToEnd(env *Env) ([]E2EResult, error) {
	verifier, replay, err := streamVerifier(env, 5_000)
	if err != nil {
		return nil, err
	}
	if len(replay) > env.Scale.StreamAlarms {
		replay = replay[:env.Scale.StreamAlarms]
	}
	configs := []struct {
		label      string
		partitions int
		workers    int
	}{
		{"1 partition, 1 worker (pre-optimization)", 1, 1},
		{fmt.Sprintf("%d partitions, 1 worker", env.Scale.Partitions), env.Scale.Partitions, 1},
		{fmt.Sprintf("%d partitions, %d workers (optimized)", env.Scale.Partitions, env.Scale.Partitions),
			env.Scale.Partitions, env.Scale.Partitions},
	}
	var out []E2EResult
	for _, cfgSpec := range configs {
		b := broker.New()
		topic, err := b.CreateTopic("alarms", cfgSpec.partitions)
		if err != nil {
			return nil, err
		}
		prod := core.NewProducerApp(topic, codec.FastCodec{})
		prod.Threads = 4 // ensure the producer is not the bottleneck
		if _, err := prod.Replay(replay, 0); err != nil {
			return nil, err
		}
		cfg := core.DefaultConsumerConfig()
		cfg.Workers = cfgSpec.workers
		// This experiment isolates the paper's §5.5.2 knobs: the
		// workers knob must gate the ML stage too (or the serial
		// pre-optimization baseline would classify in parallel on its
		// dedicated pool), and every row classifies per-alarm
		// (ClassifyBatch=1, as the paper's consumer did) so the
		// vectorized-batching gain — measured separately by
		// BenchmarkClassifyBatch — doesn't leak into this comparison.
		cfg.ClassifyWorkers = cfgSpec.workers
		cfg.ClassifyBatch = 1
		cons, err := core.NewConsumerApp(b, "alarms", "e2e", "c1", verifier, nil, cfg)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		n, err := cons.ProcessBatches(1)
		if err != nil {
			cons.Close()
			return nil, err
		}
		elapsed := time.Since(start)
		cons.Close()
		res := E2EResult{
			Label:      cfgSpec.label,
			Partitions: cfgSpec.partitions,
			Workers:    cfgSpec.workers,
			Records:    n,
		}
		if elapsed > 0 {
			res.PerSec = float64(n) / elapsed.Seconds()
		}
		out = append(out, res)
	}
	return out, nil
}

// RenderEndToEnd formats the throughput ladder.
func RenderEndToEnd(results []E2EResult) string {
	header := []string{"configuration", "alarms", "throughput [alarms/s]"}
	var rows [][]string
	for _, r := range results {
		rows = append(rows, []string{r.Label, fmt.Sprintf("%d", r.Records), fmt.Sprintf("%.0f", r.PerSec)})
	}
	return "End-to-end consumer throughput (§5.5: ~30K/s at paper scale on their hardware)\n" +
		renderTable(header, rows)
}
