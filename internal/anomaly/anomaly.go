// Package anomaly implements online anomaly detection over alarm
// streams, following the entropy- and Pearson-correlation-based
// metrics of Rettig et al. ("Online Anomaly Detection over Big Data
// Streams", IEEE Big Data 2015) that the paper builds on (§2.4: "In
// our project we partially build on these results") and used for
// feature selection (§5.3).
//
// The detectors serve the §3 operational need: "large events …
// generate a spike of messages that need to be processed fast" — the
// monitoring center wants to notice such bursts as they form, not
// after operators drown.
//
// All detectors are push-based: feed each micro-batch window with
// Observe and collect alerts. They keep O(history) state and are safe
// for use from a single streaming action.
package anomaly

import (
	"fmt"
	"math"
	"time"

	"alarmverify/internal/alarm"
)

// Alert describes one detected anomaly.
type Alert struct {
	Detector string
	Time     time.Time
	// Score is the detector-specific deviation (z-score or
	// correlation distance).
	Score float64
	// Detail is a human-readable explanation for the operator.
	Detail string
}

// Detector consumes per-window alarm batches and emits alerts.
type Detector interface {
	// Name identifies the detector in alerts.
	Name() string
	// Observe processes one window and returns any alerts it raised.
	Observe(windowTime time.Time, window []alarm.Alarm) []Alert
}

// rollingStats tracks mean and variance of a series with Welford's
// algorithm over a bounded history.
type rollingStats struct {
	values []float64
	cap    int
}

func newRollingStats(capacity int) *rollingStats {
	if capacity < 4 {
		capacity = 4
	}
	return &rollingStats{cap: capacity}
}

func (r *rollingStats) push(v float64) {
	r.values = append(r.values, v)
	if len(r.values) > r.cap {
		r.values = r.values[1:]
	}
}

func (r *rollingStats) n() int { return len(r.values) }

func (r *rollingStats) meanStd() (mean, std float64) {
	n := float64(len(r.values))
	if n == 0 {
		return 0, 0
	}
	for _, v := range r.values {
		mean += v
	}
	mean /= n
	var ss float64
	for _, v := range r.values {
		ss += (v - mean) * (v - mean)
	}
	return mean, math.Sqrt(ss / n)
}

// zScore computes the deviation of v from the rolling history. A
// degenerate (near-constant) history gets a floored spread so that a
// genuine jump over a flat baseline still scores high instead of
// being divided away.
func (r *rollingStats) zScore(v float64) float64 {
	mean, std := r.meanStd()
	floor := 1e-6
	if m := math.Abs(mean) * 0.01; m > floor {
		floor = m
	}
	if std < floor {
		std = floor
	}
	return (v - mean) / std
}

// RateDetector alerts when the window's alarm count spikes beyond
// Threshold standard deviations of the recent history — the plain
// volume signal of a large event.
type RateDetector struct {
	// Threshold is the z-score that triggers an alert (default 3).
	Threshold float64
	// History is how many windows form the baseline (default 60).
	History int

	stats *rollingStats
}

// Name implements Detector.
func (d *RateDetector) Name() string { return "rate" }

// Observe implements Detector.
func (d *RateDetector) Observe(t time.Time, window []alarm.Alarm) []Alert {
	d.init()
	count := float64(len(window))
	var alerts []Alert
	if d.stats.n() >= 8 {
		if z := d.stats.zScore(count); z >= d.Threshold {
			alerts = append(alerts, Alert{
				Detector: d.Name(),
				Time:     t,
				Score:    z,
				Detail: fmt.Sprintf("alarm volume spike: %d alarms (z=%.1f over %d-window baseline)",
					len(window), z, d.stats.n()),
			})
		}
	}
	d.stats.push(count)
	return alerts
}

func (d *RateDetector) init() {
	if d.stats == nil {
		if d.Threshold <= 0 {
			d.Threshold = 3
		}
		if d.History <= 0 {
			d.History = 60
		}
		d.stats = newRollingStats(d.History)
	}
}

// KeyFunc extracts the categorical key a distributional detector
// tracks (location, device, alarm type, …).
type KeyFunc func(*alarm.Alarm) string

// ByZIP keys alarms by location.
func ByZIP(a *alarm.Alarm) string { return a.ZIP }

// ByDevice keys alarms by device address.
func ByDevice(a *alarm.Alarm) string { return a.DeviceMAC }

// ByType keys alarms by alarm type.
func ByType(a *alarm.Alarm) string { return a.Type.String() }

// EntropyDetector tracks the Shannon entropy of a categorical
// distribution per window. A localized event (one building, one
// district) concentrates the distribution and the entropy drops
// sharply below its rolling baseline.
type EntropyDetector struct {
	Key KeyFunc
	// Threshold is the |z-score| that triggers an alert (default 3).
	Threshold float64
	// History is the baseline length in windows (default 60).
	History int
	// MinAlarms skips windows too small for a stable estimate.
	MinAlarms int

	stats *rollingStats
}

// Name implements Detector.
func (d *EntropyDetector) Name() string { return "entropy" }

// Entropy computes the Shannon entropy (bits) of the key distribution
// of a window.
func Entropy(window []alarm.Alarm, key KeyFunc) float64 {
	if len(window) == 0 {
		return 0
	}
	counts := map[string]int{}
	for i := range window {
		counts[key(&window[i])]++
	}
	n := float64(len(window))
	var h float64
	for _, c := range counts {
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return h
}

// Observe implements Detector.
func (d *EntropyDetector) Observe(t time.Time, window []alarm.Alarm) []Alert {
	d.init()
	if len(window) < d.MinAlarms {
		return nil
	}
	h := Entropy(window, d.Key)
	var alerts []Alert
	if d.stats.n() >= 8 {
		if z := d.stats.zScore(h); math.Abs(z) >= d.Threshold {
			direction := "concentrated"
			if z > 0 {
				direction = "dispersed"
			}
			alerts = append(alerts, Alert{
				Detector: d.Name(),
				Time:     t,
				Score:    z,
				Detail: fmt.Sprintf("alarm distribution %s: entropy %.2f bits (z=%.1f)",
					direction, h, z),
			})
		}
	}
	d.stats.push(h)
	return alerts
}

func (d *EntropyDetector) init() {
	if d.stats == nil {
		if d.Key == nil {
			d.Key = ByZIP
		}
		if d.Threshold <= 0 {
			d.Threshold = 3
		}
		if d.History <= 0 {
			d.History = 60
		}
		if d.MinAlarms <= 0 {
			d.MinAlarms = 10
		}
		d.stats = newRollingStats(d.History)
	}
}

// CorrelationDetector compares each window's key distribution with
// the rolling mean distribution via Pearson correlation; a window
// whose mix of (say) alarm types stops resembling the baseline raises
// an alert even when volume and entropy look normal.
type CorrelationDetector struct {
	Key KeyFunc
	// Threshold is the correlation below which a window is anomalous
	// (default 0.5).
	Threshold float64
	// History is the number of windows in the baseline (default 60).
	History int
	// MinAlarms skips windows too small for a stable estimate.
	MinAlarms int

	baseline map[string]float64 // exponentially-weighted mean frequencies
	seen     int
}

// Name implements Detector.
func (d *CorrelationDetector) Name() string { return "correlation" }

// Observe implements Detector.
func (d *CorrelationDetector) Observe(t time.Time, window []alarm.Alarm) []Alert {
	d.init()
	if len(window) < d.MinAlarms {
		return nil
	}
	freq := map[string]float64{}
	for i := range window {
		freq[d.Key(&window[i])]++
	}
	n := float64(len(window))
	for k := range freq {
		freq[k] /= n
	}
	var alerts []Alert
	if d.seen >= 8 {
		if corr := distributionCorrelation(d.baseline, freq); corr < d.Threshold {
			alerts = append(alerts, Alert{
				Detector: d.Name(),
				Time:     t,
				Score:    corr,
				Detail: fmt.Sprintf("alarm mix diverged from baseline: correlation %.2f < %.2f",
					corr, d.Threshold),
			})
		}
	}
	// Exponentially-weighted baseline update.
	alpha := 2.0 / float64(d.History+1)
	for k := range d.baseline {
		d.baseline[k] *= 1 - alpha
	}
	for k, f := range freq {
		d.baseline[k] += alpha * f
	}
	d.seen++
	return alerts
}

func (d *CorrelationDetector) init() {
	if d.baseline == nil {
		if d.Key == nil {
			d.Key = ByType
		}
		if d.Threshold <= 0 {
			d.Threshold = 0.5
		}
		if d.History <= 0 {
			d.History = 60
		}
		if d.MinAlarms <= 0 {
			d.MinAlarms = 10
		}
		d.baseline = map[string]float64{}
	}
}

// distributionCorrelation computes the Pearson correlation between
// two sparse frequency vectors over the union of their keys.
func distributionCorrelation(a, b map[string]float64) float64 {
	keys := map[string]bool{}
	for k := range a {
		keys[k] = true
	}
	for k := range b {
		keys[k] = true
	}
	if len(keys) < 2 {
		return 1
	}
	n := float64(len(keys))
	var ma, mb float64
	for k := range keys {
		ma += a[k]
		mb += b[k]
	}
	ma /= n
	mb /= n
	var cov, va, vb float64
	for k := range keys {
		da, db := a[k]-ma, b[k]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	// Two essentially-flat distributions match by definition: their
	// deviations are sampling noise, and correlating noise against
	// noise yields arbitrary values.
	flat := 0.02 / n
	if va < flat*flat && vb < flat*flat {
		return 1
	}
	if va < 1e-18 || vb < 1e-18 {
		return 1
	}
	return cov / math.Sqrt(va*vb)
}

// Monitor fans one window out to several detectors.
type Monitor struct {
	detectors []Detector
	alerts    []Alert
}

// NewMonitor builds a monitor over the given detectors; with none
// given it installs the standard trio (rate, entropy-by-ZIP,
// correlation-by-type).
func NewMonitor(detectors ...Detector) *Monitor {
	if len(detectors) == 0 {
		detectors = []Detector{
			&RateDetector{},
			&EntropyDetector{Key: ByZIP},
			&CorrelationDetector{Key: ByType},
		}
	}
	return &Monitor{detectors: detectors}
}

// Observe feeds one window to all detectors and returns the alerts
// raised for it.
func (m *Monitor) Observe(t time.Time, window []alarm.Alarm) []Alert {
	var out []Alert
	for _, d := range m.detectors {
		out = append(out, d.Observe(t, window)...)
	}
	m.alerts = append(m.alerts, out...)
	return out
}

// Alerts returns every alert raised so far.
func (m *Monitor) Alerts() []Alert {
	out := make([]Alert, len(m.alerts))
	copy(out, m.alerts)
	return out
}
