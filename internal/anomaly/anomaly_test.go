package anomaly

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
	"time"

	"alarmverify/internal/alarm"
)

// steadyWindow builds a window of n alarms spread over many ZIPs and
// types.
func steadyWindow(n int, salt int) []alarm.Alarm {
	out := make([]alarm.Alarm, n)
	for i := range out {
		// Skewed production-like type mix; a uniform mix would make
		// distribution correlation meaningless (all deviations are
		// sampling noise).
		var typ alarm.Type
		switch m := (i + salt) % 25; {
		case m < 9:
			typ = alarm.TypeIntrusion
		case m < 15:
			typ = alarm.TypeFire
		case m < 21:
			typ = alarm.TypeTechnical
		case m < 23:
			typ = alarm.TypeWater
		default:
			typ = alarm.TypeMedical
		}
		out[i] = alarm.Alarm{
			ID:        int64(i),
			ZIP:       fmt.Sprintf("%04d", 1000+(i+salt)%25),
			DeviceMAC: fmt.Sprintf("dev-%03d", (i+salt)%40),
			Type:      typ,
		}
	}
	return out
}

// burstWindow concentrates all alarms in one ZIP (a large event).
func burstWindow(n int) []alarm.Alarm {
	out := make([]alarm.Alarm, n)
	for i := range out {
		out[i] = alarm.Alarm{
			ID:        int64(i),
			ZIP:       "6666",
			DeviceMAC: fmt.Sprintf("dev-%03d", i%5),
			Type:      alarm.TypeFire,
		}
	}
	return out
}

func feedSteady(d Detector, windows, size int) {
	for i := 0; i < windows; i++ {
		d.Observe(time.Now(), steadyWindow(size, i))
	}
}

func TestEntropyValues(t *testing.T) {
	// Uniform over 4 types → 2 bits.
	w := make([]alarm.Alarm, 400)
	for i := range w {
		w[i] = alarm.Alarm{Type: alarm.Type(i % 4)}
	}
	if got := Entropy(w, ByType); math.Abs(got-2) > 1e-9 {
		t.Errorf("uniform entropy = %f, want 2", got)
	}
	// Degenerate distribution → 0 bits.
	if got := Entropy(burstWindow(100), ByZIP); got != 0 {
		t.Errorf("point-mass entropy = %f", got)
	}
	if got := Entropy(nil, ByZIP); got != 0 {
		t.Errorf("empty entropy = %f", got)
	}
}

func TestRateDetectorFiresOnSpike(t *testing.T) {
	d := &RateDetector{Threshold: 3, History: 30}
	feedSteady(d, 20, 100)
	alerts := d.Observe(time.Now(), steadyWindow(1000, 1))
	if len(alerts) != 1 {
		t.Fatalf("spike produced %d alerts", len(alerts))
	}
	if alerts[0].Score < 3 {
		t.Errorf("score = %f", alerts[0].Score)
	}
}

func TestRateDetectorQuietOnSteadyTraffic(t *testing.T) {
	d := &RateDetector{}
	total := 0
	for i := 0; i < 50; i++ {
		total += len(d.Observe(time.Now(), steadyWindow(100+i%3, i)))
	}
	if total != 0 {
		t.Errorf("steady traffic raised %d alerts", total)
	}
}

func TestEntropyDetectorFiresOnConcentration(t *testing.T) {
	d := &EntropyDetector{Key: ByZIP, Threshold: 3}
	feedSteady(d, 25, 200)
	alerts := d.Observe(time.Now(), burstWindow(200))
	if len(alerts) != 1 {
		t.Fatalf("concentration produced %d alerts", len(alerts))
	}
	if alerts[0].Score > -3 {
		t.Errorf("expected strongly negative z, got %f", alerts[0].Score)
	}
	if alerts[0].Detail == "" || alerts[0].Detector != "entropy" {
		t.Errorf("alert metadata: %+v", alerts[0])
	}
}

func TestEntropyDetectorSkipsTinyWindows(t *testing.T) {
	d := &EntropyDetector{MinAlarms: 10}
	feedSteady(d, 20, 100)
	if alerts := d.Observe(time.Now(), burstWindow(3)); len(alerts) != 0 {
		t.Errorf("tiny window alerted: %v", alerts)
	}
}

func TestCorrelationDetectorFiresOnMixChange(t *testing.T) {
	d := &CorrelationDetector{Key: ByType, Threshold: 0.5}
	feedSteady(d, 25, 200)
	// Sudden all-fire mix.
	alerts := d.Observe(time.Now(), burstWindow(200))
	if len(alerts) != 1 {
		t.Fatalf("mix change produced %d alerts", len(alerts))
	}
	if alerts[0].Score >= 0.5 {
		t.Errorf("correlation = %f, want < 0.5", alerts[0].Score)
	}
}

func TestCorrelationDetectorQuietOnStableMix(t *testing.T) {
	d := &CorrelationDetector{Key: ByType}
	total := 0
	for i := 0; i < 50; i++ {
		total += len(d.Observe(time.Now(), steadyWindow(200, i)))
	}
	if total != 0 {
		t.Errorf("stable mix raised %d alerts", total)
	}
}

func TestMonitorAggregates(t *testing.T) {
	m := NewMonitor()
	for i := 0; i < 25; i++ {
		m.Observe(time.Now(), steadyWindow(150, i))
	}
	alerts := m.Observe(time.Now(), burstWindow(1500))
	if len(alerts) < 2 {
		t.Fatalf("burst raised only %d alerts across detectors", len(alerts))
	}
	names := map[string]bool{}
	for _, a := range alerts {
		names[a.Detector] = true
	}
	if !names["rate"] || !names["entropy"] {
		t.Errorf("expected rate and entropy alerts, got %v", names)
	}
	if len(m.Alerts()) != len(alerts) {
		t.Errorf("monitor history = %d, want %d", len(m.Alerts()), len(alerts))
	}
}

func TestDistributionCorrelationProperties(t *testing.T) {
	// Self-correlation of any non-degenerate distribution is 1.
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		dist := map[string]float64{}
		for i, v := range raw {
			dist[fmt.Sprintf("k%d", i%7)] += float64(v%9) + 1
		}
		if len(dist) < 2 {
			return true
		}
		got := distributionCorrelation(dist, dist)
		return math.Abs(got-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
	// Disjoint distributions anticorrelate.
	a := map[string]float64{"x": 1}
	b := map[string]float64{"y": 1}
	if got := distributionCorrelation(a, b); got >= 0 {
		t.Errorf("disjoint correlation = %f, want negative", got)
	}
}

func TestPropertyEntropyBounds(t *testing.T) {
	f := func(keys []uint8) bool {
		if len(keys) == 0 {
			return true
		}
		w := make([]alarm.Alarm, len(keys))
		distinct := map[string]bool{}
		for i, k := range keys {
			zip := fmt.Sprintf("%04d", int(k)%16)
			w[i] = alarm.Alarm{ZIP: zip}
			distinct[zip] = true
		}
		h := Entropy(w, ByZIP)
		return h >= -1e-9 && h <= math.Log2(float64(len(distinct)))+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
