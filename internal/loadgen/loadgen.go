// Package loadgen generates alarm streams with realistic arrival
// processes, so the serving system can be exercised — and measured —
// under the traffic the ROADMAP's "millions of users" north star
// implies rather than the benign constant-rate replays the
// reproduction benchmarks started from.
//
// A workload is composed from three orthogonal pieces:
//
//   - a Shape, the target arrival rate as a function of elapsed time
//     (constant, bursty on/off, diurnal sinusoid, flash-crowd spike);
//   - an arrival process: deterministic pacing at the shape's rate, or
//     a non-homogeneous Poisson process with the shape as intensity;
//   - a device skew: alarms optionally re-keyed to a Zipf-distributed
//     device population, concentrating traffic on hot devices (and so
//     on hot broker/docstore partitions).
//
// A Stream generates the composition lazily as deterministic, seeded
// timed Arrivals (Schedule materializes the whole list when a run is
// small or needs exporting); a Driver then replays the workload
// open-loop against a Sink (the broker producer or the HTTP edge):
// arrival times are fixed in advance, so a slow consumer does not
// slow the offered load down — it builds backlog, exactly the
// overload condition the adaptive batching and load shedding in
// internal/serve are built to survive. Each record carries a
// deadline; arrivals the driver itself cannot send in time are
// dropped and counted, keeping the generator honest when the sink
// (not the service) is the bottleneck.
package loadgen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"alarmverify/internal/alarm"
)

// Shape is a target arrival-rate curve: the offered load in alarms
// per second at each offset from stream start.
type Shape interface {
	// Name identifies the shape in stats and CLI output.
	Name() string
	// Rate returns the instantaneous target rate (alarms/s, >= 0) at
	// the elapsed offset.
	Rate(elapsed time.Duration) float64
}

// Constant is a fixed-rate shape: the benign workload every benchmark
// so far assumed.
type Constant struct {
	// PerSec is the arrival rate in alarms per second.
	PerSec float64
}

// Name implements Shape.
func (c Constant) Name() string { return "constant" }

// Rate implements Shape.
func (c Constant) Rate(time.Duration) float64 { return c.PerSec }

// Bursty alternates between an on-phase at Base×Factor and an
// off-phase at Base — the on/off traffic of a fleet of devices that
// report in synchronized waves.
type Bursty struct {
	// Base is the off-phase rate in alarms/s.
	Base float64
	// Factor multiplies Base during the on-phase.
	Factor float64
	// On and Off are the phase lengths; the stream starts in the
	// off-phase.
	On, Off time.Duration
}

// Name implements Shape.
func (b Bursty) Name() string { return "burst" }

// Rate implements Shape.
func (b Bursty) Rate(elapsed time.Duration) float64 {
	period := b.On + b.Off
	if period <= 0 {
		return b.Base
	}
	if phase := elapsed % period; phase >= b.Off {
		return b.Base * b.Factor
	}
	return b.Base
}

// Diurnal is a sinusoidal day-cycle: rate = Base·(1 + Amp·sin(2πt/Period)),
// floored at zero. With Amp near 1 the trough idles and the peak
// doubles the base — the daily swing a consumer-alarm fleet sees.
type Diurnal struct {
	// Base is the mean rate in alarms/s.
	Base float64
	// Amp in [0,1] scales the swing around Base.
	Amp float64
	// Period is the cycle length (a compressed "day").
	Period time.Duration
}

// Name implements Shape.
func (d Diurnal) Name() string { return "diurnal" }

// Rate implements Shape.
func (d Diurnal) Rate(elapsed time.Duration) float64 {
	if d.Period <= 0 {
		return d.Base
	}
	r := d.Base * (1 + d.Amp*math.Sin(2*math.Pi*float64(elapsed)/float64(d.Period)))
	if r < 0 {
		return 0
	}
	return r
}

// FlashCrowd is a steady base rate with one spike window at
// Base×Factor — the §3 "large event" (storm, city-wide power cut)
// that multiplies the alarm rate for a bounded interval and is the
// workload that collapses an unprotected pipeline's p99.
type FlashCrowd struct {
	// Base is the steady rate in alarms/s.
	Base float64
	// Factor multiplies Base inside the spike window.
	Factor float64
	// SpikeAt is the window's start offset; SpikeFor its length.
	SpikeAt, SpikeFor time.Duration
}

// Name implements Shape.
func (f FlashCrowd) Name() string { return "flash" }

// Rate implements Shape.
func (f FlashCrowd) Rate(elapsed time.Duration) float64 {
	if elapsed >= f.SpikeAt && elapsed < f.SpikeAt+f.SpikeFor {
		return f.Base * f.Factor
	}
	return f.Base
}

// Config composes one workload: a rate shape, the arrival process on
// top of it, the device skew, and the per-record delivery deadline.
type Config struct {
	// Shape is the target rate curve.
	Shape Shape
	// Duration bounds the generated stream.
	Duration time.Duration
	// Poisson, when true, draws exponential inter-arrival times with
	// the shape as intensity (a non-homogeneous Poisson process)
	// instead of deterministic 1/rate pacing.
	Poisson bool
	// Seed makes the schedule reproducible.
	Seed int64
	// ZipfS, when > 1, re-keys alarms to a Zipf(s)-distributed device
	// population over the source stream's devices: rank-k device
	// receives traffic ∝ 1/k^s, concentrating load on a few hot
	// partitions. 0 keeps the source keys.
	ZipfS float64
	// Deadline is the per-record delivery budget from its scheduled
	// arrival; the driver drops (and counts) records it cannot send
	// within it. 0 means no deadline.
	Deadline time.Duration
}

// Arrival is one scheduled record of the open-loop stream.
type Arrival struct {
	// At is the offset from stream start at which the record enters
	// the system.
	At time.Duration
	// Deadline is the delivery budget from At (0 = none).
	Deadline time.Duration
	// Alarm is the record payload.
	Alarm alarm.Alarm
}

// Stream generates a workload's arrivals lazily, in arrival order:
// memory stays O(source alarms) however long the stream runs, so the
// "heavy traffic" configurations (tens of thousands of alarms per
// second for minutes) never materialize the whole run up front. A
// Stream is single-goroutine; the Driver serializes its pulls.
type Stream struct {
	cfg    Config
	alarms []alarm.Alarm
	rng    *rand.Rand
	macs   []string
	zipf   *rand.Zipf

	elapsed time.Duration
	i       int
	baseID  int64
}

// NewStream validates the workload and positions the generator at
// offset zero. The sequence is deterministic for a given (Config,
// alarms) pair.
func NewStream(cfg Config, alarms []alarm.Alarm) (*Stream, error) {
	if cfg.Shape == nil {
		return nil, fmt.Errorf("loadgen: Config.Shape is nil")
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: Config.Duration must be positive, got %s", cfg.Duration)
	}
	if len(alarms) == 0 {
		return nil, fmt.Errorf("loadgen: no source alarms")
	}
	if cfg.ZipfS != 0 && cfg.ZipfS <= 1 {
		return nil, fmt.Errorf("loadgen: ZipfS must be > 1 (or 0 to disable), got %g", cfg.ZipfS)
	}
	s := &Stream{
		cfg:    cfg,
		alarms: alarms,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		baseID: alarms[0].ID,
	}
	if cfg.ZipfS > 1 {
		seen := make(map[string]bool)
		for i := range alarms {
			if m := alarms[i].DeviceMAC; !seen[m] {
				seen[m] = true
				s.macs = append(s.macs, m)
			}
		}
		sort.Strings(s.macs) // deterministic rank order
		s.zipf = rand.NewZipf(s.rng, cfg.ZipfS, 1, uint64(len(s.macs)-1))
	}
	return s, nil
}

// Next returns the next arrival, drawing the payload from the source
// alarms (cycling, with IDs rewritten to stay unique) and re-keying
// the device when Zipf skew is configured. ok is false once the
// stream's duration is exhausted.
func (s *Stream) Next() (ar Arrival, ok bool) {
	// minRate floors the candidate-arrival rate so near-zero stretches
	// (the diurnal trough) advance in bounded steps instead of
	// dividing by zero; candidates in those stretches are then thinned
	// (Lewis & Shedler) with probability rate/minRate, preserving the
	// target intensity.
	const minRate = 1.0
	for {
		rate := s.cfg.Shape.Rate(s.elapsed)
		step := math.Max(rate, minRate)
		mean := float64(time.Second) / step
		var dt time.Duration
		if s.cfg.Poisson {
			dt = time.Duration(s.rng.ExpFloat64() * mean)
		} else {
			dt = time.Duration(mean)
		}
		if dt < 1 {
			// Sub-nanosecond inter-arrivals (rates past 1e9/s, or a
			// tiny Poisson draw) must still advance time, or the
			// stream would never end.
			dt = 1
		}
		s.elapsed += dt
		if s.elapsed >= s.cfg.Duration {
			return Arrival{}, false
		}
		i := s.i
		s.i++
		if rate < step && s.rng.Float64()*step >= rate {
			continue // thinned: idle gap candidate, emit nothing
		}
		a := s.alarms[i%len(s.alarms)]
		a.ID = s.baseID + int64(i)
		if s.zipf != nil {
			a.DeviceMAC = s.macs[s.zipf.Uint64()]
		}
		return Arrival{At: s.elapsed, Deadline: s.cfg.Deadline, Alarm: a}, true
	}
}

// Schedule materializes the whole workload into timed arrivals —
// handy for export and for bounded experiment cells; long or
// high-rate runs should pull from a Stream instead (Driver.RunStream)
// to keep memory constant. The result is sorted by At and
// deterministic for a given (Config, alarms) pair.
func Schedule(cfg Config, alarms []alarm.Alarm) ([]Arrival, error) {
	s, err := NewStream(cfg, alarms)
	if err != nil {
		return nil, err
	}
	var out []Arrival
	for {
		ar, ok := s.Next()
		if !ok {
			return out, nil
		}
		out = append(out, ar)
	}
}

// Scenarios lists the named workload presets Preset accepts.
func Scenarios() []string {
	return []string{"constant", "poisson", "burst", "diurnal", "flash"}
}

// Preset builds the named workload at the given base rate over the
// given duration:
//
//	constant  deterministic pacing at rate
//	poisson   Poisson arrivals with mean rate
//	burst     on/off square wave: rate ↔ 6×rate, 1s on in every 3s
//	diurnal   sinusoid around rate (amp 0.9), two "days" per run
//	flash     steady rate with one 8× spike over the middle fifth
//
// The caller layers Seed, ZipfS and Deadline on the returned Config.
func Preset(name string, rate float64, duration time.Duration) (Config, error) {
	if rate <= 0 {
		return Config{}, fmt.Errorf("loadgen: preset rate must be positive, got %g", rate)
	}
	if duration <= 0 {
		return Config{}, fmt.Errorf("loadgen: preset duration must be positive, got %s", duration)
	}
	cfg := Config{Duration: duration}
	switch name {
	case "constant", "steady", "":
		cfg.Shape = Constant{PerSec: rate}
	case "poisson":
		cfg.Shape = Constant{PerSec: rate}
		cfg.Poisson = true
	case "burst":
		cfg.Shape = Bursty{Base: rate, Factor: 6, On: duration / 6, Off: duration / 3}
	case "diurnal":
		cfg.Shape = Diurnal{Base: rate, Amp: 0.9, Period: duration / 2}
	case "flash":
		cfg.Shape = FlashCrowd{Base: rate, Factor: 8,
			SpikeAt: 2 * duration / 5, SpikeFor: duration / 5}
	default:
		return Config{}, fmt.Errorf("loadgen: unknown scenario %q (one of %v)", name, Scenarios())
	}
	return cfg, nil
}
