package loadgen

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"alarmverify/internal/alarm"
	"alarmverify/internal/broker"
	"alarmverify/internal/codec"
	"alarmverify/internal/dataset"
)

func sourceAlarms(t testing.TB, n int) []alarm.Alarm {
	t.Helper()
	world := dataset.NewWorld(7)
	cfg := dataset.DefaultSitasysConfig()
	cfg.NumAlarms = n
	cfg.NumDevices = 64
	cfg.PayloadBytes = 0
	return dataset.GenerateSitasys(world, cfg)
}

func TestScheduleConstantRate(t *testing.T) {
	alarms := sourceAlarms(t, 500)
	cfg := Config{Shape: Constant{PerSec: 2000}, Duration: 500 * time.Millisecond, Seed: 1}
	sched, err := Schedule(cfg, alarms)
	if err != nil {
		t.Fatal(err)
	}
	want := 1000
	if len(sched) < want*9/10 || len(sched) > want*11/10 {
		t.Fatalf("constant 2000/s over 500ms produced %d arrivals, want ≈ %d", len(sched), want)
	}
	seen := make(map[int64]bool)
	for i, ar := range sched {
		if i > 0 && ar.At < sched[i-1].At {
			t.Fatalf("schedule not sorted at %d", i)
		}
		if ar.At < 0 || ar.At >= cfg.Duration {
			t.Fatalf("arrival %d at %s outside [0,%s)", i, ar.At, cfg.Duration)
		}
		if seen[ar.Alarm.ID] {
			t.Fatalf("duplicate alarm ID %d (IDs must be rewritten across cycles)", ar.Alarm.ID)
		}
		seen[ar.Alarm.ID] = true
	}
}

func TestSchedulePoissonMeanRate(t *testing.T) {
	alarms := sourceAlarms(t, 500)
	cfg := Config{Shape: Constant{PerSec: 5000}, Duration: time.Second, Poisson: true, Seed: 3}
	sched, err := Schedule(cfg, alarms)
	if err != nil {
		t.Fatal(err)
	}
	// Poisson(5000): stddev ≈ 71, so ±5 % is > 3σ.
	if len(sched) < 4750 || len(sched) > 5250 {
		t.Fatalf("poisson 5000/s over 1s produced %d arrivals", len(sched))
	}
	// Inter-arrival jitter: deterministic pacing has zero variance;
	// Poisson must not.
	var distinct int
	for i := 2; i < min(len(sched), 100); i++ {
		if sched[i].At-sched[i-1].At != sched[i-1].At-sched[i-2].At {
			distinct++
		}
	}
	if distinct == 0 {
		t.Fatal("poisson arrivals are evenly spaced")
	}
}

func TestScheduleFlashCrowdSpike(t *testing.T) {
	cfg, err := Preset("flash", 1000, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 5
	sched, err := Schedule(cfg, sourceAlarms(t, 500))
	if err != nil {
		t.Fatal(err)
	}
	fc := cfg.Shape.(FlashCrowd)
	var inSpike, before int
	for _, ar := range sched {
		switch {
		case ar.At >= fc.SpikeAt && ar.At < fc.SpikeAt+fc.SpikeFor:
			inSpike++
		case ar.At < fc.SpikeAt:
			before++
		}
	}
	// Spike window is 200ms at 8×1000/s ⇒ ≈1600; the 400ms before it
	// at 1000/s ⇒ ≈400. Require at least a 3× density ratio.
	spikeDensity := float64(inSpike) / fc.SpikeFor.Seconds()
	baseDensity := float64(before) / fc.SpikeAt.Seconds()
	if spikeDensity < 3*baseDensity {
		t.Fatalf("spike density %.0f/s not ≫ base %.0f/s", spikeDensity, baseDensity)
	}
}

func TestScheduleBurstOnOff(t *testing.T) {
	cfg, err := Preset("burst", 600, 900*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 11
	sched, err := Schedule(cfg, sourceAlarms(t, 500))
	if err != nil {
		t.Fatal(err)
	}
	bu := cfg.Shape.(Bursty)
	var on, off int
	for _, ar := range sched {
		if ar.At%(bu.On+bu.Off) >= bu.Off {
			on++
		} else {
			off++
		}
	}
	onDensity := float64(on) / bu.On.Seconds()
	offDensity := float64(off) / (2 * bu.Off.Seconds())
	if onDensity < 2*offDensity {
		t.Fatalf("on-phase density %.0f/s not ≫ off %.0f/s", onDensity, offDensity)
	}
}

func TestScheduleDiurnalTrough(t *testing.T) {
	cfg, err := Preset("diurnal", 2000, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 13
	sched, err := Schedule(cfg, sourceAlarms(t, 500))
	if err != nil {
		t.Fatal(err)
	}
	// First quarter of each 500ms "day" is the rising peak; the third
	// quarter the trough (sin negative).
	var peak, trough int
	for _, ar := range sched {
		phase := ar.At % (cfg.Duration / 2)
		q := cfg.Duration / 8
		switch {
		case phase < q:
			peak++
		case phase >= 2*q && phase < 3*q:
			trough++
		}
	}
	if peak <= trough*2 {
		t.Fatalf("diurnal peak %d not ≫ trough %d", peak, trough)
	}
}

func TestScheduleZipfSkew(t *testing.T) {
	alarms := sourceAlarms(t, 2000)
	cfg := Config{Shape: Constant{PerSec: 4000}, Duration: time.Second, Seed: 17, ZipfS: 1.5}
	sched, err := Schedule(cfg, alarms)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	for _, ar := range sched {
		counts[ar.Alarm.DeviceMAC]++
	}
	top := 0
	for _, c := range counts {
		if c > top {
			top = c
		}
	}
	// 64 devices uniform ⇒ top ≈ 1.6 %; Zipf(1.5) concentrates far
	// more than 10 % on the hottest device.
	if share := float64(top) / float64(len(sched)); share < 0.10 {
		t.Fatalf("hottest device got %.1f%% of traffic, want Zipf-skewed ≥ 10%%", 100*share)
	}

	if _, err := Schedule(Config{Shape: Constant{PerSec: 10}, Duration: time.Second, ZipfS: 0.5}, alarms); err == nil {
		t.Fatal("ZipfS in (0,1] accepted, want error")
	}
}

// TestExtremeRateTerminates pins the dt>=1ns clamp: rates past 1e9/s
// round the deterministic inter-arrival to zero and used to hang the
// generator instead of ending the stream.
func TestExtremeRateTerminates(t *testing.T) {
	alarms := sourceAlarms(t, 10)
	sched, err := Schedule(Config{Shape: Constant{PerSec: 2e9}, Duration: 10 * time.Microsecond}, alarms)
	if err != nil {
		t.Fatal(err)
	}
	// 10µs at 1 arrival/ns (the clamp) bounds the schedule at 10k.
	if len(sched) == 0 || len(sched) > 10_000 {
		t.Fatalf("extreme-rate schedule has %d arrivals", len(sched))
	}
}

func TestScheduleValidation(t *testing.T) {
	alarms := sourceAlarms(t, 10)
	if _, err := Schedule(Config{Duration: time.Second}, alarms); err == nil {
		t.Fatal("nil shape accepted")
	}
	if _, err := Schedule(Config{Shape: Constant{PerSec: 1}, Duration: 0}, alarms); err == nil {
		t.Fatal("zero duration accepted")
	}
	if _, err := Schedule(Config{Shape: Constant{PerSec: 1}, Duration: time.Second}, nil); err == nil {
		t.Fatal("empty source accepted")
	}
}

func TestPresetNames(t *testing.T) {
	for _, name := range Scenarios() {
		cfg, err := Preset(name, 100, time.Second)
		if err != nil {
			t.Errorf("Preset(%q): %v", name, err)
			continue
		}
		if cfg.Shape == nil {
			t.Errorf("Preset(%q) has nil shape", name)
		}
	}
	if _, err := Preset("bogus", 100, time.Second); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if _, err := Preset("flash", 0, time.Second); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := Preset("flash", 100, 0); err == nil {
		t.Fatal("zero duration accepted")
	}
}

// countSink counts sends, optionally sleeping to simulate a slow sink.
type countSink struct {
	delay time.Duration
	n     atomic.Int64
}

func (s *countSink) Send(*alarm.Alarm) error {
	if s.delay > 0 {
		time.Sleep(s.delay)
	}
	s.n.Add(1)
	return nil
}

// TestStreamMatchesSchedule pins that the lazy generator and the
// materialized schedule are the same sequence — Schedule is defined
// as "collect the Stream", and both must stay deterministic per seed.
func TestStreamMatchesSchedule(t *testing.T) {
	alarms := sourceAlarms(t, 300)
	cfg := Config{
		Shape:    FlashCrowd{Base: 800, Factor: 8, SpikeAt: 200 * time.Millisecond, SpikeFor: 100 * time.Millisecond},
		Duration: 500 * time.Millisecond, Poisson: true, Seed: 9, ZipfS: 1.4,
		Deadline: 20 * time.Millisecond,
	}
	sched, err := Schedule(cfg, alarms)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewStream(cfg, alarms)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		ar, ok := st.Next()
		if !ok {
			if i != len(sched) {
				t.Fatalf("stream ended after %d arrivals, schedule has %d", i, len(sched))
			}
			return
		}
		if i >= len(sched) {
			t.Fatalf("stream longer than schedule (%d)", len(sched))
		}
		want := sched[i]
		if ar.At != want.At || ar.Deadline != want.Deadline ||
			ar.Alarm.ID != want.Alarm.ID || ar.Alarm.DeviceMAC != want.Alarm.DeviceMAC {
			t.Fatalf("arrival %d differs: stream %+v vs schedule %+v", i, ar, want)
		}
	}
}

func TestDriverRunStream(t *testing.T) {
	alarms := sourceAlarms(t, 200)
	cfg := Config{Shape: Constant{PerSec: 2000}, Duration: 150 * time.Millisecond, Seed: 4}
	st, err := NewStream(cfg, alarms)
	if err != nil {
		t.Fatal(err)
	}
	sink := &countSink{}
	stats := (&Driver{Sink: sink, Workers: 3}).RunStream(st)
	want, err := Schedule(cfg, alarms)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Scheduled != len(want) || stats.Sent != len(want) {
		t.Fatalf("streamed %d sent %d, want %d", stats.Scheduled, stats.Sent, len(want))
	}
	if stats.Elapsed < 100*time.Millisecond {
		t.Fatalf("open loop finished in %s, pacing ignored?", stats.Elapsed)
	}
}

func TestDriverOpenLoop(t *testing.T) {
	sched, err := Schedule(Config{Shape: Constant{PerSec: 2000}, Duration: 200 * time.Millisecond, Seed: 1},
		sourceAlarms(t, 200))
	if err != nil {
		t.Fatal(err)
	}
	sink := &countSink{}
	st := (&Driver{Sink: sink}).Run(sched)
	if st.Sent != len(sched) || int(sink.n.Load()) != len(sched) {
		t.Fatalf("sent %d of %d", st.Sent, len(sched))
	}
	if st.Missed != 0 || st.Errors != 0 {
		t.Fatalf("unexpected missed=%d errors=%d", st.Missed, st.Errors)
	}
	if st.Elapsed < 150*time.Millisecond {
		t.Fatalf("open loop finished in %s, pacing ignored?", st.Elapsed)
	}
}

func TestDriverDeadlineMisses(t *testing.T) {
	sched, err := Schedule(Config{
		Shape: Constant{PerSec: 1000}, Duration: 150 * time.Millisecond,
		Seed: 1, Deadline: 5 * time.Millisecond,
	}, sourceAlarms(t, 200))
	if err != nil {
		t.Fatal(err)
	}
	// A sink 20× slower than the arrival interval forces the single
	// pacing worker past deadlines.
	sink := &countSink{delay: 20 * time.Millisecond}
	st := (&Driver{Sink: sink}).Run(sched)
	if st.Missed == 0 {
		t.Fatalf("slow sink missed nothing: %+v", st)
	}
	if st.Sent+st.Missed != len(sched) {
		t.Fatalf("sent %d + missed %d != scheduled %d", st.Sent, st.Missed, len(sched))
	}
	if st.MaxLateness < 5*time.Millisecond {
		t.Fatalf("max lateness %s, want > deadline", st.MaxLateness)
	}
}

func TestBrokerSink(t *testing.T) {
	br := broker.New()
	defer br.Close()
	topic, err := br.CreateTopic("alarms", 4)
	if err != nil {
		t.Fatal(err)
	}
	sink := NewBrokerSink(topic, codec.FastCodec{})
	alarms := sourceAlarms(t, 8)
	before := time.Now()
	var wg sync.WaitGroup
	for i := range alarms {
		wg.Add(1)
		go func(i int) { // concurrent sends: the driver fans out
			defer wg.Done()
			if err := sink.Send(&alarms[i]); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	var total int64
	for p := 0; p < topic.Partitions(); p++ {
		hw, err := topic.HighWatermark(p)
		if err != nil {
			t.Fatal(err)
		}
		total += hw
	}
	if total != int64(len(alarms)) {
		t.Fatalf("topic holds %d records, want %d", total, len(alarms))
	}
	cons, err := broker.NewConsumer(br, "lg-test", topic, "c1")
	if err != nil {
		t.Fatal(err)
	}
	defer cons.Close()
	recs, err := cons.Poll(len(alarms), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var c codec.FastCodec
	for _, r := range recs {
		if r.Timestamp.Before(before) {
			t.Fatalf("record timestamp %s predates send", r.Timestamp)
		}
		var a alarm.Alarm
		if err := c.Unmarshal(r.Value, &a); err != nil {
			t.Fatalf("undecodable record: %v", err)
		}
		if string(r.Key) != a.DeviceMAC {
			t.Fatalf("record key %q != device %q", r.Key, a.DeviceMAC)
		}
	}
}

func TestHTTPSink(t *testing.T) {
	var got atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var c codec.FastCodec
		var a alarm.Alarm
		body := make([]byte, r.ContentLength)
		r.Body.Read(body)
		if err := c.Unmarshal(body, &a); err != nil || a.ID == 0 {
			http.Error(w, "bad alarm", http.StatusBadRequest)
			return
		}
		got.Add(1)
	}))
	defer srv.Close()
	alarms := sourceAlarms(t, 5)
	sink := &HTTPSink{URL: srv.URL + "/verify"}
	for i := range alarms {
		if err := sink.Send(&alarms[i]); err != nil {
			t.Fatal(err)
		}
	}
	if got.Load() != int64(len(alarms)) {
		t.Fatalf("server saw %d posts, want %d", got.Load(), len(alarms))
	}
	bad := &HTTPSink{URL: srv.URL + "/missing"}
	junk := alarm.Alarm{} // ID 0 → 400 from the handler above
	if err := bad.Send(&junk); err == nil {
		t.Fatal("non-2xx response not surfaced as error")
	}
}
