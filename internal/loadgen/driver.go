package loadgen

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"alarmverify/internal/alarm"
	"alarmverify/internal/broker"
	"alarmverify/internal/codec"
)

// Sink delivers one generated alarm into the system under test.
// Implementations must be safe for concurrent use: the driver fans a
// schedule out over several pacing workers.
type Sink interface {
	// Send injects the alarm, stamped with the wall-clock send time so
	// downstream end-to-end latency starts at the sink boundary.
	Send(a *alarm.Alarm) error
}

// BrokerSink produces generated alarms straight onto a broker topic,
// keyed by device (the partitioning the live pipeline expects) and
// timestamped at send time, so the pipeline's e2e histogram measures
// true enqueue-to-commit latency including queueing delay.
type BrokerSink struct {
	producer broker.RecordSender
	codec    codec.Codec
	bufs     sync.Pool
}

// NewBrokerSink wraps a producer on the topic with the wire codec.
func NewBrokerSink(t *broker.Topic, c codec.Codec) *BrokerSink {
	return NewSenderSink(broker.NewProducer(t), c)
}

// NewSenderSink builds the sink over any record sender, so chaos runs
// drive load through netbroker's quorum-acked wire producer with the
// same pacing engine the in-process scenarios use.
func NewSenderSink(s broker.RecordSender, c codec.Codec) *BrokerSink {
	if c == nil {
		c = codec.FastCodec{}
	}
	return &BrokerSink{
		producer: s,
		codec:    c,
		bufs:     sync.Pool{New: func() any { return new([]byte) }},
	}
}

// Send implements Sink.
func (s *BrokerSink) Send(a *alarm.Alarm) error {
	bp := s.bufs.Get().(*[]byte)
	defer s.bufs.Put(bp)
	buf, err := s.codec.Marshal((*bp)[:0], a)
	if err != nil {
		return err
	}
	*bp = buf
	val := make([]byte, len(buf))
	copy(val, buf)
	_, _, err = s.producer.SendAt([]byte(a.DeviceMAC), val, time.Now())
	return err
}

// HTTPSink posts generated alarms to the HTTP edge's POST /verify —
// the path an Alarm Receiving Center integration exercises.
type HTTPSink struct {
	// URL is the full /verify endpoint URL.
	URL string
	// Client defaults to a dedicated client with a 10s timeout.
	Client *http.Client

	once   sync.Once
	client *http.Client
}

// Send implements Sink.
func (s *HTTPSink) Send(a *alarm.Alarm) error {
	s.once.Do(func() {
		s.client = s.Client
		if s.client == nil {
			s.client = &http.Client{Timeout: 10 * time.Second}
		}
	})
	var c codec.FastCodec
	body, err := c.Marshal(nil, a)
	if err != nil {
		return err
	}
	resp, err := s.client.Post(s.URL, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("loadgen: %s returned %s", s.URL, resp.Status)
	}
	return nil
}

// Stats summarizes one open-loop run.
type Stats struct {
	// Scheduled is the schedule length; Sent the records delivered.
	Scheduled, Sent int
	// Missed counts records dropped because the driver could not send
	// them within their deadline (the generator or sink — not the
	// service — fell behind).
	Missed int
	// Errors counts sink errors (the driver keeps going).
	Errors int
	// Elapsed is the wall-clock run time; PerSec the achieved offered
	// rate Sent/Elapsed.
	Elapsed time.Duration
	PerSec  float64
	// MaxLateness is the worst send-time slip behind the schedule —
	// the open-loop fidelity measure.
	MaxLateness time.Duration
}

// Driver replays a schedule open-loop against a sink.
type Driver struct {
	// Sink receives every due record.
	Sink Sink
	// Workers is the number of pacing goroutines (default 1; raise it
	// when a single goroutine cannot sustain the offered rate against
	// a slow sink such as a real HTTP endpoint).
	Workers int
}

// Run paces a materialized schedule by wall clock: each arrival is
// sent at stream-start + At, regardless of how the service is keeping
// up — open-loop load. Arrivals whose send would start past At +
// Deadline are dropped and counted as Missed. Run returns when the
// schedule is exhausted.
func (d *Driver) Run(schedule []Arrival) Stats {
	i := 0
	var mu sync.Mutex
	return d.run(func() (Arrival, bool) {
		mu.Lock()
		defer mu.Unlock()
		if i >= len(schedule) {
			return Arrival{}, false
		}
		ar := schedule[i]
		i++
		return ar, true
	})
}

// RunStream is Run over a lazy Stream: arrivals are generated as they
// come due, so memory stays constant however long or fast the
// workload — the form cmd/alarmd uses for live traffic.
func (d *Driver) RunStream(s *Stream) Stats {
	var mu sync.Mutex
	return d.run(func() (Arrival, bool) {
		mu.Lock()
		defer mu.Unlock()
		return s.Next()
	})
}

// run is the shared open-loop pacing core: workers pull the next
// arrival (the pull is serialized, keeping global arrival order),
// sleep until it is due, and send. With one worker, pacing is exactly
// sequential; more workers let sends overlap when a single goroutine
// cannot sustain the offered rate against a slow sink.
func (d *Driver) run(next func() (Arrival, bool)) Stats {
	workers := d.Workers
	if workers < 1 {
		workers = 1
	}
	var scheduled, sent, missed, errs atomic.Int64
	var maxLate atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				ar, ok := next()
				if !ok {
					return
				}
				scheduled.Add(1)
				due := start.Add(ar.At)
				if wait := time.Until(due); wait > 0 {
					time.Sleep(wait)
				}
				late := time.Since(due)
				for {
					prev := maxLate.Load()
					if int64(late) <= prev || maxLate.CompareAndSwap(prev, int64(late)) {
						break
					}
				}
				if ar.Deadline > 0 && late > ar.Deadline {
					missed.Add(1)
					continue
				}
				if err := d.Sink.Send(&ar.Alarm); err != nil {
					errs.Add(1)
					continue
				}
				sent.Add(1)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	st := Stats{
		Scheduled:   int(scheduled.Load()),
		Sent:        int(sent.Load()),
		Missed:      int(missed.Load()),
		Errors:      int(errs.Load()),
		Elapsed:     elapsed,
		MaxLateness: time.Duration(maxLate.Load()),
	}
	if elapsed > 0 {
		st.PerSec = float64(st.Sent) / elapsed.Seconds()
	}
	return st
}
