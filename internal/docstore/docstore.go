// Package docstore implements the long-term storage substrate of the
// alarm pipeline — the role MongoDB plays in the paper (§4.2, "Batch
// Component / Alarm History").
//
// It is a schema-flexible document store: alarms are stored directly
// as JSON-like documents (nested maps), queried by field path with
// Mongo-style operator filters, optionally accelerated by hash or
// ordered indexes, and aggregated through a pipeline (match → group →
// sort → …) that serves the per-device alarm histograms of §4.1 and
// the location queries of §4.2. Schema flexibility is exactly why the
// paper chose a document store: "the structure of an alarm differs
// across sensor types and even across software updates" (§4.3).
package docstore

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Common errors.
var (
	ErrNotFound         = errors.New("docstore: document not found")
	ErrBadFilter        = errors.New("docstore: malformed filter")
	ErrIndexExists      = errors.New("docstore: index already exists")
	ErrCollectionAbsent = errors.New("docstore: unknown collection")
)

// Doc is one stored document. Values are JSON-shaped: string, float64,
// int, int64, bool, time.Time, nil, []any, or nested Doc /
// map[string]any.
type Doc = map[string]any

// DB is a set of named collections.
type DB struct {
	mu          sync.RWMutex
	collections map[string]*Collection
}

// NewDB creates an empty database.
func NewDB() *DB {
	return &DB{collections: make(map[string]*Collection)}
}

// Collection returns the named collection, creating it on first use
// (matching document-store ergonomics).
func (db *DB) Collection(name string) *Collection {
	db.mu.Lock()
	defer db.mu.Unlock()
	c, ok := db.collections[name]
	if !ok {
		c = newCollection(name)
		db.collections[name] = c
	}
	return c
}

// Drop removes a collection and its documents.
func (db *DB) Drop(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.collections[name]; !ok {
		return fmt.Errorf("%w: %s", ErrCollectionAbsent, name)
	}
	delete(db.collections, name)
	return nil
}

// Collections lists collection names.
func (db *DB) Collections() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.collections))
	for n := range db.collections {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Collection stores documents addressed by an auto-assigned int64 _id.
type Collection struct {
	name string

	mu      sync.RWMutex
	docs    map[int64]Doc
	order   []int64 // insertion order, for stable scans
	nextID  int64
	indexes map[string]*index
}

func newCollection(name string) *Collection {
	return &Collection{
		name:    name,
		docs:    make(map[int64]Doc),
		indexes: make(map[string]*index),
	}
}

// Name returns the collection name.
func (c *Collection) Name() string { return c.name }

// Len returns the number of stored documents.
func (c *Collection) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.docs)
}

// Insert stores a copy of doc and returns its assigned _id.
func (c *Collection) Insert(doc Doc) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.insertLocked(doc)
}

// InsertMany stores all docs and returns their ids.
func (c *Collection) InsertMany(docs []Doc) []int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := make([]int64, len(docs))
	for i, d := range docs {
		ids[i] = c.insertLocked(d)
	}
	return ids
}

func (c *Collection) insertLocked(doc Doc) int64 {
	id := c.nextID
	c.nextID++
	stored := cloneDoc(doc)
	stored["_id"] = id
	c.docs[id] = stored
	c.order = append(c.order, id)
	for _, idx := range c.indexes {
		idx.add(stored, id)
	}
	return id
}

// Get returns the document with the given _id.
func (c *Collection) Get(id int64) (Doc, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	d, ok := c.docs[id]
	if !ok {
		return nil, fmt.Errorf("%w: _id=%d", ErrNotFound, id)
	}
	return cloneDoc(d), nil
}

// FindOptions controls Find result shaping.
type FindOptions struct {
	Sort  string // field path; prefix with "-" for descending
	Limit int    // 0 = unlimited
	Skip  int
}

// Find returns copies of all documents matching filter, in insertion
// order unless opts.Sort is set.
func (c *Collection) Find(filter Doc, opts ...FindOptions) ([]Doc, error) {
	var opt FindOptions
	if len(opts) > 0 {
		opt = opts[0]
	}
	c.mu.RLock()
	ids, scan, err := c.candidateIDs(filter)
	if err != nil {
		c.mu.RUnlock()
		return nil, err
	}
	var out []Doc
	for _, id := range ids {
		d := c.docs[id]
		if d == nil {
			continue
		}
		ok, err := matchDoc(d, filter)
		if err != nil {
			c.mu.RUnlock()
			return nil, err
		}
		if ok {
			out = append(out, cloneDoc(d))
		}
	}
	_ = scan
	c.mu.RUnlock()

	if opt.Sort != "" {
		field, desc := opt.Sort, false
		if strings.HasPrefix(field, "-") {
			field, desc = field[1:], true
		}
		sort.SliceStable(out, func(i, j int) bool {
			vi, _ := lookup(out[i], field)
			vj, _ := lookup(out[j], field)
			cmp := compareValues(vi, vj)
			if desc {
				return cmp > 0
			}
			return cmp < 0
		})
	}
	if opt.Skip > 0 {
		if opt.Skip >= len(out) {
			return nil, nil
		}
		out = out[opt.Skip:]
	}
	if opt.Limit > 0 && len(out) > opt.Limit {
		out = out[:opt.Limit]
	}
	return out, nil
}

// FindOne returns the first matching document.
func (c *Collection) FindOne(filter Doc) (Doc, error) {
	docs, err := c.Find(filter, FindOptions{Limit: 1})
	if err != nil {
		return nil, err
	}
	if len(docs) == 0 {
		return nil, ErrNotFound
	}
	return docs[0], nil
}

// Count returns the number of matching documents.
func (c *Collection) Count(filter Doc) (int, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if len(filter) == 0 {
		return len(c.docs), nil
	}
	ids, _, err := c.candidateIDs(filter)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, id := range ids {
		d := c.docs[id]
		if d == nil {
			continue
		}
		ok, err := matchDoc(d, filter)
		if err != nil {
			return 0, err
		}
		if ok {
			n++
		}
	}
	return n, nil
}

// Update applies set to all documents matching filter and returns how
// many documents changed.
func (c *Collection) Update(filter Doc, set Doc) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids, _, err := c.candidateIDs(filter)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, id := range ids {
		d := c.docs[id]
		if d == nil {
			continue
		}
		ok, err := matchDoc(d, filter)
		if err != nil {
			return 0, err
		}
		if !ok {
			continue
		}
		for _, idx := range c.indexes {
			idx.remove(d, id)
		}
		for k, v := range set {
			setPath(d, k, v)
		}
		for _, idx := range c.indexes {
			idx.add(d, id)
		}
		n++
	}
	return n, nil
}

// Delete removes all matching documents and returns how many were
// removed.
func (c *Collection) Delete(filter Doc) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids, _, err := c.candidateIDs(filter)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, id := range ids {
		d := c.docs[id]
		if d == nil {
			continue
		}
		ok, err := matchDoc(d, filter)
		if err != nil {
			return 0, err
		}
		if !ok {
			continue
		}
		for _, idx := range c.indexes {
			idx.remove(d, id)
		}
		delete(c.docs, id)
		n++
	}
	if n > 0 {
		kept := c.order[:0]
		for _, id := range c.order {
			if _, ok := c.docs[id]; ok {
				kept = append(kept, id)
			}
		}
		c.order = kept
	}
	return n, nil
}

// candidateIDs returns the document ids a filter needs to examine,
// using an index when the filter constrains an indexed field, plus a
// flag reporting whether a full scan was used. Callers must hold at
// least a read lock.
func (c *Collection) candidateIDs(filter Doc) ([]int64, bool, error) {
	for field, cond := range filter {
		if strings.HasPrefix(field, "$") {
			continue
		}
		idx, ok := c.indexes[field]
		if !ok {
			continue
		}
		// Equality: direct literal or {"$eq": v}.
		if m, isOp := cond.(map[string]any); isOp {
			if eq, ok := m["$eq"]; ok && len(m) == 1 {
				return idx.lookupEq(eq), false, nil
			}
			if ids, ok := idx.lookupRange(m); ok {
				return ids, false, nil
			}
			continue
		}
		return idx.lookupEq(cond), false, nil
	}
	return c.order, true, nil
}

// cloneDoc deep-copies a document (maps and slices; scalars are
// immutable).
func cloneDoc(d Doc) Doc {
	out := make(Doc, len(d))
	for k, v := range d {
		out[k] = cloneValue(v)
	}
	return out
}

func cloneValue(v any) any {
	switch t := v.(type) {
	case map[string]any:
		return cloneDoc(t)
	case []any:
		out := make([]any, len(t))
		for i, e := range t {
			out[i] = cloneValue(e)
		}
		return out
	default:
		return v
	}
}

// lookup resolves a dotted field path inside a document.
func lookup(d Doc, path string) (any, bool) {
	cur := any(d)
	for {
		i := strings.IndexByte(path, '.')
		var head string
		if i < 0 {
			head = path
		} else {
			head = path[:i]
		}
		m, ok := cur.(map[string]any)
		if !ok {
			return nil, false
		}
		cur, ok = m[head]
		if !ok {
			return nil, false
		}
		if i < 0 {
			return cur, true
		}
		path = path[i+1:]
	}
}

// setPath writes a value at a dotted path, creating intermediate maps.
func setPath(d Doc, path string, v any) {
	cur := d
	for {
		i := strings.IndexByte(path, '.')
		if i < 0 {
			cur[path] = v
			return
		}
		head := path[:i]
		next, ok := cur[head].(map[string]any)
		if !ok {
			next = make(map[string]any)
			cur[head] = next
		}
		cur = next
		path = path[i+1:]
	}
}

// compareValues orders two document values: nil < bool < number <
// string < time. Numbers compare numerically across int/int64/float64.
func compareValues(a, b any) int {
	ra, rb := rank(a), rank(b)
	if ra != rb {
		if ra < rb {
			return -1
		}
		return 1
	}
	switch ra {
	case 0:
		return 0
	case 1:
		ab, bb := a.(bool), b.(bool)
		switch {
		case ab == bb:
			return 0
		case !ab:
			return -1
		default:
			return 1
		}
	case 2:
		fa, fb := toFloat(a), toFloat(b)
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		default:
			return 0
		}
	case 3:
		return strings.Compare(a.(string), b.(string))
	default:
		ta, tb := a.(time.Time), b.(time.Time)
		switch {
		case ta.Before(tb):
			return -1
		case ta.After(tb):
			return 1
		default:
			return 0
		}
	}
}

func rank(v any) int {
	switch v.(type) {
	case nil:
		return 0
	case bool:
		return 1
	case int, int32, int64, float32, float64:
		return 2
	case string:
		return 3
	case time.Time:
		return 4
	default:
		return 5
	}
}

func toFloat(v any) float64 {
	switch t := v.(type) {
	case int:
		return float64(t)
	case int32:
		return float64(t)
	case int64:
		return float64(t)
	case float32:
		return float64(t)
	case float64:
		return t
	default:
		return 0
	}
}

func comparable2(a, b any) bool { return rank(a) == rank(b) && rank(a) < 5 }

// FieldValues returns the value of one field across all documents
// matching filter, skipping documents lacking the field. It avoids
// cloning whole documents, making it the fast path for aggregations
// that touch a single column (e.g. histogram queries).
func (c *Collection) FieldValues(filter Doc, field string) ([]any, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ids, _, err := c.candidateIDs(filter)
	if err != nil {
		return nil, err
	}
	var out []any
	for _, id := range ids {
		d := c.docs[id]
		if d == nil {
			continue
		}
		ok, err := matchDoc(d, filter)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		if v, present := lookup(d, field); present {
			out = append(out, cloneValue(v))
		}
	}
	return out, nil
}
