// Package docstore implements the long-term storage substrate of the
// alarm pipeline — the role MongoDB plays in the paper (§4.2, "Batch
// Component / Alarm History").
//
// It is a schema-flexible document store: alarms are stored directly
// as JSON-like documents (nested maps), queried by field path with
// Mongo-style operator filters, optionally accelerated by hash or
// ordered indexes, and aggregated through a pipeline (match → group →
// sort → …) that serves the per-device alarm histograms of §4.1 and
// the location queries of §4.2. Schema flexibility is exactly why the
// paper chose a document store: "the structure of an alarm differs
// across sensor types and even across software updates" (§4.3).
//
// Internally each collection is hash-partitioned: documents split
// across P partitions (default one per CPU, minimum two), each with
// its own lock, document map, insertion order, and index shards, so
// inserts and queries on different devices proceed in parallel
// instead of funnelling through one collection-wide mutex. A
// collection may declare a shard key (the history uses the device
// address); documents then route by the hash of that field, and
// queries that pin the shard key by equality touch exactly one
// partition. SetSimulatedRTT emulates remote partition servers: every
// partition round-trip sleeps while holding that partition's lock,
// and multi-partition operations fan out concurrently, so the
// partition count is a measurable throughput knob even on one CPU.
package docstore

import (
	"errors"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Common errors.
var (
	ErrNotFound         = errors.New("docstore: document not found")
	ErrBadFilter        = errors.New("docstore: malformed filter")
	ErrIndexExists      = errors.New("docstore: index already exists")
	ErrIndexAbsent      = errors.New("docstore: no such index")
	ErrCollectionAbsent = errors.New("docstore: unknown collection")
	ErrShardKey         = errors.New("docstore: shard-key field is immutable")
	ErrShardKeyMismatch = errors.New("docstore: collection exists with a different shard key")
)

// Doc is one stored document. Values are JSON-shaped: string, float64,
// int, int64, bool, time.Time, nil, []any, or nested Doc /
// map[string]any.
type Doc = map[string]any

// DB is a set of named collections sharing a partition count. A DB
// from NewDB lives in memory only; one from OpenDB additionally
// persists every collection to a data directory and recovers it on
// the next open (durable.go).
type DB struct {
	mu          sync.RWMutex
	partitions  int
	collections map[string]*Collection

	// dur is the durable half of the database (data directory, group
	// syncer, checkpointer, sticky error); nil on a memory-only DB.
	dur *durableDB
}

// NewDB creates an empty database with the default partition count
// (one partition per CPU, minimum two).
func NewDB() *DB { return NewDBWithPartitions(0) }

// NewDBWithPartitions creates an empty database whose collections
// split documents across p partitions; p <= 0 selects the default.
func NewDBWithPartitions(p int) *DB {
	if p <= 0 {
		p = defaultPartitions()
	}
	return &DB{partitions: p, collections: make(map[string]*Collection)}
}

func defaultPartitions() int {
	if n := runtime.GOMAXPROCS(0); n > 2 {
		return n
	}
	return 2
}

// Partitions returns the partition count new collections receive.
func (db *DB) Partitions() int { return db.partitions }

// Collection returns the named collection, creating it on first use
// (matching document-store ergonomics). A collection created this way
// has no shard key (documents spread round-robin by id); an existing
// collection is returned as-is, whatever its shard key — use
// CollectionWithShardKey to assert one.
func (db *DB) Collection(name string) *Collection {
	c, _ := db.collection(name, "", false)
	return c
}

// CollectionWithShardKey returns the named collection, creating it
// with the given shard key on first use. Documents route to a
// partition by the hash of the shard-key field, so all documents of
// one device land together and equality queries on the key touch a
// single partition. Returns ErrShardKeyMismatch when the collection
// already exists with a different key.
func (db *DB) CollectionWithShardKey(name, key string) (*Collection, error) {
	return db.collection(name, key, true)
}

func (db *DB) collection(name, key string, wantKey bool) (*Collection, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	c, ok := db.collections[name]
	if ok {
		if wantKey && c.shardKey != key {
			return nil, fmt.Errorf("%w: %s has %q, requested %q",
				ErrShardKeyMismatch, name, c.shardKey, key)
		}
		return c, nil
	}
	c = newCollection(name, key, db.partitions)
	if db.dur != nil {
		if err := db.dur.initCollection(db, c); err != nil {
			if wantKey {
				return nil, err
			}
			// Collection() has no error path; the collection serves
			// memory-only and the failure surfaces on Sync/Close.
			db.dur.noteErr(err)
		}
	}
	db.collections[name] = c
	return c, nil
}

// Drop removes a collection and its documents — on a durable database
// its on-disk files too. Dropping a collection other goroutines are
// still writing to is caller misuse (their appends land in closed
// logs and surface as a sticky error).
func (db *DB) Drop(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	c, ok := db.collections[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrCollectionAbsent, name)
	}
	delete(db.collections, name)
	if c.dur != nil {
		for _, p := range c.parts {
			if w := p.wal.Load(); w != nil {
				if err := w.close(); err != nil {
					db.dur.noteErr(err)
				}
			}
		}
		if err := os.RemoveAll(c.dur.dir); err != nil {
			return fmt.Errorf("docstore: drop %s: %w", name, err)
		}
	}
	return nil
}

// Collections lists collection names.
func (db *DB) Collections() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.collections))
	for n := range db.collections {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Collection stores documents addressed by an auto-assigned int64 _id,
// hash-partitioned so operations on different partitions proceed in
// parallel.
type Collection struct {
	name     string
	shardKey string // routing field; "" = route by id
	parts    []*partition
	nextID   atomic.Int64
	// rttNanos, when non-zero, is slept once per partition round-trip
	// while holding that partition's lock, emulating remote partition
	// servers; multi-partition operations then fan out concurrently.
	rttNanos atomic.Int64

	// idxMu serializes index DDL; idxFields is the collection-level
	// registry (each partition holds the authoritative shard).
	idxMu     sync.Mutex
	idxFields map[string]struct{}

	// dur binds the collection to its on-disk directory on a durable
	// database, nil otherwise. ret holds the retention window
	// (SetRetention); a pointer swap rather than a mutex, so reading
	// it can never interleave with the idxMu-holding DDL paths that
	// persist it into meta.json.
	dur *durableCollection
	ret atomic.Pointer[retentionCfg]
}

func newCollection(name, shardKey string, partitions int) *Collection {
	if partitions <= 0 {
		partitions = defaultPartitions()
	}
	c := &Collection{
		name:      name,
		shardKey:  shardKey,
		parts:     make([]*partition, partitions),
		idxFields: make(map[string]struct{}),
	}
	for i := range c.parts {
		c.parts[i] = newPartition()
	}
	return c
}

// Name returns the collection name.
func (c *Collection) Name() string { return c.name }

// ShardKey returns the routing field, or "" when documents spread by
// id.
func (c *Collection) ShardKey() string { return c.shardKey }

// NumPartitions returns how many partitions the collection spans.
func (c *Collection) NumPartitions() int { return len(c.parts) }

// SetSimulatedRTT makes every partition round-trip take at least d,
// held under that partition's lock — emulating the network latency of
// the remote document store in the paper's deployment (§4.3) at
// per-partition granularity. Multi-partition operations fan out
// concurrently while a RTT is configured, so more partitions mean
// more overlapped round-trips. Zero (the default) disables the
// simulation. Safe to call concurrently with any operation.
func (c *Collection) SetSimulatedRTT(d time.Duration) { c.rttNanos.Store(int64(d)) }

// simulateRTT stalls for the configured remote round-trip. It runs
// inside partition critical sections on purpose: the sleep models the
// paper's remote document store, whose latency IS the time the
// partition is busy serving one operation.
//
//alarmvet:ignore the sleep under the partition lock is the modeled remote round-trip (SetSimulatedRTT)
func (c *Collection) simulateRTT() {
	if d := c.rttNanos.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
}

// Len returns the number of stored documents. It is lock-free: each
// partition maintains an atomic document count, so monitoring paths
// (/stats) never contend with the ingest or query locks.
func (c *Collection) Len() int {
	var n int64
	for _, p := range c.parts {
		n += p.size.Load()
	}
	return int(n)
}

// routeDoc picks the partition a new document belongs to: by shard-key
// hash when the collection has one and the document carries it, by id
// otherwise.
func (c *Collection) routeDoc(doc Doc, id int64) *partition {
	if c.shardKey != "" {
		if v, ok := lookup(doc, c.shardKey); ok {
			if h, hok := hashValue(v); hok {
				return c.parts[h%uint64(len(c.parts))]
			}
		}
	}
	return c.parts[uint64(id)%uint64(len(c.parts))]
}

// pruneTo reports the single partition index a filter can be served
// from, which requires an equality condition on the shard key. All
// documents carrying that key value live in the hashed partition, and
// equality cannot match documents lacking the field, so pruning never
// loses matches.
func (c *Collection) pruneTo(filter Doc) (int, bool) {
	if c.shardKey == "" {
		return 0, false
	}
	cond, ok := filter[c.shardKey]
	if !ok {
		return 0, false
	}
	v := cond
	if m, isOp := cond.(map[string]any); isOp {
		eq, ok := m["$eq"]
		if !ok || len(m) != 1 {
			return 0, false
		}
		v = eq
	}
	h, ok := hashValue(v)
	if !ok {
		return 0, false
	}
	return int(h % uint64(len(c.parts))), true
}

// targetParts returns the partitions a filter must visit.
func (c *Collection) targetParts(filter Doc) []*partition {
	if i, ok := c.pruneTo(filter); ok {
		return c.parts[i : i+1]
	}
	return c.parts
}

// forEach runs fn over the given partitions: sequentially for the
// in-process store, concurrently (one goroutine per partition) when a
// simulated round-trip is configured — the fan-out a client of a real
// partitioned store would perform. Every partition runs to completion
// in both modes (an error in one partition does not spare the others
// their side effects — identical stored state whatever the RTT knob),
// and the first error is returned.
func (c *Collection) forEach(parts []*partition, fn func(i int, p *partition) error) error {
	if len(parts) == 1 || c.rttNanos.Load() == 0 {
		var first error
		for i, p := range parts {
			if err := fn(i, p); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	errs := make([]error, len(parts))
	var wg sync.WaitGroup
	for i, p := range parts {
		wg.Add(1)
		go func(i int, p *partition) {
			defer wg.Done()
			errs[i] = fn(i, p)
		}(i, p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Insert stores a copy of doc and returns its assigned _id. On a
// durable collection the insert is logged to the owning partition's
// WAL under the same lock that applies it.
func (c *Collection) Insert(doc Doc) int64 {
	id := c.nextID.Add(1) - 1
	p := c.routeDoc(doc, id)
	p.writeLock()
	c.simulateRTT()
	d := p.insertLocked(doc, id)
	if w := p.wal.Load(); w != nil {
		w.appendDocs(c.syncEveryAppend(), d)
	}
	p.writeUnlock()
	return id
}

// InsertMany stores all docs and returns their ids. The batch is
// grouped by target partition and each partition's lock is acquired
// exactly once, so a batch costs P lock round-trips at most — not one
// per document.
func (c *Collection) InsertMany(docs []Doc) []int64 {
	n := len(docs)
	if n == 0 {
		return nil
	}
	base := c.nextID.Add(int64(n)) - int64(n)
	ids := make([]int64, n)
	groups := make(map[*partition][]int)
	for i, d := range docs {
		ids[i] = base + int64(i)
		p := c.routeDoc(d, ids[i])
		groups[p] = append(groups[p], i)
	}
	touched := make([]*partition, 0, len(groups))
	for p := range groups {
		touched = append(touched, p)
	}
	c.forEach(touched, func(_ int, p *partition) error {
		p.writeLock()
		defer p.writeUnlock()
		c.simulateRTT()
		w := p.wal.Load()
		var stored []Doc
		if w != nil {
			stored = make([]Doc, 0, len(groups[p]))
		}
		for _, i := range groups[p] {
			d := p.insertLocked(docs[i], ids[i])
			if w != nil {
				stored = append(stored, d)
			}
		}
		if w != nil && len(stored) > 0 {
			// The whole per-partition batch travels as one WAL frame:
			// the write-behind flush upstream is the batching point.
			w.appendDocs(c.syncEveryAppend(), stored...)
		}
		return nil
	})
	return ids
}

// Get returns the document with the given _id.
func (c *Collection) Get(id int64) (Doc, error) {
	// Under id routing the owning partition is known; under shard-key
	// routing the id alone does not name it, so probe (map misses are
	// cheap metadata lookups and charge no simulated round-trip).
	probe := c.parts
	if c.shardKey == "" {
		i := uint64(id) % uint64(len(c.parts))
		probe = c.parts[i : i+1]
	}
	for _, p := range probe {
		p.mu.RLock()
		s, ok := p.docs[id]
		var out Doc
		if ok {
			c.simulateRTT()
			out = s.clone()
		}
		p.mu.RUnlock()
		if ok {
			return out, nil
		}
	}
	return nil, fmt.Errorf("%w: _id=%d", ErrNotFound, id)
}

// FindOptions controls Find result shaping.
type FindOptions struct {
	Sort  string // field path; prefix with "-" for descending
	Limit int    // 0 = unlimited
	Skip  int
}

// match pairs a clone of a matched document with its id so
// cross-partition results can be merged back into insertion order.
type match struct {
	id  int64
	doc Doc
}

// scanMatches gathers clones of every document matching filter across
// the filter's target partitions, merged into insertion (id) order.
func (c *Collection) scanMatches(filter Doc) ([]match, error) {
	parts := c.targetParts(filter)
	results := make([][]match, len(parts))
	err := c.forEach(parts, func(i int, p *partition) error {
		p.mu.RLock()
		defer p.mu.RUnlock()
		c.simulateRTT()
		var out []match
		err := p.forEachMatch(filter, func(id int64, s *stored) {
			out = append(out, match{id: id, doc: s.clone()})
		})
		results[i] = out
		return err
	})
	if err != nil {
		return nil, err
	}
	return mergeByID(results), nil
}

// mergeByID concatenates per-partition scan results and restores the
// collection-wide insertion order. Ids come from one collection-wide
// counter, so ascending id IS the global insertion order across
// partitions.
func mergeByID(results [][]match) []match {
	total := 0
	for _, r := range results {
		total += len(r)
	}
	if total == 0 {
		return nil
	}
	all := make([]match, 0, total)
	for _, r := range results {
		all = append(all, r...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].id < all[j].id })
	return all
}

// Tail returns copies of the n most recently inserted documents, in
// insertion order (the oldest of the tail first). Unlike Find with a
// sort, it reads only each partition's last n order entries, so the
// cost is bounded by n × partitions however large the collection has
// grown — the read path for bounded recent-window consumers (e.g.
// the retrainer's history pull) over an unbounded ingest stream.
// n <= 0 returns every document. Per-partition tails are served from
// optimistic version-validated snapshots when the partition has not
// changed since the last identical scan (see optimistic.go) — the
// repeated bounded scans of the retrainer then skip the read lock and
// the simulated round-trip entirely.
func (c *Collection) Tail(n int) []Doc {
	if n < 0 {
		n = 0
	}
	results := make([][]match, len(c.parts))
	c.forEach(c.parts, func(i int, p *partition) error {
		if tail, hit := p.cachedTail(n); hit {
			// Serve clones: the snapshot is shared and immutable.
			out := make([]match, len(tail))
			for j, m := range tail {
				out[j] = match{id: m.id, doc: cloneDoc(m.doc)}
			}
			results[i] = out
			return nil
		}
		p.mu.RLock()
		defer p.mu.RUnlock()
		c.simulateRTT()
		order := p.order
		if n > 0 && len(order) > n {
			order = order[len(order)-n:]
		}
		out := make([]match, 0, len(order))
		for _, id := range order {
			if s, ok := p.docs[id]; ok {
				out = append(out, match{id: id, doc: s.clone()})
			}
		}
		p.storeTail(n, p.seq.Load(), out)
		// The published snapshot owns these docs now; hand the caller
		// clones so later mutation cannot corrupt it.
		served := make([]match, len(out))
		for j, m := range out {
			served[j] = match{id: m.id, doc: cloneDoc(m.doc)}
		}
		results[i] = served
		return nil
	})
	all := mergeByID(results)
	if n > 0 && len(all) > n {
		all = all[len(all)-n:]
	}
	out := make([]Doc, len(all))
	for i, m := range all {
		out[i] = m.doc
	}
	return out
}

// Find returns copies of all documents matching filter, in insertion
// order unless opts.Sort is set.
func (c *Collection) Find(filter Doc, opts ...FindOptions) ([]Doc, error) {
	var opt FindOptions
	if len(opts) > 0 {
		opt = opts[0]
	}
	matches, err := c.scanMatches(filter)
	if err != nil {
		return nil, err
	}
	var out []Doc
	if len(matches) > 0 {
		out = make([]Doc, len(matches))
		for i, m := range matches {
			out[i] = m.doc
		}
	}
	if opt.Sort != "" {
		field, desc := opt.Sort, false
		if strings.HasPrefix(field, "-") {
			field, desc = field[1:], true
		}
		sort.SliceStable(out, func(i, j int) bool {
			vi, _ := lookup(out[i], field)
			vj, _ := lookup(out[j], field)
			cmp := compareValues(vi, vj)
			if desc {
				return cmp > 0
			}
			return cmp < 0
		})
	}
	if opt.Skip > 0 {
		if opt.Skip >= len(out) {
			return nil, nil
		}
		out = out[opt.Skip:]
	}
	if opt.Limit > 0 && len(out) > opt.Limit {
		out = out[:opt.Limit]
	}
	return out, nil
}

// FindOne returns the first matching document.
func (c *Collection) FindOne(filter Doc) (Doc, error) {
	docs, err := c.Find(filter, FindOptions{Limit: 1})
	if err != nil {
		return nil, err
	}
	if len(docs) == 0 {
		return nil, ErrNotFound
	}
	return docs[0], nil
}

// Count returns the number of matching documents.
func (c *Collection) Count(filter Doc) (int, error) {
	if len(filter) == 0 {
		return c.Len(), nil
	}
	parts := c.targetParts(filter)
	counts := make([]int, len(parts))
	err := c.forEach(parts, func(i int, p *partition) error {
		p.mu.RLock()
		defer p.mu.RUnlock()
		c.simulateRTT()
		return p.forEachMatch(filter, func(int64, *stored) { counts[i]++ })
	})
	if err != nil {
		return 0, err
	}
	n := 0
	for _, cnt := range counts {
		n += cnt
	}
	return n, nil
}

// checkShardKeySet rejects updates that would move a document between
// partitions: the shard key is immutable, as in real partitioned
// stores.
func (c *Collection) checkShardKeySet(set Doc) error {
	if c.shardKey == "" {
		return nil
	}
	for k := range set {
		if k == c.shardKey || strings.HasPrefix(c.shardKey, k+".") ||
			strings.HasPrefix(k, c.shardKey+".") {
			return fmt.Errorf("%w: %s", ErrShardKey, k)
		}
	}
	return nil
}

// Update applies set to all documents matching filter and returns how
// many documents changed. Writing the shard-key field is an error
// (ErrShardKey): it would require moving documents across partitions.
func (c *Collection) Update(filter Doc, set Doc) (int, error) {
	if err := c.checkShardKeySet(set); err != nil {
		return 0, err
	}
	parts := c.targetParts(filter)
	counts := make([]int, len(parts))
	err := c.forEach(parts, func(i int, p *partition) error {
		p.writeLock()
		defer p.writeUnlock()
		c.simulateRTT()
		n, err := p.updateLocked(filter, set)
		counts[i] = n
		if n > 0 {
			if w := p.wal.Load(); w != nil {
				w.appendOp(walOp{Op: "upd", Filter: encodeValue(filter), Set: encodeValue(set)},
					c.syncEveryAppend())
			}
		}
		return err
	})
	n := 0
	for _, cnt := range counts {
		n += cnt
	}
	return n, err
}

// UpdateOp is one filter/set pair of a batched update.
type UpdateOp struct {
	Filter Doc
	Set    Doc
}

// UpdateMany applies a batch of update operations, acquiring each
// partition's lock once for the whole batch (operations pinned to one
// partition by a shard-key equality only visit that partition).
// Returns the total number of documents changed.
func (c *Collection) UpdateMany(ops []UpdateOp) (int, error) {
	if len(ops) == 0 {
		return 0, nil
	}
	for _, op := range ops {
		if err := c.checkShardKeySet(op.Set); err != nil {
			return 0, err
		}
	}
	opsFor := make([][]UpdateOp, len(c.parts))
	for _, op := range ops {
		if i, ok := c.pruneTo(op.Filter); ok {
			opsFor[i] = append(opsFor[i], op)
		} else {
			for i := range c.parts {
				opsFor[i] = append(opsFor[i], op)
			}
		}
	}
	counts := make([]int, len(c.parts))
	err := c.forEach(c.parts, func(i int, p *partition) error {
		if len(opsFor[i]) == 0 {
			return nil
		}
		p.writeLock()
		defer p.writeUnlock()
		c.simulateRTT()
		w := p.wal.Load()
		for _, op := range opsFor[i] {
			n, err := p.updateLocked(op.Filter, op.Set)
			counts[i] += n
			if n > 0 && w != nil {
				w.appendOp(walOp{Op: "upd", Filter: encodeValue(op.Filter), Set: encodeValue(op.Set)},
					c.syncEveryAppend())
			}
			if err != nil {
				return err
			}
		}
		return nil
	})
	n := 0
	for _, cnt := range counts {
		n += cnt
	}
	return n, err
}

// Delete removes all matching documents and returns how many were
// removed.
func (c *Collection) Delete(filter Doc) (int, error) {
	parts := c.targetParts(filter)
	counts := make([]int, len(parts))
	err := c.forEach(parts, func(i int, p *partition) error {
		p.writeLock()
		defer p.writeUnlock()
		c.simulateRTT()
		n, err := p.deleteLocked(filter)
		counts[i] = n
		if n > 0 {
			if w := p.wal.Load(); w != nil {
				w.appendOp(walOp{Op: "del", Filter: encodeValue(filter)}, c.syncEveryAppend())
			}
		}
		return err
	})
	n := 0
	for _, cnt := range counts {
		n += cnt
	}
	return n, err
}

// FieldValues returns the value of one field across all documents
// matching filter, skipping documents lacking the field. It avoids
// cloning whole documents, making it the fast path for aggregations
// that touch a single column (e.g. histogram queries). Values arrive
// grouped by partition, not in global insertion order.
//
// Queries pinned to one partition by a shard-key equality (the
// repeated per-device histogram shape) read optimistically: a result
// snapshot published at the partition's current version is served
// without the read lock or a store round-trip, falling back to the
// locked path on any version conflict (see optimistic.go).
func (c *Collection) FieldValues(filter Doc, field string) ([]any, error) {
	if pi, ok := c.pruneTo(filter); ok {
		if key, cacheable := cacheKey(filter, field); cacheable {
			p := c.parts[pi]
			if vals, hit := p.cachedFieldValues(key); hit {
				return vals, nil
			}
			return c.fieldValuesFill(p, filter, field, key)
		}
	}
	parts := c.targetParts(filter)
	results := make([][]any, len(parts))
	err := c.forEach(parts, func(i int, p *partition) error {
		p.mu.RLock()
		defer p.mu.RUnlock()
		c.simulateRTT()
		var out []any
		err := p.forEachMatch(filter, func(_ int64, s *stored) {
			if v, present := lookup(s.doc, field); present {
				out = append(out, cloneValue(v))
			}
		})
		results[i] = out
		return err
	})
	if err != nil {
		return nil, err
	}
	var out []any
	for _, r := range results {
		out = append(out, r...)
	}
	return out, nil
}

// fieldValuesFill computes a single-partition FieldValues under the
// read lock and publishes the result as an optimistic snapshot at the
// partition version it was captured at. The cached slice stays
// immutable; the caller gets a private copy.
func (c *Collection) fieldValuesFill(p *partition, filter Doc, field, key string) ([]any, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	c.simulateRTT()
	var vals []any
	err := p.forEachMatch(filter, func(_ int64, s *stored) {
		if v, present := lookup(s.doc, field); present {
			vals = append(vals, cloneValue(v))
		}
	})
	if err != nil {
		return nil, err
	}
	// Holding the read lock excludes writers, so the version is even
	// and consistent with what was just scanned.
	p.storeFieldValues(key, p.seq.Load(), vals)
	return cloneValues(vals), nil
}

// hashValue hashes an indexable value (string, number, bool) for
// shard routing, using the same normalization as the index keys so 3
// and 3.0 route identically — matching equalValues.
func hashValue(v any) (uint64, bool) {
	k, ok := keyFor(v)
	if !ok {
		return 0, false
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	mix(byte(k.rank))
	if k.rank == 3 {
		for i := 0; i < len(k.str); i++ {
			mix(k.str[i])
		}
	} else {
		if k.num == 0 {
			// -0.0 == 0.0 but their bit patterns differ; normalize so
			// equal values always route to the same partition.
			k.num = 0
		}
		bits := math.Float64bits(k.num)
		for i := 0; i < 8; i++ {
			mix(byte(bits >> (8 * i)))
		}
	}
	return h, true
}

// cloneDoc deep-copies a document (maps and slices; scalars are
// immutable).
func cloneDoc(d Doc) Doc {
	out := make(Doc, len(d))
	for k, v := range d {
		out[k] = cloneValue(v)
	}
	return out
}

func cloneValue(v any) any {
	switch t := v.(type) {
	case map[string]any:
		return cloneDoc(t)
	case []any:
		out := make([]any, len(t))
		for i, e := range t {
			out[i] = cloneValue(e)
		}
		return out
	default:
		return v
	}
}

// valueIsNested reports whether v is a mutable container that read
// isolation must deep-copy.
func valueIsNested(v any) bool {
	switch v.(type) {
	case map[string]any, []any:
		return true
	default:
		return false
	}
}

// docIsDeep reports whether any top-level value is nested; flat
// documents (the alarm fast path) then copy-on-read with a single
// shallow map copy instead of a recursive clone.
func docIsDeep(d Doc) bool {
	for _, v := range d {
		if valueIsNested(v) {
			return true
		}
	}
	return false
}

// lookup resolves a dotted field path inside a document.
func lookup(d Doc, path string) (any, bool) {
	cur := any(d)
	for {
		i := strings.IndexByte(path, '.')
		var head string
		if i < 0 {
			head = path
		} else {
			head = path[:i]
		}
		m, ok := cur.(map[string]any)
		if !ok {
			return nil, false
		}
		cur, ok = m[head]
		if !ok {
			return nil, false
		}
		if i < 0 {
			return cur, true
		}
		path = path[i+1:]
	}
}

// setPath writes a value at a dotted path, creating intermediate maps.
func setPath(d Doc, path string, v any) {
	cur := d
	for {
		i := strings.IndexByte(path, '.')
		if i < 0 {
			cur[path] = v
			return
		}
		head := path[:i]
		next, ok := cur[head].(map[string]any)
		if !ok {
			next = make(map[string]any)
			cur[head] = next
		}
		cur = next
		path = path[i+1:]
	}
}

// compareValues orders two document values: nil < bool < number <
// string < time. Numbers compare numerically across int/int64/float64.
func compareValues(a, b any) int {
	ra, rb := rank(a), rank(b)
	if ra != rb {
		if ra < rb {
			return -1
		}
		return 1
	}
	switch ra {
	case 0:
		return 0
	case 1:
		ab, bb := a.(bool), b.(bool)
		switch {
		case ab == bb:
			return 0
		case !ab:
			return -1
		default:
			return 1
		}
	case 2:
		fa, fb := toFloat(a), toFloat(b)
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		default:
			return 0
		}
	case 3:
		return strings.Compare(a.(string), b.(string))
	default:
		ta, tb := a.(time.Time), b.(time.Time)
		switch {
		case ta.Before(tb):
			return -1
		case ta.After(tb):
			return 1
		default:
			return 0
		}
	}
}

func rank(v any) int {
	switch v.(type) {
	case nil:
		return 0
	case bool:
		return 1
	case int, int32, int64, float32, float64:
		return 2
	case string:
		return 3
	case time.Time:
		return 4
	default:
		return 5
	}
}

func toFloat(v any) float64 {
	switch t := v.(type) {
	case int:
		return float64(t)
	case int32:
		return float64(t)
	case int64:
		return float64(t)
	case float32:
		return float64(t)
	case float64:
		return t
	default:
		return 0
	}
}

func comparable2(a, b any) bool { return rank(a) == rank(b) && rank(a) < 5 }
