package docstore

import (
	"fmt"
	"sort"
	"strings"
)

// Stage is one step of an aggregation pipeline.
type Stage interface {
	apply(in []Doc) ([]Doc, error)
}

// Aggregate runs a pipeline over the documents matched by filter.
// It is the store's analog of MongoDB's aggregation framework and is
// what the batch component uses to compute "a histogram of the number
// of alarms starting from a specific time t" per device (§4.1).
//
// Pipelines whose shape the planner recognizes execute as pushdown
// aggregations — per-partition partials merged centrally, with the
// filter and any leading Match stages evaluated inside the partition
// scan so non-matching documents are never cloned (pushdown.go).
// Unplannable shapes fall back to AggregateStreaming; use Explain to
// see which way a pipeline goes.
func (c *Collection) Aggregate(filter Doc, stages ...Stage) ([]Doc, error) {
	plan, ok, err := planAggregate(filter, stages)
	if err != nil {
		return nil, err
	}
	if !ok {
		return c.AggregateStreaming(filter, stages...)
	}
	return c.runPushdown(plan)
}

// AggregateStreaming runs the pipeline the pre-pushdown way: Find
// streams a clone of every matched document out of every partition and
// the stages apply centrally, one after another. It is kept exported
// as the executable specification of Aggregate — the equivalence
// oracle the pushdown battery (property, fuzz, and race tests) pins
// the planner against.
func (c *Collection) AggregateStreaming(filter Doc, stages ...Stage) ([]Doc, error) {
	docs, err := c.Find(filter)
	if err != nil {
		return nil, err
	}
	return applyStages(docs, stages)
}

// Match filters documents mid-pipeline.
type Match struct{ Filter Doc }

func (m Match) apply(in []Doc) ([]Doc, error) {
	var out []Doc
	for _, d := range in {
		ok, err := matchDoc(d, m.Filter)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, d)
		}
	}
	return out, nil
}

// Accumulator names an aggregation function inside Group.
type Accumulator struct {
	Op    string // "count", "sum", "avg", "min", "max", "first"
	Field string // source field path (unused for count)
}

// Group groups documents by the values of By (one or more field
// paths) and emits one document per group: the group key fields plus
// one field per accumulator.
type Group struct {
	By   []string
	Accs map[string]Accumulator // output field -> accumulator
}

type groupState struct {
	key    []any
	count  int
	sums   map[string]float64
	mins   map[string]any
	maxs   map[string]any
	firsts map[string]any
	seen   map[string]int
}

func (g Group) apply(in []Doc) ([]Doc, error) {
	if err := g.validate(); err != nil {
		return nil, err
	}
	groups := make(map[string]*groupState)
	var orderKeys []string
	for _, d := range in {
		key := make([]any, len(g.By))
		var sb strings.Builder
		for i, f := range g.By {
			v, _ := lookup(d, f)
			key[i] = v
			fmt.Fprintf(&sb, "%v\x00", v)
		}
		ks := sb.String()
		st, ok := groups[ks]
		if !ok {
			st = &groupState{
				key:    key,
				sums:   make(map[string]float64),
				mins:   make(map[string]any),
				maxs:   make(map[string]any),
				firsts: make(map[string]any),
				seen:   make(map[string]int),
			}
			groups[ks] = st
			orderKeys = append(orderKeys, ks)
		}
		st.count++
		for out, acc := range g.Accs {
			if acc.Op == "count" {
				continue
			}
			v, ok := lookup(d, acc.Field)
			if !ok {
				continue
			}
			switch acc.Op {
			case "sum", "avg":
				st.sums[out] += toFloat(v)
				st.seen[out]++
			case "min":
				if cur, ok := st.mins[out]; !ok || compareValues(v, cur) < 0 {
					st.mins[out] = v
				}
			case "max":
				if cur, ok := st.maxs[out]; !ok || compareValues(v, cur) > 0 {
					st.maxs[out] = v
				}
			case "first":
				if _, ok := st.firsts[out]; !ok {
					st.firsts[out] = v
				}
			}
		}
	}
	out := make([]Doc, 0, len(groups))
	for _, ks := range orderKeys {
		st := groups[ks]
		d := make(Doc)
		for i, f := range g.By {
			setPath(d, f, st.key[i])
		}
		for name, acc := range g.Accs {
			switch acc.Op {
			case "count":
				d[name] = st.count
			case "sum":
				d[name] = st.sums[name]
			case "avg":
				if n := st.seen[name]; n > 0 {
					d[name] = st.sums[name] / float64(n)
				} else {
					d[name] = 0.0
				}
			case "min":
				d[name] = st.mins[name]
			case "max":
				d[name] = st.maxs[name]
			case "first":
				d[name] = st.firsts[name]
			}
		}
		out = append(out, d)
	}
	return out, nil
}

// SortStage orders documents by a field; prefix with "-" to descend.
type SortStage struct{ Field string }

func (s SortStage) apply(in []Doc) ([]Doc, error) {
	field, desc := s.Field, false
	if strings.HasPrefix(field, "-") {
		field, desc = field[1:], true
	}
	out := make([]Doc, len(in))
	copy(out, in)
	sort.SliceStable(out, func(i, j int) bool {
		vi, _ := lookup(out[i], field)
		vj, _ := lookup(out[j], field)
		cmp := compareValues(vi, vj)
		if desc {
			return cmp > 0
		}
		return cmp < 0
	})
	return out, nil
}

// Limit truncates the pipeline to the first N documents. N must be
// non-negative; a negative N is ErrBadFilter (it used to panic slicing
// in[:N]).
type Limit struct{ N int }

func (l Limit) apply(in []Doc) ([]Doc, error) {
	if l.N < 0 {
		return nil, fmt.Errorf("%w: limit must be non-negative, got %d", ErrBadFilter, l.N)
	}
	if len(in) > l.N {
		in = in[:l.N]
	}
	return in, nil
}

// Project keeps only the named fields (plus _id when requested).
type Project struct{ Fields []string }

func (p Project) apply(in []Doc) ([]Doc, error) {
	out := make([]Doc, len(in))
	for i, d := range in {
		nd := make(Doc, len(p.Fields))
		for _, f := range p.Fields {
			if v, ok := lookup(d, f); ok {
				setPath(nd, f, v)
			}
		}
		out[i] = nd
	}
	return out, nil
}

// Bucket histograms documents by a numeric field into fixed-width
// buckets of the given Width starting at Origin. Output documents have
// fields "bucket" (lower bound) and "count". This is the primitive the
// alarm-history component uses to build per-device alarm histograms.
type Bucket struct {
	Field  string
	Origin float64
	Width  float64
}

func (b Bucket) apply(in []Doc) ([]Doc, error) {
	if b.Width <= 0 {
		return nil, fmt.Errorf("%w: bucket width must be positive", ErrBadFilter)
	}
	counts := make(map[int]int)
	for _, d := range in {
		v, ok := lookup(d, b.Field)
		if !ok || rank(v) != 2 {
			continue
		}
		idx := int((toFloat(v) - b.Origin) / b.Width)
		counts[idx]++
	}
	idxs := make([]int, 0, len(counts))
	for i := range counts {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	out := make([]Doc, len(idxs))
	for i, idx := range idxs {
		out[i] = Doc{
			"bucket": b.Origin + float64(idx)*b.Width,
			"count":  counts[idx],
		}
	}
	return out, nil
}
