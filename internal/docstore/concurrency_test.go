package docstore

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestRaceHammer drives every mutating and reading operation across
// goroutines on overlapping keys. It is primarily a `-race` target:
// the final assertions check the deterministic outcome (counts) and
// that index shards agree with full scans after the dust settles.
func TestRaceHammer(t *testing.T) {
	db := NewDBWithPartitions(4)
	c, err := db.CollectionWithShardKey("alarms", "deviceMac")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CreateIndex("zip"); err != nil {
		t.Fatal(err)
	}

	const (
		insertWorkers = 4
		insertsEach   = 200
		batchWorkers  = 2
		batchesEach   = 10
		batchSize     = 25
		zips          = 8
		devices       = 16
	)
	zip := func(i int) string { return fmt.Sprintf("%04d", 8000+i%zips) }
	mac := func(i int) string { return fmt.Sprintf("mac-%02d", i%devices) }

	var wg sync.WaitGroup
	// Single-document inserters of permanent docs.
	for w := 0; w < insertWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < insertsEach; i++ {
				c.Insert(Doc{
					"deviceMac": mac(w*insertsEach + i),
					"zip":       zip(i),
					"kind":      "keep",
					"n":         i,
				})
			}
		}(w)
	}
	// Batch inserters of temporary docs the deleters race to remove.
	for w := 0; w < batchWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < batchesEach; b++ {
				batch := make([]Doc, batchSize)
				for i := range batch {
					batch[i] = Doc{
						"deviceMac": mac(b*batchSize + i),
						"zip":       zip(i),
						"kind":      "temp",
					}
				}
				c.InsertMany(batch)
			}
		}(w)
	}
	// Updaters touch permanent docs (never changing counted fields).
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := c.Update(Doc{"zip": zip(i)}, Doc{"touched": true}); err != nil {
					t.Errorf("update: %v", err)
					return
				}
				if _, err := c.UpdateMany([]UpdateOp{
					{Filter: Doc{"deviceMac": mac(i)}, Set: Doc{"seen": i}},
					{Filter: Doc{"kind": "temp"}, Set: Doc{"marked": true}},
				}); err != nil {
					t.Errorf("updatemany: %v", err)
					return
				}
			}
		}()
	}
	// Deleters race the batch inserters for the temporary docs.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				if _, err := c.Delete(Doc{"kind": "temp"}); err != nil {
					t.Errorf("delete: %v", err)
					return
				}
			}
		}()
	}
	// Readers: point lookups, scans, counts, histogam-style columns.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if _, err := c.Find(Doc{"zip": zip(i)}); err != nil {
					t.Errorf("find: %v", err)
					return
				}
				if _, err := c.Count(Doc{"kind": "keep"}); err != nil {
					t.Errorf("count: %v", err)
					return
				}
				if _, err := c.FieldValues(Doc{"deviceMac": mac(i)}, "n"); err != nil {
					t.Errorf("fieldvalues: %v", err)
					return
				}
				if _, err := c.Get(int64(i)); err != nil && !errors.Is(err, ErrNotFound) {
					t.Errorf("get: %v", err)
					return
				}
			}
		}(w)
	}
	// Index DDL concurrent with everything above.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if err := c.CreateIndex("kind"); err != nil && !errors.Is(err, ErrIndexExists) {
					t.Errorf("create index: %v", err)
					return
				}
				if err := c.DropIndex("kind"); err != nil && !errors.Is(err, ErrIndexAbsent) {
					t.Errorf("drop index: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	// The temp docs are racy by design; clear the survivors so the
	// final state is deterministic.
	if _, err := c.Delete(Doc{"kind": "temp"}); err != nil {
		t.Fatal(err)
	}
	wantKeep := insertWorkers * insertsEach
	keep, err := c.Count(Doc{"kind": "keep"})
	if err != nil {
		t.Fatal(err)
	}
	if keep != wantKeep {
		t.Errorf("keep count = %d, want %d", keep, wantKeep)
	}
	if c.Len() != wantKeep {
		t.Errorf("len = %d, want %d", c.Len(), wantKeep)
	}

	// Index and scan must agree for every zip, and dropping the index
	// must not change any answer.
	for i := 0; i < zips; i++ {
		indexed, err := c.Count(Doc{"zip": zip(i)})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.DropIndex("zip"); err != nil {
			t.Fatal(err)
		}
		scanned, err := c.Count(Doc{"zip": zip(i)})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.CreateIndex("zip"); err != nil {
			t.Fatal(err)
		}
		if indexed != scanned {
			t.Errorf("zip %s: indexed count %d != scan count %d", zip(i), indexed, scanned)
		}
	}
}

// TestInsertManyBatchesPartitionLocks checks the batched write path's
// contract: ids are assigned in input order and every doc is
// retrievable, including under concurrent batches.
func TestInsertManyConcurrentBatches(t *testing.T) {
	c := NewDBWithPartitions(4).Collection("x")
	const workers, batches, size = 4, 8, 32
	var wg sync.WaitGroup
	idsCh := make(chan []int64, workers*batches)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				docs := make([]Doc, size)
				for i := range docs {
					docs[i] = Doc{"w": w, "b": b, "i": i}
				}
				idsCh <- c.InsertMany(docs)
			}
		}(w)
	}
	wg.Wait()
	close(idsCh)
	seen := make(map[int64]bool)
	for ids := range idsCh {
		if len(ids) != size {
			t.Fatalf("batch returned %d ids", len(ids))
		}
		for j, id := range ids {
			if seen[id] {
				t.Fatalf("id %d assigned twice", id)
			}
			seen[id] = true
			if j > 0 && ids[j] != ids[j-1]+1 {
				t.Fatalf("batch ids not contiguous: %v", ids)
			}
			d, err := c.Get(id)
			if err != nil {
				t.Fatalf("get %d: %v", id, err)
			}
			if d["i"].(int) != j {
				t.Fatalf("doc %d has i=%v, want %d", id, d["i"], j)
			}
		}
	}
	if c.Len() != workers*batches*size {
		t.Fatalf("len = %d, want %d", c.Len(), workers*batches*size)
	}
}

// TestPartitionedFanOutWithRTT exercises the concurrent fan-out path
// (taken when a simulated round-trip is configured) for correctness —
// the scaling itself is BenchmarkDocstoreParallel's job.
func TestPartitionedFanOutWithRTT(t *testing.T) {
	c, err := NewDBWithPartitions(4).CollectionWithShardKey("a", "deviceMac")
	if err != nil {
		t.Fatal(err)
	}
	c.SetSimulatedRTT(50 * time.Microsecond)
	docs := make([]Doc, 64)
	for i := range docs {
		docs[i] = Doc{"deviceMac": fmt.Sprintf("m%02d", i%8), "v": float64(i)}
	}
	c.InsertMany(docs)
	got, err := c.Find(Doc{"v": map[string]any{"$gte": 32.0}})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 32 {
		t.Fatalf("found %d, want 32", len(got))
	}
	// Merged results come back in insertion (id) order.
	for i := 1; i < len(got); i++ {
		if got[i]["_id"].(int64) <= got[i-1]["_id"].(int64) {
			t.Fatalf("results out of id order: %v then %v", got[i-1]["_id"], got[i]["_id"])
		}
	}
	n, err := c.Update(Doc{"deviceMac": "m03"}, Doc{"flag": true})
	if err != nil || n != 8 {
		t.Fatalf("update: n=%d err=%v", n, err)
	}
	d, err := c.Delete(Doc{"deviceMac": "m05"})
	if err != nil || d != 8 {
		t.Fatalf("delete: n=%d err=%v", d, err)
	}
	if c.Len() != 56 {
		t.Fatalf("len = %d, want 56", c.Len())
	}
}

// TestShardKeySemantics pins the shard-key contract: routing
// co-locates a device's documents, equality queries prune to one
// partition but lose nothing, the key is immutable, and a second
// CollectionWithShardKey with a different key is rejected.
func TestShardKeySemantics(t *testing.T) {
	db := NewDBWithPartitions(8)
	c, err := db.CollectionWithShardKey("alarms", "deviceMac")
	if err != nil {
		t.Fatal(err)
	}
	if c.ShardKey() != "deviceMac" || c.NumPartitions() != 8 {
		t.Fatalf("shardKey=%q partitions=%d", c.ShardKey(), c.NumPartitions())
	}
	if _, err := db.CollectionWithShardKey("alarms", "zip"); !errors.Is(err, ErrShardKeyMismatch) {
		t.Fatalf("mismatched shard key accepted: %v", err)
	}
	for i := 0; i < 200; i++ {
		c.Insert(Doc{"deviceMac": fmt.Sprintf("m%02d", i%10), "n": i})
	}
	// A doc missing the shard key still stores and scans fine.
	c.Insert(Doc{"n": -1})
	for i := 0; i < 10; i++ {
		m := fmt.Sprintf("m%02d", i)
		got, err := c.Find(Doc{"deviceMac": m})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 20 {
			t.Fatalf("device %s: pruned find returned %d, want 20", m, len(got))
		}
	}
	if n, _ := c.Count(Doc{}); n != 201 {
		t.Fatalf("total = %d, want 201", n)
	}
	if _, err := c.Update(Doc{"n": 5}, Doc{"deviceMac": "moved"}); !errors.Is(err, ErrShardKey) {
		t.Fatalf("shard key update accepted: %v", err)
	}
	if _, err := c.UpdateMany([]UpdateOp{{Filter: Doc{"n": 5}, Set: Doc{"deviceMac.x": 1}}}); !errors.Is(err, ErrShardKey) {
		t.Fatalf("shard key sub-path update accepted: %v", err)
	}
}
