package docstore

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"
)

// Dump/Restore: collections serialize as JSON-lines streams (one
// document per line), the interchange format document stores
// conventionally use for backup and migration. Long-term alarm storage
// is the docstore's whole role in the pipeline (§4.2), so its contents
// must survive process restarts.

// dumpHeader is the first line of a dump, carrying collection
// metadata. The shard key travels with the dump so a restore into a
// fresh database reproduces the routing (the partition count itself
// is a property of the target database, not the dump).
type dumpHeader struct {
	Collection string   `json:"collection"`
	Count      int      `json:"count"`
	Indexes    []string `json:"indexes"`
	ShardKey   string   `json:"shardKey,omitempty"`
}

// restoreBatch is how many documents Restore buffers before handing
// them to InsertMany (one lock round-trip per partition per batch).
const restoreBatch = 256

// Wrapper keys that round-trip non-JSON-native value types through
// the dump and WAL encodings without loss: time.Time would collapse
// into a string, and int/int64 would come back as float64 — breaking
// exact-integer fields like _id and alarmId after a recovery replay.
// int64 travels as a decimal string so values beyond 2^53 survive.
const (
	timeField  = "$time"
	int64Field = "$i64"
	intField   = "$int"
)

func encodeValue(v any) any {
	switch t := v.(type) {
	case time.Time:
		return map[string]any{timeField: t.Format(time.RFC3339Nano)}
	case int64:
		return map[string]any{int64Field: strconv.FormatInt(t, 10)}
	case int:
		return map[string]any{intField: strconv.Itoa(t)}
	case int32:
		return map[string]any{intField: strconv.FormatInt(int64(t), 10)}
	case map[string]any:
		out := make(map[string]any, len(t))
		for k, e := range t {
			out[k] = encodeValue(e)
		}
		return out
	case []any:
		out := make([]any, len(t))
		for i, e := range t {
			out[i] = encodeValue(e)
		}
		return out
	default:
		return v
	}
}

func decodeValue(v any) any {
	switch t := v.(type) {
	case map[string]any:
		if raw, ok := t[timeField].(string); ok && len(t) == 1 {
			if ts, err := time.Parse(time.RFC3339Nano, raw); err == nil {
				return ts
			}
		}
		if raw, ok := t[int64Field].(string); ok && len(t) == 1 {
			if n, err := strconv.ParseInt(raw, 10, 64); err == nil {
				return n
			}
		}
		if raw, ok := t[intField].(string); ok && len(t) == 1 {
			if n, err := strconv.Atoi(raw); err == nil {
				return n
			}
		}
		out := make(map[string]any, len(t))
		for k, e := range t {
			out[k] = decodeValue(e)
		}
		return out
	case []any:
		out := make([]any, len(t))
		for i, e := range t {
			out[i] = decodeValue(e)
		}
		return out
	default:
		return v
	}
}

// Dump writes the collection as a JSON-lines stream: a header line
// followed by one document per line, in insertion order (merged
// across partitions by id).
func (c *Collection) Dump(w io.Writer) error {
	var all []match
	for _, p := range c.parts {
		p.mu.RLock()
		for _, id := range p.order {
			if s, ok := p.docs[id]; ok {
				all = append(all, match{id: id, doc: s.clone()})
			}
		}
		p.mu.RUnlock()
	}
	sort.Slice(all, func(i, j int) bool { return all[i].id < all[j].id })

	bw := bufio.NewWriterSize(w, 1<<20)
	enc := json.NewEncoder(bw)
	hdr := dumpHeader{
		Collection: c.name,
		Count:      len(all),
		Indexes:    c.Indexes(),
		ShardKey:   c.shardKey,
	}
	if err := enc.Encode(hdr); err != nil {
		return err
	}
	for _, m := range all {
		delete(m.doc, "_id") // ids are reassigned on restore
		if err := enc.Encode(encodeValue(m.doc)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Restore reads a Dump stream into the database, creating (or
// appending to) the collection named in the header — with the dumped
// shard key when one was set — and rebuilding its indexes. Documents
// are inserted in batches so each partition lock is taken once per
// batch. It returns the restored collection.
func (db *DB) Restore(r io.Reader) (*Collection, error) {
	dec := json.NewDecoder(bufio.NewReaderSize(r, 1<<20))
	var hdr dumpHeader
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("docstore: restore: bad header: %w", err)
	}
	if hdr.Collection == "" {
		return nil, fmt.Errorf("docstore: restore: header missing collection name")
	}
	var col *Collection
	var err error
	if hdr.ShardKey != "" {
		col, err = db.CollectionWithShardKey(hdr.Collection, hdr.ShardKey)
		if err != nil {
			return nil, fmt.Errorf("docstore: restore: %w", err)
		}
	} else {
		col = db.Collection(hdr.Collection)
	}
	for _, f := range hdr.Indexes {
		if err := col.CreateIndex(f); err != nil && !errors.Is(err, ErrIndexExists) {
			return nil, err
		}
	}
	n := 0
	batch := make([]Doc, 0, restoreBatch)
	for dec.More() {
		var raw map[string]any
		if err := dec.Decode(&raw); err != nil {
			return nil, fmt.Errorf("docstore: restore: document %d: %w", n, err)
		}
		batch = append(batch, decodeValue(raw).(map[string]any))
		if len(batch) == restoreBatch {
			col.InsertMany(batch)
			batch = batch[:0]
		}
		n++
	}
	col.InsertMany(batch)
	if hdr.Count != n {
		return nil, fmt.Errorf("docstore: restore: header says %d documents, stream had %d", hdr.Count, n)
	}
	return col, nil
}
