package docstore

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Dump/Restore: collections serialize as JSON-lines streams (one
// document per line), the interchange format document stores
// conventionally use for backup and migration. Long-term alarm storage
// is the docstore's whole role in the pipeline (§4.2), so its contents
// must survive process restarts.

// dumpHeader is the first line of a dump, carrying collection
// metadata.
type dumpHeader struct {
	Collection string   `json:"collection"`
	Count      int      `json:"count"`
	Indexes    []string `json:"indexes"`
}

// timeWrapper round-trips time.Time values through JSON without
// collapsing them into strings.
const timeField = "$time"

func encodeValue(v any) any {
	switch t := v.(type) {
	case time.Time:
		return map[string]any{timeField: t.Format(time.RFC3339Nano)}
	case map[string]any:
		out := make(map[string]any, len(t))
		for k, e := range t {
			out[k] = encodeValue(e)
		}
		return out
	case []any:
		out := make([]any, len(t))
		for i, e := range t {
			out[i] = encodeValue(e)
		}
		return out
	default:
		return v
	}
}

func decodeValue(v any) any {
	switch t := v.(type) {
	case map[string]any:
		if raw, ok := t[timeField].(string); ok && len(t) == 1 {
			if ts, err := time.Parse(time.RFC3339Nano, raw); err == nil {
				return ts
			}
		}
		out := make(map[string]any, len(t))
		for k, e := range t {
			out[k] = decodeValue(e)
		}
		return out
	case []any:
		out := make([]any, len(t))
		for i, e := range t {
			out[i] = decodeValue(e)
		}
		return out
	default:
		return v
	}
}

// Dump writes the collection as a JSON-lines stream: a header line
// followed by one document per line, in insertion order.
func (c *Collection) Dump(w io.Writer) error {
	c.mu.RLock()
	docs := make([]Doc, 0, len(c.docs))
	for _, id := range c.order {
		if d, ok := c.docs[id]; ok {
			docs = append(docs, cloneDoc(d))
		}
	}
	indexes := make([]string, 0, len(c.indexes))
	for f := range c.indexes {
		indexes = append(indexes, f)
	}
	name := c.name
	c.mu.RUnlock()

	bw := bufio.NewWriterSize(w, 1<<20)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(dumpHeader{Collection: name, Count: len(docs), Indexes: indexes}); err != nil {
		return err
	}
	for _, d := range docs {
		delete(d, "_id") // ids are reassigned on restore
		if err := enc.Encode(encodeValue(d)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Restore reads a Dump stream into the database, creating (or
// appending to) the collection named in the header and rebuilding its
// indexes. It returns the restored collection.
func (db *DB) Restore(r io.Reader) (*Collection, error) {
	dec := json.NewDecoder(bufio.NewReaderSize(r, 1<<20))
	var hdr dumpHeader
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("docstore: restore: bad header: %w", err)
	}
	if hdr.Collection == "" {
		return nil, fmt.Errorf("docstore: restore: header missing collection name")
	}
	col := db.Collection(hdr.Collection)
	for _, f := range hdr.Indexes {
		if err := col.CreateIndex(f); err != nil && err != ErrIndexExists {
			// Index may already exist when appending; real errors
			// still surface.
			if _, exists := col.indexes[f]; !exists {
				return nil, err
			}
		}
	}
	n := 0
	for dec.More() {
		var raw map[string]any
		if err := dec.Decode(&raw); err != nil {
			return nil, fmt.Errorf("docstore: restore: document %d: %w", n, err)
		}
		col.Insert(decodeValue(raw).(map[string]any))
		n++
	}
	if hdr.Count != n {
		return nil, fmt.Errorf("docstore: restore: header says %d documents, stream had %d", hdr.Count, n)
	}
	return col, nil
}
