package docstore

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"
)

// passthrough is a Stage implementation the planner has never heard
// of — the shape that must fall back to the streaming path.
type passthrough struct{}

func (passthrough) apply(in []Doc) ([]Doc, error) { return in, nil }

// Regression: Limit.apply used to slice in[:N] with a negative N and
// panic. A negative limit is a malformed pipeline — ErrBadFilter on
// both the streaming and the pushdown path, never a panic.
func TestLimitNegativeN(t *testing.T) {
	c := NewDBWithPartitions(3).Collection("x")
	c.Insert(Doc{"v": 1.0})
	c.Insert(Doc{"v": 2.0})
	for name, run := range map[string]func() ([]Doc, error){
		"pushdown":  func() ([]Doc, error) { return c.Aggregate(nil, Limit{N: -1}) },
		"streaming": func() ([]Doc, error) { return c.AggregateStreaming(nil, Limit{N: -1}) },
		"tail":      func() ([]Doc, error) { return c.Aggregate(nil, SortStage{Field: "v"}, Limit{N: -3}) },
		"central": func() ([]Doc, error) {
			return c.Aggregate(nil, Group{By: []string{"v"}, Accs: map[string]Accumulator{"n": {Op: "count"}}}, Limit{N: -2})
		},
	} {
		if _, err := run(); !errors.Is(err, ErrBadFilter) {
			t.Fatalf("%s: negative limit returned %v, want ErrBadFilter", name, err)
		}
	}
	// Zero stays a valid (empty) limit.
	docs, err := c.Aggregate(nil, Limit{N: 0})
	if err != nil || len(docs) != 0 {
		t.Fatalf("Limit{0} = %v, %v; want empty, nil", docs, err)
	}
}

// TestSortStageMixedTypePin pins the cross-type sort order (nil <
// bool < number < string < time, ties stable by insertion) so the
// pushdown top-K merge and the streaming stable sort can never drift
// apart on heterogenous columns — the flexible-schema case where older
// documents carry a differently-typed field.
func TestSortStageMixedTypePin(t *testing.T) {
	ts := time.Unix(1700000000, 0).UTC()
	c := NewDBWithPartitions(4).Collection("x")
	c.Insert(Doc{"v": "bravo", "tag": "s2"})
	c.Insert(Doc{"v": 7.0, "tag": "n7"})
	c.Insert(Doc{"v": true, "tag": "bt"})
	c.Insert(Doc{"v": ts, "tag": "t"})
	c.Insert(Doc{"v": nil, "tag": "nil"})
	c.Insert(Doc{"v": "alpha", "tag": "s1"})
	c.Insert(Doc{"v": 7, "tag": "n7i"}) // int 7 ties float 7.0: insertion order breaks it
	c.Insert(Doc{"v": false, "tag": "bf"})
	c.Insert(Doc{"tag": "missing"}) // absent field sorts as nil, after the explicit nil

	want := []string{"nil", "missing", "bf", "bt", "n7", "n7i", "s1", "s2", "t"}
	for _, pipeline := range [][]Stage{
		{SortStage{Field: "v"}},
		{SortStage{Field: "v"}, Limit{N: 9}},
	} {
		got, err := c.Aggregate(nil, pipeline...)
		if err != nil {
			t.Fatal(err)
		}
		tags := make([]string, len(got))
		for i, d := range got {
			tags[i], _ = d["tag"].(string)
		}
		if !reflect.DeepEqual(tags, want) {
			t.Fatalf("ascending mixed-type sort order %v, want %v", tags, want)
		}
		oracle, err := c.AggregateStreaming(nil, pipeline...)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, oracle) {
			t.Fatalf("pushdown %v != streaming %v", got, oracle)
		}
	}
	// Descending reverses the type ranking; equal keys keep insertion
	// order (stable), they do not reverse.
	desc, err := c.Aggregate(nil, SortStage{Field: "-v"}, Limit{N: 3})
	if err != nil {
		t.Fatal(err)
	}
	gotDesc := []string{desc[0]["tag"].(string), desc[1]["tag"].(string), desc[2]["tag"].(string)}
	if want := []string{"t", "s2", "s1"}; !reflect.DeepEqual(gotDesc, want) {
		t.Fatalf("descending top-3 %v, want %v", gotDesc, want)
	}
}

// TestExplainPlans pins the planner's shape dispatch: which pipelines
// push down, as what kind, and how many stages land where.
func TestExplainPlans(t *testing.T) {
	c := NewDBWithPartitions(2).Collection("x")
	group := Group{By: []string{"zip"}, Accs: map[string]Accumulator{"n": {Op: "count"}}}
	cases := []struct {
		name   string
		filter Doc
		stages []Stage
		want   PlanInfo
	}{
		{"bare find", Doc{"zip": "8000"}, nil,
			PlanInfo{Kind: PlanScan}},
		{"match fold", nil, []Stage{Match{Filter: Doc{"zip": "8000"}}, Match{Filter: Doc{"verified": true}}},
			PlanInfo{Kind: PlanScan, PushedStages: 2}},
		{"group", nil, []Stage{group},
			PlanInfo{Kind: PlanGroup, PushedStages: 1, Cacheable: true}},
		{"match group tail", nil, []Stage{Match{Filter: Doc{"verified": true}}, group, SortStage{Field: "-n"}, Limit{N: 3}},
			PlanInfo{Kind: PlanGroup, PushedStages: 2, CentralStages: 2, Cacheable: true}},
		{"bucket", nil, []Stage{Bucket{Field: "ts", Origin: 0, Width: 60}},
			PlanInfo{Kind: PlanBucket, PushedStages: 1, Cacheable: true}},
		{"topk", nil, []Stage{SortStage{Field: "-duration"}, Limit{N: 10}},
			PlanInfo{Kind: PlanTopK, PushedStages: 2, Cacheable: true}},
		{"full sort", nil, []Stage{SortStage{Field: "duration"}},
			PlanInfo{Kind: PlanTopK, PushedStages: 1}},
		{"huge k uncacheable", nil, []Stage{SortStage{Field: "duration"}, Limit{N: topkCacheMaxK + 1}},
			PlanInfo{Kind: PlanTopK, PushedStages: 2}},
		{"project limit scan", nil, []Stage{Project{Fields: []string{"zip"}}, Limit{N: 5}},
			PlanInfo{Kind: PlanScan, PushedStages: 2}},
		{"custom stage streams", nil, []Stage{passthrough{}, group},
			PlanInfo{Kind: PlanStreaming, CentralStages: 2}},
		{"custom tail stays central", nil, []Stage{group, passthrough{}},
			PlanInfo{Kind: PlanGroup, PushedStages: 1, CentralStages: 1, Cacheable: true}},
		{"regex filter uncacheable", Doc{"zip": map[string]any{"$regexPrefix": "80"}}, []Stage{group},
			PlanInfo{Kind: PlanGroup, PushedStages: 1, Cacheable: true}},
	}
	for _, tc := range cases {
		if got := c.Explain(tc.filter, tc.stages...); got != tc.want {
			t.Errorf("%s: Explain = %+v, want %+v", tc.name, got, tc.want)
		}
	}
}

// TestPushdownMatchesStreamingBasics runs each planned shape over a
// small fixed corpus and requires byte-identical answers from both
// executors — the hand-written complement of the property battery.
func TestPushdownMatchesStreamingBasics(t *testing.T) {
	c, err := NewDBWithPartitions(4).CollectionWithShardKey("alarms", "deviceMac")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 120; i++ {
		c.Insert(Doc{
			"deviceMac": fmt.Sprintf("mac-%d", i%7),
			"zip":       fmt.Sprintf("%04d", 8000+i%5),
			"ts":        float64(1000 + 10*i),
			"duration":  float64(i % 40),
			"verified":  i%3 == 0,
		})
	}
	group := Group{By: []string{"zip"}, Accs: map[string]Accumulator{
		"n":    {Op: "count"},
		"sum":  {Op: "sum", Field: "duration"},
		"avg":  {Op: "avg", Field: "duration"},
		"min":  {Op: "min", Field: "duration"},
		"max":  {Op: "max", Field: "duration"},
		"mac0": {Op: "first", Field: "deviceMac"},
	}}
	pipelines := [][]Stage{
		nil,
		{Match{Filter: Doc{"verified": true}}},
		{group},
		{Match{Filter: Doc{"duration": map[string]any{"$gte": 10.0}}}, group, SortStage{Field: "-n"}, Limit{N: 2}},
		{Group{By: []string{"deviceMac", "verified"}, Accs: map[string]Accumulator{"n": {Op: "count"}}}},
		{Bucket{Field: "ts", Origin: 1000, Width: 250}},
		{Match{Filter: Doc{"deviceMac": "mac-3"}}, Bucket{Field: "ts", Origin: 0, Width: 100}},
		{SortStage{Field: "-ts"}, Limit{N: 9}},
		{SortStage{Field: "duration"}, Limit{N: 15}, Project{Fields: []string{"deviceMac", "duration"}}},
		{SortStage{Field: "duration"}},
		{Limit{N: 13}},
		{Project{Fields: []string{"zip", "ts"}}, Limit{N: 50}},
		{Limit{N: 17}, Project{Fields: []string{"deviceMac"}}, Limit{N: 11}},
		{passthrough{}, group},
		{group, passthrough{}, SortStage{Field: "-sum"}},
	}
	filters := []Doc{nil, {"deviceMac": "mac-2"}, {"verified": false}}
	for fi, filter := range filters {
		for pi, stages := range pipelines {
			want, werr := c.AggregateStreaming(filter, stages...)
			got, gerr := c.Aggregate(filter, stages...)
			if (werr != nil) != (gerr != nil) {
				t.Fatalf("filter %d pipeline %d: streaming err %v vs pushdown err %v", fi, pi, werr, gerr)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("filter %d pipeline %d: pushdown %v\nwant %v", fi, pi, got, want)
			}
		}
	}
}

// TestAggregateMultiMatchesSingle: the batched sweep must answer each
// filter exactly as a standalone Aggregate would, including streaming
// fallbacks mixed into the batch.
func TestAggregateMultiMatchesSingle(t *testing.T) {
	c, err := NewDBWithPartitions(3).CollectionWithShardKey("alarms", "deviceMac")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 90; i++ {
		c.Insert(Doc{
			"deviceMac": fmt.Sprintf("mac-%d", i%6),
			"ts":        float64(100 * i),
			"duration":  float64(i % 13),
		})
	}
	filters := []Doc{
		{"deviceMac": "mac-0"},
		{"deviceMac": "mac-4"},
		nil,
		{"duration": map[string]any{"$lt": 6.0}},
		{"deviceMac": "mac-no-such"},
	}
	for _, stages := range [][]Stage{
		{Bucket{Field: "ts", Origin: 0, Width: 1000}},
		{Group{By: []string{"deviceMac"}, Accs: map[string]Accumulator{"n": {Op: "count"}}}},
		{SortStage{Field: "-ts"}, Limit{N: 4}},
		{passthrough{}}, // unplannable: every filter falls back individually
	} {
		batch, err := c.AggregateMulti(filters, stages...)
		if err != nil {
			t.Fatal(err)
		}
		if len(batch) != len(filters) {
			t.Fatalf("AggregateMulti returned %d results for %d filters", len(batch), len(filters))
		}
		for i, filter := range filters {
			want, err := c.Aggregate(filter, stages...)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(batch[i], want) {
				t.Fatalf("filter %d: batched %v != single %v", i, batch[i], want)
			}
		}
	}
	if out, err := c.AggregateMulti(nil); err != nil || len(out) != 0 {
		t.Fatalf("empty batch = %v, %v", out, err)
	}
}

// TestAggregateSnapshotCache: a repeated cacheable aggregation is
// served from the published partial snapshot; any write invalidates
// it; served answers never alias cache internals.
func TestAggregateSnapshotCache(t *testing.T) {
	c, err := NewDBWithPartitions(2).CollectionWithShardKey("alarms", "deviceMac")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		c.Insert(Doc{"deviceMac": fmt.Sprintf("mac-%d", i%4), "ts": float64(i)})
	}
	pipeline := []Stage{Group{By: []string{"deviceMac"}, Accs: map[string]Accumulator{"n": {Op: "count"}}}}
	first, err := c.Aggregate(nil, pipeline...)
	if err != nil {
		t.Fatal(err)
	}
	cached := 0
	for _, p := range c.parts {
		p.cacheMu.Lock()
		cached += len(p.agg)
		p.cacheMu.Unlock()
	}
	if cached == 0 {
		t.Fatal("cacheable aggregation published no partial snapshots")
	}
	second, err := c.Aggregate(nil, pipeline...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("cached answer diverged: %v vs %v", second, first)
	}
	// Mutating a served answer must not poison the snapshot.
	second[0]["n"] = -999
	second[0]["deviceMac"] = "tainted"
	third, err := c.Aggregate(nil, pipeline...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(third, first) {
		t.Fatalf("cache aliased a served answer: %v vs %v", third, first)
	}
	// A write invalidates: the next answer reflects the new document.
	c.Insert(Doc{"deviceMac": "mac-0", "ts": 999.0})
	after, err := c.Aggregate(nil, pipeline...)
	if err != nil {
		t.Fatal(err)
	}
	if after[0]["n"].(int) != first[0]["n"].(int)+1 {
		t.Fatalf("post-insert count %v, want %d", after[0]["n"], first[0]["n"].(int)+1)
	}
	if oracle, _ := c.AggregateStreaming(nil, pipeline...); !reflect.DeepEqual(after, oracle) {
		t.Fatalf("post-insert pushdown %v != streaming %v", after, oracle)
	}
}

// TestGroupValidationErrors: unknown accumulators and malformed
// bucket widths surface as ErrBadFilter on both executors.
func TestGroupValidationErrors(t *testing.T) {
	c := NewDBWithPartitions(2).Collection("x")
	c.Insert(Doc{"v": 1.0})
	bad := []Stage{Group{By: []string{"v"}, Accs: map[string]Accumulator{"x": {Op: "median"}}}}
	if _, err := c.Aggregate(nil, bad...); !errors.Is(err, ErrBadFilter) {
		t.Fatalf("pushdown bad accumulator: %v", err)
	}
	if _, err := c.AggregateStreaming(nil, bad...); !errors.Is(err, ErrBadFilter) {
		t.Fatalf("streaming bad accumulator: %v", err)
	}
	if _, err := c.Aggregate(nil, Bucket{Field: "v", Width: 0}); !errors.Is(err, ErrBadFilter) {
		t.Fatalf("pushdown zero bucket width: %v", err)
	}
	if _, err := c.AggregateStreaming(nil, Bucket{Field: "v", Width: -1}); !errors.Is(err, ErrBadFilter) {
		t.Fatalf("streaming negative bucket width: %v", err)
	}
}
