package docstore

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

// Crash-recovery hammer: a child copy of this test binary ingests
// alarm-shaped documents into a durable store, recording each
// acknowledged high-water mark — a sequence number written to a side
// file only AFTER db.Sync() returned for everything up to it — until
// the parent SIGKILLs it mid-ingest. The parent then reopens the data
// directory and asserts the durability contract: every acknowledged
// document recovered (zero acked loss), replay bounded in time, and
// the reopened store writable. Run under -race in CI; the child
// inherits the instrumented binary.

const (
	crashChildEnv = "DOCSTORE_CRASH_CHILD_DIR"
	crashAckFile  = "acked"
)

// TestCrashRecoveryChild is the child-process body; it only runs when
// the hammer execs it with the data-dir env var set.
func TestCrashRecoveryChild(t *testing.T) {
	dir := os.Getenv(crashChildEnv)
	if dir == "" {
		t.Skip("crash-hammer child body; run via TestCrashRecoveryHammer")
	}
	db, err := OpenDB(filepath.Join(dir, "db"), DurableOptions{
		Partitions:         4,
		SyncInterval:       time.Millisecond,
		CheckpointInterval: 20 * time.Millisecond, // checkpoints race the kill too
	})
	if err != nil {
		t.Fatal(err)
	}
	col, err := db.CollectionWithShardKey("alarms", "deviceMac")
	if err != nil {
		t.Fatal(err)
	}
	ack, err := os.OpenFile(filepath.Join(dir, crashAckFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	seq := 0
	deadline := time.Now().Add(30 * time.Second) // parent kills long before this
	for time.Now().Before(deadline) {
		// A mix of the single and batched ingest paths.
		if seq%3 == 0 {
			batch := make([]Doc, 5)
			for i := range batch {
				batch[i] = Doc{"deviceMac": fmt.Sprintf("d%d", seq%17), "seq": seq, "ts": float64(seq)}
				seq++
			}
			col.InsertMany(batch)
		} else {
			col.Insert(Doc{"deviceMac": fmt.Sprintf("d%d", seq%17), "seq": seq, "ts": float64(seq)})
			seq++
		}
		if seq%50 == 0 {
			// Durability ack point: only after Sync returns may the
			// high-water mark be published to the side file.
			if err := db.Sync(); err != nil {
				t.Fatalf("sync: %v", err)
			}
			if _, err := fmt.Fprintf(ack, "%d\n", seq-1); err != nil {
				t.Fatal(err)
			}
			if err := ack.Sync(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestCrashRecoveryHammer(t *testing.T) {
	if os.Getenv(crashChildEnv) != "" {
		t.Skip("already inside the child")
	}
	if testing.Short() {
		t.Skip("subprocess hammer skipped in -short mode")
	}
	bin, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		dir := t.TempDir()
		cmd := exec.Command(bin, "-test.run", "^TestCrashRecoveryChild$", "-test.v")
		cmd.Env = append(os.Environ(), crashChildEnv+"="+dir)
		var sink strings.Builder
		cmd.Stdout, cmd.Stderr = &sink, &sink
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		// Let ingest reach a steady state, then kill it mid-flight.
		time.Sleep(time.Duration(300+150*round) * time.Millisecond)
		if err := cmd.Process.Kill(); err != nil {
			t.Fatal(err)
		}
		cmd.Wait() // expected to report the kill; output only matters on failure below

		acked := lastAckedSeq(t, filepath.Join(dir, crashAckFile))
		if acked < 0 {
			t.Logf("round %d: child killed before first ack; child output:\n%s", round, sink.String())
			continue
		}
		start := time.Now()
		db, err := OpenDB(filepath.Join(dir, "db"), DurableOptions{Partitions: 4, SyncInterval: -1, CheckpointInterval: -1})
		if err != nil {
			t.Fatalf("round %d: reopen after kill: %v\nchild output:\n%s", round, err, sink.String())
		}
		replay := time.Since(start)
		if replay > 20*time.Second {
			t.Fatalf("round %d: replay took %v, want bounded", round, replay)
		}
		col := db.Collection("alarms")
		seen := make(map[int]bool, col.Len())
		for _, d := range col.Tail(0) {
			if s, ok := d["seq"].(int); ok {
				seen[s] = true
			}
		}
		missing := 0
		for s := 0; s <= acked; s++ {
			if !seen[s] {
				missing++
			}
		}
		if missing > 0 {
			t.Fatalf("round %d: %d of %d acked documents lost after crash recovery", round, missing, acked+1)
		}
		// The recovered store must keep working.
		col.Insert(Doc{"deviceMac": "post", "seq": -1})
		if err := db.Close(); err != nil {
			t.Fatalf("round %d: close after recovery: %v", round, err)
		}
		t.Logf("round %d: acked=%d recovered=%d replay=%v", round, acked+1, len(seen), replay)
	}
}

// lastAckedSeq returns the last high-water mark in the ack file, or
// -1 when none was written. The final line may itself be torn by the
// kill; a torn decimal prefix parses to at most the full value (and
// the full value was synced before it was written), so a torn tail
// only ever weakens the assertion, never corrupts it.
func lastAckedSeq(t *testing.T, path string) int {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return -1
	}
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	last := -1
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if n, err := strconv.Atoi(strings.TrimSpace(sc.Text())); err == nil {
			last = n
		}
	}
	return last
}
