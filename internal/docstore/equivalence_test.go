package docstore

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// Regression: -0.0 and 0.0 compare equal, so they must route to the
// same partition — otherwise a doc stored under -0.0 is invisible to
// a pruned equality query for 0.0.
func TestNegativeZeroShardRouting(t *testing.T) {
	c, err := NewDBWithPartitions(3).CollectionWithShardKey("x", "v")
	if err != nil {
		t.Fatal(err)
	}
	c.Insert(Doc{"v": math.Copysign(0, -1), "tag": "neg"})
	c.Insert(Doc{"v": 0.0, "tag": "pos"})
	got, err := c.Find(Doc{"v": 0.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("equality query for 0.0 found %d docs, want 2", len(got))
	}
}

// genCorpus fills a collection with documents mixing the field shapes
// the filters below exercise: indexed strings, indexed numerics,
// bools, and a nested path.
func genCorpus(c *Collection, r *rand.Rand, n int) {
	for i := 0; i < n; i++ {
		c.Insert(Doc{
			"deviceMac": fmt.Sprintf("mac-%02d", r.Intn(24)),
			"zip":       fmt.Sprintf("%04d", 8000+r.Intn(12)),
			"duration":  float64(r.Intn(500)),
			"verified":  r.Intn(2) == 0,
			"meta":      map[string]any{"sensor": fmt.Sprintf("s%d", r.Intn(4))},
		})
	}
}

// genFilter draws one filter from a small grammar covering the
// operators the index shards can serve plus ones forcing scans.
func genFilter(r *rand.Rand) Doc {
	switch r.Intn(7) {
	case 0:
		return Doc{"zip": fmt.Sprintf("%04d", 8000+r.Intn(12))}
	case 1:
		return Doc{"duration": map[string]any{"$eq": float64(r.Intn(500))}}
	case 2:
		lo := float64(r.Intn(400))
		return Doc{"duration": map[string]any{"$gte": lo, "$lt": lo + float64(1+r.Intn(150))}}
	case 3:
		return Doc{"duration": map[string]any{"$gt": float64(r.Intn(500))}}
	case 4:
		return Doc{
			"zip":      fmt.Sprintf("%04d", 8000+r.Intn(12)),
			"verified": r.Intn(2) == 0,
		}
	case 5:
		return Doc{"$or": []any{
			map[string]any{"zip": fmt.Sprintf("%04d", 8000+r.Intn(12))},
			map[string]any{"duration": map[string]any{"$lt": float64(r.Intn(120))}},
		}}
	default:
		return Doc{
			"meta.sensor": fmt.Sprintf("s%d", r.Intn(4)),
			"duration":    map[string]any{"$nin": []any{0.0, 1.0}},
		}
	}
}

// resultKey canonicalizes a Find result for set comparison.
func resultKey(docs []Doc) []int64 {
	ids := make([]int64, len(docs))
	for i, d := range docs {
		ids[i] = d["_id"].(int64)
	}
	return ids
}

// TestPropertyIndexScanEquivalence is the partition-split regression
// net: for a corpus of generated filters, Find served by index shards
// and Find after dropping the indexes must return identical result
// sets, across several partition counts. A bug that loses or
// duplicates documents when an index is split across partitions shows
// up as a diff here.
func TestPropertyIndexScanEquivalence(t *testing.T) {
	for _, parts := range []int{1, 3, 8} {
		t.Run(fmt.Sprintf("partitions=%d", parts), func(t *testing.T) {
			r := rand.New(rand.NewSource(int64(parts) * 911))
			c := NewDBWithPartitions(parts).Collection("alarms")
			genCorpus(c, r, 400)
			for round := 0; round < 60; round++ {
				filter := genFilter(r)
				for _, f := range []string{"zip", "duration"} {
					if err := c.CreateIndex(f); err != nil {
						t.Fatal(err)
					}
				}
				indexed, err := c.Find(filter)
				if err != nil {
					t.Fatalf("filter %v (indexed): %v", filter, err)
				}
				for _, f := range []string{"zip", "duration"} {
					if err := c.DropIndex(f); err != nil {
						t.Fatal(err)
					}
				}
				scanned, err := c.Find(filter)
				if err != nil {
					t.Fatalf("filter %v (scan): %v", filter, err)
				}
				if !reflect.DeepEqual(resultKey(indexed), resultKey(scanned)) {
					t.Fatalf("filter %v: indexed ids %v != scan ids %v",
						filter, resultKey(indexed), resultKey(scanned))
				}
				if len(indexed) > 0 && !reflect.DeepEqual(indexed[0], scanned[0]) {
					t.Fatalf("filter %v: first doc diverges: %v vs %v",
						filter, indexed[0], scanned[0])
				}
			}
		})
	}
}

// TestPartitioningInvariance: the same single-threaded insert
// sequence must produce identical query answers whatever the
// partition count — partitioning is a physical layout choice, not a
// semantic one.
func TestPartitioningInvariance(t *testing.T) {
	build := func(parts int) *Collection {
		c, err := NewDBWithPartitions(parts).CollectionWithShardKey("alarms", "deviceMac")
		if err != nil {
			t.Fatal(err)
		}
		if err := c.CreateIndex("duration"); err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(99))
		genCorpus(c, r, 300)
		return c
	}
	ref := build(1)
	r := rand.New(rand.NewSource(7))
	filters := make([]Doc, 40)
	for i := range filters {
		filters[i] = genFilter(r)
	}
	for _, parts := range []int{2, 5, 8} {
		c := build(parts)
		for _, filter := range filters {
			want, err := ref.Find(filter)
			if err != nil {
				t.Fatal(err)
			}
			got, err := c.Find(filter)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("partitions=%d filter %v: %d docs vs reference %d (or content diverged)",
					parts, filter, len(got), len(want))
			}
		}
	}
}
