package docstore

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestPushdownConcurrentHammer runs pushdown aggregations against a
// durable store while writers insert, update, and delete, and a
// maintenance goroutine checkpoints and prunes expired documents.
// Run under -race (the repo's `make test` does), it checks the
// seqlock'd snapshot cache and the per-partition partial scans for
// data races, and asserts the invariants a torn partial would break:
//
//   - count ≡ sum over a field that is 1.0 in every document — both
//     are computed under the same partition lock, so they can never
//     disagree, no matter how the partitions interleave with writers;
//   - top-K results sorted by (key, id) with at most K rows;
//   - bucket cells strictly positive;
//   - once writers stop, pushdown ≡ streaming exactly.
func TestPushdownConcurrentHammer(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDB(dir, DurableOptions{
		Partitions:         4,
		SyncInterval:       5 * time.Millisecond,
		CheckpointInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	c, err := db.CollectionWithShardKey("alarms", "deviceMac")
	if err != nil {
		t.Fatal(err)
	}
	c.SetRetention("ts", time.Hour)

	now := float64(time.Now().UnixNano()) / 1e9
	mkDoc := func(r *rand.Rand, expired bool) Doc {
		ts := now
		if expired {
			ts = now - 7200 // beyond the 1h window: prune fodder
		}
		return Doc{
			"deviceMac": fmt.Sprintf("mac-%02d", r.Intn(12)),
			"zip":       fmt.Sprintf("%04d", 8000+r.Intn(6)),
			"duration":  float64(r.Intn(300)),
			"v":         1.0,
			"ts":        ts,
		}
	}
	seedR := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		c.Insert(mkDoc(seedR, i%5 == 0))
	}

	const writerRounds = 120
	var wg sync.WaitGroup
	stop := make(chan struct{})
	fail := make(chan error, 16)
	report := func(err error) {
		select {
		case fail <- err:
		default:
		}
	}

	wg.Add(1)
	go func() { // inserter
		defer wg.Done()
		r := rand.New(rand.NewSource(21))
		for i := 0; i < writerRounds; i++ {
			batch := make([]Doc, 8)
			for j := range batch {
				batch[j] = mkDoc(r, r.Intn(6) == 0)
			}
			c.InsertMany(batch)
		}
	}()
	wg.Add(1)
	go func() { // updater (never touches the shard key)
		defer wg.Done()
		r := rand.New(rand.NewSource(31))
		for i := 0; i < writerRounds; i++ {
			ops := []UpdateOp{
				{Filter: Doc{"zip": fmt.Sprintf("%04d", 8000+r.Intn(6))},
					Set: Doc{"duration": float64(r.Intn(300))}},
				{Filter: Doc{"deviceMac": fmt.Sprintf("mac-%02d", r.Intn(12))},
					Set: Doc{"verified": r.Intn(2) == 0}},
			}
			if _, err := c.UpdateMany(ops); err != nil {
				report(fmt.Errorf("UpdateMany: %w", err))
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // deleter
		defer wg.Done()
		r := rand.New(rand.NewSource(41))
		for i := 0; i < writerRounds/3; i++ {
			f := Doc{
				"zip":      fmt.Sprintf("%04d", 8000+r.Intn(6)),
				"duration": map[string]any{"$lt": float64(r.Intn(40))},
			}
			if _, err := c.Delete(f); err != nil {
				report(fmt.Errorf("Delete: %w", err))
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // checkpoint + retention pruning
		defer wg.Done()
		for i := 0; i < 12; i++ {
			if err := db.Checkpoint(); err != nil {
				report(fmt.Errorf("Checkpoint: %w", err))
				return
			}
			if _, err := c.PruneExpired(time.Now()); err != nil {
				report(fmt.Errorf("PruneExpired: %w", err))
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	reader := func(seed int64) {
		defer wg.Done()
		r := rand.New(rand.NewSource(seed))
		for {
			select {
			case <-stop:
				return
			default:
			}
			switch r.Intn(4) {
			case 0: // group: count must equal the sum of an all-ones field
				docs, err := c.Aggregate(nil, Group{
					By:   []string{"deviceMac"},
					Accs: map[string]Accumulator{"n": {Op: "count"}, "s": {Op: "sum", Field: "v"}},
				})
				if err != nil {
					report(fmt.Errorf("group aggregate: %w", err))
					return
				}
				for _, d := range docs {
					if n, s := d["n"].(int), d["s"].(float64); float64(n) != s {
						report(fmt.Errorf("torn group partial: count=%d sum=%v for %v", n, s, d["deviceMac"]))
						return
					}
				}
			case 1: // top-K: bounded and sorted by (duration desc, id asc)
				docs, err := c.Aggregate(nil, SortStage{Field: "-duration"}, Limit{N: 10})
				if err != nil {
					report(fmt.Errorf("topk aggregate: %w", err))
					return
				}
				if len(docs) > 10 {
					report(fmt.Errorf("topk returned %d docs, limit 10", len(docs)))
					return
				}
				for i := 1; i < len(docs); i++ {
					cmp := compareValues(docs[i-1]["duration"], docs[i]["duration"])
					if cmp < 0 || (cmp == 0 && docs[i-1]["_id"].(int64) > docs[i]["_id"].(int64)) {
						report(fmt.Errorf("topk out of order at %d: %v before %v", i, docs[i-1], docs[i]))
						return
					}
				}
			case 2: // bucket: every emitted cell is positive
				docs, err := c.Aggregate(Doc{"zip": fmt.Sprintf("%04d", 8000+r.Intn(6))},
					Bucket{Field: "duration", Origin: 0, Width: 50})
				if err != nil {
					report(fmt.Errorf("bucket aggregate: %w", err))
					return
				}
				for _, d := range docs {
					if d["count"].(int) <= 0 {
						report(fmt.Errorf("bucket cell not positive: %v", d))
						return
					}
				}
			default: // batched multi-filter sweep
				filters := []Doc{
					{"deviceMac": fmt.Sprintf("mac-%02d", r.Intn(12))},
					{"deviceMac": fmt.Sprintf("mac-%02d", r.Intn(12))},
				}
				if _, err := c.AggregateMulti(filters,
					Bucket{Field: "ts", Origin: now - 7200, Width: 600}); err != nil {
					report(fmt.Errorf("AggregateMulti: %w", err))
					return
				}
			}
		}
	}
	wg.Add(2)
	go reader(51)
	go reader(61)

	// Writers run a fixed amount of work; readers spin through a short
	// mixed-load window and are then released. A goroutine that hit an
	// invariant violation exits early and the error surfaces after the
	// join.
	go func() {
		time.Sleep(150 * time.Millisecond)
		close(stop)
	}()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("hammer did not quiesce within 30s")
	}
	select {
	case err := <-fail:
		t.Fatal(err)
	default:
	}

	// Quiesced: the planner and the oracle must agree exactly.
	for _, probe := range [][]Stage{
		{Group{By: []string{"deviceMac"}, Accs: map[string]Accumulator{
			"n": {Op: "count"}, "s": {Op: "sum", Field: "v"},
			"lo": {Op: "min", Field: "duration"}, "hi": {Op: "max", Field: "duration"}}}},
		{SortStage{Field: "-duration"}, Limit{N: 25}},
		{Bucket{Field: "duration", Origin: 0, Width: 25}},
		{Limit{N: 40}, Project{Fields: []string{"deviceMac", "duration"}}},
	} {
		runBoth(t, c, nil, probe, "post-hammer")
	}
}
