package docstore

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func optimisticCollection(t *testing.T, parts int) *Collection {
	t.Helper()
	c, err := NewDBWithPartitions(parts).CollectionWithShardKey("alarms", "deviceMac")
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestFieldValuesMultiMatchesSingle pins the batched query's contract:
// for any mix of pruneable and unpruneable filters, result i equals
// what FieldValues(filters[i], field) returns.
func TestFieldValuesMultiMatchesSingle(t *testing.T) {
	c := optimisticCollection(t, 4)
	for i := 0; i < 240; i++ {
		c.Insert(Doc{
			"deviceMac": fmt.Sprintf("mac-%02d", i%12),
			"zip":       fmt.Sprintf("%04d", 8000+i%5),
			"ts":        float64(1000 + i),
		})
	}
	filters := []Doc{
		{"deviceMac": "mac-03"},
		{"deviceMac": "mac-03", "ts": map[string]any{"$gte": 1100.0}},
		{"deviceMac": "mac-07"},
		{"deviceMac": "mac-absent"},
		{"zip": "8002"},                                // unpruneable: every partition
		{"ts": map[string]any{"$lt": 1050.0}},          // unpruneable range
		{"deviceMac": "mac-00", "zip": "8000"},         // pruned + extra condition
		{"deviceMac": map[string]any{"$eq": "mac-05"}}, // $eq prunes too
	}
	batched, err := c.FieldValuesMulti(filters, "ts")
	if err != nil {
		t.Fatal(err)
	}
	if len(batched) != len(filters) {
		t.Fatalf("%d results for %d filters", len(batched), len(filters))
	}
	for i, f := range filters {
		single, err := c.FieldValues(f, "ts")
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(batched[i], single) {
			t.Fatalf("filter %d (%v): batched %v != single %v", i, f, batched[i], single)
		}
	}
	if out, err := c.FieldValuesMulti(nil, "ts"); err != nil || len(out) != 0 {
		t.Fatalf("empty batch: %v, %v", out, err)
	}

	// Errors propagate, not panic: an invalid operator fails the batch.
	if _, err := c.FieldValuesMulti([]Doc{{"ts": map[string]any{"$bogus": 1.0}}}, "ts"); err == nil {
		t.Fatal("invalid operator accepted")
	}
}

// TestOptimisticReadsSeeWrites drives the snapshot-cache protocol
// through its lifecycle: a repeated query is served from the published
// snapshot, any write invalidates it, and the next read observes the
// write — staleness is bounded by the version check, not by time.
func TestOptimisticReadsSeeWrites(t *testing.T) {
	c := optimisticCollection(t, 2)
	for i := 0; i < 60; i++ {
		c.Insert(Doc{"deviceMac": fmt.Sprintf("mac-%d", i%3), "ts": float64(i)})
	}
	filter := Doc{"deviceMac": "mac-1"}

	first, err := c.FieldValues(filter, "ts")
	if err != nil {
		t.Fatal(err)
	}
	again, err := c.FieldValues(filter, "ts")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, again) {
		t.Fatalf("repeat read differs: %v vs %v", first, again)
	}

	// A write to the same partition must invalidate the snapshot.
	c.Insert(Doc{"deviceMac": "mac-1", "ts": 999.0})
	after, err := c.FieldValues(filter, "ts")
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(first)+1 {
		t.Fatalf("read after write: %d values, want %d", len(after), len(first)+1)
	}

	// Same protocol for Tail.
	t1 := c.Tail(10)
	t2 := c.Tail(10)
	if !reflect.DeepEqual(t1, t2) {
		t.Fatal("repeated Tail differs")
	}
	c.Insert(Doc{"deviceMac": "mac-2", "ts": 1000.0})
	t3 := c.Tail(10)
	last := t3[len(t3)-1]
	if last["ts"].(float64) != 1000.0 {
		t.Fatalf("Tail after write misses the new doc: %v", last)
	}

	// And for the lock-free Len.
	if n, _ := c.Count(Doc{}); n != c.Len() {
		t.Fatalf("Len %d != Count %d", c.Len(), n)
	}
	c.Delete(Doc{"deviceMac": "mac-0"})
	if n, _ := c.Count(Doc{}); n != c.Len() {
		t.Fatalf("after delete: Len %d != Count %d", c.Len(), n)
	}
}

// TestCachedResultsAreIsolated: callers own what reads return them —
// mutating a returned slice or document must never corrupt the
// published snapshot that later calls are served from.
func TestCachedResultsAreIsolated(t *testing.T) {
	c := optimisticCollection(t, 2)
	for i := 0; i < 20; i++ {
		c.Insert(Doc{"deviceMac": "mac-x", "ts": float64(i), "nested": map[string]any{"k": float64(i)}})
	}
	filter := Doc{"deviceMac": "mac-x"}
	got, err := c.FieldValues(filter, "ts")
	if err != nil {
		t.Fatal(err)
	}
	want := append([]any(nil), got...)
	for i := range got {
		got[i] = "scribbled"
	}
	again, err := c.FieldValues(filter, "ts")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, want) {
		t.Fatalf("cache corrupted by caller mutation: %v", again)
	}

	tail := c.Tail(5)
	for _, d := range tail {
		d["ts"] = "scribbled"
		d["nested"].(map[string]any)["k"] = "scribbled"
	}
	for _, d := range c.Tail(5) {
		if _, ok := d["ts"].(float64); !ok {
			t.Fatalf("tail snapshot corrupted by caller mutation: %v", d)
		}
		if _, ok := d["nested"].(map[string]any)["k"].(float64); !ok {
			t.Fatalf("nested doc in tail snapshot corrupted: %v", d)
		}
	}
}

// TestOptimisticReadHammer races the optimistic read paths against
// writers on the same partitions — the -race target for the version
// protocol. Reads must always return internally consistent results
// (never an error, never a torn count below what was durably inserted
// before the reads began).
func TestOptimisticReadHammer(t *testing.T) {
	c := optimisticCollection(t, 4)
	const devices = 8
	mac := func(i int) string { return fmt.Sprintf("mac-%d", i%devices) }
	// A durable floor of documents that no writer deletes.
	for i := 0; i < 200; i++ {
		c.Insert(Doc{"deviceMac": mac(i), "kind": "keep", "ts": float64(i)})
	}
	floor := make(map[string]int)
	for i := 0; i < 200; i++ {
		floor[mac(i)]++
	}

	var wg sync.WaitGroup
	// Writers churn temporary docs, invalidating snapshots constantly.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 150; i++ {
				c.Insert(Doc{"deviceMac": mac(i), "kind": "temp", "ts": float64(1000 + i)})
				if i%3 == 0 {
					if _, err := c.Delete(Doc{"kind": "temp", "deviceMac": mac(i)}); err != nil {
						t.Errorf("delete: %v", err)
						return
					}
				}
			}
		}(w)
	}
	// Optimistic readers on the same keys.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				m := mac(i + r)
				vals, err := c.FieldValues(Doc{"deviceMac": m}, "ts")
				if err != nil {
					t.Errorf("fieldvalues: %v", err)
					return
				}
				if len(vals) < floor[m] {
					t.Errorf("torn read: %s has %d values, floor %d", m, len(vals), floor[m])
					return
				}
				if got := c.Tail(7); len(got) > 7*c.NumPartitions() {
					t.Errorf("tail returned %d docs for n=7", len(got))
					return
				}
				if c.Len() < 200 {
					t.Errorf("len %d below durable floor 200", c.Len())
					return
				}
				multi, err := c.FieldValuesMulti([]Doc{{"deviceMac": m}, {"kind": "keep"}}, "ts")
				if err != nil {
					t.Errorf("fieldvaluesmulti: %v", err)
					return
				}
				if len(multi[0]) < floor[m] || len(multi[1]) < 200 {
					t.Errorf("torn multi read: %d/%d", len(multi[0]), len(multi[1]))
					return
				}
			}
		}(r)
	}
	wg.Wait()

	// Settle and check the caches converge on the final truth.
	if _, err := c.Delete(Doc{"kind": "temp"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < devices; i++ {
		vals, err := c.FieldValues(Doc{"deviceMac": mac(i)}, "ts")
		if err != nil {
			t.Fatal(err)
		}
		if len(vals) != floor[mac(i)] {
			t.Fatalf("%s: %d values after settle, want %d", mac(i), len(vals), floor[mac(i)])
		}
	}
	if n, _ := c.Count(Doc{}); n != c.Len() || n != 200 {
		t.Fatalf("final Len %d / Count %d, want 200", c.Len(), n)
	}
}
