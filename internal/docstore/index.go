package docstore

import (
	"fmt"
	"sort"
	"sync"
)

// index is one partition's shard of a secondary index over a field
// path. It keeps a hash map for equality lookups and a sorted key list
// for range scans; both are maintained incrementally on
// insert/update/delete under the owning partition's lock.
type index struct {
	field string
	// eq maps an index key to the set of document ids holding it.
	eq map[indexKey][]int64
	// keys holds the distinct index keys in sorted order for range
	// queries; rebuilt lazily when dirty. keyMu serializes rebuilds,
	// which may run under the partition's read lock.
	keyMu sync.Mutex
	keys  []indexKey
	dirty bool
}

// indexKey is the comparable form of an indexed value: the value's
// rank plus either its numeric or string form.
type indexKey struct {
	rank int
	num  float64
	str  string
}

func keyFor(v any) (indexKey, bool) {
	switch rank(v) {
	case 2:
		return indexKey{rank: 2, num: toFloat(v)}, true
	case 3:
		return indexKey{rank: 3, str: v.(string)}, true
	case 1:
		b := v.(bool)
		n := 0.0
		if b {
			n = 1
		}
		return indexKey{rank: 1, num: n}, true
	default:
		return indexKey{}, false
	}
}

func (k indexKey) less(o indexKey) bool {
	if k.rank != o.rank {
		return k.rank < o.rank
	}
	if k.rank == 3 {
		return k.str < o.str
	}
	return k.num < o.num
}

// CreateIndex builds an index over the given field path: one shard
// per partition, each built and maintained under its partition's own
// lock so index upkeep never serializes unrelated partitions. On a
// durable collection the index registers in meta.json and is rebuilt
// on recovery.
func (c *Collection) CreateIndex(field string) error {
	c.idxMu.Lock()
	defer c.idxMu.Unlock()
	if err := c.addIndexLocked(field); err != nil {
		return err
	}
	return c.persistMetaLocked()
}

// addIndex builds the index without touching meta.json — the recovery
// path, which rebuilds indexes meta.json already lists.
func (c *Collection) addIndex(field string) error {
	c.idxMu.Lock()
	defer c.idxMu.Unlock()
	return c.addIndexLocked(field)
}

func (c *Collection) addIndexLocked(field string) error {
	if _, ok := c.idxFields[field]; ok {
		return fmt.Errorf("%w: %s", ErrIndexExists, field)
	}
	for _, p := range c.parts {
		p.writeLock()
		idx := &index{field: field, eq: make(map[indexKey][]int64)}
		for _, id := range p.order {
			if s, ok := p.docs[id]; ok {
				idx.add(s.doc, id)
			}
		}
		p.indexes[field] = idx
		p.writeUnlock()
	}
	c.idxFields[field] = struct{}{}
	return nil
}

// DropIndex removes the index over the given field path from every
// partition. Queries fall back to partition scans.
func (c *Collection) DropIndex(field string) error {
	c.idxMu.Lock()
	defer c.idxMu.Unlock()
	if _, ok := c.idxFields[field]; !ok {
		return fmt.Errorf("%w: %s", ErrIndexAbsent, field)
	}
	for _, p := range c.parts {
		p.writeLock()
		delete(p.indexes, field)
		p.writeUnlock()
	}
	delete(c.idxFields, field)
	return c.persistMetaLocked()
}

// persistMetaLocked rewrites the durable collection's meta.json after
// an index DDL change. Caller holds idxMu, so the index list is read
// inline instead of through Indexes().
func (c *Collection) persistMetaLocked() error {
	if c.dur == nil {
		return nil
	}
	return c.dur.writeMeta(c.metaSnapshot(c.indexesLocked()))
}

// Indexes returns the indexed field paths.
func (c *Collection) Indexes() []string {
	c.idxMu.Lock()
	defer c.idxMu.Unlock()
	return c.indexesLocked()
}

func (c *Collection) indexesLocked() []string {
	out := make([]string, 0, len(c.idxFields))
	for f := range c.idxFields {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

func (x *index) add(d Doc, id int64) {
	v, ok := lookup(d, x.field)
	if !ok {
		return
	}
	k, ok := keyFor(v)
	if !ok {
		return
	}
	if _, existed := x.eq[k]; !existed {
		x.dirty = true
	}
	x.eq[k] = append(x.eq[k], id)
}

func (x *index) remove(d Doc, id int64) {
	v, ok := lookup(d, x.field)
	if !ok {
		return
	}
	k, ok := keyFor(v)
	if !ok {
		return
	}
	ids := x.eq[k]
	for i, e := range ids {
		if e == id {
			x.eq[k] = append(ids[:i], ids[i+1:]...)
			break
		}
	}
	if len(x.eq[k]) == 0 {
		delete(x.eq, k)
		x.dirty = true
	}
}

func (x *index) lookupEq(v any) []int64 {
	k, ok := keyFor(v)
	if !ok {
		return nil
	}
	ids := x.eq[k]
	out := make([]int64, len(ids))
	copy(out, ids)
	return out
}

// lookupRange serves operator maps consisting solely of range bounds
// ($gt/$gte/$lt/$lte). It reports ok=false when the operator map
// contains anything it cannot serve, in which case the caller falls
// back to a scan.
func (x *index) lookupRange(ops map[string]any) ([]int64, bool) {
	lo, hi := indexKey{rank: -1}, indexKey{rank: 99}
	loExcl, hiExcl := false, false
	for op, arg := range ops {
		k, ok := keyFor(arg)
		if !ok {
			return nil, false
		}
		switch op {
		case "$gt":
			lo, loExcl = k, true
		case "$gte":
			lo, loExcl = k, false
		case "$lt":
			hi, hiExcl = k, true
		case "$lte":
			hi, hiExcl = k, false
		default:
			return nil, false
		}
	}
	x.rebuildKeys()
	start := sort.Search(len(x.keys), func(i int) bool {
		if loExcl {
			return lo.less(x.keys[i])
		}
		return !x.keys[i].less(lo)
	})
	var out []int64
	for i := start; i < len(x.keys); i++ {
		k := x.keys[i]
		if hiExcl {
			if !k.less(hi) {
				break
			}
		} else if hi.less(k) {
			break
		}
		out = append(out, x.eq[k]...)
	}
	return out, true
}

func (x *index) rebuildKeys() {
	x.keyMu.Lock()
	defer x.keyMu.Unlock()
	if !x.dirty && x.keys != nil {
		return
	}
	x.keys = x.keys[:0]
	for k := range x.eq {
		x.keys = append(x.keys, k)
	}
	sort.Slice(x.keys, func(i, j int) bool { return x.keys[i].less(x.keys[j]) })
	x.dirty = false
}
