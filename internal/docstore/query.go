package docstore

import (
	"fmt"
	"strings"
)

// matchDoc reports whether doc satisfies filter. A filter is a map of
// field paths to conditions. A condition is either a literal (implicit
// $eq) or an operator map. Top-level logical keys $and / $or / $nor
// take a list of sub-filters.
//
// Supported operators: $eq, $ne, $gt, $gte, $lt, $lte, $in, $nin,
// $exists, $regexPrefix (prefix match, the store's index-friendly
// regex subset).
func matchDoc(doc Doc, filter Doc) (bool, error) {
	for key, cond := range filter {
		switch key {
		case "$and":
			subs, err := subFilters(key, cond)
			if err != nil {
				return false, err
			}
			for _, s := range subs {
				ok, err := matchDoc(doc, s)
				if err != nil || !ok {
					return false, err
				}
			}
		case "$or":
			subs, err := subFilters(key, cond)
			if err != nil {
				return false, err
			}
			any := false
			for _, s := range subs {
				ok, err := matchDoc(doc, s)
				if err != nil {
					return false, err
				}
				if ok {
					any = true
					break
				}
			}
			if !any {
				return false, nil
			}
		case "$nor":
			subs, err := subFilters(key, cond)
			if err != nil {
				return false, err
			}
			for _, s := range subs {
				ok, err := matchDoc(doc, s)
				if err != nil {
					return false, err
				}
				if ok {
					return false, nil
				}
			}
		default:
			if strings.HasPrefix(key, "$") {
				return false, fmt.Errorf("%w: unknown operator %q", ErrBadFilter, key)
			}
			val, exists := lookup(doc, key)
			ok, err := matchField(val, exists, cond)
			if err != nil || !ok {
				return false, err
			}
		}
	}
	return true, nil
}

func subFilters(op string, cond any) ([]Doc, error) {
	list, ok := cond.([]Doc)
	if ok {
		return list, nil
	}
	raw, ok := cond.([]any)
	if !ok {
		return nil, fmt.Errorf("%w: %s expects a list of filters", ErrBadFilter, op)
	}
	out := make([]Doc, len(raw))
	for i, e := range raw {
		m, ok := e.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("%w: %s element %d is not a filter", ErrBadFilter, op, i)
		}
		out[i] = m
	}
	return out, nil
}

func matchField(val any, exists bool, cond any) (bool, error) {
	ops, isOps := cond.(map[string]any)
	if !isOps {
		return exists && equalValues(val, cond), nil
	}
	for op, arg := range ops {
		ok, err := applyOp(val, exists, op, arg)
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

func applyOp(val any, exists bool, op string, arg any) (bool, error) {
	switch op {
	case "$eq":
		return exists && equalValues(val, arg), nil
	case "$ne":
		return !exists || !equalValues(val, arg), nil
	case "$gt":
		return exists && comparable2(val, arg) && compareValues(val, arg) > 0, nil
	case "$gte":
		return exists && comparable2(val, arg) && compareValues(val, arg) >= 0, nil
	case "$lt":
		return exists && comparable2(val, arg) && compareValues(val, arg) < 0, nil
	case "$lte":
		return exists && comparable2(val, arg) && compareValues(val, arg) <= 0, nil
	case "$in":
		list, ok := arg.([]any)
		if !ok {
			return false, fmt.Errorf("%w: $in expects a list", ErrBadFilter)
		}
		if !exists {
			return false, nil
		}
		for _, e := range list {
			if equalValues(val, e) {
				return true, nil
			}
		}
		return false, nil
	case "$nin":
		ok, err := applyOp(val, exists, "$in", arg)
		return !ok, err
	case "$exists":
		want, ok := arg.(bool)
		if !ok {
			return false, fmt.Errorf("%w: $exists expects a bool", ErrBadFilter)
		}
		return exists == want, nil
	case "$regexPrefix":
		prefix, ok := arg.(string)
		if !ok {
			return false, fmt.Errorf("%w: $regexPrefix expects a string", ErrBadFilter)
		}
		s, ok := val.(string)
		return exists && ok && strings.HasPrefix(s, prefix), nil
	default:
		return false, fmt.Errorf("%w: unknown operator %q", ErrBadFilter, op)
	}
}

// equalValues compares two document values with numeric coercion.
func equalValues(a, b any) bool {
	if rank(a) == 2 && rank(b) == 2 {
		return toFloat(a) == toFloat(b)
	}
	if rank(a) != rank(b) {
		return false
	}
	return compareValues(a, b) == 0
}
