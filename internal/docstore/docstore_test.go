package docstore

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func seedAlarms(c *Collection, n int) {
	r := rand.New(rand.NewSource(7))
	types := []string{"fire", "intrusion", "technical"}
	for i := 0; i < n; i++ {
		c.Insert(Doc{
			"deviceMac": fmt.Sprintf("mac-%03d", i%20),
			"zip":       fmt.Sprintf("%04d", 8000+i%10),
			"alarmType": types[i%len(types)],
			"duration":  float64(r.Intn(600)),
			"ts":        int64(1_000_000 + i*60),
			"meta":      map[string]any{"sensor": fmt.Sprintf("s%d", i%3)},
		})
	}
}

func TestInsertAndGet(t *testing.T) {
	db := NewDB()
	c := db.Collection("alarms")
	id := c.Insert(Doc{"zip": "8400", "duration": 12.0})
	got, err := c.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if got["zip"] != "8400" || got["duration"] != 12.0 {
		t.Errorf("got %v", got)
	}
	if got["_id"] != id {
		t.Errorf("_id = %v, want %d", got["_id"], id)
	}
	if _, err := c.Get(999); err == nil {
		t.Error("expected not-found")
	}
}

func TestInsertCopiesDocument(t *testing.T) {
	c := NewDB().Collection("a")
	src := Doc{"nested": map[string]any{"k": "v"}}
	id := c.Insert(src)
	src["nested"].(map[string]any)["k"] = "mutated"
	got, _ := c.Get(id)
	if got["nested"].(map[string]any)["k"] != "v" {
		t.Error("stored doc shares memory with caller's doc")
	}
	// And reads must be isolated too.
	got["nested"].(map[string]any)["k"] = "mutated-again"
	got2, _ := c.Get(id)
	if got2["nested"].(map[string]any)["k"] != "v" {
		t.Error("Get returns aliased memory")
	}
}

func TestFindEqualityAndOperators(t *testing.T) {
	c := NewDB().Collection("alarms")
	seedAlarms(c, 100)

	byType, err := c.Find(Doc{"alarmType": "fire"})
	if err != nil {
		t.Fatal(err)
	}
	if len(byType) != 34 { // ceil(100/3)
		t.Errorf("fire count = %d, want 34", len(byType))
	}

	long, err := c.Find(Doc{"duration": map[string]any{"$gte": 300.0}})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range long {
		if d["duration"].(float64) < 300 {
			t.Errorf("filter leak: %v", d["duration"])
		}
	}

	in, err := c.Find(Doc{"alarmType": map[string]any{"$in": []any{"fire", "intrusion"}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(in) != 67 {
		t.Errorf("$in count = %d, want 67", len(in))
	}

	nested, err := c.Find(Doc{"meta.sensor": "s0"})
	if err != nil {
		t.Fatal(err)
	}
	if len(nested) != 34 {
		t.Errorf("nested path count = %d, want 34", len(nested))
	}
}

func TestLogicalOperators(t *testing.T) {
	c := NewDB().Collection("alarms")
	seedAlarms(c, 90)
	or, err := c.Find(Doc{"$or": []any{
		map[string]any{"alarmType": "fire"},
		map[string]any{"alarmType": "technical"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(or) != 60 {
		t.Errorf("$or = %d, want 60", len(or))
	}
	and, err := c.Find(Doc{"$and": []any{
		map[string]any{"alarmType": "fire"},
		map[string]any{"duration": map[string]any{"$lt": 100.0}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range and {
		if d["alarmType"] != "fire" || d["duration"].(float64) >= 100 {
			t.Errorf("$and leak: %v", d)
		}
	}
	if _, err := c.Find(Doc{"$bogus": []any{}}); err == nil {
		t.Error("unknown logical operator accepted")
	}
}

func TestExistsAndNe(t *testing.T) {
	c := NewDB().Collection("x")
	c.Insert(Doc{"a": 1})
	c.Insert(Doc{"b": 2})
	got, err := c.Find(Doc{"a": map[string]any{"$exists": true}})
	if err != nil || len(got) != 1 {
		t.Fatalf("$exists true: %d docs, err %v", len(got), err)
	}
	got, err = c.Find(Doc{"a": map[string]any{"$exists": false}})
	if err != nil || len(got) != 1 {
		t.Fatalf("$exists false: %d docs, err %v", len(got), err)
	}
	// $ne matches documents missing the field, like MongoDB.
	got, err = c.Find(Doc{"a": map[string]any{"$ne": 1}})
	if err != nil || len(got) != 1 {
		t.Fatalf("$ne: %d docs, err %v", len(got), err)
	}
}

func TestSortSkipLimit(t *testing.T) {
	c := NewDB().Collection("alarms")
	for i := 0; i < 10; i++ {
		c.Insert(Doc{"n": 9 - i})
	}
	got, err := c.Find(Doc{}, FindOptions{Sort: "n", Skip: 2, Limit: 3})
	if err != nil {
		t.Fatal(err)
	}
	var ns []int
	for _, d := range got {
		ns = append(ns, d["n"].(int))
	}
	if !reflect.DeepEqual(ns, []int{2, 3, 4}) {
		t.Errorf("sorted window = %v", ns)
	}
	desc, _ := c.Find(Doc{}, FindOptions{Sort: "-n", Limit: 2})
	if desc[0]["n"].(int) != 9 || desc[1]["n"].(int) != 8 {
		t.Errorf("descending sort broken: %v", desc)
	}
}

func TestUpdateAndDelete(t *testing.T) {
	c := NewDB().Collection("alarms")
	seedAlarms(c, 30)
	n, err := c.Update(Doc{"alarmType": "fire"}, Doc{"verified": true})
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("updated %d, want 10", n)
	}
	cnt, _ := c.Count(Doc{"verified": true})
	if cnt != 10 {
		t.Fatalf("count after update = %d", cnt)
	}
	del, err := c.Delete(Doc{"alarmType": "technical"})
	if err != nil || del != 10 {
		t.Fatalf("deleted %d (%v), want 10", del, err)
	}
	if c.Len() != 20 {
		t.Fatalf("len after delete = %d, want 20", c.Len())
	}
}

func TestIndexEqualityMatchesScan(t *testing.T) {
	c := NewDB().Collection("alarms")
	seedAlarms(c, 200)
	scan, err := c.Find(Doc{"zip": "8003"})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CreateIndex("zip"); err != nil {
		t.Fatal(err)
	}
	indexed, err := c.Find(Doc{"zip": "8003"})
	if err != nil {
		t.Fatal(err)
	}
	if len(indexed) != len(scan) {
		t.Fatalf("indexed find returned %d, scan %d", len(indexed), len(scan))
	}
	if err := c.CreateIndex("zip"); err == nil {
		t.Error("duplicate index accepted")
	}
}

func TestIndexRangeMatchesScan(t *testing.T) {
	c := NewDB().Collection("alarms")
	seedAlarms(c, 300)
	filter := Doc{"duration": map[string]any{"$gte": 100.0, "$lt": 400.0}}
	scan, err := c.Find(filter)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CreateIndex("duration"); err != nil {
		t.Fatal(err)
	}
	indexed, err := c.Find(filter)
	if err != nil {
		t.Fatal(err)
	}
	if len(indexed) != len(scan) {
		t.Fatalf("range via index = %d docs, scan = %d", len(indexed), len(scan))
	}
}

func TestIndexMaintainedAcrossUpdateDelete(t *testing.T) {
	c := NewDB().Collection("alarms")
	if err := c.CreateIndex("zip"); err != nil {
		t.Fatal(err)
	}
	seedAlarms(c, 100)
	c.Update(Doc{"zip": "8001"}, Doc{"zip": "9999"})
	old, _ := c.Count(Doc{"zip": "8001"})
	moved, _ := c.Count(Doc{"zip": "9999"})
	if old != 0 || moved != 10 {
		t.Fatalf("after update: old=%d moved=%d", old, moved)
	}
	c.Delete(Doc{"zip": "9999"})
	left, _ := c.Count(Doc{"zip": "9999"})
	if left != 0 {
		t.Fatalf("after delete: %d", left)
	}
}

func TestAggregateGroupCount(t *testing.T) {
	c := NewDB().Collection("alarms")
	seedAlarms(c, 90)
	out, err := c.Aggregate(Doc{}, Group{
		By:   []string{"alarmType"},
		Accs: map[string]Accumulator{"n": {Op: "count"}, "avgDur": {Op: "avg", Field: "duration"}},
	}, SortStage{Field: "alarmType"})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("groups = %d, want 3", len(out))
	}
	for _, g := range out {
		if g["n"].(int) != 30 {
			t.Errorf("group %v count = %v, want 30", g["alarmType"], g["n"])
		}
	}
}

func TestAggregateHistogram(t *testing.T) {
	c := NewDB().Collection("alarms")
	for i := 0; i < 50; i++ {
		c.Insert(Doc{"ts": float64(i)})
	}
	out, err := c.Aggregate(Doc{}, Bucket{Field: "ts", Origin: 0, Width: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 5 {
		t.Fatalf("buckets = %d, want 5", len(out))
	}
	for i, b := range out {
		if b["bucket"].(float64) != float64(i*10) || b["count"].(int) != 10 {
			t.Errorf("bucket %d = %v", i, b)
		}
	}
	if _, err := c.Aggregate(Doc{}, Bucket{Field: "ts", Width: 0}); err == nil {
		t.Error("zero-width bucket accepted")
	}
}

func TestAggregateMinMaxFirstProject(t *testing.T) {
	c := NewDB().Collection("x")
	c.Insert(Doc{"g": "a", "v": 3})
	c.Insert(Doc{"g": "a", "v": 1})
	c.Insert(Doc{"g": "a", "v": 7})
	out, err := c.Aggregate(Doc{}, Group{
		By: []string{"g"},
		Accs: map[string]Accumulator{
			"lo":    {Op: "min", Field: "v"},
			"hi":    {Op: "max", Field: "v"},
			"first": {Op: "first", Field: "v"},
			"total": {Op: "sum", Field: "v"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	g := out[0]
	if toFloat(g["lo"]) != 1 || toFloat(g["hi"]) != 7 || toFloat(g["first"]) != 3 || g["total"].(float64) != 11 {
		t.Errorf("accumulators wrong: %v", g)
	}
	proj, err := c.Aggregate(Doc{}, Project{Fields: []string{"v"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := proj[0]["g"]; ok {
		t.Error("projection kept dropped field")
	}
}

func TestConcurrentReadWrite(t *testing.T) {
	c := NewDB().Collection("alarms")
	c.CreateIndex("zip")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				c.Insert(Doc{"zip": fmt.Sprintf("%04d", 8000+i%10), "w": w})
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if _, err := c.Find(Doc{"zip": "8003"}); err != nil {
					t.Errorf("find: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if c.Len() != 1000 {
		t.Fatalf("len = %d, want 1000", c.Len())
	}
	n, _ := c.Count(Doc{"zip": "8003"})
	if n != 100 {
		t.Fatalf("indexed count = %d, want 100", n)
	}
}

func TestCompareValuesOrdering(t *testing.T) {
	now := time.Now()
	cases := []struct {
		a, b any
		want int
	}{
		{nil, false, -1},
		{true, false, 1},
		{1, 2.5, -1},
		{int64(3), 3, 0},
		{"a", "b", -1},
		{"z", 5, 1},
		{now, now.Add(time.Second), -1},
	}
	for _, tc := range cases {
		got := compareValues(tc.a, tc.b)
		if (got < 0) != (tc.want < 0) || (got > 0) != (tc.want > 0) {
			t.Errorf("compare(%v,%v) = %d, want sign %d", tc.a, tc.b, got, tc.want)
		}
	}
}

// Property: for random numeric datasets, an indexed range query always
// agrees with a full scan.
func TestPropertyIndexedRangeEqualsScan(t *testing.T) {
	f := func(seed int64, loRaw, hiRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		plain := NewDB().Collection("p")
		indexed := NewDB().Collection("i")
		indexed.CreateIndex("v")
		for i := 0; i < 150; i++ {
			v := float64(r.Intn(100))
			plain.Insert(Doc{"v": v})
			indexed.Insert(Doc{"v": v})
		}
		lo := float64(loRaw % 100)
		hi := lo + float64(hiRaw%40)
		filter := Doc{"v": map[string]any{"$gte": lo, "$lte": hi}}
		a, err1 := plain.Count(filter)
		b, err2 := indexed.Count(filter)
		return err1 == nil && err2 == nil && a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDropCollection(t *testing.T) {
	db := NewDB()
	db.Collection("a").Insert(Doc{"x": 1})
	if err := db.Drop("a"); err != nil {
		t.Fatal(err)
	}
	if err := db.Drop("a"); err == nil {
		t.Error("double drop accepted")
	}
	if db.Collection("a").Len() != 0 {
		t.Error("recreated collection not empty")
	}
}

func TestTailReturnsMostRecentInInsertionOrder(t *testing.T) {
	db := NewDBWithPartitions(4)
	c := db.Collection("tail")
	const total = 250
	for i := 0; i < total; i++ {
		c.Insert(Doc{"seq": i})
	}
	for _, n := range []int{1, 7, 100, total, total + 50, 0, -1} {
		got := c.Tail(n)
		want := total
		if n > 0 && n < total {
			want = n
		}
		if len(got) != want {
			t.Fatalf("Tail(%d) returned %d docs, want %d", n, len(got), want)
		}
		for i, d := range got {
			if seq := d["seq"].(int); seq != total-want+i {
				t.Fatalf("Tail(%d)[%d] seq = %d, want %d", n, i, seq, total-want+i)
			}
		}
	}
	// Deletions must not resurface in the tail.
	if _, err := c.Delete(Doc{"seq": total - 1}); err != nil {
		t.Fatal(err)
	}
	got := c.Tail(3)
	if len(got) != 3 || got[2]["seq"].(int) != total-2 {
		t.Fatalf("Tail after delete = %v", got)
	}
	// Tail must return copies, not aliases.
	got[2]["seq"] = -99
	if again := c.Tail(1); again[0]["seq"].(int) != total-2 {
		t.Fatalf("Tail aliased stored document: %v", again[0])
	}
}
