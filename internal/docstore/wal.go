package docstore

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Per-partition write-ahead log.
//
// Every mutation a durable collection applies to a partition is first
// appended — under that partition's write lock, so the log order IS
// the apply order — as one CRC-framed record to the partition's WAL
// file. Appends are flushed to the operating system on every call
// (surviving a process kill) and fsynced either on every append
// (SyncInterval <= 0) or by the database's group syncer on a
// configurable cadence — the group-commit trade: acknowledged writes
// can lose at most one sync interval to a machine crash, while the
// hot ingest path never blocks on the disk.
//
// Frame wire format (little endian):
//
//	[4 payload length][4 IEEE CRC32 of payload][payload JSON]
//
// A torn tail — a partial frame after a crash, or any frame whose CRC
// does not match — ends replay at the last valid frame boundary, and
// recovery truncates the file there so the appender continues cleanly,
// exactly like broker segment recovery.

// walMaxFrame bounds a single WAL frame's payload, so corrupt length
// headers read as torn tails instead of huge allocations.
const walMaxFrame = 64 << 20

// walOp is one logged mutation. Document values travel through
// encodeValue/decodeValue, so time.Time and exact integer types
// survive the JSON round-trip.
type walOp struct {
	// Op is "ins" (Docs carries inserted documents including their
	// assigned _id), "upd" (Filter + Set of an update applied to this
	// partition) or "del" (Filter of a delete applied to this
	// partition).
	Op     string `json:"op"`
	Docs   []any  `json:"docs,omitempty"`
	Filter any    `json:"filter,omitempty"`
	Set    any    `json:"set,omitempty"`
}

// walWriter appends frames to one partition's WAL file.
type walWriter struct {
	mu     sync.Mutex
	f      *os.File
	buf    *bufio.Writer
	closed bool        // set by close(); makes a late sync() a no-op
	dirty  atomic.Bool // appended since the last fsync
	onErr  func(error) // sticky-error sink (durableDB.noteErr)
}

func openWALWriter(path string, onErr func(error)) (*walWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("docstore: open wal: %w", err)
	}
	return &walWriter{f: f, buf: bufio.NewWriterSize(f, 64<<10), onErr: onErr}, nil
}

// appendOp frames and appends one operation, flushing it to the OS.
// With syncNow it also fsyncs before returning (the SyncInterval <= 0
// strict mode); otherwise the group syncer picks the file up on its
// next tick. Failures are reported to the sticky-error sink — the
// mutation itself has already been applied in memory, and the store's
// write API is errorless by design; Sync, Checkpoint and Close
// surface the first failure.
func (w *walWriter) appendOp(op walOp, syncNow bool) {
	payload, err := json.Marshal(op)
	if err != nil {
		w.onErr(fmt.Errorf("docstore: wal marshal: %w", err))
		return
	}
	frame := make([]byte, 8, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	w.writeFrame(append(frame, payload...), syncNow)
}

// walFramePool recycles whole-frame assembly buffers (header +
// payload in one slice) across appendDocs calls.
var walFramePool = sync.Pool{New: func() any { b := make([]byte, 0, 32<<10); return &b }}

// appendDocs frames one "ins" operation for the insert hot path,
// serializing the documents straight into a pooled frame buffer —
// skipping the encodeValue map cloning and json.Marshal reflection
// that dominate the generic appendOp (the write-behind flusher calls
// this once per partition per flush, so its per-document cost IS the
// durability tax). The wire bytes decode identically to the generic
// path: same walOp JSON shape, same $time/$i64/$int wrappers. A doc
// holding a type the fast appender does not cover falls back to
// appendOp for the whole frame.
//
//alarmvet:hotpath
func (w *walWriter) appendDocs(syncNow bool, docs ...Doc) {
	bp := walFramePool.Get().(*[]byte)
	b := append((*bp)[:0], 0, 0, 0, 0, 0, 0, 0, 0) // frame header placeholder
	b = append(b, `{"op":"ins","docs":[`...)
	ok := true
	for i, d := range docs {
		if i > 0 {
			b = append(b, ',')
		}
		if b, ok = appendWALValue(b, d); !ok {
			break
		}
	}
	if !ok {
		*bp = b
		walFramePool.Put(bp)
		logged := make([]any, len(docs)) //alarmvet:ignore cold fallback: a doc type the fast appender cannot cover takes the generic path
		for i, d := range docs {
			logged[i] = encodeValue(d)
		}
		w.appendOp(walOp{Op: "ins", Docs: logged}, syncNow)
		return
	}
	b = append(b, ']', '}')
	payload := b[8:]
	binary.LittleEndian.PutUint32(b[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[4:8], crc32.ChecksumIEEE(payload))
	w.writeFrame(b, syncNow)
	*bp = b
	walFramePool.Put(bp)
}

// writeFrame appends one pre-assembled frame (header included) to the
// log, with the same flush/fsync semantics as appendOp.
//
//alarmvet:ignore WAL appends and their fsync serialize under w.mu by design (group commit ordering)
//alarmvet:hotpath
func (w *walWriter) writeFrame(frame []byte, syncNow bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.buf.Write(frame); err != nil {
		w.onErr(fmt.Errorf("docstore: wal append: %w", err)) //alarmvet:ignore error path: the write just failed, latency no longer matters
		return
	}
	if err := w.buf.Flush(); err != nil {
		//alarmvet:ignore error path: the flush just failed, latency no longer matters
		w.onErr(fmt.Errorf("docstore: wal flush: %w", err))
		return
	}
	if syncNow {
		if err := w.f.Sync(); err != nil {
			//alarmvet:ignore error path: the fsync just failed, latency no longer matters
			w.onErr(fmt.Errorf("docstore: wal fsync: %w", err))
		}
		return
	}
	w.dirty.Store(true)
}

// appendWALValue appends v's WAL JSON encoding — byte-compatible with
// what encodeValue + json.Marshal produce for the covered types. The
// false return means v (or something nested in it) needs the generic
// path; the caller discards the partial frame.
//
//alarmvet:hotpath
func appendWALValue(b []byte, v any) ([]byte, bool) {
	switch t := v.(type) {
	case nil:
		return append(b, "null"...), true
	case string:
		return appendWALString(b, t), true
	case bool:
		return strconv.AppendBool(b, t), true
	case float64:
		if math.IsNaN(t) || math.IsInf(t, 0) {
			return b, false // not representable in JSON
		}
		// Shortest round-trip form; 'e' outside float64's plain-decimal
		// comfort zone, mirroring encoding/json.
		if abs := math.Abs(t); abs != 0 && (abs < 1e-6 || abs >= 1e21) {
			return strconv.AppendFloat(b, t, 'e', -1, 64), true
		}
		return strconv.AppendFloat(b, t, 'f', -1, 64), true
	case int:
		b = append(b, `{"`+intField+`":"`...)
		b = strconv.AppendInt(b, int64(t), 10)
		return append(b, '"', '}'), true
	case int64:
		b = append(b, `{"`+int64Field+`":"`...)
		b = strconv.AppendInt(b, t, 10)
		return append(b, '"', '}'), true
	case int32:
		b = append(b, `{"`+intField+`":"`...)
		b = strconv.AppendInt(b, int64(t), 10)
		return append(b, '"', '}'), true
	case time.Time:
		// RFC3339Nano output never contains characters needing escape.
		b = append(b, `{"`+timeField+`":"`...)
		b = t.AppendFormat(b, time.RFC3339Nano)
		return append(b, '"', '}'), true
	case map[string]any:
		b = append(b, '{')
		first := true
		var ok bool
		for k, e := range t {
			if !first {
				b = append(b, ',')
			}
			first = false
			b = appendWALString(b, k)
			b = append(b, ':')
			if b, ok = appendWALValue(b, e); !ok {
				return b, false
			}
		}
		return append(b, '}'), true
	case []any:
		b = append(b, '[')
		var ok bool
		for i, e := range t {
			if i > 0 {
				b = append(b, ',')
			}
			if b, ok = appendWALValue(b, e); !ok {
				return b, false
			}
		}
		return append(b, ']'), true
	default:
		return b, false
	}
}

// appendWALString appends s as a JSON string. Valid UTF-8 passes
// through unescaped (json.Unmarshal accepts it verbatim); quotes,
// backslashes and control bytes get the standard escapes.
//
//alarmvet:hotpath
func appendWALString(b []byte, s string) []byte {
	b = append(b, '"')
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '"' && c != '\\' && c >= 0x20 {
			continue
		}
		b = append(b, s[start:i]...)
		switch c {
		case '"':
			b = append(b, '\\', '"')
		case '\\':
			b = append(b, '\\', '\\')
		case '\n':
			b = append(b, '\\', 'n')
		case '\r':
			b = append(b, '\\', 'r')
		case '\t':
			b = append(b, '\\', 't')
		default:
			const hex = "0123456789abcdef"
			b = append(b, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		}
		start = i + 1
	}
	b = append(b, s[start:]...)
	return append(b, '"')
}

// sync flushes buffered frames and fsyncs the file if anything was
// appended since the last sync. The group syncer may race a
// checkpoint rotation and reach a writer close() already flushed and
// fsynced; that late sync is a no-op, not an error.
//
//alarmvet:ignore the WAL fsync must hold w.mu to order against concurrent appends
func (w *walWriter) sync() error {
	if !w.dirty.Swap(false) {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	if err := w.buf.Flush(); err != nil {
		return fmt.Errorf("docstore: wal flush: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("docstore: wal fsync: %w", err)
	}
	return nil
}

// close flushes, fsyncs and closes the file. Idempotent.
//
//alarmvet:ignore the final flush/fsync must hold w.mu to order against concurrent appends
func (w *walWriter) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.buf.Flush(); err != nil {
		_ = w.f.Close() // the flush failure supersedes; file is abandoned
		return fmt.Errorf("docstore: wal flush: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		_ = w.f.Close() // the fsync failure supersedes; file is abandoned
		return fmt.Errorf("docstore: wal fsync: %w", err)
	}
	return w.f.Close()
}

// readWAL loads every complete, CRC-valid frame of a partition WAL,
// returning the decoded operations and the byte offset up to which the
// file is valid. A missing file is an empty log. A torn or corrupt
// tail ends the scan at the last valid frame; the caller truncates.
func readWAL(path string) ([]walOp, int64, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("docstore: read wal: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 256<<10)
	var ops []walOp
	var valid int64
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			break // EOF or torn header
		}
		plen := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if plen == 0 || plen > walMaxFrame {
			break // corrupt length: treat as torn tail
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(br, payload); err != nil {
			break // torn payload
		}
		if crc32.ChecksumIEEE(payload) != sum {
			break // bit rot or torn rewrite: stop at the last good frame
		}
		var op walOp
		if err := json.Unmarshal(payload, &op); err != nil {
			break // CRC-valid but unparseable: treat as torn
		}
		ops = append(ops, op)
		valid += 8 + int64(plen)
	}
	return ops, valid, nil
}
