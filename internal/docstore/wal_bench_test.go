package docstore

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkInsertMany prices the WAL on the store's own batched hot
// path (the write-behind flusher's call shape): alarm-shaped docs in
// batches of 256, memory-only vs WAL-backed at the default group-sync
// interval. The e2e pair lives in the repo root's
// BenchmarkDurableThroughput; this one isolates the docstore layer so
// WAL encoding regressions are visible without the serving pipeline.
func BenchmarkInsertMany(b *testing.B) {
	const batchSize = 256
	mkBatch := func(base int) []Doc {
		docs := make([]Doc, batchSize)
		for i := range docs {
			n := base + i
			docs[i] = Doc{
				"deviceMac": fmt.Sprintf("mac-%03d", n%512),
				"alarmId":   int64(1)<<55 + int64(n),
				"ts":        time.Unix(1700000000+int64(n), 0),
				"duration":  float64(n % 600),
				"type":      n % 8,
				"objType":   n % 5,
				"zip":       fmt.Sprintf("%04d", n%100),
				"sensor":    "sensor-1",
				"swVersion": "v2.3",
			}
		}
		return docs
	}
	for _, store := range []string{"memory", "wal"} {
		b.Run("store="+store, func(b *testing.B) {
			var db *DB
			if store == "wal" {
				var err error
				db, err = OpenDB(b.TempDir(), DurableOptions{Partitions: 4})
				if err != nil {
					b.Fatal(err)
				}
				defer db.Close()
			} else {
				db = NewDBWithPartitions(4)
			}
			col, err := db.CollectionWithShardKey("alarms", "deviceMac")
			if err != nil {
				b.Fatal(err)
			}
			batches := make([][]Doc, 64)
			for i := range batches {
				batches[i] = mkBatch(i * batchSize)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				col.InsertMany(batches[i%len(batches)])
			}
			b.StopTimer()
			b.ReportMetric(float64(batchSize)*float64(b.N)/b.Elapsed().Seconds(), "docs/s")
		})
	}
}
