package docstore

import (
	"encoding/json"
	"math"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// The fast WAL frame appender (appendWALValue) must stay
// wire-equivalent to the generic encodeValue + json.Marshal path: both
// encodings, pushed through the recovery decoder, must reproduce the
// same value. Tricky cases pinned: escapes, control bytes, UTF-8,
// float extremes, int64 beyond 2^53, nanosecond timestamps, nesting.

func TestAppendWALValueMatchesGenericEncoding(t *testing.T) {
	values := []any{
		nil,
		true,
		false,
		"plain",
		"with \"quotes\" and \\backslash\\",
		"control\x00\x1f\ttab\nnewline\rreturn",
		"unicode: grüezi 日本語 🚨",
		0.0,
		math.Copysign(0, -1),
		1.5,
		-273.15,
		1e-9, // below the plain-decimal window: exponent form
		3e21, // above it
		math.MaxFloat64,
		math.SmallestNonzeroFloat64,
		float64(1<<53) + 0, // exactness boundary
		int(42),
		int(-7),
		int32(99),
		int64(1)<<55 + 17, // beyond float64 exactness
		int64(math.MinInt64),
		time.Unix(1700000000, 123456789).UTC(),
		time.Date(2026, 8, 7, 1, 2, 3, 0, time.FixedZone("X", 3600)),
		[]any{"a", 1.0, int64(5), nil},
		map[string]any{"nested": map[string]any{"deep": int64(9), "ts": time.Unix(0, 1).UTC()}},
	}
	for i, v := range values {
		doc := Doc{"v": v}

		fast, ok := appendWALValue(nil, doc)
		if !ok {
			t.Fatalf("value %d (%T %v): fast appender refused a covered type", i, v, v)
		}
		generic, err := json.Marshal(encodeValue(doc))
		if err != nil {
			t.Fatal(err)
		}
		decode := func(payload []byte) any {
			var raw map[string]any
			if err := json.Unmarshal(payload, &raw); err != nil {
				t.Fatalf("value %d (%T %v): invalid JSON %q: %v", i, v, v, payload, err)
			}
			return decodeValue(raw).(map[string]any)["v"]
		}
		fastV, genericV := decode(fast), decode(generic)
		if !reflect.DeepEqual(fastV, genericV) {
			t.Errorf("value %d (%T %v): fast decodes to %#v, generic to %#v",
				i, v, v, fastV, genericV)
		}
	}
}

// Types the fast appender does not cover must make appendDocs fall
// back to the generic frame — still one valid, replayable record.
func TestAppendDocsFallback(t *testing.T) {
	if b, ok := appendWALValue(nil, struct{ A int }{1}); ok {
		t.Fatalf("fast appender claimed a struct: %q", b)
	}
	if _, ok := appendWALValue(nil, math.NaN()); ok {
		t.Fatal("fast appender claimed NaN, which JSON cannot carry")
	}
	path := filepath.Join(t.TempDir(), "p0-1.wal")
	var walErr error
	w, err := openWALWriter(path, func(e error) { walErr = e })
	if err != nil {
		t.Fatal(err)
	}
	w.appendDocs(false, Doc{"x": float64(1), "odd": struct{ A int }{7}})
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	if walErr != nil {
		t.Fatalf("fallback append failed: %v", walErr)
	}
	ops, _, err := readWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 1 || ops[0].Op != "ins" || len(ops[0].Docs) != 1 {
		t.Fatalf("fallback frame not replayable: %+v", ops)
	}
	d := ops[0].Docs[0].(map[string]any)
	if d["x"] != float64(1) {
		t.Fatalf("fallback frame lost covered fields: %+v", d)
	}
}
