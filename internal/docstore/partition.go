package docstore

import (
	"strings"
	"sync"
	"sync/atomic"
)

// partition is one shard of a collection: its own lock, document map,
// insertion order, and index shards. All methods suffixed Locked
// require the caller to hold the appropriate mu mode. Write paths
// acquire mu through writeLock/writeUnlock (optimistic.go), which
// maintain the seqlock-style version counter the optimistic read
// paths validate their published snapshots against.
type partition struct {
	mu      sync.RWMutex
	docs    map[int64]*stored
	order   []int64 // local insertion order, for stable scans and Dump
	indexes map[string]*index

	// seq is the partition version: odd while a writer holds mu,
	// advanced to a new even value on write release. size mirrors
	// len(docs) so Len() needs no lock. Both are read without mu.
	seq  atomic.Uint64
	size atomic.Int64

	// cacheMu guards the published read snapshots (optimistic.go);
	// it is never held together with mu-as-writer, so optimistic
	// readers only ever block on the short probe, not on store writes.
	cacheMu sync.Mutex
	fv      map[string]*fvEntry
	tails   map[int]*tailEntry
	agg     map[string]*aggEntry

	// wal is the partition's current write-ahead log on a durable
	// database, nil otherwise. Mutating paths append under the write
	// lock; checkpoints swap it under the same lock (so an append goes
	// entirely to the old or the new epoch), while the group syncer
	// loads it locklessly. walEpoch is only touched under ckptMu (plus
	// the write lock for the swap itself).
	wal      atomic.Pointer[walWriter]
	walEpoch uint64
}

func newPartition() *partition {
	return &partition{
		docs:    make(map[int64]*stored),
		indexes: make(map[string]*index),
	}
}

// stored wraps a document with its copy-on-read classification: flat
// documents (no nested maps or slices — the alarm ingest fast path)
// clone with one shallow map copy, while deep documents pay the full
// recursive clone.
type stored struct {
	doc  Doc
	deep bool
}

func (s *stored) clone() Doc {
	if s.deep {
		return cloneDoc(s.doc)
	}
	out := make(Doc, len(s.doc))
	for k, v := range s.doc {
		out[k] = v
	}
	return out
}

// insertLocked stores a copy of doc under the given id, returning the
// stored document (with _id set) so durable callers can log exactly
// what was applied. Callers must not mutate the returned map. Caller
// holds the write lock.
func (p *partition) insertLocked(doc Doc, id int64) Doc {
	deep := docIsDeep(doc)
	var d Doc
	if deep {
		d = cloneDoc(doc)
	} else {
		d = make(Doc, len(doc)+1)
		for k, v := range doc {
			d[k] = v
		}
	}
	d["_id"] = id
	p.docs[id] = &stored{doc: d, deep: deep}
	p.order = append(p.order, id)
	p.size.Add(1)
	for _, idx := range p.indexes {
		idx.add(d, id)
	}
	return d
}

// candidates returns the partition-local document ids a filter needs
// to examine, using an index shard when the filter constrains an
// indexed field. Caller holds at least a read lock.
func (p *partition) candidates(filter Doc) []int64 {
	for field, cond := range filter {
		if strings.HasPrefix(field, "$") {
			continue
		}
		idx, ok := p.indexes[field]
		if !ok {
			continue
		}
		// Equality: direct literal or {"$eq": v}.
		if m, isOp := cond.(map[string]any); isOp {
			if eq, ok := m["$eq"]; ok && len(m) == 1 {
				return idx.lookupEq(eq)
			}
			if ids, ok := idx.lookupRange(m); ok {
				return ids
			}
			continue
		}
		return idx.lookupEq(cond)
	}
	return p.order
}

// forEachMatch invokes fn for every document in the partition
// matching filter, in candidate order. It is the one scan loop every
// read and write path shares. Caller holds mu in a mode appropriate
// for fn; fn may mutate or delete the current document (index lookups
// return id copies, and deletions never modify p.order mid-scan).
func (p *partition) forEachMatch(filter Doc, fn func(id int64, s *stored)) error {
	for _, id := range p.candidates(filter) {
		s := p.docs[id]
		if s == nil {
			continue
		}
		ok, err := matchDoc(s.doc, filter)
		if err != nil {
			return err
		}
		if ok {
			fn(id, s)
		}
	}
	return nil
}

// updateLocked applies set to the partition's matching documents.
// Caller holds the write lock.
func (p *partition) updateLocked(filter, set Doc) (int, error) {
	n := 0
	err := p.forEachMatch(filter, func(id int64, s *stored) {
		for _, idx := range p.indexes {
			idx.remove(s.doc, id)
		}
		for k, v := range set {
			setPath(s.doc, k, v)
			// A nested value or a dotted path (which materializes
			// intermediate maps) makes the document deep; stay deep
			// conservatively once marked.
			if valueIsNested(v) || strings.Contains(k, ".") {
				s.deep = true
			}
		}
		for _, idx := range p.indexes {
			idx.add(s.doc, id)
		}
		n++
	})
	return n, err
}

// deleteLocked removes the partition's matching documents. Caller
// holds the write lock.
func (p *partition) deleteLocked(filter Doc) (int, error) {
	n := 0
	err := p.forEachMatch(filter, func(id int64, s *stored) {
		for _, idx := range p.indexes {
			idx.remove(s.doc, id)
		}
		delete(p.docs, id)
		n++
	})
	if n > 0 {
		p.size.Add(-int64(n))
		kept := p.order[:0]
		for _, id := range p.order {
			if _, ok := p.docs[id]; ok {
				kept = append(kept, id)
			}
		}
		p.order = kept
	}
	return n, err
}
