package docstore

import (
	"math"
	"sort"
	"strconv"
	"strings"
)

// Optimistic reads.
//
// Read-mostly paths — repeated per-device column fetches (histogram
// queries), bounded tail scans (the retrainer's train-set pull), and
// collection counts (/stats) — do not need to take a partition's
// RWMutex on every call. Each partition carries a seqlock-style
// version counter: odd while a writer holds the partition lock, bumped
// to a new even value when the writer releases it. Readers capture a
// result snapshot under the read lock once, remember the version it
// was computed at, and on later calls serve a copy of the snapshot
// after validating that the version is even (no writer in progress)
// and unchanged (no write since the capture) — loading the version
// before and after the cache probe, retrying briefly on conflict, and
// falling back to the locked path when the partition is write-hot.
//
// Unlike a textbook seqlock, the optimistic read never dereferences
// the live document maps outside the lock — reading Go maps that a
// writer may be mutating is undefined behavior (and a -race report) —
// it only reads immutable published snapshots, with the version
// counter deciding their freshness. A validated hit costs two atomic
// loads and a short cache-map probe instead of a read lock plus a
// simulated store round-trip, which is what makes repeated device
// lookups and retrainer scans cheap while the write path stays
// untouched.

// writeLock acquires the partition's write lock and marks the version
// counter odd: every optimistic reader that loads the counter while a
// write is in progress backs off to the locked path.
func (p *partition) writeLock() {
	p.mu.Lock()
	p.seq.Add(1)
}

// writeUnlock bumps the version counter to the next even value and
// releases the write lock, invalidating every snapshot captured at an
// earlier version.
func (p *partition) writeUnlock() {
	p.seq.Add(1)
	p.mu.Unlock()
}

// fvCacheBound caps the per-partition field-values cache; at the
// bound, an arbitrary entry is evicted (the working set of repeating
// device queries is tiny compared to the bound).
const fvCacheBound = 128

// tailCacheBound caps the per-partition tail-snapshot cache (keyed by
// requested length; consumers use a fixed window, so one entry is the
// common case).
const tailCacheBound = 4

// fvEntry is one published FieldValues snapshot: the values of a
// filter+field query captured at an even version. The vals slice and
// its elements are immutable once published; readers serve clones.
type fvEntry struct {
	seq  uint64
	vals []any
}

// tailEntry is one published Tail snapshot for a given length bound.
type tailEntry struct {
	seq  uint64
	tail []match
}

// cacheKey canonicalizes a filter + projected field into a cache key.
// Only filters whose every condition is a scalar equality or a single
// $eq/$gt/$gte/$lt/$lte bound are cacheable; anything else reports
// false and takes the locked path.
func cacheKey(filter Doc, field string) (string, bool) {
	names := make([]string, 0, len(filter))
	for f := range filter {
		if strings.HasPrefix(f, "$") {
			return "", false
		}
		names = append(names, f)
	}
	sort.Strings(names)
	var sb strings.Builder
	sb.WriteString(field)
	for _, f := range names {
		op, v := "$eq", filter[f]
		if m, isOp := v.(map[string]any); isOp {
			if len(m) != 1 {
				return "", false
			}
			for o, arg := range m {
				op, v = o, arg
			}
			switch op {
			case "$eq", "$gt", "$gte", "$lt", "$lte":
			default:
				return "", false
			}
		}
		k, ok := keyFor(v)
		if !ok {
			return "", false
		}
		sb.WriteByte(0)
		sb.WriteString(f)
		sb.WriteByte(1)
		sb.WriteString(op)
		sb.WriteByte(1)
		sb.WriteByte(byte('0' + k.rank))
		if k.rank == 3 {
			sb.WriteString(k.str)
		} else {
			sb.Write(strconv.AppendUint(nil, math.Float64bits(k.num), 16))
		}
	}
	return sb.String(), true
}

// cachedFieldValues attempts an optimistic read of a published
// field-values snapshot: version load, cache probe, version
// revalidation, with one retry on conflict. A hit returns a fresh
// copy of the snapshot.
func (p *partition) cachedFieldValues(key string) ([]any, bool) {
	for attempt := 0; attempt < 2; attempt++ {
		v1 := p.seq.Load()
		if v1&1 != 0 {
			continue // writer in progress: retry, then locked path
		}
		p.cacheMu.Lock()
		e := p.fv[key]
		p.cacheMu.Unlock()
		if e == nil || e.seq != v1 {
			return nil, false // no snapshot at this version: capture one
		}
		if p.seq.Load() != v1 {
			continue // a write raced the probe: the snapshot may be stale
		}
		return cloneValues(e.vals), true
	}
	return nil, false
}

// storeFieldValues publishes a snapshot captured at version seq.
// Caller must have read seq while holding p.mu (any mode), so it is
// even and the snapshot is consistent with it.
func (p *partition) storeFieldValues(key string, seq uint64, vals []any) {
	p.cacheMu.Lock()
	if p.fv == nil {
		p.fv = make(map[string]*fvEntry)
	}
	if len(p.fv) >= fvCacheBound {
		for k := range p.fv {
			delete(p.fv, k)
			break
		}
	}
	p.fv[key] = &fvEntry{seq: seq, vals: vals}
	p.cacheMu.Unlock()
}

// cachedTail is the optimistic read of a published tail snapshot.
func (p *partition) cachedTail(n int) ([]match, bool) {
	for attempt := 0; attempt < 2; attempt++ {
		v1 := p.seq.Load()
		if v1&1 != 0 {
			continue
		}
		p.cacheMu.Lock()
		e := p.tails[n]
		p.cacheMu.Unlock()
		if e == nil || e.seq != v1 {
			return nil, false
		}
		if p.seq.Load() != v1 {
			continue
		}
		return e.tail, true
	}
	return nil, false
}

// storeTail publishes a tail snapshot captured at version seq.
func (p *partition) storeTail(n int, seq uint64, tail []match) {
	p.cacheMu.Lock()
	if p.tails == nil {
		p.tails = make(map[int]*tailEntry)
	}
	if len(p.tails) >= tailCacheBound {
		for k := range p.tails {
			delete(p.tails, k)
			break
		}
	}
	p.tails[n] = &tailEntry{seq: seq, tail: tail}
	p.cacheMu.Unlock()
}

// cloneValues deep-copies a value slice (scalars copy by assignment).
func cloneValues(vals []any) []any {
	if len(vals) == 0 {
		return nil
	}
	out := make([]any, len(vals))
	for i, v := range vals {
		out[i] = cloneValue(v)
	}
	return out
}

// FieldValuesMulti answers many FieldValues queries in one store
// round-trip: result i holds the values of field across the documents
// matching filters[i], each grouped by partition exactly as
// FieldValues would return them. Filters pinned to one partition by a
// shard-key equality only visit that partition; the batch acquires
// each touched partition's read lock (and pays its simulated
// round-trip) once, fanning out concurrently under a simulated RTT —
// so a batch of N single-device queries costs one concurrent sweep
// instead of N serialized round-trips. This is the in-store pushdown
// behind the pipeline's batched per-device histograms.
func (c *Collection) FieldValuesMulti(filters []Doc, field string) ([][]any, error) {
	out := make([][]any, len(filters))
	if len(filters) == 0 {
		return out, nil
	}
	// Group filter indices by the partition that serves them;
	// unpruneable filters visit every partition.
	byPart := make([][]int, len(c.parts))
	var everywhere []int
	for i, f := range filters {
		if pi, ok := c.pruneTo(f); ok {
			byPart[pi] = append(byPart[pi], i)
		} else {
			everywhere = append(everywhere, i)
		}
	}
	type task struct {
		p    *partition
		idxs []int
	}
	var tasks []task
	for pi, p := range c.parts {
		idxs := byPart[pi]
		if len(everywhere) > 0 {
			idxs = append(append(make([]int, 0, len(idxs)+len(everywhere)), idxs...), everywhere...)
		}
		if len(idxs) == 0 {
			continue
		}
		tasks = append(tasks, task{p: p, idxs: idxs})
	}
	parts := make([]*partition, len(tasks))
	for i, t := range tasks {
		parts[i] = t.p
	}
	results := make([][][]any, len(tasks))
	err := c.forEach(parts, func(i int, p *partition) error {
		t := tasks[i]
		p.mu.RLock()
		defer p.mu.RUnlock()
		c.simulateRTT()
		outs := make([][]any, len(t.idxs))
		for j, fi := range t.idxs {
			err := p.forEachMatch(filters[fi], func(_ int64, s *stored) {
				if v, present := lookup(s.doc, field); present {
					outs[j] = append(outs[j], cloneValue(v))
				}
			})
			if err != nil {
				return err
			}
		}
		results[i] = outs
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Stitch per-partition slices back to their filters in partition
	// order — the same grouped-by-partition order FieldValues yields.
	for i, t := range tasks {
		for j, fi := range t.idxs {
			out[fi] = append(out[fi], results[i][j]...)
		}
	}
	return out, nil
}
