package docstore

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Analytics pushdown.
//
// The streaming Aggregate path (AggregateStreaming) moves every
// matched document out of every partition — one copy-on-read clone per
// document — and runs the stage pipeline centrally. For the batch
// analytics of §4.1 (per-device alarm histograms, group-by statistics,
// top-device queries) that clone-everything-then-compute shape is the
// dominant cost: the answer is a handful of groups or buckets, yet the
// store materializes the whole matched set to produce it.
//
// This file pushes the computation into the partitions instead. The
// planner decomposes a pipeline into a per-partition PARTIAL plan plus
// a central MERGE plan:
//
//   - leading Match stages fold into the partition scan filter, so
//     non-matching documents are never cloned;
//   - Group accumulators compute as mergeable partials — count/sum as
//     sums, avg as (sum, n) pairs, min/max by pairwise compare with
//     document-id tie-breaks, first by smallest document id;
//   - Bucket histograms compute as per-partition count maps merged by
//     bucket index;
//   - SortStage+Limit compute as per-partition top-K heaps, so a
//     top-device query clones K documents per partition instead of the
//     partition's whole matched set;
//   - a bare scan prefix (optional Project / Limit) clones only the
//     projected fields of the selected documents.
//
// Partials execute with one lock acquisition and one simulated store
// round-trip per touched partition, fanning out concurrently under a
// simulated RTT exactly like FieldValuesMulti. Bounded partials
// (group/bucket/top-K) additionally publish to the partition's
// seqlock-style snapshot cache (optimistic.go): a repeated aggregation
// against an unchanged partition is served from the validated snapshot
// without the read lock or the round-trip. Stage shapes the planner
// cannot push (custom Stage implementations) fall back to
// AggregateStreaming — the streaming path stays alive as the
// equivalence oracle the test battery pins this engine against.

// PlanKind names how Aggregate executes a pipeline.
type PlanKind string

// The planner's execution shapes. Every kind except PlanStreaming
// runs per-partition partials merged centrally.
const (
	// PlanScan is a filtered scan with an optional pushed Project and
	// Limit: partitions return (id, doc) pairs merged by insertion id.
	PlanScan PlanKind = "scan"
	// PlanGroup pushes Group accumulators down as mergeable partials.
	PlanGroup PlanKind = "group"
	// PlanBucket pushes Bucket down as per-partition count maps.
	PlanBucket PlanKind = "bucket"
	// PlanTopK pushes SortStage (+ optional Limit) down as
	// per-partition top-K selections.
	PlanTopK PlanKind = "topk"
	// PlanStreaming is the fallback: Find everything, run the stage
	// pipeline centrally (AggregateStreaming).
	PlanStreaming PlanKind = "streaming"
)

// PlanInfo describes how Aggregate would execute a pipeline — the
// explain output the planner tests and docs build on.
type PlanInfo struct {
	// Kind is the partial shape pushed into the partitions
	// (PlanStreaming when nothing pushes down).
	Kind PlanKind
	// PushedStages counts pipeline stages folded into the partial plan
	// (leading Match stages, the Group/Bucket/Sort head, an absorbed
	// Limit or Project).
	PushedStages int
	// CentralStages counts stages applied centrally after the merge.
	CentralStages int
	// Cacheable reports whether the partials publish to the partition
	// snapshot caches (bounded partials with canonicalizable specs).
	Cacheable bool
}

// Explain reports the execution plan Aggregate would choose for the
// pipeline, without running it.
func (c *Collection) Explain(filter Doc, stages ...Stage) PlanInfo {
	plan, ok, err := planAggregate(filter, stages)
	if !ok || err != nil {
		return PlanInfo{Kind: PlanStreaming, CentralStages: len(stages)}
	}
	_, cacheable := plan.signature()
	return PlanInfo{
		Kind:          plan.kind,
		PushedStages:  plan.pushed,
		CentralStages: len(plan.tail),
		Cacheable:     cacheable,
	}
}

// aggPlan is one planned pipeline: the partition-local partial shape
// plus the central tail.
type aggPlan struct {
	scanFilter Doc      // base filter ∧ folded leading Match filters
	kind       PlanKind // scan | group | bucket | topk
	group      *Group
	bucket     *Bucket
	sortField  string
	sortDesc   bool
	limit      int // top-K bound / scan limit; -1 = unbounded
	project    *Project
	tail       []Stage // stages applied centrally after the merge
	pushed     int     // pipeline stages folded into the partial plan
}

// planAggregate decomposes a pipeline. ok=false means the shape is
// not pushable (fall back to streaming); a non-nil error reproduces
// the upfront validation error the streaming stage would raise.
func planAggregate(filter Doc, stages []Stage) (*aggPlan, bool, error) {
	plan := &aggPlan{scanFilter: filter, limit: -1}
	i := 0
	// Fold leading Match stages into the scan filter: matchDoc's $and
	// evaluates sub-filters in order with short-circuiting, so the
	// folded scan errors on exactly the documents the staged Match
	// evaluation would have errored on.
	var folded []Doc
	if len(filter) > 0 {
		folded = append(folded, filter)
	}
	for ; i < len(stages); i++ {
		m, isMatch := stages[i].(Match)
		if !isMatch {
			break
		}
		if len(m.Filter) > 0 {
			folded = append(folded, m.Filter)
		}
		plan.pushed++
	}
	switch len(folded) {
	case 0:
		plan.scanFilter = nil
	case 1:
		plan.scanFilter = folded[0]
	default:
		subs := make([]any, len(folded))
		for j, f := range folded {
			subs[j] = map[string]any(f)
		}
		plan.scanFilter = Doc{"$and": subs}
	}

	if i == len(stages) {
		plan.kind = PlanScan
		return plan, true, nil
	}
	switch head := stages[i].(type) {
	case Group:
		if err := head.validate(); err != nil {
			return nil, false, err
		}
		g := head
		plan.kind = PlanGroup
		plan.group = &g
		plan.pushed++
		plan.tail = stages[i+1:]
		return plan, true, nil
	case Bucket:
		if head.Width <= 0 {
			return nil, false, fmt.Errorf("%w: bucket width must be positive", ErrBadFilter)
		}
		b := head
		plan.kind = PlanBucket
		plan.bucket = &b
		plan.pushed++
		plan.tail = stages[i+1:]
		return plan, true, nil
	case SortStage:
		plan.kind = PlanTopK
		plan.sortField, plan.sortDesc = head.Field, false
		if strings.HasPrefix(plan.sortField, "-") {
			plan.sortField, plan.sortDesc = plan.sortField[1:], true
		}
		plan.pushed++
		i++
		if i < len(stages) {
			if l, isLimit := stages[i].(Limit); isLimit {
				if l.N < 0 {
					return nil, false, fmt.Errorf("%w: limit must be non-negative, got %d", ErrBadFilter, l.N)
				}
				plan.limit = l.N
				plan.pushed++
				i++
			}
		}
		plan.tail = stages[i:]
		return plan, true, nil
	case Limit, Project:
		plan.kind = PlanScan
		// Absorb at most one Project and one Limit, in either order:
		// both commute with the id-ordered merge (Project is per-doc
		// deterministic; the global first N by id is a subset of the
		// per-partition first N by id).
		for ; i < len(stages); i++ {
			switch s := stages[i].(type) {
			case Limit:
				if plan.limit >= 0 {
					plan.tail = stages[i:]
					return plan, true, nil
				}
				if s.N < 0 {
					return nil, false, fmt.Errorf("%w: limit must be non-negative, got %d", ErrBadFilter, s.N)
				}
				plan.limit = s.N
				plan.pushed++
			case Project:
				if plan.project != nil {
					plan.tail = stages[i:]
					return plan, true, nil
				}
				p := s
				plan.project = &p
				plan.pushed++
			default:
				plan.tail = stages[i:]
				return plan, true, nil
			}
		}
		return plan, true, nil
	default:
		// An unknown Stage implementation heads the pipeline: nothing
		// to push. (Match cannot reach here — the folding loop consumed
		// every leading Match.)
		return nil, false, nil
	}
}

// validate checks Group's accumulator ops — the same upfront check
// Group.apply performs, shared so the pushdown path raises the
// identical error without scanning.
func (g Group) validate() error {
	for out, acc := range g.Accs {
		switch acc.Op {
		case "count", "sum", "avg", "min", "max", "first":
		default:
			return fmt.Errorf("%w: unknown accumulator %q for %s", ErrBadFilter, acc.Op, out)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Partial results

// pGroup is one group's mergeable partial state. All captured values
// (key, mins, maxs, firsts) are cloned out of the store under the
// partition lock, so a partial outlives the lock and may be published
// to the snapshot cache.
type pGroup struct {
	key                     []any
	minID                   int64 // smallest doc id of the group in this partition
	count                   int
	sums                    map[string]float64
	seen                    map[string]int
	mins                    map[string]any
	minID2, maxID2, firstID map[string]int64 // id tie-breaks per out field
	maxs                    map[string]any
	firsts                  map[string]any
}

// aggPartial is one partition's contribution to a pushed aggregation.
// Exactly one of the per-kind fields is populated. A partial is
// immutable once built: the merge step never mutates it, so the same
// partial can be published to the snapshot cache and served again.
type aggPartial struct {
	groups  map[string]*pGroup
	buckets map[int]int
	top     []match // topk: sorted by (sort key, id), clipped to K
	scan    []match // scan: sorted by id, clipped to the scan limit
	// matched records whether the scan saw any matching doc before the
	// limit clip — the merge needs it to reproduce the oracle's
	// nil-versus-empty-slice distinction (Find returns nil on zero
	// matches; Limit over a non-empty match set returns a non-nil
	// empty slice).
	matched bool
}

// computePartial evaluates the plan's partial over one partition.
// Caller holds at least the partition read lock.
func computePartial(p *partition, plan *aggPlan) (*aggPartial, error) {
	switch plan.kind {
	case PlanGroup:
		return groupPartial(p, plan)
	case PlanBucket:
		return bucketPartial(p, plan)
	case PlanTopK:
		return topkPartial(p, plan)
	default:
		return scanPartial(p, plan)
	}
}

func groupPartial(p *partition, plan *aggPlan) (*aggPartial, error) {
	g := plan.group
	groups := make(map[string]*pGroup)
	var sb strings.Builder
	err := p.forEachMatch(plan.scanFilter, func(id int64, s *stored) {
		key := make([]any, len(g.By))
		sb.Reset()
		for i, f := range g.By {
			v, _ := lookup(s.doc, f)
			key[i] = v
			appendGroupKey(&sb, v)
		}
		ks := sb.String()
		st, ok := groups[ks]
		if !ok {
			for i := range key {
				key[i] = cloneValue(key[i])
			}
			st = &pGroup{
				key:     key,
				minID:   id,
				sums:    make(map[string]float64),
				seen:    make(map[string]int),
				mins:    make(map[string]any),
				maxs:    make(map[string]any),
				firsts:  make(map[string]any),
				minID2:  make(map[string]int64),
				maxID2:  make(map[string]int64),
				firstID: make(map[string]int64),
			}
			groups[ks] = st
		} else if id < st.minID {
			// The partition scan is in arrival order, which concurrent
			// batch inserts can leave non-monotonic in id; the group's
			// identity (key values) belongs to its smallest doc id, as
			// the id-ordered streaming path would have seen it.
			st.minID = id
			for i, f := range g.By {
				v, _ := lookup(s.doc, f)
				st.key[i] = cloneValue(v)
			}
		}
		st.count++
		for out, acc := range g.Accs {
			if acc.Op == "count" {
				continue
			}
			v, ok := lookup(s.doc, acc.Field)
			if !ok {
				continue
			}
			switch acc.Op {
			case "sum", "avg":
				st.sums[out] += toFloat(v)
				st.seen[out]++
			case "min":
				if cur, ok := st.mins[out]; !ok || lessByValueThenID(v, id, cur, st.minID2[out]) {
					st.mins[out] = cloneValue(v)
					st.minID2[out] = id
				}
			case "max":
				if cur, ok := st.maxs[out]; !ok || greaterByValueThenID(v, id, cur, st.maxID2[out]) {
					st.maxs[out] = cloneValue(v)
					st.maxID2[out] = id
				}
			case "first":
				if fid, ok := st.firstID[out]; !ok || id < fid {
					st.firsts[out] = cloneValue(v)
					st.firstID[out] = id
				}
			}
		}
	})
	if err != nil {
		return nil, err
	}
	return &aggPartial{groups: groups}, nil
}

// lessByValueThenID reproduces the id-ordered streaming scan's "min"
// choice between two candidates from arbitrary scan positions: the
// smaller value wins, and among compare-equal values the smaller doc
// id wins (the streaming scan keeps the first occurrence).
func lessByValueThenID(v any, id int64, cur any, curID int64) bool {
	c := compareValues(v, cur)
	return c < 0 || (c == 0 && id < curID)
}

func greaterByValueThenID(v any, id int64, cur any, curID int64) bool {
	c := compareValues(v, cur)
	return c > 0 || (c == 0 && id < curID)
}

// appendGroupKey appends a group-key component in exactly the
// representation the streaming Group stage uses (fmt's %v verb,
// NUL-terminated) — grouping equivalence classes must match the oracle
// bit for bit — but via allocation-free fast paths for the document
// scalar types, which is a large share of the pushdown win on grouped
// scans.
func appendGroupKey(sb *strings.Builder, v any) {
	switch t := v.(type) {
	case nil:
		sb.WriteString("<nil>")
	case string:
		sb.WriteString(t)
	case bool:
		if t {
			sb.WriteString("true")
		} else {
			sb.WriteString("false")
		}
	case int:
		var buf [20]byte
		sb.Write(strconv.AppendInt(buf[:0], int64(t), 10))
	case int32:
		var buf [20]byte
		sb.Write(strconv.AppendInt(buf[:0], int64(t), 10))
	case int64:
		var buf [20]byte
		sb.Write(strconv.AppendInt(buf[:0], t, 10))
	case float64:
		var buf [32]byte
		sb.Write(appendFloatV(buf[:0], t))
	case float32:
		var buf [32]byte
		sb.Write(strconv.AppendFloat(buf[:0], float64(t), 'g', -1, 32))
	default:
		fmt.Fprintf(sb, "%v", v)
	}
	sb.WriteByte(0)
}

// appendFloatV formats a float64 as fmt's %v does: shortest 'g' form,
// except that fmt pads the exponent to at least two digits.
func appendFloatV(dst []byte, f float64) []byte {
	out := strconv.AppendFloat(dst, f, 'g', -1, 64)
	// fmt prints %v exponents with at least two digits (1e+06 style is
	// strconv's too); strconv already matches fmt here, so no fixup is
	// needed — kept as a seam should the formats ever diverge.
	return out
}

func bucketPartial(p *partition, plan *aggPlan) (*aggPartial, error) {
	b := plan.bucket
	counts := make(map[int]int)
	err := p.forEachMatch(plan.scanFilter, func(_ int64, s *stored) {
		v, ok := lookup(s.doc, b.Field)
		if !ok || rank(v) != 2 {
			return
		}
		counts[int((toFloat(v)-b.Origin)/b.Width)]++
	})
	if err != nil {
		return nil, err
	}
	return &aggPartial{buckets: counts}, nil
}

// topkElem is a top-K candidate held during the in-lock selection:
// the document id, its sort-key value, and the stored doc (cloned only
// if it survives the selection).
type topkElem struct {
	id  int64
	key any
	s   *stored
}

// topkWorse reports whether a ranks strictly after b in the result
// order (sort key, descending when desc, ties broken by ascending id —
// the order a stable central sort over the id-ordered stream yields).
func topkWorse(a, b topkElem, desc bool) bool {
	c := compareValues(a.key, b.key)
	if c != 0 {
		if desc {
			return c < 0
		}
		return c > 0
	}
	return a.id > b.id
}

func topkPartial(p *partition, plan *aggPlan) (*aggPartial, error) {
	k := plan.limit
	var heap []topkElem // max-heap by topkWorse: root is the worst kept
	var all []topkElem
	bounded := k >= 0
	err := p.forEachMatch(plan.scanFilter, func(id int64, s *stored) {
		v, _ := lookup(s.doc, plan.sortField)
		e := topkElem{id: id, key: v, s: s}
		if !bounded {
			all = append(all, e)
			return
		}
		if k == 0 {
			return
		}
		if len(heap) < k {
			heap = append(heap, e)
			siftUp(heap, len(heap)-1, plan.sortDesc)
			return
		}
		if topkWorse(heap[0], e, plan.sortDesc) {
			heap[0] = e
			siftDown(heap, 0, plan.sortDesc)
		}
	})
	if err != nil {
		return nil, err
	}
	kept := heap
	if !bounded {
		kept = all
	}
	sort.Slice(kept, func(i, j int) bool { return topkWorse(kept[j], kept[i], plan.sortDesc) })
	out := make([]match, len(kept))
	for i, e := range kept {
		out[i] = match{id: e.id, doc: e.s.clone()}
	}
	return &aggPartial{top: out}, nil
}

// siftUp/siftDown maintain the bounded top-K max-heap (ordered by
// topkWorse, so the root is the element to evict first).
func siftUp(h []topkElem, i int, desc bool) {
	for i > 0 {
		parent := (i - 1) / 2
		if !topkWorse(h[i], h[parent], desc) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func siftDown(h []topkElem, i int, desc bool) {
	n := len(h)
	for {
		worst, l, r := i, 2*i+1, 2*i+2
		if l < n && topkWorse(h[l], h[worst], desc) {
			worst = l
		}
		if r < n && topkWorse(h[r], h[worst], desc) {
			worst = r
		}
		if worst == i {
			return
		}
		h[i], h[worst] = h[worst], h[i]
		i = worst
	}
}

func scanPartial(p *partition, plan *aggPlan) (*aggPartial, error) {
	var elems []topkElem
	err := p.forEachMatch(plan.scanFilter, func(id int64, s *stored) {
		elems = append(elems, topkElem{id: id, s: s})
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(elems, func(i, j int) bool { return elems[i].id < elems[j].id })
	matched := len(elems) > 0
	if plan.limit >= 0 && len(elems) > plan.limit {
		// The global first N by id is a subset of each partition's
		// first N by id, so clipping here loses nothing.
		elems = elems[:plan.limit]
	}
	out := make([]match, len(elems))
	for i, e := range elems {
		if plan.project != nil {
			nd := make(Doc, len(plan.project.Fields))
			for _, f := range plan.project.Fields {
				if v, ok := lookup(e.s.doc, f); ok {
					setPath(nd, f, cloneValue(v))
				}
			}
			out[i] = match{id: e.id, doc: nd}
		} else {
			out[i] = match{id: e.id, doc: e.s.clone()}
		}
	}
	return &aggPartial{scan: out, matched: matched}, nil
}

// ---------------------------------------------------------------------------
// Merge

// mergePartials combines per-partition partials into the final
// pre-tail document set. Partials are read-only here: when shared is
// true (any partial may be cache-published), every value that could
// alias a partial is cloned on the way out.
func mergePartials(plan *aggPlan, partials []*aggPartial, shared bool) []Doc {
	switch plan.kind {
	case PlanGroup:
		return mergeGroupPartials(plan.group, partials, shared)
	case PlanBucket:
		return mergeBucketPartials(plan.bucket, partials)
	case PlanTopK:
		return mergeTopKPartials(plan, partials, shared)
	default:
		return mergeScanPartials(plan, partials, shared)
	}
}

func mergeGroupPartials(g *Group, partials []*aggPartial, shared bool) []Doc {
	type mGroup struct {
		key    []any
		minID  int64
		count  int
		sums   map[string]float64
		seen   map[string]int
		mins   map[string]any
		minIDs map[string]int64
		maxs   map[string]any
		maxIDs map[string]int64
		firsts map[string]any
		fIDs   map[string]int64
	}
	merged := make(map[string]*mGroup)
	var order []string
	// Partition index order keeps the float merge deterministic
	// run-to-run; with exactly-representable sums it is also equal to
	// the oracle's id-ordered accumulation.
	for _, part := range partials {
		keys := make([]string, 0, len(part.groups))
		for ks := range part.groups {
			keys = append(keys, ks)
		}
		sort.Strings(keys)
		for _, ks := range keys {
			pg := part.groups[ks]
			mg, ok := merged[ks]
			if !ok {
				mg = &mGroup{
					minID:  pg.minID,
					key:    pg.key,
					sums:   make(map[string]float64),
					seen:   make(map[string]int),
					mins:   make(map[string]any),
					minIDs: make(map[string]int64),
					maxs:   make(map[string]any),
					maxIDs: make(map[string]int64),
					firsts: make(map[string]any),
					fIDs:   make(map[string]int64),
				}
				merged[ks] = mg
				order = append(order, ks)
			} else if pg.minID < mg.minID {
				mg.minID = pg.minID
				mg.key = pg.key
			}
			mg.count += pg.count
			for out, s := range pg.sums {
				mg.sums[out] += s
			}
			for out, n := range pg.seen {
				mg.seen[out] += n
			}
			for out, v := range pg.mins {
				if cur, ok := mg.mins[out]; !ok || lessByValueThenID(v, pg.minID2[out], cur, mg.minIDs[out]) {
					mg.mins[out] = v
					mg.minIDs[out] = pg.minID2[out]
				}
			}
			for out, v := range pg.maxs {
				if cur, ok := mg.maxs[out]; !ok || greaterByValueThenID(v, pg.maxID2[out], cur, mg.maxIDs[out]) {
					mg.maxs[out] = v
					mg.maxIDs[out] = pg.maxID2[out]
				}
			}
			for out, v := range pg.firsts {
				if fid, ok := mg.fIDs[out]; !ok || pg.firstID[out] < fid {
					mg.firsts[out] = v
					mg.fIDs[out] = pg.firstID[out]
				}
			}
		}
	}
	// The streaming oracle emits groups in first-seen order over the
	// id-ordered stream — exactly ascending smallest-member id.
	sort.SliceStable(order, func(i, j int) bool { return merged[order[i]].minID < merged[order[j]].minID })
	emit := func(v any) any {
		if shared {
			return cloneValue(v)
		}
		return v
	}
	out := make([]Doc, 0, len(order))
	for _, ks := range order {
		mg := merged[ks]
		d := make(Doc)
		for i, f := range g.By {
			setPath(d, f, emit(mg.key[i]))
		}
		for name, acc := range g.Accs {
			switch acc.Op {
			case "count":
				d[name] = mg.count
			case "sum":
				d[name] = mg.sums[name]
			case "avg":
				if n := mg.seen[name]; n > 0 {
					d[name] = mg.sums[name] / float64(n)
				} else {
					d[name] = 0.0
				}
			case "min":
				d[name] = emit(mg.mins[name])
			case "max":
				d[name] = emit(mg.maxs[name])
			case "first":
				d[name] = emit(mg.firsts[name])
			}
		}
		out = append(out, d)
	}
	return out
}

func mergeBucketPartials(b *Bucket, partials []*aggPartial) []Doc {
	counts := make(map[int]int)
	for _, part := range partials {
		for idx, n := range part.buckets {
			counts[idx] += n
		}
	}
	idxs := make([]int, 0, len(counts))
	for i := range counts {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	out := make([]Doc, len(idxs))
	for i, idx := range idxs {
		out[i] = Doc{
			"bucket": b.Origin + float64(idx)*b.Width,
			"count":  counts[idx],
		}
	}
	return out
}

func mergeTopKPartials(plan *aggPlan, partials []*aggPartial, shared bool) []Doc {
	total := 0
	for _, part := range partials {
		total += len(part.top)
	}
	all := make([]topkElem, 0, total)
	for _, part := range partials {
		for _, m := range part.top {
			v, _ := lookup(m.doc, plan.sortField)
			all = append(all, topkElem{id: m.id, key: v, s: &stored{doc: m.doc, deep: true}})
		}
	}
	sort.Slice(all, func(i, j int) bool { return topkWorse(all[j], all[i], plan.sortDesc) })
	if plan.limit >= 0 && len(all) > plan.limit {
		all = all[:plan.limit]
	}
	out := make([]Doc, len(all))
	for i, e := range all {
		if shared {
			out[i] = cloneDoc(e.s.doc)
		} else {
			out[i] = e.s.doc
		}
	}
	return out
}

func mergeScanPartials(plan *aggPlan, partials []*aggPartial, shared bool) []Doc {
	results := make([][]match, len(partials))
	for i, part := range partials {
		results[i] = part.scan
	}
	all := mergeByID(results)
	if plan.limit >= 0 && len(all) > plan.limit {
		all = all[:plan.limit]
	}
	if len(all) == 0 {
		// Mirror the oracle's nil/empty distinction: Project always
		// yields a non-nil slice, Limit over a non-empty match set
		// yields a non-nil empty slice, but a plain scan with zero
		// matches yields nil (Find's contract).
		anyMatched := false
		for _, part := range partials {
			anyMatched = anyMatched || part.matched
		}
		if plan.project != nil || (plan.limit >= 0 && anyMatched) {
			return []Doc{}
		}
		return nil
	}
	out := make([]Doc, len(all))
	for i, m := range all {
		if shared {
			out[i] = cloneDoc(m.doc)
		} else {
			out[i] = m.doc
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Plan signatures (snapshot-cache keys)

// signature canonicalizes the plan into a snapshot-cache key. Only
// bounded partials cache (group, bucket, and top-K with a limit under
// topkCacheMaxK); ok=false means the partial recomputes on every call.
func (p *aggPlan) signature() (string, bool) {
	switch p.kind {
	case PlanGroup, PlanBucket:
	case PlanTopK:
		if p.limit < 0 || p.limit > topkCacheMaxK {
			return "", false
		}
	default:
		return "", false
	}
	var sb strings.Builder
	sb.WriteString(string(p.kind))
	sb.WriteByte('|')
	if !appendCanonicalValue(&sb, map[string]any(p.scanFilter)) {
		return "", false
	}
	switch p.kind {
	case PlanGroup:
		g := p.group
		sb.WriteString("|by:")
		for _, f := range g.By {
			appendLenPrefixed(&sb, f)
		}
		outs := make([]string, 0, len(g.Accs))
		for out := range g.Accs {
			outs = append(outs, out)
		}
		sort.Strings(outs)
		sb.WriteString("|accs:")
		for _, out := range outs {
			acc := g.Accs[out]
			appendLenPrefixed(&sb, out)
			appendLenPrefixed(&sb, acc.Op)
			appendLenPrefixed(&sb, acc.Field)
		}
	case PlanBucket:
		b := p.bucket
		sb.WriteString("|bucket:")
		appendLenPrefixed(&sb, b.Field)
		sb.WriteString(strconv.FormatUint(math.Float64bits(b.Origin), 16))
		sb.WriteByte(',')
		sb.WriteString(strconv.FormatUint(math.Float64bits(b.Width), 16))
	case PlanTopK:
		sb.WriteString("|topk:")
		appendLenPrefixed(&sb, p.sortField)
		if p.sortDesc {
			sb.WriteString("desc,")
		} else {
			sb.WriteString("asc,")
		}
		sb.WriteString(strconv.Itoa(p.limit))
	}
	return sb.String(), true
}

// topkCacheMaxK bounds the per-partition snapshot footprint of cached
// top-K partials. It is sized to cover the retrainer's recent-window
// scan (MaxHistory, default 50k) — the same order of per-partition
// memory the tail-snapshot cache already spends.
const topkCacheMaxK = 65536

func appendLenPrefixed(sb *strings.Builder, s string) {
	sb.WriteString(strconv.Itoa(len(s)))
	sb.WriteByte(':')
	sb.WriteString(s)
}

// appendCanonicalValue appends a collision-free canonical encoding of
// a filter value: type-tagged, length-prefixed strings, maps in sorted
// key order. Values outside the document type universe report false
// (the plan then simply does not cache).
func appendCanonicalValue(sb *strings.Builder, v any) bool {
	switch t := v.(type) {
	case nil:
		sb.WriteByte('n')
	case bool:
		if t {
			sb.WriteString("b1")
		} else {
			sb.WriteString("b0")
		}
	case int:
		sb.WriteByte('i')
		sb.WriteString(strconv.FormatInt(int64(t), 10))
	case int32:
		sb.WriteByte('i')
		sb.WriteString(strconv.FormatInt(int64(t), 10))
	case int64:
		sb.WriteByte('i')
		sb.WriteString(strconv.FormatInt(t, 10))
	case float64:
		sb.WriteByte('f')
		sb.WriteString(strconv.FormatUint(math.Float64bits(t), 16))
	case float32:
		sb.WriteByte('f')
		sb.WriteString(strconv.FormatUint(math.Float64bits(float64(t)), 16))
	case string:
		sb.WriteByte('s')
		appendLenPrefixed(sb, t)
	case time.Time:
		sb.WriteByte('t')
		sb.WriteString(strconv.FormatInt(t.UnixNano(), 10))
	case []any:
		sb.WriteByte('a')
		sb.WriteString(strconv.Itoa(len(t)))
		sb.WriteByte(':')
		for _, e := range t {
			if !appendCanonicalValue(sb, e) {
				return false
			}
		}
	case []Doc:
		sb.WriteByte('a')
		sb.WriteString(strconv.Itoa(len(t)))
		sb.WriteByte(':')
		for _, e := range t {
			if !appendCanonicalValue(sb, map[string]any(e)) {
				return false
			}
		}
	case map[string]any:
		keys := make([]string, 0, len(t))
		for k := range t {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		sb.WriteByte('m')
		sb.WriteString(strconv.Itoa(len(keys)))
		sb.WriteByte(':')
		for _, k := range keys {
			appendLenPrefixed(sb, k)
			if !appendCanonicalValue(sb, t[k]) {
				return false
			}
		}
	default:
		return false
	}
	return true
}

// ---------------------------------------------------------------------------
// Partial snapshot cache

// aggCacheBound caps the per-partition aggregation-partial cache; at
// the bound an arbitrary entry is evicted (the working set of
// repeating analytics queries — /stats, retrainer scans, histogram
// dashboards — is a handful of plan signatures).
const aggCacheBound = 32

// aggEntry is one published aggregation partial: the partition's
// contribution to a plan signature, captured at an even version. The
// partial is immutable once published; the merge step clones any value
// it hands out.
type aggEntry struct {
	seq uint64
	pr  *aggPartial
}

// cachedAggPartial attempts an optimistic read of a published partial:
// version load, cache probe, version revalidation, one retry on
// conflict — the same seqlock discipline as cachedFieldValues. A hit
// serves the partition's contribution without the read lock or the
// simulated round-trip.
func (p *partition) cachedAggPartial(sig string) (*aggPartial, bool) {
	for attempt := 0; attempt < 2; attempt++ {
		v1 := p.seq.Load()
		if v1&1 != 0 {
			continue // writer in progress: retry, then locked path
		}
		p.cacheMu.Lock()
		e := p.agg[sig]
		p.cacheMu.Unlock()
		if e == nil || e.seq != v1 {
			return nil, false // no snapshot at this version: capture one
		}
		if p.seq.Load() != v1 {
			continue // a write raced the probe: the snapshot may be stale
		}
		return e.pr, true
	}
	return nil, false
}

// storeAggPartial publishes a partial captured at version seq. Caller
// must have read seq while holding p.mu (any mode), so it is even and
// the partial is consistent with it.
func (p *partition) storeAggPartial(sig string, seq uint64, pr *aggPartial) {
	p.cacheMu.Lock()
	if p.agg == nil {
		p.agg = make(map[string]*aggEntry)
	}
	if len(p.agg) >= aggCacheBound {
		for k := range p.agg {
			delete(p.agg, k)
			break
		}
	}
	p.agg[sig] = &aggEntry{seq: seq, pr: pr}
	p.cacheMu.Unlock()
}

// ---------------------------------------------------------------------------
// Execution

// runPushdown executes a planned aggregation: per-partition partials
// (snapshot-cache reads where valid, one lock + one simulated
// round-trip otherwise, concurrent across partitions under a simulated
// RTT), a central merge, then the plan's central tail stages.
func (c *Collection) runPushdown(plan *aggPlan) ([]Doc, error) {
	parts := c.targetParts(plan.scanFilter)
	sig, cacheable := plan.signature()
	partials := make([]*aggPartial, len(parts))
	var miss []*partition
	var missIdx []int
	if cacheable {
		for i, p := range parts {
			if pr, hit := p.cachedAggPartial(sig); hit {
				partials[i] = pr
				continue
			}
			miss = append(miss, p)
			missIdx = append(missIdx, i)
		}
	} else {
		miss = parts
		missIdx = make([]int, len(parts))
		for i := range parts {
			missIdx[i] = i
		}
	}
	if len(miss) > 0 {
		err := c.forEach(miss, func(i int, p *partition) error {
			p.mu.RLock()
			defer p.mu.RUnlock()
			c.simulateRTT()
			pr, err := computePartial(p, plan)
			if err != nil {
				return err
			}
			if cacheable {
				// Holding the read lock excludes writers, so the version
				// is even and consistent with the scan just performed.
				p.storeAggPartial(sig, p.seq.Load(), pr)
			}
			partials[missIdx[i]] = pr
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	docs := mergePartials(plan, partials, cacheable)
	return applyStages(docs, plan.tail)
}

func applyStages(docs []Doc, stages []Stage) ([]Doc, error) {
	var err error
	for _, s := range stages {
		docs, err = s.apply(docs)
		if err != nil {
			return nil, err
		}
	}
	return docs, nil
}

// AggregateMulti answers many aggregations sharing one stage pipeline
// in a single store sweep: result i is exactly what
// Aggregate(filters[i], stages...) would return against the same
// store state. Filters pinned to one partition by a shard-key
// equality only visit that partition, each touched partition's lock
// (and simulated round-trip) is paid once for the whole batch, and
// partials already published to the partition snapshot caches are
// served without visiting the partition at all — so a micro-batch of
// per-device histogram aggregations costs one concurrent sweep, or
// nothing, instead of N serialized round-trips. Filters whose
// pipeline shape cannot push down fall back to the streaming path
// individually.
func (c *Collection) AggregateMulti(filters []Doc, stages ...Stage) ([][]Doc, error) {
	out := make([][]Doc, len(filters))
	if len(filters) == 0 {
		return out, nil
	}
	type fplan struct {
		plan      *aggPlan
		sig       string
		cacheable bool
		partials  []*aggPartial // one slot per target partition
		parts     []*partition
	}
	plans := make([]*fplan, len(filters))
	// missFor[p] lists the (filter, slot) pairs partition p must still
	// compute after the cache pass.
	type missRef struct {
		f    *fplan
		slot int
	}
	missFor := make(map[*partition][]missRef)
	for i, filter := range filters {
		plan, ok, err := planAggregate(filter, stages)
		if err != nil {
			return nil, err
		}
		if !ok {
			docs, err := c.AggregateStreaming(filter, stages...)
			if err != nil {
				return nil, err
			}
			out[i] = docs
			continue
		}
		fp := &fplan{plan: plan, parts: c.targetParts(plan.scanFilter)}
		fp.sig, fp.cacheable = plan.signature()
		fp.partials = make([]*aggPartial, len(fp.parts))
		plans[i] = fp
		for slot, p := range fp.parts {
			if fp.cacheable {
				if pr, hit := p.cachedAggPartial(fp.sig); hit {
					fp.partials[slot] = pr
					continue
				}
			}
			missFor[p] = append(missFor[p], missRef{f: fp, slot: slot})
		}
	}
	if len(missFor) > 0 {
		parts := make([]*partition, 0, len(missFor))
		for _, p := range c.parts {
			if _, ok := missFor[p]; ok {
				parts = append(parts, p)
			}
		}
		err := c.forEach(parts, func(_ int, p *partition) error {
			p.mu.RLock()
			defer p.mu.RUnlock()
			c.simulateRTT()
			for _, ref := range missFor[p] {
				pr, err := computePartial(p, ref.f.plan)
				if err != nil {
					return err
				}
				if ref.f.cacheable {
					p.storeAggPartial(ref.f.sig, p.seq.Load(), pr)
				}
				ref.f.partials[ref.slot] = pr
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	for i, fp := range plans {
		if fp == nil {
			continue // served by the streaming fallback above
		}
		docs, err := applyStages(mergePartials(fp.plan, fp.partials, fp.cacheable), fp.plan.tail)
		if err != nil {
			return nil, err
		}
		out[i] = docs
	}
	return out, nil
}
