package docstore

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"
)

// Durability.
//
// A database opened with OpenDB persists every collection under its
// data directory and recovers it on the next Open — the role the WAL
// + checkpoint pair plays in any real document store, so the alarm
// history, operator feedback and retrainer holdouts survive a crash
// instead of living only in process memory.
//
// Layout under the data directory:
//
//	<dir>/LOCK                       flock guard against double-Open
//	<dir>/<collection>/meta.json     shard key, partition count, indexes, retention
//	<dir>/<collection>/p<P>-<E>.wal  partition P's write-ahead log for epoch E
//	<dir>/<collection>/p<P>-<E>.snap partition P's snapshot at epoch E
//
// Mutations append CRC-framed records to the owning partition's
// current WAL epoch (wal.go). Checkpoint advances a partition to the
// next epoch: the live WAL is rotated out, the partition state is
// captured under its write lock, and the snapshot is staged to a .tmp
// file, fsynced and renamed before every older epoch's files are
// deleted — so at every instant the directory holds a recoverable
// history, whatever step a crash lands on:
//
//   - crash before the snapshot rename: recovery loads the previous
//     epoch's snapshot and replays both the old and the new WAL;
//   - crash after the rename but before the old files are removed
//     (a snapshot newer than a WAL): the stale epoch's files are
//     deleted during recovery, never replayed over the newer state;
//   - a torn WAL tail or a stale .tmp artifact is truncated or
//     removed, exactly like broker segment recovery.
//
// Retention (Collection.SetRetention) prunes expired documents at
// checkpoint time through the ordinary logged Delete path, so the
// bound holds across crashes too.

// Durability errors.
var (
	// ErrLocked is returned by OpenDB when another live process (or
	// another open DB in this process) holds the data directory.
	ErrLocked = errors.New("docstore: data directory locked by another open database")
	// ErrNotDurable is returned by durability-only operations invoked
	// on a memory-only database.
	ErrNotDurable = errors.New("docstore: not a durable database")
)

// Default durability cadences; see DurableOptions.
const (
	// DefaultWALSyncInterval is the group-fsync cadence when
	// DurableOptions.SyncInterval is zero: acknowledged writes are
	// flushed to the OS immediately and fsynced within this window.
	DefaultWALSyncInterval = 5 * time.Millisecond
	// DefaultCheckpointInterval is the snapshot + WAL-truncation
	// cadence when DurableOptions.CheckpointInterval is zero.
	DefaultCheckpointInterval = 30 * time.Second
)

// DurableOptions configures OpenDB. The zero value selects the
// defaults: one partition per CPU, a DefaultWALSyncInterval group
// fsync, and a DefaultCheckpointInterval background checkpoint.
type DurableOptions struct {
	// Partitions is the partition count new collections receive
	// (recovered collections keep the count they were created with);
	// <= 0 selects the default.
	Partitions int
	// SyncInterval is the WAL group-fsync cadence: every append is
	// flushed to the operating system immediately (surviving a
	// process kill), and a background syncer fsyncs dirty logs on
	// this interval (bounding what a machine crash can lose). Zero
	// selects DefaultWALSyncInterval; negative fsyncs on every
	// append, making each write durable before it is acknowledged.
	SyncInterval time.Duration
	// CheckpointInterval is the automatic snapshot + WAL-truncation
	// cadence (also when retention pruning runs). Zero selects
	// DefaultCheckpointInterval; negative disables the background
	// checkpointer, leaving Checkpoint to the caller.
	CheckpointInterval time.Duration
}

// durableDB is the durable half of a DB: the data directory, its
// advisory lock, the group syncer and checkpointer, and the sticky
// first error of the errorless write path.
type durableDB struct {
	dir             string
	lockFile        *os.File
	syncInterval    time.Duration // <= 0: fsync on every append
	checkpointEvery time.Duration // <= 0: manual checkpoints only

	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
	closeErr  error

	// ckptMu serializes checkpoints (and the epoch counters they
	// advance).
	ckptMu sync.Mutex

	errMu sync.Mutex
	err   error // first WAL/snapshot failure; Sync/Checkpoint/Close surface it
}

func (d *durableDB) noteErr(err error) {
	if err == nil {
		return
	}
	d.errMu.Lock()
	if d.err == nil {
		d.err = err
	}
	d.errMu.Unlock()
}

func (d *durableDB) firstErr() error {
	d.errMu.Lock()
	defer d.errMu.Unlock()
	return d.err
}

// durableCollection binds a collection to its on-disk directory.
type durableCollection struct {
	db     *durableDB
	dir    string
	metaMu sync.Mutex // serializes meta.json rewrites
}

// retentionCfg is a collection's retention window: documents whose
// field holds a unix-seconds timestamp older than the window are
// pruned at checkpoint time.
type retentionCfg struct {
	field string
	age   time.Duration
}

// collectionMeta is the meta.json schema: everything a recovery needs
// to rebuild the collection's shape before replaying its documents.
type collectionMeta struct {
	ShardKey      string   `json:"shardKey,omitempty"`
	Partitions    int      `json:"partitions"`
	Indexes       []string `json:"indexes"`
	RetainField   string   `json:"retainField,omitempty"`
	RetainSeconds float64  `json:"retainSeconds,omitempty"`
}

// snapHeader is the first line of a snapshot file. Count lets
// recovery distinguish a complete snapshot from a truncated one;
// NextID preserves the collection's id watermark across deletions of
// the highest ids.
type snapHeader struct {
	Count  int   `json:"count"`
	NextID int64 `json:"nextId"`
}

// OpenDB opens (or creates) a durable database rooted at dir,
// recovering every persisted collection: the newest complete snapshot
// is loaded and the WAL tail is replayed over it, truncating torn
// frames, deleting WAL epochs older than the snapshot, and removing
// stale .tmp staging artifacts. The directory is flock-guarded, so a
// second concurrent OpenDB — from this or any other live process —
// fails with ErrLocked; the lock dies with the process, so recovery
// after a kill needs no cleanup. Call Close to release it.
func OpenDB(dir string, opts DurableOptions) (*DB, error) {
	if opts.Partitions <= 0 {
		opts.Partitions = defaultPartitions()
	}
	switch {
	case opts.SyncInterval == 0:
		opts.SyncInterval = DefaultWALSyncInterval
	case opts.SyncInterval < 0:
		opts.SyncInterval = 0 // fsync every append
	}
	switch {
	case opts.CheckpointInterval == 0:
		opts.CheckpointInterval = DefaultCheckpointInterval
	case opts.CheckpointInterval < 0:
		opts.CheckpointInterval = 0 // manual only
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("docstore: open: %w", err)
	}
	lockF, err := lockDataDir(dir)
	if err != nil {
		return nil, err
	}
	d := &durableDB{
		dir:             dir,
		lockFile:        lockF,
		syncInterval:    opts.SyncInterval,
		checkpointEvery: opts.CheckpointInterval,
		stop:            make(chan struct{}),
	}
	db := &DB{partitions: opts.Partitions, collections: make(map[string]*Collection), dur: d}
	entries, err := os.ReadDir(dir)
	if err != nil {
		_ = lockF.Close() // open failed; the lock file holds no data
		return nil, fmt.Errorf("docstore: open: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if err := db.recoverCollection(e.Name()); err != nil {
			_ = lockF.Close() // recovery failed; the lock file holds no data
			return nil, err
		}
	}
	if d.syncInterval > 0 {
		d.wg.Add(1)
		go db.syncLoop()
	}
	if d.checkpointEvery > 0 {
		d.wg.Add(1)
		go db.checkpointLoop()
	}
	return db, nil
}

// lockDataDir takes the directory's advisory lock. flock follows the
// file description, not the path: it is released automatically when
// the process dies (so a SIGKILL leaves nothing stale), and a second
// open in the same process fails just like one from another process.
func lockDataDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("docstore: open: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		_ = f.Close() // flock failed; the lock file holds no data
		return nil, fmt.Errorf("%w: %s", ErrLocked, dir)
	}
	return f, nil
}

// DataDir returns the durable data directory, or "" for a memory-only
// database.
func (db *DB) DataDir() string {
	if db.dur == nil {
		return ""
	}
	return db.dur.dir
}

// syncLoop is the group syncer: on every tick it fsyncs each WAL that
// received appends since the last tick — the batching point that lets
// a thousand acknowledged inserts share one disk flush.
func (db *DB) syncLoop() {
	defer db.dur.wg.Done()
	t := time.NewTicker(db.dur.syncInterval)
	defer t.Stop()
	for {
		select {
		case <-db.dur.stop:
			return
		case <-t.C:
			db.dur.noteErr(db.syncAll())
		}
	}
}

// checkpointLoop drives periodic snapshots + WAL truncation.
func (db *DB) checkpointLoop() {
	defer db.dur.wg.Done()
	t := time.NewTicker(db.dur.checkpointEvery)
	defer t.Stop()
	for {
		select {
		case <-db.dur.stop:
			return
		case <-t.C:
			db.dur.noteErr(db.checkpointAll())
		}
	}
}

// snapshotCollections returns a stable copy of the collection set.
func (db *DB) snapshotCollections() []*Collection {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]*Collection, 0, len(db.collections))
	for _, c := range db.collections {
		out = append(out, c)
	}
	return out
}

// Sync flushes and fsyncs every collection's write-ahead logs: when
// it returns, every previously applied mutation is durable on disk.
// It reports the database's first durability failure, if any. A
// no-op on a memory-only database.
func (db *DB) Sync() error {
	if db.dur == nil {
		return nil
	}
	if err := db.syncAll(); err != nil {
		db.dur.noteErr(err)
		return err
	}
	return db.dur.firstErr()
}

func (db *DB) syncAll() error {
	var first error
	for _, c := range db.snapshotCollections() {
		for _, p := range c.parts {
			if w := p.wal.Load(); w != nil {
				if err := w.sync(); err != nil && first == nil {
					first = err
				}
			}
		}
	}
	return first
}

// Checkpoint snapshots every collection and truncates its logs: each
// partition's state is captured and staged to disk, the WAL advances
// to a fresh epoch, and all older epochs' files are deleted — bounding
// both recovery replay time and disk growth. Retention windows
// (Collection.SetRetention) are pruned first through the ordinary
// logged delete path. Returns ErrNotDurable on a memory-only
// database. Safe to call concurrently with reads and writes; one
// checkpoint runs at a time.
func (db *DB) Checkpoint() error {
	if db.dur == nil {
		return ErrNotDurable
	}
	if err := db.checkpointAll(); err != nil {
		db.dur.noteErr(err)
		return err
	}
	return db.dur.firstErr()
}

func (db *DB) checkpointAll() error {
	db.dur.ckptMu.Lock()
	defer db.dur.ckptMu.Unlock()
	now := time.Now()
	for _, c := range db.snapshotCollections() {
		if c.dur == nil {
			continue
		}
		if _, err := c.PruneExpired(now); err != nil {
			return err
		}
		for pi := range c.parts {
			if err := c.checkpointPartition(pi); err != nil {
				return err
			}
		}
	}
	return nil
}

// Close stops the background syncer and checkpointer, makes every
// acknowledged write durable, closes the logs and releases the data
// directory lock. It returns the database's first durability failure.
// Stop all writers first: mutations after Close are still applied in
// memory but can no longer reach the log. Idempotent; a no-op on a
// memory-only database.
func (db *DB) Close() error {
	d := db.dur
	if d == nil {
		return nil
	}
	d.closeOnce.Do(func() {
		close(d.stop)
		d.wg.Wait()
		for _, c := range db.snapshotCollections() {
			for _, p := range c.parts {
				if w := p.wal.Load(); w != nil {
					if err := w.close(); err != nil {
						d.noteErr(err)
					}
				}
			}
		}
		d.lockFile.Close() // releases the flock
		d.closeErr = d.firstErr()
	})
	return d.closeErr
}

// SetRetention bounds the collection's history: documents whose field
// (a unix-seconds timestamp, like the history's "ts") is older than
// maxAge are deleted at every checkpoint, through the ordinary logged
// delete path, so a year of fleet traffic cannot grow the store
// without bound. An empty field or non-positive maxAge clears the
// window. On a durable collection the setting persists in meta.json
// and survives reopen. Callers needing an immediate prune (or running
// memory-only) can invoke PruneExpired directly.
func (c *Collection) SetRetention(field string, maxAge time.Duration) {
	if field == "" || maxAge <= 0 {
		c.ret.Store(nil)
	} else {
		c.ret.Store(&retentionCfg{field: field, age: maxAge})
	}
	if c.dur != nil {
		if err := c.dur.writeMeta(c.metaSnapshot(c.Indexes())); err != nil {
			c.dur.db.noteErr(err)
		}
	}
}

// Retention returns the collection's retention field and window, or
// ("", 0) when unbounded.
func (c *Collection) Retention() (string, time.Duration) {
	if cfg := c.ret.Load(); cfg != nil {
		return cfg.field, cfg.age
	}
	return "", 0
}

// PruneExpired deletes every document whose retention field holds a
// unix-seconds timestamp older than now minus the retention window,
// returning how many were pruned. A no-op without a configured
// window. The checkpointer calls this on its cadence; it is exported
// for memory-only stores and tests that need a deterministic prune.
func (c *Collection) PruneExpired(now time.Time) (int, error) {
	cfg := c.ret.Load()
	if cfg == nil {
		return 0, nil
	}
	cutoff := float64(now.Add(-cfg.age).UnixNano()) / 1e9
	return c.Delete(Doc{cfg.field: map[string]any{"$lt": cutoff}})
}

// metaSnapshot composes the collection's meta.json content. The index
// list is passed in so callers already holding idxMu (index DDL) and
// callers that must acquire it (SetRetention) share one body.
func (c *Collection) metaSnapshot(indexes []string) collectionMeta {
	m := collectionMeta{
		ShardKey:   c.shardKey,
		Partitions: len(c.parts),
		Indexes:    indexes,
	}
	if cfg := c.ret.Load(); cfg != nil {
		m.RetainField = cfg.field
		m.RetainSeconds = cfg.age.Seconds()
	}
	return m
}

// syncEveryAppend reports whether this collection's WAL appends must
// fsync inline (strict mode) instead of waiting for the group syncer.
func (c *Collection) syncEveryAppend() bool {
	return c.dur != nil && c.dur.db.syncInterval <= 0
}

// validCollectionName rejects names that cannot double as directory
// names.
func validCollectionName(name string) error {
	if name == "" || name == "." || name == ".." || name == "LOCK" ||
		strings.ContainsAny(name, "/\\") {
		return fmt.Errorf("docstore: invalid durable collection name %q", name)
	}
	return nil
}

// initCollection prepares the on-disk shape of a freshly created
// collection: its directory, meta.json, and one epoch-1 WAL per
// partition. Called under db.mu.
func (d *durableDB) initCollection(db *DB, c *Collection) error {
	if err := validCollectionName(c.name); err != nil {
		return err
	}
	cdir := filepath.Join(d.dir, c.name)
	if err := os.MkdirAll(cdir, 0o755); err != nil {
		return fmt.Errorf("docstore: create collection %s: %w", c.name, err)
	}
	dc := &durableCollection{db: d, dir: cdir}
	if err := dc.writeMeta(c.metaSnapshot(nil)); err != nil {
		return err
	}
	for pi, p := range c.parts {
		w, err := openWALWriter(dc.walPath(pi, 1), d.noteErr)
		if err != nil {
			return err
		}
		p.wal.Store(w)
		p.walEpoch = 1
	}
	c.dur = dc
	return nil
}

func (dc *durableCollection) walPath(pi int, epoch uint64) string {
	return filepath.Join(dc.dir, fmt.Sprintf("p%d-%d.wal", pi, epoch))
}

func (dc *durableCollection) snapPath(pi int, epoch uint64) string {
	return filepath.Join(dc.dir, fmt.Sprintf("p%d-%d.snap", pi, epoch))
}

// writeMeta stages and atomically replaces meta.json.
func (dc *durableCollection) writeMeta(m collectionMeta) error {
	dc.metaMu.Lock()
	defer dc.metaMu.Unlock()
	raw, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("docstore: meta marshal: %w", err)
	}
	return replaceFileSync(filepath.Join(dc.dir, "meta.json"), raw)
}

// replaceFileSync writes data to path atomically: staged to a .tmp,
// fsynced, renamed over the target, with the directory fsynced so the
// rename itself is durable.
//
//alarmvet:ignore meta-file installs fsync under cold-path admin mutexes (db.mu/metaMu/idxMu) by design; no partition lock is ever held here
func replaceFileSync(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("docstore: stage %s: %w", filepath.Base(path), err)
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close() // the write failure supersedes; the .tmp is abandoned
		return fmt.Errorf("docstore: stage %s: %w", filepath.Base(path), err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close() // the fsync failure supersedes; the .tmp is abandoned
		return fmt.Errorf("docstore: stage %s: %w", filepath.Base(path), err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("docstore: stage %s: %w", filepath.Base(path), err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("docstore: publish %s: %w", filepath.Base(path), err)
	}
	return fsyncDir(filepath.Dir(path))
}

//alarmvet:ignore directory-fsync primitive behind atomic installs; its callers hold only cold-path admin mutexes
func fsyncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

// checkpointPartition advances one partition to its next epoch: the
// next epoch's WAL is created up front, the swap + state capture
// happen in one short write-lock critical section (so the snapshot
// covers exactly the rotated-out epochs), and the snapshot is staged,
// fsynced and renamed before older epochs are garbage-collected. A
// crash at any point leaves a recoverable directory; see the package
// comment at the top of this file. Caller holds ckptMu.
func (c *Collection) checkpointPartition(pi int) error {
	p := c.parts[pi]
	dc := c.dur
	newEpoch := p.walEpoch + 1
	neww, err := openWALWriter(dc.walPath(pi, newEpoch), dc.db.noteErr)
	if err != nil {
		return err
	}
	p.writeLock()
	old := p.wal.Load()
	p.wal.Store(neww)
	p.walEpoch = newEpoch
	snap := make([]Doc, 0, len(p.order))
	for _, id := range p.order {
		if s, ok := p.docs[id]; ok {
			snap = append(snap, s.clone())
		}
	}
	nextID := c.nextID.Load()
	p.writeUnlock()
	// Close (flush + fsync) the rotated-out log before publishing the
	// snapshot that supersedes it: its frames must be durable in case
	// the snapshot write below crashes halfway.
	if err := old.close(); err != nil {
		return err
	}
	if err := dc.writeSnapshot(pi, newEpoch, snap, nextID); err != nil {
		return err
	}
	return dc.removeEpochsBefore(pi, newEpoch)
}

// writeSnapshot stages one partition snapshot and atomically renames
// it into place.
//
//alarmvet:ignore snapshot staging fsyncs under ckptMu on the cold checkpoint path; no partition lock is ever held here
func (dc *durableCollection) writeSnapshot(pi int, epoch uint64, docs []Doc, nextID int64) error {
	final := dc.snapPath(pi, epoch)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("docstore: stage snapshot: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	enc := json.NewEncoder(bw)
	fail := func(err error) error {
		_ = f.Close() // the encode/flush failure supersedes; the .tmp is abandoned
		return fmt.Errorf("docstore: stage snapshot: %w", err)
	}
	if err := enc.Encode(snapHeader{Count: len(docs), NextID: nextID}); err != nil {
		return fail(err)
	}
	for _, d := range docs {
		if err := enc.Encode(encodeValue(d)); err != nil {
			return fail(err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("docstore: stage snapshot: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("docstore: publish snapshot: %w", err)
	}
	return fsyncDir(dc.dir)
}

// removeEpochsBefore garbage-collects every snapshot and WAL file of
// the partition with an epoch older than keep.
func (dc *durableCollection) removeEpochsBefore(pi int, keep uint64) error {
	entries, err := os.ReadDir(dc.dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		epi, epoch, _, ok := parsePartFile(e.Name())
		if !ok || epi != pi || epoch >= keep {
			continue
		}
		if err := os.Remove(filepath.Join(dc.dir, e.Name())); err != nil {
			return fmt.Errorf("docstore: gc %s: %w", e.Name(), err)
		}
	}
	return fsyncDir(dc.dir)
}

// parsePartFile decodes a partition file name of the form
// p<partition>-<epoch>.snap or p<partition>-<epoch>.wal.
func parsePartFile(name string) (pi int, epoch uint64, isSnap bool, ok bool) {
	var body string
	switch {
	case strings.HasSuffix(name, ".snap"):
		body, isSnap = strings.TrimSuffix(name, ".snap"), true
	case strings.HasSuffix(name, ".wal"):
		body = strings.TrimSuffix(name, ".wal")
	default:
		return 0, 0, false, false
	}
	if !strings.HasPrefix(body, "p") {
		return 0, 0, false, false
	}
	dash := strings.IndexByte(body, '-')
	if dash < 2 {
		return 0, 0, false, false
	}
	pn, err1 := strconv.Atoi(body[1:dash])
	en, err2 := strconv.ParseUint(body[dash+1:], 10, 64)
	if err1 != nil || err2 != nil || pn < 0 {
		return 0, 0, false, false
	}
	return pn, en, isSnap, true
}

// recoverCollection rebuilds one persisted collection: stale .tmp
// staging artifacts are removed, the collection shape is restored
// from meta.json, and each partition loads its newest complete
// snapshot and replays every WAL epoch at or after it in order,
// truncating torn tails and deleting epochs the snapshot supersedes.
func (db *DB) recoverCollection(name string) error {
	d := db.dur
	cdir := filepath.Join(d.dir, name)
	entries, err := os.ReadDir(cdir)
	if err != nil {
		return fmt.Errorf("docstore: recover %s: %w", name, err)
	}
	for _, e := range entries {
		// A crash between a staging write and its rename leaves a .tmp
		// holding a possibly partial file that must never shadow the
		// published one; remove it so it cannot accumulate.
		if strings.HasSuffix(e.Name(), ".tmp") {
			if err := os.Remove(filepath.Join(cdir, e.Name())); err != nil {
				return fmt.Errorf("docstore: recover %s: remove stale %s: %w", name, e.Name(), err)
			}
		}
	}
	metaRaw, err := os.ReadFile(filepath.Join(cdir, "meta.json"))
	if errors.Is(err, os.ErrNotExist) {
		// A crash between the collection mkdir and its first meta.json
		// write: the directory never held data, so it is debris.
		return os.RemoveAll(cdir)
	}
	if err != nil {
		return fmt.Errorf("docstore: recover %s: %w", name, err)
	}
	var meta collectionMeta
	if err := json.Unmarshal(metaRaw, &meta); err != nil {
		return fmt.Errorf("docstore: recover %s: bad meta.json: %w", name, err)
	}
	if meta.Partitions <= 0 {
		return fmt.Errorf("docstore: recover %s: bad partition count %d", name, meta.Partitions)
	}
	c := newCollection(name, meta.ShardKey, meta.Partitions)
	c.dur = &durableCollection{db: d, dir: cdir}
	if meta.RetainField != "" && meta.RetainSeconds > 0 {
		c.ret.Store(&retentionCfg{
			field: meta.RetainField,
			age:   time.Duration(meta.RetainSeconds * float64(time.Second)),
		})
	}
	// Indexes first, over the still-empty partitions: document replay
	// then maintains them incrementally like live writes do.
	for _, f := range meta.Indexes {
		if err := c.addIndex(f); err != nil {
			return fmt.Errorf("docstore: recover %s: %w", name, err)
		}
	}
	// Partition files, grouped by partition.
	snapEpochs := make([]uint64, meta.Partitions)
	walEpochs := make([][]uint64, meta.Partitions)
	entries, err = os.ReadDir(cdir) // re-list: .tmp files are gone
	if err != nil {
		return fmt.Errorf("docstore: recover %s: %w", name, err)
	}
	for _, e := range entries {
		pi, epoch, isSnap, ok := parsePartFile(e.Name())
		if !ok || pi >= meta.Partitions {
			continue
		}
		if isSnap {
			if epoch > snapEpochs[pi] {
				snapEpochs[pi] = epoch
			}
		} else {
			walEpochs[pi] = append(walEpochs[pi], epoch)
		}
	}
	maxID := int64(-1)
	nextID := int64(0)
	for pi, p := range c.parts {
		dc := c.dur
		snapEpoch := snapEpochs[pi]
		if snapEpoch > 0 {
			hdrNext, err := c.loadSnapshot(p, dc.snapPath(pi, snapEpoch), &maxID)
			if err != nil {
				return fmt.Errorf("docstore: recover %s/p%d: %w", name, pi, err)
			}
			if hdrNext > nextID {
				nextID = hdrNext
			}
		}
		epochs := walEpochs[pi]
		sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
		cur := snapEpoch
		if cur == 0 {
			cur = 1
		}
		for _, we := range epochs {
			path := dc.walPath(pi, we)
			if we < snapEpoch {
				// Snapshot newer than this WAL: its ops are already in
				// the snapshot. Replaying would double-apply; delete.
				if err := os.Remove(path); err != nil {
					return fmt.Errorf("docstore: recover %s/p%d: gc stale wal: %w", name, pi, err)
				}
				continue
			}
			if we > cur {
				cur = we
			}
			ops, valid, err := readWAL(path)
			if err != nil {
				return fmt.Errorf("docstore: recover %s/p%d: %w", name, pi, err)
			}
			if fi, statErr := os.Stat(path); statErr == nil && fi.Size() > valid {
				if err := os.Truncate(path, valid); err != nil {
					return fmt.Errorf("docstore: recover %s/p%d: truncate torn tail: %w", name, pi, err)
				}
			}
			for _, op := range ops {
				if err := c.replayOp(p, op, &maxID); err != nil {
					return fmt.Errorf("docstore: recover %s/p%d: %w", name, pi, err)
				}
			}
		}
		w, err := openWALWriter(dc.walPath(pi, cur), d.noteErr)
		if err != nil {
			return err
		}
		p.wal.Store(w)
		p.walEpoch = cur
	}
	if maxID+1 > nextID {
		nextID = maxID + 1
	}
	c.nextID.Store(nextID)
	db.collections[name] = c
	return nil
}

// loadSnapshot replays one partition snapshot into the (empty, not
// yet shared) partition and returns the header's id watermark. A
// snapshot is staged and renamed atomically, so a short or
// undecodable one means external corruption: recovery fails loudly
// rather than silently dropping documents the WAL was truncated
// against.
func (c *Collection) loadSnapshot(p *partition, path string, maxID *int64) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	dec := json.NewDecoder(bufio.NewReaderSize(f, 1<<20))
	var hdr snapHeader
	if err := dec.Decode(&hdr); err != nil {
		return 0, fmt.Errorf("truncated snapshot %s: bad header: %w", filepath.Base(path), err)
	}
	for i := 0; i < hdr.Count; i++ {
		var raw map[string]any
		if err := dec.Decode(&raw); err != nil {
			return 0, fmt.Errorf("truncated snapshot %s: document %d of %d: %w",
				filepath.Base(path), i, hdr.Count, err)
		}
		doc, ok := decodeValue(raw).(map[string]any)
		if !ok {
			return 0, fmt.Errorf("corrupt snapshot %s: document %d is not an object", filepath.Base(path), i)
		}
		id, ok := docID(doc)
		if !ok {
			return 0, fmt.Errorf("corrupt snapshot %s: document %d lacks _id", filepath.Base(path), i)
		}
		delete(doc, "_id")
		p.insertLocked(doc, id)
		if id > *maxID {
			*maxID = id
		}
	}
	return hdr.NextID, nil
}

// replayOp applies one logged mutation to a recovering partition.
func (c *Collection) replayOp(p *partition, op walOp, maxID *int64) error {
	switch op.Op {
	case "ins":
		for _, raw := range op.Docs {
			doc, ok := decodeValue(raw).(map[string]any)
			if !ok {
				return fmt.Errorf("wal insert: document is not an object")
			}
			id, ok := docID(doc)
			if !ok {
				return fmt.Errorf("wal insert: document lacks _id")
			}
			delete(doc, "_id")
			p.insertLocked(doc, id)
			if id > *maxID {
				*maxID = id
			}
		}
		return nil
	case "upd":
		filter, ok := decodeValue(op.Filter).(map[string]any)
		if !ok {
			return fmt.Errorf("wal update: filter is not an object")
		}
		set, ok := decodeValue(op.Set).(map[string]any)
		if !ok {
			return fmt.Errorf("wal update: set is not an object")
		}
		_, err := p.updateLocked(filter, set)
		return err
	case "del":
		filter, ok := decodeValue(op.Filter).(map[string]any)
		if !ok {
			return fmt.Errorf("wal delete: filter is not an object")
		}
		_, err := p.deleteLocked(filter)
		return err
	default:
		return fmt.Errorf("unknown wal op %q", op.Op)
	}
}

// docID extracts a document id, tolerating the integer encodings a
// JSON round-trip can produce.
func docID(d Doc) (int64, bool) {
	switch v := d["_id"].(type) {
	case int64:
		return v, true
	case int:
		return int64(v), true
	case float64:
		return int64(v), true
	default:
		return 0, false
	}
}
