package docstore

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// fastOpts keeps background cadences tight and deterministic-ish for
// tests: strict per-append fsync, no background checkpointer.
func fastOpts() DurableOptions {
	return DurableOptions{Partitions: 4, SyncInterval: -1, CheckpointInterval: -1}
}

func TestDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDB(dir, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	col, err := db.CollectionWithShardKey("alarms", "deviceMac")
	if err != nil {
		t.Fatal(err)
	}
	if err := col.CreateIndex("zip"); err != nil {
		t.Fatal(err)
	}
	ts := time.Date(2026, 8, 7, 12, 0, 0, 123456789, time.UTC)
	want := Doc{
		"deviceMac": "aa:bb:cc",
		"zip":       "1011",
		"alarmId":   int64(1 << 55), // beyond float64's exact-integer range
		"verdict":   1,              // int must come back as int
		"ts":        ts,             // time must come back as time.Time
		"duration":  2.5,
		"real":      true,
		"nested":    map[string]any{"a": []any{"x", 1.0}},
	}
	id := col.Insert(want)
	for i := 0; i < 50; i++ {
		col.Insert(Doc{"deviceMac": "dd:ee:ff", "zip": "2000", "n": float64(i)})
	}
	if n, err := col.Update(Doc{"zip": "2000", "n": 3.0}, Doc{"upd": true}); err != nil || n != 1 {
		t.Fatalf("update: n=%d err=%v", n, err)
	}
	if n, err := col.Delete(Doc{"zip": "2000", "n": 4.0}); err != nil || n != 1 {
		t.Fatalf("delete: n=%d err=%v", n, err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := OpenDB(dir, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	col2 := db2.Collection("alarms")
	if col2.ShardKey() != "deviceMac" {
		t.Fatalf("shard key not recovered: %q", col2.ShardKey())
	}
	if got := col2.Indexes(); !reflect.DeepEqual(got, []string{"zip"}) {
		t.Fatalf("indexes not recovered: %v", got)
	}
	if col2.Len() != 50 { // 51 inserted, 1 deleted
		t.Fatalf("Len=%d, want 50", col2.Len())
	}
	got, err := col2.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	delete(got, "_id")
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered doc mismatch:\n got %#v\nwant %#v", got, want)
	}
	if vals, err := col2.FieldValues(Doc{"upd": true}, "n"); err != nil || len(vals) != 1 || vals[0] != 3.0 {
		t.Fatalf("update not recovered: vals=%v err=%v", vals, err)
	}
	if docs, err := col2.Find(Doc{"n": 4.0}, FindOptions{}); err != nil || len(docs) != 0 {
		t.Fatalf("deleted doc resurrected: %v err=%v", docs, err)
	}
	// The id watermark must continue past everything ever assigned.
	newID := col2.Insert(Doc{"deviceMac": "zz", "zip": "3000"})
	if newID <= id {
		t.Fatalf("id watermark regressed: new=%d old=%d", newID, id)
	}
}

func TestDurableCheckpointAndGC(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDB(dir, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	col := db.Collection("a")
	for i := 0; i < 200; i++ {
		col.Insert(Doc{"i": i})
	}
	for round := 0; round < 3; round++ {
		if err := db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		col.Insert(Doc{"extra": round})
	}
	// GC must leave exactly one snapshot and one WAL per partition.
	entries, err := os.ReadDir(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatal(err)
	}
	snaps, wals := 0, 0
	for _, e := range entries {
		_, _, isSnap, ok := parsePartFile(e.Name())
		if !ok {
			continue
		}
		if isSnap {
			snaps++
		} else {
			wals++
		}
	}
	if snaps != col.NumPartitions() || wals != col.NumPartitions() {
		t.Fatalf("epoch GC left %d snapshots, %d wals; want %d each", snaps, wals, col.NumPartitions())
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := OpenDB(dir, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if n := db2.Collection("a").Len(); n != 203 {
		t.Fatalf("Len=%d after checkpointed recovery, want 203", n)
	}
}

func TestDurableTornWALTail(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDB(dir, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	col := db.Collection("a")
	for i := 0; i < 40; i++ {
		col.Insert(Doc{"i": i})
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear every partition's WAL tail: a half-written frame header and
	// a frame whose declared length exceeds the bytes present.
	entries, _ := os.ReadDir(filepath.Join(dir, "a"))
	torn := 0
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".wal") {
			continue
		}
		f, err := os.OpenFile(filepath.Join(dir, "a", e.Name()), os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatal(err)
		}
		f.Write([]byte{0xFF, 0x00, 0x00, 0x00, 0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x02})
		f.Close()
		torn++
	}
	if torn == 0 {
		t.Fatal("no WAL files found to tear")
	}
	db2, err := OpenDB(dir, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if n := db2.Collection("a").Len(); n != 40 {
		t.Fatalf("Len=%d after torn-tail recovery, want 40", n)
	}
	// Recovery truncated the tails, so appends continue cleanly.
	db2.Collection("a").Insert(Doc{"after": true})
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
	db3, err := OpenDB(dir, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	if n := db3.Collection("a").Len(); n != 41 {
		t.Fatalf("Len=%d after post-truncation append, want 41", n)
	}
}

func TestDurableTruncatedSnapshotFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDB(dir, DurableOptions{Partitions: 1, SyncInterval: -1, CheckpointInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	col := db.Collection("a")
	for i := 0; i < 100; i++ {
		col.Insert(Doc{"i": i, "pad": strings.Repeat("x", 100)})
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(filepath.Join(dir, "a"))
	cut := false
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".snap") {
			p := filepath.Join(dir, "a", e.Name())
			fi, _ := os.Stat(p)
			if err := os.Truncate(p, fi.Size()/2); err != nil {
				t.Fatal(err)
			}
			cut = true
		}
	}
	if !cut {
		t.Fatal("no snapshot found to truncate")
	}
	// A snapshot is written atomically, so a short one means external
	// corruption: recovery must refuse rather than silently serve a
	// store missing documents the WAL was already truncated against.
	if _, err := OpenDB(dir, fastOpts()); err == nil || !strings.Contains(err.Error(), "truncated snapshot") {
		t.Fatalf("want truncated-snapshot error, got %v", err)
	}
}

func TestDurableSnapshotNewerThanWAL(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDB(dir, DurableOptions{Partitions: 1, SyncInterval: -1, CheckpointInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	db.Collection("a").Insert(Doc{"keep": true})
	if err := db.Checkpoint(); err != nil { // snapshot at epoch 2; epoch-1 WAL GC'd
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Plant a stale epoch-1 WAL, as if a crash had interrupted the GC
	// step right after the snapshot rename. Its ops are already inside
	// the snapshot's lineage; replaying it would double-apply.
	w, err := openWALWriter(filepath.Join(dir, "a", "p0-1.wal"), func(error) {})
	if err != nil {
		t.Fatal(err)
	}
	w.appendOp(walOp{Op: "ins", Docs: []any{map[string]any{"_id": map[string]any{"$i64": "0"}, "stale": true}}}, true)
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	db2, err := OpenDB(dir, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	col := db2.Collection("a")
	if n := col.Len(); n != 1 {
		t.Fatalf("Len=%d, want 1 (stale WAL must not replay)", n)
	}
	if docs, _ := col.Find(Doc{"stale": true}, FindOptions{}); len(docs) != 0 {
		t.Fatalf("stale WAL op replayed over newer snapshot: %v", docs)
	}
	if _, err := os.Stat(filepath.Join(dir, "a", "p0-1.wal")); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("stale WAL not deleted during recovery")
	}
}

func TestDurableStaleTmpArtifactsRemoved(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDB(dir, DurableOptions{Partitions: 1, SyncInterval: -1, CheckpointInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	db.Collection("a").Insert(Doc{"x": 1})
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"p0-9.snap.tmp", "meta.json.tmp"} {
		if err := os.WriteFile(filepath.Join(dir, "a", name), []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	db2, err := OpenDB(dir, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	entries, _ := os.ReadDir(filepath.Join(dir, "a"))
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("stale tmp artifact survived recovery: %s", e.Name())
		}
	}
	if n := db2.Collection("a").Len(); n != 1 {
		t.Fatalf("Len=%d, want 1", n)
	}
}

func TestDurableEmptyDataDir(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDB(dir, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if got := db.Collections(); len(got) != 0 {
		t.Fatalf("fresh dir recovered collections: %v", got)
	}
	if db.DataDir() != dir {
		t.Fatalf("DataDir=%q", db.DataDir())
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopening a dir that only ever held the LOCK file works too.
	db2, err := OpenDB(dir, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDurableDoubleOpenLocked(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDB(dir, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDB(dir, fastOpts()); !errors.Is(err, ErrLocked) {
		t.Fatalf("second open: want ErrLocked, got %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Close releases the lock.
	db2, err := OpenDB(dir, fastOpts())
	if err != nil {
		t.Fatalf("open after close: %v", err)
	}
	db2.Close()
}

func TestDurableRetention(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDB(dir, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	col := db.Collection("hist")
	col.SetRetention("ts", time.Hour)
	now := time.Now()
	old := float64(now.Add(-2*time.Hour).UnixNano()) / 1e9
	fresh := float64(now.Add(-time.Minute).UnixNano()) / 1e9
	for i := 0; i < 10; i++ {
		col.Insert(Doc{"ts": old, "age": "old"})
		col.Insert(Doc{"ts": fresh, "age": "fresh"})
	}
	if err := db.Checkpoint(); err != nil { // retention prunes at checkpoint time
		t.Fatal(err)
	}
	if n := col.Len(); n != 10 {
		t.Fatalf("Len=%d after retention checkpoint, want 10", n)
	}
	if docs, _ := col.Find(Doc{"age": "old"}, FindOptions{}); len(docs) != 0 {
		t.Fatalf("expired docs survived: %d", len(docs))
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := OpenDB(dir, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	col2 := db2.Collection("hist")
	if n := col2.Len(); n != 10 {
		t.Fatalf("Len=%d after recovery, want 10 (prune must be durable)", n)
	}
	if f, age := col2.Retention(); f != "ts" || age != time.Hour {
		t.Fatalf("retention not recovered: field=%q age=%v", f, age)
	}
}

func TestDurablePartitionCountPinnedByMeta(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDB(dir, DurableOptions{Partitions: 3, SyncInterval: -1, CheckpointInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	db.Collection("a").Insert(Doc{"x": 1})
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen with a different default: the recovered collection must
	// keep the partition count it was created with — WAL files are
	// per-partition, so the count pins the routing.
	db2, err := OpenDB(dir, DurableOptions{Partitions: 8, SyncInterval: -1, CheckpointInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if n := db2.Collection("a").NumPartitions(); n != 3 {
		t.Fatalf("NumPartitions=%d after recovery, want 3", n)
	}
	if n := db2.Collection("fresh").NumPartitions(); n != 8 {
		t.Fatalf("fresh collection NumPartitions=%d, want 8", n)
	}
}

func TestDurableConcurrentWritesWithBackgroundLoops(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDB(dir, DurableOptions{
		Partitions:         4,
		SyncInterval:       time.Millisecond,
		CheckpointInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	col, err := db.CollectionWithShardKey("alarms", "mac")
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 4, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				switch i % 3 {
				case 0:
					col.Insert(Doc{"mac": w, "i": i})
				case 1:
					col.InsertMany([]Doc{{"mac": w, "i": i}, {"mac": w, "i": i, "b": true}})
				default:
					col.Update(Doc{"mac": w, "i": i - 1}, Doc{"seen": true})
				}
			}
		}(w)
	}
	wg.Wait()
	want := col.Len()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := OpenDB(dir, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := db2.Collection("alarms").Len(); got != want {
		t.Fatalf("recovered Len=%d, want %d", got, want)
	}
}

func TestDurableDropRemovesFiles(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDB(dir, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.Collection("gone").Insert(Doc{"x": 1})
	if err := db.Drop("gone"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "gone")); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("dropped collection directory still on disk")
	}
	if err := db.Sync(); err != nil {
		t.Fatalf("sync after drop: %v", err)
	}
}

func TestDurableInvalidCollectionName(t *testing.T) {
	db, err := OpenDB(t.TempDir(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.CollectionWithShardKey("../escape", "k"); err == nil {
		t.Fatal("path-traversal collection name accepted")
	}
	if _, err := db.CollectionWithShardKey("LOCK", "k"); err == nil {
		t.Fatal("LOCK collection name accepted")
	}
}

func TestMemoryDBDurabilityNoOps(t *testing.T) {
	db := NewDB()
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); !errors.Is(err, ErrNotDurable) {
		t.Fatalf("want ErrNotDurable, got %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if db.DataDir() != "" {
		t.Fatal("memory DB has a data dir")
	}
	// Retention still prunes on demand without a checkpointer.
	col := db.Collection("h")
	col.SetRetention("ts", time.Hour)
	col.Insert(Doc{"ts": float64(time.Now().Add(-2*time.Hour).UnixNano()) / 1e9})
	if n, err := col.PruneExpired(time.Now()); err != nil || n != 1 {
		t.Fatalf("prune: n=%d err=%v", n, err)
	}
}
