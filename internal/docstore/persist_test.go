package docstore

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestDumpRestoreRoundTrip(t *testing.T) {
	src := NewDB().Collection("alarms")
	src.CreateIndex("zip")
	ts := time.Date(2016, 2, 11, 10, 30, 0, 0, time.UTC)
	seedAlarms(src, 50)
	src.Insert(Doc{"zip": "9000", "when": ts, "nested": map[string]any{"list": []any{1, "two"}}})

	var buf bytes.Buffer
	if err := src.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	dst := NewDB()
	col, err := dst.Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if col.Name() != "alarms" || col.Len() != 51 {
		t.Fatalf("restored %q with %d docs", col.Name(), col.Len())
	}
	// Indexes rebuilt.
	found := false
	for _, f := range col.Indexes() {
		if f == "zip" {
			found = true
		}
	}
	if !found {
		t.Error("zip index not restored")
	}
	// Indexed query agrees.
	a, _ := src.Count(Doc{"zip": "8003"})
	b, _ := col.Count(Doc{"zip": "8003"})
	if a != b {
		t.Errorf("counts diverge after restore: %d vs %d", a, b)
	}
	// time.Time survives as a real time value usable in range queries.
	docs, err := col.Find(Doc{"when": map[string]any{"$gte": ts.Add(-time.Hour)}})
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 1 {
		t.Fatalf("time-typed query after restore found %d docs", len(docs))
	}
	if got, ok := docs[0]["when"].(time.Time); !ok || !got.Equal(ts) {
		t.Errorf("time round trip = %v", docs[0]["when"])
	}
	if nested, ok := docs[0]["nested"].(map[string]any); !ok || len(nested["list"].([]any)) != 2 {
		t.Errorf("nested structure lost: %v", docs[0]["nested"])
	}
}

func TestRestoreValidation(t *testing.T) {
	db := NewDB()
	if _, err := db.Restore(strings.NewReader("garbage")); err == nil {
		t.Error("garbage stream accepted")
	}
	if _, err := db.Restore(strings.NewReader(`{"count":0,"indexes":[]}`)); err == nil {
		t.Error("header without collection name accepted")
	}
	// Count mismatch (header claims 2, stream has 1).
	bad := `{"collection":"x","count":2,"indexes":[]}` + "\n" + `{"a":1}` + "\n"
	if _, err := db.Restore(strings.NewReader(bad)); err == nil {
		t.Error("count mismatch accepted")
	}
}

func TestDumpExcludesDeletedAndIDs(t *testing.T) {
	src := NewDB().Collection("x")
	src.Insert(Doc{"keep": 1})
	src.Insert(Doc{"drop": 1})
	src.Delete(Doc{"drop": 1})
	var buf bytes.Buffer
	if err := src.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `"drop"`) {
		t.Error("deleted document leaked into dump")
	}
	col, err := NewDB().Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	d, err := col.FindOne(Doc{"keep": 1})
	if err != nil {
		t.Fatal(err)
	}
	if d["_id"] != int64(0) {
		t.Errorf("_id not reassigned: %v", d["_id"])
	}
}
