package docstore

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// genGroup draws a Group stage whose By fields and accumulators stay
// inside the corpus's scalar fields (no map/slice values at min/max
// fields — compareValues rejects rank-5 pairs in both paths, but a
// test crash teaches nothing).
func genGroup(r *rand.Rand) Group {
	bys := [][]string{
		{"deviceMac"},
		{"zip"},
		{"verified"},
		{"meta.sensor"},
		{"deviceMac", "verified"},
		{"zip", "meta.sensor"},
	}
	ops := []string{"count", "sum", "avg", "min", "max", "first"}
	accs := map[string]Accumulator{}
	for n := 1 + r.Intn(3); n > 0; n-- {
		op := ops[r.Intn(len(ops))]
		field := "duration"
		if op == "min" || op == "max" || op == "first" {
			// Strings and numbers both order totally; mix them in.
			field = []string{"duration", "zip", "deviceMac"}[r.Intn(3)]
		}
		accs[fmt.Sprintf("a%d_%s", n, op)] = Accumulator{Op: op, Field: field}
	}
	return Group{By: bys[r.Intn(len(bys))], Accs: accs}
}

// genSortField draws a sort key, sometimes descending, sometimes a
// field absent from every doc (ties everywhere — pins the stable
// id-order tie-break).
func genSortField(r *rand.Rand) string {
	f := []string{"duration", "deviceMac", "zip", "_id", "meta.sensor", "absent"}[r.Intn(6)]
	if r.Intn(2) == 0 {
		return "-" + f
	}
	return f
}

// genStages draws one pipeline from a grammar spanning every plannable
// head shape (group, bucket, sort+limit top-K, limit/project scans),
// central tails behind pushed heads, and fallback-forcing custom
// stages.
func genStages(r *rand.Rand) []Stage {
	var stages []Stage
	for n := r.Intn(3); n > 0; n-- {
		stages = append(stages, Match{Filter: genFilter(r)})
	}
	switch r.Intn(7) {
	case 0:
		stages = append(stages, genGroup(r))
	case 1:
		stages = append(stages, Bucket{
			Field:  "duration",
			Origin: float64(r.Intn(50)),
			Width:  float64(10 * (1 + r.Intn(8))),
		})
	case 2:
		stages = append(stages, SortStage{Field: genSortField(r)})
		if r.Intn(2) == 0 {
			stages = append(stages, Limit{N: r.Intn(40)})
		}
	case 3:
		if r.Intn(2) == 0 {
			stages = append(stages, Limit{N: r.Intn(40)})
		}
		if r.Intn(2) == 0 {
			stages = append(stages, Project{Fields: []string{"deviceMac", "duration", "meta.sensor"}})
		}
	case 4:
		// Pushed group head with a central tail over its outputs.
		g := genGroup(r)
		stages = append(stages, g)
		for name := range g.Accs {
			stages = append(stages, SortStage{Field: "-" + name}, Limit{N: 1 + r.Intn(10)})
			break
		}
	case 5:
		// Mid-pipeline Match stays central behind a pushed scan head.
		stages = append(stages, Limit{N: 5 + r.Intn(40)}, Match{Filter: genFilter(r)})
	default:
		stages = append(stages, passthrough{})
		if r.Intn(2) == 0 {
			stages = append(stages, SortStage{Field: genSortField(r)})
		}
	}
	return stages
}

// runBoth executes the same pipeline through the pushdown planner and
// the streaming oracle and fails the test on any divergence — in error
// presence or, via DeepEqual, in document content, order, and the
// nil-versus-empty distinction.
func runBoth(t *testing.T, c *Collection, filter Doc, stages []Stage, tag string) []Doc {
	t.Helper()
	got, gotErr := c.Aggregate(filter, stages...)
	want, wantErr := c.AggregateStreaming(filter, stages...)
	if (gotErr != nil) != (wantErr != nil) {
		t.Fatalf("%s: filter %v stages %v: pushdown err %v, streaming err %v",
			tag, filter, stages, gotErr, wantErr)
	}
	if gotErr != nil {
		return nil
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: filter %v stages %v:\npushdown  %v\nstreaming %v",
			tag, filter, stages, got, want)
	}
	return got
}

// TestPropertyPushdownEquivalence is the pushdown battery's core
// property: over random corpora, filters, and pipelines, Aggregate
// (pushdown where plannable) and AggregateStreaming (the executable
// specification) return byte-identical answers, across partition
// counts and with indexes present or absent.
func TestPropertyPushdownEquivalence(t *testing.T) {
	for _, parts := range []int{1, 3, 8} {
		t.Run(fmt.Sprintf("partitions=%d", parts), func(t *testing.T) {
			r := rand.New(rand.NewSource(int64(parts) * 1237))
			c, err := NewDBWithPartitions(parts).CollectionWithShardKey("alarms", "deviceMac")
			if err != nil {
				t.Fatal(err)
			}
			genCorpus(c, r, 350)
			if err := c.CreateIndex("zip"); err != nil {
				t.Fatal(err)
			}
			for round := 0; round < 120; round++ {
				var filter Doc
				if r.Intn(4) > 0 {
					filter = genFilter(r)
				}
				runBoth(t, c, filter, genStages(r), fmt.Sprintf("round %d", round))
			}
		})
	}
}

// TestPropertyPushdownPartitionInvariance: the same insert sequence
// must yield identical Aggregate answers whatever the partition count.
// A merge bug that depends on how documents land across partitions
// (torn group partials, wrong top-K clip, dropped bucket cells) shows
// up as a diff against the single-partition build.
func TestPropertyPushdownPartitionInvariance(t *testing.T) {
	build := func(parts int) *Collection {
		c, err := NewDBWithPartitions(parts).CollectionWithShardKey("alarms", "deviceMac")
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(4242))
		genCorpus(c, r, 300)
		return c
	}
	r := rand.New(rand.NewSource(99991))
	type probe struct {
		filter Doc
		stages []Stage
	}
	probes := make([]probe, 50)
	for i := range probes {
		var filter Doc
		if r.Intn(4) > 0 {
			filter = genFilter(r)
		}
		probes[i] = probe{filter: filter, stages: genStages(r)}
	}
	ref := build(1)
	for _, parts := range []int{2, 5, 8} {
		c := build(parts)
		for i, pr := range probes {
			want, wantErr := ref.Aggregate(pr.filter, pr.stages...)
			got, gotErr := c.Aggregate(pr.filter, pr.stages...)
			if (gotErr != nil) != (wantErr != nil) {
				t.Fatalf("partitions=%d probe %d: err %v vs reference err %v",
					parts, i, gotErr, wantErr)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("partitions=%d probe %d (filter %v stages %v):\ngot  %v\nwant %v",
					parts, i, pr.filter, pr.stages, got, want)
			}
		}
	}
}

// TestPropertyPushdownDurableReopen pins the battery onto the durable
// store: aggregation answers must survive a WAL checkpoint, mutations
// past the checkpoint, Close, and recovery — and the recovered store
// must again satisfy pushdown ≡ streaming.
func TestPropertyPushdownDurableReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDB(dir, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	c, err := db.CollectionWithShardKey("alarms", "deviceMac")
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(3331))
	genCorpus(c, r, 200)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Mutations past the checkpoint force WAL replay on recovery.
	genCorpus(c, r, 60)
	if _, err := c.Update(Doc{"zip": "8003"}, Doc{"verified": true}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Delete(Doc{"zip": "8007"}); err != nil {
		t.Fatal(err)
	}

	type probe struct {
		filter Doc
		stages []Stage
	}
	probes := make([]probe, 40)
	for i := range probes {
		var filter Doc
		if r.Intn(4) > 0 {
			filter = genFilter(r)
		}
		probes[i] = probe{filter: filter, stages: genStages(r)}
	}
	before := make([][]Doc, len(probes))
	for i, pr := range probes {
		before[i] = runBoth(t, c, pr.filter, pr.stages, fmt.Sprintf("pre-close probe %d", i))
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := OpenDB(dir, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	c2 := db2.Collection("alarms")
	for i, pr := range probes {
		after := runBoth(t, c2, pr.filter, pr.stages, fmt.Sprintf("post-reopen probe %d", i))
		if !reflect.DeepEqual(after, before[i]) {
			t.Fatalf("post-reopen probe %d (filter %v stages %v): answer changed across recovery:\nbefore %v\nafter  %v",
				i, pr.filter, pr.stages, before[i], after)
		}
	}
}
