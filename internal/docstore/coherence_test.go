package docstore

import (
	"fmt"
	"sync"
	"testing"
)

// Snapshot-cache coherence regressions (ISSUE 7 audit): every
// mutating path must pass through writeLock/writeUnlock so the
// partition version advances and no published cachedTail /
// cachedFieldValues snapshot can serve deleted or stale documents.
// These pin the two interleavings the audit was asked about —
// update-then-Tail and delete-then-FieldValues — plus the DDL paths
// (CreateIndex/DropIndex) that also rewrite partition state.

// TestCoherenceUpdateThenTail: prime the tail snapshot, update a
// document inside the cached window, and require the very next Tail
// to serve the updated value — an Update that failed to bump the
// partition seq would hand back the stale cached tail.
func TestCoherenceUpdateThenTail(t *testing.T) {
	c := optimisticCollection(t, 2)
	for i := 0; i < 30; i++ {
		c.Insert(Doc{"deviceMac": fmt.Sprintf("mac-%d", i%2), "ts": float64(i), "verdict": 0})
	}
	// Two identical reads: the second is served from the published
	// snapshot (same version), which is the state under test.
	c.Tail(10)
	before := c.Tail(10)
	target := before[len(before)-1]["ts"].(float64)

	n, err := c.Update(Doc{"ts": target}, Doc{"verdict": 1})
	if err != nil || n != 1 {
		t.Fatalf("update: n=%d err=%v", n, err)
	}
	after := c.Tail(10)
	for _, d := range after {
		if d["ts"].(float64) == target && d["verdict"] != 1 {
			t.Fatalf("Tail served stale pre-update doc: %v", d)
		}
	}
	// UpdateMany must invalidate identically.
	c.Tail(10)
	if _, err := c.UpdateMany([]UpdateOp{{Filter: Doc{"ts": target}, Set: Doc{"verdict": 2}}}); err != nil {
		t.Fatal(err)
	}
	for _, d := range c.Tail(10) {
		if d["ts"].(float64) == target && d["verdict"] != 2 {
			t.Fatalf("Tail served stale doc after UpdateMany: %v", d)
		}
	}
}

// TestCoherenceDeleteThenFieldValues: prime a per-device field-values
// snapshot, delete some of its documents, and require the next read
// to reflect the deletion — a Delete outside the seq discipline would
// keep serving the deleted docs' values from the cache.
func TestCoherenceDeleteThenFieldValues(t *testing.T) {
	c := optimisticCollection(t, 2)
	for i := 0; i < 40; i++ {
		c.Insert(Doc{"deviceMac": "mac-a", "ts": float64(i)})
	}
	filter := Doc{"deviceMac": "mac-a"}
	c.FieldValues(filter, "ts")
	before, err := c.FieldValues(filter, "ts") // snapshot-served
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != 40 {
		t.Fatalf("prime read: %d values", len(before))
	}
	n, err := c.Delete(Doc{"deviceMac": "mac-a", "ts": map[string]any{"$gte": 30.0}})
	if err != nil || n != 10 {
		t.Fatalf("delete: n=%d err=%v", n, err)
	}
	after, err := c.FieldValues(filter, "ts")
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != 30 {
		t.Fatalf("FieldValues served %d values after delete, want 30 (stale snapshot?)", len(after))
	}
	for _, v := range after {
		if v.(float64) >= 30.0 {
			t.Fatalf("FieldValues served deleted doc's value %v", v)
		}
	}
}

// TestCoherenceIndexDDL: CreateIndex and DropIndex rebuild partition
// state under the write lock, so they too must advance the version —
// a cached snapshot captured before the DDL must not be served after
// it at the same version number.
func TestCoherenceIndexDDL(t *testing.T) {
	c := optimisticCollection(t, 2)
	for i := 0; i < 20; i++ {
		c.Insert(Doc{"deviceMac": "mac-a", "ts": float64(i), "zip": "1011"})
	}
	filter := Doc{"deviceMac": "mac-a"}
	c.FieldValues(filter, "ts")
	seqBefore := make([]uint64, len(c.parts))
	for i, p := range c.parts {
		seqBefore[i] = p.seq.Load()
	}
	if err := c.CreateIndex("zip"); err != nil {
		t.Fatal(err)
	}
	for i, p := range c.parts {
		if p.seq.Load() == seqBefore[i] {
			t.Fatalf("partition %d version unchanged across CreateIndex", i)
		}
		seqBefore[i] = p.seq.Load()
	}
	if err := c.DropIndex("zip"); err != nil {
		t.Fatal(err)
	}
	for i, p := range c.parts {
		if p.seq.Load() == seqBefore[i] {
			t.Fatalf("partition %d version unchanged across DropIndex", i)
		}
	}
	// Reads after the DDL still observe current data.
	got, err := c.FieldValues(filter, "ts")
	if err != nil || len(got) != 20 {
		t.Fatalf("FieldValues after DDL: %d values err=%v", len(got), err)
	}
}

// TestCoherenceHammer interleaves optimistic readers with every
// mutating path under -race: any snapshot served at a version its
// partition has moved past shows up as a count that can't match the
// locked ground truth.
func TestCoherenceHammer(t *testing.T) {
	c := optimisticCollection(t, 2)
	for i := 0; i < 50; i++ {
		c.Insert(Doc{"deviceMac": "mac-a", "ts": float64(i), "live": true})
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer: churn updates and deletes on one device
		defer wg.Done()
		i := 50
		for {
			select {
			case <-stop:
				return
			default:
			}
			c.Insert(Doc{"deviceMac": "mac-a", "ts": float64(i), "live": true})
			c.Update(Doc{"ts": float64(i - 25)}, Doc{"live": false})
			c.Delete(Doc{"ts": float64(i - 40)})
			i++
		}
	}()
	filter := Doc{"deviceMac": "mac-a"}
	for r := 0; r < 2000; r++ {
		vals, err := c.FieldValues(filter, "ts")
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[float64]bool, len(vals))
		for _, v := range vals {
			ts := v.(float64)
			if seen[ts] {
				t.Fatalf("duplicate value %v served — torn snapshot", ts)
			}
			seen[ts] = true
		}
		tail := c.Tail(8)
		for j := 1; j < len(tail); j++ {
			if tail[j]["_id"].(int64) <= tail[j-1]["_id"].(int64) {
				t.Fatalf("Tail out of insertion order: %v", tail)
			}
		}
	}
	close(stop)
	wg.Wait()
}
