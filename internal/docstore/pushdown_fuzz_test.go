package docstore

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// fuzzCorpus is the fixed collection every FuzzAggregate execution
// queries. Built once: aggregations never mutate the store, and the
// fuzz engine drives executions sequentially within a process.
var fuzzCorpus = func() *Collection {
	c, err := NewDBWithPartitions(3).CollectionWithShardKey("alarms", "deviceMac")
	if err != nil {
		panic(err)
	}
	genCorpus(c, rand.New(rand.NewSource(777)), 150)
	if err := c.CreateIndex("zip"); err != nil {
		panic(err)
	}
	return c
}()

// fuzzReader draws small values from the fuzz input, yielding zeros
// once the bytes run out (so every input decodes to some pipeline).
type fuzzReader struct {
	data []byte
	pos  int
}

func (f *fuzzReader) byte() byte {
	if f.pos >= len(f.data) {
		return 0
	}
	b := f.data[f.pos]
	f.pos++
	return b
}

// decodeFilter maps one byte to a filter from the same shapes the
// property generator draws — well-formed by construction, because a
// malformed filter's error can legitimately surface from a different
// partition (and so with different text) than the oracle's sequential
// scan, and the battery compares error presence, not provenance.
func decodeFilter(f *fuzzReader) Doc {
	sel := f.byte()
	switch sel % 6 {
	case 0:
		return nil
	case 1:
		return Doc{"zip": fmt.Sprintf("%04d", 8000+int(f.byte())%12)}
	case 2:
		return Doc{"deviceMac": fmt.Sprintf("mac-%02d", int(f.byte())%24)}
	case 3:
		lo := float64(int(f.byte()) * 2)
		return Doc{"duration": map[string]any{"$gte": lo, "$lt": lo + float64(1+int(f.byte()))}}
	case 4:
		return Doc{"verified": f.byte()%2 == 0}
	default:
		return Doc{"$or": []any{
			map[string]any{"zip": fmt.Sprintf("%04d", 8000+int(f.byte())%12)},
			map[string]any{"duration": map[string]any{"$lt": float64(f.byte())}},
		}}
	}
}

// decodeStages maps the remaining bytes to a pipeline. Invalid shapes
// whose rejection is doc-independent — negative limits, zero bucket
// widths, unknown accumulator ops — are reachable on purpose: both
// executors must reject them, and identically often (error presence is
// part of the differential). Map-valued fields stay out of sort and
// accumulator positions, matching the documented pushdown contract.
func decodeStages(f *fuzzReader) []Stage {
	sortFields := []string{"duration", "deviceMac", "zip", "_id", "meta.sensor", "absent"}
	accFields := []string{"duration", "zip", "deviceMac"}
	accOps := []string{"count", "sum", "avg", "min", "max", "first", "median"}
	var stages []Stage
	n := 1 + int(f.byte())%4
	for i := 0; i < n; i++ {
		switch f.byte() % 8 {
		case 0:
			stages = append(stages, Match{Filter: decodeFilter(f)})
		case 1:
			g := Group{By: []string{[]string{"deviceMac", "zip", "verified", "meta.sensor"}[f.byte()%4]},
				Accs: map[string]Accumulator{}}
			for k := 1 + int(f.byte())%2; k > 0; k-- {
				g.Accs[fmt.Sprintf("a%d", k)] = Accumulator{
					Op:    accOps[f.byte()%7],
					Field: accFields[f.byte()%3],
				}
			}
			stages = append(stages, g)
		case 2:
			stages = append(stages, Bucket{
				Field:  "duration",
				Origin: float64(int8(f.byte())),
				Width:  float64(int8(f.byte())), // may be <= 0: ErrBadFilter
			})
		case 3:
			field := sortFields[f.byte()%6]
			if f.byte()%2 == 0 {
				field = "-" + field
			}
			stages = append(stages, SortStage{Field: field})
		case 4:
			stages = append(stages, Limit{N: int(int8(f.byte()))}) // may be negative
		case 5:
			stages = append(stages, Project{Fields: []string{"deviceMac", "duration"}})
		case 6:
			stages = append(stages, Project{Fields: []string{"meta.sensor", "zip", "_id"}})
		default:
			stages = append(stages, passthrough{})
		}
	}
	return stages
}

// FuzzAggregate is the differential fuzz half of the pushdown battery:
// any filter+pipeline the decoder can express must behave identically
// through the pushdown planner and the streaming oracle — same error
// presence, and byte-identical documents on success. Run continuously
// by `make fuzz-smoke`.
func FuzzAggregate(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 3, 2, 1, 0, 5})
	f.Add([]byte{0, 2, 1, 1, 6, 0, 1, 2})                // group heads
	f.Add([]byte{3, 10, 4, 3, 2, 0, 4, 255})             // sort + negative limit
	f.Add([]byte{5, 1, 1, 2, 2, 0, 0})                   // zero-width bucket
	f.Add([]byte{2, 7, 3, 7, 3, 1, 4, 20})               // fallback + tail
	f.Add([]byte{4, 1, 1, 2, 1, 6, 1, 1, 0, 2, 3, 1, 4}) // mixed
	f.Fuzz(func(t *testing.T, data []byte) {
		fr := &fuzzReader{data: data}
		filter := decodeFilter(fr)
		stages := decodeStages(fr)
		got, gotErr := fuzzCorpus.Aggregate(filter, stages...)
		want, wantErr := fuzzCorpus.AggregateStreaming(filter, stages...)
		if (gotErr != nil) != (wantErr != nil) {
			t.Fatalf("filter %v stages %v: pushdown err %v, streaming err %v",
				filter, stages, gotErr, wantErr)
		}
		if gotErr == nil && !reflect.DeepEqual(got, want) {
			t.Fatalf("filter %v stages %v:\npushdown  %v\nstreaming %v",
				filter, stages, got, want)
		}
	})
}
