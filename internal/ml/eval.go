package ml

import (
	"fmt"
	"sort"
)

// ConfusionMatrix counts binary classification outcomes. "Positive"
// is class 1 (true alarm).
type ConfusionMatrix struct {
	TP, FP, TN, FN int
}

// Evaluate runs the classifier over the dataset (through the
// vectorized batch path when available) and tallies outcomes.
func Evaluate(c Classifier, d *Dataset) ConfusionMatrix {
	var cm ConfusionMatrix
	preds := make([]int, d.Len())
	PredictBatch(c, d.X, preds)
	for i, pred := range preds {
		switch {
		case pred == 1 && d.Y[i] == 1:
			cm.TP++
		case pred == 1 && d.Y[i] == 0:
			cm.FP++
		case pred == 0 && d.Y[i] == 0:
			cm.TN++
		default:
			cm.FN++
		}
	}
	return cm
}

// Total returns the number of evaluated samples.
func (cm ConfusionMatrix) Total() int { return cm.TP + cm.FP + cm.TN + cm.FN }

// Accuracy returns the fraction of correct verifications — the
// paper's headline metric (§5.3.1).
func (cm ConfusionMatrix) Accuracy() float64 {
	t := cm.Total()
	if t == 0 {
		return 0
	}
	return float64(cm.TP+cm.TN) / float64(t)
}

// Precision returns TP / (TP + FP).
func (cm ConfusionMatrix) Precision() float64 {
	if cm.TP+cm.FP == 0 {
		return 0
	}
	return float64(cm.TP) / float64(cm.TP+cm.FP)
}

// Recall returns TP / (TP + FN) — for alarm verification, the
// fraction of genuinely true alarms the system forwards. This is the
// safety-critical number behind the paper's §6 concern that "even a
// 99% verification accuracy might not be good enough".
func (cm ConfusionMatrix) Recall() float64 {
	if cm.TP+cm.FN == 0 {
		return 0
	}
	return float64(cm.TP) / float64(cm.TP+cm.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (cm ConfusionMatrix) F1() float64 {
	p, r := cm.Precision(), cm.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// String renders the matrix compactly.
func (cm ConfusionMatrix) String() string {
	return fmt.Sprintf("acc=%.4f prec=%.4f rec=%.4f f1=%.4f (tp=%d fp=%d tn=%d fn=%d)",
		cm.Accuracy(), cm.Precision(), cm.Recall(), cm.F1(), cm.TP, cm.FP, cm.TN, cm.FN)
}

// Accuracy is a convenience wrapper around Evaluate.
func Accuracy(c Classifier, d *Dataset) float64 {
	return Evaluate(c, d).Accuracy()
}

// AUC computes the area under the ROC curve from the classifier's
// P(class 1) scores — a threshold-free quality measure to accompany
// the paper's accuracy numbers.
func AUC(c Classifier, d *Dataset) float64 {
	type scored struct {
		p float64
		y int
	}
	probs := make([][2]float64, d.Len())
	ProbaBatch(c, d.X, probs)
	s := make([]scored, d.Len())
	pos, neg := 0, 0
	for i := range d.X {
		s[i] = scored{p: probs[i][1], y: d.Y[i]}
		if d.Y[i] == 1 {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return 0.5
	}
	sort.Slice(s, func(i, j int) bool { return s[i].p < s[j].p })
	// Rank-sum (Mann–Whitney) formulation with tie handling.
	ranks := make([]float64, len(s))
	for i := 0; i < len(s); {
		j := i
		for j < len(s) && s[j].p == s[i].p {
			j++
		}
		avg := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = avg
		}
		i = j
	}
	var sumPos float64
	for i, sc := range s {
		if sc.y == 1 {
			sumPos += ranks[i]
		}
	}
	return (sumPos - float64(pos)*float64(pos+1)/2) / (float64(pos) * float64(neg))
}

// Brier computes the mean squared error of the P(class 1) scores — a
// calibration measure for the confidence values operators rely on.
func Brier(c Classifier, d *Dataset) float64 {
	if d.Len() == 0 {
		return 0
	}
	probs := make([][2]float64, d.Len())
	ProbaBatch(c, d.X, probs)
	var sum float64
	for i := range d.X {
		diff := probs[i][1] - float64(d.Y[i])
		sum += diff * diff
	}
	return sum / float64(d.Len())
}
