package ml

import (
	"bytes"
	"strings"
	"testing"
)

func TestSaveLoadRoundTripAllClassifiers(t *testing.T) {
	train := linearDataset(500, 77, 0.05)
	probes := [][]float64{
		{0.5, 0.5, 0.1}, {-0.8, 0.3, 0.9}, {0.1, -0.9, 0.4},
	}
	for _, c := range classifiersUnderTest() {
		if err := c.Fit(train); err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		var buf bytes.Buffer
		if err := SaveClassifier(&buf, c); err != nil {
			t.Fatalf("%s: save: %v", c.Name(), err)
		}
		loaded, err := LoadClassifier(&buf)
		if err != nil {
			t.Fatalf("%s: load: %v", c.Name(), err)
		}
		if loaded.Name() != c.Name() {
			t.Errorf("kind changed: %s -> %s", c.Name(), loaded.Name())
		}
		for _, x := range probes {
			if got, want := loaded.Proba(x), c.Proba(x); got != want {
				t.Errorf("%s: proba changed after reload: %v vs %v", c.Name(), got, want)
			}
		}
	}
}

func TestSaveRejectsUnfitted(t *testing.T) {
	for _, c := range classifiersUnderTest() {
		var buf bytes.Buffer
		if err := SaveClassifier(&buf, c); err == nil {
			t.Errorf("%s: unfitted model saved", c.Name())
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"not json",
		`{"kind":"warp-drive","model":{}}`,
		`{"kind":"rf","model":{"trees":[[{"f":0,"t":1,"l":99,"r":99,"p":0.5}]]}}`,
		`{"kind":"dnn","model":{"sizes":[3,2],"weights":[[1,2,3]],"biases":[[0,0]]}}`,
	}
	for _, s := range cases {
		if _, err := LoadClassifier(strings.NewReader(s)); err == nil {
			t.Errorf("garbage accepted: %q", s)
		}
	}
}

func TestEncoderSaveLoad(t *testing.T) {
	e := NewSchemaEncoder([]ColumnSpec{
		{Name: "zip"}, {Name: "type"}, {Name: "risk", Numeric: true},
	})
	rows := []Row{
		{Cats: []string{"8000", "fire"}, Nums: []float64{0.5}},
		{Cats: []string{"8400", "intrusion"}, Nums: []float64{0.1}},
	}
	if err := e.Fit(rows); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEncoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Width() != e.Width() {
		t.Fatalf("width changed: %d -> %d", e.Width(), loaded.Width())
	}
	for _, row := range rows {
		a, err1 := e.Transform(row)
		b, err2 := loaded.Transform(row)
		if err1 != nil || err2 != nil {
			t.Fatalf("transform: %v %v", err1, err2)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("transform changed after reload: %v vs %v", a, b)
			}
		}
	}
	// Vocabulary order must be preserved exactly.
	an := e.FeatureNames()
	bn := loaded.FeatureNames()
	for i := range an {
		if an[i] != bn[i] {
			t.Fatalf("feature names reordered: %v vs %v", an, bn)
		}
	}
	if _, err := LoadEncoder(strings.NewReader("junk")); err == nil {
		t.Error("garbage encoder accepted")
	}
}
