package ml

import (
	"math"
	"math/rand"
	"testing"
)

// mixedDataset builds a matrix mixing one-hot-style binary features
// with dense numeric ones — the shape the alarm encoder produces.
func mixedDataset(n, w int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		row := make([]float64, w)
		for j := range row {
			if j%3 == 0 {
				row[j] = rng.Float64()
			} else if rng.Float64() < 0.2 {
				row[j] = 1
			}
		}
		x[i] = row
		if row[0]+row[1] > 0.8 {
			y[i] = 1
		}
	}
	d, _ := NewDataset(x, y, nil)
	return d
}

// TestBatchMatchesSequential is the ml-layer half of the batch
// equivalence property: for every classifier, ProbBatch must be
// bit-identical to per-row Proba and PredictBatch to per-row Predict.
func TestBatchMatchesSequential(t *testing.T) {
	train := mixedDataset(400, 24, 1)
	test := mixedDataset(333, 24, 2)
	for _, c := range classifiersUnderTest() {
		bc, ok := c.(BatchClassifier)
		if !ok {
			t.Fatalf("%s does not implement BatchClassifier", c.Name())
		}
		if err := c.Fit(train); err != nil {
			t.Fatalf("%s: fit: %v", c.Name(), err)
		}
		probs := make([][2]float64, test.Len())
		bc.ProbBatch(test.X, probs)
		preds := make([]int, test.Len())
		bc.PredictBatch(test.X, preds)
		for i, x := range test.X {
			want := c.Proba(x)
			if math.Float64bits(probs[i][0]) != math.Float64bits(want[0]) ||
				math.Float64bits(probs[i][1]) != math.Float64bits(want[1]) {
				t.Fatalf("%s: row %d: ProbBatch %v != Proba %v", c.Name(), i, probs[i], want)
			}
			if preds[i] != Predict(c, x) {
				t.Fatalf("%s: row %d: PredictBatch %d != Predict %d",
					c.Name(), i, preds[i], Predict(c, x))
			}
		}
	}
}

// TestBatchUnfittedIsNeutral mirrors the sequential unfitted contract
// on the batch path.
func TestBatchUnfittedIsNeutral(t *testing.T) {
	test := mixedDataset(7, 8, 3)
	for _, c := range classifiersUnderTest() {
		bc := c.(BatchClassifier)
		probs := make([][2]float64, test.Len())
		bc.ProbBatch(test.X, probs)
		for i := range probs {
			if probs[i] != [2]float64{0.5, 0.5} {
				t.Errorf("%s: unfitted batch row %d = %v, want neutral", c.Name(), i, probs[i])
			}
		}
	}
}

// TestProbaBatchFallback covers the helper's per-row fallback for
// classifiers without a vectorized path.
func TestProbaBatchFallback(t *testing.T) {
	c := fixedScore{}
	xs := [][]float64{{0.2}, {0.9}}
	probs := make([][2]float64, 2)
	ProbaBatch(c, xs, probs)
	preds := make([]int, 2)
	PredictBatch(c, xs, preds)
	for i, x := range xs {
		if probs[i] != c.Proba(x) {
			t.Errorf("row %d: fallback proba %v != %v", i, probs[i], c.Proba(x))
		}
		if preds[i] != Predict(c, x) {
			t.Errorf("row %d: fallback predict %d != %d", i, preds[i], Predict(c, x))
		}
	}
}

// TestBatchRaggedRows: rows wider or narrower than the trained width
// must classify identically on both paths (the DNN truncates, the
// linear models and forest bounds-check).
func TestBatchRaggedRows(t *testing.T) {
	train := mixedDataset(300, 16, 4)
	rng := rand.New(rand.NewSource(5))
	xs := make([][]float64, 50)
	for i := range xs {
		w := 8 + rng.Intn(16) // widths 8..23 around the trained 16
		row := make([]float64, w)
		for j := range row {
			row[j] = rng.Float64()
		}
		xs[i] = row
	}
	for _, c := range classifiersUnderTest() {
		if err := c.Fit(train); err != nil {
			t.Fatalf("%s: fit: %v", c.Name(), err)
		}
		probs := make([][2]float64, len(xs))
		c.(BatchClassifier).ProbBatch(xs, probs)
		for i, x := range xs {
			want := c.Proba(x)
			if math.Float64bits(probs[i][1]) != math.Float64bits(want[1]) {
				t.Fatalf("%s: ragged row %d (width %d): batch %v != sequential %v",
					c.Name(), i, len(x), probs[i], want)
			}
		}
	}
}
