package ml

import (
	"math"
	"math/rand"
	"sort"
	"sync"
)

// RandomForestConfig mirrors the paper's Table 3.
type RandomForestConfig struct {
	NumTrees int // Table 3: 50
	MaxDepth int // Table 3: 30
	// MinLeaf is the minimum samples per leaf (pre-pruning).
	MinLeaf int
	// FeatureFraction picks how many features each split considers;
	// 0 means the √(width) default.
	FeatureFraction float64
	// MaxThresholds caps candidate split thresholds per numeric
	// feature (one-hot features only ever have one).
	MaxThresholds int
	Seed          int64
	// Parallel trains trees on all cores when true.
	Parallel bool
}

// DefaultRandomForestConfig returns the paper's Table 3 parameters
// (50 trees, depth 30). The per-split feature count is not published;
// the default (√(width), floored at 48) is our grid-search result on
// the one-hot encoded alarm data, where a bare √(width) is too small
// to reliably reach informative features among the wide location
// block, while large fractions make splits needlessly expensive.
func DefaultRandomForestConfig() RandomForestConfig {
	return RandomForestConfig{
		NumTrees:      50,
		MaxDepth:      30,
		MinLeaf:       1,
		MaxThresholds: 16,
		Seed:          1,
		Parallel:      true,
	}
}

// defaultMtryFloor lifts the √(width) feature sample on wide one-hot
// matrices (see DefaultRandomForestConfig).
const defaultMtryFloor = 48

// RandomForest is a bagged ensemble of CART trees with per-split
// feature subsampling — the paper's best classifier on the Sitasys
// data (up to 92 % accuracy, Figure 10). Proba averages the leaf class
// distributions across trees.
type RandomForest struct {
	Config RandomForestConfig

	trees  []*treeNode
	fitted bool
}

// NewRandomForest creates a forest with the given config.
func NewRandomForest(cfg RandomForestConfig) *RandomForest {
	return &RandomForest{Config: cfg}
}

// Name implements Classifier.
func (m *RandomForest) Name() string { return "rf" }

// treeNode is one CART node. Leaves have prob set and feature == -1.
type treeNode struct {
	feature     int
	threshold   float64
	left, right *treeNode
	prob        float64 // P(class 1) at a leaf
}

// Fit implements Classifier.
func (m *RandomForest) Fit(d *Dataset) error {
	if d == nil || d.Len() == 0 {
		return ErrEmptyDataset
	}
	cfg := m.Config
	if cfg.NumTrees < 1 {
		cfg.NumTrees = 1
	}
	if cfg.MinLeaf < 1 {
		cfg.MinLeaf = 1
	}
	if cfg.MaxThresholds < 1 {
		cfg.MaxThresholds = 16
	}
	mtry := int(cfg.FeatureFraction * float64(d.Width()))
	if mtry <= 0 {
		mtry = int(math.Sqrt(float64(d.Width())))
		if mtry < defaultMtryFloor {
			mtry = defaultMtryFloor
		}
	}
	if mtry > d.Width() {
		mtry = d.Width()
	}
	m.trees = make([]*treeNode, cfg.NumTrees)
	seedRng := rand.New(rand.NewSource(cfg.Seed))
	seeds := make([]int64, cfg.NumTrees)
	for i := range seeds {
		seeds[i] = seedRng.Int63()
	}
	build := func(i int) {
		rng := rand.New(rand.NewSource(seeds[i]))
		// Bootstrap sample.
		idx := make([]int, d.Len())
		for j := range idx {
			idx[j] = rng.Intn(d.Len())
		}
		b := &treeBuilder{d: d, cfg: cfg, mtry: mtry, rng: rng}
		m.trees[i] = b.grow(idx, 0)
	}
	if cfg.Parallel {
		var wg sync.WaitGroup
		for i := range m.trees {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				build(i)
			}(i)
		}
		wg.Wait()
	} else {
		for i := range m.trees {
			build(i)
		}
	}
	m.fitted = true
	return nil
}

type treeBuilder struct {
	d    *Dataset
	cfg  RandomForestConfig
	mtry int
	rng  *rand.Rand
}

func (b *treeBuilder) grow(idx []int, depth int) *treeNode {
	pos := 0
	for _, i := range idx {
		pos += b.d.Y[i]
	}
	n := len(idx)
	leaf := func() *treeNode {
		return &treeNode{feature: -1, prob: laplaceSmooth(pos, n)}
	}
	if n < 2*b.cfg.MinLeaf || depth >= b.cfg.MaxDepth || pos == 0 || pos == n {
		return leaf()
	}
	feat, thr, ok := b.bestSplit(idx, pos)
	if !ok {
		return leaf()
	}
	var left, right []int
	for _, i := range idx {
		if b.d.X[i][feat] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < b.cfg.MinLeaf || len(right) < b.cfg.MinLeaf {
		return leaf()
	}
	return &treeNode{
		feature:   feat,
		threshold: thr,
		left:      b.grow(left, depth+1),
		right:     b.grow(right, depth+1),
	}
}

// laplaceSmooth avoids hard 0/1 leaf probabilities.
func laplaceSmooth(pos, n int) float64 {
	return (float64(pos) + 1) / (float64(n) + 2)
}

// bestSplit searches mtry random features for the gini-optimal
// threshold.
func (b *treeBuilder) bestSplit(idx []int, pos int) (feature int, threshold float64, ok bool) {
	n := len(idx)
	total := float64(n)
	parentGini := giniImpurity(pos, n)
	bestGain := 1e-12
	width := b.d.Width()

	// Sample mtry distinct features.
	for k := 0; k < b.mtry; k++ {
		f := b.rng.Intn(width)
		thresholds := b.candidateThresholds(idx, f)
		for _, t := range thresholds {
			lp, ln := 0, 0
			for _, i := range idx {
				if b.d.X[i][f] <= t {
					ln++
					lp += b.d.Y[i]
				}
			}
			if ln == 0 || ln == n {
				continue
			}
			rp, rn := pos-lp, n-ln
			gain := parentGini -
				(float64(ln)/total)*giniImpurity(lp, ln) -
				(float64(rn)/total)*giniImpurity(rp, rn)
			if gain > bestGain {
				bestGain, feature, threshold, ok = gain, f, t, true
			}
		}
	}
	return feature, threshold, ok
}

// candidateThresholds returns up to MaxThresholds split points for
// feature f over the rows idx. Binary (one-hot) features yield the
// single threshold 0.5 on the fast path.
func (b *treeBuilder) candidateThresholds(idx []int, f int) []float64 {
	onlyBinary := true
	seen0, seen1 := false, false
	for _, i := range idx {
		v := b.d.X[i][f]
		switch v {
		case 0:
			seen0 = true
		case 1:
			seen1 = true
		default:
			onlyBinary = false
		}
		if !onlyBinary {
			break
		}
	}
	if onlyBinary {
		if seen0 && seen1 {
			return []float64{0.5}
		}
		return nil
	}
	// Numeric feature: distinct values (sampled) → midpoints.
	sample := idx
	if len(sample) > 256 {
		s := make([]int, 256)
		for j := range s {
			s[j] = idx[b.rng.Intn(len(idx))]
		}
		sample = s
	}
	vals := make([]float64, 0, len(sample))
	for _, i := range sample {
		vals = append(vals, b.d.X[i][f])
	}
	sort.Float64s(vals)
	uniq := vals[:0]
	for i, v := range vals {
		if i == 0 || v != uniq[len(uniq)-1] {
			uniq = append(uniq, v)
		}
	}
	if len(uniq) < 2 {
		return nil
	}
	maxT := b.cfg.MaxThresholds
	var out []float64
	if len(uniq)-1 <= maxT {
		for i := 0; i+1 < len(uniq); i++ {
			out = append(out, (uniq[i]+uniq[i+1])/2)
		}
		return out
	}
	stride := float64(len(uniq)-1) / float64(maxT)
	for k := 0; k < maxT; k++ {
		i := int(float64(k) * stride)
		out = append(out, (uniq[i]+uniq[i+1])/2)
	}
	return out
}

func giniImpurity(pos, n int) float64 {
	if n == 0 {
		return 0
	}
	p := float64(pos) / float64(n)
	return 2 * p * (1 - p)
}

// Proba implements Classifier.
func (m *RandomForest) Proba(x []float64) [2]float64 {
	if !m.fitted || len(m.trees) == 0 {
		return [2]float64{0.5, 0.5}
	}
	sum := 0.0
	for _, t := range m.trees {
		node := t
		for node.feature >= 0 {
			if node.feature < len(x) && x[node.feature] <= node.threshold {
				node = node.left
			} else {
				node = node.right
			}
		}
		sum += node.prob
	}
	p := sum / float64(len(m.trees))
	return [2]float64{1 - p, p}
}

// NumTrees returns the number of fitted trees.
func (m *RandomForest) NumTrees() int { return len(m.trees) }

// Depth returns the maximum depth across fitted trees.
func (m *RandomForest) Depth() int {
	max := 0
	for _, t := range m.trees {
		if d := nodeDepth(t); d > max {
			max = d
		}
	}
	return max
}

func nodeDepth(n *treeNode) int {
	if n == nil || n.feature < 0 {
		return 0
	}
	l, r := nodeDepth(n.left), nodeDepth(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}
