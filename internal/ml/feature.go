package ml

import (
	"fmt"
	"math"
	"sort"
)

// StringIndexer maps categorical string values to dense integer
// indices, in order of first appearance at fit time. Unknown values at
// transform time map to a reserved "unseen" index, so models survive
// the schema drift the paper warns about (§6.1: new sensor types
// appear over time).
type StringIndexer struct {
	byValue map[string]int
	values  []string
}

// NewStringIndexer creates an empty indexer.
func NewStringIndexer() *StringIndexer {
	return &StringIndexer{byValue: make(map[string]int)}
}

// Fit observes a value, assigning it the next index if new.
func (s *StringIndexer) Fit(v string) {
	if _, ok := s.byValue[v]; !ok {
		s.byValue[v] = len(s.values)
		s.values = append(s.values, v)
	}
}

// Index returns the index for v; unseen values return Cardinality()
// (the reserved unknown slot).
func (s *StringIndexer) Index(v string) int {
	if i, ok := s.byValue[v]; ok {
		return i
	}
	return len(s.values)
}

// Cardinality returns the number of distinct fitted values.
func (s *StringIndexer) Cardinality() int { return len(s.values) }

// Value returns the string for a fitted index.
func (s *StringIndexer) Value(i int) (string, bool) {
	if i < 0 || i >= len(s.values) {
		return "", false
	}
	return s.values[i], true
}

// OneHotWidth returns the width of the one-hot block for this
// indexer: one slot per fitted value plus the unknown slot.
func (s *StringIndexer) OneHotWidth() int { return len(s.values) + 1 }

// Encode writes the one-hot encoding of v into dst (which must have
// OneHotWidth elements) and returns dst.
func (s *StringIndexer) Encode(dst []float64, v string) []float64 {
	for i := range dst {
		dst[i] = 0
	}
	dst[s.Index(v)] = 1
	return dst
}

// ColumnSpec declares one column of a categorical schema.
type ColumnSpec struct {
	Name string
	// Numeric marks a passthrough float column (e.g. the a-priori
	// risk factor of the hybrid approach) that is not one-hot encoded.
	Numeric bool
}

// SchemaEncoder one-hot encodes rows of mixed categorical/numeric
// columns into a dense feature vector — the One Hot Encoding step the
// paper applies before the DNN, which inflates the Sitasys schema to
// roughly 800 input features (§5.3.3).
type SchemaEncoder struct {
	cols     []ColumnSpec
	indexers []*StringIndexer // nil for numeric columns
	fitted   bool
}

// NewSchemaEncoder creates an encoder for the given columns.
func NewSchemaEncoder(cols []ColumnSpec) *SchemaEncoder {
	e := &SchemaEncoder{cols: cols, indexers: make([]*StringIndexer, len(cols))}
	for i, c := range cols {
		if !c.Numeric {
			e.indexers[i] = NewStringIndexer()
		}
	}
	return e
}

// Row is one record: categorical values as strings, numeric columns
// as their formatted float (use NumericValue to set them).
type Row struct {
	Cats []string  // one entry per categorical column, in schema order
	Nums []float64 // one entry per numeric column, in schema order
}

// Fit observes all rows to build the category vocabularies.
func (e *SchemaEncoder) Fit(rows []Row) error {
	for r, row := range rows {
		if err := e.check(row); err != nil {
			return fmt.Errorf("row %d: %w", r, err)
		}
		ci := 0
		for i, c := range e.cols {
			if c.Numeric {
				continue
			}
			e.indexers[i].Fit(row.Cats[ci])
			ci++
		}
	}
	e.fitted = true
	return nil
}

func (e *SchemaEncoder) check(row Row) error {
	nc, nn := 0, 0
	for _, c := range e.cols {
		if c.Numeric {
			nn++
		} else {
			nc++
		}
	}
	if len(row.Cats) != nc || len(row.Nums) != nn {
		return fmt.Errorf("%w: row has %d cats / %d nums, schema wants %d / %d",
			ErrShape, len(row.Cats), len(row.Nums), nc, nn)
	}
	return nil
}

// Width returns the encoded feature-vector width.
func (e *SchemaEncoder) Width() int {
	w := 0
	for i, c := range e.cols {
		if c.Numeric {
			w++
		} else {
			w += e.indexers[i].OneHotWidth()
		}
	}
	return w
}

// FeatureNames returns one name per encoded slot.
func (e *SchemaEncoder) FeatureNames() []string {
	names := make([]string, 0, e.Width())
	for i, c := range e.cols {
		if c.Numeric {
			names = append(names, c.Name)
			continue
		}
		ind := e.indexers[i]
		for j := 0; j < ind.Cardinality(); j++ {
			v, _ := ind.Value(j)
			names = append(names, c.Name+"="+v)
		}
		names = append(names, c.Name+"=<unseen>")
	}
	return names
}

// Transform encodes one row into a fresh feature vector.
func (e *SchemaEncoder) Transform(row Row) ([]float64, error) {
	out := make([]float64, e.Width())
	if err := e.TransformInto(row, out); err != nil {
		return nil, err
	}
	return out, nil
}

// TransformInto encodes one row into dst, which must have exactly
// Width() elements; dst is zeroed first. This is the allocation-free
// path the batched verifier uses to fill pooled feature matrices.
func (e *SchemaEncoder) TransformInto(row Row, dst []float64) error {
	if !e.fitted {
		return ErrNotFitted
	}
	if err := e.check(row); err != nil {
		return err
	}
	if len(dst) != e.Width() {
		return fmt.Errorf("%w: destination has %d slots, schema wants %d",
			ErrShape, len(dst), e.Width())
	}
	for i := range dst {
		dst[i] = 0
	}
	pos, ci, ni := 0, 0, 0
	for i, c := range e.cols {
		if c.Numeric {
			dst[pos] = row.Nums[ni]
			ni++
			pos++
			continue
		}
		ind := e.indexers[i]
		dst[pos+ind.Index(row.Cats[ci])] = 1
		pos += ind.OneHotWidth()
		ci++
	}
	return nil
}

// TransformAll encodes rows with labels into a Dataset.
func (e *SchemaEncoder) TransformAll(rows []Row, labels []int) (*Dataset, error) {
	if len(rows) != len(labels) {
		return nil, fmt.Errorf("%w: %d rows vs %d labels", ErrShape, len(rows), len(labels))
	}
	x := make([][]float64, len(rows))
	for i, row := range rows {
		v, err := e.Transform(row)
		if err != nil {
			return nil, fmt.Errorf("row %d: %w", i, err)
		}
		x[i] = v
	}
	return NewDataset(x, labels, e.FeatureNames())
}

// Pearson computes the Pearson correlation coefficient between two
// equal-length series. It returns 0 when either series is constant.
// The paper uses Pearson correlation (after [36]) for feature
// selection: "to find dependencies between features and labels as well
// as dependencies among features" (§5.3).
func Pearson(a, b []float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	n := float64(len(a))
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= n
	mb /= n
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

// FeatureCorrelation is the label correlation of one feature.
type FeatureCorrelation struct {
	Index int
	Name  string
	Corr  float64 // Pearson correlation with the label
}

// CorrelationsWithLabel returns per-feature Pearson correlations with
// the label, sorted by descending absolute correlation — the feature-
// selection signal of §5.3.
func CorrelationsWithLabel(d *Dataset) []FeatureCorrelation {
	yf := make([]float64, len(d.Y))
	for i, y := range d.Y {
		yf[i] = float64(y)
	}
	col := make([]float64, len(d.X))
	out := make([]FeatureCorrelation, d.Width())
	for j := 0; j < d.Width(); j++ {
		for i := range d.X {
			col[i] = d.X[i][j]
		}
		name := ""
		if d.FeatureNames != nil {
			name = d.FeatureNames[j]
		}
		out[j] = FeatureCorrelation{Index: j, Name: name, Corr: Pearson(col, yf)}
	}
	sort.SliceStable(out, func(i, j int) bool {
		return math.Abs(out[i].Corr) > math.Abs(out[j].Corr)
	})
	return out
}

// StandardScaler standardizes numeric features to zero mean and unit
// variance (fitted on training data only).
type StandardScaler struct {
	mean, std []float64
	fitted    bool
}

// FitScaler computes per-feature statistics on d.
func FitScaler(d *Dataset) *StandardScaler {
	w := d.Width()
	s := &StandardScaler{mean: make([]float64, w), std: make([]float64, w), fitted: true}
	n := float64(d.Len())
	for _, row := range d.X {
		for j, v := range row {
			s.mean[j] += v
		}
	}
	for j := range s.mean {
		s.mean[j] /= n
	}
	for _, row := range d.X {
		for j, v := range row {
			dv := v - s.mean[j]
			s.std[j] += dv * dv
		}
	}
	for j := range s.std {
		s.std[j] = math.Sqrt(s.std[j] / n)
		if s.std[j] == 0 {
			s.std[j] = 1
		}
	}
	return s
}

// Apply standardizes all rows of d in place and returns d.
func (s *StandardScaler) Apply(d *Dataset) *Dataset {
	for _, row := range d.X {
		s.ApplyRow(row)
	}
	return d
}

// ApplyRow standardizes one feature vector in place.
func (s *StandardScaler) ApplyRow(row []float64) {
	for j := range row {
		row[j] = (row[j] - s.mean[j]) / s.std[j]
	}
}
