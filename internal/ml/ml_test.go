package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// linearDataset builds a noisy linearly-separable binary problem.
func linearDataset(n int, seed int64, noise float64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		a, b := rng.Float64()*2-1, rng.Float64()*2-1
		x[i] = []float64{a, b, rng.Float64()} // third feature is noise
		label := 0
		if a+2*b > 0 {
			label = 1
		}
		if rng.Float64() < noise {
			label = 1 - label
		}
		y[i] = label
	}
	d, _ := NewDataset(x, y, []string{"a", "b", "noise"})
	return d
}

// xorDataset builds the classic non-linear problem linear models
// cannot solve.
func xorDataset(n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		a, b := float64(rng.Intn(2)), float64(rng.Intn(2))
		x[i] = []float64{a, b}
		if (a > 0.5) != (b > 0.5) {
			y[i] = 1
		}
	}
	d, _ := NewDataset(x, y, nil)
	return d
}

func TestNewDatasetValidation(t *testing.T) {
	if _, err := NewDataset(nil, nil, nil); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, err := NewDataset([][]float64{{1}}, []int{1, 0}, nil); err == nil {
		t.Error("row/label mismatch accepted")
	}
	if _, err := NewDataset([][]float64{{1, 2}, {1}}, []int{0, 1}, nil); err == nil {
		t.Error("ragged matrix accepted")
	}
	if _, err := NewDataset([][]float64{{1}}, []int{2}, nil); err == nil {
		t.Error("non-binary label accepted")
	}
	if _, err := NewDataset([][]float64{{1, 2}}, []int{1}, []string{"only-one"}); err == nil {
		t.Error("name/width mismatch accepted")
	}
}

func TestSplitAndFolds(t *testing.T) {
	d := linearDataset(100, 1, 0)
	train, test := d.Split(0.5, rand.New(rand.NewSource(2)))
	if train.Len() != 50 || test.Len() != 50 {
		t.Fatalf("split sizes %d/%d", train.Len(), test.Len())
	}
	folds := d.Folds(5, rand.New(rand.NewSource(3)))
	if len(folds) != 5 {
		t.Fatalf("folds = %d", len(folds))
	}
	total := 0
	for _, f := range folds {
		total += f.Val.Len()
		if f.Train.Len()+f.Val.Len() != 100 {
			t.Errorf("fold partition broken: %d + %d", f.Train.Len(), f.Val.Len())
		}
	}
	if total != 100 {
		t.Errorf("validation folds cover %d rows", total)
	}
}

func TestStringIndexer(t *testing.T) {
	s := NewStringIndexer()
	for _, v := range []string{"fire", "intrusion", "fire", "water"} {
		s.Fit(v)
	}
	if s.Cardinality() != 3 {
		t.Fatalf("cardinality = %d", s.Cardinality())
	}
	if s.Index("fire") != 0 || s.Index("water") != 2 {
		t.Error("indices not in first-appearance order")
	}
	if s.Index("unknown") != 3 {
		t.Error("unseen value should map to reserved slot")
	}
	if s.OneHotWidth() != 4 {
		t.Errorf("one-hot width = %d, want 4 (3 + unseen)", s.OneHotWidth())
	}
	enc := s.Encode(make([]float64, 4), "intrusion")
	if enc[1] != 1 || enc[0]+enc[2]+enc[3] != 0 {
		t.Errorf("encode = %v", enc)
	}
}

func TestSchemaEncoder(t *testing.T) {
	e := NewSchemaEncoder([]ColumnSpec{
		{Name: "zip"},
		{Name: "type"},
		{Name: "risk", Numeric: true},
	})
	rows := []Row{
		{Cats: []string{"8000", "fire"}, Nums: []float64{0.5}},
		{Cats: []string{"8400", "intrusion"}, Nums: []float64{0.1}},
	}
	if err := e.Fit(rows); err != nil {
		t.Fatal(err)
	}
	// widths: zip 2+1, type 2+1, risk 1 = 7
	if e.Width() != 7 {
		t.Fatalf("width = %d, want 7", e.Width())
	}
	names := e.FeatureNames()
	if len(names) != 7 || names[0] != "zip=8000" || names[6] != "risk" {
		t.Errorf("names = %v", names)
	}
	v, err := e.Transform(rows[1])
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 1, 0, 0, 1, 0, 0.1}
	for i := range want {
		if v[i] != want[i] {
			t.Fatalf("transform = %v, want %v", v, want)
		}
	}
	// Unseen category routes to the reserved slot, not an error.
	v, err = e.Transform(Row{Cats: []string{"9999", "fire"}, Nums: []float64{0}})
	if err != nil {
		t.Fatal(err)
	}
	if v[2] != 1 {
		t.Errorf("unseen zip not in reserved slot: %v", v)
	}
	// Shape errors.
	if _, err := e.Transform(Row{Cats: []string{"only-one"}, Nums: []float64{0}}); err == nil {
		t.Error("bad row shape accepted")
	}
	// Unfitted encoder refuses.
	e2 := NewSchemaEncoder([]ColumnSpec{{Name: "a"}})
	if _, err := e2.Transform(Row{Cats: []string{"x"}}); err == nil {
		t.Error("unfitted transform accepted")
	}
}

func TestPearson(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	if got := Pearson(a, a); math.Abs(got-1) > 1e-12 {
		t.Errorf("self correlation = %f", got)
	}
	b := []float64{5, 4, 3, 2, 1}
	if got := Pearson(a, b); math.Abs(got+1) > 1e-12 {
		t.Errorf("anti correlation = %f", got)
	}
	c := []float64{7, 7, 7, 7, 7}
	if got := Pearson(a, c); got != 0 {
		t.Errorf("constant series correlation = %f", got)
	}
	if got := Pearson(a, []float64{1}); got != 0 {
		t.Errorf("length mismatch should give 0, got %f", got)
	}
}

func TestCorrelationsWithLabelRanksSignalFirst(t *testing.T) {
	d := linearDataset(500, 4, 0)
	corrs := CorrelationsWithLabel(d)
	if corrs[len(corrs)-1].Name != "noise" {
		t.Errorf("noise feature should rank last: %+v", corrs)
	}
	if math.Abs(corrs[0].Corr) < 0.3 {
		t.Errorf("top feature correlation too weak: %f", corrs[0].Corr)
	}
}

func TestStandardScaler(t *testing.T) {
	d := linearDataset(200, 5, 0)
	s := FitScaler(d)
	s.Apply(d)
	for j := 0; j < d.Width(); j++ {
		var mean, varsum float64
		for _, row := range d.X {
			mean += row[j]
		}
		mean /= float64(d.Len())
		for _, row := range d.X {
			varsum += (row[j] - mean) * (row[j] - mean)
		}
		sd := math.Sqrt(varsum / float64(d.Len()))
		if math.Abs(mean) > 1e-9 || math.Abs(sd-1) > 1e-9 {
			t.Errorf("feature %d: mean=%g sd=%g after scaling", j, mean, sd)
		}
	}
}

func classifiersUnderTest() []Classifier {
	lr := DefaultLogisticRegressionConfig()
	lr.MaxIterations = 300
	svm := DefaultSVMConfig()
	svm.MaxIterations = 500
	rf := DefaultRandomForestConfig()
	rf.NumTrees = 20
	rf.MaxDepth = 10
	dnn := DefaultDNNConfig()
	dnn.MaxEpochs = 60
	dnn.Patience = 5
	return []Classifier{
		NewLogisticRegression(lr),
		NewSVM(svm),
		NewRandomForest(rf),
		NewDNN(dnn),
	}
}

func TestAllClassifiersLearnLinearProblem(t *testing.T) {
	train := linearDataset(800, 10, 0.02)
	test := linearDataset(400, 11, 0.02)
	for _, c := range classifiersUnderTest() {
		if err := c.Fit(train); err != nil {
			t.Fatalf("%s: fit: %v", c.Name(), err)
		}
		acc := Accuracy(c, test)
		if acc < 0.9 {
			t.Errorf("%s: accuracy %.3f < 0.9 on separable data", c.Name(), acc)
		}
	}
}

func TestNonLinearModelsLearnXOR(t *testing.T) {
	train := xorDataset(600, 20)
	test := xorDataset(300, 21)
	rfCfg := DefaultRandomForestConfig()
	rfCfg.NumTrees = 20
	rfCfg.MaxDepth = 6
	rfCfg.FeatureFraction = 1.0
	dnnCfg := DefaultDNNConfig()
	dnnCfg.HiddenLayers = []int{8}
	dnnCfg.MaxEpochs = 300
	dnnCfg.Patience = 30
	for _, c := range []Classifier{NewRandomForest(rfCfg), NewDNN(dnnCfg)} {
		if err := c.Fit(train); err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if acc := Accuracy(c, test); acc < 0.95 {
			t.Errorf("%s: XOR accuracy %.3f", c.Name(), acc)
		}
	}
	// Sanity: a linear model cannot beat ~0.75 on XOR.
	lr := NewLogisticRegression(DefaultLogisticRegressionConfig())
	lr.Fit(train)
	if acc := Accuracy(lr, test); acc > 0.8 {
		t.Errorf("linear model should fail XOR, got %.3f", acc)
	}
}

func TestFitRejectsEmptyDataset(t *testing.T) {
	for _, c := range classifiersUnderTest() {
		if err := c.Fit(nil); err == nil {
			t.Errorf("%s: nil dataset accepted", c.Name())
		}
	}
}

func TestUnfittedProbaIsNeutral(t *testing.T) {
	for _, c := range classifiersUnderTest() {
		p := c.Proba([]float64{1, 2, 3})
		if p[0] != 0.5 || p[1] != 0.5 {
			t.Errorf("%s: unfitted proba = %v", c.Name(), p)
		}
	}
}

func TestProbabilitiesSumToOne(t *testing.T) {
	train := linearDataset(400, 30, 0.05)
	for _, c := range classifiersUnderTest() {
		if err := c.Fit(train); err != nil {
			t.Fatal(err)
		}
		c := c
		f := func(a, b, n float64) bool {
			p := c.Proba([]float64{math.Mod(a, 3), math.Mod(b, 3), math.Mod(n, 1)})
			return p[0] >= 0 && p[1] >= 0 && math.Abs(p[0]+p[1]-1) < 1e-9
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
}

func TestDeterministicTraining(t *testing.T) {
	train := linearDataset(300, 40, 0.05)
	probe := []float64{0.3, -0.2, 0.5}
	for build := 0; build < 2; build++ {
		a := NewRandomForest(DefaultRandomForestConfig())
		a.Config.NumTrees = 10
		a.Config.MaxDepth = 8
		b := NewRandomForest(a.Config)
		a.Fit(train)
		b.Fit(train)
		pa, pb := a.Proba(probe), b.Proba(probe)
		if pa != pb {
			t.Errorf("same seed, different forests: %v vs %v", pa, pb)
		}
	}
	d1 := NewDNN(DefaultDNNConfig())
	d1.Config.MaxEpochs = 10
	d2 := NewDNN(d1.Config)
	d1.Fit(train)
	d2.Fit(train)
	if d1.Proba(probe) != d2.Proba(probe) {
		t.Error("same seed, different DNNs")
	}
}

func TestDNNArchitectureMatchesTable7(t *testing.T) {
	cfg := DefaultDNNConfig()
	cfg.MaxEpochs = 1
	m := NewDNN(cfg)
	// 803-wide input like the Sitasys one-hot encoding (§5.3.3).
	x := make([][]float64, 4)
	y := []int{0, 1, 0, 1}
	for i := range x {
		x[i] = make([]float64, 803)
		x[i][i] = 1
	}
	d, _ := NewDataset(x, y, nil)
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	want := []int{803, 50, 2, 2}
	got := m.LayerSizes()
	if len(got) != len(want) {
		t.Fatalf("layers = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("layers = %v, want %v", got, want)
		}
	}
}

func TestRandomForestRespectsDepthLimit(t *testing.T) {
	cfg := DefaultRandomForestConfig()
	cfg.NumTrees = 5
	cfg.MaxDepth = 3
	m := NewRandomForest(cfg)
	if err := m.Fit(linearDataset(500, 50, 0.1)); err != nil {
		t.Fatal(err)
	}
	if m.Depth() > 3 {
		t.Errorf("tree depth %d exceeds limit 3", m.Depth())
	}
	if m.NumTrees() != 5 {
		t.Errorf("trees = %d", m.NumTrees())
	}
}

func TestLogisticRegressionConvergesEarly(t *testing.T) {
	cfg := DefaultLogisticRegressionConfig()
	cfg.Tolerance = 1e-3
	m := NewLogisticRegression(cfg)
	if err := m.Fit(linearDataset(200, 60, 0)); err != nil {
		t.Fatal(err)
	}
	if m.Iterations >= cfg.MaxIterations {
		t.Errorf("tolerance stop did not trigger: ran %d iterations", m.Iterations)
	}
}

func TestConfusionMatrixMetrics(t *testing.T) {
	cm := ConfusionMatrix{TP: 40, FP: 10, TN: 35, FN: 15}
	if got := cm.Accuracy(); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("accuracy = %f", got)
	}
	if got := cm.Precision(); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("precision = %f", got)
	}
	if got := cm.Recall(); math.Abs(got-40.0/55.0) > 1e-12 {
		t.Errorf("recall = %f", got)
	}
	if cm.F1() <= 0 || cm.F1() > 1 {
		t.Errorf("f1 = %f", cm.F1())
	}
	var zero ConfusionMatrix
	if zero.Accuracy() != 0 || zero.Precision() != 0 || zero.Recall() != 0 || zero.F1() != 0 {
		t.Error("zero matrix should yield zero metrics")
	}
}

type fixedScore struct{ scores map[string]float64 }

func (f fixedScore) Name() string         { return "fixed" }
func (f fixedScore) Fit(d *Dataset) error { return nil }
func (f fixedScore) Proba(x []float64) [2]float64 {
	p := x[0]
	return [2]float64{1 - p, p}
}

func TestAUC(t *testing.T) {
	// Perfect ranking.
	x := [][]float64{{0.1}, {0.2}, {0.8}, {0.9}}
	y := []int{0, 0, 1, 1}
	d, _ := NewDataset(x, y, nil)
	if got := AUC(fixedScore{}, d); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect AUC = %f", got)
	}
	// Inverted ranking.
	y2 := []int{1, 1, 0, 0}
	d2, _ := NewDataset(x, y2, nil)
	if got := AUC(fixedScore{}, d2); math.Abs(got-0) > 1e-12 {
		t.Errorf("inverted AUC = %f", got)
	}
	// All ties → 0.5.
	x3 := [][]float64{{0.5}, {0.5}, {0.5}, {0.5}}
	d3, _ := NewDataset(x3, y, nil)
	if got := AUC(fixedScore{}, d3); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("tied AUC = %f", got)
	}
}

func TestBrier(t *testing.T) {
	x := [][]float64{{1}, {0}}
	y := []int{1, 0}
	d, _ := NewDataset(x, y, nil)
	if got := Brier(fixedScore{}, d); got != 0 {
		t.Errorf("perfect Brier = %f", got)
	}
	y2 := []int{0, 1}
	d2, _ := NewDataset(x, y2, nil)
	if got := Brier(fixedScore{}, d2); got != 1 {
		t.Errorf("worst Brier = %f", got)
	}
}

func TestGridSearchPrefersBetterConfig(t *testing.T) {
	d := linearDataset(400, 70, 0.05)
	grid := map[string][]float64{
		"trees": {1, 15},
		"depth": {1, 8},
	}
	results, err := GridSearch(d, grid, 3, func(p GridPoint) Classifier {
		cfg := DefaultRandomForestConfig()
		cfg.NumTrees = int(p["trees"])
		cfg.MaxDepth = int(p["depth"])
		return NewRandomForest(cfg)
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d, want 4", len(results))
	}
	best := results[0]
	if best.Point["trees"] == 1 && best.Point["depth"] == 1 {
		t.Errorf("grid search chose the weakest config: %+v", results)
	}
	for i := 1; i < len(results); i++ {
		if results[i].Score > results[i-1].Score {
			t.Error("results not sorted")
		}
	}
}

func TestGridSearchErrors(t *testing.T) {
	if _, err := GridSearch(nil, nil, 2, nil, 1); err == nil {
		t.Error("nil dataset accepted")
	}
	d := linearDataset(20, 1, 0)
	if _, err := GridSearch(d, map[string][]float64{}, 2,
		func(GridPoint) Classifier { return NewLogisticRegression(DefaultLogisticRegressionConfig()) }, 1); err != nil {
		// Empty grid means a single default point — accept either
		// behaviour, but it must not panic. Our implementation treats
		// it as one empty point.
		t.Logf("empty grid: %v", err)
	}
}

func TestPositiveRate(t *testing.T) {
	d, _ := NewDataset([][]float64{{1}, {2}, {3}, {4}}, []int{1, 1, 0, 0}, nil)
	if got := d.PositiveRate(); got != 0.5 {
		t.Errorf("positive rate = %f", got)
	}
}
