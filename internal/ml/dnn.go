package ml

import (
	"math"
	"math/rand"
)

// DNNConfig mirrors the paper's Tables 6 and 7: a fully-connected
// network trained with cross-entropy loss and Nesterov momentum.
type DNNConfig struct {
	// HiddenLayers lists hidden-layer widths; Table 7 uses {50, 2}
	// (input 803 → 50 ReLU → 2 ReLU → 2 softmax).
	HiddenLayers []int
	MaxEpochs    int     // Table 6: 10,000 (an upper bound)
	MiniBatch    int     // Table 6: 200
	LearningRate float64 // Table 6: 0.1
	Momentum     float64 // Table 6: 0.9 (Nesterov)
	// Patience stops training once the epoch loss has not improved
	// for this many epochs (0 disables early stopping). The paper
	// caps epochs at 10,000 but trains far fewer in practice.
	Patience int
	Seed     int64
}

// DefaultDNNConfig returns the paper's Tables 6–7 parameters with
// early stopping enabled.
func DefaultDNNConfig() DNNConfig {
	return DNNConfig{
		HiddenLayers: []int{50, 2},
		MaxEpochs:    10000,
		MiniBatch:    200,
		LearningRate: 0.1,
		Momentum:     0.9,
		Patience:     10,
		Seed:         1,
	}
}

// DNN is the paper's deep-neural-network classifier: dense ReLU
// hidden layers and a 2-way softmax output trained with mini-batch
// Nesterov-momentum SGD on one-hot encoded inputs (§5.3.3).
type DNN struct {
	Config DNNConfig

	// layers[i] maps sizes[i] -> sizes[i+1].
	weights [][]float64 // row-major (out × in)
	biases  [][]float64
	sizes   []int
	// EpochsRun reports how many epochs Fit actually ran.
	EpochsRun int
	fitted    bool
}

// NewDNN creates a network with the given config.
func NewDNN(cfg DNNConfig) *DNN { return &DNN{Config: cfg} }

// Name implements Classifier.
func (m *DNN) Name() string { return "dnn" }

// Fit implements Classifier.
func (m *DNN) Fit(d *Dataset) error {
	if d == nil || d.Len() == 0 {
		return ErrEmptyDataset
	}
	cfg := m.Config
	if cfg.MiniBatch < 1 {
		cfg.MiniBatch = 1
	}
	if cfg.MaxEpochs < 1 {
		cfg.MaxEpochs = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	m.sizes = append([]int{d.Width()}, cfg.HiddenLayers...)
	m.sizes = append(m.sizes, 2)
	nLayers := len(m.sizes) - 1
	m.weights = make([][]float64, nLayers)
	m.biases = make([][]float64, nLayers)
	// Velocity buffers for Nesterov momentum.
	vw := make([][]float64, nLayers)
	vb := make([][]float64, nLayers)
	for l := 0; l < nLayers; l++ {
		in, out := m.sizes[l], m.sizes[l+1]
		m.weights[l] = make([]float64, in*out)
		m.biases[l] = make([]float64, out)
		vw[l] = make([]float64, in*out)
		vb[l] = make([]float64, out)
		// He initialization for ReLU layers.
		scale := math.Sqrt(2.0 / float64(in))
		for i := range m.weights[l] {
			m.weights[l][i] = rng.NormFloat64() * scale
		}
	}

	// Scratch buffers reused across samples.
	acts := make([][]float64, nLayers+1)
	deltas := make([][]float64, nLayers+1)
	for l, s := range m.sizes {
		acts[l] = make([]float64, s)
		deltas[l] = make([]float64, s)
	}
	gw := make([][]float64, nLayers)
	gb := make([][]float64, nLayers)
	for l := 0; l < nLayers; l++ {
		gw[l] = make([]float64, len(m.weights[l]))
		gb[l] = make([]float64, len(m.biases[l]))
	}

	order := rng.Perm(d.Len())
	bestLoss := math.Inf(1)
	bad := 0
	for epoch := 0; epoch < cfg.MaxEpochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		epochLoss := 0.0
		for start := 0; start < len(order); start += cfg.MiniBatch {
			end := start + cfg.MiniBatch
			if end > len(order) {
				end = len(order)
			}
			batch := order[start:end]
			// Nesterov lookahead: evaluate gradient at w + mu*v.
			for l := 0; l < nLayers; l++ {
				for i, v := range vw[l] {
					m.weights[l][i] += cfg.Momentum * v
				}
				for i, v := range vb[l] {
					m.biases[l][i] += cfg.Momentum * v
				}
				zero(gw[l])
				zero(gb[l])
			}
			for _, i := range batch {
				epochLoss += m.backprop(d.X[i], d.Y[i], acts, deltas, gw, gb)
			}
			// Undo lookahead, then apply the momentum update.
			nb := float64(len(batch))
			for l := 0; l < nLayers; l++ {
				for i := range vw[l] {
					m.weights[l][i] -= cfg.Momentum * vw[l][i]
					vw[l][i] = cfg.Momentum*vw[l][i] - cfg.LearningRate*gw[l][i]/nb
					m.weights[l][i] += vw[l][i]
				}
				for i := range vb[l] {
					m.biases[l][i] -= cfg.Momentum * vb[l][i]
					vb[l][i] = cfg.Momentum*vb[l][i] - cfg.LearningRate*gb[l][i]/nb
					m.biases[l][i] += vb[l][i]
				}
			}
		}
		m.EpochsRun = epoch + 1
		epochLoss /= float64(len(order))
		if cfg.Patience > 0 {
			if epochLoss < bestLoss-1e-5 {
				bestLoss = epochLoss
				bad = 0
			} else {
				bad++
				if bad >= cfg.Patience {
					break
				}
			}
		}
	}
	m.fitted = true
	return nil
}

func zero(s []float64) {
	for i := range s {
		s[i] = 0
	}
}

// forward fills acts[0..nLayers] and returns the softmax output slice
// (acts[nLayers]).
func (m *DNN) forward(x []float64, acts [][]float64) []float64 {
	copy(acts[0], x)
	nLayers := len(m.sizes) - 1
	for l := 0; l < nLayers; l++ {
		in, out := m.sizes[l], m.sizes[l+1]
		w := m.weights[l]
		for o := 0; o < out; o++ {
			z := m.biases[l][o]
			row := w[o*in : (o+1)*in]
			prev := acts[l]
			for i, v := range prev {
				if v != 0 {
					z += row[i] * v
				}
			}
			acts[l+1][o] = z
		}
		if l < nLayers-1 {
			relu(acts[l+1])
		} else {
			softmax(acts[l+1])
		}
	}
	return acts[nLayers]
}

func relu(s []float64) {
	for i, v := range s {
		if v < 0 {
			s[i] = 0
		}
	}
}

func softmax(s []float64) {
	max := s[0]
	for _, v := range s[1:] {
		if v > max {
			max = v
		}
	}
	sum := 0.0
	for i, v := range s {
		s[i] = math.Exp(v - max)
		sum += s[i]
	}
	for i := range s {
		s[i] /= sum
	}
}

// backprop runs one forward/backward pass, accumulating gradients into
// gw/gb, and returns the sample's cross-entropy loss.
func (m *DNN) backprop(x []float64, y int, acts, deltas, gw, gb [][]float64) float64 {
	out := m.forward(x, acts)
	nLayers := len(m.sizes) - 1
	loss := -math.Log(math.Max(out[y], 1e-12))

	// Softmax + cross-entropy gradient at the output.
	last := deltas[nLayers]
	for o := range last {
		t := 0.0
		if o == y {
			t = 1
		}
		last[o] = out[o] - t
	}
	for l := nLayers - 1; l >= 0; l-- {
		in, outN := m.sizes[l], m.sizes[l+1]
		w := m.weights[l]
		delta := deltas[l+1]
		prev := acts[l]
		for o := 0; o < outN; o++ {
			d := delta[o]
			if d == 0 {
				continue
			}
			gb[l][o] += d
			row := gw[l][o*in : (o+1)*in]
			for i, v := range prev {
				if v != 0 {
					row[i] += d * v
				}
			}
		}
		if l > 0 {
			down := deltas[l]
			for i := 0; i < in; i++ {
				if prev[i] <= 0 { // ReLU derivative
					down[i] = 0
					continue
				}
				s := 0.0
				for o := 0; o < outN; o++ {
					s += w[o*in+i] * delta[o]
				}
				down[i] = s
			}
		}
	}
	return loss
}

// Proba implements Classifier.
func (m *DNN) Proba(x []float64) [2]float64 {
	if !m.fitted {
		return [2]float64{0.5, 0.5}
	}
	acts := make([][]float64, len(m.sizes))
	for l, s := range m.sizes {
		acts[l] = make([]float64, s)
	}
	out := m.forward(x, acts)
	return [2]float64{out[0], out[1]}
}

// LayerSizes returns the realized architecture including input and
// output widths.
func (m *DNN) LayerSizes() []int { return append([]int(nil), m.sizes...) }
