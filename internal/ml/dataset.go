// Package ml implements the machine-learning substrate of the alarm
// pipeline — the role Spark ML (Random Forest, SVM, Logistic
// Regression) and DeepLearning4J/Theano (Deep Neural Network) play in
// the paper (§5.3).
//
// All four classifiers follow the paper's hyper-parameters (Tables
// 3–7) and expose calibrated class probabilities, because the paper's
// use case is a decision-support system: "not only is the verification
// important, but also the probability (confidence) associated with it"
// (§6.1). The package is dataset-agnostic; encoding alarms into
// feature vectors lives with the dataset loaders.
package ml

import (
	"errors"
	"fmt"
	"math/rand"
)

// Common errors.
var (
	ErrEmptyDataset = errors.New("ml: empty dataset")
	ErrShape        = errors.New("ml: inconsistent dataset shape")
	ErrNotFitted    = errors.New("ml: model not fitted")
)

// Dataset is a dense design matrix with binary labels (0 = false
// alarm, 1 = true alarm).
type Dataset struct {
	X            [][]float64
	Y            []int
	FeatureNames []string
}

// NewDataset validates and wraps a design matrix.
func NewDataset(x [][]float64, y []int, names []string) (*Dataset, error) {
	if len(x) == 0 {
		return nil, ErrEmptyDataset
	}
	if len(x) != len(y) {
		return nil, fmt.Errorf("%w: %d rows vs %d labels", ErrShape, len(x), len(y))
	}
	w := len(x[0])
	for i, row := range x {
		if len(row) != w {
			return nil, fmt.Errorf("%w: row %d has %d features, want %d", ErrShape, i, len(row), w)
		}
	}
	if names != nil && len(names) != w {
		return nil, fmt.Errorf("%w: %d feature names for width %d", ErrShape, len(names), w)
	}
	for i, label := range y {
		if label != 0 && label != 1 {
			return nil, fmt.Errorf("%w: label %d at row %d (want 0/1)", ErrShape, label, i)
		}
	}
	return &Dataset{X: x, Y: y, FeatureNames: names}, nil
}

// Len returns the number of rows.
func (d *Dataset) Len() int { return len(d.X) }

// Width returns the number of features.
func (d *Dataset) Width() int {
	if len(d.X) == 0 {
		return 0
	}
	return len(d.X[0])
}

// PositiveRate returns the fraction of rows labelled 1.
func (d *Dataset) PositiveRate() float64 {
	if len(d.Y) == 0 {
		return 0
	}
	n := 0
	for _, y := range d.Y {
		n += y
	}
	return float64(n) / float64(len(d.Y))
}

// Shuffle permutes rows in place using rng.
func (d *Dataset) Shuffle(rng *rand.Rand) {
	rng.Shuffle(len(d.X), func(i, j int) {
		d.X[i], d.X[j] = d.X[j], d.X[i]
		d.Y[i], d.Y[j] = d.Y[j], d.Y[i]
	})
}

// Split partitions the dataset into a training set with trainFrac of
// the rows and a test set with the remainder, after shuffling with
// rng. The paper uses a 50/50 split (§5.1.1).
func (d *Dataset) Split(trainFrac float64, rng *rand.Rand) (train, test *Dataset) {
	idx := rng.Perm(len(d.X))
	n := int(float64(len(d.X)) * trainFrac)
	if n < 1 {
		n = 1
	}
	if n >= len(d.X) {
		n = len(d.X) - 1
	}
	mk := func(ids []int) *Dataset {
		x := make([][]float64, len(ids))
		y := make([]int, len(ids))
		for i, id := range ids {
			x[i] = d.X[id]
			y[i] = d.Y[id]
		}
		return &Dataset{X: x, Y: y, FeatureNames: d.FeatureNames}
	}
	return mk(idx[:n]), mk(idx[n:])
}

// Subset returns a view of the given row indices.
func (d *Dataset) Subset(rows []int) *Dataset {
	x := make([][]float64, len(rows))
	y := make([]int, len(rows))
	for i, r := range rows {
		x[i] = d.X[r]
		y[i] = d.Y[r]
	}
	return &Dataset{X: x, Y: y, FeatureNames: d.FeatureNames}
}

// Folds splits the dataset into k folds for cross-validation and
// returns, per fold, the train and validation subsets.
func (d *Dataset) Folds(k int, rng *rand.Rand) []struct{ Train, Val *Dataset } {
	if k < 2 {
		k = 2
	}
	idx := rng.Perm(len(d.X))
	out := make([]struct{ Train, Val *Dataset }, k)
	for f := 0; f < k; f++ {
		var trainIdx, valIdx []int
		for i, id := range idx {
			if i%k == f {
				valIdx = append(valIdx, id)
			} else {
				trainIdx = append(trainIdx, id)
			}
		}
		out[f].Train = d.Subset(trainIdx)
		out[f].Val = d.Subset(valIdx)
	}
	return out
}

// Classifier is a binary classifier with calibrated probabilities.
type Classifier interface {
	// Name identifies the algorithm ("rf", "svm", "lr", "dnn").
	Name() string
	// Fit trains on d.
	Fit(d *Dataset) error
	// Proba returns [P(class 0), P(class 1)] for one feature vector.
	Proba(x []float64) [2]float64
}

// Predict returns the argmax class for one feature vector.
func Predict(c Classifier, x []float64) int {
	p := c.Proba(x)
	if p[1] >= p[0] {
		return 1
	}
	return 0
}

// Confidence returns the probability of the predicted class — the
// number human ARC operators prioritize by (§6.1).
func Confidence(c Classifier, x []float64) (class int, prob float64) {
	p := c.Proba(x)
	if p[1] >= p[0] {
		return 1, p[1]
	}
	return 0, p[0]
}
