package ml

import (
	"math"
)

// LogisticRegressionConfig mirrors the paper's Table 5.
type LogisticRegressionConfig struct {
	MaxIterations int     // Table 5: 500
	Tolerance     float64 // Table 5: 1e-6 (convergence tolerance)
	LearningRate  float64 // full-batch gradient step size
	L2            float64 // ridge penalty
}

// DefaultLogisticRegressionConfig returns the paper's published
// parameters (Table 5) with sensible optimizer defaults for the
// unpublished knobs.
func DefaultLogisticRegressionConfig() LogisticRegressionConfig {
	return LogisticRegressionConfig{
		MaxIterations: 500,
		Tolerance:     1e-6,
		LearningRate:  0.5,
		L2:            1e-4,
	}
}

// LogisticRegression is a binary logistic-regression classifier
// trained by full-batch gradient descent with a convergence-tolerance
// stop — the cheapest of the paper's four algorithms ("the smallest
// training time is required for Logistic Regression", §5.3.3).
type LogisticRegression struct {
	Config LogisticRegressionConfig

	weights []float64
	bias    float64
	// Iterations reports how many optimizer steps Fit actually ran.
	Iterations int
	fitted     bool
}

// NewLogisticRegression creates a classifier with the given config.
func NewLogisticRegression(cfg LogisticRegressionConfig) *LogisticRegression {
	return &LogisticRegression{Config: cfg}
}

// Name implements Classifier.
func (m *LogisticRegression) Name() string { return "lr" }

func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// Fit implements Classifier.
func (m *LogisticRegression) Fit(d *Dataset) error {
	if d == nil || d.Len() == 0 {
		return ErrEmptyDataset
	}
	w := d.Width()
	m.weights = make([]float64, w)
	m.bias = 0
	n := float64(d.Len())
	grad := make([]float64, w)

	prevLoss := math.Inf(1)
	for iter := 0; iter < m.Config.MaxIterations; iter++ {
		for j := range grad {
			grad[j] = 0
		}
		gradB := 0.0
		loss := 0.0
		for i, row := range d.X {
			z := m.bias
			for j, v := range row {
				z += m.weights[j] * v
			}
			p := sigmoid(z)
			y := float64(d.Y[i])
			err := p - y
			for j, v := range row {
				if v != 0 {
					grad[j] += err * v
				}
			}
			gradB += err
			// Numerically-safe cross entropy.
			if y > 0.5 {
				loss += -math.Log(math.Max(p, 1e-12))
			} else {
				loss += -math.Log(math.Max(1-p, 1e-12))
			}
		}
		loss /= n
		lr := m.Config.LearningRate
		for j := range m.weights {
			g := grad[j]/n + m.Config.L2*m.weights[j]
			m.weights[j] -= lr * g
			loss += 0.5 * m.Config.L2 * m.weights[j] * m.weights[j]
		}
		m.bias -= lr * gradB / n
		m.Iterations = iter + 1
		if math.Abs(prevLoss-loss) < m.Config.Tolerance {
			break
		}
		prevLoss = loss
	}
	m.fitted = true
	return nil
}

// Proba implements Classifier.
func (m *LogisticRegression) Proba(x []float64) [2]float64 {
	if !m.fitted {
		return [2]float64{0.5, 0.5}
	}
	z := m.bias
	for j, v := range x {
		if j < len(m.weights) && v != 0 {
			z += m.weights[j] * v
		}
	}
	p := sigmoid(z)
	return [2]float64{1 - p, p}
}

// Weights exposes the fitted coefficients (for inspection and tests).
func (m *LogisticRegression) Weights() ([]float64, float64) {
	return m.weights, m.bias
}
