package ml

import "sync"

// Vectorized inference. The paper's serving path classifies one alarm
// at a time; the stream pipeline (§5.5) hands the ML component whole
// micro-batches, so the per-call allocations (DNN activations, forest
// probability sums) and the cold-cache model walks dominate. The
// batch entry points below classify a whole feature matrix per call:
// model weights stay hot across rows, scratch buffers come from
// sync.Pool arenas (one in flight per P, so concurrent shards never
// contend), and every per-row arithmetic sequence is exactly the one
// Proba runs — batch results are bit-identical to the sequential
// path, which the equivalence tests in internal/core assert.

// BatchClassifier is implemented by classifiers with a vectorized,
// allocation-free inference path over whole feature matrices.
type BatchClassifier interface {
	Classifier
	// ProbBatch writes [P(class 0), P(class 1)] for row xs[i] into
	// out[i]. out must have at least len(xs) elements. The result for
	// each row is bit-identical to Proba(xs[i]).
	ProbBatch(xs [][]float64, out [][2]float64)
	// PredictBatch writes the argmax class for row xs[i] into out[i].
	// out must have at least len(xs) elements.
	PredictBatch(xs [][]float64, out []int)
}

// ProbaBatch fills out[i] with c.Proba(xs[i]) for every row, using the
// classifier's vectorized path when it implements BatchClassifier and
// falling back to per-row calls otherwise.
func ProbaBatch(c Classifier, xs [][]float64, out [][2]float64) {
	if bc, ok := c.(BatchClassifier); ok {
		bc.ProbBatch(xs, out)
		return
	}
	for i, x := range xs {
		out[i] = c.Proba(x)
	}
}

// PredictBatch fills out[i] with the argmax class of xs[i], using the
// classifier's vectorized path when available.
func PredictBatch(c Classifier, xs [][]float64, out []int) {
	if bc, ok := c.(BatchClassifier); ok {
		bc.PredictBatch(xs, out)
		return
	}
	for i, x := range xs {
		out[i] = Predict(c, x)
	}
}

// argmaxInto converts a filled probability column into class labels —
// the shared tail of every PredictBatch implementation.
func argmaxInto(probs [][2]float64, out []int) {
	for i, p := range probs {
		if p[1] >= p[0] {
			out[i] = 1
		} else {
			out[i] = 0
		}
	}
}

// predictViaProbBatch is the shared PredictBatch body: run the
// vectorized probability pass into a pooled column, then argmax.
func predictViaProbBatch(bc BatchClassifier, xs [][]float64, out []int) {
	a := probArenaPool.Get().(*probArena)
	probs := a.take(len(xs))
	bc.ProbBatch(xs, probs)
	argmaxInto(probs, out)
	probArenaPool.Put(a)
}

// probArena is a reusable flat scratch buffer. Arenas are recycled
// through sync.Pool, so each concurrently-classifying goroutine (one
// per pipeline shard or classify worker) gets its own and no batch
// ever allocates after warm-up.
type probArena struct {
	probs [][2]float64
	f64   []float64
}

var probArenaPool = sync.Pool{New: func() any { return new(probArena) }}

// take returns the arena's probability buffer grown to n rows.
func (a *probArena) take(n int) [][2]float64 {
	if cap(a.probs) < n {
		a.probs = make([][2]float64, n)
	}
	a.probs = a.probs[:n]
	return a.probs
}

// takeF64 returns the arena's float buffer grown to n elements,
// zeroed.
func (a *probArena) takeF64(n int) []float64 {
	if cap(a.f64) < n {
		a.f64 = make([]float64, n)
	}
	a.f64 = a.f64[:n]
	for i := range a.f64 {
		a.f64[i] = 0
	}
	return a.f64
}

// ---- LogisticRegression ----

// ProbBatch implements BatchClassifier: one pass over the flat weight
// vector per row, with the weights hot in cache across the batch.
func (m *LogisticRegression) ProbBatch(xs [][]float64, out [][2]float64) {
	for i, x := range xs {
		out[i] = m.Proba(x)
	}
}

// PredictBatch implements BatchClassifier.
func (m *LogisticRegression) PredictBatch(xs [][]float64, out []int) {
	predictViaProbBatch(m, xs, out)
}

// ---- SVM ----

// ProbBatch implements BatchClassifier: the fitted hyperplane and
// Platt parameters are reused across the whole batch.
func (m *SVM) ProbBatch(xs [][]float64, out [][2]float64) {
	for i, x := range xs {
		out[i] = m.Proba(x)
	}
}

// PredictBatch implements BatchClassifier.
func (m *SVM) PredictBatch(xs [][]float64, out []int) {
	predictViaProbBatch(m, xs, out)
}

// ---- RandomForest ----

// ProbBatch implements BatchClassifier. The loop is tree-outer /
// row-inner: each tree's nodes stay in cache while the whole batch
// walks it, instead of every row faulting all 50 trees back in. The
// per-row accumulation order (tree 0, 1, …) matches Proba exactly, so
// the averaged probabilities are bit-identical.
func (m *RandomForest) ProbBatch(xs [][]float64, out [][2]float64) {
	if !m.fitted || len(m.trees) == 0 {
		for i := range xs {
			out[i] = [2]float64{0.5, 0.5}
		}
		return
	}
	a := probArenaPool.Get().(*probArena)
	sums := a.takeF64(len(xs))
	for _, t := range m.trees {
		for i, x := range xs {
			node := t
			for node.feature >= 0 {
				if node.feature < len(x) && x[node.feature] <= node.threshold {
					node = node.left
				} else {
					node = node.right
				}
			}
			sums[i] += node.prob
		}
	}
	n := float64(len(m.trees))
	for i, s := range sums {
		p := s / n
		out[i] = [2]float64{1 - p, p}
	}
	probArenaPool.Put(a)
}

// PredictBatch implements BatchClassifier.
func (m *RandomForest) PredictBatch(xs [][]float64, out []int) {
	predictViaProbBatch(m, xs, out)
}

// ---- DNN ----

// dnnArena holds the two flat activation matrices a batch forward
// pass ping-pongs between (batch × widest-hidden-layer each).
type dnnArena struct {
	a, b []float64
}

var dnnArenaPool = sync.Pool{New: func() any { return new(dnnArena) }}

func (ar *dnnArena) size(n int) {
	if cap(ar.a) < n {
		ar.a = make([]float64, n)
		ar.b = make([]float64, n)
	}
	ar.a = ar.a[:n]
	ar.b = ar.b[:n]
}

// ProbBatch implements BatchClassifier: a layer-outer batch forward
// pass over two pooled flat activation matrices, so the per-call
// [][]float64 activation allocation of Proba disappears and each
// layer's weight matrix is streamed through cache once per batch
// instead of once per alarm. Per row, the multiply-accumulate order
// is exactly forward()'s, so outputs are bit-identical to Proba.
func (m *DNN) ProbBatch(xs [][]float64, out [][2]float64) {
	if !m.fitted {
		for i := range xs {
			out[i] = [2]float64{0.5, 0.5}
		}
		return
	}
	n := len(xs)
	if n == 0 {
		return
	}
	nLayers := len(m.sizes) - 1
	stride := 0
	for _, s := range m.sizes[1:] {
		if s > stride {
			stride = s
		}
	}
	ar := dnnArenaPool.Get().(*dnnArena)
	ar.size(n * stride)
	cur, next := ar.a, ar.b
	for l := 0; l < nLayers; l++ {
		in, outW := m.sizes[l], m.sizes[l+1]
		w := m.weights[l]
		for r := 0; r < n; r++ {
			var prev []float64
			if l == 0 {
				// forward() copies the input into a sizes[0]-length
				// buffer; clamp so over-wide rows truncate identically
				// (short rows read the same — the zero tail is skipped).
				prev = xs[r]
				if len(prev) > in {
					prev = prev[:in]
				}
			} else {
				prev = cur[r*stride : r*stride+in]
			}
			act := next[r*stride : r*stride+outW]
			for o := 0; o < outW; o++ {
				z := m.biases[l][o]
				row := w[o*in : (o+1)*in]
				for i, v := range prev {
					if v != 0 {
						z += row[i] * v
					}
				}
				act[o] = z
			}
			if l < nLayers-1 {
				relu(act)
			} else {
				softmax(act)
			}
		}
		cur, next = next, cur
	}
	// After the final swap, cur holds the softmax outputs.
	for r := 0; r < n; r++ {
		o := cur[r*stride : r*stride+2]
		out[r] = [2]float64{o[0], o[1]}
	}
	dnnArenaPool.Put(ar)
}

// PredictBatch implements BatchClassifier.
func (m *DNN) PredictBatch(xs [][]float64, out []int) {
	predictViaProbBatch(m, xs, out)
}
