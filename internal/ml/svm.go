package ml

import (
	"math"
	"math/rand"
)

// SVMConfig mirrors the paper's Table 4: a linear-kernel SVM trained
// with mini-batch SGD under a squared-L2 update.
type SVMConfig struct {
	MaxIterations     int     // Table 4: 2,000
	StepSize          float64 // Table 4: 1.0
	MiniBatchFraction float64 // Table 4: 0.2
	L2                float64 // Table 4: 1e-2 (regularization parameter)
	Seed              int64
}

// DefaultSVMConfig returns the paper's Table 4 parameters.
func DefaultSVMConfig() SVMConfig {
	return SVMConfig{
		MaxIterations:     2000,
		StepSize:          1.0,
		MiniBatchFraction: 0.2,
		L2:                1e-2,
		Seed:              1,
	}
}

// SVM is a linear support-vector machine trained with hinge-loss
// mini-batch SGD (step size decaying as stepSize/√t, matching Spark's
// SVMWithSGD which the paper used). Because a raw SVM only yields a
// margin, Proba applies Platt scaling fitted on the training margins,
// preserving the paper's requirement that every classifier reports a
// confidence (§6.1).
type SVM struct {
	Config SVMConfig

	weights []float64
	bias    float64
	// Platt scaling parameters: P(y=1|m) = sigmoid(a*m + b).
	plattA, plattB float64
	fitted         bool
}

// NewSVM creates an SVM with the given config.
func NewSVM(cfg SVMConfig) *SVM { return &SVM{Config: cfg} }

// Name implements Classifier.
func (m *SVM) Name() string { return "svm" }

// margin returns w·x + b.
func (m *SVM) margin(x []float64) float64 {
	z := m.bias
	for j, v := range x {
		if j < len(m.weights) && v != 0 {
			z += m.weights[j] * v
		}
	}
	return z
}

// Fit implements Classifier.
func (m *SVM) Fit(d *Dataset) error {
	if d == nil || d.Len() == 0 {
		return ErrEmptyDataset
	}
	rng := rand.New(rand.NewSource(m.Config.Seed))
	w := d.Width()
	m.weights = make([]float64, w)
	m.bias = 0

	batch := int(m.Config.MiniBatchFraction * float64(d.Len()))
	if batch < 1 {
		batch = 1
	}
	grad := make([]float64, w)
	// Polyak tail averaging: the served hyperplane is the mean of the
	// iterates over the last quarter of training, which stabilizes
	// SGD under the decaying step schedule.
	avgStart := m.Config.MaxIterations * 3 / 4
	avgW := make([]float64, w)
	var avgB float64
	avgN := 0
	for t := 1; t <= m.Config.MaxIterations; t++ {
		for j := range grad {
			grad[j] = 0
		}
		gradB := 0.0
		for k := 0; k < batch; k++ {
			i := rng.Intn(d.Len())
			yi := 2.0*float64(d.Y[i]) - 1.0 // {-1, +1}
			if yi*m.margin(d.X[i]) < 1 {
				for j, v := range d.X[i] {
					if v != 0 {
						grad[j] -= yi * v
					}
				}
				gradB -= yi
			}
		}
		lr := m.Config.StepSize / math.Sqrt(float64(t))
		nb := float64(batch)
		for j := range m.weights {
			m.weights[j] -= lr * (grad[j]/nb + m.Config.L2*m.weights[j])
		}
		m.bias -= lr * gradB / nb
		if t > avgStart {
			for j := range avgW {
				avgW[j] += m.weights[j]
			}
			avgB += m.bias
			avgN++
		}
	}
	if avgN > 0 {
		for j := range m.weights {
			m.weights[j] = avgW[j] / float64(avgN)
		}
		m.bias = avgB / float64(avgN)
	}
	m.fitPlatt(d)
	m.fitted = true
	return nil
}

// fitPlatt calibrates P(y=1|margin) with a tiny logistic fit on the
// training margins.
func (m *SVM) fitPlatt(d *Dataset) {
	a, b := 1.0, 0.0
	const iters = 200
	n := float64(d.Len())
	for it := 0; it < iters; it++ {
		var ga, gb float64
		for i, row := range d.X {
			mi := m.margin(row)
			p := sigmoid(a*mi + b)
			err := p - float64(d.Y[i])
			ga += err * mi
			gb += err
		}
		a -= 0.5 * ga / n
		b -= 0.5 * gb / n
	}
	m.plattA, m.plattB = a, b
}

// Proba implements Classifier.
func (m *SVM) Proba(x []float64) [2]float64 {
	if !m.fitted {
		return [2]float64{0.5, 0.5}
	}
	p := sigmoid(m.plattA*m.margin(x) + m.plattB)
	return [2]float64{1 - p, p}
}

// Weights exposes the fitted hyperplane.
func (m *SVM) Weights() ([]float64, float64) { return m.weights, m.bias }
