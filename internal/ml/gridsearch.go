package ml

import (
	"fmt"
	"math/rand"
	"sort"
)

// GridPoint is one hyper-parameter assignment: parameter name →
// value.
type GridPoint map[string]float64

// GridResult records the cross-validated score of one grid point.
type GridResult struct {
	Point GridPoint
	Score float64 // mean validation accuracy
}

// GridSearch evaluates every combination of the parameter grid with
// k-fold cross-validation and returns results sorted best-first. The
// paper tunes all four algorithms this way: "We used grid search to
// tune the hyper parameters" (§5.3.2).
//
// build converts a grid point into a fresh classifier.
func GridSearch(d *Dataset, grid map[string][]float64, k int,
	build func(GridPoint) Classifier, seed int64) ([]GridResult, error) {
	if d == nil || d.Len() == 0 {
		return nil, ErrEmptyDataset
	}
	names := make([]string, 0, len(grid))
	for n := range grid {
		names = append(names, n)
	}
	sort.Strings(names)
	points := expandGrid(names, grid)
	if len(points) == 0 {
		return nil, fmt.Errorf("ml: empty parameter grid")
	}
	folds := d.Folds(k, rand.New(rand.NewSource(seed)))
	results := make([]GridResult, 0, len(points))
	for _, pt := range points {
		var sum float64
		for _, f := range folds {
			c := build(pt)
			if err := c.Fit(f.Train); err != nil {
				return nil, fmt.Errorf("ml: grid point %v: %w", pt, err)
			}
			sum += Accuracy(c, f.Val)
		}
		results = append(results, GridResult{Point: pt, Score: sum / float64(len(folds))})
	}
	sort.SliceStable(results, func(i, j int) bool { return results[i].Score > results[j].Score })
	return results, nil
}

func expandGrid(names []string, grid map[string][]float64) []GridPoint {
	points := []GridPoint{{}}
	for _, name := range names {
		vals := grid[name]
		next := make([]GridPoint, 0, len(points)*len(vals))
		for _, p := range points {
			for _, v := range vals {
				np := make(GridPoint, len(p)+1)
				for k, pv := range p {
					np[k] = pv
				}
				np[name] = v
				next = append(next, np)
			}
		}
		points = next
	}
	return points
}
