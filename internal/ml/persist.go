package ml

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Model persistence: the paper's workflow trains classifiers
// periodically offline ("for example, once per day during idle
// periods", §4.1) and serves them online; that split requires models
// to be saved and reloaded. Every classifier and the schema encoder
// serialize to a self-describing JSON envelope.

// ErrBadModelFile is returned when a persisted model cannot be
// decoded.
var ErrBadModelFile = errors.New("ml: bad model file")

// envelope wraps any persisted model with its kind tag.
type envelope struct {
	Kind  string          `json:"kind"`
	Model json.RawMessage `json:"model"`
}

// flatNode is one serialized tree node; children reference node
// indices (-1 for none).
type flatNode struct {
	Feature   int     `json:"f"`
	Threshold float64 `json:"t"`
	Left      int     `json:"l"`
	Right     int     `json:"r"`
	Prob      float64 `json:"p"`
}

type rfState struct {
	Config RandomForestConfig `json:"config"`
	Trees  [][]flatNode       `json:"trees"`
}

type lrState struct {
	Config  LogisticRegressionConfig `json:"config"`
	Weights []float64                `json:"weights"`
	Bias    float64                  `json:"bias"`
}

type svmState struct {
	Config  SVMConfig `json:"config"`
	Weights []float64 `json:"weights"`
	Bias    float64   `json:"bias"`
	PlattA  float64   `json:"plattA"`
	PlattB  float64   `json:"plattB"`
}

type dnnState struct {
	Config  DNNConfig   `json:"config"`
	Sizes   []int       `json:"sizes"`
	Weights [][]float64 `json:"weights"`
	Biases  [][]float64 `json:"biases"`
}

// SaveClassifier writes a fitted classifier to w.
func SaveClassifier(w io.Writer, c Classifier) error {
	var state any
	switch m := c.(type) {
	case *RandomForest:
		if !m.fitted {
			return ErrNotFitted
		}
		trees := make([][]flatNode, len(m.trees))
		for i, t := range m.trees {
			trees[i] = flattenTree(t)
		}
		state = rfState{Config: m.Config, Trees: trees}
	case *LogisticRegression:
		if !m.fitted {
			return ErrNotFitted
		}
		state = lrState{Config: m.Config, Weights: m.weights, Bias: m.bias}
	case *SVM:
		if !m.fitted {
			return ErrNotFitted
		}
		state = svmState{Config: m.Config, Weights: m.weights, Bias: m.bias,
			PlattA: m.plattA, PlattB: m.plattB}
	case *DNN:
		if !m.fitted {
			return ErrNotFitted
		}
		state = dnnState{Config: m.Config, Sizes: m.sizes,
			Weights: m.weights, Biases: m.biases}
	default:
		return fmt.Errorf("ml: cannot persist classifier %T", c)
	}
	raw, err := json.Marshal(state)
	if err != nil {
		return err
	}
	return json.NewEncoder(w).Encode(envelope{Kind: c.Name(), Model: raw})
}

// LoadClassifier reads a classifier previously written by
// SaveClassifier.
func LoadClassifier(r io.Reader) (Classifier, error) {
	var env envelope
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadModelFile, err)
	}
	switch env.Kind {
	case "rf":
		var st rfState
		if err := json.Unmarshal(env.Model, &st); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadModelFile, err)
		}
		m := NewRandomForest(st.Config)
		m.trees = make([]*treeNode, len(st.Trees))
		for i, flat := range st.Trees {
			t, err := unflattenTree(flat)
			if err != nil {
				return nil, err
			}
			m.trees[i] = t
		}
		m.fitted = true
		return m, nil
	case "lr":
		var st lrState
		if err := json.Unmarshal(env.Model, &st); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadModelFile, err)
		}
		m := NewLogisticRegression(st.Config)
		m.weights = st.Weights
		m.bias = st.Bias
		m.fitted = true
		return m, nil
	case "svm":
		var st svmState
		if err := json.Unmarshal(env.Model, &st); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadModelFile, err)
		}
		m := NewSVM(st.Config)
		m.weights = st.Weights
		m.bias = st.Bias
		m.plattA, m.plattB = st.PlattA, st.PlattB
		m.fitted = true
		return m, nil
	case "dnn":
		var st dnnState
		if err := json.Unmarshal(env.Model, &st); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadModelFile, err)
		}
		if err := validateDNNState(&st); err != nil {
			return nil, err
		}
		m := NewDNN(st.Config)
		m.sizes = st.Sizes
		m.weights = st.Weights
		m.biases = st.Biases
		m.fitted = true
		return m, nil
	default:
		return nil, fmt.Errorf("%w: unknown kind %q", ErrBadModelFile, env.Kind)
	}
}

func validateDNNState(st *dnnState) error {
	nLayers := len(st.Sizes) - 1
	if nLayers < 1 || len(st.Weights) != nLayers || len(st.Biases) != nLayers {
		return fmt.Errorf("%w: inconsistent DNN layers", ErrBadModelFile)
	}
	for l := 0; l < nLayers; l++ {
		if len(st.Weights[l]) != st.Sizes[l]*st.Sizes[l+1] ||
			len(st.Biases[l]) != st.Sizes[l+1] {
			return fmt.Errorf("%w: DNN layer %d shape", ErrBadModelFile, l)
		}
	}
	return nil
}

// flattenTree serializes a tree into an index-linked node list
// (preorder; root at index 0).
func flattenTree(root *treeNode) []flatNode {
	var out []flatNode
	var walk func(n *treeNode) int
	walk = func(n *treeNode) int {
		idx := len(out)
		out = append(out, flatNode{Feature: n.feature, Threshold: n.threshold,
			Left: -1, Right: -1, Prob: n.prob})
		if n.feature >= 0 {
			l := walk(n.left)
			r := walk(n.right)
			out[idx].Left = l
			out[idx].Right = r
		}
		return idx
	}
	walk(root)
	return out
}

func unflattenTree(flat []flatNode) (*treeNode, error) {
	if len(flat) == 0 {
		return nil, fmt.Errorf("%w: empty tree", ErrBadModelFile)
	}
	nodes := make([]*treeNode, len(flat))
	for i, f := range flat {
		nodes[i] = &treeNode{feature: f.Feature, threshold: f.Threshold, prob: f.Prob}
	}
	for i, f := range flat {
		if f.Feature < 0 {
			continue
		}
		if f.Left < 0 || f.Left >= len(nodes) || f.Right < 0 || f.Right >= len(nodes) {
			return nil, fmt.Errorf("%w: tree node %d has bad children", ErrBadModelFile, i)
		}
		nodes[i].left = nodes[f.Left]
		nodes[i].right = nodes[f.Right]
	}
	return nodes[0], nil
}

// encoderState is the persisted form of a SchemaEncoder.
type encoderState struct {
	Cols   []ColumnSpec `json:"cols"`
	Values [][]string   `json:"values"` // per categorical column, nil for numeric
	Fitted bool         `json:"fitted"`
}

// SaveEncoder writes a fitted schema encoder to w.
func (e *SchemaEncoder) Save(w io.Writer) error {
	st := encoderState{Cols: e.cols, Values: make([][]string, len(e.cols)), Fitted: e.fitted}
	for i, ind := range e.indexers {
		if ind != nil {
			st.Values[i] = append([]string(nil), ind.values...)
		}
	}
	return json.NewEncoder(w).Encode(st)
}

// LoadEncoder reads a schema encoder previously written by Save.
func LoadEncoder(r io.Reader) (*SchemaEncoder, error) {
	var st encoderState
	if err := json.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadModelFile, err)
	}
	if len(st.Values) != len(st.Cols) {
		return nil, fmt.Errorf("%w: encoder columns mismatch", ErrBadModelFile)
	}
	e := NewSchemaEncoder(st.Cols)
	for i, vals := range st.Values {
		if e.indexers[i] == nil {
			if vals != nil {
				return nil, fmt.Errorf("%w: numeric column %d has vocabulary", ErrBadModelFile, i)
			}
			continue
		}
		for _, v := range vals {
			e.indexers[i].Fit(v)
		}
	}
	e.fitted = st.Fitted
	return e, nil
}
