package core

import (
	"testing"
	"time"

	"alarmverify/internal/alarm"
	"alarmverify/internal/broker"
	"alarmverify/internal/codec"
	"alarmverify/internal/dataset"
	"alarmverify/internal/docstore"
	"alarmverify/internal/ml"
	"alarmverify/internal/risk"
	"alarmverify/internal/textproc"
)

func testWorld() *dataset.World {
	gaz := risk.NewGazetteer(risk.GazetteerConfig{
		NumPlaces:      200,
		NumBigCities:   6,
		MaxZIPsPerCity: 4,
		Seed:           11,
	})
	return dataset.NewWorldWith(gaz, 11)
}

func testAlarms(n int) (*dataset.World, []alarm.Alarm) {
	w := testWorld()
	cfg := dataset.DefaultSitasysConfig()
	cfg.NumAlarms = n
	cfg.NumDevices = 300
	cfg.PayloadBytes = 0
	return w, dataset.GenerateSitasys(w, cfg)
}

// fastVerifier trains a small random forest quickly.
func fastVerifier(t testing.TB, history []alarm.Alarm) *Verifier {
	t.Helper()
	rfCfg := ml.DefaultRandomForestConfig()
	rfCfg.NumTrees = 12
	rfCfg.MaxDepth = 12
	cfg := DefaultVerifierConfig()
	cfg.Classifier = ml.NewRandomForest(rfCfg)
	v, err := Train(history, cfg)
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	return v
}

func TestNewClassifierCoversAllAlgorithms(t *testing.T) {
	for _, a := range Algorithms() {
		c, err := NewClassifier(a)
		if err != nil {
			t.Errorf("%s: %v", a, err)
		}
		if c == nil || c.Name() != string(a) {
			t.Errorf("%s: classifier name %q", a, c.Name())
		}
	}
	if _, err := NewClassifier("boosted-stumps"); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestTrainAndVerify(t *testing.T) {
	_, alarms := testAlarms(6000)
	v := fastVerifier(t, alarms[:4000])
	st := v.Stats()
	if st.TrainRecords != 4000 || st.Features == 0 || st.TrainTime <= 0 {
		t.Errorf("stats = %+v", st)
	}
	ver, err := v.Verify(&alarms[5000])
	if err != nil {
		t.Fatal(err)
	}
	if ver.Probability < 0.5 || ver.Probability > 1 {
		t.Errorf("confidence %f outside [0.5, 1]", ver.Probability)
	}
	if ver.ModelName != "rf" || ver.AlarmID != alarms[5000].ID {
		t.Errorf("verification = %+v", ver)
	}
	cm, err := v.EvaluateHoldout(alarms[4000:])
	if err != nil {
		t.Fatal(err)
	}
	if cm.Accuracy() < 0.75 {
		t.Errorf("holdout accuracy %.3f too low", cm.Accuracy())
	}
}

func TestTrainRejectsEmpty(t *testing.T) {
	if _, err := Train(nil, DefaultVerifierConfig()); err == nil {
		t.Error("empty history accepted")
	}
}

func TestVerifyHandlesUnseenCategories(t *testing.T) {
	_, alarms := testAlarms(2000)
	v := fastVerifier(t, alarms)
	novel := alarms[0]
	novel.ZIP = "9999"            // never seen
	novel.SensorType = "lidar-x1" // future sensor
	if _, err := v.Verify(&novel); err != nil {
		t.Fatalf("unseen categories must not fail: %v", err)
	}
}

func TestVerifierWithRiskFeature(t *testing.T) {
	w, alarms := testAlarms(3000)
	var incidents []textproc.Incident
	for _, p := range w.Gaz.Places()[:30] {
		incidents = append(incidents, textproc.Incident{
			Location: p.Name, Topic: textproc.TopicFire,
		})
	}
	model := risk.BuildModel(w.Gaz, incidents)
	cfg := DefaultVerifierConfig()
	rfCfg := ml.DefaultRandomForestConfig()
	rfCfg.NumTrees = 10
	rfCfg.MaxDepth = 10
	cfg.Classifier = ml.NewRandomForest(rfCfg)
	cfg.Risk = model
	cfg.RiskKind = risk.Normalized
	v, err := Train(alarms, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Verify(&alarms[0]); err != nil {
		t.Fatal(err)
	}
}

func TestHistoryHistogram(t *testing.T) {
	db := docstore.NewDB()
	h, err := NewHistory(db)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 48; i++ {
		h.Record(&alarm.Alarm{
			ID:        int64(i + 1),
			DeviceMAC: "dev-a",
			ZIP:       "8000",
			Timestamp: base.Add(time.Duration(i) * time.Hour),
			Duration:  30,
		})
	}
	h.Record(&alarm.Alarm{ID: 100, DeviceMAC: "dev-b", ZIP: "8001",
		Timestamp: base, Duration: 400})

	buckets, err := h.DeviceHistogram("dev-a", base, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(buckets) != 2 {
		t.Fatalf("buckets = %d, want 2 days", len(buckets))
	}
	for i, b := range buckets {
		if b.Count != 24 {
			t.Errorf("day %d count = %d, want 24", i, b.Count)
		}
	}
	// Device filter must exclude dev-b.
	buckets, _ = h.DeviceHistogram("dev-b", base, 24*time.Hour)
	if len(buckets) != 1 || buckets[0].Count != 1 {
		t.Errorf("dev-b histogram = %v", buckets)
	}
	// Since filter.
	buckets, _ = h.DeviceHistogram("dev-a", base.Add(24*time.Hour), 24*time.Hour)
	if len(buckets) != 1 {
		t.Errorf("since filter broken: %v", buckets)
	}
	byLoc, err := h.CountByLocation()
	if err != nil {
		t.Fatal(err)
	}
	if byLoc["8000"] != 48 || byLoc["8001"] != 1 {
		t.Errorf("counts by location = %v", byLoc)
	}
	trueCounts, err := h.TrueAlarmCountsByZIP(time.Minute, "")
	if err != nil {
		t.Fatal(err)
	}
	if trueCounts["8001"] != 1 || trueCounts["8000"] != 0 {
		t.Errorf("true counts = %v", trueCounts)
	}
}

func TestEndToEndProducerConsumer(t *testing.T) {
	_, alarms := testAlarms(4000)
	v := fastVerifier(t, alarms[:2000])

	b := broker.New()
	topic, err := b.CreateTopic("alarms", 4)
	if err != nil {
		t.Fatal(err)
	}
	prod := NewProducerApp(topic, codec.FastCodec{})
	prod.Threads = 2
	stats, err := prod.Replay(alarms[2000:], 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sent != 2000 {
		t.Fatalf("sent %d", stats.Sent)
	}

	db := docstore.NewDB()
	h, err := NewHistory(db)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConsumerConfig()
	cfg.Workers = 4
	cons, err := NewConsumerApp(b, "alarms", "verify", "c1", v, h, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cons.Close()
	n, err := cons.ProcessBatches(1)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2000 {
		t.Fatalf("processed %d alarms, want 2000", n)
	}
	if got := len(cons.Verified()); got != 2000 {
		t.Fatalf("verifications = %d", got)
	}
	if h.Len() != 2000 {
		t.Fatalf("history holds %d alarms", h.Len())
	}
	times := cons.Times()
	if times.ML <= 0 || times.Deserialize <= 0 {
		t.Errorf("component times not recorded: %+v", times)
	}
	if cons.Throughput() <= 0 {
		t.Error("throughput not positive")
	}
}

func TestConsumerExactlyOnceAcrossRestart(t *testing.T) {
	_, alarms := testAlarms(1000)
	v := fastVerifier(t, alarms[:500])
	b := broker.New()
	topic, _ := b.CreateTopic("alarms", 2)
	prod := NewProducerApp(topic, codec.FastCodec{})
	if _, err := prod.Replay(alarms[500:], 0); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConsumerConfig()
	cfg.Workers = 2
	cfg.MaxPerBatch = 200
	c1, err := NewConsumerApp(b, "alarms", "g", "c1", v, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n1, err := c1.ProcessBatches(1) // processes and commits 200
	if err != nil {
		t.Fatal(err)
	}
	c1.Close()
	// "Restart": a new consumer in the same group picks up from the
	// committed offsets.
	c2, err := NewConsumerApp(b, "alarms", "g", "c2", v, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	total := n1
	for i := 0; i < 10 && total < 500; i++ {
		n, err := c2.ProcessBatches(1)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
		total += n
	}
	if total != 500 {
		t.Fatalf("exactly-once violated: %d alarms processed in total", total)
	}
}

func TestCachingAvoidsDoubleDeserialization(t *testing.T) {
	_, alarms := testAlarms(3000)
	v := fastVerifier(t, alarms[:1000])
	run := func(cache bool) time.Duration {
		b := broker.New()
		topic, _ := b.CreateTopic("alarms", 2)
		prod := NewProducerApp(topic, codec.ReflectCodec{})
		if _, err := prod.Replay(alarms[1000:], 0); err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConsumerConfig()
		cfg.Codec = codec.ReflectCodec{}
		cfg.Workers = 2
		cfg.CacheDecoded = cache
		cons, err := NewConsumerApp(b, "alarms", "g", "c", v, nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer cons.Close()
		if _, err := cons.ProcessBatches(1); err != nil {
			t.Fatal(err)
		}
		return cons.Times().Total()
	}
	// The uncached consumer must do strictly more work; timing noise
	// makes exact ratios flaky, so only sanity-check both complete.
	cached := run(true)
	uncached := run(false)
	if cached <= 0 || uncached <= 0 {
		t.Fatalf("times: cached=%v uncached=%v", cached, uncached)
	}
	t.Logf("cached=%v uncached=%v", cached, uncached)
}

func TestCustomerPolicyRouting(t *testing.T) {
	p := DefaultCustomerPolicy()
	mk := func(typ alarm.Type, pred alarm.Label, prob float64) (alarm.Alarm, alarm.Verification) {
		return alarm.Alarm{Type: typ}, alarm.Verification{Predicted: pred, Probability: prob}
	}
	a, ver := mk(alarm.TypeIntrusion, alarm.True, 0.95)
	if got := p.Decide(&a, ver); got != RouteToARC {
		t.Errorf("confident true → %s, want arc", got)
	}
	a, ver = mk(alarm.TypeIntrusion, alarm.True, 0.6)
	if got := p.Decide(&a, ver); got != RouteToCustomer {
		t.Errorf("uncertain true → %s, want customer", got)
	}
	a, ver = mk(alarm.TypeIntrusion, alarm.False, 0.9)
	if got := p.Decide(&a, ver); got != RouteToCustomer {
		t.Errorf("likely false → %s, want customer", got)
	}
	p.SuppressTechnical = true
	a, ver = mk(alarm.TypeTechnical, alarm.True, 0.99)
	if got := p.Decide(&a, ver); got != RouteSuppressed {
		t.Errorf("technical with suppression → %s, want suppressed", got)
	}
}

func TestOperatorQueuePriority(t *testing.T) {
	q := NewOperatorQueue()
	push := func(id int64, pred alarm.Label, prob float64) {
		q.Push(alarm.Alarm{ID: id},
			alarm.Verification{AlarmID: id, Predicted: pred, Probability: prob})
	}
	push(1, alarm.False, 0.9) // P(true) = 0.1
	push(2, alarm.True, 0.7)
	push(3, alarm.True, 0.99)
	push(4, alarm.False, 0.55) // P(true) = 0.45
	if q.Len() != 4 {
		t.Fatalf("len = %d", q.Len())
	}
	wantOrder := []int64{3, 2, 4, 1}
	for i, want := range wantOrder {
		it, ok := q.Pop()
		if !ok || it.Alarm.ID != want {
			t.Fatalf("pop %d = %v, want id %d", i, it, want)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Error("pop from empty queue succeeded")
	}
}

func TestOperatorQueueFIFOWithinPriority(t *testing.T) {
	q := NewOperatorQueue()
	for i := int64(1); i <= 3; i++ {
		q.Push(alarm.Alarm{ID: i},
			alarm.Verification{AlarmID: i, Predicted: alarm.True, Probability: 0.8})
		time.Sleep(time.Millisecond)
	}
	for want := int64(1); want <= 3; want++ {
		it, _ := q.Pop()
		if it.Alarm.ID != want {
			t.Fatalf("equal-priority order broken: got %d want %d", it.Alarm.ID, want)
		}
	}
}
