package core

import (
	"bytes"
	"strings"
	"testing"

	"alarmverify/internal/ml"
	"alarmverify/internal/risk"
	"alarmverify/internal/textproc"
)

func TestVerifierSaveLoadRoundTrip(t *testing.T) {
	_, alarms := testAlarms(3000)
	v := fastVerifier(t, alarms[:2000])

	var buf bytes.Buffer
	if err := v.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadVerifier(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.DeltaT() != v.DeltaT() {
		t.Errorf("delta-t changed: %v -> %v", v.DeltaT(), loaded.DeltaT())
	}
	if loaded.Stats().TrainRecords != v.Stats().TrainRecords {
		t.Errorf("stats lost: %+v", loaded.Stats())
	}
	// Identical verifications after reload.
	for i := 2000; i < 2100; i++ {
		a, err1 := v.Verify(&alarms[i])
		b, err2 := loaded.Verify(&alarms[i])
		if err1 != nil || err2 != nil {
			t.Fatalf("verify: %v %v", err1, err2)
		}
		if a.Predicted != b.Predicted || a.Probability != b.Probability {
			t.Fatalf("alarm %d verification changed after reload: %+v vs %+v",
				alarms[i].ID, a, b)
		}
	}
}

func TestVerifierSaveLoadWithRisk(t *testing.T) {
	w, alarms := testAlarms(2000)
	var incidents []textproc.Incident
	for _, p := range w.Gaz.Places()[:15] {
		incidents = append(incidents, textproc.Incident{Location: p.Name, Topic: textproc.TopicFire})
	}
	model := risk.BuildModel(w.Gaz, incidents)
	cfg := DefaultVerifierConfig()
	rf := ml.DefaultRandomForestConfig()
	rf.NumTrees = 6
	rf.MaxDepth = 8
	cfg.Classifier = ml.NewRandomForest(rf)
	cfg.Risk = model
	cfg.RiskKind = risk.Binary
	v, err := Train(alarms, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := v.Save(&buf); err != nil {
		t.Fatal(err)
	}
	saved := buf.Bytes()
	// Without a risk model the load must refuse.
	if _, err := LoadVerifier(bytes.NewReader(saved), nil); err == nil {
		t.Error("risk-trained verifier loaded without a risk model")
	}
	loaded, err := LoadVerifier(bytes.NewReader(saved), model)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := v.Verify(&alarms[0])
	b, err := loaded.Verify(&alarms[0])
	if err != nil {
		t.Fatal(err)
	}
	if a.Predicted != b.Predicted || a.Probability != b.Probability {
		t.Errorf("risk verifier changed after reload: %+v vs %+v", a, b)
	}
}

func TestLoadVerifierRejectsGarbage(t *testing.T) {
	if _, err := LoadVerifier(strings.NewReader("junk"), nil); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := LoadVerifier(strings.NewReader(`{"encoder":"x","classifier":"y"}`), nil); err == nil {
		t.Error("malformed inner payloads accepted")
	}
}
