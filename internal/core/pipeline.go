package core

import (
	"sync"
	"time"

	"alarmverify/internal/alarm"
	"alarmverify/internal/broker"
	"alarmverify/internal/stream"
)

// Batch carries one micro-batch through the composable pipeline
// stages Drain → Decode → Classify → Persist. The stages are the
// Figure 3 workflow split along the paper's component boundaries
// (Figure 12): Decode is the streaming component (deserialization +
// distinct devices), Classify the ML component, Persist the batch
// component (history ingest + per-device histograms).
//
// A Batch is owned by exactly one stage at a time, so the sharded
// service (internal/serve) can run stages of consecutive batches
// concurrently without locking: only Persist folds the finished batch
// into the app's shared accounting, under the app mutex, which keeps
// the ComponentTimes bookkeeping concurrency-safe under pipelining.
type Batch struct {
	// Raw is the drained record RDD (one partition per broker
	// partition, the Direct-DStream mapping).
	Raw *stream.RDD[broker.Record]
	// Offsets snapshots the consumer positions right after the drain;
	// CommitBatch makes exactly these durable once the batch has been
	// fully persisted, preserving the exactly-once contract even when
	// later batches have already advanced the live positions.
	Offsets map[int]int64

	// Alarms are the decoded, filtered alarms of the batch.
	Alarms []alarm.Alarm
	// Decoded is the (cached) alarm RDD. Decode derives the distinct
	// devices from it, and Classify re-collects it when caching is
	// disabled — recomputing the deserialization lineage, the §6.2
	// pitfall the cache ablation measures.
	Decoded *stream.RDD[alarm.Alarm]
	// Devices are the distinct alarming devices of the window (§4.1).
	Devices []alarm.Alarm

	// Verified holds one verification per alarm after Classify.
	Verified []alarm.Verification
	// Times is this batch's component breakdown; stages fill in their
	// own component only.
	Times ComponentTimes
}

// Len returns the number of decoded alarms in the batch.
func (b *Batch) Len() int { return len(b.Alarms) }

// Drain pulls one micro-batch of raw records off the broker and
// snapshots the consumer positions that CommitBatch will later make
// durable. Drain must not be called concurrently with itself (one
// intake goroutine per consumer).
func (c *ConsumerApp) Drain() *Batch {
	raw := c.source.Batch()
	return &Batch{Raw: raw, Offsets: c.consumer.Positions()}
}

// Decode is the streaming component: it deserializes the wire records
// into alarms (caching the decoded RDD unless the §6.2 pitfall is
// being reproduced), feeds the anomaly monitor, and extracts the
// window's distinct alarming devices.
func (c *ConsumerApp) Decode(b *Batch) {
	start := time.Now()
	decoded := stream.Map(b.Raw, func(r broker.Record) alarm.Alarm {
		var a alarm.Alarm
		// Decoding errors surface as zero alarms; production systems
		// would dead-letter them. The filter below drops them.
		_ = c.cfg.Codec.Unmarshal(r.Value, &a)
		return a
	})
	decoded = stream.Filter(decoded, func(a alarm.Alarm) bool { return a.ID != 0 })
	if c.cfg.CacheDecoded {
		decoded = decoded.Cache()
	}
	// Materialize once to attribute deserialization time fairly.
	b.Alarms = decoded.Collect(c.pool)
	b.Decoded = decoded
	b.Times.Deserialize = time.Since(start)

	// Feed the anomaly monitor before any per-alarm work: spike
	// alerts should not wait for classification.
	if c.cfg.Anomaly != nil && len(b.Alarms) > 0 {
		c.cfg.Anomaly.Observe(b.Alarms[0].Timestamp, b.Alarms)
	}

	start = time.Now()
	b.Devices = stream.Distinct(b.Decoded,
		func(a alarm.Alarm) string { return a.DeviceMAC }, c.pool).Collect(c.pool)
	b.Times.Streaming = time.Since(start)
}

// Classify is the machine-learning component: the batch's alarms are
// split into ClassifyBatch-sized chunks and each chunk is verified
// through the vectorized batch path on the app's dedicated bounded
// classify pool. Chunk k writes the disjoint region
// [k·chunk, (k+1)·chunk) of b.Verified, so results stay in batch
// order without any post-hoc merge, and because the classify pool is
// separate from the executor pool, the sharded pipeline overlaps
// this stage with decode and persist of neighboring batches. The
// verifier's model snapshot is pinned once for the whole micro-batch
// — not per chunk — so a concurrent hot swap (Verifier.Swap) can
// never split one batch's verifications across two models.
func (c *ConsumerApp) Classify(b *Batch) error {
	start := time.Now()
	alarms := b.Alarms
	if !c.cfg.CacheDecoded && b.Decoded != nil {
		// §6.2 pitfall reproduction: without caching, reusing the
		// decoded stream in the ML stage recomputes its lineage — a
		// full re-deserialization, exactly the double work the paper's
		// pre-fix consumer paid.
		alarms = b.Decoded.Collect(c.pool)
	}
	n := len(alarms)
	b.Verified = make([]alarm.Verification, n)
	if n == 0 {
		b.Times.ML = time.Since(start)
		return nil
	}
	chunk := c.cfg.ClassifyBatch
	nChunks := (n + chunk - 1) / chunk
	snap := c.verifier.snap.Load()
	var errMu sync.Mutex
	var firstErr error
	c.classify.Run(nChunks, func(k int) {
		lo := k * chunk
		hi := min(lo+chunk, n)
		if err := snap.verifyBatchInto(alarms[lo:hi], b.Verified[lo:hi]); err != nil {
			errMu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			errMu.Unlock()
		}
	})
	if firstErr != nil {
		b.Verified = nil
		return firstErr
	}
	b.Times.ML = time.Since(start)
	return nil
}

// Persist is the batch component: it ingests the batch into the alarm
// history through the batched write path (with write-behind enabled
// on the history, RecordBatch only enqueues and the flusher coalesces
// batches from all shards into one store round-trip), runs each
// alarming device's histogram query — which barriers on the
// write-behind queue, so it observes this batch's own alarms — and
// folds the finished batch into the app's accounting. It is the final
// stage; a batch must not be committed before Persist returns. Note
// Times.Ingest measures the enqueue under write-behind; the flush
// wait lands in Times.History.
func (c *ConsumerApp) Persist(b *Batch) error {
	if c.history != nil {
		start := time.Now()
		c.history.RecordBatch(b.Alarms)
		b.Times.Ingest = time.Since(start)

		start = time.Now()
		var since time.Time
		if len(b.Alarms) > 0 {
			since = b.Alarms[0].Timestamp.Add(-c.cfg.HistogramSince)
		}
		for i := range b.Devices {
			if _, err := c.history.DeviceHistogram(b.Devices[i].DeviceMAC, since, c.cfg.HistogramBucket); err != nil {
				return err
			}
		}
		// Durability barrier: CommitBatch must never run before this
		// batch's documents are out of the write-behind queue, or a
		// crash after commit would lose acknowledged alarms. The
		// histogram queries above already flush as a side effect; this
		// makes the committed-implies-durable guarantee structural.
		c.history.Flush()
		b.Times.History = time.Since(start)
	}

	c.mu.Lock()
	c.times.Add(b.Times)
	c.batches++
	c.records += len(b.Alarms)
	c.verified = append(c.verified, b.Verified...)
	c.mu.Unlock()
	return nil
}

// CommitBatch durably commits the offsets captured when b was
// drained. Commits are fenced by the group generation: after a
// rebalance they fail with broker.ErrRebalanceStale and the successor
// resumes from the last durable commit (at-least-once across
// membership changes, exactly-once under stable membership).
func (c *ConsumerApp) CommitBatch(b *Batch) error {
	if len(b.Offsets) == 0 {
		return nil
	}
	return c.consumer.CommitOffsets(b.Offsets)
}

// Rebalances exposes the consumer's rebalance-notification channel: a
// signal means the shard's partition assignment is stale and should be
// refreshed once in-flight batches have drained.
func (c *ConsumerApp) Rebalances() <-chan struct{} { return c.consumer.Rebalances() }

// RefreshAssignment re-runs partition assignment after a group
// membership change; positions reset to the committed offsets.
func (c *ConsumerApp) RefreshAssignment() error { return c.consumer.RefreshAssignment() }

// Assignment returns the broker partitions currently owned by this
// consumer.
func (c *ConsumerApp) Assignment() []int { return c.consumer.Assignment() }

// Committed returns the group's committed offset for each partition
// assigned to this consumer.
func (c *ConsumerApp) Committed() map[int]int64 { return c.consumer.Committed() }

// Lag returns how many records sit between the consumer's positions
// and the high watermarks of its partitions.
func (c *ConsumerApp) Lag() (int64, error) { return c.consumer.Lag() }
