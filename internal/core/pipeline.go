package core

import (
	"sync"
	"time"

	"alarmverify/internal/alarm"
	"alarmverify/internal/broker"
	"alarmverify/internal/metrics"
	"alarmverify/internal/stream"
)

// Batch carries one micro-batch through the composable pipeline
// stages Drain → Decode → Classify → Persist. The stages are the
// Figure 3 workflow split along the paper's component boundaries
// (Figure 12): Decode is the streaming component (deserialization +
// distinct devices), Classify the ML component, Persist the batch
// component (history ingest + per-device histograms).
//
// A Batch is owned by exactly one stage at a time, so the sharded
// service (internal/serve) can run stages of consecutive batches
// concurrently without locking: only Persist folds the finished batch
// into the app's shared accounting, under the app mutex, which keeps
// the ComponentTimes bookkeeping concurrency-safe under pipelining.
type Batch struct {
	// Raw is the drained record RDD (one partition per broker
	// partition, the Direct-DStream mapping).
	Raw *stream.RDD[broker.Record]
	// Offsets snapshots the consumer positions right after the drain;
	// CommitBatch makes exactly these durable once the batch has been
	// fully persisted, preserving the exactly-once contract even when
	// later batches have already advanced the live positions.
	Offsets map[int]int64

	// Alarms are the decoded, filtered alarms of the batch.
	Alarms []alarm.Alarm
	// Decoded is the (cached) alarm RDD. Decode derives the distinct
	// devices from it, and Classify re-collects it when caching is
	// disabled — recomputing the deserialization lineage, the §6.2
	// pitfall the cache ablation measures.
	Decoded *stream.RDD[alarm.Alarm]
	// Devices are the distinct alarming devices of the window (§4.1).
	Devices []alarm.Alarm

	// Verified holds one verification per alarm after Classify.
	Verified []alarm.Verification
	// Times is this batch's component breakdown; stages fill in their
	// own component only.
	Times ComponentTimes

	// DrainedAt timestamps the drain — the moment the batch left the
	// broker queue and entered the pipeline.
	DrainedAt time.Time
	// Enqueued holds each raw record's broker timestamp (collected by
	// Decode when latency metrics are attached); CommitBatch turns
	// them into per-record end-to-end latencies, so the e2e histogram
	// includes the queueing delay that dominates under overload.
	Enqueued []time.Time
	// Shed marks a batch dropped by load shedding: Classify and
	// Persist are skipped, but its offsets are still committed so the
	// backlog drains instead of being redelivered.
	Shed bool

	// The remaining fields are the reusable scratch of the zero-copy
	// drain path (see Drain): raw records whose Value bytes borrow from
	// broker arena memory under leases, reused across batches through
	// the app's batch pool. They are populated only on pooled batches.
	recs   []broker.Record
	parts  [][]broker.Record
	leases []*broker.Lease
	seen   map[string]struct{} // distinct-device scratch
	macs   []string            // histogram-query scratch
	pooled bool
}

// Len returns the number of decoded alarms in the batch.
func (b *Batch) Len() int { return len(b.Alarms) }

// Drain pulls one micro-batch of raw records off the broker and
// snapshots the consumer positions that CommitBatch will later make
// durable. Drain must not be called concurrently with itself (one
// intake goroutine per consumer); under adaptive batching it is also
// the single writer of the source's per-drain record bound.
//
// When the codec supports scratch decoding (and decoded batches are
// cached — the optimized configuration), Drain takes the zero-copy
// hot path: records land in a pooled batch's reusable scratch and
// their payload bytes are borrowed from the broker's segment arenas
// under leases instead of being copied out. Such a batch must be
// returned through ReleaseBatch once it has fully left the pipeline.
// With CacheDecoded off (the §6.2 ablation) or a codec without a
// scratch path, Drain falls back to the copying RDD path.
func (c *ConsumerApp) Drain() *Batch {
	if c.cfg.AdaptiveBatch {
		c.source.MaxPerBatch = int(c.batchLimit.Load())
	}
	if c.scratch == nil {
		raw := c.source.Batch()
		b := &Batch{Raw: raw, Offsets: c.consumer.Positions(), DrainedAt: time.Now()}
		if c.cfg.AdaptiveBatch {
			c.adaptBatch(raw.Count(c.pool))
		}
		return b
	}
	b := c.getBatch()
	b.recs, b.leases = c.source.DrainLeased(b.recs, b.leases)
	// Raw stays observable (overload accounting reads it) as a
	// single-partition view over the drained scratch; the fast decode
	// below never materializes it.
	b.parts = append(b.parts, b.recs)
	b.Raw = stream.FromPartitions(b.parts)
	b.Offsets = c.consumer.PositionsInto(b.Offsets)
	b.DrainedAt = time.Now()
	if c.cfg.AdaptiveBatch {
		c.adaptBatch(len(b.recs))
	}
	return b
}

// adaptBatch resizes the next drain's record bound from how full this
// drain came back: a saturated drain means records are queueing in
// the broker, so the batch doubles (amortizing per-batch costs —
// commit round-trips, channel hops, histogram queries — exactly when
// throughput matters); a mostly-empty drain halves it back toward the
// floor so idle-period batches stay small and first-record latency
// stays low.
func (c *ConsumerApp) adaptBatch(drained int) {
	limit := c.batchLimit.Load()
	switch {
	case drained >= int(limit):
		next := limit * 2
		if max := int64(c.cfg.MaxPerBatch); next > max {
			next = max
		}
		c.batchLimit.Store(next)
	case drained < int(limit)/4:
		next := limit / 2
		if min := int64(c.cfg.AdaptiveMinBatch); next < min {
			next = min
		}
		c.batchLimit.Store(next)
	}
}

// BatchLimit returns the current adaptive drain bound (the configured
// MaxPerBatch when adaptive batching is off).
func (c *ConsumerApp) BatchLimit() int {
	if !c.cfg.AdaptiveBatch {
		return c.cfg.MaxPerBatch
	}
	return int(c.batchLimit.Load())
}

// MarkShed flags the batch as dropped by load shedding and counts its
// records. The serve pipeline skips Classify and Persist for shed
// batches but still commits their offsets — shedding must drain the
// backlog, not hide it for redelivery.
func (c *ConsumerApp) MarkShed(b *Batch) {
	b.Shed = true
	if m := c.cfg.Metrics; m != nil {
		m.AddShed(b.Len())
	}
}

// Decode is the streaming component: it deserializes the wire records
// into alarms (caching the decoded RDD unless the §6.2 pitfall is
// being reproduced), feeds the anomaly monitor, and extracts the
// window's distinct alarming devices. Pooled batches from the
// zero-copy drain take the scratch decode path; RDD batches take the
// copying path, byte-for-byte equivalent (the codec equivalence
// property tests pin this).
func (c *ConsumerApp) Decode(b *Batch) {
	if b.pooled {
		c.decodeScratch(b)
		return
	}
	start := time.Now()
	decoded := stream.Map(b.Raw, func(r broker.Record) alarm.Alarm {
		var a alarm.Alarm
		// Decoding errors surface as zero alarms; production systems
		// would dead-letter them. The filter below drops them.
		_ = c.cfg.Codec.Unmarshal(r.Value, &a)
		return a
	})
	decoded = stream.Filter(decoded, func(a alarm.Alarm) bool { return a.ID != 0 })
	if c.cfg.CacheDecoded {
		decoded = decoded.Cache()
	}
	// Materialize once to attribute deserialization time fairly.
	b.Alarms = decoded.Collect(c.pool)
	b.Decoded = decoded
	b.Times.Deserialize = time.Since(start)

	// Feed the anomaly monitor before any per-alarm work: spike
	// alerts should not wait for classification.
	if c.cfg.Anomaly != nil && len(b.Alarms) > 0 {
		c.cfg.Anomaly.Observe(b.Alarms[0].Timestamp, b.Alarms)
	}

	start = time.Now()
	b.Devices = stream.Distinct(b.Decoded,
		func(a alarm.Alarm) string { return a.DeviceMAC }, c.pool).Collect(c.pool)
	b.Times.Streaming = time.Since(start)

	if m := c.cfg.Metrics; m != nil {
		// Keep the raw enqueue timestamps for the e2e measurement at
		// commit time. Undecodable records count too: they spent the
		// same time in the queue.
		b.Enqueued = stream.Map(b.Raw, func(r broker.Record) time.Time {
			return r.Timestamp
		}).Collect(c.pool)
		m.Stage(metrics.StageDecode).Record(b.Times.Deserialize + b.Times.Streaming)
	}
}

// decodeScratch is Decode's zero-copy twin for pooled batches: it
// deserializes straight out of the leased record views into the
// batch's reusable alarm scratch (string fields are interned through
// the app's codec scratch, so steady-state decode performs no heap
// allocation), then extracts the distinct devices with a reusable
// seen-set instead of a shuffle. Records the copying path would
// filter out — decode errors and zero IDs — are dropped identically:
// the copying codec leaves the alarm untouched on any error, so its
// filter (ID != 0) reduces to exactly this predicate.
//
//alarmvet:hotpath
func (c *ConsumerApp) decodeScratch(b *Batch) {
	start := time.Now()
	alarms := b.Alarms
	for i := range b.recs {
		if len(alarms) < cap(alarms) {
			alarms = alarms[:len(alarms)+1]
		} else {
			alarms = append(alarms, alarm.Alarm{})
		}
		slot := &alarms[len(alarms)-1]
		if err := c.scratch.UnmarshalScratch(b.recs[i].Value, slot, c.sc); err != nil || slot.ID == 0 {
			alarms = alarms[:len(alarms)-1]
		}
	}
	b.Alarms = alarms
	b.Times.Deserialize = time.Since(start)

	if c.cfg.Anomaly != nil && len(b.Alarms) > 0 {
		c.cfg.Anomaly.Observe(b.Alarms[0].Timestamp, b.Alarms)
	}

	start = time.Now()
	devices := b.Devices
	for i := range b.Alarms {
		mac := b.Alarms[i].DeviceMAC
		if _, ok := b.seen[mac]; !ok {
			b.seen[mac] = struct{}{}
			devices = append(devices, b.Alarms[i])
		}
	}
	b.Devices = devices
	b.Times.Streaming = time.Since(start)

	if m := c.cfg.Metrics; m != nil {
		enq := b.Enqueued
		for i := range b.recs {
			enq = append(enq, b.recs[i].Timestamp)
		}
		b.Enqueued = enq
		m.Stage(metrics.StageDecode).Record(b.Times.Deserialize + b.Times.Streaming)
	}
}

// Classify is the machine-learning component: the batch's alarms are
// split into ClassifyBatch-sized chunks and each chunk is verified
// through the vectorized batch path on the app's dedicated bounded
// classify pool. Chunk k writes the disjoint region
// [k·chunk, (k+1)·chunk) of b.Verified, so results stay in batch
// order without any post-hoc merge, and because the classify pool is
// separate from the executor pool, the sharded pipeline overlaps
// this stage with decode and persist of neighboring batches. The
// verifier's model snapshot is pinned once for the whole micro-batch
// — not per chunk — so a concurrent hot swap (Verifier.Swap) can
// never split one batch's verifications across two models.
func (c *ConsumerApp) Classify(b *Batch) error {
	start := time.Now()
	alarms := b.Alarms
	if !c.cfg.CacheDecoded && b.Decoded != nil {
		// §6.2 pitfall reproduction: without caching, reusing the
		// decoded stream in the ML stage recomputes its lineage — a
		// full re-deserialization, exactly the double work the paper's
		// pre-fix consumer paid.
		alarms = b.Decoded.Collect(c.pool)
	}
	n := len(alarms)
	if cap(b.Verified) >= n {
		// Pooled batch: reuse the verification scratch; every slot is
		// overwritten by verifyBatchInto below.
		b.Verified = b.Verified[:n]
	} else {
		b.Verified = make([]alarm.Verification, n)
	}
	if n == 0 {
		b.Times.ML = time.Since(start)
		return nil
	}
	chunk := c.cfg.ClassifyBatch
	nChunks := (n + chunk - 1) / chunk
	snap := c.verifier.snap.Load()
	var errMu sync.Mutex
	var firstErr error
	c.classify.Run(nChunks, func(k int) {
		lo := k * chunk
		hi := min(lo+chunk, n)
		if err := snap.verifyBatchInto(alarms[lo:hi], b.Verified[lo:hi]); err != nil {
			errMu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			errMu.Unlock()
		}
	})
	if firstErr != nil {
		b.Verified = nil
		return firstErr
	}
	b.Times.ML = time.Since(start)
	if m := c.cfg.Metrics; m != nil {
		m.Stage(metrics.StageClassify).Record(b.Times.ML)
	}
	return nil
}

// Persist is the batch component: it ingests the batch into the alarm
// history through the batched write path (with write-behind enabled
// on the history, RecordBatch only enqueues and the flusher coalesces
// batches from all shards into one store round-trip), runs each
// alarming device's histogram query — which barriers on the
// write-behind queue, so it observes this batch's own alarms — and
// folds the finished batch into the app's accounting. It is the final
// stage; a batch must not be committed before Persist returns. Note
// Times.Ingest measures the enqueue under write-behind; the flush
// wait lands in Times.History.
func (c *ConsumerApp) Persist(b *Batch) error {
	if c.history != nil {
		start := time.Now()
		c.history.RecordBatch(b.Alarms)
		b.Times.Ingest = time.Since(start)

		start = time.Now()
		var since time.Time
		if len(b.Alarms) > 0 {
			since = b.Alarms[0].Timestamp.Add(-c.cfg.HistogramSince)
		}
		// One batched histogram query for all of the window's devices:
		// the store answers every per-device histogram in a single
		// history round-trip (fanning out to its partitions
		// concurrently), instead of one serialized round-trip per
		// device — the dominant cost of the pre-optimization e2e path.
		macs := b.macs[:0]
		for i := range b.Devices {
			macs = append(macs, b.Devices[i].DeviceMAC)
		}
		b.macs = macs
		if _, err := c.history.DeviceHistograms(macs, since, c.cfg.HistogramBucket); err != nil {
			return err
		}
		// Durability barrier: CommitBatch must never run before this
		// batch's documents are out of the write-behind queue, or a
		// crash after commit would lose acknowledged alarms. The
		// histogram queries above already flush as a side effect; this
		// makes the committed-implies-durable guarantee structural.
		c.history.Flush()
		b.Times.History = time.Since(start)
	}

	c.mu.Lock()
	c.times.Add(b.Times)
	c.batches++
	c.records += len(b.Alarms)
	c.verified = append(c.verified, b.Verified...)
	c.mu.Unlock()
	if m := c.cfg.Metrics; m != nil {
		m.Stage(metrics.StagePersist).Record(b.Times.Ingest + b.Times.History)
	}
	return nil
}

// CommitBatch durably commits the offsets captured when b was
// drained. Commits are fenced by the group generation: after a
// rebalance they fail with broker.ErrRebalanceStale and the successor
// resumes from the last durable commit (at-least-once across
// membership changes, exactly-once under stable membership).
//
// With latency metrics attached, a successful commit also closes the
// batch's measurement window: the commit duration lands in the commit
// histogram, and each record's broker-enqueue-to-commit span lands in
// the e2e histogram (shed batches are excluded — their records were
// dropped, not served).
func (c *ConsumerApp) CommitBatch(b *Batch) error {
	start := time.Now()
	if len(b.Offsets) > 0 {
		if err := c.consumer.CommitOffsets(b.Offsets); err != nil {
			return err
		}
	}
	if m := c.cfg.Metrics; m != nil {
		now := time.Now()
		m.Stage(metrics.StageCommit).Record(now.Sub(start))
		if !b.Shed {
			e2e := m.Stage(metrics.StageE2E)
			for _, ts := range b.Enqueued {
				if !ts.IsZero() {
					e2e.Record(now.Sub(ts))
				}
			}
		}
	}
	return nil
}

// CommitAccumulated durably commits the max-merged offsets of several
// already-persisted batches in one coordinator round-trip — the
// coalesced-commit path of the sharded service (serve.Config.
// CommitInterval). The caller owns the accumulation: offsets must be
// the per-partition maximum over batches that have fully persisted
// (or been shed), and enqueued the broker-enqueue timestamps of their
// non-shed records, which close the e2e measurement window exactly as
// CommitBatch would. The same generation fencing applies: after a
// rebalance the commit fails with broker.ErrRebalanceStale and the
// successor resumes from the last durable commit, so coalescing
// widens the redelivery window but never weakens exactly-once under
// stable membership.
func (c *ConsumerApp) CommitAccumulated(offsets map[int]int64, enqueued []time.Time) error {
	if len(offsets) == 0 {
		return nil
	}
	start := time.Now()
	if err := c.consumer.CommitOffsets(offsets); err != nil {
		return err
	}
	if m := c.cfg.Metrics; m != nil {
		now := time.Now()
		m.Stage(metrics.StageCommit).Record(now.Sub(start))
		e2e := m.Stage(metrics.StageE2E)
		for _, ts := range enqueued {
			if !ts.IsZero() {
				e2e.Record(now.Sub(ts))
			}
		}
	}
	return nil
}

// Rebalances exposes the consumer's rebalance-notification channel: a
// signal means the shard's partition assignment is stale and should be
// refreshed once in-flight batches have drained.
func (c *ConsumerApp) Rebalances() <-chan struct{} { return c.consumer.Rebalances() }

// RefreshAssignment re-runs partition assignment after a group
// membership change; positions reset to the committed offsets.
func (c *ConsumerApp) RefreshAssignment() error { return c.consumer.RefreshAssignment() }

// Assignment returns the broker partitions currently owned by this
// consumer.
func (c *ConsumerApp) Assignment() []int { return c.consumer.Assignment() }

// Committed returns the group's committed offset for each partition
// assigned to this consumer.
func (c *ConsumerApp) Committed() map[int]int64 { return c.consumer.Committed() }

// Lag returns how many records sit between the consumer's positions
// and the high watermarks of its partitions.
func (c *ConsumerApp) Lag() (int64, error) { return c.consumer.Lag() }
