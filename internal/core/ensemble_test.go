package core

import (
	"testing"
	"time"

	"alarmverify/internal/alarm"
	"alarmverify/internal/ml"
)

// trainMembers trains a strong RF and a deliberately weak member
// (one-tree stump forest) on the same history.
func trainMembers(t *testing.T, history []alarm.Alarm) (strong, weak *Verifier) {
	t.Helper()
	strongCfg := DefaultVerifierConfig()
	rf := ml.DefaultRandomForestConfig()
	rf.NumTrees = 12
	rf.MaxDepth = 12
	strongCfg.Classifier = ml.NewRandomForest(rf)
	var err error
	strong, err = Train(history, strongCfg)
	if err != nil {
		t.Fatal(err)
	}
	weakCfg := DefaultVerifierConfig()
	weakRF := ml.DefaultRandomForestConfig()
	weakRF.NumTrees = 1
	weakRF.MaxDepth = 1
	weakCfg.Classifier = ml.NewRandomForest(weakRF)
	weak, err = Train(history, weakCfg)
	if err != nil {
		t.Fatal(err)
	}
	return strong, weak
}

func TestVotingVerifier(t *testing.T) {
	_, alarms := testAlarms(5000)
	strong, weak := trainMembers(t, alarms[:3000])
	vote, err := NewVotingVerifier(strong, weak, strong)
	if err != nil {
		t.Fatal(err)
	}
	if vote.Members() != 3 {
		t.Fatalf("members = %d", vote.Members())
	}
	ver, err := vote.Verify(&alarms[4000])
	if err != nil {
		t.Fatal(err)
	}
	if ver.ModelName != "vote" || ver.Probability < 0.5 || ver.Probability > 1 {
		t.Errorf("verification = %+v", ver)
	}
	// The ensemble should be at least in the ballpark of the strong
	// member (it contains two copies of it).
	cmVote, err := vote.EvaluateHoldout(alarms[3000:])
	if err != nil {
		t.Fatal(err)
	}
	cmStrong, err := strong.EvaluateHoldout(alarms[3000:])
	if err != nil {
		t.Fatal(err)
	}
	if cmVote.Accuracy() < cmStrong.Accuracy()-0.05 {
		t.Errorf("vote %.3f far below strong member %.3f", cmVote.Accuracy(), cmStrong.Accuracy())
	}
}

func TestVotingVerifierValidation(t *testing.T) {
	if _, err := NewVotingVerifier(); err == nil {
		t.Error("empty ensemble accepted")
	}
	_, alarms := testAlarms(2000)
	a, _ := trainMembers(t, alarms[:1500])
	cfg := DefaultVerifierConfig()
	rf := ml.DefaultRandomForestConfig()
	rf.NumTrees = 2
	rf.MaxDepth = 3
	cfg.Classifier = ml.NewRandomForest(rf)
	cfg.DeltaT = 5 * time.Minute // mismatched labelling
	b, err := Train(alarms[:1500], cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewVotingVerifier(a, b); err == nil {
		t.Error("mismatched delta-t members accepted")
	}
}

func TestAdaptiveVerifierSwitchesToBetterMember(t *testing.T) {
	_, alarms := testAlarms(6000)
	strong, weak := trainMembers(t, alarms[:3000])
	// Start with the weak member active.
	ad, err := NewAdaptiveVerifier(200, weak, strong)
	if err != nil {
		t.Fatal(err)
	}
	if ad.Active() != 0 {
		t.Fatalf("initial active = %d", ad.Active())
	}
	// Stream feedback: truth from the duration heuristic.
	for i := 3000; i < 4500; i++ {
		a := &alarms[i]
		truth := alarm.DurationLabel(time.Duration(a.Duration*float64(time.Second)), strong.DeltaT())
		if err := ad.Feedback(a, truth); err != nil {
			t.Fatal(err)
		}
	}
	if ad.Active() != 1 {
		t.Fatalf("adaptive verifier did not switch to the stronger member (active=%d, weak=%.3f strong=%.3f)",
			ad.Active(), ad.RollingAccuracy(0), ad.RollingAccuracy(1))
	}
	if ad.Switches < 1 {
		t.Error("switch counter not incremented")
	}
	if ad.RollingAccuracy(1) <= ad.RollingAccuracy(0) {
		t.Errorf("rolling accuracies inconsistent: weak %.3f strong %.3f",
			ad.RollingAccuracy(0), ad.RollingAccuracy(1))
	}
	// Serving goes through the new active member.
	if _, err := ad.Verify(&alarms[5000]); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveVerifierValidation(t *testing.T) {
	if _, err := NewAdaptiveVerifier(100); err == nil {
		t.Error("empty member list accepted")
	}
}

func TestAdaptiveVerifierStableWithEqualMembers(t *testing.T) {
	_, alarms := testAlarms(3000)
	strong, _ := trainMembers(t, alarms[:2000])
	ad, err := NewAdaptiveVerifier(100, strong, strong)
	if err != nil {
		t.Fatal(err)
	}
	for i := 2000; i < 2600; i++ {
		a := &alarms[i]
		truth := alarm.DurationLabel(time.Duration(a.Duration*float64(time.Second)), strong.DeltaT())
		if err := ad.Feedback(a, truth); err != nil {
			t.Fatal(err)
		}
	}
	if ad.Switches != 0 {
		t.Errorf("identical members caused %d switches (hysteresis broken)", ad.Switches)
	}
}
