package core

import (
	"container/heap"
	"sync"
	"time"

	"alarmverify/internal/alarm"
)

// Route says where an alarm goes after verification (§3): alarms
// likely false go to the customer's phone first ("My Security
// Center"); alarms likely true — and technical alarms the customer
// opted out of — go straight to the Alarm Receiving Center.
type Route int

// Routing decisions.
const (
	// RouteToCustomer sends the alarm to the owner's mobile first.
	RouteToCustomer Route = iota
	// RouteToARC forwards the alarm to the monitoring center.
	RouteToARC
	// RouteSuppressed drops the alarm entirely (e.g. technical alarms
	// the customer disabled).
	RouteSuppressed
)

// String names the route.
func (r Route) String() string {
	switch r {
	case RouteToCustomer:
		return "customer"
	case RouteToARC:
		return "arc"
	default:
		return "suppressed"
	}
}

// CustomerPolicy is one customer's "My Security Center"
// configuration: the probability threshold above which alarms go
// straight to the ARC, and whether technical alarms are forwarded at
// all.
type CustomerPolicy struct {
	// TrueThreshold: an alarm classified true with at least this
	// confidence bypasses the customer and goes to the ARC.
	TrueThreshold float64
	// SuppressTechnical drops technical alarms (connection loss etc.)
	// instead of transmitting them.
	SuppressTechnical bool
	// CustomerTimeout bounds how long the customer may take to
	// confirm; on expiry the alarm escalates to the ARC.
	CustomerTimeout time.Duration
}

// DefaultCustomerPolicy is a conservative default: only confident
// true alarms bypass the customer.
func DefaultCustomerPolicy() CustomerPolicy {
	return CustomerPolicy{
		TrueThreshold:   0.75,
		CustomerTimeout: 90 * time.Second,
	}
}

// Decide routes a verified alarm under the policy.
func (p CustomerPolicy) Decide(a *alarm.Alarm, v alarm.Verification) Route {
	if a.Type == alarm.TypeTechnical && p.SuppressTechnical {
		return RouteSuppressed
	}
	if v.Predicted == alarm.True && v.Probability >= p.TrueThreshold {
		return RouteToARC
	}
	return RouteToCustomer
}

// PrioritizedAlarm is an alarm queued for a human ARC operator,
// ordered by the probability that it is true (§3: "the probability
// for true and false alarms can be used by the monitoring center in
// order to effectively prioritize alarms").
type PrioritizedAlarm struct {
	Alarm        alarm.Alarm
	Verification alarm.Verification
	EnqueuedAt   time.Time
}

// priority orders by P(true) descending, then by arrival time.
func (p *PrioritizedAlarm) priority() float64 {
	if p.Verification.Predicted == alarm.True {
		return p.Verification.Probability
	}
	return 1 - p.Verification.Probability
}

// OperatorQueue is a concurrency-safe priority queue for ARC
// operators: the most-likely-true alarm is always dequeued first, so
// spikes of messages (large events, §3) are handled best-first.
type OperatorQueue struct {
	mu sync.Mutex
	h  alarmHeap
}

// NewOperatorQueue creates an empty queue.
func NewOperatorQueue() *OperatorQueue { return &OperatorQueue{} }

// Push enqueues a verified alarm.
func (q *OperatorQueue) Push(a alarm.Alarm, v alarm.Verification) {
	q.mu.Lock()
	heap.Push(&q.h, &PrioritizedAlarm{Alarm: a, Verification: v, EnqueuedAt: time.Now()})
	q.mu.Unlock()
}

// Pop dequeues the highest-priority alarm; ok is false when empty.
func (q *OperatorQueue) Pop() (*PrioritizedAlarm, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.h.Len() == 0 {
		return nil, false
	}
	return heap.Pop(&q.h).(*PrioritizedAlarm), true
}

// Len returns the queue size.
func (q *OperatorQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.h.Len()
}

type alarmHeap []*PrioritizedAlarm

func (h alarmHeap) Len() int { return len(h) }
func (h alarmHeap) Less(i, j int) bool {
	pi, pj := h[i].priority(), h[j].priority()
	if pi != pj {
		return pi > pj
	}
	return h[i].EnqueuedAt.Before(h[j].EnqueuedAt)
}
func (h alarmHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *alarmHeap) Push(x any)   { *h = append(*h, x.(*PrioritizedAlarm)) }
func (h *alarmHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}
