package core

import (
	"testing"
	"time"

	"alarmverify/internal/broker"
	"alarmverify/internal/codec"
	"alarmverify/internal/docstore"
	"alarmverify/internal/metrics"
)

// preload sends alarms into a fresh broker topic with enqueue-time
// record timestamps (the live-stream shape loadgen produces, as
// opposed to Replay's synthetic historic timestamps).
func preloadLive(t *testing.T, n int) (*broker.Broker, int) {
	t.Helper()
	_, alarms := testAlarms(n)
	b := broker.New()
	topic, err := b.CreateTopic("alarms", 4)
	if err != nil {
		t.Fatal(err)
	}
	prod := broker.NewProducer(topic)
	var c codec.FastCodec
	var buf []byte
	for i := range alarms {
		buf, err = c.Marshal(buf[:0], &alarms[i])
		if err != nil {
			t.Fatal(err)
		}
		val := make([]byte, len(buf))
		copy(val, buf)
		if _, _, err := prod.SendAt([]byte(alarms[i].DeviceMAC), val, time.Now()); err != nil {
			t.Fatal(err)
		}
	}
	return b, len(alarms)
}

func TestAdaptiveBatchGrowsUnderPressureShrinksWhenIdle(t *testing.T) {
	b, n := preloadLive(t, 3000)
	defer b.Close()
	_, train := testAlarms(800)
	v := fastVerifier(t, train)

	cfg := DefaultConsumerConfig()
	cfg.AdaptiveBatch = true
	cfg.AdaptiveMinBatch = 64
	cfg.MaxPerBatch = 1024
	cfg.PollTimeout = time.Millisecond
	app, err := NewConsumerApp(b, "alarms", "adapt", "c1", v, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()

	if got := app.BatchLimit(); got != 64 {
		t.Fatalf("initial adaptive limit %d, want the 64 floor", got)
	}
	// A deep backlog saturates every drain: the limit must double its
	// way up to the MaxPerBatch ceiling.
	drained := 0
	grew := false
	for drained < n {
		batch := app.Drain()
		drained += batch.Raw.Count(app.pool)
		if app.BatchLimit() > 64 {
			grew = true
		}
		if batch.Raw.Count(app.pool) == 0 {
			break
		}
	}
	if !grew {
		t.Fatal("adaptive limit never grew under a saturated backlog")
	}
	if got := app.BatchLimit(); got != 1024 {
		t.Fatalf("limit after draining a deep backlog = %d, want ceiling 1024", got)
	}
	// Idle drains must shrink it back to the floor.
	for i := 0; i < 10; i++ {
		app.Drain()
	}
	if got := app.BatchLimit(); got != 64 {
		t.Fatalf("limit after idling = %d, want floor 64", got)
	}
}

func TestAdaptiveBatchDefaults(t *testing.T) {
	b := broker.New()
	defer b.Close()
	if _, err := b.CreateTopic("alarms", 1); err != nil {
		t.Fatal(err)
	}
	_, train := testAlarms(800)
	v := fastVerifier(t, train)
	cfg := DefaultConsumerConfig()
	cfg.AdaptiveBatch = true // no explicit bounds
	app, err := NewConsumerApp(b, "alarms", "adapt-def", "c1", v, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	if got := app.BatchLimit(); got != 64 {
		t.Fatalf("default adaptive floor = %d, want 64", got)
	}
}

func TestPipelineMetricsRecordStagesAndE2E(t *testing.T) {
	b, n := preloadLive(t, 1500)
	defer b.Close()
	_, train := testAlarms(800)
	v := fastVerifier(t, train)
	h, err := NewHistory(docstore.NewDB())
	if err != nil {
		t.Fatal(err)
	}

	m := metrics.NewPipeline()
	cfg := DefaultConsumerConfig()
	cfg.Metrics = m
	cfg.MaxPerBatch = 500
	cfg.PollTimeout = time.Millisecond
	app, err := NewConsumerApp(b, "alarms", "met", "c1", v, h, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()

	processed := 0
	batches := 0
	for processed < n {
		batch := app.Drain()
		app.Decode(batch)
		if batch.Len() == 0 {
			break
		}
		if err := app.Classify(batch); err != nil {
			t.Fatal(err)
		}
		if err := app.Persist(batch); err != nil {
			t.Fatal(err)
		}
		if err := app.CommitBatch(batch); err != nil {
			t.Fatal(err)
		}
		processed += batch.Len()
		batches++
	}
	if processed != n {
		t.Fatalf("processed %d of %d", processed, n)
	}

	ps := m.Snapshot()
	for _, st := range []metrics.Stage{metrics.StageDecode, metrics.StageClassify, metrics.StagePersist, metrics.StageCommit} {
		if got := ps.Stages[st].N; got != uint64(batches) {
			t.Errorf("stage %s recorded %d observations, want %d batches", st, got, batches)
		}
	}
	e2e := ps.Stages[metrics.StageE2E]
	if got := e2e.N; got != uint64(n) {
		t.Errorf("e2e recorded %d observations, want %d records", got, n)
	}
	// Records were enqueued moments ago: e2e must be small but
	// positive, far below a minute.
	if p99 := e2e.Quantile(0.99); p99 <= 0 || p99 > time.Minute {
		t.Errorf("e2e p99 = %s, implausible", p99)
	}
	if ps.ShedRecords != 0 {
		t.Errorf("shed %d records with shedding off", ps.ShedRecords)
	}
}

func TestMarkShedCountsAndSkipsE2E(t *testing.T) {
	b, _ := preloadLive(t, 600)
	defer b.Close()
	_, train := testAlarms(800)
	v := fastVerifier(t, train)
	m := metrics.NewPipeline()
	cfg := DefaultConsumerConfig()
	cfg.Metrics = m
	cfg.MaxPerBatch = 600
	cfg.PollTimeout = time.Millisecond
	app, err := NewConsumerApp(b, "alarms", "shed", "c1", v, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()

	batch := app.Drain()
	app.Decode(batch)
	if batch.Len() == 0 {
		t.Fatal("empty drain")
	}
	app.MarkShed(batch)
	if !batch.Shed {
		t.Fatal("batch not flagged")
	}
	if got := m.ShedRecords(); got != int64(batch.Len()) {
		t.Fatalf("shed counter %d, want %d", got, batch.Len())
	}
	if err := app.CommitBatch(batch); err != nil {
		t.Fatal(err)
	}
	ps := m.Snapshot()
	if got := ps.Stages[metrics.StageE2E].N; got != 0 {
		t.Fatalf("shed batch recorded %d e2e observations, want 0", got)
	}
	if got := ps.Stages[metrics.StageCommit].N; got != 1 {
		t.Fatalf("commit histogram %d, want 1 (shed batches still commit)", got)
	}
}
