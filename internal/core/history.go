package core

import (
	"errors"
	"sort"
	"sync/atomic"
	"time"

	"alarmverify/internal/alarm"
	"alarmverify/internal/docstore"
)

// History is the batch component of Figure 2: long-term alarm storage
// in the document store, indexed by device address, answering the
// per-device histogram queries of §4.1 ("a histogram of the number of
// alarms starting from a specific time t").
type History struct {
	col *docstore.Collection
	// rttNanos, when non-zero, is slept once per store round-trip
	// (ingest or query). The paper's deployment talks to a remote
	// MongoDB; the in-memory store otherwise answers in nanoseconds,
	// which would hide the I/O overlap the sharded service exploits.
	rttNanos atomic.Int64
}

// SetSimulatedRTT makes every history round-trip (RecordBatch,
// Record, DeviceHistogram) take at least d, emulating the network
// latency of the remote document store in the paper's deployment
// (§4.3). Zero (the default) disables the simulation. Safe to call
// concurrently with queries.
func (h *History) SetSimulatedRTT(d time.Duration) { h.rttNanos.Store(int64(d)) }

func (h *History) simulateRTT() {
	if d := h.rttNanos.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
}

// NewHistory binds the alarm history to a document-store collection
// and creates the device-address index the histogram queries need.
func NewHistory(db *docstore.DB) (*History, error) {
	col := db.Collection("alarms")
	if err := col.CreateIndex("deviceMac"); err != nil &&
		!errors.Is(err, docstore.ErrIndexExists) {
		return nil, err
	}
	return &History{col: col}, nil
}

// Record stores one alarm as a document (the flexible-schema ingest
// path of §4.3).
func (h *History) Record(a *alarm.Alarm) {
	h.simulateRTT()
	h.col.Insert(alarmDoc(a))
}

// RecordBatch stores many alarms at once.
func (h *History) RecordBatch(alarms []alarm.Alarm) {
	h.simulateRTT()
	docs := make([]docstore.Doc, len(alarms))
	for i := range alarms {
		docs[i] = alarmDoc(&alarms[i])
	}
	h.col.InsertMany(docs)
}

func alarmDoc(a *alarm.Alarm) docstore.Doc {
	return docstore.Doc{
		"alarmId":    a.ID,
		"deviceMac":  a.DeviceMAC,
		"zip":        a.ZIP,
		"ts":         float64(a.Timestamp.Unix()),
		"duration":   a.Duration,
		"alarmType":  a.Type.String(),
		"objectType": a.ObjectType.String(),
	}
}

// Len returns the number of stored alarms.
func (h *History) Len() int { return h.col.Len() }

// HistogramBucket is one bar of a device's alarm histogram.
type HistogramBucket struct {
	Start time.Time
	Count int
}

// DeviceHistogram returns the histogram of a device's alarms since
// the given time, bucketed by the given width — the historic analysis
// operators use to spot recurring problems (§6, lesson 3).
func (h *History) DeviceHistogram(mac string, since time.Time, bucket time.Duration) ([]HistogramBucket, error) {
	h.simulateRTT()
	if bucket <= 0 {
		bucket = time.Hour
	}
	// Single-column fast path: only the timestamps are needed, so the
	// store does not clone whole documents.
	vals, err := h.col.FieldValues(docstore.Doc{
		"deviceMac": mac,
		"ts":        map[string]any{"$gte": float64(since.Unix())},
	}, "ts")
	if err != nil {
		return nil, err
	}
	origin := float64(since.Unix())
	width := bucket.Seconds()
	counts := make(map[int]int)
	for _, v := range vals {
		ts, ok := v.(float64)
		if !ok {
			continue
		}
		counts[int((ts-origin)/width)]++
	}
	idxs := make([]int, 0, len(counts))
	for i := range counts {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	out := make([]HistogramBucket, len(idxs))
	for i, idx := range idxs {
		out[i] = HistogramBucket{
			Start: time.Unix(int64(origin+float64(idx)*width), 0).UTC(),
			Count: counts[idx],
		}
	}
	return out, nil
}

// CountByLocation aggregates alarm counts per ZIP code (the
// location-histogram query of §4.2).
func (h *History) CountByLocation() (map[string]int, error) {
	docs, err := h.col.Aggregate(nil, docstore.Group{
		By:   []string{"zip"},
		Accs: map[string]docstore.Accumulator{"n": {Op: "count"}},
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string]int, len(docs))
	for _, d := range docs {
		out[d["zip"].(string)] = d["n"].(int)
	}
	return out, nil
}

// TrueAlarmCountsByZIP counts alarms per ZIP whose duration exceeds
// deltaT, per alarm type — the statistic behind Table 2 and Figure 7.
func (h *History) TrueAlarmCountsByZIP(deltaT time.Duration, alarmType string) (map[string]int, error) {
	filter := docstore.Doc{
		"duration": map[string]any{"$gte": deltaT.Seconds()},
	}
	if alarmType != "" {
		filter["alarmType"] = alarmType
	}
	docs, err := h.col.Aggregate(filter, docstore.Group{
		By:   []string{"zip"},
		Accs: map[string]docstore.Accumulator{"n": {Op: "count"}},
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string]int, len(docs))
	for _, d := range docs {
		out[d["zip"].(string)] = d["n"].(int)
	}
	return out, nil
}
