package core

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"alarmverify/internal/alarm"
	"alarmverify/internal/docstore"
)

// History is the batch component of Figure 2: long-term alarm storage
// in the document store, indexed and shard-keyed by device address,
// answering the per-device histogram queries of §4.1 ("a histogram of
// the number of alarms starting from a specific time t"). Because the
// device address is the collection's shard key, one device's alarms
// land in one store partition and the histogram query touches exactly
// that partition.
type History struct {
	col *docstore.Collection
	// fb stores operator feedback (the /feedback endpoint): eventual
	// ground-truth verdicts the retrainer folds into the next train
	// set. Written synchronously — feedback volume is human-scale.
	fb *docstore.Collection
	// rttNanos, when non-zero, is slept once per store round-trip
	// (ingest or query). The paper's deployment talks to a remote
	// MongoDB; the in-memory store otherwise answers in nanoseconds,
	// which would hide the I/O overlap the sharded service exploits.
	rttNanos atomic.Int64

	// wb, when non-nil, is the write-behind buffer: Record/RecordBatch
	// enqueue and return immediately, a flusher goroutine drains the
	// queue into one InsertMany per flush (coalescing batches from all
	// shards into one store round-trip), and query paths barrier on
	// the queue so reads always observe prior writes. Published
	// atomically so EnableWriteBehind is safe against concurrent use.
	wb     atomic.Pointer[writeBehind]
	wbOnce sync.Once
}

// SetSimulatedRTT makes every history round-trip (RecordBatch,
// Record, DeviceHistogram) take at least d, emulating the network
// latency of the remote document store in the paper's deployment
// (§4.3). Zero (the default) disables the simulation. With
// write-behind enabled, ingest pays the RTT once per flush instead of
// once per batch. Safe to call concurrently with queries.
func (h *History) SetSimulatedRTT(d time.Duration) { h.rttNanos.Store(int64(d)) }

func (h *History) simulateRTT() {
	if d := h.rttNanos.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
}

// NewHistory binds the alarm history to a document-store collection
// shard-keyed by device address and creates the device-address index
// the histogram queries need.
func NewHistory(db *docstore.DB) (*History, error) {
	col, err := db.CollectionWithShardKey("alarms", "deviceMac")
	if err != nil {
		return nil, err
	}
	if err := col.CreateIndex("deviceMac"); err != nil &&
		!errors.Is(err, docstore.ErrIndexExists) {
		return nil, err
	}
	return &History{col: col, fb: db.Collection("feedback")}, nil
}

// writeBehind is a bounded asynchronous ingest queue. Producers block
// only when the queue is at capacity (bounded queueing: backpressure
// instead of unbounded buffering), and one flusher goroutine turns
// however many documents accumulated during the previous store
// round-trip into a single InsertMany.
type writeBehind struct {
	mu       sync.Mutex
	cond     *sync.Cond
	queue    []docstore.Doc
	max      int
	flushing bool
	closed   bool
	flushes  int64
	done     chan struct{}
}

// EnableWriteBehind switches the history to asynchronous ingest with
// the given queue bound (documents; <= 0 selects 4096). Call Close to
// flush the queue and stop the flusher. Enabling twice (even
// concurrently) is a no-op.
func (h *History) EnableWriteBehind(maxQueued int) {
	h.wbOnce.Do(func() {
		if maxQueued <= 0 {
			maxQueued = 4096
		}
		wb := &writeBehind{max: maxQueued, done: make(chan struct{})}
		wb.cond = sync.NewCond(&wb.mu)
		h.wb.Store(wb)
		go h.flusher(wb)
	})
}

// flusher drains the write-behind queue: each pass swaps out the
// whole queue and persists it with one InsertMany (one simulated
// round-trip), so batches enqueued by many shards while a flush is in
// flight coalesce into the next one.
func (h *History) flusher(wb *writeBehind) {
	for {
		wb.mu.Lock()
		for len(wb.queue) == 0 && !wb.closed {
			wb.cond.Wait()
		}
		if len(wb.queue) == 0 && wb.closed {
			wb.mu.Unlock()
			close(wb.done)
			return
		}
		batch := wb.queue
		wb.queue = nil
		wb.flushing = true
		wb.cond.Broadcast() // queue has room again
		wb.mu.Unlock()

		h.simulateRTT()
		h.col.InsertMany(batch)

		wb.mu.Lock()
		wb.flushing = false
		wb.flushes++ // a completed flush: everything swapped out is durable
		wb.cond.Broadcast()
		wb.mu.Unlock()
	}
}

// enqueue appends docs to the write-behind queue, blocking while the
// queue is at capacity. After Close it reports false and the caller
// falls back to a synchronous write.
func (wb *writeBehind) enqueue(docs []docstore.Doc) bool {
	wb.mu.Lock()
	defer wb.mu.Unlock()
	for !wb.closed && len(wb.queue) >= wb.max {
		wb.cond.Wait()
	}
	if wb.closed {
		return false
	}
	wb.queue = append(wb.queue, docs...)
	wb.cond.Broadcast()
	return true
}

// Flush blocks until every document enqueued before the call is
// durable in the store. It waits on a flush generation, not on the
// queue going empty, so concurrent writers refilling the queue cannot
// starve it: at most two flush completions (the in-flight one plus
// the one covering the current queue) release it. A no-op without
// write-behind.
func (h *History) Flush() {
	wb := h.wb.Load()
	if wb == nil {
		return
	}
	wb.mu.Lock()
	target := wb.flushes
	if wb.flushing {
		target++
	}
	if len(wb.queue) > 0 {
		target++
	}
	for wb.flushes < target {
		wb.cond.Wait()
	}
	wb.mu.Unlock()
}

// WriteBehindFlushes returns how many store round-trips the flusher
// has completed — with coalescing this is well below the number of
// RecordBatch calls under load.
func (h *History) WriteBehindFlushes() int64 {
	wb := h.wb.Load()
	if wb == nil {
		return 0
	}
	wb.mu.Lock()
	defer wb.mu.Unlock()
	return wb.flushes
}

// SetRetention bounds the alarm history to maxAge of ingest: on a
// durable store, documents whose timestamp has aged out are pruned at
// every checkpoint (docstore Collection.SetRetention on the "ts"
// field); on a memory-only store the window is registered and pruning
// is the caller's (or a test's) explicit PruneExpired call. A
// non-positive maxAge clears the bound.
func (h *History) SetRetention(maxAge time.Duration) {
	h.col.SetRetention("ts", maxAge)
}

// Close flushes any queued writes and stops the write-behind flusher.
// Safe to call more than once and without write-behind enabled, and
// safe against concurrent producers: an in-flight Record/RecordBatch
// either lands in the queue before the close (the flusher drains the
// whole queue before exiting — nothing queued is ever dropped) or
// observes the closed state and falls back to a synchronous store
// write. Concurrent Flush calls are released once their generation's
// documents are durable.
func (h *History) Close() {
	wb := h.wb.Load()
	if wb == nil {
		return
	}
	wb.mu.Lock()
	if !wb.closed {
		wb.closed = true
		wb.cond.Broadcast()
	}
	wb.mu.Unlock()
	<-wb.done
}

// Record stores one alarm as a document (the flexible-schema ingest
// path of §4.3).
func (h *History) Record(a *alarm.Alarm) {
	if wb := h.wb.Load(); wb != nil && wb.enqueue([]docstore.Doc{alarmDoc(a)}) {
		return
	}
	h.simulateRTT()
	h.col.Insert(alarmDoc(a))
}

// RecordBatch stores many alarms at once. With write-behind enabled
// it only enqueues (blocking when the queue is full); the flusher
// persists the documents asynchronously and query paths barrier on
// the queue, so reads still observe prior writes.
func (h *History) RecordBatch(alarms []alarm.Alarm) {
	if len(alarms) == 0 {
		return
	}
	docs := make([]docstore.Doc, len(alarms))
	for i := range alarms {
		docs[i] = alarmDoc(&alarms[i])
	}
	if wb := h.wb.Load(); wb != nil && wb.enqueue(docs) {
		return
	}
	h.simulateRTT()
	h.col.InsertMany(docs)
}

func alarmDoc(a *alarm.Alarm) docstore.Doc {
	return docstore.Doc{
		"alarmId":    a.ID,
		"deviceMac":  a.DeviceMAC,
		"zip":        a.ZIP,
		"ts":         float64(a.Timestamp.Unix()),
		"duration":   a.Duration,
		"alarmType":  a.Type.String(),
		"objectType": a.ObjectType.String(),
		// Sensor-specific fields ride along so retraining from the
		// store keeps the §5.3.4 extra features (flexible schema: older
		// documents without them read back as empty strings).
		"sensorType": a.SensorType,
		"swVersion":  a.SoftwareVersion,
	}
}

// asInt64 reads an integer document field whatever concrete integer
// type the store hands back — int64 live, but possibly int or float64
// after a WAL/snapshot JSON round-trip on older encodings — so the
// retrain loop can never silently drop ids after a recovery.
func asInt64(v any) (int64, bool) {
	switch n := v.(type) {
	case int64:
		return n, true
	case int:
		return int64(n), true
	case float64:
		return int64(n), true
	default:
		return 0, false
	}
}

// asInt is asInt64 for int-typed fields (e.g. feedback verdicts).
func asInt(v any) (int, bool) {
	n, ok := asInt64(v)
	return int(n), ok
}

// docAlarm rebuilds an alarm from its stored document — the inverse
// of alarmDoc, used when the retrainer pulls its train set out of the
// history instead of holding alarms in memory.
func docAlarm(d docstore.Doc) alarm.Alarm {
	a := alarm.Alarm{}
	if v, ok := asInt64(d["alarmId"]); ok {
		a.ID = v
	}
	a.DeviceMAC, _ = d["deviceMac"].(string)
	a.ZIP, _ = d["zip"].(string)
	if ts, ok := d["ts"].(float64); ok {
		a.Timestamp = time.Unix(int64(ts), 0).UTC()
	}
	a.Duration, _ = d["duration"].(float64)
	if s, ok := d["alarmType"].(string); ok {
		if t, found := alarm.ParseType(s); found {
			a.Type = t
		}
	}
	if s, ok := d["objectType"].(string); ok {
		if o, found := alarm.ParseObjectType(s); found {
			a.ObjectType = o
		}
	}
	a.SensorType, _ = d["sensorType"].(string)
	a.SoftwareVersion, _ = d["swVersion"].(string)
	return a
}

// RecentAlarms returns up to limit of the most recently ingested
// alarms in chronological order — the retrainer's train-set window.
// The read is a pushdown top-K aggregation (sort by insertion id
// descending, limit K): each store partition selects its K newest
// documents under one lock — or serves them from a version-validated
// snapshot when the partition has not changed since the last
// identical scan — so the cost depends on limit, not on how large the
// history has grown over the daemon's lifetime. limit <= 0 returns
// everything (a bounded tail scan over the whole store).
func (h *History) RecentAlarms(limit int) ([]alarm.Alarm, error) {
	h.Flush()
	h.simulateRTT()
	var docs []docstore.Doc
	if limit > 0 {
		var err error
		docs, err = h.col.Aggregate(nil,
			docstore.SortStage{Field: "-_id"}, docstore.Limit{N: limit})
		if err != nil {
			return nil, err
		}
		// The top-K arrives newest first; restore insertion order (the
		// order Tail used to return) before the chronological sort so
		// equal-timestamp alarms keep their ingest order.
		for i, j := 0, len(docs)-1; i < j; i, j = i+1, j-1 {
			docs[i], docs[j] = docs[j], docs[i]
		}
	} else {
		docs = h.col.Tail(limit)
	}
	out := make([]alarm.Alarm, len(docs))
	for i, d := range docs {
		out[i] = docAlarm(d)
	}
	// Ingest order approximates time order but concurrent shards can
	// interleave; restore strict chronology for the Δt-windowed
	// train/holdout split.
	sort.Slice(out, func(i, j int) bool { return out[i].Timestamp.Before(out[j].Timestamp) })
	return out, nil
}

// Feedback is one operator verdict: the eventual ground truth for an
// alarm, reported once the intervention force (or the premise owner)
// resolved it. Feedback is the signal the §4.1 "periodic offline"
// retraining loop closes on.
type Feedback struct {
	AlarmID   int64
	DeviceMAC string
	Verdict   alarm.Label
	At        time.Time
}

// RecordFeedback stores one operator verdict.
func (h *History) RecordFeedback(f Feedback) {
	h.simulateRTT()
	h.fb.Insert(docstore.Doc{
		"alarmId":   f.AlarmID,
		"deviceMac": f.DeviceMAC,
		"verdict":   int(f.Verdict),
		"at":        float64(f.At.Unix()),
	})
}

// FeedbackCount returns how many operator verdicts have been
// recorded.
func (h *History) FeedbackCount() int { return h.fb.Len() }

// Feedbacks returns every recorded verdict in insertion order; when
// an alarm received several verdicts, the later one wins during
// retraining (FeedbackLabels keeps the last).
func (h *History) Feedbacks() ([]Feedback, error) {
	h.simulateRTT()
	docs, err := h.fb.Find(nil)
	if err != nil {
		return nil, err
	}
	out := make([]Feedback, 0, len(docs))
	for _, d := range docs {
		f := Feedback{}
		if v, ok := asInt64(d["alarmId"]); ok {
			f.AlarmID = v
		}
		f.DeviceMAC, _ = d["deviceMac"].(string)
		if v, ok := asInt(d["verdict"]); ok {
			f.Verdict = alarm.Label(v)
		}
		if ts, ok := d["at"].(float64); ok {
			f.At = time.Unix(int64(ts), 0).UTC()
		}
		out = append(out, f)
	}
	return out, nil
}

// FeedbackLabels collapses all recorded verdicts into the override
// map TrainWithFeedback consumes (last verdict per alarm wins).
func (h *History) FeedbackLabels() (map[int64]alarm.Label, error) {
	fbs, err := h.Feedbacks()
	if err != nil {
		return nil, err
	}
	out := make(map[int64]alarm.Label, len(fbs))
	for _, f := range fbs {
		out[f.AlarmID] = f.Verdict
	}
	return out, nil
}

// Len returns the number of stored alarms, including any still queued
// in the write-behind buffer.
func (h *History) Len() int {
	h.Flush()
	return h.col.Len()
}

// HistogramBucket is one bar of a device's alarm histogram.
type HistogramBucket struct {
	Start time.Time
	Count int
}

// DeviceHistogram returns the histogram of a device's alarms since
// the given time, bucketed by the given width — the historic analysis
// operators use to spot recurring problems (§6, lesson 3).
//
// The query executes as a pushdown Bucket aggregation: the bar counts
// are computed inside the store partition that owns the device (the
// deviceMac equality is on the shard key), so no timestamps — let
// alone documents — stream out; only the final (bucket, count) pairs
// do. Repeats against an unchanged partition are served from the
// store's version-validated partial snapshot cache.
func (h *History) DeviceHistogram(mac string, since time.Time, bucket time.Duration) ([]HistogramBucket, error) {
	h.Flush()
	h.simulateRTT()
	if bucket <= 0 {
		bucket = time.Hour
	}
	docs, err := h.col.Aggregate(
		deviceSinceFilter(mac, since),
		docstore.Bucket{Field: "ts", Origin: float64(since.Unix()), Width: bucket.Seconds()},
	)
	if err != nil {
		return nil, err
	}
	return histogramBuckets(docs), nil
}

// deviceSinceFilter is the shared per-device time-window filter of the
// histogram queries.
func deviceSinceFilter(mac string, since time.Time) docstore.Doc {
	return docstore.Doc{
		"deviceMac": mac,
		"ts":        map[string]any{"$gte": float64(since.Unix())},
	}
}

// histogramBuckets converts the docstore Bucket stage's (bucket,
// count) documents into histogram bars.
func histogramBuckets(docs []docstore.Doc) []HistogramBucket {
	out := make([]HistogramBucket, len(docs))
	for i, d := range docs {
		lo, _ := d["bucket"].(float64)
		n, _ := d["count"].(int)
		out[i] = HistogramBucket{Start: time.Unix(int64(lo), 0).UTC(), Count: n}
	}
	return out
}

// DeviceHistograms answers one histogram per device in a single
// history round-trip: the batch executes as one pushdown Bucket
// aggregation sweep (docstore Collection.AggregateMulti) — each
// touched partition is visited once, concurrently under a simulated
// RTT, computes every resident device's bar counts in-place, and only
// the (bucket, count) pairs travel. Result i corresponds to macs[i];
// each is identical to what DeviceHistogram(macs[i], since, bucket)
// would return against the same store state. This is the pipeline's
// Persist-stage path: a micro-batch with N distinct devices pays one
// round-trip instead of N serialized ones.
func (h *History) DeviceHistograms(macs []string, since time.Time, bucket time.Duration) ([][]HistogramBucket, error) {
	if len(macs) == 0 {
		return nil, nil
	}
	h.Flush()
	h.simulateRTT()
	if bucket <= 0 {
		bucket = time.Hour
	}
	filters := make([]docstore.Doc, len(macs))
	for i, mac := range macs {
		filters[i] = deviceSinceFilter(mac, since)
	}
	docsPer, err := h.col.AggregateMulti(filters,
		docstore.Bucket{Field: "ts", Origin: float64(since.Unix()), Width: bucket.Seconds()})
	if err != nil {
		return nil, err
	}
	out := make([][]HistogramBucket, len(macs))
	for i, docs := range docsPer {
		out[i] = histogramBuckets(docs)
	}
	return out, nil
}

// DeviceCount is one entry of a top-devices ranking: a device and how
// many alarms it contributed in the history.
type DeviceCount struct {
	Mac   string `json:"mac"`
	Count int    `json:"count"`
}

// TopDevices returns the k devices with the most stored alarms,
// descending (ties broken by ingest order). The ranking runs as a
// pushdown Group aggregation — each partition counts its resident
// devices in-place and only the per-device partial counts travel —
// with the sort and cut applied to the merged (already tiny) group
// set. This is the /stats "noisiest devices" panel (§6, lesson 3:
// recurring-problem devices dominate the alarm stream).
func (h *History) TopDevices(k int) ([]DeviceCount, error) {
	if k <= 0 {
		return nil, nil
	}
	h.Flush()
	h.simulateRTT()
	docs, err := h.col.Aggregate(nil,
		docstore.Group{
			By:   []string{"deviceMac"},
			Accs: map[string]docstore.Accumulator{"n": {Op: "count"}},
		},
		docstore.SortStage{Field: "-n"},
		docstore.Limit{N: k},
	)
	if err != nil {
		return nil, err
	}
	out := make([]DeviceCount, 0, len(docs))
	for _, d := range docs {
		mac, _ := d["deviceMac"].(string)
		n, _ := d["n"].(int)
		out = append(out, DeviceCount{Mac: mac, Count: n})
	}
	return out, nil
}

// CountByLocation aggregates alarm counts per ZIP code (the
// location-histogram query of §4.2).
func (h *History) CountByLocation() (map[string]int, error) {
	h.Flush()
	docs, err := h.col.Aggregate(nil, docstore.Group{
		By:   []string{"zip"},
		Accs: map[string]docstore.Accumulator{"n": {Op: "count"}},
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string]int, len(docs))
	for _, d := range docs {
		out[d["zip"].(string)] = d["n"].(int)
	}
	return out, nil
}

// TrueAlarmCountsByZIP counts alarms per ZIP whose duration exceeds
// deltaT, per alarm type — the statistic behind Table 2 and Figure 7.
func (h *History) TrueAlarmCountsByZIP(deltaT time.Duration, alarmType string) (map[string]int, error) {
	h.Flush()
	filter := docstore.Doc{
		"duration": map[string]any{"$gte": deltaT.Seconds()},
	}
	if alarmType != "" {
		filter["alarmType"] = alarmType
	}
	docs, err := h.col.Aggregate(filter, docstore.Group{
		By:   []string{"zip"},
		Accs: map[string]docstore.Accumulator{"n": {Op: "count"}},
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string]int, len(docs))
	for _, d := range docs {
		out[d["zip"].(string)] = d["n"].(int)
	}
	return out, nil
}
