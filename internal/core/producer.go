package core

import (
	"sync"
	"sync/atomic"
	"time"

	"alarmverify/internal/alarm"
	"alarmverify/internal/broker"
	"alarmverify/internal/codec"
)

// ProducerApp is the §5.5.1 Producer application: it simulates a
// stream of new alarms by replaying test-set alarms into the broker
// at a controlled rate, through a configurable serializer.
type ProducerApp struct {
	producer broker.RecordSender
	codec    codec.Codec
	// Threads is the number of concurrent sending goroutines; the
	// paper adds producer threads to saturate the consumer (§5.5.2).
	Threads int
	// EnqueueTimestamps stamps records with the broker's append time
	// instead of the alarms' synthetic event times. Live-serving
	// replays (cmd/alarmd) set it so the pipeline's end-to-end
	// (enqueue→commit) latency histogram measures real queueing delay
	// rather than the years since the replayed alarm "happened".
	EnqueueTimestamps bool
}

// NewProducerApp creates a producer over the topic with the given
// serializer.
func NewProducerApp(t *broker.Topic, c codec.Codec) *ProducerApp {
	return NewProducerAppFor(broker.NewProducer(t), c)
}

// NewProducerAppFor creates a producer over any record sender — the
// in-process broker producer or netbroker's wire producer — so a
// remote alarmd replays through the exact same application code.
func NewProducerAppFor(s broker.RecordSender, c codec.Codec) *ProducerApp {
	return &ProducerApp{
		producer: s,
		codec:    c,
		Threads:  1,
	}
}

// ReplayStats summarizes a replay run.
type ReplayStats struct {
	Sent      int
	Elapsed   time.Duration
	Bytes     int64
	PerSecond float64
}

// Replay serializes and sends all alarms as fast as the configured
// thread count allows (rate = 0), or throttled to approximately
// ratePerSec alarms per second.
func (p *ProducerApp) Replay(alarms []alarm.Alarm, ratePerSec int) (ReplayStats, error) {
	threads := p.Threads
	if threads < 1 {
		threads = 1
	}
	start := time.Now()
	var sent atomic.Int64
	var bytes atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	chunk := (len(alarms) + threads - 1) / threads
	for t := 0; t < threads; t++ {
		lo := t * chunk
		hi := lo + chunk
		if lo >= len(alarms) {
			break
		}
		if hi > len(alarms) {
			hi = len(alarms)
		}
		wg.Add(1)
		go func(batch []alarm.Alarm) {
			defer wg.Done()
			var buf []byte
			var interval time.Duration
			if ratePerSec > 0 {
				interval = time.Duration(int64(time.Second) * int64(threads) / int64(ratePerSec))
			}
			next := time.Now()
			for i := range batch {
				if interval > 0 {
					if d := time.Until(next); d > 0 {
						time.Sleep(d)
					}
					next = next.Add(interval)
				}
				var err error
				buf, err = p.codec.Marshal(buf[:0], &batch[i])
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				val := make([]byte, len(buf))
				copy(val, buf)
				ts := batch[i].Timestamp
				if p.EnqueueTimestamps {
					ts = time.Time{} // zero: the broker stamps append time
				}
				if _, _, err := p.producer.SendAt([]byte(batch[i].DeviceMAC), val, ts); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				sent.Add(1)
				bytes.Add(int64(len(val)))
			}
		}(alarms[lo:hi])
	}
	wg.Wait()
	elapsed := time.Since(start)
	stats := ReplayStats{
		Sent:    int(sent.Load()),
		Elapsed: elapsed,
		Bytes:   bytes.Load(),
	}
	if elapsed > 0 {
		stats.PerSecond = float64(stats.Sent) / elapsed.Seconds()
	}
	if err, ok := firstErr.Load().(error); ok {
		return stats, err
	}
	return stats, nil
}
