package core

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"alarmverify/internal/codec"
	"alarmverify/internal/docstore"
)

func newTestService(t *testing.T) (*HTTPService, *httptest.Server, []byte) {
	t.Helper()
	_, alarms := testAlarms(3000)
	v := fastVerifier(t, alarms[:2000])
	h, err := NewHistory(docstore.NewDB())
	if err != nil {
		t.Fatal(err)
	}
	svc := NewHTTPService(v, h, DefaultCustomerPolicy())
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)
	wire, err := codec.FastCodec{}.Marshal(nil, &alarms[2500])
	if err != nil {
		t.Fatal(err)
	}
	return svc, srv, wire
}

func TestHTTPVerify(t *testing.T) {
	_, srv, wire := newTestService(t)
	resp, err := http.Post(srv.URL+"/verify", "application/json", bytes.NewReader(wire))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out verifyResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Predicted != "true" && out.Predicted != "false" {
		t.Errorf("predicted = %q", out.Predicted)
	}
	if out.Probability < 0.5 || out.Probability > 1 {
		t.Errorf("probability = %f", out.Probability)
	}
	if out.Route == "" {
		t.Error("route missing")
	}
}

func TestHTTPVerifyRejectsBadPayload(t *testing.T) {
	_, srv, _ := newTestService(t)
	resp, err := http.Post(srv.URL+"/verify", "application/json",
		bytes.NewReader([]byte("not an alarm")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

func TestHTTPHistoryAndStats(t *testing.T) {
	_, srv, wire := newTestService(t)
	// Verify twice so history and stats have content.
	for i := 0; i < 2; i++ {
		resp, err := http.Post(srv.URL+"/verify", "application/json", bytes.NewReader(wire))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	// Extract the device MAC from the wire form via the codec.
	var a = struct{ DeviceMAC string }{}
	_ = a
	// The alarm's MAC is inside the wire JSON; decode it generically.
	var m map[string]any
	if err := json.Unmarshal(wire, &m); err != nil {
		t.Fatal(err)
	}
	mac := m["deviceMac"].(string)

	resp, err := http.Get(srv.URL + "/history/" + mac + "?bucket=24h")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("history status = %d", resp.StatusCode)
	}
	var buckets []HistogramBucket
	if err := json.NewDecoder(resp.Body).Decode(&buckets); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, b := range buckets {
		total += b.Count
	}
	// The probe alarm's timestamp is from 2015/16; with since=now-30d
	// the histogram may be empty — what matters is a valid response.
	_ = total

	sresp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var st ServiceStats
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Served != 2 || st.Model != "rf" || st.TrainRecords == 0 {
		t.Errorf("stats = %+v", st)
	}
	routed := 0
	for _, n := range st.ByRoute {
		routed += n
	}
	if routed != 2 {
		t.Errorf("route counts = %v", st.ByRoute)
	}
}

func TestHTTPHealthzAndBadParams(t *testing.T) {
	_, srv, _ := newTestService(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, resp)
	}
	resp.Body.Close()
	for _, url := range []string{
		srv.URL + "/history/x?since=not-a-time",
		srv.URL + "/history/x?bucket=-5m",
		srv.URL + "/history/x?bucket=banana",
	} {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", url, resp.StatusCode)
		}
	}
}

func TestHTTPVerifyLatencyBudget(t *testing.T) {
	_, srv, wire := newTestService(t)
	start := time.Now()
	resp, err := http.Post(srv.URL+"/verify", "application/json", bytes.NewReader(wire))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// The §5.5.1 goal is a verification within 10 seconds; a single
	// in-process call must be far inside that.
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("verify took %v", elapsed)
	}
}
