package core

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"alarmverify/internal/codec"
	"alarmverify/internal/docstore"
	"alarmverify/internal/ml"
)

func newTestService(t *testing.T) (*HTTPService, *httptest.Server, []byte) {
	t.Helper()
	_, alarms := testAlarms(3000)
	v := fastVerifier(t, alarms[:2000])
	h, err := NewHistory(docstore.NewDB())
	if err != nil {
		t.Fatal(err)
	}
	svc := NewHTTPService(v, h, DefaultCustomerPolicy())
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)
	wire, err := codec.FastCodec{}.Marshal(nil, &alarms[2500])
	if err != nil {
		t.Fatal(err)
	}
	return svc, srv, wire
}

func TestHTTPVerify(t *testing.T) {
	_, srv, wire := newTestService(t)
	resp, err := http.Post(srv.URL+"/verify", "application/json", bytes.NewReader(wire))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out verifyResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Predicted != "true" && out.Predicted != "false" {
		t.Errorf("predicted = %q", out.Predicted)
	}
	if out.Probability < 0.5 || out.Probability > 1 {
		t.Errorf("probability = %f", out.Probability)
	}
	if out.Route == "" {
		t.Error("route missing")
	}
}

// TestHTTPVerifyOversizedBodyIs413 is the regression test for the
// hand-rolled read loop: a body over the 1MB cap used to be silently
// truncated and then either "verified" as a corrupt-prefix payload or
// rejected with a misleading 400. It must be a 413.
func TestHTTPVerifyOversizedBodyIs413(t *testing.T) {
	_, srv, wire := newTestService(t)
	big := make([]byte, maxBodyBytes+1)
	// A valid alarm prefix makes the old truncate-and-decode behavior
	// reachable: the first 1MB would decode were it not oversized.
	copy(big, wire)
	for i := len(wire); i < len(big); i++ {
		big[i] = ' '
	}
	resp, err := http.Post(srv.URL+"/verify", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status = %d, want 413", resp.StatusCode)
	}
	// An exactly-at-cap body must still be readable: it is the valid
	// alarm plus whitespace padding, so it decodes and verifies (200,
	// not 413).
	atCap := big[:maxBodyBytes]
	resp, err = http.Post(srv.URL+"/verify", "application/json", bytes.NewReader(atCap))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("at-cap body: status = %d, want 200 (valid alarm + whitespace padding)", resp.StatusCode)
	}
}

func TestHTTPFeedback(t *testing.T) {
	svc, srv, _ := newTestService(t)
	post := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(srv.URL+"/feedback", "application/json",
			bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	resp := post(`{"alarmId": 42, "deviceMac": "aa:bb", "verdict": "true"}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("feedback status = %d, want 202", resp.StatusCode)
	}
	var ack feedbackResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	if ack.AlarmID != 42 || ack.Verdict != "true" || ack.FeedbackCount != 1 {
		t.Fatalf("ack = %+v", ack)
	}
	if got, err := svc.history.FeedbackLabels(); err != nil || got[42] != 1 {
		t.Fatalf("recorded labels = %v, %v", got, err)
	}

	for _, bad := range []string{
		`{"alarmId": 42, "verdict": "maybe"}`, // unknown verdict
		`{"verdict": "true"}`,                 // missing alarm id
		`not json`,
	} {
		resp := post(bad)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", bad, resp.StatusCode)
		}
	}

	// Without a history there is nowhere to record verdicts.
	_, alarms := testAlarms(3000)
	v := fastVerifier(t, alarms[:2000])
	noHist := httptest.NewServer(NewHTTPService(v, nil, DefaultCustomerPolicy()).Handler())
	defer noHist.Close()
	resp2, err := http.Post(noHist.URL+"/feedback", "application/json",
		bytes.NewReader([]byte(`{"alarmId": 1, "verdict": "true"}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("feedback without history: status = %d, want 404", resp2.StatusCode)
	}
}

// TestHTTPStatsReflectsHotSwap is the regression test for /stats
// reporting boot-time verifier stats: after a hot swap it must
// reflect the live snapshot — model name, train records, features and
// version all from the swapped-in model.
func TestHTTPStatsReflectsHotSwap(t *testing.T) {
	svc, srv, _ := newTestService(t)
	getStats := func() ServiceStats {
		t.Helper()
		resp, err := http.Get(srv.URL + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st ServiceStats
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st
	}
	before := getStats()
	if before.Model != "rf" || before.ModelVersion != 0 {
		t.Fatalf("boot stats = %+v", before)
	}

	// Swap in a differently-trained, differently-shaped model.
	_, alarms := testAlarms(1200)
	lrCfg := ml.DefaultLogisticRegressionConfig()
	lrCfg.MaxIterations = 30
	cfg := DefaultVerifierConfig()
	cfg.Classifier = ml.NewLogisticRegression(lrCfg)
	nv, err := Train(alarms[:700], cfg)
	if err != nil {
		t.Fatal(err)
	}
	nv.withVersion(7)
	svc.verifier.Swap(nv)

	after := getStats()
	if after.Model != "lr" || after.ModelVersion != 7 {
		t.Fatalf("post-swap stats = %+v", after)
	}
	if after.TrainRecords != nv.Stats().TrainRecords || after.Features != nv.Stats().Features {
		t.Fatalf("post-swap stats mix models: %+v vs %+v", after, nv.Stats())
	}
	if after.TrainRecords == before.TrainRecords {
		t.Fatal("swap not observable: train records unchanged")
	}
}

func TestHTTPVerifyRejectsBadPayload(t *testing.T) {
	_, srv, _ := newTestService(t)
	resp, err := http.Post(srv.URL+"/verify", "application/json",
		bytes.NewReader([]byte("not an alarm")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

func TestHTTPHistoryAndStats(t *testing.T) {
	_, srv, wire := newTestService(t)
	// Verify twice so history and stats have content.
	for i := 0; i < 2; i++ {
		resp, err := http.Post(srv.URL+"/verify", "application/json", bytes.NewReader(wire))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	// Extract the device MAC from the wire form via the codec.
	var a = struct{ DeviceMAC string }{}
	_ = a
	// The alarm's MAC is inside the wire JSON; decode it generically.
	var m map[string]any
	if err := json.Unmarshal(wire, &m); err != nil {
		t.Fatal(err)
	}
	mac := m["deviceMac"].(string)

	resp, err := http.Get(srv.URL + "/history/" + mac + "?bucket=24h")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("history status = %d", resp.StatusCode)
	}
	var buckets []HistogramBucket
	if err := json.NewDecoder(resp.Body).Decode(&buckets); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, b := range buckets {
		total += b.Count
	}
	// The probe alarm's timestamp is from 2015/16; with since=now-30d
	// the histogram may be empty — what matters is a valid response.
	_ = total

	sresp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var st ServiceStats
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Served != 2 || st.Model != "rf" || st.TrainRecords == 0 {
		t.Errorf("stats = %+v", st)
	}
	routed := 0
	for _, n := range st.ByRoute {
		routed += n
	}
	if routed != 2 {
		t.Errorf("route counts = %v", st.ByRoute)
	}
}

func TestHTTPHealthzAndBadParams(t *testing.T) {
	_, srv, _ := newTestService(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, resp)
	}
	resp.Body.Close()
	for _, url := range []string{
		srv.URL + "/history/x?since=not-a-time",
		srv.URL + "/history/x?bucket=-5m",
		srv.URL + "/history/x?bucket=banana",
	} {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", url, resp.StatusCode)
		}
	}
}

func TestHTTPVerifyLatencyBudget(t *testing.T) {
	_, srv, wire := newTestService(t)
	start := time.Now()
	resp, err := http.Post(srv.URL+"/verify", "application/json", bytes.NewReader(wire))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// The §5.5.1 goal is a verification within 10 seconds; a single
	// in-process call must be far inside that.
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("verify took %v", elapsed)
	}
}
