package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"alarmverify/internal/alarm"
	"alarmverify/internal/codec"
	"alarmverify/internal/metrics"
)

// HTTPService exposes the verification service over HTTP — the
// integration surface an Alarm Receiving Center or the "My Security
// Center" portal (§3) would call.
//
//	POST /verify          body: one alarm in the wire JSON format
//	                      response: the verification (and route)
//	POST /feedback        body: one operator verdict for an alarm
//	                      (the ground truth the retrainer learns from)
//	GET  /history/{mac}   per-device alarm histogram (§4.1)
//	GET  /stats           service statistics (latency quantiles included)
//	GET  /metrics         Prometheus text exposition of the edge and
//	                      pipeline latency histograms + shed counter
//	GET  /healthz         liveness
type HTTPService struct {
	verifier *Verifier
	history  *History
	policy   CustomerPolicy
	codec    codec.Codec
	// edgeLatency is the /verify request-latency histogram.
	edgeLatency *metrics.Histogram
	// pipeline, when attached, is the serving pipeline's stage/e2e
	// metric set, folded into /metrics and /stats.
	pipeline *metrics.Pipeline

	// topDevices, when positive, sizes the /stats top-device ranking —
	// a pushdown group-count aggregation over the alarm history.
	topDevices int

	mu      sync.Mutex
	served  int
	byRoute map[Route]int
}

// NewHTTPService wires the service. history may be nil (histogram
// endpoints then return 404).
func NewHTTPService(v *Verifier, h *History, policy CustomerPolicy) *HTTPService {
	return &HTTPService{
		verifier:    v,
		history:     h,
		policy:      policy,
		codec:       codec.FastCodec{},
		edgeLatency: metrics.NewHistogram(),
		byRoute:     make(map[Route]int),
	}
}

// AttachPipeline folds a serving pipeline's latency metrics (the
// per-stage and end-to-end histograms plus the shed counter recorded
// by the consumer shards) into /metrics and /stats. Call before the
// handler starts serving.
func (s *HTTPService) AttachPipeline(m *metrics.Pipeline) { s.pipeline = m }

// SetTopDevices makes /stats include the k noisiest devices (by
// stored alarm count, a pushdown aggregation over the history).
// k <= 0 (the default) omits the ranking. Call before the handler
// starts serving.
func (s *HTTPService) SetTopDevices(k int) { s.topDevices = k }

// Handler returns the service's HTTP routes.
func (s *HTTPService) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /verify", s.handleVerify)
	mux.HandleFunc("POST /feedback", s.handleFeedback)
	mux.HandleFunc("GET /history/{mac}", s.handleHistory)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// verifyResponse is the wire shape of a verification result.
type verifyResponse struct {
	AlarmID     int64   `json:"alarmId"`
	Predicted   string  `json:"predicted"`
	Probability float64 `json:"probability"`
	Model       string  `json:"model"`
	Route       string  `json:"route"`
	LatencyMS   float64 `json:"latencyMs"`
}

// maxBodyBytes caps request bodies on the alarm edge (alarms are
// "less than 1KB in size", §5.5.2 — 1MB is generous).
const maxBodyBytes = 1 << 20

// readBody drains a capped request body, distinguishing an oversized
// payload (413, the cap was hit) from a transport error. The previous
// hand-rolled read loop swallowed both: an over-cap body came back
// silently truncated and was then either "verified" as a corrupt
// prefix or rejected with a misleading 400.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, fmt.Sprintf("payload exceeds %d bytes", tooBig.Limit),
				http.StatusRequestEntityTooLarge)
		} else {
			http.Error(w, fmt.Sprintf("reading body: %v", err), http.StatusBadRequest)
		}
		return nil, false
	}
	return raw, true
}

func (s *HTTPService) handleVerify(w http.ResponseWriter, r *http.Request) {
	raw, ok := readBody(w, r)
	if !ok {
		return
	}
	var a alarm.Alarm
	if err := s.codec.Unmarshal(raw, &a); err != nil {
		http.Error(w, fmt.Sprintf("bad alarm payload: %v", err), http.StatusBadRequest)
		return
	}
	start := time.Now()
	v, err := s.verifier.Verify(&a)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	route := s.policy.Decide(&a, v)
	if s.history != nil {
		s.history.Record(&a)
	}
	s.edgeLatency.Record(time.Since(start))
	s.mu.Lock()
	s.served++
	s.byRoute[route]++
	s.mu.Unlock()

	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(verifyResponse{
		AlarmID:     v.AlarmID,
		Predicted:   v.Predicted.String(),
		Probability: v.Probability,
		Model:       v.ModelName,
		Route:       route.String(),
		LatencyMS:   v.LatencyMS,
	})
}

// feedbackRequest is the wire shape of one operator verdict.
type feedbackRequest struct {
	AlarmID   int64  `json:"alarmId"`
	DeviceMAC string `json:"deviceMac"`
	// Verdict is "true" (intervention was warranted) or "false".
	Verdict string `json:"verdict"`
}

// feedbackResponse acknowledges a recorded verdict.
type feedbackResponse struct {
	AlarmID       int64  `json:"alarmId"`
	Verdict       string `json:"verdict"`
	FeedbackCount int    `json:"feedbackCount"`
}

// handleFeedback records an operator's eventual ground-truth verdict
// for an alarm. The background retrainer folds these verdicts into
// the next train set, overriding the Δt-heuristic label.
func (s *HTTPService) handleFeedback(w http.ResponseWriter, r *http.Request) {
	if s.history == nil {
		http.Error(w, "history disabled", http.StatusNotFound)
		return
	}
	raw, ok := readBody(w, r)
	if !ok {
		return
	}
	var req feedbackRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		http.Error(w, fmt.Sprintf("bad feedback payload: %v", err), http.StatusBadRequest)
		return
	}
	if req.AlarmID == 0 {
		http.Error(w, "feedback needs a non-zero alarmId", http.StatusBadRequest)
		return
	}
	var verdict alarm.Label
	switch req.Verdict {
	case "true":
		verdict = alarm.True
	case "false":
		verdict = alarm.False
	default:
		http.Error(w, fmt.Sprintf("verdict must be %q or %q, got %q", "true", "false", req.Verdict),
			http.StatusBadRequest)
		return
	}
	s.history.RecordFeedback(Feedback{
		AlarmID:   req.AlarmID,
		DeviceMAC: req.DeviceMAC,
		Verdict:   verdict,
		At:        time.Now().UTC(),
	})
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(feedbackResponse{
		AlarmID:       req.AlarmID,
		Verdict:       req.Verdict,
		FeedbackCount: s.history.FeedbackCount(),
	})
}

func (s *HTTPService) handleHistory(w http.ResponseWriter, r *http.Request) {
	if s.history == nil {
		http.Error(w, "history disabled", http.StatusNotFound)
		return
	}
	mac := r.PathValue("mac")
	since := time.Now().Add(-30 * 24 * time.Hour)
	if q := r.URL.Query().Get("since"); q != "" {
		t, err := time.Parse(time.RFC3339, q)
		if err != nil {
			http.Error(w, "bad since parameter (RFC3339)", http.StatusBadRequest)
			return
		}
		since = t
	}
	bucket := 24 * time.Hour
	if q := r.URL.Query().Get("bucket"); q != "" {
		d, err := time.ParseDuration(q)
		if err != nil || d <= 0 {
			http.Error(w, "bad bucket parameter (duration)", http.StatusBadRequest)
			return
		}
		bucket = d
	}
	buckets, err := s.history.DeviceHistogram(mac, since, bucket)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(buckets)
}

// ServiceStats is the /stats payload. The model fields come from one
// atomic snapshot of the live verifier, so after a hot swap they are
// the swapped-in model's — never a mix of two models' fields. The
// latency fields come from the lock-free histograms: VerifyLatency is
// the HTTP edge, Pipeline the attached serving pipeline's per-stage
// and end-to-end quantiles, ShedRecords its load-shedding drop count.
type ServiceStats struct {
	Served        int                               `json:"served"`
	ByRoute       map[string]int                    `json:"byRoute"`
	MeanLatencyMS float64                           `json:"meanLatencyMs"`
	VerifyLatency *metrics.LatencySummary           `json:"verifyLatency,omitempty"`
	Pipeline      map[string]metrics.LatencySummary `json:"pipelineLatency,omitempty"`
	ShedRecords   int64                             `json:"shedRecords"`
	Model         string                            `json:"model"`
	ModelVersion  int                               `json:"modelVersion"`
	TrainRecords  int                               `json:"trainRecords"`
	Features      int                               `json:"features"`
	FeedbackCount int                               `json:"feedbackCount"`
	// TopDevices ranks the noisiest devices by stored alarm count
	// (present when SetTopDevices enabled the panel and a history is
	// attached).
	TopDevices []DeviceCount `json:"topDevices,omitempty"`
}

func (s *HTTPService) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	st := ServiceStats{
		Served:  s.served,
		ByRoute: make(map[string]int, len(s.byRoute)),
	}
	for route, n := range s.byRoute {
		st.ByRoute[route.String()] = n
	}
	s.mu.Unlock()
	if edge := s.edgeLatency.Snapshot(); edge.N > 0 {
		sum := edge.Summary()
		st.VerifyLatency = &sum
		st.MeanLatencyMS = sum.MeanMS
	}
	if s.pipeline != nil {
		ps := s.pipeline.Snapshot()
		st.Pipeline = make(map[string]metrics.LatencySummary, len(ps.Stages))
		for stage, snap := range ps.Stages {
			st.Pipeline[string(stage)] = snap.Summary()
		}
		st.ShedRecords = ps.ShedRecords
	}
	info := s.verifier.Info()
	st.Model = string(info.Stats.Algorithm)
	st.ModelVersion = info.ModelVersion
	st.TrainRecords = info.Stats.TrainRecords
	st.Features = info.Stats.Features
	if s.history != nil {
		st.FeedbackCount = s.history.FeedbackCount()
		if s.topDevices > 0 {
			if top, err := s.history.TopDevices(s.topDevices); err == nil {
				st.TopDevices = top
			}
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}

// handleMetrics renders the latency histograms in the Prometheus text
// exposition format: the HTTP edge histogram always, plus the
// attached pipeline's stage/e2e histograms and shed counter.
func (s *HTTPService) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	metrics.WritePromHistogram(w, "alarmverify_http_verify_latency_seconds",
		s.edgeLatency.Snapshot())
	if s.pipeline != nil {
		s.pipeline.Snapshot().WriteProm(w)
	}
}
