package core

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"alarmverify/internal/alarm"
	"alarmverify/internal/codec"
)

// HTTPService exposes the verification service over HTTP — the
// integration surface an Alarm Receiving Center or the "My Security
// Center" portal (§3) would call.
//
//	POST /verify          body: one alarm in the wire JSON format
//	                      response: the verification (and route)
//	GET  /history/{mac}   per-device alarm histogram (§4.1)
//	GET  /stats           service statistics
//	GET  /healthz         liveness
type HTTPService struct {
	verifier *Verifier
	history  *History
	policy   CustomerPolicy
	codec    codec.Codec

	mu         sync.Mutex
	served     int
	byRoute    map[Route]int
	latencySum float64
}

// NewHTTPService wires the service. history may be nil (histogram
// endpoints then return 404).
func NewHTTPService(v *Verifier, h *History, policy CustomerPolicy) *HTTPService {
	return &HTTPService{
		verifier: v,
		history:  h,
		policy:   policy,
		codec:    codec.FastCodec{},
		byRoute:  make(map[Route]int),
	}
}

// Handler returns the service's HTTP routes.
func (s *HTTPService) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /verify", s.handleVerify)
	mux.HandleFunc("GET /history/{mac}", s.handleHistory)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// verifyResponse is the wire shape of a verification result.
type verifyResponse struct {
	AlarmID     int64   `json:"alarmId"`
	Predicted   string  `json:"predicted"`
	Probability float64 `json:"probability"`
	Model       string  `json:"model"`
	Route       string  `json:"route"`
	LatencyMS   float64 `json:"latencyMs"`
}

func (s *HTTPService) handleVerify(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	var raw []byte
	buf := make([]byte, 4096)
	for {
		n, err := body.Read(buf)
		raw = append(raw, buf[:n]...)
		if err != nil {
			break
		}
	}
	var a alarm.Alarm
	if err := s.codec.Unmarshal(raw, &a); err != nil {
		http.Error(w, fmt.Sprintf("bad alarm payload: %v", err), http.StatusBadRequest)
		return
	}
	start := time.Now()
	v, err := s.verifier.Verify(&a)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	route := s.policy.Decide(&a, v)
	if s.history != nil {
		s.history.Record(&a)
	}
	s.mu.Lock()
	s.served++
	s.byRoute[route]++
	s.latencySum += float64(time.Since(start).Microseconds()) / 1000
	s.mu.Unlock()

	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(verifyResponse{
		AlarmID:     v.AlarmID,
		Predicted:   v.Predicted.String(),
		Probability: v.Probability,
		Model:       v.ModelName,
		Route:       route.String(),
		LatencyMS:   v.LatencyMS,
	})
}

func (s *HTTPService) handleHistory(w http.ResponseWriter, r *http.Request) {
	if s.history == nil {
		http.Error(w, "history disabled", http.StatusNotFound)
		return
	}
	mac := r.PathValue("mac")
	since := time.Now().Add(-30 * 24 * time.Hour)
	if q := r.URL.Query().Get("since"); q != "" {
		t, err := time.Parse(time.RFC3339, q)
		if err != nil {
			http.Error(w, "bad since parameter (RFC3339)", http.StatusBadRequest)
			return
		}
		since = t
	}
	bucket := 24 * time.Hour
	if q := r.URL.Query().Get("bucket"); q != "" {
		d, err := time.ParseDuration(q)
		if err != nil || d <= 0 {
			http.Error(w, "bad bucket parameter (duration)", http.StatusBadRequest)
			return
		}
		bucket = d
	}
	buckets, err := s.history.DeviceHistogram(mac, since, bucket)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(buckets)
}

// ServiceStats is the /stats payload.
type ServiceStats struct {
	Served        int            `json:"served"`
	ByRoute       map[string]int `json:"byRoute"`
	MeanLatencyMS float64        `json:"meanLatencyMs"`
	Model         string         `json:"model"`
	TrainRecords  int            `json:"trainRecords"`
	Features      int            `json:"features"`
}

func (s *HTTPService) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	st := ServiceStats{
		Served:  s.served,
		ByRoute: make(map[string]int, len(s.byRoute)),
	}
	for route, n := range s.byRoute {
		st.ByRoute[route.String()] = n
	}
	if s.served > 0 {
		st.MeanLatencyMS = s.latencySum / float64(s.served)
	}
	s.mu.Unlock()
	ts := s.verifier.Stats()
	st.Model = string(ts.Algorithm)
	st.TrainRecords = ts.TrainRecords
	st.Features = ts.Features
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}
