package core

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"alarmverify/internal/alarm"
	"alarmverify/internal/broker"
	"alarmverify/internal/codec"
	"alarmverify/internal/docstore"
)

// copyOnlyCodec hides FastCodec's scratch path, forcing the copying
// RDD pipeline even with decoded-batch caching on — the reference
// behavior the zero-copy path must reproduce exactly.
type copyOnlyCodec struct{}

func (copyOnlyCodec) Name() string { return "fast-json-copyonly" }

func (copyOnlyCodec) Marshal(dst []byte, a *alarm.Alarm) ([]byte, error) {
	return codec.FastCodec{}.Marshal(dst, a)
}

func (copyOnlyCodec) Unmarshal(data []byte, a *alarm.Alarm) error {
	return codec.FastCodec{}.Unmarshal(data, a)
}

// hotpathBroker preloads a single-partition topic with the alarms plus
// a sprinkle of undecodable and zero-ID records, which both decode
// paths must drop identically.
func hotpathBroker(t *testing.T, alarms []alarm.Alarm) *broker.Broker {
	t.Helper()
	b := broker.New()
	t.Cleanup(func() { b.Close() })
	topic, err := b.CreateTopic("alarms", 1)
	if err != nil {
		t.Fatal(err)
	}
	prod := broker.NewProducer(topic)
	var fc codec.FastCodec
	var buf []byte
	for i := range alarms {
		buf, err = fc.Marshal(buf[:0], &alarms[i])
		if err != nil {
			t.Fatal(err)
		}
		val := make([]byte, len(buf))
		copy(val, buf)
		if _, _, err := prod.Send([]byte(alarms[i].DeviceMAC), val); err != nil {
			t.Fatal(err)
		}
		if i%17 == 0 {
			if _, _, err := prod.Send(nil, []byte(`{"truncated`)); err != nil {
				t.Fatal(err)
			}
		}
		if i%23 == 0 {
			if _, _, err := prod.Send(nil, []byte(`{"id":0,"type":"fire","status":"real"}`)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return b
}

func hotpathApp(t *testing.T, b *broker.Broker, group string, v *Verifier, c codec.Codec, n int) *ConsumerApp {
	t.Helper()
	cfg := DefaultConsumerConfig()
	cfg.Codec = c
	cfg.MaxPerBatch = n
	app, err := NewConsumerApp(b, "alarms", group, "c1", v, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(app.Close)
	return app
}

// TestFastDrainMatchesCopyingPath is the acceptance property of the
// zero-copy hot path: over the same wire records — valid, corrupt, and
// zero-ID alike — the pooled scratch pipeline must produce the same
// decoded alarms, the same distinct-device set, and the same offsets
// as the copying RDD pipeline.
func TestFastDrainMatchesCopyingPath(t *testing.T) {
	_, alarms := testAlarms(600)
	verifier := fastVerifier(t, alarms[:200])
	bFast := hotpathBroker(t, alarms)
	bCopy := hotpathBroker(t, alarms)
	fast := hotpathApp(t, bFast, "fast", verifier, codec.FastCodec{}, 2*len(alarms))
	ref := hotpathApp(t, bCopy, "copy", verifier, copyOnlyCodec{}, 2*len(alarms))

	fb := fast.Drain()
	fast.Decode(fb)
	if !fb.pooled {
		t.Fatal("fast app did not take the pooled drain path")
	}
	rb := ref.Drain()
	ref.Decode(rb)
	if rb.pooled {
		t.Fatal("copy-only codec unexpectedly took the pooled path")
	}

	if fb.Len() != rb.Len() {
		t.Fatalf("fast decoded %d alarms, copying %d", fb.Len(), rb.Len())
	}
	if fb.Len() != len(alarms) {
		t.Fatalf("decoded %d alarms, want %d (corrupt records must drop)", fb.Len(), len(alarms))
	}
	for i := range fb.Alarms {
		if !reflect.DeepEqual(fb.Alarms[i], rb.Alarms[i]) {
			t.Fatalf("alarm %d differs:\nfast: %+v\ncopy: %+v", i, fb.Alarms[i], rb.Alarms[i])
		}
	}
	// Distinct extraction orders differ (shuffle vs first-occurrence):
	// compare as sets of MACs.
	set := func(devs []alarm.Alarm) map[string]bool {
		out := make(map[string]bool, len(devs))
		for i := range devs {
			out[devs[i].DeviceMAC] = true
		}
		return out
	}
	if fs, rs := set(fb.Devices), set(rb.Devices); !reflect.DeepEqual(fs, rs) {
		t.Fatalf("device sets differ: fast %d devices, copy %d", len(fs), len(rs))
	}
	if !reflect.DeepEqual(fb.Offsets, rb.Offsets) {
		t.Fatalf("offsets differ: fast %v, copy %v", fb.Offsets, rb.Offsets)
	}
	if fn, rn := fb.Raw.Count(fast.pool), rb.Raw.Count(ref.pool); fn != rn {
		t.Fatalf("raw count %d != copying %d", fn, rn)
	}
	fast.ReleaseBatch(fb)
}

// TestPooledBatchLifecycle runs the full stage sequence over many
// pooled batches with both leak detectors armed: lease check mode
// poisons released payload copies, batch check mode poisons released
// batches, and the consumer's lease counter must return to zero — any
// use-after-release or leaked lease fails loudly (run under -race).
func TestPooledBatchLifecycle(t *testing.T) {
	_, alarms := testAlarms(800)
	verifier := fastVerifier(t, alarms[:300])
	b := hotpathBroker(t, alarms[300:])
	h, err := NewHistory(docstore.NewDB())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConsumerConfig()
	cfg.MaxPerBatch = 64
	app, err := NewConsumerApp(b, "alarms", "pool", "c1", verifier, h, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()

	broker.SetLeaseCheck(true)
	defer broker.SetLeaseCheck(false)
	SetBatchCheck(true)
	defer SetBatchCheck(false)

	total := 0
	for i := 0; i < 40; i++ {
		batch := app.Drain()
		app.Decode(batch)
		if batch.Len() == 0 {
			app.ReleaseBatch(batch)
			break
		}
		if err := app.Classify(batch); err != nil {
			t.Fatal(err)
		}
		if err := app.Persist(batch); err != nil {
			t.Fatal(err)
		}
		if err := app.CommitBatch(batch); err != nil {
			t.Fatal(err)
		}
		total += batch.Len()
		app.ReleaseBatch(batch)
		app.ReleaseBatch(batch) // release is idempotent
	}
	if total != 500 {
		t.Fatalf("processed %d alarms, want 500", total)
	}
	if n := app.consumer.ActiveLeases(); n != 0 {
		t.Fatalf("%d leases still active after all batches released", n)
	}
}

// TestReleasePoisonsBatch pins the loud-failure contract: under check
// mode, a released batch's alarms are overwritten with poison values,
// so any stage that wrongly retains a reference reads garbage instead
// of silently-recycled data.
func TestReleasePoisonsBatch(t *testing.T) {
	_, alarms := testAlarms(50)
	b := hotpathBroker(t, alarms)
	app := hotpathApp(t, b, "poison", fastVerifier(t, alarms), codec.FastCodec{}, len(alarms)*2)

	SetBatchCheck(true)
	defer SetBatchCheck(false)

	batch := app.Drain()
	app.Decode(batch)
	if batch.Len() == 0 {
		t.Fatal("empty drain")
	}
	retained := batch.Alarms // the bug under test: outliving the release
	app.ReleaseBatch(batch)
	for i := range retained {
		if retained[i].ID != -1 || retained[i].DeviceMAC != poisonedField {
			t.Fatalf("alarm %d not poisoned after release: %+v", i, retained[i])
		}
	}
}

// TestDeviceHistogramsMatchesSingle: the batched per-device histogram
// query must return, for every device, exactly what the single-device
// query returns — it is the same computation in one round-trip.
func TestDeviceHistogramsMatchesSingle(t *testing.T) {
	h, err := NewHistory(docstore.NewDB())
	if err != nil {
		t.Fatal(err)
	}
	macs := []string{"mac-a", "mac-b", "mac-c", "mac-absent"}
	base := time.Date(2016, 2, 11, 10, 0, 0, 0, time.UTC)
	for mi, mac := range macs[:3] {
		h.RecordBatch(historyAlarms(40+mi*13, mac))
	}
	since := base.Add(-time.Hour)
	bucket := 30 * time.Minute

	batched, err := h.DeviceHistograms(macs, since, bucket)
	if err != nil {
		t.Fatal(err)
	}
	if len(batched) != len(macs) {
		t.Fatalf("%d histograms for %d devices", len(batched), len(macs))
	}
	for i, mac := range macs {
		single, err := h.DeviceHistogram(mac, since, bucket)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(batched[i], single) {
			t.Fatalf("%s: batched %+v != single %+v", mac, batched[i], single)
		}
	}
	if got, err := h.DeviceHistograms(nil, since, bucket); err != nil || got != nil {
		t.Fatalf("empty query: got %v, %v", got, err)
	}
}

// BenchmarkDecodePath measures the per-batch decode cost of the two
// paths over identical records; allocs/op is the number the zero-copy
// path exists to eliminate.
func BenchmarkDecodePath(b *testing.B) {
	_, alarms := testAlarms(512)
	for _, mode := range []string{"scratch", "copying"} {
		b.Run(mode, func(b *testing.B) {
			var cdc codec.Codec = codec.FastCodec{}
			if mode == "copying" {
				cdc = copyOnlyCodec{}
			}
			bk := broker.New()
			defer bk.Close()
			topic, err := bk.CreateTopic("alarms", 1)
			if err != nil {
				b.Fatal(err)
			}
			prod := NewProducerApp(topic, codec.FastCodec{})
			if _, err := prod.Replay(alarms, 0); err != nil {
				b.Fatal(err)
			}
			cfg := DefaultConsumerConfig()
			cfg.Codec = cdc
			cfg.MaxPerBatch = len(alarms)
			app, err := NewConsumerApp(bk, "alarms", fmt.Sprintf("bench-%s", mode), "c1", fastVerifier(b, alarms[:100]), nil, cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer app.Close()
			batch := app.Drain()
			app.Decode(batch)
			if batch.Len() != len(alarms) {
				b.Fatalf("decoded %d, want %d", batch.Len(), len(alarms))
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if batch.pooled {
					batch.Alarms = batch.Alarms[:0]
					batch.Devices = batch.Devices[:0]
					clear(batch.seen)
					app.decodeScratch(batch)
				} else {
					app.Decode(batch)
				}
			}
		})
	}
}
