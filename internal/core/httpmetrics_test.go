package core

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"alarmverify/internal/metrics"
)

func TestHTTPMetricsEndpoint(t *testing.T) {
	svc, srv, wire := newTestService(t)
	pipe := metrics.NewPipeline()
	pipe.Stage(metrics.StageE2E).Record(25 * time.Millisecond)
	pipe.AddShed(9)
	svc.AttachPipeline(pipe)

	// Drive one verification so the edge histogram has an observation.
	resp, err := http.Post(srv.URL+"/verify", "application/json", bytes.NewReader(wire))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics status = %d", mresp.StatusCode)
	}
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q, want text/plain exposition", ct)
	}
	body, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		`alarmverify_http_verify_latency_seconds{quantile="0.99"}`,
		"alarmverify_http_verify_latency_seconds_count{} 1",
		`alarmverify_stage_latency_seconds{stage="e2e",quantile="0.5"}`,
		"alarmverify_shed_records_total 9",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q:\n%s", want, out)
		}
	}
}

func TestHTTPStatsLatencyFields(t *testing.T) {
	svc, srv, wire := newTestService(t)
	pipe := metrics.NewPipeline()
	pipe.Stage(metrics.StageE2E).Record(40 * time.Millisecond)
	pipe.Stage(metrics.StageClassify).Record(3 * time.Millisecond)
	pipe.AddShed(4)
	svc.AttachPipeline(pipe)

	for i := 0; i < 3; i++ {
		resp, err := http.Post(srv.URL+"/verify", "application/json", bytes.NewReader(wire))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st ServiceStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Served != 3 {
		t.Errorf("served = %d", st.Served)
	}
	if st.VerifyLatency == nil || st.VerifyLatency.Count != 3 {
		t.Fatalf("verifyLatency missing or wrong: %+v", st.VerifyLatency)
	}
	if st.VerifyLatency.P99MS <= 0 {
		t.Errorf("edge p99 = %v, want > 0", st.VerifyLatency.P99MS)
	}
	if st.MeanLatencyMS <= 0 {
		t.Errorf("meanLatencyMs = %v, want > 0", st.MeanLatencyMS)
	}
	if st.ShedRecords != 4 {
		t.Errorf("shedRecords = %d, want 4", st.ShedRecords)
	}
	e2e, ok := st.Pipeline["e2e"]
	if !ok || e2e.Count != 1 {
		t.Fatalf("pipeline e2e summary missing: %+v", st.Pipeline)
	}
	if e2e.P99MS < 30 || e2e.P99MS > 60 {
		t.Errorf("e2e p99 = %vms, want ≈ 40ms", e2e.P99MS)
	}
	if cls := st.Pipeline["classify"]; cls.Count != 1 {
		t.Errorf("classify summary missing: %+v", st.Pipeline)
	}
}
