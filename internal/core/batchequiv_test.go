package core

import (
	"fmt"
	"math"
	"testing"

	"alarmverify/internal/alarm"
	"alarmverify/internal/broker"
	"alarmverify/internal/codec"
	"alarmverify/internal/ml"
)

// equivClassifiers builds one fast-training classifier per algorithm.
func equivClassifiers() map[Algorithm]ml.Classifier {
	rf := ml.DefaultRandomForestConfig()
	rf.NumTrees = 10
	rf.MaxDepth = 8
	svm := ml.DefaultSVMConfig()
	svm.MaxIterations = 200
	lr := ml.DefaultLogisticRegressionConfig()
	lr.MaxIterations = 80
	dnn := ml.DefaultDNNConfig()
	dnn.MaxEpochs = 15
	dnn.Patience = 3
	return map[Algorithm]ml.Classifier{
		RandomForest:         ml.NewRandomForest(rf),
		SupportVectorMachine: ml.NewSVM(svm),
		LogisticRegression:   ml.NewLogisticRegression(lr),
		DeepNeuralNetwork:    ml.NewDNN(dnn),
	}
}

// sameVerification compares everything except LatencyMS (pure timing
// noise), with probabilities compared bit-for-bit.
func sameVerification(a, b alarm.Verification) error {
	if a.AlarmID != b.AlarmID {
		return fmt.Errorf("alarm id %d != %d", a.AlarmID, b.AlarmID)
	}
	if a.Predicted != b.Predicted {
		return fmt.Errorf("predicted %v != %v", a.Predicted, b.Predicted)
	}
	if math.Float64bits(a.Probability) != math.Float64bits(b.Probability) {
		return fmt.Errorf("probability %x != %x (%v vs %v)",
			math.Float64bits(a.Probability), math.Float64bits(b.Probability),
			a.Probability, b.Probability)
	}
	if a.ModelName != b.ModelName {
		return fmt.Errorf("model %q != %q", a.ModelName, b.ModelName)
	}
	return nil
}

// TestVerifyBatchMatchesSequential is the acceptance property of the
// batched inference engine: for every one of the paper's four
// classifiers, VerifyBatch must produce verifications bit-identical
// (modulo latency) to calling Verify per alarm — across batch sizes,
// including chunk sizes that don't divide the batch.
func TestVerifyBatchMatchesSequential(t *testing.T) {
	_, alarms := testAlarms(900)
	train, live := alarms[:600], alarms[600:]
	for algo, cls := range equivClassifiers() {
		t.Run(string(algo), func(t *testing.T) {
			cfg := DefaultVerifierConfig()
			cfg.Classifier = cls
			v, err := Train(train, cfg)
			if err != nil {
				t.Fatalf("train: %v", err)
			}
			want := make([]alarm.Verification, len(live))
			for i := range live {
				want[i], err = v.Verify(&live[i])
				if err != nil {
					t.Fatalf("verify %d: %v", i, err)
				}
			}
			for _, size := range []int{1, 7, 64, len(live)} {
				for lo := 0; lo < len(live); lo += size {
					hi := min(lo+size, len(live))
					got, err := v.VerifyBatch(live[lo:hi])
					if err != nil {
						t.Fatalf("batch [%d:%d]: %v", lo, hi, err)
					}
					for i := range got {
						if err := sameVerification(got[i], want[lo+i]); err != nil {
							t.Fatalf("%s: batch size %d, alarm %d: %v", algo, size, lo+i, err)
						}
					}
				}
			}
		})
	}
}

// TestVotingBatchMatchesSequential asserts the ensemble's batched
// vote aggregates to bit-identical verifications.
func TestVotingBatchMatchesSequential(t *testing.T) {
	_, alarms := testAlarms(700)
	train, live := alarms[:500], alarms[500:]
	var members []*Verifier
	for _, cls := range equivClassifiers() {
		cfg := DefaultVerifierConfig()
		cfg.Classifier = cls
		v, err := Train(train, cfg)
		if err != nil {
			t.Fatalf("train: %v", err)
		}
		members = append(members, v)
	}
	vote, err := NewVotingVerifier(members...)
	if err != nil {
		t.Fatal(err)
	}
	got, err := vote.VerifyBatch(live)
	if err != nil {
		t.Fatal(err)
	}
	for i := range live {
		want, err := vote.Verify(&live[i])
		if err != nil {
			t.Fatal(err)
		}
		if err := sameVerification(got[i], want); err != nil {
			t.Fatalf("alarm %d: %v", i, err)
		}
	}
}

// TestAdaptiveBatchUsesActiveMember asserts the adaptive wrapper's
// batch path serves the same member (and results) as per-alarm calls.
func TestAdaptiveBatchUsesActiveMember(t *testing.T) {
	_, alarms := testAlarms(400)
	train, live := alarms[:300], alarms[300:]
	v1 := fastVerifier(t, train)
	v2 := fastVerifier(t, train)
	ad, err := NewAdaptiveVerifier(20, v1, v2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ad.VerifyBatch(live)
	if err != nil {
		t.Fatal(err)
	}
	for i := range live {
		want, err := ad.Verify(&live[i])
		if err != nil {
			t.Fatal(err)
		}
		if err := sameVerification(got[i], want); err != nil {
			t.Fatalf("alarm %d: %v", i, err)
		}
	}
}

// TestVerifyBatchIntoValidatesLength covers the short-output error.
func TestVerifyBatchIntoValidatesLength(t *testing.T) {
	_, alarms := testAlarms(120)
	v := fastVerifier(t, alarms[:100])
	out := make([]alarm.Verification, 5)
	if err := v.VerifyBatchInto(alarms[100:], out); err == nil {
		t.Fatal("short output slice accepted")
	}
}

// TestClassifyStageMatchesSequential runs the whole pipeline Classify
// stage (chunked, on the bounded classify pool) against per-alarm
// Verify over the same decoded batch, across worker and chunk
// configurations.
func TestClassifyStageMatchesSequential(t *testing.T) {
	_, alarms := testAlarms(800)
	verifier := fastVerifier(t, alarms[:500])
	live := alarms[500:]
	want := make([]alarm.Verification, len(live))
	for i := range live {
		var err error
		want[i], err = verifier.Verify(&live[i])
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, tc := range []struct{ workers, batch int }{
		{1, 1}, {1, 64}, {2, 32}, {4, 256}, {3, 7},
	} {
		t.Run(fmt.Sprintf("workers=%d_batch=%d", tc.workers, tc.batch), func(t *testing.T) {
			app := newClassifyApp(t, verifier, live, tc.workers, tc.batch)
			defer app.Close()
			b := app.Drain()
			app.Decode(b)
			if b.Len() != len(live) {
				t.Fatalf("decoded %d alarms, want %d", b.Len(), len(live))
			}
			if err := app.Classify(b); err != nil {
				t.Fatal(err)
			}
			if len(b.Verified) != len(live) {
				t.Fatalf("%d verifications for %d alarms", len(b.Verified), len(live))
			}
			for i := range b.Verified {
				if err := sameVerification(b.Verified[i], want[i]); err != nil {
					t.Fatalf("alarm %d: %v", i, err)
				}
			}
		})
	}
}

// newClassifyApp preloads a single-partition topic with the alarms
// (one producer thread, so replay order is preserved end to end) and
// returns a consumer app configured to drain them in one batch.
func newClassifyApp(t *testing.T, verifier *Verifier, alarms []alarm.Alarm, workers, batch int) *ConsumerApp {
	t.Helper()
	b := broker.New()
	t.Cleanup(func() { b.Close() })
	topic, err := b.CreateTopic("alarms", 1)
	if err != nil {
		t.Fatal(err)
	}
	prod := NewProducerApp(topic, codec.FastCodec{})
	if _, err := prod.Replay(alarms, 0); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConsumerConfig()
	cfg.ClassifyWorkers = workers
	cfg.ClassifyBatch = batch
	cfg.MaxPerBatch = len(alarms)
	app, err := NewConsumerApp(b, "alarms", "equiv", "c1", verifier, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return app
}
