package core

import (
	"testing"
	"time"

	"alarmverify/internal/broker"
	"alarmverify/internal/codec"
)

// TestReplayEnqueueTimestamps pins the timestamp modes: by default a
// replayed record carries the alarm's synthetic event time (the
// historic-replay semantics the experiments rely on), while
// EnqueueTimestamps stamps broker append time so live-serving e2e
// latency starts at the enqueue, not years in the past.
func TestReplayEnqueueTimestamps(t *testing.T) {
	_, alarms := testAlarms(64)
	for _, enqueue := range []bool{false, true} {
		b := broker.New()
		topic, err := b.CreateTopic("alarms", 2)
		if err != nil {
			t.Fatal(err)
		}
		prod := NewProducerApp(topic, codec.FastCodec{})
		prod.Threads = 2
		prod.EnqueueTimestamps = enqueue
		before := time.Now()
		if _, err := prod.Replay(alarms, 0); err != nil {
			t.Fatal(err)
		}
		cons, err := broker.NewConsumer(b, "ts-test", topic, "c1")
		if err != nil {
			t.Fatal(err)
		}
		recs, err := cons.Poll(len(alarms), time.Second)
		if err != nil || len(recs) == 0 {
			t.Fatalf("poll: %d records, err %v", len(recs), err)
		}
		for _, r := range recs {
			recent := !r.Timestamp.Before(before)
			if enqueue && !recent {
				t.Fatalf("EnqueueTimestamps: record stamped %s, want >= replay start", r.Timestamp)
			}
			if !enqueue && recent {
				t.Fatalf("default replay: record stamped %s, want the synthetic event time", r.Timestamp)
			}
		}
		cons.Close()
		b.Close()
	}
}
