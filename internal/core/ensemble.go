package core

import (
	"fmt"
	"sync"
	"time"

	"alarmverify/internal/alarm"
	"alarmverify/internal/ml"
)

// This file implements the two extensions the paper sketches in §2.4:
//
//   - "a majority vote among the different classifiers, providing the
//     overall verification and probability as an aggregate of the
//     information provided by all 4 classifiers" — VotingVerifier.
//   - "the most suitable machine learning algorithm is chosen
//     adaptively based on the performance of the currently used one
//     … we would only require the logic to adaptively choose among
//     these at run-time" — AdaptiveVerifier.

// VotingVerifier aggregates several trained verifiers into one: the
// predicted class is the (probability-weighted) majority and the
// reported confidence is the mean probability assigned to that class.
type VotingVerifier struct {
	verifiers []*Verifier
}

// NewVotingVerifier combines trained verifiers. All verifiers should
// share the same DeltaT labelling so their votes are commensurable.
func NewVotingVerifier(verifiers ...*Verifier) (*VotingVerifier, error) {
	if len(verifiers) == 0 {
		return nil, fmt.Errorf("core: voting verifier needs at least one member")
	}
	dt := verifiers[0].DeltaT()
	for _, v := range verifiers[1:] {
		if v.DeltaT() != dt {
			return nil, fmt.Errorf("core: voting members disagree on delta-t (%v vs %v)", dt, v.DeltaT())
		}
	}
	return &VotingVerifier{verifiers: verifiers}, nil
}

// Members returns the number of member verifiers.
func (e *VotingVerifier) Members() int { return len(e.verifiers) }

// Verify aggregates the members' verifications for one alarm.
func (e *VotingVerifier) Verify(a *alarm.Alarm) (alarm.Verification, error) {
	start := time.Now()
	var sumTrue float64
	for _, v := range e.verifiers {
		ver, err := v.Verify(a)
		if err != nil {
			return alarm.Verification{}, err
		}
		pTrue := ver.Probability
		if ver.Predicted == alarm.False {
			pTrue = 1 - ver.Probability
		}
		sumTrue += pTrue
	}
	meanTrue := sumTrue / float64(len(e.verifiers))
	out := alarm.Verification{
		AlarmID:   a.ID,
		ModelName: "vote",
		LatencyMS: float64(time.Since(start).Microseconds()) / 1000,
	}
	if meanTrue >= 0.5 {
		out.Predicted = alarm.True
		out.Probability = meanTrue
	} else {
		out.Predicted = alarm.False
		out.Probability = 1 - meanTrue
	}
	return out, nil
}

// VerifyBatch aggregates the members' batched verifications for a
// whole micro-batch: each member classifies the batch through its
// vectorized path once, and the per-alarm vote accumulation follows
// member order exactly as Verify does, so the aggregate predictions
// and probabilities are bit-identical to the per-alarm path.
func (e *VotingVerifier) VerifyBatch(alarms []alarm.Alarm) ([]alarm.Verification, error) {
	start := time.Now()
	n := len(alarms)
	out := make([]alarm.Verification, n)
	if n == 0 {
		return out, nil
	}
	sums := make([]float64, n)
	buf := make([]alarm.Verification, n)
	for _, v := range e.verifiers {
		if err := v.VerifyBatchInto(alarms, buf); err != nil {
			return nil, err
		}
		for i := range buf {
			pTrue := buf[i].Probability
			if buf[i].Predicted == alarm.False {
				pTrue = 1 - buf[i].Probability
			}
			sums[i] += pTrue
		}
	}
	perAlarmMS := float64(time.Since(start).Microseconds()) / 1000 / float64(n)
	for i := range out {
		meanTrue := sums[i] / float64(len(e.verifiers))
		out[i] = alarm.Verification{
			AlarmID:   alarms[i].ID,
			ModelName: "vote",
			LatencyMS: perAlarmMS,
		}
		if meanTrue >= 0.5 {
			out[i].Predicted = alarm.True
			out[i].Probability = meanTrue
		} else {
			out[i].Predicted = alarm.False
			out[i].Probability = 1 - meanTrue
		}
	}
	return out, nil
}

// EvaluateHoldout measures ensemble accuracy against the members'
// shared Δt heuristic.
func (e *VotingVerifier) EvaluateHoldout(holdout []alarm.Alarm) (ml.ConfusionMatrix, error) {
	var cm ml.ConfusionMatrix
	dt := e.verifiers[0].DeltaT()
	for i := range holdout {
		a := &holdout[i]
		ver, err := e.Verify(a)
		if err != nil {
			return cm, err
		}
		truth := alarm.DurationLabel(time.Duration(a.Duration*float64(time.Second)), dt)
		switch {
		case ver.Predicted == alarm.True && truth == alarm.True:
			cm.TP++
		case ver.Predicted == alarm.True && truth == alarm.False:
			cm.FP++
		case ver.Predicted == alarm.False && truth == alarm.False:
			cm.TN++
		default:
			cm.FN++
		}
	}
	return cm, nil
}

// AdaptiveVerifier serves one "active" verifier at a time and tracks
// the rolling accuracy of every member on recent feedback (alarms
// whose truth became known once their duration was observed). When
// the active member's rolling accuracy falls measurably behind the
// best member, the adaptive verifier switches — the runtime selection
// logic the paper names as future work.
type AdaptiveVerifier struct {
	mu      sync.Mutex
	members []*Verifier
	names   []string
	active  int
	window  int
	// ring buffers of 0/1 correctness per member.
	hits   [][]byte
	cursor int
	filled int
	// Margin a challenger must lead by before a switch (hysteresis).
	Margin float64
	// Switches counts how many times the active member changed.
	Switches int
}

// NewAdaptiveVerifier creates the runtime selector over trained
// members. window is the feedback window size (e.g. 500 recent
// alarms).
func NewAdaptiveVerifier(window int, members ...*Verifier) (*AdaptiveVerifier, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("core: adaptive verifier needs at least one member")
	}
	if window < 10 {
		window = 10
	}
	a := &AdaptiveVerifier{
		members: members,
		window:  window,
		hits:    make([][]byte, len(members)),
		Margin:  0.02,
	}
	for i, m := range members {
		a.hits[i] = make([]byte, window)
		a.names = append(a.names, fmt.Sprintf("%s/%d", m.Stats().Algorithm, i))
	}
	return a, nil
}

// Active returns the index of the currently serving member.
func (a *AdaptiveVerifier) Active() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.active
}

// Verify serves the alarm with the active member.
func (a *AdaptiveVerifier) Verify(al *alarm.Alarm) (alarm.Verification, error) {
	a.mu.Lock()
	v := a.members[a.active]
	a.mu.Unlock()
	return v.Verify(al)
}

// VerifyBatch serves a whole micro-batch with the active member's
// vectorized path. The member is snapshotted once, so every alarm of
// the batch is classified by the same model even if feedback switches
// the active member concurrently.
func (a *AdaptiveVerifier) VerifyBatch(alarms []alarm.Alarm) ([]alarm.Verification, error) {
	a.mu.Lock()
	v := a.members[a.active]
	a.mu.Unlock()
	return v.VerifyBatch(alarms)
}

// Feedback reports the eventual ground truth for an alarm; every
// member is scored on it (so challengers keep learning their rolling
// accuracy even while inactive), and the active member is re-elected
// if it has fallen behind.
func (a *AdaptiveVerifier) Feedback(al *alarm.Alarm, truth alarm.Label) error {
	preds := make([]alarm.Label, len(a.members))
	for i, m := range a.members {
		ver, err := m.Verify(al)
		if err != nil {
			return err
		}
		preds[i] = ver.Predicted
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for i := range a.members {
		hit := byte(0)
		if preds[i] == truth {
			hit = 1
		}
		a.hits[i][a.cursor] = hit
	}
	a.cursor = (a.cursor + 1) % a.window
	if a.filled < a.window {
		a.filled++
	}
	// Re-elect once we have enough evidence.
	if a.filled < a.window/2 {
		return nil
	}
	best, bestAcc := a.active, a.rollingLocked(a.active)
	for i := range a.members {
		if acc := a.rollingLocked(i); acc > bestAcc+a.Margin {
			best, bestAcc = i, acc
		}
	}
	if best != a.active {
		a.active = best
		a.Switches++
	}
	return nil
}

// MemberName returns a display label for one member ("rf/0").
func (a *AdaptiveVerifier) MemberName(member int) string {
	if member < 0 || member >= len(a.names) {
		return ""
	}
	return a.names[member]
}

// RollingAccuracy returns the member's accuracy over the feedback
// window.
func (a *AdaptiveVerifier) RollingAccuracy(member int) float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.rollingLocked(member)
}

func (a *AdaptiveVerifier) rollingLocked(member int) float64 {
	if a.filled == 0 {
		return 0
	}
	sum := 0
	for i := 0; i < a.filled; i++ {
		sum += int(a.hits[member][i])
	}
	return float64(sum) / float64(a.filled)
}
