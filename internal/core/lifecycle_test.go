package core

import (
	"sync"
	"testing"
	"time"

	"alarmverify/internal/alarm"
	"alarmverify/internal/docstore"
	"alarmverify/internal/ml"
	"alarmverify/internal/modelreg"
)

// intrusionOverrides marks every intrusion alarm as a true alarm —
// the systematic operator correction the retrain tests inject.
func intrusionOverrides(alarms []alarm.Alarm) map[int64]alarm.Label {
	out := make(map[int64]alarm.Label)
	for i := range alarms {
		if alarms[i].Type == alarm.TypeIntrusion {
			out[alarms[i].ID] = alarm.True
		}
	}
	return out
}

func TestHistoryFeedbackRoundTrip(t *testing.T) {
	h, err := NewHistory(docstore.NewDB())
	if err != nil {
		t.Fatal(err)
	}
	if h.FeedbackCount() != 0 {
		t.Fatalf("fresh history has %d feedbacks", h.FeedbackCount())
	}
	at := time.Date(2016, 5, 4, 12, 0, 0, 0, time.UTC)
	h.RecordFeedback(Feedback{AlarmID: 7, DeviceMAC: "aa:bb", Verdict: alarm.True, At: at})
	h.RecordFeedback(Feedback{AlarmID: 9, DeviceMAC: "cc:dd", Verdict: alarm.False, At: at})
	// A second verdict for the same alarm: the later one must win.
	h.RecordFeedback(Feedback{AlarmID: 7, DeviceMAC: "aa:bb", Verdict: alarm.False, At: at.Add(time.Hour)})
	if h.FeedbackCount() != 3 {
		t.Fatalf("FeedbackCount = %d, want 3", h.FeedbackCount())
	}
	fbs, err := h.Feedbacks()
	if err != nil || len(fbs) != 3 {
		t.Fatalf("Feedbacks = %d records, %v", len(fbs), err)
	}
	if fbs[0].AlarmID != 7 || fbs[0].Verdict != alarm.True || !fbs[0].At.Equal(at) || fbs[0].DeviceMAC != "aa:bb" {
		t.Fatalf("feedback[0] = %+v", fbs[0])
	}
	labels, err := h.FeedbackLabels()
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != 2 || labels[7] != alarm.False || labels[9] != alarm.False {
		t.Fatalf("FeedbackLabels = %v", labels)
	}
}

func TestHistoryRecentAlarmsRoundTrip(t *testing.T) {
	_, alarms := testAlarms(400)
	h, err := NewHistory(docstore.NewDB())
	if err != nil {
		t.Fatal(err)
	}
	h.RecordBatch(alarms)
	got, err := h.RecentAlarms(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(alarms) {
		t.Fatalf("RecentAlarms returned %d of %d", len(got), len(alarms))
	}
	byID := make(map[int64]alarm.Alarm, len(alarms))
	for _, a := range alarms {
		byID[a.ID] = a
	}
	for _, g := range got {
		want, ok := byID[g.ID]
		if !ok {
			t.Fatalf("unknown alarm %d returned", g.ID)
		}
		if g.DeviceMAC != want.DeviceMAC || g.ZIP != want.ZIP ||
			g.Duration != want.Duration || g.Type != want.Type ||
			g.ObjectType != want.ObjectType ||
			g.SensorType != want.SensorType || g.SoftwareVersion != want.SoftwareVersion {
			t.Fatalf("round-trip mismatch: got %+v want %+v", g, want)
		}
		if g.Timestamp.Unix() != want.Timestamp.Unix() {
			t.Fatalf("timestamp mismatch: %v vs %v", g.Timestamp, want.Timestamp)
		}
	}
	for i := 1; i < len(got); i++ {
		if got[i].Timestamp.Before(got[i-1].Timestamp) {
			t.Fatalf("RecentAlarms not chronological at %d", i)
		}
	}
	limited, err := h.RecentAlarms(50)
	if err != nil || len(limited) != 50 {
		t.Fatalf("RecentAlarms(50) = %d, %v", len(limited), err)
	}
}

func TestTrainWithFeedbackOverridesLabels(t *testing.T) {
	_, alarms := testAlarms(3000)
	overrides := intrusionOverrides(alarms[:2000])
	if len(overrides) == 0 {
		t.Fatal("no intrusion alarms in train window")
	}
	rfCfg := ml.DefaultRandomForestConfig()
	rfCfg.NumTrees = 12
	rfCfg.MaxDepth = 12
	cfg := DefaultVerifierConfig()
	cfg.Classifier = ml.NewRandomForest(rfCfg)
	corrected, err := TrainWithFeedback(alarms[:2000], overrides, cfg)
	if err != nil {
		t.Fatal(err)
	}
	baseline := fastVerifier(t, alarms[:2000])

	holdOverrides := intrusionOverrides(alarms[2000:])
	correctedCM, err := corrected.EvaluateWithFeedback(alarms[2000:], holdOverrides)
	if err != nil {
		t.Fatal(err)
	}
	baselineCM, err := baseline.EvaluateWithFeedback(alarms[2000:], holdOverrides)
	if err != nil {
		t.Fatal(err)
	}
	if correctedCM.Accuracy() <= baselineCM.Accuracy() {
		t.Fatalf("feedback-trained accuracy %.4f not above baseline %.4f",
			correctedCM.Accuracy(), baselineCM.Accuracy())
	}
}

// stubClassifier is an untrainable constant model used to force the
// shadow evaluation to reject a candidate.
type stubClassifier struct{}

func (stubClassifier) Name() string               { return "rf" }
func (stubClassifier) Fit(*ml.Dataset) error      { return nil }
func (stubClassifier) Proba([]float64) [2]float64 { return [2]float64{0.1, 0.9} }

func TestRetrainerSwapsAndRegisters(t *testing.T) {
	_, alarms := testAlarms(3000)
	live := fastVerifier(t, alarms[:800])
	h, err := NewHistory(docstore.NewDB())
	if err != nil {
		t.Fatal(err)
	}
	h.RecordBatch(alarms[800:2600])
	for id, verdict := range intrusionOverrides(alarms[800:2600]) {
		h.RecordFeedback(Feedback{AlarmID: id, Verdict: verdict, At: time.Now()})
	}
	reg, err := modelreg.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRetrainer(live, h, reg, RetrainerConfig{
		Verifier: DefaultVerifierConfig(),
		NewClassifier: func() (ml.Classifier, error) {
			cfg := ml.DefaultRandomForestConfig()
			cfg.NumTrees = 12
			cfg.MaxDepth = 12
			return ml.NewRandomForest(cfg), nil
		},
	})
	res, err := rt.RetrainNow()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Swapped {
		t.Fatalf("candidate rejected: %+v", res)
	}
	if res.Version != 1 || live.ModelVersion() != 1 {
		t.Fatalf("version = %d, live = %d, want 1", res.Version, live.ModelVersion())
	}
	if res.FeedbackRecords == 0 {
		t.Fatalf("no feedback folded into the train set: %+v", res)
	}
	m, ok, err := reg.Latest()
	if err != nil || !ok {
		t.Fatalf("registry latest: ok=%v err=%v", ok, err)
	}
	if m.Version != 1 || m.FeedbackRecords != res.FeedbackRecords || m.Holdout.Records == 0 {
		t.Fatalf("registered manifest = %+v", m)
	}
	st := rt.Stats()
	if st.Attempts != 1 || st.Swaps != 1 || st.Rejected != 0 {
		t.Fatalf("stats = %+v", st)
	}

	// A second retrain must stack version 2.
	res2, err := rt.RetrainNow()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Swapped && (res2.Version != 2 || live.ModelVersion() != 2) {
		t.Fatalf("second retrain version = %d, live = %d", res2.Version, live.ModelVersion())
	}
}

func TestRetrainerRejectsWorseCandidate(t *testing.T) {
	_, alarms := testAlarms(2000)
	live := fastVerifier(t, alarms[:1000])
	h, err := NewHistory(docstore.NewDB())
	if err != nil {
		t.Fatal(err)
	}
	h.RecordBatch(alarms[1000:])
	rt := NewRetrainer(live, h, nil, RetrainerConfig{
		Verifier:      DefaultVerifierConfig(),
		NewClassifier: func() (ml.Classifier, error) { return stubClassifier{}, nil },
	})
	res, err := rt.RetrainNow()
	if err != nil {
		t.Fatal(err)
	}
	if res.Swapped {
		t.Fatalf("constant-true candidate admitted: %+v", res)
	}
	if live.ModelVersion() != 0 {
		t.Fatalf("live model version changed to %d", live.ModelVersion())
	}
	if st := rt.Stats(); st.Rejected != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRetrainerFeedbackTrigger(t *testing.T) {
	_, alarms := testAlarms(2000)
	live := fastVerifier(t, alarms[:600])
	h, err := NewHistory(docstore.NewDB())
	if err != nil {
		t.Fatal(err)
	}
	h.RecordBatch(alarms[600:])
	rt := NewRetrainer(live, h, nil, RetrainerConfig{
		MinFeedback: 5,
		CheckEvery:  2 * time.Millisecond,
		Verifier:    DefaultVerifierConfig(),
		NewClassifier: func() (ml.Classifier, error) {
			cfg := ml.DefaultRandomForestConfig()
			cfg.NumTrees = 6
			cfg.MaxDepth = 8
			return ml.NewRandomForest(cfg), nil
		},
	})
	rt.Start()
	defer rt.Stop()
	for i := 0; i < 5; i++ {
		h.RecordFeedback(Feedback{AlarmID: alarms[600+i].ID, Verdict: alarm.True, At: time.Now()})
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if rt.Stats().Attempts >= 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := rt.Stats(); st.Attempts < 1 {
		t.Fatalf("feedback threshold never triggered a retrain: %+v", st)
	}
}

// TestRetrainerBacksOffOnFailure: feedback arriving before the
// history holds enough alarms keeps the trigger armed (a failed
// retrain must not swallow the verdicts), but retries must back off
// instead of re-running every CheckEvery tick.
func TestRetrainerBacksOffOnFailure(t *testing.T) {
	h, err := NewHistory(docstore.NewDB())
	if err != nil {
		t.Fatal(err)
	}
	_, alarms := testAlarms(700)
	live := fastVerifier(t, alarms[:600])
	rt := NewRetrainer(live, h, nil, RetrainerConfig{
		MinFeedback: 3,
		CheckEvery:  2 * time.Millisecond,
		Verifier:    DefaultVerifierConfig(),
	})
	rt.Start()
	defer rt.Stop()
	// The history is empty, so every attempt fails with ErrNoHistory.
	for i := 0; i < 3; i++ {
		h.RecordFeedback(Feedback{AlarmID: int64(i + 1), Verdict: alarm.True, At: time.Now()})
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && rt.Stats().Attempts == 0 {
		time.Sleep(2 * time.Millisecond)
	}
	st := rt.Stats()
	if st.Attempts == 0 {
		t.Fatal("feedback threshold never triggered")
	}
	if st.LastErr == "" {
		t.Fatalf("empty-history retrain reported no error: %+v", st)
	}
	// Within the first second of backoff, a tick-rate retry loop would
	// have attempted hundreds of times; the backoff allows at most a
	// couple.
	time.Sleep(300 * time.Millisecond)
	if again := rt.Stats().Attempts; again > 2 {
		t.Fatalf("failed retrain retried %d times in 300ms — backoff not applied", again)
	}
}

// equalVerification compares everything except the timing field
// (sameVerification in batchequiv_test.go is its error-reporting
// sibling).
func equalVerification(a, b alarm.Verification) bool {
	return sameVerification(a, b) == nil
}

// matchesSnapshot reports whether got is exactly exp, element-wise.
func matchesSnapshot(got, exp []alarm.Verification) bool {
	for i := range got {
		if !equalVerification(got[i], exp[i]) {
			return false
		}
	}
	return true
}

// TestHotSwapRaceHammer hammers lock-free hot swaps concurrently with
// Verify and VerifyBatch across all four classifiers. Every batch
// result must be bit-identical to exactly one of the two snapshots'
// per-alarm outputs — a batch can never straddle a swap — and every
// single-alarm result must match one snapshot. Run under -race this
// is the swap-safety proof.
func TestHotSwapRaceHammer(t *testing.T) {
	_, alarms := testAlarms(1400)
	probe := alarms[1200:1264]
	smallClassifier := func(algo Algorithm) ml.Classifier {
		switch algo {
		case RandomForest:
			cfg := ml.DefaultRandomForestConfig()
			cfg.NumTrees = 8
			cfg.MaxDepth = 8
			return ml.NewRandomForest(cfg)
		case LogisticRegression:
			cfg := ml.DefaultLogisticRegressionConfig()
			cfg.MaxIterations = 40
			return ml.NewLogisticRegression(cfg)
		case SupportVectorMachine:
			cfg := ml.DefaultSVMConfig()
			cfg.MaxIterations = 60
			return ml.NewSVM(cfg)
		case DeepNeuralNetwork:
			cfg := ml.DefaultDNNConfig()
			cfg.MaxEpochs = 3
			cfg.MiniBatch = 100
			return ml.NewDNN(cfg)
		}
		return nil
	}
	for _, algo := range Algorithms() {
		algo := algo
		t.Run(string(algo), func(t *testing.T) {
			train := func(lo, hi int) *Verifier {
				cfg := DefaultVerifierConfig()
				cfg.Classifier = smallClassifier(algo)
				v, err := Train(alarms[lo:hi], cfg)
				if err != nil {
					t.Fatal(err)
				}
				return v
			}
			vA := train(0, 900)
			vB := train(300, 1200)
			expect := func(v *Verifier) []alarm.Verification {
				out := make([]alarm.Verification, len(probe))
				for i := range probe {
					ver, err := v.Verify(&probe[i])
					if err != nil {
						t.Fatal(err)
					}
					out[i] = ver
				}
				return out
			}
			expA, expB := expect(vA), expect(vB)
			if matchesSnapshot(expA, expB) {
				t.Fatalf("%s: both snapshots predict identically; hammer would prove nothing", algo)
			}

			live := &Verifier{}
			live.Swap(vA)
			stop := make(chan struct{})
			errs := make(chan string, 8)
			var readers, swapper sync.WaitGroup

			// Swapper: flip between the two snapshots until the readers
			// are done.
			swapper.Add(1)
			go func() {
				defer swapper.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					if i%2 == 0 {
						live.Swap(vB)
					} else {
						live.Swap(vA)
					}
				}
			}()
			// Batch readers: every batch must match exactly one snapshot.
			for r := 0; r < 2; r++ {
				readers.Add(1)
				go func() {
					defer readers.Done()
					for i := 0; i < 60; i++ {
						got, err := live.VerifyBatch(probe)
						if err != nil {
							errs <- err.Error()
							return
						}
						if !matchesSnapshot(got, expA) && !matchesSnapshot(got, expB) {
							errs <- "batch result straddles a swap"
							return
						}
					}
				}()
			}
			// Per-alarm reader: each call must match one snapshot.
			readers.Add(1)
			go func() {
				defer readers.Done()
				for i := 0; i < 200; i++ {
					idx := i % len(probe)
					got, err := live.Verify(&probe[idx])
					if err != nil {
						errs <- err.Error()
						return
					}
					if !equalVerification(got, expA[idx]) && !equalVerification(got, expB[idx]) {
						errs <- "per-alarm result matches neither snapshot"
						return
					}
				}
			}()
			// Stats reader: Info must always be internally consistent.
			readers.Add(1)
			go func() {
				defer readers.Done()
				wantA, wantB := vA.Info(), vB.Info()
				for i := 0; i < 400; i++ {
					info := live.Info()
					if info != wantA && info != wantB {
						errs <- "Info mixes fields from two snapshots"
						return
					}
				}
			}()

			readers.Wait()
			close(stop)
			swapper.Wait()
			select {
			case failure := <-errs:
				t.Fatalf("%s: %s", algo, failure)
			default:
			}
		})
	}
}
