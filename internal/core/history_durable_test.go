package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"alarmverify/internal/alarm"
	"alarmverify/internal/docstore"
)

// alarmWireOnlyFields are alarm.Alarm fields the history intentionally
// does NOT persist: DeviceIP duplicates the MAC as device identity,
// and Payload is wire-size padding (§5.5.2) with no analytical value.
// Every other field must survive alarmDoc → store → docAlarm exactly —
// the reflection walk below fails when a field is added to the struct
// without a decision here, which is how PR 4's silent
// sensorType/swVersion loss stays fixed.
var alarmWireOnlyFields = map[string]bool{"DeviceIP": true, "Payload": true}

func randomAlarm(rng *rand.Rand, id int64) alarm.Alarm {
	return alarm.Alarm{
		ID:              id,
		DeviceMAC:       fmt.Sprintf("%02x:%02x:%02x", rng.Intn(256), rng.Intn(256), rng.Intn(256)),
		DeviceIP:        fmt.Sprintf("10.0.%d.%d", rng.Intn(256), rng.Intn(256)),
		ZIP:             fmt.Sprintf("%04d", rng.Intn(10000)),
		Timestamp:       time.Unix(1700000000+rng.Int63n(1e7), 0).UTC(),
		Duration:        rng.Float64() * 900,
		Type:            alarm.Type(rng.Intn(alarm.NumTypes())),
		ObjectType:      alarm.ObjectType(rng.Intn(alarm.NumObjectTypes())),
		SensorType:      fmt.Sprintf("sensor-%d", rng.Intn(5)),
		SoftwareVersion: fmt.Sprintf("v%d.%d", rng.Intn(4), rng.Intn(10)),
		Payload:         "padding-not-persisted",
	}
}

// TestAlarmDocRoundTripAllFields is the persistence property test: for
// random alarms over the full value space, docAlarm(alarmDoc(a))
// reproduces every persisted field, and a reflection walk over
// alarm.Alarm pins the persisted-vs-wire-only split so a future schema
// addition cannot be dropped silently — it must either round-trip or
// be added to alarmWireOnlyFields deliberately.
func TestAlarmDocRoundTripAllFields(t *testing.T) {
	rt := reflect.TypeOf(alarm.Alarm{})
	for i := 0; i < rt.NumField(); i++ {
		name := rt.Field(i).Name
		if alarmWireOnlyFields[name] {
			continue
		}
		// Every persisted field must differ from the zero value in at
		// least some random alarm, or the loss assertions below would
		// pass vacuously.
		t.Logf("persisted field: %s", name)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		a := randomAlarm(rng, int64(trial)<<40|rng.Int63n(1<<30))
		got := docAlarm(alarmDoc(&a))
		want := a
		for name := range alarmWireOnlyFields {
			reflect.ValueOf(&want).Elem().FieldByName(name).SetZero()
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip lost data:\n got %+v\nwant %+v", got, want)
		}
		// The reflection guard proper: any field that is neither
		// declared wire-only nor reproduced by the round trip is a
		// silently-dropped schema addition.
		gv, av := reflect.ValueOf(got), reflect.ValueOf(a)
		for i := 0; i < rt.NumField(); i++ {
			name := rt.Field(i).Name
			if alarmWireOnlyFields[name] {
				continue
			}
			if !reflect.DeepEqual(gv.Field(i).Interface(), av.Field(i).Interface()) {
				t.Fatalf("field %s dropped by persistence: got %v, want %v",
					name, gv.Field(i).Interface(), av.Field(i).Interface())
			}
		}
	}
}

// TestAlarmRoundTripThroughWALReplay extends the property through the
// durable store: alarms recorded into a WAL-backed history must come
// back identical after a close + crash-style reopen, so the JSON
// frame encoding (exact int64 ids, timestamps) cannot corrupt the
// retrain loop's train set.
func TestAlarmRoundTripThroughWALReplay(t *testing.T) {
	dir := t.TempDir()
	db, err := docstore.OpenDB(dir, docstore.DurableOptions{Partitions: 2, SyncInterval: -1, CheckpointInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHistory(db)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	var want []alarm.Alarm
	for i := 0; i < 64; i++ {
		a := randomAlarm(rng, (int64(1)<<55)+int64(i)) // ids beyond float64 exactness
		want = append(want, a)
	}
	h.RecordBatch(want)
	h.RecordFeedback(Feedback{AlarmID: want[0].ID, DeviceMAC: want[0].DeviceMAC, Verdict: alarm.True, At: time.Unix(1700000001, 0)})
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := docstore.OpenDB(dir, docstore.DurableOptions{Partitions: 2, SyncInterval: -1, CheckpointInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	h2, err := NewHistory(db2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := h2.RecentAlarms(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("recovered %d alarms, want %d", len(got), len(want))
	}
	byID := make(map[int64]alarm.Alarm, len(got))
	for _, a := range got {
		byID[a.ID] = a
	}
	for _, w := range want {
		for name := range alarmWireOnlyFields {
			reflect.ValueOf(&w).Elem().FieldByName(name).SetZero()
		}
		g, ok := byID[w.ID]
		if !ok {
			t.Fatalf("alarm %d missing after WAL replay", w.ID)
		}
		if !reflect.DeepEqual(g, w) {
			t.Fatalf("alarm corrupted by WAL replay:\n got %+v\nwant %+v", g, w)
		}
	}
	fbs, err := h2.Feedbacks()
	if err != nil {
		t.Fatal(err)
	}
	if len(fbs) != 1 || fbs[0].AlarmID != want[0].ID || fbs[0].Verdict != alarm.True {
		t.Fatalf("feedback corrupted by WAL replay: %+v", fbs)
	}
}

// TestHistoryShutdownOrdering pins the Close contract: Record and
// RecordBatch after Close must not panic (they fall back to the
// synchronous store path) and must still land in the store.
func TestHistoryShutdownOrdering(t *testing.T) {
	h, err := NewHistory(docstore.NewDBWithPartitions(2))
	if err != nil {
		t.Fatal(err)
	}
	h.EnableWriteBehind(64)
	a := randomAlarm(rand.New(rand.NewSource(1)), 1)
	h.Record(&a)
	h.Close()
	h.Close() // double-close is fine
	// Post-close writes: no panic, synchronous fallback persists them.
	h.Record(&a)
	h.RecordBatch([]alarm.Alarm{a, a})
	h.Flush() // no-op against a closed queue, must not hang
	if n := h.Len(); n != 4 {
		t.Fatalf("Len=%d after post-close writes, want 4", n)
	}
}

// TestHistoryFlushCloseHammer races producers, Flush and Close under
// -race: whatever the interleaving, nothing queued may be dropped —
// every alarm recorded before its producer returned must be in the
// store once Close and all producers finish.
func TestHistoryFlushCloseHammer(t *testing.T) {
	for round := 0; round < 20; round++ {
		h, err := NewHistory(docstore.NewDBWithPartitions(2))
		if err != nil {
			t.Fatal(err)
		}
		h.EnableWriteBehind(32)
		const producers, per = 4, 50
		var wg sync.WaitGroup
		for w := 0; w < producers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(round*producers + w)))
				for i := 0; i < per; i++ {
					a := randomAlarm(rng, int64(w*per+i))
					if i%2 == 0 {
						h.Record(&a)
					} else {
						h.RecordBatch([]alarm.Alarm{a})
					}
				}
			}(w)
		}
		wg.Add(1)
		go func() { // Flush racing the producers and the close
			defer wg.Done()
			for i := 0; i < 10; i++ {
				h.Flush()
			}
		}()
		// Close concurrently with everything above; producers that lose
		// the race fall back to synchronous writes.
		h.Close()
		wg.Wait()
		h.Flush()
		if n := h.Len(); n != producers*per {
			t.Fatalf("round %d: %d alarms stored, want %d — queued docs dropped in Flush/Close race",
				round, n, producers*per)
		}
	}
}
