package core

import (
	"sync"
	"testing"
	"time"

	"alarmverify/internal/alarm"
	"alarmverify/internal/docstore"
)

func historyAlarms(n int, mac string) []alarm.Alarm {
	base := time.Date(2016, 2, 11, 10, 0, 0, 0, time.UTC)
	out := make([]alarm.Alarm, n)
	for i := range out {
		out[i] = alarm.Alarm{
			ID:        int64(i + 1),
			DeviceMAC: mac,
			ZIP:       "8001",
			Timestamp: base.Add(time.Duration(i) * time.Minute),
			Duration:  90,
			Type:      alarm.TypeFire,
		}
	}
	return out
}

// Write-behind must be invisible to readers: a histogram issued right
// after RecordBatch returns must include that batch (read-your-writes
// via the flush barrier).
func TestWriteBehindReadYourWrites(t *testing.T) {
	h, err := NewHistory(docstore.NewDB())
	if err != nil {
		t.Fatal(err)
	}
	h.EnableWriteBehind(1024)
	defer h.Close()

	alarms := historyAlarms(120, "mac-a")
	h.RecordBatch(alarms)
	buckets, err := h.DeviceHistogram("mac-a", alarms[0].Timestamp, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, b := range buckets {
		total += b.Count
	}
	if total != len(alarms) {
		t.Fatalf("histogram saw %d alarms, want %d", total, len(alarms))
	}
	if h.Len() != len(alarms) {
		t.Fatalf("len = %d, want %d", h.Len(), len(alarms))
	}
}

// Batches enqueued while a flush is in flight must coalesce into few
// store round-trips — that is the point of the write-behind buffer.
func TestWriteBehindCoalesces(t *testing.T) {
	h, err := NewHistory(docstore.NewDB())
	if err != nil {
		t.Fatal(err)
	}
	h.SetSimulatedRTT(2 * time.Millisecond)
	h.EnableWriteBehind(100_000)
	defer h.Close()

	const batches = 50
	for i := 0; i < batches; i++ {
		h.RecordBatch(historyAlarms(10, "mac-b"))
	}
	h.Flush()
	if h.Len() != batches*10 {
		t.Fatalf("len = %d, want %d", h.Len(), batches*10)
	}
	if n := h.WriteBehindFlushes(); n >= batches/2 {
		t.Errorf("%d flushes for %d batches — no coalescing happened", n, batches)
	}
}

// The queue bound must hold writers back rather than buffer without
// limit, and every document must still land exactly once.
func TestWriteBehindBoundedAndComplete(t *testing.T) {
	h, err := NewHistory(docstore.NewDB())
	if err != nil {
		t.Fatal(err)
	}
	h.SetSimulatedRTT(200 * time.Microsecond)
	h.EnableWriteBehind(64) // far below the write volume

	const workers, batchesEach, perBatch = 4, 25, 16
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < batchesEach; b++ {
				h.RecordBatch(historyAlarms(perBatch, "mac-c"))
			}
		}(w)
	}
	wg.Wait()
	h.Close()
	want := workers * batchesEach * perBatch
	if h.Len() != want {
		t.Fatalf("len = %d, want %d", h.Len(), want)
	}
	// Close is idempotent and the history stays readable after it.
	h.Close()
	if _, err := h.CountByLocation(); err != nil {
		t.Fatal(err)
	}
}

// After Close, Record/RecordBatch fall back to the synchronous path
// instead of losing writes.
func TestWriteBehindClosedFallsBackToSync(t *testing.T) {
	h, err := NewHistory(docstore.NewDB())
	if err != nil {
		t.Fatal(err)
	}
	h.EnableWriteBehind(128)
	h.Close()
	a := historyAlarms(3, "mac-d")
	h.RecordBatch(a)
	h.Record(&a[0])
	if h.Len() != 4 {
		t.Fatalf("len = %d, want 4", h.Len())
	}
}
